//! Minimal in-repo stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset of rand it uses: `StdRng::seed_from_u64`
//! plus `Rng::gen_range` over integer ranges. The generator is
//! splitmix64 — deterministic and plenty for benchmark inputs.

/// Ranges which can be sampled uniformly by [`Rng::gen_range`].
/// Generic over the produced type so literal inference works exactly as
/// with the real crate (`rng.gen_range(-9..=9)` in `i64` context).
pub trait SampleRange<T> {
    /// Sample uniformly using the provided raw generator.
    fn sample(&self, next: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! int_sample_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(&self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (next() % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(&self, next: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + (next() % span) as i128) as $t
            }
        }
    )*};
}

int_sample_ranges!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Random-value methods, mirroring `rand::Rng`.
pub trait Rng {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from an integer range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        let mut f = || self.next_u64();
        range.sample(&mut f)
    }
}

/// Seedable constructors, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    /// splitmix64-backed standard generator.
    #[derive(Debug, Clone)]
    pub struct StdRng(pub(crate) u64);

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(seed)
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `rand::prelude`.
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = a.gen_range(-9i64..=9);
            assert_eq!(x, b.gen_range(-9i64..=9));
            assert!((-9..=9).contains(&x));
            let u = a.gen_range(0usize..7);
            assert_eq!(u, b.gen_range(0usize..7));
            assert!(u < 7);
        }
    }
}
