//! The work-stealing job deque.
//!
//! One deque per worker, Chase–Lev discipline: the **owner** treats the
//! bottom as a LIFO stack (`push` / `pop`), while **thieves** take from
//! the top FIFO end (`steal`). LIFO owner access keeps a worker on the
//! most recently split — hottest — work; FIFO stealing hands thieves the
//! oldest and therefore typically largest remaining chunk, which is what
//! makes stealing pay for skewed group spaces.
//!
//! The protocol is a plain mutex around a `VecDeque` — correctness over
//! cleverness. Every operation is a couple of pointer moves under an
//! uncontended lock; the jobs this runtime schedules are whole group
//! ranges (thousands of iterations each), so queue-operation latency is
//! noise. The multiset-preservation guarantee under contention is pinned
//! by a property test below.

use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};

/// A two-ended job queue: owner pushes/pops at the bottom, thieves
/// steal from the top.
#[derive(Debug, Default)]
pub struct JobDeque<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> JobDeque<T> {
    /// An empty deque.
    pub fn new() -> Self {
        JobDeque {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    /// Lock the queue. No user code ever runs under this lock, so a
    /// poisoned mutex only means a sibling worker panicked between two
    /// queue operations — the queue itself is still consistent, so
    /// recover the guard rather than cascade the panic.
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Owner: push a job onto the bottom.
    pub fn push(&self, job: T) {
        self.lock().push_back(job);
    }

    /// Owner: pop the most recently pushed job (LIFO bottom).
    pub fn pop(&self) -> Option<T> {
        self.lock().pop_back()
    }

    /// Thief: steal the oldest job (FIFO top).
    pub fn steal(&self) -> Option<T> {
        self.lock().pop_front()
    }

    /// Number of queued jobs.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn owner_pops_lifo() {
        let dq = JobDeque::new();
        for v in 0..5 {
            dq.push(v);
        }
        assert_eq!(dq.len(), 5);
        let popped: Vec<i32> = std::iter::from_fn(|| dq.pop()).collect();
        assert_eq!(popped, vec![4, 3, 2, 1, 0]);
        assert!(dq.is_empty());
    }

    #[test]
    fn thieves_steal_fifo_from_the_other_end() {
        let dq = JobDeque::new();
        for v in 0..5 {
            dq.push(v);
        }
        assert_eq!(dq.steal(), Some(0));
        assert_eq!(dq.steal(), Some(1));
        // Owner and thief drain opposite ends without overlap.
        assert_eq!(dq.pop(), Some(4));
        assert_eq!(dq.steal(), Some(2));
        assert_eq!(dq.pop(), Some(3));
        assert_eq!(dq.pop(), None);
        assert_eq!(dq.steal(), None);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Under real multi-thread contention — one owner pushing and
        /// intermittently popping, several thieves stealing — every
        /// pushed value comes out exactly once, across pops, steals, and
        /// the final drain. No duplication, no loss.
        #[test]
        fn contention_preserves_the_multiset(
            pushes in 16usize..256,
            thieves in 1usize..4,
            pop_stride in 2usize..5,
        ) {
            let dq = JobDeque::new();
            let done = AtomicBool::new(false);
            let mut taken: Vec<usize> = std::thread::scope(|s| {
                let stealers: Vec<_> = (0..thieves)
                    .map(|_| {
                        s.spawn(|| {
                            let mut got = Vec::new();
                            loop {
                                match dq.steal() {
                                    Some(v) => got.push(v),
                                    None if done.load(Ordering::Acquire) => break,
                                    None => std::thread::yield_now(),
                                }
                            }
                            got
                        })
                    })
                    .collect();
                // Owner: push everything, popping every few pushes the
                // way a worker retires its own hottest job.
                let mut owned = Vec::new();
                for v in 0..pushes {
                    dq.push(v);
                    if v % pop_stride == 0 {
                        owned.extend(dq.pop());
                    }
                }
                done.store(true, Ordering::Release);
                for h in stealers {
                    owned.extend(h.join().expect("thief panicked"));
                }
                owned
            });
            // Thieves may have exited between the owner's last push and
            // the `done` flag; whatever is left drains here.
            while let Some(v) = dq.pop() {
                taken.push(v);
            }
            taken.sort_unstable();
            let expected: Vec<usize> = (0..pushes).collect();
            prop_assert_eq!(taken, expected, "multiset not preserved");
        }
    }
}
