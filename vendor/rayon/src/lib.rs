//! Minimal in-repo stand-in for the `rayon` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the *subset* of rayon's API it actually uses —
//! now backed by a real work-stealing executor. Each parallel region
//! gives every worker a [`deque::JobDeque`]: owners push and pop their
//! own jobs LIFO at the bottom, idle workers steal FIFO from the top of
//! someone else's queue. A worker stuck behind a fat job (the skewed
//! group spaces Theorem-2 partitioning produces) no longer strands the
//! rest of its chunk list — idle threads take it.
//!
//! Supported surface:
//! * [`scope`] / [`scope_with`] — spawn-into-a-scope execution: jobs
//!   land on the spawning worker's deque and get stolen from there
//!   ([`Scope::spawn`] may be called from inside running jobs);
//! * `prelude::*` → [`iter::IntoParallelRefIterator`] (`.par_iter()`) on
//!   slices and `Vec`, with `.map(...)` and `.collect()` into `Vec<R>`
//!   or `Result<Vec<U>, E>` (see [`iter::FromParMap`]); the `Result`
//!   collect **short-circuits**: the first `Err` poisons the region and
//!   remaining jobs return without calling the closure again;
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] — a thread-count
//!   override scoped to the closure (used by thread-scaling benches);
//! * [`current_num_threads`], plus [`last_region_threads`] /
//!   [`last_region_steals`] — how many workers the most recent parallel
//!   region on this thread actually used and how many jobs changed
//!   hands between deques while it ran (bench snapshots record both
//!   per case; steal counts are the raw signal for adaptive chunk
//!   sizing).
//!
//! Blocking and termination: a region's caller runs as worker 0, so a
//! `scope` call occupies `threads` OS threads total. Workers exit when
//! the pending-job count hits zero; the count is decremented only
//! *after* a job finishes (even by panic), so no worker can exit while
//! a running job might still spawn.
//!
//! Panic isolation: every job runs under `catch_unwind`, so one
//! panicking job can never tear down another worker's thread or wedge
//! the region. What happens to the payload depends on how the region
//! was opened: [`scope`] / [`scope_with`] (and `par_iter` regions)
//! re-raise the *first* payload on the region's caller after every
//! other job has finished — the region's result is poisoned, the rest
//! of the process is not — while [`scope_with_sink`] hands each payload
//! to a caller-supplied sink and keeps serving (the mode a long-running
//! server wants: a panicking connection handler becomes a counter, not
//! an outage). [`last_region_panics`] reports how many jobs panicked in
//! the most recent region, next to [`last_region_threads`] and
//! [`last_region_steals`].

pub mod deque;

use deque::JobDeque;
use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// 0 = "use the machine default".
    static POOL_OVERRIDE: Cell<usize> = const { Cell::new(0) };
    /// This thread's worker index inside the innermost active scope;
    /// `usize::MAX` when the thread is not currently a scope worker.
    static WORKER_SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
    /// Worker count of the most recent region opened from this thread.
    static LAST_REGION_THREADS: Cell<usize> = const { Cell::new(1) };
    /// Successful cross-deque steals in the most recent region opened
    /// from this thread.
    static LAST_REGION_STEALS: Cell<usize> = const { Cell::new(0) };
    /// Jobs that panicked in the most recent region opened from this
    /// thread.
    static LAST_REGION_PANICS: Cell<usize> = const { Cell::new(0) };
}

fn machine_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Number of worker threads parallel regions will use in this context.
pub fn current_num_threads() -> usize {
    let ov = POOL_OVERRIDE.with(|c| c.get());
    if ov == 0 {
        machine_threads()
    } else {
        ov
    }
}

/// Worker count of the most recent parallel region opened from this
/// thread — the *observed* parallelism (1 when the region ran inline),
/// as opposed to the configured [`current_num_threads`]. Bench snapshot
/// writers record this per case. Thread-local so concurrent regions on
/// other threads (e.g. parallel tests) cannot interleave readings.
pub fn last_region_threads() -> usize {
    LAST_REGION_THREADS.with(|c| c.get())
}

fn note_region_threads(n: usize) {
    LAST_REGION_THREADS.with(|c| c.set(n));
}

/// Number of jobs the most recent parallel region opened from this
/// thread moved between deques — each count is one idle worker taking a
/// job from the FIFO top of another worker's queue. Zero means every
/// job ran where it was spawned (perfectly balanced chunks, or an
/// inline region); high counts relative to the job total mean the
/// initial split was skewed and the deques did the rebalancing.
/// Thread-local like [`last_region_threads`], so concurrent regions on
/// other threads cannot interleave readings.
pub fn last_region_steals() -> usize {
    LAST_REGION_STEALS.with(|c| c.get())
}

fn note_region_steals(n: usize) {
    LAST_REGION_STEALS.with(|c| c.set(n));
}

/// Number of jobs that panicked in the most recent parallel region
/// opened from this thread. Zero on a healthy region. For a plain
/// [`scope`] / [`scope_with`] region this is observable only by a sink
/// wrapped around the call — the first payload re-raises on the caller
/// after the region drains — but a [`scope_with_sink`] region returns
/// normally and leaves the count here for the caller to read.
pub fn last_region_panics() -> usize {
    LAST_REGION_PANICS.with(|c| c.get())
}

fn note_region_panics(n: usize) {
    LAST_REGION_PANICS.with(|c| c.set(n));
}

/// Best-effort text of a panic payload (`&str` / `String` payloads —
/// what `panic!` produces — or a placeholder).
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A panic payload as `catch_unwind` delivers it.
pub type PanicPayload = Box<dyn Any + Send + 'static>;

type Sink<'env> = Box<dyn Fn(PanicPayload) + Send + Sync + 'env>;

/// One parallel region: per-worker job deques plus the pending-job
/// count that decides termination.
pub struct Scope<'env> {
    deques: Vec<JobDeque<Job<'env>>>,
    pending: AtomicUsize,
    /// Round-robin cursor for spawns from outside any worker (the
    /// region caller before workers start).
    next: AtomicUsize,
    /// Successful cross-deque steals in this region.
    steals: AtomicUsize,
    /// Jobs that panicked in this region.
    panics: AtomicUsize,
    /// Where panic payloads go ([`scope_with_sink`]); `None` means the
    /// first payload is re-raised on the region caller after the drain.
    sink: Option<Sink<'env>>,
    /// First caught payload, held for the re-raise when no sink is set.
    first_panic: Mutex<Option<PanicPayload>>,
}

type Job<'env> = Box<dyn FnOnce(&Scope<'env>) + Send + 'env>;

/// Restores the previous [`WORKER_SLOT`] on drop (unwind-safe).
struct SlotGuard(usize);

impl Drop for SlotGuard {
    fn drop(&mut self) {
        WORKER_SLOT.with(|c| c.set(self.0));
    }
}

/// Decrements the pending count on drop, so a panicking job still
/// counts as finished and cannot wedge the other workers' exit check.
struct PendingGuard<'a>(&'a AtomicUsize);

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::Release);
    }
}

impl<'env> Scope<'env> {
    fn new(workers: usize, sink: Option<Sink<'env>>) -> Self {
        Scope {
            deques: (0..workers).map(|_| JobDeque::new()).collect(),
            pending: AtomicUsize::new(0),
            next: AtomicUsize::new(0),
            steals: AtomicUsize::new(0),
            panics: AtomicUsize::new(0),
            sink,
            first_panic: Mutex::new(None),
        }
    }

    /// Number of workers this region runs with.
    pub fn num_workers(&self) -> usize {
        self.deques.len()
    }

    /// Queue a job. Called from a worker, the job lands at the bottom
    /// of that worker's own deque (LIFO locality); called from outside,
    /// jobs are dealt round-robin so every deque seeds with work.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'env>) + Send + 'env,
    {
        self.pending.fetch_add(1, Ordering::Acquire);
        let slot = WORKER_SLOT.with(|c| c.get());
        let w = if slot < self.deques.len() {
            slot
        } else {
            self.next.fetch_add(1, Ordering::Relaxed) % self.deques.len()
        };
        self.deques[w].push(Box::new(f));
    }

    /// Own deque first (LIFO bottom), then sweep the others as a thief
    /// (FIFO top), starting just past `w` so thieves spread out.
    fn find_job(&self, w: usize) -> Option<Job<'env>> {
        if let Some(job) = self.deques[w].pop() {
            return Some(job);
        }
        let n = self.deques.len();
        let stolen = (1..n).find_map(|i| self.deques[(w + i) % n].steal());
        if stolen.is_some() {
            self.steals.fetch_add(1, Ordering::Relaxed);
        }
        stolen
    }

    fn run_worker(&self, w: usize) {
        let prev = WORKER_SLOT.with(|c| c.replace(w));
        let _restore = SlotGuard(prev);
        loop {
            if let Some(job) = self.find_job(w) {
                let _done = PendingGuard(&self.pending);
                // Isolate the job: a panic must neither unwind this
                // worker thread (tearing down the region) nor skip the
                // pending-count decrement.
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| job(self))) {
                    self.panics.fetch_add(1, Ordering::Relaxed);
                    match &self.sink {
                        Some(sink) => sink(payload),
                        None => {
                            let mut first =
                                self.first_panic.lock().unwrap_or_else(|p| p.into_inner());
                            if first.is_none() {
                                *first = Some(payload);
                            }
                        }
                    }
                }
            } else if self.pending.load(Ordering::Acquire) == 0 {
                break;
            } else {
                // Someone is still running a job that may spawn more.
                std::thread::yield_now();
            }
        }
    }
}

/// Run a work-stealing region with [`current_num_threads`] workers.
/// `f` receives the [`Scope`] to spawn into; the call returns after
/// every spawned job (including jobs spawned by jobs) has finished.
pub fn scope<'env, R>(f: impl FnOnce(&Scope<'env>) -> R) -> R {
    scope_with(current_num_threads(), f)
}

/// [`scope`] with an explicit worker count. The calling thread works
/// too (as worker 0), so `threads` is the region's total concurrency.
///
/// A panicking job poisons only this region: every other job still
/// runs, and the first payload is re-raised here (on the caller) once
/// the region has drained.
pub fn scope_with<'env, R>(threads: usize, f: impl FnOnce(&Scope<'env>) -> R) -> R {
    scope_impl(threads, None, f)
}

/// [`scope_with`] for callers that must outlive their jobs' panics: the
/// region never re-raises — every caught payload is handed to `sink`
/// (on whichever worker caught it), the region keeps draining, and the
/// call returns normally. Read [`last_region_panics`] afterwards. This
/// is the mode a server wants for connection-handler jobs: one bad
/// request must not stop the accept loop.
pub fn scope_with_sink<'env, R>(
    threads: usize,
    sink: impl Fn(PanicPayload) + Send + Sync + 'env,
    f: impl FnOnce(&Scope<'env>) -> R,
) -> R {
    scope_impl(threads, Some(Box::new(sink)), f)
}

fn scope_impl<'env, R>(
    threads: usize,
    sink: Option<Sink<'env>>,
    f: impl FnOnce(&Scope<'env>) -> R,
) -> R {
    let workers = threads.max(1);
    let sc = Scope::new(workers, sink);
    let out = f(&sc);
    if sc.pending.load(Ordering::Acquire) == 0 {
        note_region_threads(1);
        note_region_steals(0);
        note_region_panics(0);
        return out;
    }
    note_region_threads(workers);
    if workers == 1 {
        sc.run_worker(0);
    } else {
        std::thread::scope(|ts| {
            for w in 1..workers {
                let sc = &sc;
                ts.spawn(move || sc.run_worker(w));
            }
            sc.run_worker(0);
        });
    }
    note_region_steals(sc.steals.load(Ordering::Relaxed));
    note_region_panics(sc.panics.load(Ordering::Relaxed));
    // No sink: the region's caller owns the failure. Re-raise the first
    // payload now that every job has finished (and the gauges are set).
    if let Some(payload) = sc
        .first_panic
        .lock()
        .unwrap_or_else(|p| p.into_inner())
        .take()
    {
        resume_unwind(payload);
    }
    out
}

/// Error building a thread pool (never produced by this stand-in, kept
/// for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with default (machine) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the worker count (0 = machine default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            threads: if self.num_threads == 0 {
                machine_threads()
            } else {
                self.num_threads
            },
        })
    }
}

/// A "pool": in this stand-in, a scoped thread-count override — regions
/// opened inside `install` spawn their workers per call rather than
/// keeping persistent pool threads.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

/// Restores the previous override even if the closure panics.
struct OverrideGuard(usize);

impl Drop for OverrideGuard {
    fn drop(&mut self) {
        POOL_OVERRIDE.with(|c| c.set(self.0));
    }
}

impl ThreadPool {
    /// Run `f` with this pool's thread count governing nested regions.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = POOL_OVERRIDE.with(|c| c.replace(self.threads));
        let _guard = OverrideGuard(prev);
        f()
    }

    /// The pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

pub mod iter {
    //! Parallel iterator subset: `par_iter().map(f).collect()`, executed
    //! on the work-stealing [`crate::scope`].

    use super::{
        current_num_threads, note_region_panics, note_region_steals, note_region_threads,
        scope_with,
    };
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;

    /// Jobs per worker a `par_iter` region splits its input into. More
    /// than one, so thieves find whole blocks to steal when block costs
    /// are uneven; the runtime's scheduler layers its own (cost-aware)
    /// chunking on top of this.
    const BLOCKS_PER_WORKER: usize = 4;

    /// Entry point: `.par_iter()` on a borrowed collection.
    pub trait IntoParallelRefIterator<'data> {
        /// Element type yielded by reference.
        type Item: Sync + 'data;
        /// Start a parallel iterator over `&self`.
        fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    /// Borrowing parallel iterator over a slice.
    pub struct ParIter<'data, T> {
        items: &'data [T],
    }

    impl<'data, T: Sync> ParIter<'data, T> {
        /// Map each element in parallel.
        pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
        where
            F: Fn(&'data T) -> R + Sync,
            R: Send,
        {
            ParMap {
                items: self.items,
                f,
            }
        }
    }

    /// The result of [`ParIter::map`].
    pub struct ParMap<'data, T, F> {
        items: &'data [T],
        f: F,
    }

    impl<'data, T: Sync, R: Send, F: Fn(&'data T) -> R + Sync> ParMap<'data, T, F> {
        /// Evaluate in parallel and collect in input order. The target
        /// chooses the strategy through [`FromParMap`]: `Vec<R>` runs
        /// everything; `Result<Vec<U>, E>` short-circuits on `Err`.
        pub fn collect<C>(self) -> C
        where
            C: FromParMap<'data, T, R>,
        {
            C::from_par_map(self.items, &self.f)
        }
    }

    /// Collection targets for [`ParMap::collect`]. A trait (rather than
    /// plain `FromIterator`) so the `Result` target can install a
    /// poison flag that actually stops remaining work on the first
    /// `Err` — a blanket `FromIterator` collect would have to compute
    /// every element first.
    pub trait FromParMap<'data, T: Sync + 'data, R>: Sized {
        /// Run the mapping over `items` and build the collection.
        fn from_par_map<F>(items: &'data [T], f: &F) -> Self
        where
            F: Fn(&'data T) -> R + Sync;
    }

    impl<'data, T: Sync + 'data, R: Send> FromParMap<'data, T, R> for Vec<R> {
        fn from_par_map<F>(items: &'data [T], f: &F) -> Self
        where
            F: Fn(&'data T) -> R + Sync,
        {
            run_map(items, f)
        }
    }

    impl<'data, T: Sync + 'data, U: Send, E: Send> FromParMap<'data, T, Result<U, E>>
        for Result<Vec<U>, E>
    {
        fn from_par_map<F>(items: &'data [T], f: &F) -> Self
        where
            F: Fn(&'data T) -> Result<U, E> + Sync,
        {
            run_try_map(items, f)
        }
    }

    /// Split `items` into blocks and map them on a stealing scope;
    /// block results land in order-indexed slots and concatenate.
    fn run_map<'data, T, R, F>(items: &'data [T], f: &F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&'data T) -> R + Sync,
    {
        let threads = current_num_threads().min(items.len().max(1));
        if threads <= 1 || items.len() <= 1 {
            note_region_threads(1);
            note_region_steals(0);
            note_region_panics(0);
            return items.iter().map(f).collect();
        }
        let blocks = (threads * BLOCKS_PER_WORKER).min(items.len());
        let block = items.len().div_ceil(blocks);
        let slots: Vec<Mutex<Option<Vec<R>>>> =
            items.chunks(block).map(|_| Mutex::new(None)).collect();
        scope_with(threads, |sc| {
            for (chunk, slot) in items.chunks(block).zip(&slots) {
                sc.spawn(move |_| {
                    let out: Vec<R> = chunk.iter().map(f).collect();
                    *slot.lock().expect("result slot poisoned") = Some(out);
                });
            }
        });
        slots
            .into_iter()
            .flat_map(|s| {
                s.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker block missing")
            })
            .collect()
    }

    /// [`run_map`] for fallible mappings: the first `Err` sets a shared
    /// poison flag, queued blocks return immediately when they see it,
    /// and in-flight blocks stop at their next element boundary.
    fn run_try_map<'data, T, U, E, F>(items: &'data [T], f: &F) -> Result<Vec<U>, E>
    where
        T: Sync,
        U: Send,
        E: Send,
        F: Fn(&'data T) -> Result<U, E> + Sync,
    {
        let threads = current_num_threads().min(items.len().max(1));
        if threads <= 1 || items.len() <= 1 {
            note_region_threads(1);
            note_region_steals(0);
            note_region_panics(0);
            // `collect` into `Result` stops at the first `Err`.
            return items.iter().map(f).collect();
        }
        let blocks = (threads * BLOCKS_PER_WORKER).min(items.len());
        let block = items.len().div_ceil(blocks);
        let poisoned = AtomicBool::new(false);
        let error: Mutex<Option<E>> = Mutex::new(None);
        let slots: Vec<Mutex<Option<Vec<U>>>> =
            items.chunks(block).map(|_| Mutex::new(None)).collect();
        scope_with(threads, |sc| {
            for (chunk, slot) in items.chunks(block).zip(&slots) {
                let (poisoned, error) = (&poisoned, &error);
                sc.spawn(move |_| {
                    let mut out = Vec::with_capacity(chunk.len());
                    for item in chunk {
                        if poisoned.load(Ordering::Relaxed) {
                            return;
                        }
                        match f(item) {
                            Ok(v) => out.push(v),
                            Err(e) => {
                                poisoned.store(true, Ordering::Relaxed);
                                let mut first = error.lock().expect("error slot poisoned");
                                if first.is_none() {
                                    *first = Some(e);
                                }
                                return;
                            }
                        }
                    }
                    *slot.lock().expect("result slot poisoned") = Some(out);
                });
            }
        });
        if let Some(e) = error.into_inner().expect("error slot poisoned") {
            return Err(e);
        }
        Ok(slots
            .into_iter()
            .flat_map(|s| {
                s.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker block missing")
            })
            .collect())
    }
}

pub mod prelude {
    //! Glob-import surface matching `rayon::prelude`.
    pub use crate::iter::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::iter::IntoParallelRefIterator;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering as AtOrd};

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<i64> = (0..1000).collect();
        let sq: Vec<i64> = v.par_iter().map(|x| x * x).collect();
        assert_eq!(sq, (0..1000).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn collect_into_result_short_circuits_on_err() {
        let v: Vec<i64> = (0..100).collect();
        let ok: Result<Vec<i64>, String> = v.par_iter().map(|&x| Ok(x + 1)).collect();
        assert_eq!(ok.unwrap().len(), 100);

        // Every element fails. The first failure poisons the region, so
        // the closure must run far fewer times than the input length:
        // only blocks already in flight reach their next element check.
        let big: Vec<i64> = (0..100_000).collect();
        let calls = AtomicUsize::new(0);
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let err: Result<Vec<i64>, String> = pool.install(|| {
            big.par_iter()
                .map(|&x| {
                    calls.fetch_add(1, AtOrd::Relaxed);
                    Err::<i64, String>(format!("boom {x}"))
                })
                .collect()
        });
        assert!(err.is_err());
        let executed = calls.load(AtOrd::Relaxed);
        assert!(
            executed < big.len() / 2,
            "poison flag failed to stop remaining work: {executed} of {} elements ran",
            big.len()
        );

        // The sequential fallback short-circuits exactly.
        let calls = AtomicUsize::new(0);
        let pool1 = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let err: Result<Vec<i64>, String> = pool1.install(|| {
            big.par_iter()
                .map(|&x| {
                    calls.fetch_add(1, AtOrd::Relaxed);
                    if x == 10 {
                        Err("boom".to_string())
                    } else {
                        Ok(x)
                    }
                })
                .collect()
        });
        assert!(err.is_err());
        assert_eq!(calls.load(AtOrd::Relaxed), 11);
    }

    #[test]
    fn pool_install_limits_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| assert_eq!(current_num_threads(), 2));
        assert_ne!(current_num_threads(), 0);
    }

    #[test]
    fn really_runs_on_multiple_threads() {
        if machine_threads() < 2 {
            return;
        }
        let v: Vec<u32> = (0..64).collect();
        let ids: Vec<std::thread::ThreadId> =
            v.par_iter().map(|_| std::thread::current().id()).collect();
        let distinct: std::collections::HashSet<_> = ids.into_iter().collect();
        assert!(distinct.len() > 1, "expected work on >1 thread");
    }

    #[test]
    fn scope_runs_every_spawned_job_including_nested() {
        let ran = AtomicUsize::new(0);
        scope_with(3, |sc| {
            for _ in 0..10 {
                let ran = &ran;
                sc.spawn(move |inner| {
                    ran.fetch_add(1, AtOrd::Relaxed);
                    // Jobs may spawn follow-up jobs onto their own deque.
                    inner.spawn(move |_| {
                        ran.fetch_add(1, AtOrd::Relaxed);
                    });
                });
            }
        });
        assert_eq!(ran.load(AtOrd::Relaxed), 20);
    }

    #[test]
    fn idle_workers_steal_queued_jobs() {
        if machine_threads() < 2 {
            return;
        }
        // One fat job first: whoever takes it is busy while the other
        // workers must steal the rest to finish them.
        let ids = std::sync::Mutex::new(Vec::new());
        scope_with(4, |sc| {
            for i in 0..32 {
                let ids = &ids;
                sc.spawn(move |_| {
                    if i == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(20));
                    }
                    ids.lock().unwrap().push(std::thread::current().id());
                });
            }
        });
        let ids = ids.into_inner().unwrap();
        assert_eq!(ids.len(), 32);
        let distinct: std::collections::HashSet<_> = ids.into_iter().collect();
        assert!(distinct.len() > 1, "expected stolen work on >1 thread");
    }

    #[test]
    fn steal_counter_counts_rebalanced_jobs() {
        if machine_threads() < 2 {
            return;
        }
        // All 32 jobs are spawned from the region caller before workers
        // start, dealt round-robin across 4 deques; the first is fat, so
        // the other workers must steal to drain its owner's queue.
        scope_with(4, |sc| {
            for i in 0..32 {
                sc.spawn(move |_| {
                    if i == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(20));
                    }
                });
            }
        });
        assert!(
            last_region_steals() > 0,
            "a deliberately skewed region should record steals"
        );

        // An inline region (no jobs spawned) resets the gauge.
        scope_with(4, |_| {});
        assert_eq!(last_region_steals(), 0);
    }

    #[test]
    fn single_worker_region_never_steals() {
        scope_with(1, |sc| {
            for _ in 0..16 {
                sc.spawn(|_| {});
            }
        });
        assert_eq!(last_region_threads(), 1);
        assert_eq!(last_region_steals(), 0);
    }

    #[test]
    fn sink_scope_survives_panicking_jobs() {
        let ran = AtomicUsize::new(0);
        let caught = std::sync::Mutex::new(Vec::new());
        scope_with_sink(
            3,
            |payload| caught.lock().unwrap().push(panic_message(&*payload)),
            |sc| {
                for i in 0..20 {
                    let ran = &ran;
                    sc.spawn(move |_| {
                        if i % 5 == 0 {
                            panic!("boom {i}");
                        }
                        ran.fetch_add(1, AtOrd::Relaxed);
                    });
                }
            },
        );
        // Every non-panicking job still ran; every panic was delivered.
        assert_eq!(ran.load(AtOrd::Relaxed), 16);
        assert_eq!(last_region_panics(), 4);
        let mut msgs = caught.into_inner().unwrap();
        msgs.sort();
        assert_eq!(msgs, ["boom 0", "boom 10", "boom 15", "boom 5"]);

        // A healthy region resets the gauge.
        scope_with_sink(2, |_| {}, |sc| sc.spawn(|_| {}));
        assert_eq!(last_region_panics(), 0);
    }

    #[test]
    fn plain_scope_re_raises_after_draining() {
        let ran = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            scope_with(2, |sc| {
                for i in 0..8 {
                    let ran = &ran;
                    sc.spawn(move |_| {
                        if i == 3 {
                            panic!("one bad job");
                        }
                        ran.fetch_add(1, AtOrd::Relaxed);
                    });
                }
            })
        }));
        let payload = result.expect_err("region must re-raise");
        assert_eq!(panic_message(&*payload), "one bad job");
        // The panic poisoned only the region result — the other jobs
        // completed before the re-raise.
        assert_eq!(ran.load(AtOrd::Relaxed), 7);
        assert_eq!(last_region_panics(), 1);
    }

    #[test]
    fn par_iter_panic_poisons_only_its_region() {
        let v: Vec<i64> = (0..256).collect();
        let poisoned = catch_unwind(AssertUnwindSafe(|| {
            let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
            let _: Vec<i64> = pool.install(|| {
                v.par_iter()
                    .map(|&x| if x == 100 { panic!("elem {x}") } else { x })
                    .collect()
            });
        }));
        assert!(poisoned.is_err());
        // The executor is fully usable afterwards.
        let sq: Vec<i64> = v.par_iter().map(|x| x * x).collect();
        assert_eq!(sq.len(), 256);
        assert_eq!(last_region_panics(), 0);
    }

    #[test]
    fn last_region_threads_reflects_the_region() {
        let v: Vec<i64> = (0..64).collect();
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        let _: Vec<i64> = pool.install(|| v.par_iter().map(|&x| x).collect());
        assert_eq!(last_region_threads(), 3);
        let pool1 = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let _: Vec<i64> = pool1.install(|| v.par_iter().map(|&x| x).collect());
        assert_eq!(last_region_threads(), 1);
    }
}
