//! Minimal in-repo stand-in for the `rayon` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the *subset* of rayon's API it actually uses,
//! implemented on `std::thread::scope`. Parallelism is real (OS threads,
//! contiguous chunking, order-preserving collection); work stealing is
//! not — each `par_iter` splits its input into one contiguous chunk per
//! worker, which is exactly the granularity the runtime's chunked
//! scheduler feeds it.
//!
//! Supported surface:
//! * `prelude::*` → [`iter::IntoParallelRefIterator`] (`.par_iter()`) on
//!   slices and `Vec`, with `.map(...)` and `.collect()` (any
//!   `FromIterator`, including `Result<Vec<_>, E>`);
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] — a thread-count
//!   override scoped to the closure (used by thread-scaling benches);
//! * [`current_num_threads`].

use std::cell::Cell;

thread_local! {
    /// 0 = "use the machine default".
    static POOL_OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

fn machine_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Number of worker threads parallel iterators will use in this context.
pub fn current_num_threads() -> usize {
    let ov = POOL_OVERRIDE.with(|c| c.get());
    if ov == 0 {
        machine_threads()
    } else {
        ov
    }
}

/// Error building a thread pool (never produced by this stand-in, kept
/// for API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// New builder with default (machine) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the worker count (0 = machine default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            threads: if self.num_threads == 0 {
                machine_threads()
            } else {
                self.num_threads
            },
        })
    }
}

/// A "pool": in this stand-in, a scoped thread-count override.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

/// Restores the previous override even if the closure panics.
struct OverrideGuard(usize);

impl Drop for OverrideGuard {
    fn drop(&mut self) {
        POOL_OVERRIDE.with(|c| c.set(self.0));
    }
}

impl ThreadPool {
    /// Run `f` with this pool's thread count governing nested `par_iter`s.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = POOL_OVERRIDE.with(|c| c.replace(self.threads));
        let _guard = OverrideGuard(prev);
        f()
    }

    /// The pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

pub mod iter {
    //! Parallel iterator subset: `par_iter().map(f).collect()`.

    use super::current_num_threads;

    /// Entry point: `.par_iter()` on a borrowed collection.
    pub trait IntoParallelRefIterator<'data> {
        /// Element type yielded by reference.
        type Item: Sync + 'data;
        /// Start a parallel iterator over `&self`.
        fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { items: self }
        }
    }

    /// Borrowing parallel iterator over a slice.
    pub struct ParIter<'data, T> {
        items: &'data [T],
    }

    impl<'data, T: Sync> ParIter<'data, T> {
        /// Map each element in parallel.
        pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
        where
            F: Fn(&'data T) -> R + Sync,
            R: Send,
        {
            ParMap {
                items: self.items,
                f,
            }
        }
    }

    /// The result of [`ParIter::map`].
    pub struct ParMap<'data, T, F> {
        items: &'data [T],
        f: F,
    }

    impl<'data, T: Sync, R: Send, F: Fn(&'data T) -> R + Sync> ParMap<'data, T, F> {
        /// Evaluate in parallel and collect in input order.
        pub fn collect<C: FromIterator<R>>(self) -> C {
            run_map(self.items, &self.f).into_iter().collect()
        }
    }

    fn run_map<'data, T, R, F>(items: &'data [T], f: &F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&'data T) -> R + Sync,
    {
        let threads = current_num_threads().min(items.len().max(1));
        if threads <= 1 || items.len() <= 1 {
            return items.iter().map(f).collect();
        }
        let chunk = items.len().div_ceil(threads);
        let per_chunk: Vec<Vec<R>> = std::thread::scope(|s| {
            let handles: Vec<_> = items
                .chunks(chunk)
                .map(|c| s.spawn(move || c.iter().map(f).collect::<Vec<R>>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rayon stand-in worker panicked"))
                .collect()
        });
        per_chunk.into_iter().flatten().collect()
    }
}

pub mod prelude {
    //! Glob-import surface matching `rayon::prelude`.
    pub use crate::iter::IntoParallelRefIterator;
}

#[cfg(test)]
mod tests {
    use super::iter::IntoParallelRefIterator;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<i64> = (0..1000).collect();
        let sq: Vec<i64> = v.par_iter().map(|x| x * x).collect();
        assert_eq!(sq, (0..1000).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn collect_into_result_short_circuits_on_err() {
        let v: Vec<i64> = (0..100).collect();
        let ok: Result<Vec<i64>, String> = v.par_iter().map(|&x| Ok(x + 1)).collect();
        assert_eq!(ok.unwrap().len(), 100);
        let err: Result<Vec<i64>, String> = v
            .par_iter()
            .map(|&x| if x == 50 { Err("boom".into()) } else { Ok(x) })
            .collect();
        assert!(err.is_err());
    }

    #[test]
    fn pool_install_limits_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        pool.install(|| assert_eq!(current_num_threads(), 2));
        assert_ne!(current_num_threads(), 0);
    }

    #[test]
    fn really_runs_on_multiple_threads() {
        if machine_threads() < 2 {
            return;
        }
        let v: Vec<u32> = (0..64).collect();
        let ids: Vec<std::thread::ThreadId> =
            v.par_iter().map(|_| std::thread::current().id()).collect();
        let distinct: std::collections::HashSet<_> = ids.into_iter().collect();
        assert!(distinct.len() > 1, "expected work on >1 thread");
    }
}
