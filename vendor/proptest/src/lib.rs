//! Minimal in-repo stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset of proptest it uses: deterministic
//! pseudo-random sampling of strategies (ranges, tuples, `collection::vec`,
//! `prop_map` / `prop_flat_map` / `prop_filter_map`) driven by the
//! [`proptest!`] macro. No shrinking — a failing case panics with its
//! case number, and the RNG is seeded from the test name so every run
//! reproduces the same sequence.
//!
//! # Seed pinning and the `PDM_PROPTEST_SEED` knob
//!
//! Determinism-by-test-name means a failure reproduces *anywhere* with
//! no extra state. To widen coverage without losing that property, the
//! seed can be **perturbed explicitly** through the
//! `PDM_PROPTEST_SEED` environment variable: the variable's value
//! (parsed as `u64`, or FNV-hashed when it is not a number) is mixed
//! into every test's name-derived seed. CI pins `PDM_PROPTEST_SEED=1`
//! in the workflow, so the exact sampled sequence is part of the CI
//! configuration — a red run names a case any machine replays with
//!
//! ```sh
//! PDM_PROPTEST_SEED=1 cargo test --test imperfect_nests
//! ```
//!
//! and different local values (`PDM_PROPTEST_SEED=7 cargo test …`)
//! explore fresh sequences on demand. Unset, the pure name-derived
//! stream is used.

pub mod test_runner {
    //! Deterministic RNG plus the pass/fail/reject plumbing.

    /// xorshift64* — tiny, deterministic, good enough for test sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seed from an arbitrary string (the test name), so each test
        /// gets a distinct but reproducible stream; the
        /// `PDM_PROPTEST_SEED` environment variable (see the crate docs)
        /// perturbs the seed explicitly and reproducibly.
        pub fn deterministic(name: &str) -> Self {
            let mut h = Self::fnv(name);
            if let Ok(v) = std::env::var("PDM_PROPTEST_SEED") {
                let mix = v
                    .trim()
                    .parse::<u64>()
                    .unwrap_or_else(|_| Self::fnv(v.trim()));
                if mix != 0 {
                    h ^= mix.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                }
            }
            TestRng(h.max(1))
        }

        fn fnv(s: &str) -> u64 {
            let mut h = 0xcbf29ce484222325u64; // FNV-1a
            for b in s.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            h
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0.wrapping_mul(0x2545F4914F6CDD1D)
        }

        /// Uniform in `[0, n)` (`n > 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the case out; not a failure.
        Reject(String),
        /// `prop_assert*!` failed.
        Fail(String),
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values.
    pub trait Strategy {
        /// Generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then a dependent strategy from it.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Keep only values `f` maps to `Some`.
        fn prop_filter_map<U, F: Fn(Self::Value) -> Option<U>>(
            self,
            reason: &'static str,
            f: F,
        ) -> FilterMap<Self, F>
        where
            Self: Sized,
        {
            FilterMap {
                inner: self,
                f,
                reason,
            }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    /// See [`Strategy::prop_filter_map`].
    pub struct FilterMap<S, F> {
        inner: S,
        f: F,
        reason: &'static str,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            for _ in 0..10_000 {
                if let Some(v) = (self.f)(self.inner.sample(rng)) {
                    return v;
                }
            }
            panic!("prop_filter_map rejected 10000 samples: {}", self.reason);
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategies!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! tuple_strategies {
        ($(($($n:ident $idx:tt),+))*) => {$(
            impl<$($n: Strategy),+> Strategy for ($($n,)+) {
                type Value = ($($n::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }
}

pub mod collection {
    //! `vec(strategy, size)` — like `proptest::collection`.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Acceptable length specifications for [`vec()`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Build a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.lo + rng.below((self.size.hi - self.size.lo + 1) as u64) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Declare property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples its strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for case in 0..cfg.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strat), &mut rng);
                    )+
                    let outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => {}
                        Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {case} failed: {msg}")
                        }
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through the proptest plumbing.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` that reports through the proptest plumbing.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// `assert_ne!` that reports through the proptest plumbing.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)+);
    }};
}

/// Skip the current case when its precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

pub mod prelude {
    //! Glob-import surface matching `proptest::prelude`.
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -5i64..=5, y in 0usize..10) {
            prop_assert!((-5..=5).contains(&x));
            prop_assert!(y < 10);
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(0i64..=9, 3..7)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| (0..=9).contains(&e)));
        }

        #[test]
        fn map_and_flat_map_compose(
            m in (1usize..4).prop_flat_map(|n| crate::collection::vec(0i64..=3, n * 2))
        ) {
            prop_assert_eq!(m.len() % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("seed");
        let mut b = crate::test_runner::TestRng::deterministic("seed");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn env_seed_perturbs_reproducibly() {
        // Not testable via real env mutation without racing parallel
        // tests; check the mixing arithmetic through two fresh streams
        // instead: same name + same env state => same stream (covered
        // above), and the name-derived base already differs per name.
        let mut a = crate::test_runner::TestRng::deterministic("one");
        let mut b = crate::test_runner::TestRng::deterministic("two");
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
