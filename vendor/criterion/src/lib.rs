//! Minimal in-repo stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset of criterion it uses. Measurement is
//! real (monotonic wall clock, best-of-N samples, calibrated inner
//! iteration counts) but intentionally simple: no statistics beyond
//! best/median, no HTML reports. Results are printed one line per
//! benchmark: `name ... best 12.3 µs/iter (8.13 Melem/s)`.

use std::time::{Duration, Instant};

/// Re-export for benches that want it from this crate.
pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(800),
        }
    }
}

impl Criterion {
    /// Samples per benchmark (best is reported).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Target time budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget (accepted for API compatibility; the stand-in's
    /// calibration pass doubles as the warm-up).
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        run_one(self, &id.to_string(), None, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Override the time budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measurement_time = d;
        self
    }

    /// Run a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(self.criterion, &label, self.throughput, f);
        self
    }

    /// Run a benchmark parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (no-op; for API compatibility).
    pub fn finish(self) {}
}

/// Passed to the closure; `iter` performs the measurement.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `f` over this sample's calibrated iteration count.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let t0 = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = t0.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    c: &Criterion,
    label: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Calibrate: one iteration, timed, to pick the per-sample count.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let budget = c.measurement_time.as_secs_f64() / c.sample_size as f64;
    let iters = ((budget / per_iter.as_secs_f64()).floor() as u64).clamp(1, 1_000_000);

    let mut best = f64::INFINITY;
    for _ in 0..c.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        best = best.min(b.elapsed.as_secs_f64() / b.iters.max(1) as f64);
    }

    let tp = match throughput {
        Some(Throughput::Elements(n)) => format!(" ({} elem/s)", si(n as f64 / best)),
        Some(Throughput::Bytes(n)) => format!(" ({}B/s)", si(n as f64 / best)),
        None => String::new(),
    };
    println!("{label:<60} best {}/iter{tp}", si_time(best));
}

fn si(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2} G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} k", v / 1e3)
    } else {
        format!("{v:.2} ")
    }
}

fn si_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Define a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30));
        let mut ran = 0u64;
        c.bench_function("noop", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("f", 7), &7u64, |b, &x| b.iter(|| x * 2));
        group.finish();
    }
}
