//! `vardep` — command-line front end to the variable-distance loop
//! parallelizer.
//!
//! ```text
//! vardep analyze  [-p N=16]... (<file> | -e "<loop>")   PDM analysis
//! vardep plan     [-p N=16]... (<file> | -e "<loop>")   transformed code
//! vardep run      [-p N=16]... (<file> | -e "<loop>")   execute + verify + time
//! vardep isdg     [-p N=16]... (<file> | -e "<loop>")   dependence graph (2-D: grid)
//! vardep shootout [-p N=16]... (<file> | -e "<loop>")   all Table-1 methods
//! ```
//!
//! Example:
//!
//! ```sh
//! vardep plan -e "for i = 0..=20 { A[3*i + 9] = A[3*i] + 1; }"
//! ```

use pdm_baselines::report::Parallelizer;
use std::process::ExitCode;
use vardep_loops::prelude::*;

fn usage() -> ExitCode {
    eprintln!(
        "usage: vardep <analyze|plan|run|isdg|shootout> [-p NAME=VALUE]... (<file> | -e \"<loop>\")"
    );
    ExitCode::from(2)
}

struct Args {
    command: String,
    params: Vec<(String, i64)>,
    source: String,
}

fn parse_args() -> Result<Args, String> {
    let mut it = std::env::args().skip(1);
    let command = it.next().ok_or("missing command")?;
    let mut params = Vec::new();
    let mut source: Option<String> = None;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-p" | "--param" => {
                let kv = it.next().ok_or("-p needs NAME=VALUE")?;
                let (k, v) = kv.split_once('=').ok_or("-p needs NAME=VALUE")?;
                let v: i64 = v.parse().map_err(|_| format!("bad value in '{kv}'"))?;
                params.push((k.to_string(), v));
            }
            "-e" | "--expr" => {
                source = Some(it.next().ok_or("-e needs a loop string")?);
            }
            path => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                source = Some(text);
            }
        }
    }
    Ok(Args {
        command,
        params,
        source: source.ok_or("no loop source given (file or -e)")?,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let params: Vec<(&str, i64)> = args.params.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    // One session for the whole invocation: every command that plans
    // does so through the session's template cache, and all pipeline
    // failures surface as one PdmError.
    let session = Session::new();
    let nest = match session.parse_with(&args.source, &params) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("parse error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let outcome = match args.command.as_str() {
        "analyze" => cmd_analyze(&session, &nest),
        "plan" => cmd_plan(&session, &nest),
        "run" => cmd_run(&session, &nest),
        "isdg" => cmd_isdg(&nest),
        "shootout" => cmd_shootout(&nest),
        _ => {
            return usage();
        }
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type AnyError = Box<dyn std::error::Error>;

fn cmd_analyze(session: &Session, nest: &LoopNest) -> Result<(), AnyError> {
    println!("{}", vardep_loops::loopir::pretty::render(nest));
    let analysis = session.analyze(nest)?;
    println!(
        "pseudo distance matrix ({} x {}):",
        analysis.rank(),
        analysis.depth()
    );
    print!("{}", analysis.pdm());
    println!(
        "\nrank {} / depth {}   uniform: {}   dependences: {}",
        analysis.rank(),
        analysis.depth(),
        analysis.is_uniform(),
        analysis.has_dependences()
    );
    let zeros = analysis.zero_cols();
    if !zeros.is_empty() {
        println!(
            "zero columns (parallel loops by Lemma 1): {:?}",
            zeros.iter().map(|k| k + 1).collect::<Vec<_>>()
        );
    }
    if let Some(idx) = analysis.lattice()?.index() {
        println!("lattice index det(H) = {idx} (partition parallelism)");
    }
    println!("\nreference pairs:");
    for (k, p) in analysis.pairs().iter().enumerate() {
        let status = if p.lattice.solvable {
            format!(
                "d0 = {:?}, hom rank {}",
                p.lattice.particular.as_ref().map(|d| d.as_slice().to_vec()),
                p.lattice.hom_rank
            )
        } else {
            "no dependence (exact test)".to_string()
        };
        println!(
            "  #{k} stmts ({},{}) array {}: {status}",
            p.stmt_a, p.stmt_b, p.array.0
        );
    }
    let prec = vardep_loops::core::deptest::compare_tests(nest)?;
    println!(
        "\ndependence tests: {} pairs — gcd disproves {}, banerjee {}, exact {}",
        prec.pairs, prec.gcd_independent, prec.banerjee_independent, prec.exact_independent
    );
    Ok(())
}

fn cmd_plan(session: &Session, nest: &LoopNest) -> Result<(), AnyError> {
    let plan = session.parallelize(nest)?;
    println!("{}", render_plan(nest, &plan)?);
    Ok(())
}

fn cmd_run(session: &Session, nest: &LoopNest) -> Result<(), AnyError> {
    let plan = session.parallelize(nest)?;
    // Allocate, initialize, and compile up front so every timer below
    // covers execution only — the three speedups stay comparable.
    let mut m_seq = Memory::for_nest(nest)?;
    let mut m_par = Memory::for_nest(nest)?;
    let mut m_cmp = Memory::for_nest(nest)?;
    m_seq.init_deterministic(0);
    m_par.init_deterministic(0);
    m_cmp.init_deterministic(0);
    let compiled = vardep_loops::runtime::CompiledPlan::compile(nest, &plan, &m_cmp)?;

    let t0 = std::time::Instant::now();
    let iters = run_sequential(nest, &m_seq)?;
    let t_seq = t0.elapsed();

    let t1 = std::time::Instant::now();
    run_parallel(nest, &plan, &m_par)?;
    let t_par = t1.elapsed();

    let t2 = std::time::Instant::now();
    compiled.run_parallel(&m_cmp)?;
    let t_cmp = t2.elapsed();

    let reference = m_seq.snapshot();
    let equal = reference == m_par.snapshot();
    let compiled_equal = reference == m_cmp.snapshot();
    println!(
        "{iters} iterations | doall {} | partitions {} | groups {}",
        plan.doall_count(),
        plan.partition_count(),
        vardep_loops::runtime::exec::group_count(&plan)?
    );
    println!(
        "interp seq {:.3} ms | interp par {:.3} ms (x{:.2}) | compiled par {:.3} ms (x{:.2}) | identical: {}",
        t_seq.as_secs_f64() * 1e3,
        t_par.as_secs_f64() * 1e3,
        t_seq.as_secs_f64() / t_par.as_secs_f64().max(1e-12),
        t_cmp.as_secs_f64() * 1e3,
        t_seq.as_secs_f64() / t_cmp.as_secs_f64().max(1e-12),
        equal && compiled_equal,
    );
    if !equal {
        return Err("parallel result diverged".into());
    }
    if !compiled_equal {
        return Err("compiled result diverged".into());
    }
    Ok(())
}

fn cmd_isdg(nest: &LoopNest) -> Result<(), AnyError> {
    let g = vardep_loops::isdg::build(nest)?;
    if nest.depth() == 2 {
        println!("{}", vardep_loops::isdg::render::ascii_grid(&g));
    }
    let m = vardep_loops::isdg::metrics::metrics(&g);
    println!(
        "iterations {} | dependent {} | edges {} | chains {} | critical path {} | avg parallelism {:.2}",
        m.iterations, m.dependent, m.edges, m.components, m.critical_path, m.avg_parallelism
    );
    println!("\ntop distances:");
    for (d, c) in vardep_loops::isdg::render::distance_histogram(&g)
        .into_iter()
        .take(8)
    {
        println!("  {d:?} x{c}");
    }
    Ok(())
}

fn cmd_shootout(nest: &LoopNest) -> Result<(), AnyError> {
    let methods: Vec<Box<dyn Parallelizer>> = vec![
        Box::new(pdm_baselines::banerjee::Banerjee),
        Box::new(pdm_baselines::dhollander::DHollander),
        Box::new(pdm_baselines::wolf_lam::WolfLam),
        Box::new(pdm_baselines::shang::ShangBdv),
        Box::new(pdm_baselines::pdm_method::PdmMethod),
    ];
    for m in &methods {
        match m.analyze(nest) {
            Ok(r) => println!("{}", r.summary()),
            Err(e) => println!("{:<12} error: {e}", m.name()),
        }
    }
    Ok(())
}
