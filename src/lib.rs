//! # vardep-loops — parallelizing loops with variable dependence distances
//!
//! Facade crate re-exporting the whole workspace: a production Rust
//! implementation of *Yu & D'Hollander, "Partitioning Loops with Variable
//! Dependence Distances", ICPP 2000*.
//!
//! ## One-minute tour
//!
//! ```
//! use vardep_loops::prelude::*;
//!
//! // The paper's §4.1-style loop: variable-distance dependences
//! // (every distance is a multiple of (2,2), but the multiple varies
//! // with the iteration).
//! let nest = parse_loop(
//!     "for i1 = 0..10 { for i2 = 0..10 {
//!        A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
//!     } }",
//! ).unwrap();
//!
//! // Analyze: derive the pseudo distance matrix (PDM).
//! let analysis = analyze(&nest).unwrap();
//! assert_eq!(analysis.pdm().rows(), 1);          // rank-1 lattice [[2,2]]
//!
//! // Transform: a legal schedule with one outer doall loop and two
//! // independent partitions (det = 2).
//! let plan = parallelize(&nest).unwrap();
//! assert_eq!(plan.doall_count(), 1);
//! assert_eq!(plan.partition_count(), 2);
//!
//! // Execute: rayon-parallel run is bit-identical to sequential.
//! let report = vardep_loops::runtime::equivalence::compare(&nest, &plan, 7).unwrap();
//! assert!(report.equal);
//! ```
//!
//! ## Serving many sizes of one kernel
//!
//! The transformation is valid for any loop bounds, so one kernel shape
//! can be planned **once** and re-bounded per problem size — no repeated
//! dependence testing or Fourier–Motzkin:
//!
//! ```
//! use vardep_loops::prelude::*;
//!
//! let shape = parse_loop_symbolic(
//!     "for i1 = 0..N { for i2 = 0..N {
//!        A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
//!     } }",
//!     &["N"],
//! ).unwrap();
//! let template = plan_template(&shape).unwrap();   // analysis + FM, once
//! for n in [10i64, 1000] {
//!     let plan = template.instantiate(&[("N", n)]).unwrap(); // no FM
//!     assert_eq!(plan.partition_count(), 2);
//! }
//! ```
//!
//! ## Imperfect nests: the LU example
//!
//! The paper's machinery assumes a perfect nest, but the pipeline now
//! accepts **imperfect** ones — statements between loop levels — by
//! normalizing them into perfect kernels (code sinking with `when`
//! guards, or loop fission with a dependence-direction proof) and
//! planning each kernel separately, sequenced by a dependence DAG with
//! barriers only at its edges. An LU-style elimination, with statements
//! at three different depths, runs end to end:
//!
//! ```
//! use vardep_loops::prelude::*;
//!
//! let imp = parse_imperfect(
//!     "for k = 0..=5 {
//!        A[k, k] = A[k, k] + 1;                       # pivot, depth 1
//!        for i = k + 1..=7 {
//!          A[i, k] = A[i, k] * A[k, k];               # scale, depth 2
//!          for j = k + 1..=7 {
//!            A[i, j] = A[i, j] - A[i, k] * A[k, j];   # update, depth 3
//!          }
//!        }
//!      }",
//! ).unwrap();
//!
//! // The trailing update feeds the next step's pivot — a cycle through
//! // k — so fission is illegal and the normalizer sinks: one perfect
//! // kernel whose pivot/scale statements are guarded on the first
//! // inner iterations.
//! let prog = to_perfect_kernels(&imp).unwrap();
//! assert_eq!(prog.kernels.len(), 1);
//! assert!(prog.kernels[0].nest.body()[0].is_guarded());
//!
//! // Plan + execute: staged parallel runs are bit-identical to the
//! // imperfect reference interpreter.
//! let pp = parallelize_program(&imp).unwrap();
//! let rep = vardep_loops::runtime::equivalence::compare_program(&imp, &pp, 7).unwrap();
//! assert!(rep.all_equal());
//! ```
//!
//! A prologue/epilogue nest instead *fissions* into multiple kernels —
//! see `examples/imperfect_lu.rs` and
//! [`pdm_core::program::ProgramPlan`] for the staged schedule.
//!
//! Crate map: [`matrix`] (exact integer linear algebra), [`poly`]
//! (Fourier–Motzkin), [`loopir`] (nest IR + DSL, perfect and
//! imperfect), [`core`] (the paper's analysis and transformations),
//! [`runtime`] (rayon execution, staged multi-kernel programs),
//! [`isdg`] (ground-truth dependence graphs), [`baselines`] (the
//! related-work methods of Table 1).

pub use pdm_baselines as baselines;
pub use pdm_core as core;
pub use pdm_isdg as isdg;
pub use pdm_loopir as loopir;
pub use pdm_matrix as matrix;
pub use pdm_poly as poly;
pub use pdm_runtime as runtime;

/// Convenient glob-import surface for examples and quick scripts.
pub mod prelude {
    pub use pdm_core::codegen::{render_plan, render_program_plan};
    pub use pdm_core::pdm::PdmAnalysis;
    pub use pdm_core::pipeline::{analyze, parallelize, parallelize_program};
    pub use pdm_core::plan::ParallelPlan;
    pub use pdm_core::program::ProgramPlan;
    pub use pdm_core::template::{plan_template, PlanTemplate};
    pub use pdm_isdg::graph::Isdg;
    pub use pdm_loopir::imperfect::ImperfectNest;
    pub use pdm_loopir::nest::LoopNest;
    pub use pdm_loopir::normalize::{sink_fully, to_perfect_kernels, unsink};
    pub use pdm_loopir::parse::{
        parse_imperfect, parse_loop, parse_loop_symbolic, parse_loop_with,
    };
    pub use pdm_matrix::{IMat, IVec, Lattice, Unimodular};
    pub use pdm_runtime::exec::{run_parallel, run_sequential};
    pub use pdm_runtime::memory::Memory;
    pub use pdm_runtime::staged::{run_imperfect_sequential, CompiledProgram};
    pub use pdm_runtime::template::{InstantiateCompiled, PlanCache};
}
