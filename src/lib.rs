//! # vardep-loops — parallelizing loops with variable dependence distances
//!
//! Facade crate re-exporting the whole workspace: a production Rust
//! implementation of *Yu & D'Hollander, "Partitioning Loops with Variable
//! Dependence Distances", ICPP 2000*.
//!
//! ## One-minute tour
//!
//! A [`Session`] is the front door: it wraps parse → analyze → template
//! → cache → execute behind one object with one error type
//! ([`PdmError`]), caches plan templates per nest *shape*, and fixes the
//! execution schedule and thread pool at construction.
//!
//! ```
//! use vardep_loops::Session;
//!
//! let session = Session::new();
//!
//! // The paper's §4.1-style loop: variable-distance dependences
//! // (every distance is a multiple of (2,2), but the multiple varies
//! // with the iteration).
//! let nest = session.parse(
//!     "for i1 = 0..10 { for i2 = 0..10 {
//!        A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
//!     } }",
//! ).unwrap();
//!
//! // Analyze: derive the pseudo distance matrix (PDM).
//! let analysis = session.analyze(&nest).unwrap();
//! assert_eq!(analysis.pdm().rows(), 1);          // rank-1 lattice [[2,2]]
//!
//! // Plan: a legal schedule with one outer doall loop and two
//! // independent partitions (det = 2) — served from the session's
//! // template cache, planned at most once for this shape.
//! let plan = session.parallelize(&nest).unwrap();
//! assert_eq!(plan.doall_count(), 1);
//! assert_eq!(plan.partition_count(), 2);
//!
//! // Execute: instantiate, seed memory deterministically, run on the
//! // session's pool, and digest the result.
//! let outcome = session.run(&nest, &[], 7).unwrap();
//! assert_eq!(outcome.iterations, 100);
//! ```
//!
//! ## Serving many sizes of one kernel
//!
//! The transformation is valid for any loop bounds, so one kernel shape
//! is planned **once** — symbolic analysis plus parametric
//! Fourier–Motzkin — and re-bounded per problem size. The session does
//! the caching: the first `run` plans, every later size instantiates.
//!
//! ```
//! use vardep_loops::Session;
//!
//! let session = Session::new();
//! let shape = session.parse_symbolic(
//!     "for i1 = 0..N { for i2 = 0..N {
//!        A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
//!     } }",
//!     &["N"],
//! ).unwrap();
//! for n in [10i64, 100] {
//!     let outcome = session.run(&shape, &[("N", n)], 1).unwrap();
//!     assert_eq!(outcome.iterations, (n * n) as u64);
//! }
//! // One template served both sizes.
//! assert_eq!(session.cache_stats().planned, 1);
//! ```
//!
//! Behind a socket, the same session becomes a long-running service:
//! [`PlanServer`] speaks a length-prefixed JSON protocol (shapes
//! addressable by source or by structural hash), deduplicates
//! concurrent planning through a sharded single-flight cache, and
//! exposes a `/metrics`-style text page — see the [`service`] crate
//! docs for the wire format.
//!
//! ## Size-dependent dependences: inspector/executor speculation
//!
//! When a parameter appears in a *subscript* — not just a bound — the
//! dependence structure itself changes with the problem size, and no
//! static plan can be exact for every valuation. The session plans the
//! parameter-free conservative **hull** once, and a runtime
//! **inspector** audits each concrete valuation by walking its access
//! lattice (the race checker's conflict detection turned certifier).
//! The verdict is cached per `(shape, valuation)` — and, when the
//! audited access geometry admits it, the template derives a whole
//! **stability interval** of valuations on which the verdict provably
//! holds, cached ahead of the point entries so every later in-interval
//! valuation skips the audit outright. The verdict picks the executor:
//!
//! * **certified** — the hull plan is exact here; run fully parallel;
//! * **refined** — cross-group conflicts admit a stage order; run the
//!   hull groups in audited stages through the compiled range driver
//!   (interpreted stage walker as fallback);
//! * **rejected** — no stage order exists; fall back to the sequential
//!   reference. Never wrong, at worst not parallel.
//!
//! ```
//! use vardep_loops::Session;
//!
//! let session = Session::new();
//! let shape = session
//!     .parse_symbolic("for i = 0..=19 { A[i + K] = A[i] + 1; }", &["K"])
//!     .unwrap();
//!
//! // K = 0: every write lands on its own read cell — certified.
//! let outcome = session.run(&shape, &[("K", 0)], 1).unwrap();
//! assert_eq!(outcome.verdict.as_ref().unwrap().kind(), "certified");
//!
//! // K = 1: each write feeds a neighboring group — demoted, not wrong.
//! let outcome = session.run(&shape, &[("K", 1)], 1).unwrap();
//! assert_ne!(outcome.verdict.as_ref().unwrap().kind(), "certified");
//!
//! // One audit per valuation; later runs hit the verdict cache.
//! assert_eq!(session.verdicts().hit_stats(), (0, 2));
//! session.run(&shape, &[("K", 0)], 2).unwrap();
//! assert_eq!(session.verdicts().hit_stats(), (1, 2));
//! ```
//!
//! Over the wire, `run` responses carry the `verdict` and whether it
//! was served from a certified interval (`interval_hit`); the metrics
//! page counts `pdm_inspector_{certified,refined,rejected}_total`,
//! `pdm_inspector_interval_hits_total`, the verdict cache's
//! hit/miss/eviction counters, and audit latency. The verdict cache
//! itself is bounded (LRU per shard, `PDM_VERDICT_CAPACITY`).
//! `BENCH_inspector.json` gates the certified speedup, the
//! steady-state audit overhead, the compiled-over-interpreted refined
//! stage speedup, and the in-interval storm's audit-skip ratio.
//!
//! ## Imperfect nests: the LU example
//!
//! The paper's machinery assumes a perfect nest, but the pipeline
//! accepts **imperfect** ones — statements between loop levels — by
//! normalizing them into perfect kernels (code sinking with `when`
//! guards, or loop fission with a dependence-direction proof) and
//! planning each kernel separately, sequenced by a dependence DAG with
//! barriers only at its edges. An LU-style elimination, with statements
//! at three different depths, runs end to end:
//!
//! ```
//! use vardep_loops::prelude::*;
//!
//! let session = Session::new();
//! let imp = session.parse_imperfect(
//!     "for k = 0..=5 {
//!        A[k, k] = A[k, k] + 1;                       # pivot, depth 1
//!        for i = k + 1..=7 {
//!          A[i, k] = A[i, k] * A[k, k];               # scale, depth 2
//!          for j = k + 1..=7 {
//!            A[i, j] = A[i, j] - A[i, k] * A[k, j];   # update, depth 3
//!          }
//!        }
//!      }",
//! ).unwrap();
//!
//! // The trailing update feeds the next step's pivot — a cycle through
//! // k — so fission is illegal and the normalizer sinks: one perfect
//! // kernel whose pivot/scale statements are guarded on the first
//! // inner iterations.
//! let prog = to_perfect_kernels(&imp).unwrap();
//! assert_eq!(prog.kernels.len(), 1);
//! assert!(prog.kernels[0].nest.body()[0].is_guarded());
//!
//! // Plan + execute: staged parallel runs are bit-identical to the
//! // imperfect reference interpreter.
//! let pp = session.plan_program(&imp).unwrap();
//! let rep = vardep_loops::runtime::equivalence::compare_program(&imp, &pp, 7).unwrap();
//! assert!(rep.all_equal());
//! ```
//!
//! A prologue/epilogue nest instead *fissions* into multiple kernels —
//! see `examples/imperfect_lu.rs` and
//! [`pdm_core::program::ProgramPlan`] for the staged schedule.
//!
//! Crate map: [`matrix`] (exact integer linear algebra), [`poly`]
//! (Fourier–Motzkin), [`loopir`] (nest IR + DSL, perfect and
//! imperfect), [`core`] (the paper's analysis and transformations),
//! [`runtime`] (work-stealing execution, sharded plan + verdict caches,
//! the speculative inspector, staged multi-kernel programs),
//! [`service`] (the `Session` facade, TCP plan
//! server, wire protocol, metrics), [`isdg`] (ground-truth dependence
//! graphs), [`baselines`] (the related-work methods of Table 1).

pub use pdm_baselines as baselines;
pub use pdm_core as core;
pub use pdm_isdg as isdg;
pub use pdm_loopir as loopir;
pub use pdm_matrix as matrix;
pub use pdm_poly as poly;
pub use pdm_runtime as runtime;
pub use pdm_service as service;

pub use pdm_service::{
    ClientBuilder, Deadline, Faults, PdmError, PlanServer, RunOutcome, ServiceClient, Session,
    SessionBuilder,
};

/// Convenient glob-import surface for examples and quick scripts.
///
/// [`Session`] is the primary entry point; the lower-level types stay
/// re-exported for code that inspects plans, memory, or the IR
/// directly. The single-shot pipeline free functions that used to live
/// here (`parse_loop`, `analyze`, `parallelize`, `plan_template`, ...)
/// are deprecated shims at the crate root now — each one re-parses,
/// re-analyzes, and re-plans on every call, which a session avoids.
pub mod prelude {
    pub use crate::{PdmError, PlanServer, RunOutcome, ServiceClient, Session, SessionBuilder};
    pub use pdm_core::codegen::{render_plan, render_program_plan};
    pub use pdm_core::pdm::PdmAnalysis;
    pub use pdm_core::plan::ParallelPlan;
    pub use pdm_core::program::ProgramPlan;
    pub use pdm_core::template::PlanTemplate;
    pub use pdm_isdg::graph::Isdg;
    pub use pdm_loopir::imperfect::ImperfectNest;
    pub use pdm_loopir::nest::LoopNest;
    pub use pdm_loopir::normalize::{sink_fully, to_perfect_kernels, unsink};
    pub use pdm_matrix::{IMat, IVec, Lattice, Unimodular};
    pub use pdm_runtime::exec::{run_parallel, run_sequential};
    pub use pdm_runtime::memory::Memory;
    pub use pdm_runtime::staged::{run_imperfect_sequential, CompiledProgram};
    pub use pdm_runtime::template::{InstantiateCompiled, PlanCache};
    pub use pdm_runtime::{audit, run_with_verdict, RuntimeConfig, ShardedPlanCache, Verdict};
}

// ---------------------------------------------------------------------
// Deprecated single-shot shims.
//
// The pre-Session API: free functions that run one pipeline stage per
// call, with per-crate error types and no caching. Each is a thin
// delegation kept for source compatibility; new code should hold a
// `Session`, which shares parsed schedules, pools templates per shape,
// and unifies errors under `PdmError`.
// ---------------------------------------------------------------------

/// Parse a concrete loop nest from DSL source.
#[deprecated(note = "use `Session::parse` — a session caches downstream planning per shape")]
pub fn parse_loop(src: &str) -> Result<loopir::nest::LoopNest, loopir::IrError> {
    loopir::parse::parse_loop(src)
}

/// Parse with named values substituted.
#[deprecated(note = "use `Session::parse_with`")]
pub fn parse_loop_with(
    src: &str,
    params: &[(&str, i64)],
) -> Result<loopir::nest::LoopNest, loopir::IrError> {
    loopir::parse::parse_loop_with(src, params)
}

/// Parse keeping `params` symbolic.
#[deprecated(note = "use `Session::parse_symbolic`")]
pub fn parse_loop_symbolic(
    src: &str,
    params: &[&str],
) -> Result<loopir::nest::LoopNest, loopir::IrError> {
    loopir::parse::parse_loop_symbolic(src, params)
}

/// Parse an imperfect nest (statements between loop levels).
#[deprecated(note = "use `Session::parse_imperfect`")]
pub fn parse_imperfect(src: &str) -> Result<loopir::imperfect::ImperfectNest, loopir::IrError> {
    loopir::parse::parse_imperfect(src)
}

/// Derive the pseudo-distance-matrix analysis of a nest.
#[deprecated(note = "use `Session::analyze`")]
pub fn analyze(nest: &loopir::nest::LoopNest) -> Result<core::pdm::PdmAnalysis, core::CoreError> {
    core::analyze(nest)
}

/// Plan a concrete nest from scratch (no caching).
#[deprecated(
    note = "use `Session::parallelize` — the session plans each shape once and caches the template"
)]
pub fn parallelize(
    nest: &loopir::nest::LoopNest,
) -> Result<core::plan::ParallelPlan, core::CoreError> {
    core::parallelize(nest)
}

/// Plan an imperfect nest into a staged multi-kernel program.
#[deprecated(note = "use `Session::plan_program`")]
pub fn parallelize_program(
    imp: &loopir::imperfect::ImperfectNest,
) -> Result<core::program::ProgramPlan, core::CoreError> {
    core::parallelize_program(imp)
}

/// Plan a symbolic shape into a reusable template (no caching).
#[deprecated(
    note = "use `Session::plan` — the session deduplicates planning through its sharded cache"
)]
pub fn plan_template(
    nest: &loopir::nest::LoopNest,
) -> Result<core::template::PlanTemplate, core::CoreError> {
    core::plan_template(nest)
}
