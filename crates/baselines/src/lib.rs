//! # pdm-baselines — the related-work methods of the paper's Table 1
//!
//! From-scratch implementations of the comparison points the paper
//! positions itself against, behind one [`report::Parallelizer`] trait so
//! the Table-1 reproduction can *run* every method on a common loop suite
//! and report measured applicability and extracted parallelism:
//!
//! * [`banerjee`] — the classic **uniform distance** unimodular framework
//!   (Banerjee [1–3]): constant distance vectors only; parallelism through
//!   wavefront skewing (inner `doall`s separated by barriers).
//! * [`dhollander`] — **partitioning and labeling** of loops with constant
//!   distance matrices (D'Hollander '92 \[6\]): `det(HNF(D))` independent
//!   partitions, again uniform-only.
//! * [`wolf_lam`] — **dependence/direction vectors** (Wolf & Lam \[14, 15\]):
//!   applicable to any loop, but the sign-abstraction collapses variable
//!   distances to directions, losing the lattice structure the PDM keeps.
//! * [`shang`] — **BDV uniformization** (Shang et al. \[17\]): distance sets
//!   as nonnegative combinations of basic dependence vectors; rank-based
//!   parallelism but no lexicographic order, so a linear schedule must be
//!   added.
//! * [`pdm_method`] — this paper, wrapped in the same trait.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod banerjee;
pub mod dhollander;
pub mod pdm_method;
pub mod report;
pub mod shang;
pub mod suite;
pub mod wolf_lam;

pub use report::{MethodReport, Parallelizer};

/// Errors from baseline analyses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// Exact arithmetic failure.
    Matrix(pdm_matrix::MatrixError),
    /// Loop IR failure.
    Ir(pdm_loopir::IrError),
    /// Core failure.
    Core(String),
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::Matrix(e) => write!(f, "matrix error: {e}"),
            BaselineError::Ir(e) => write!(f, "loop IR error: {e}"),
            BaselineError::Core(m) => write!(f, "core error: {m}"),
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<pdm_matrix::MatrixError> for BaselineError {
    fn from(e: pdm_matrix::MatrixError) -> Self {
        BaselineError::Matrix(e)
    }
}

impl From<pdm_loopir::IrError> for BaselineError {
    fn from(e: pdm_loopir::IrError) -> Self {
        BaselineError::Ir(e)
    }
}

impl From<pdm_core::CoreError> for BaselineError {
    fn from(e: pdm_core::CoreError) -> Self {
        BaselineError::Core(e.to_string())
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, BaselineError>;
