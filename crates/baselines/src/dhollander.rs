//! D'Hollander's partitioning and labeling of loops \[6\] (1992).
//!
//! The direct ancestor of the paper's Theorem 2, restricted to **constant**
//! distance matrices: HNF-reduce the (uniform) distance vectors, expose
//! zero columns as `doall` loops via the unimodular machinery, and split
//! the rest into `det` independent partitions. The PDM paper generalizes
//! exactly this construction to variable distances; on uniform loops the
//! two coincide — a property the tests exploit.

use crate::banerjee::uniform_distances;
use crate::report::{MethodReport, Parallelizer};
use crate::Result;
use pdm_core::algorithm1::algorithm1;
use pdm_core::partition::Partitioning;
use pdm_loopir::nest::LoopNest;
use pdm_matrix::hnf::hermite_normal_form;
use pdm_matrix::mat::IMat;

/// The D'Hollander '92 constant-distance partitioning method.
pub struct DHollander;

impl Parallelizer for DHollander {
    fn name(&self) -> &'static str {
        "dhollander92"
    }

    fn analyze(&self, nest: &LoopNest) -> Result<MethodReport> {
        let n = nest.depth();
        let Some(dists) = uniform_distances(nest)? else {
            return Ok(MethodReport {
                method: self.name(),
                dependence_repr: "U",
                applicable: false,
                reason: "variable dependence distances".into(),
                outer_doall: 0,
                inner_doall: 0,
                partitions: 1,
                order_preserving: true,
            });
        };
        if dists.is_empty() {
            return Ok(MethodReport {
                method: self.name(),
                dependence_repr: "U",
                applicable: true,
                reason: "no dependences".into(),
                outer_doall: n,
                inner_doall: 0,
                partitions: 1,
                order_preserving: true,
            });
        }
        let d = IMat::from_rows(&dists.iter().map(|v| v.0.clone()).collect::<Vec<_>>())
            .map_err(crate::BaselineError::Matrix)?;
        let h = hermite_normal_form(&d)
            .map_err(crate::BaselineError::Matrix)?
            .hnf;
        let zeroed = algorithm1(&h).map_err(|e| crate::BaselineError::Core(e.to_string()))?;
        let rho = h.rows();
        let sub = zeroed.transformed.submatrix(0, rho, zeroed.zero_cols, n);
        let partitions = Partitioning::new(sub)
            .map_err(|e| crate::BaselineError::Core(e.to_string()))?
            .count();
        Ok(MethodReport {
            method: self.name(),
            dependence_repr: "U",
            applicable: true,
            reason: format!("distance matrix rank {rho}"),
            outer_doall: zeroed.zero_cols,
            inner_doall: 0,
            partitions,
            order_preserving: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_core::parallelize;
    use pdm_loopir::parse::parse_loop;

    #[test]
    fn strided_uniform_loop_partitions() {
        // A[i] = A[i-3]: distance 3 -> 3 partitions.
        let nest = parse_loop("for i = 3..=30 { A[i] = A[i - 3] + 1; }").unwrap();
        let r = DHollander.analyze(&nest).unwrap();
        assert!(r.applicable);
        assert_eq!(r.partitions, 3);
        assert_eq!(r.outer_doall, 0);
    }

    #[test]
    fn agrees_with_pdm_on_uniform_loops() {
        // On uniform loops the PDM pipeline must match '92 exactly.
        for src in [
            "for i = 3..=30 { A[i] = A[i - 3] + 1; }",
            "for i = 2..=20 { for j = 3..=20 { A[i, j] = A[i - 2, j - 3] + 1; } }",
            "for i = 1..=9 { for j = 0..=9 { A[i, j] = A[i - 1, j] + 1; } }",
            "for i = 1..=9 { for j = 1..=9 { A[i, j] = A[i - 1, j] + A[i, j - 1]; } }",
        ] {
            let nest = parse_loop(src).unwrap();
            let r = DHollander.analyze(&nest).unwrap();
            let plan = parallelize(&nest).unwrap();
            assert!(r.applicable, "{src}");
            assert_eq!(r.outer_doall, plan.doall_count(), "{src}");
            assert_eq!(r.partitions, plan.partition_count(), "{src}");
        }
    }

    #[test]
    fn mixed_distance_2d() {
        // Distances (1,0) and (0,2): HNF [[1,0],[0,2]] -> 2 partitions.
        let nest = parse_loop(
            "for i = 1..=9 { for j = 2..=9 {
               A[i, j] = A[i - 1, j] + 1;
               B[i, j] = B[i, j - 2] + 1;
             } }",
        )
        .unwrap();
        let r = DHollander.analyze(&nest).unwrap();
        assert_eq!(r.partitions, 2);
    }

    #[test]
    fn variable_distance_rejected() {
        let nest = parse_loop("for i = 0..=20 { A[2*i] = A[i] + 1; }").unwrap();
        let r = DHollander.analyze(&nest).unwrap();
        assert!(!r.applicable);
    }
}
