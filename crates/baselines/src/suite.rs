//! The common loop suite for the Table-1 shootout and benchmarks.
//!
//! Eight nests spanning the design space: uniform vs variable distances,
//! carried vs free loops, full-rank vs rank-deficient lattices — including
//! both worked examples of the paper (§4.1, §4.2, reconstructed per
//! DESIGN.md).

use pdm_loopir::nest::LoopNest;
use pdm_loopir::parse::parse_loop_with;

/// One suite entry.
pub struct SuiteLoop {
    /// Short identifier.
    pub name: &'static str,
    /// What it exercises.
    pub description: &'static str,
    /// DSL source with parameter `N`.
    pub source: &'static str,
}

/// The suite definition.
pub const SUITE: &[SuiteLoop] = &[
    SuiteLoop {
        name: "paper-4.1",
        description: "variable distance, rank-1 PDM [[2,2]] (reconstructed §4.1)",
        source: "for i1 = 0..N { for i2 = 0..N {
                   A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
                 } }",
    },
    SuiteLoop {
        name: "paper-4.2",
        description: "variable distance, full-rank PDM [[2,1],[0,2]] (reconstructed §4.2)",
        source: "for i1 = 0..N { for i2 = 0..N {
                   A[i1, 3*i2 + 2] = B[i1, i2] + 1;
                   B[3*i1 + 2, i1 + i2 + 1] = A[i1, i2] + 2;
                 } }",
    },
    SuiteLoop {
        name: "indep",
        description: "no dependences at all",
        source: "for i1 = 0..N { for i2 = 0..N { A[i1, i2] = i1 + i2; } }",
    },
    SuiteLoop {
        name: "chain",
        description: "fully sequential uniform chain",
        source:
            "for i1 = 1..N { for i2 = 0..N { A[i1, i2] = A[i1 - 1, i2 + 1] + A[i1 - 1, i2] + 1; } }",
    },
    SuiteLoop {
        name: "stencil",
        description: "classic (1,0)/(0,1) stencil — wavefront territory",
        source: "for i1 = 1..N { for i2 = 1..N { A[i1, i2] = A[i1 - 1, i2] + A[i1, i2 - 1]; } }",
    },
    SuiteLoop {
        name: "inner-par",
        description: "uniform, zero column: inner loop parallel",
        source: "for i1 = 1..N { for i2 = 0..N { A[i1, i2] = A[i1 - 1, i2] + 1; } }",
    },
    SuiteLoop {
        name: "strided",
        description: "uniform strides (2,0)/(0,3): 6 partitions",
        source: "for i1 = 2..N { for i2 = 3..N {
                   A[i1, i2] = A[i1 - 2, i2] + 1;
                   B[i1, i2] = B[i1, i2 - 3] + 1;
                 } }",
    },
    SuiteLoop {
        name: "var-scan",
        description: "variable distance 1-D scan A[2i] = A[i]",
        source: "for i1 = 0..N { for i2 = 0..N { A[2*i1, i2] = A[i1, i2] + 1; } }",
    },
];

/// Instantiate a suite loop at size `N`.
pub fn instantiate(entry: &SuiteLoop, n: i64) -> LoopNest {
    parse_loop_with(entry.source, &[("N", n)]).expect("suite sources parse")
}

/// Instantiate the whole suite.
pub fn all(n: i64) -> Vec<(&'static str, LoopNest)> {
    SUITE.iter().map(|e| (e.name, instantiate(e, n))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Parallelizer;

    #[test]
    fn all_sources_parse_and_run_every_method() {
        let methods: Vec<Box<dyn Parallelizer>> = vec![
            Box::new(crate::banerjee::Banerjee),
            Box::new(crate::dhollander::DHollander),
            Box::new(crate::wolf_lam::WolfLam),
            Box::new(crate::shang::ShangBdv),
            Box::new(crate::pdm_method::PdmMethod),
        ];
        for (name, nest) in all(10) {
            for m in &methods {
                let r = m
                    .analyze(&nest)
                    .unwrap_or_else(|e| panic!("{name}/{}: {e}", m.name()));
                assert_eq!(r.method, m.name());
            }
        }
    }

    #[test]
    fn suite_has_both_uniform_and_variable_loops() {
        let mut uniform = 0;
        let mut variable = 0;
        for (_, nest) in all(10) {
            let a = pdm_core::analyze(&nest).unwrap();
            if a.has_dependences() {
                if a.is_uniform() {
                    uniform += 1;
                } else {
                    variable += 1;
                }
            }
        }
        assert!(uniform >= 3, "uniform loops: {uniform}");
        assert!(variable >= 3, "variable loops: {variable}");
    }

    #[test]
    fn paper_loops_have_expected_plans() {
        let p41 = instantiate(&SUITE[0], 10);
        let plan41 = pdm_core::parallelize(&p41).unwrap();
        assert_eq!(plan41.doall_count(), 1);
        assert_eq!(plan41.partition_count(), 2);
        let p42 = instantiate(&SUITE[1], 10);
        let plan42 = pdm_core::parallelize(&p42).unwrap();
        assert_eq!(plan42.partition_count(), 4);
    }
}
