//! Wolf & Lam's dependence (direction) vectors \[14, 15\].
//!
//! Distances are abstracted to per-component *signs*; a component that
//! varies across the solution family becomes `*` (unknown). The
//! abstraction handles any loop, but on variable-distance loops it cannot
//! see the lattice structure: where the PDM proves "all distances are
//! multiples of (2,2)", direction vectors only record `(+,+)` — so no
//! outer `doall` and no partitioning, only level-based parallelism
//! (loops not carrying any dependence).

use crate::report::{MethodReport, Parallelizer};
use crate::Result;
use pdm_core::pdm::analyze;
use pdm_loopir::nest::LoopNest;

/// A direction-vector component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dir {
    /// Strictly positive.
    Pos,
    /// Zero.
    Zero,
    /// Strictly negative.
    Neg,
    /// Unknown / varying.
    Any,
}

/// The Wolf–Lam style direction-vector method.
pub struct WolfLam;

/// Abstract the distance family `d0 + span(D)` of one pair into a
/// direction vector over lex-positive members.
pub fn direction_vector(
    d0: &pdm_matrix::vec::IVec,
    generators: &pdm_matrix::mat::IMat,
) -> Vec<Dir> {
    let n = d0.dim();
    (0..n)
        .map(|k| {
            let varies = (0..generators.rows()).any(|r| generators.get(r, k) != 0);
            if varies {
                Dir::Any
            } else if d0[k] > 0 {
                Dir::Pos
            } else if d0[k] < 0 {
                Dir::Neg
            } else {
                Dir::Zero
            }
        })
        .collect()
}

/// Can this direction vector represent a dependence *carried at* level
/// `k` (prefix zero-able, component `k` positive-able)? Lex-negative
/// realizations correspond to the reversed dependence, so signs are
/// considered in both orientations.
pub fn can_carry(dv: &[Dir], k: usize) -> bool {
    // Forward orientation: components 0..k can be zero, dv[k] can be > 0.
    let fwd = dv[..k].iter().all(|d| matches!(d, Dir::Zero | Dir::Any))
        && matches!(dv[k], Dir::Pos | Dir::Any);
    // Reversed orientation (the anti/flow twin): prefix zero-able and
    // dv[k] negative-able.
    let rev = dv[..k].iter().all(|d| matches!(d, Dir::Zero | Dir::Any))
        && matches!(dv[k], Dir::Neg | Dir::Any);
    fwd || rev
}

impl Parallelizer for WolfLam {
    fn name(&self) -> &'static str {
        "wolf-lam"
    }

    fn analyze(&self, nest: &LoopNest) -> Result<MethodReport> {
        let n = nest.depth();
        let analysis = analyze(nest)?;
        let mut dvs: Vec<Vec<Dir>> = Vec::new();
        for p in analysis.pairs() {
            if !p.lattice.solvable {
                continue;
            }
            let d0 = p.lattice.particular.clone().expect("solvable has d0");
            let dv = direction_vector(&d0, &p.lattice.hom_generators);
            if dv.iter().all(|d| *d == Dir::Zero) {
                continue; // loop-independent
            }
            if !dvs.contains(&dv) {
                dvs.push(dv);
            }
        }
        if dvs.is_empty() {
            return Ok(MethodReport {
                method: self.name(),
                dependence_repr: "D",
                applicable: true,
                reason: "no dependences".into(),
                outer_doall: n,
                inner_doall: 0,
                partitions: 1,
                order_preserving: true,
            });
        }
        // Outer doall needs a completely dependence-free direction: a
        // column that is Zero in every direction vector (the sign-level
        // analogue of Lemma 1).
        let outer = (0..n)
            .filter(|&k| dvs.iter().all(|dv| dv[k] == Dir::Zero))
            .count();
        // Level parallelism: loops never *carried* (every dependence
        // resolved by an outer level) run doall at their own level.
        let level_parallel = (0..n)
            .filter(|&k| {
                dvs.iter().all(|dv| !can_carry(dv, k)) && dvs.iter().any(|dv| dv[k] != Dir::Zero)
            })
            .count();
        // Wavefront skewing: a hyperplane guaranteeing t·d >= 1 for every
        // distance matching some direction vector leaves n-1 loops
        // parallel between barriers.
        let wavefront_inner = if wavefront_for_directions(&dvs, 2).is_some() {
            n - 1 - outer.min(n - 1)
        } else {
            0
        };
        let inner = level_parallel.max(wavefront_inner);
        Ok(MethodReport {
            method: self.name(),
            dependence_repr: "D",
            applicable: true,
            reason: format!("{} direction vector(s)", dvs.len()),
            outer_doall: outer,
            inner_doall: inner,
            partitions: 1,
            order_preserving: true,
        })
    }
}

/// Search a small integer hyperplane `t` with `t·d ≥ 1` *guaranteed* for
/// every distance whose signs match one of the direction vectors. `Any`
/// or magnitude-unbounded components force the corresponding `t` entry
/// toward zero, which is what makes direction vectors weaker than
/// distances.
pub fn wavefront_for_directions(dvs: &[Vec<Dir>], bound: i64) -> Option<Vec<i64>> {
    let n = dvs.first()?.len();
    'cand: for t in pdm_matrix::lex::small_vectors(n, bound) {
        if t.iter().all(|&x| x == 0) {
            continue;
        }
        for dv in dvs {
            // Guaranteed lower bound of t·d over all d matching dv
            // (component magnitudes >= 1 where signed, unbounded above).
            let mut lo: i64 = 0;
            for (k, dir) in dv.iter().enumerate() {
                match dir {
                    Dir::Zero => {}
                    Dir::Pos => {
                        if t[k] >= 0 {
                            lo += t[k]; // minimal at d_k = 1
                        } else {
                            continue 'cand; // unbounded below
                        }
                    }
                    Dir::Neg => {
                        if t[k] <= 0 {
                            lo += -t[k];
                        } else {
                            continue 'cand;
                        }
                    }
                    Dir::Any => {
                        if t[k] != 0 {
                            continue 'cand;
                        }
                    }
                }
            }
            if lo < 1 {
                continue 'cand;
            }
        }
        return Some(t);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_loopir::parse::parse_loop;
    use pdm_matrix::mat::IMat;
    use pdm_matrix::vec::IVec;

    #[test]
    fn direction_abstraction() {
        // Family (2,2) + k(2,2): both components vary -> (*,*).
        let dv = direction_vector(
            &IVec::from_slice(&[2, 2]),
            &IMat::from_rows(&[vec![2, 2]]).unwrap(),
        );
        assert_eq!(dv, vec![Dir::Any, Dir::Any]);
        // Constant (0,3): (0,+).
        let dv2 = direction_vector(&IVec::from_slice(&[0, 3]), &IMat::zeros(0, 2));
        assert_eq!(dv2, vec![Dir::Zero, Dir::Pos]);
    }

    #[test]
    fn loses_partition_parallelism_on_paper_41() {
        // The PDM method finds 1 doall + 2 partitions; direction vectors
        // see (*,*) and find nothing.
        let nest = parse_loop(
            "for i1 = 0..=9 { for i2 = 0..=9 {
               A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
             } }",
        )
        .unwrap();
        let r = WolfLam.analyze(&nest).unwrap();
        assert!(r.applicable);
        assert_eq!(r.outer_doall, 0);
        assert_eq!(r.partitions, 1);
    }

    #[test]
    fn finds_level_parallelism_on_uniform_loops() {
        let nest =
            parse_loop("for i = 1..=9 { for j = 0..=9 { A[i, j] = A[i - 1, j] + 1; } }").unwrap();
        let r = WolfLam.analyze(&nest).unwrap();
        assert_eq!(r.outer_doall, 1); // j never carries
    }

    #[test]
    fn wavefront_on_definite_carried_outer() {
        let nest = parse_loop("for i = 1..=9 { for j = 1..=9 { A[i, j] = A[i - 1, j - 1] + 1; } }")
            .unwrap();
        let r = WolfLam.analyze(&nest).unwrap();
        // dv = (+,+): carried at level 0 -> inner loop parallel.
        assert_eq!(r.outer_doall, 0);
        assert_eq!(r.inner_doall, 1);
    }

    #[test]
    fn can_carry_logic() {
        use Dir::*;
        assert!(can_carry(&[Pos, Zero], 0));
        assert!(!can_carry(&[Pos, Zero], 1)); // prefix not zero-able
        assert!(can_carry(&[Zero, Pos], 1));
        assert!(can_carry(&[Any, Any], 0));
        assert!(can_carry(&[Any, Any], 1));
        assert!(!can_carry(&[Zero, Zero], 1));
        assert!(can_carry(&[Neg, Zero], 0)); // reversed orientation
    }
}
