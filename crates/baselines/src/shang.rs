//! Shang et al.'s BDV uniformization \[17\].
//!
//! Variable distance vectors are written as nonnegative combinations of a
//! small set of **basic dependence vectors** (BDVs). The cone-optimal
//! variant (the paper's "Basic Idea II") seeks a minimal-rank BDV set:
//! rank `ρ` leaves `n − ρ` dimensions of parallelism. Crucially the BDVs
//! carry no lexicographic-order guarantee, so an extra **linear
//! scheduling** step (Feautrier \[7\]) is required before code can run —
//! reflected by `order_preserving = false` in the report.

use crate::report::{MethodReport, Parallelizer};
use crate::Result;
use pdm_core::pdm::analyze;
use pdm_loopir::nest::LoopNest;
use pdm_matrix::lex::is_lex_negative;
use pdm_matrix::mat::IMat;
use pdm_matrix::vec::IVec;

/// The Shang-style BDV uniformization method.
pub struct ShangBdv;

/// Compute a BDV set for the nest: one lex-positive representative per
/// distance-family generator plus the (oriented) particular vectors.
pub fn basic_dependence_vectors(nest: &LoopNest) -> Result<Vec<IVec>> {
    let analysis = analyze(nest)?;
    let mut bdvs: Vec<IVec> = Vec::new();
    let mut push = |v: IVec| {
        if !v.is_zero() && !bdvs.contains(&v) {
            bdvs.push(v);
        }
    };
    for p in analysis.pairs() {
        if !p.lattice.solvable {
            continue;
        }
        for r in 0..p.lattice.generators.rows() {
            let g = p.lattice.generators.row_vec(r);
            // A generator direction occurs in both signs; keep the
            // lex-positive representative (and its negation is implied by
            // the cone's need for both, which uniformization resolves by
            // scheduling).
            let g = if is_lex_negative(&g) {
                g.neg().map_err(crate::BaselineError::Matrix)?
            } else {
                g
            };
            push(g);
        }
        if let Some(d0) = &p.lattice.particular {
            let d = if is_lex_negative(d0) {
                d0.neg().map_err(crate::BaselineError::Matrix)?
            } else {
                d0.clone()
            };
            push(d);
        }
    }
    Ok(bdvs)
}

impl Parallelizer for ShangBdv {
    fn name(&self) -> &'static str {
        "shang-bdv"
    }

    fn analyze(&self, nest: &LoopNest) -> Result<MethodReport> {
        let n = nest.depth();
        let bdvs = basic_dependence_vectors(nest)?;
        if bdvs.is_empty() {
            return Ok(MethodReport {
                method: self.name(),
                dependence_repr: "B",
                applicable: true,
                reason: "no dependences".into(),
                outer_doall: n,
                inner_doall: 0,
                partitions: 1,
                order_preserving: true,
            });
        }
        let m = IMat::from_rows(&bdvs.iter().map(|v| v.0.clone()).collect::<Vec<_>>())
            .map_err(crate::BaselineError::Matrix)?;
        let rank = pdm_matrix::echelon::rank(&m).map_err(crate::BaselineError::Matrix)?;
        Ok(MethodReport {
            method: self.name(),
            dependence_repr: "B",
            applicable: true,
            reason: format!("{} BDV(s), rank {rank}", bdvs.len()),
            outer_doall: n - rank,
            inner_doall: 0,
            partitions: 1,
            // The BDV cone does not preserve lexicographic order; a linear
            // schedule must be layered on top.
            order_preserving: false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_loopir::parse::parse_loop;

    #[test]
    fn bdv_rank_parallelism_on_paper_41() {
        let nest = parse_loop(
            "for i1 = 0..=9 { for i2 = 0..=9 {
               A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
             } }",
        )
        .unwrap();
        let r = ShangBdv.analyze(&nest).unwrap();
        assert!(r.applicable);
        assert_eq!(r.outer_doall, 1); // rank-1 BDV set in a 2-nest
        assert!(!r.order_preserving); // but needs scheduling
        assert_eq!(r.partitions, 1); // and finds no lattice partitions
    }

    #[test]
    fn full_rank_bdv_no_parallelism() {
        let nest =
            parse_loop("for i = 1..=9 { for j = 1..=9 { A[i, j] = A[i - 1, j] + A[i, j - 1]; } }")
                .unwrap();
        let r = ShangBdv.analyze(&nest).unwrap();
        assert_eq!(r.outer_doall, 0);
    }

    #[test]
    fn bdv_extraction_orients_vectors() {
        let nest = parse_loop("for i = 0..=20 { A[2*i] = A[i] + 1; }").unwrap();
        let b = basic_dependence_vectors(&nest).unwrap();
        assert!(!b.is_empty());
        for v in &b {
            assert!(pdm_matrix::lex::is_lex_positive(v), "{v}");
        }
    }
}
