//! This paper's method wrapped in the common [`Parallelizer`] trait.

use crate::report::{MethodReport, Parallelizer};
use crate::Result;
use pdm_core::parallelize;
use pdm_loopir::nest::LoopNest;

/// The PDM method (Yu & D'Hollander 2000).
pub struct PdmMethod;

impl Parallelizer for PdmMethod {
    fn name(&self) -> &'static str {
        "pdm"
    }

    fn analyze(&self, nest: &LoopNest) -> Result<MethodReport> {
        let plan = parallelize(nest).map_err(|e| crate::BaselineError::Core(e.to_string()))?;
        Ok(MethodReport {
            method: self.name(),
            dependence_repr: "P",
            applicable: true,
            reason: format!(
                "PDM rank {} of depth {}",
                plan.analysis().rank(),
                plan.depth()
            ),
            outer_doall: plan.doall_count(),
            inner_doall: 0,
            partitions: plan.partition_count(),
            order_preserving: true,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_loopir::parse::parse_loop;

    #[test]
    fn pdm_wins_on_variable_distance_loops() {
        let nest = parse_loop(
            "for i1 = 0..=9 { for i2 = 0..=9 {
               A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
             } }",
        )
        .unwrap();
        let pdm = PdmMethod.analyze(&nest).unwrap();
        let ban = crate::banerjee::Banerjee.analyze(&nest).unwrap();
        let wl = crate::wolf_lam::WolfLam.analyze(&nest).unwrap();
        assert!(pdm.applicable && !ban.applicable);
        assert!(pdm.outer_doall > wl.outer_doall);
        assert!(pdm.partitions > wl.partitions);
    }

    #[test]
    fn pdm_matches_uniform_baselines_on_uniform_loops() {
        let nest = parse_loop("for i = 3..=30 { A[i] = A[i - 3] + 1; }").unwrap();
        let pdm = PdmMethod.analyze(&nest).unwrap();
        let dh = crate::dhollander::DHollander.analyze(&nest).unwrap();
        assert_eq!(pdm.outer_doall, dh.outer_doall);
        assert_eq!(pdm.partitions, dh.partitions);
    }
}
