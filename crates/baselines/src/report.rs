//! The common interface all methods implement for the Table-1 shootout.

use crate::Result;
use pdm_loopir::nest::LoopNest;

/// What a parallelization method reports about one loop nest.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodReport {
    /// Method name (matches the paper's Table 1 rows).
    pub method: &'static str,
    /// Dependence representation, Table 1 column 2: `U`niform distance
    /// vectors, `D`ependence (direction) vectors, `B`asic dependence
    /// vectors, `P`seudo distance matrix.
    pub dependence_repr: &'static str,
    /// Can the method handle this loop at all?
    pub applicable: bool,
    /// Why / why not (human readable).
    pub reason: String,
    /// Outer `doall` loops requiring no synchronization.
    pub outer_doall: usize,
    /// Inner parallel loops that need a barrier per outer (wavefront)
    /// step.
    pub inner_doall: usize,
    /// Independent partitions of the remaining sequential part (1 = none).
    pub partitions: i64,
    /// Does the emitted schedule preserve lexicographic order by itself
    /// (`true`), or does it need an extra scheduling step (`false`, e.g.
    /// BDV uniformization)?
    pub order_preserving: bool,
}

impl MethodReport {
    /// A single scalar used to compare extracted parallelism across
    /// methods: log2 of the multiplicative parallel degree proxy
    /// `(N^outer_doall · partitions)` with symbolic N — encoded as the
    /// pair (loop-power, constant factor).
    pub fn degree(&self) -> (usize, i64) {
        (self.outer_doall, self.partitions.max(1))
    }

    /// Pretty single-line summary.
    pub fn summary(&self) -> String {
        if !self.applicable {
            return format!("{:<12} n/a ({})", self.method, self.reason);
        }
        format!(
            "{:<12} repr={} doall={} wavefront-inner={} partitions={}{}",
            self.method,
            self.dependence_repr,
            self.outer_doall,
            self.inner_doall,
            self.partitions,
            if self.order_preserving {
                ""
            } else {
                " (+needs scheduling)"
            }
        )
    }
}

/// A loop parallelization method.
pub trait Parallelizer {
    /// Method name.
    fn name(&self) -> &'static str;
    /// Analyze a nest and report.
    fn analyze(&self, nest: &LoopNest) -> Result<MethodReport>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_formats() {
        let r = MethodReport {
            method: "pdm",
            dependence_repr: "P",
            applicable: true,
            reason: String::new(),
            outer_doall: 1,
            inner_doall: 0,
            partitions: 2,
            order_preserving: true,
        };
        let s = r.summary();
        assert!(s.contains("doall=1"));
        assert!(s.contains("partitions=2"));
        assert_eq!(r.degree(), (1, 2));

        let na = MethodReport {
            applicable: false,
            reason: "variable distances".into(),
            ..r
        };
        assert!(na.summary().contains("n/a"));
    }
}
