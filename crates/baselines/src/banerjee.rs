//! Banerjee's uniform-distance unimodular framework [1–3].
//!
//! Requires every dependence to have a **constant** distance vector
//! (Corollary 5 of the paper: subscript matrices square and nonsingular
//! with an integral offset image). Parallelism:
//!
//! * a zero column of the distance matrix makes that loop `doall`;
//! * otherwise wavefront (hyperplane) skewing makes every transformed
//!   distance carried by the outermost loop, leaving the inner `n − 1`
//!   loops parallel *between barriers*.
//!
//! On variable-distance loops the method is simply **not applicable** —
//! the gap the PDM paper fills.

use crate::report::{MethodReport, Parallelizer};
use crate::Result;
use pdm_core::pdm::analyze;
use pdm_loopir::nest::LoopNest;
use pdm_matrix::lex::{is_lex_negative, is_lex_positive};
use pdm_matrix::mat::IMat;
use pdm_matrix::vec::IVec;

/// The Banerjee-style uniform-distance method.
pub struct Banerjee;

/// Extract the set of constant (uniform) lex-positive distance vectors of
/// a nest, or `None` when any pair has variable distances.
pub fn uniform_distances(nest: &LoopNest) -> Result<Option<Vec<IVec>>> {
    let analysis = analyze(nest)?;
    let mut out: Vec<IVec> = Vec::new();
    for p in analysis.pairs() {
        if !p.lattice.solvable {
            continue;
        }
        if p.lattice.hom_rank > 0 {
            return Ok(None); // variable distance
        }
        let Some(d0) = p.lattice.particular.clone() else {
            continue;
        };
        if d0.is_zero() {
            continue; // loop-independent
        }
        let d = if is_lex_negative(&d0) { d0.neg()? } else { d0 };
        debug_assert!(is_lex_positive(&d));
        if !out.contains(&d) {
            out.push(d);
        }
    }
    Ok(Some(out))
}

impl Parallelizer for Banerjee {
    fn name(&self) -> &'static str {
        "banerjee"
    }

    fn analyze(&self, nest: &LoopNest) -> Result<MethodReport> {
        let n = nest.depth();
        let Some(dists) = uniform_distances(nest)? else {
            return Ok(MethodReport {
                method: self.name(),
                dependence_repr: "U",
                applicable: false,
                reason: "variable dependence distances".into(),
                outer_doall: 0,
                inner_doall: 0,
                partitions: 1,
                order_preserving: true,
            });
        };
        if dists.is_empty() {
            return Ok(MethodReport {
                method: self.name(),
                dependence_repr: "U",
                applicable: true,
                reason: "no dependences".into(),
                outer_doall: n,
                inner_doall: 0,
                partitions: 1,
                order_preserving: true,
            });
        }
        let d = IMat::from_rows(&dists.iter().map(|v| v.0.clone()).collect::<Vec<_>>())
            .map_err(crate::BaselineError::Matrix)?;
        let zero_cols = d.zero_cols().len();
        // Wavefront: all other loops run in parallel between barriers.
        let inner = n - zero_cols - 1;
        Ok(MethodReport {
            method: self.name(),
            dependence_repr: "U",
            applicable: true,
            reason: format!("{} uniform distance vector(s)", dists.len()),
            outer_doall: zero_cols,
            inner_doall: inner,
            partitions: 1,
            order_preserving: true,
        })
    }
}

/// Find a wavefront (hyperplane) vector `t` with `t·d ≥ 1` for all
/// distances — the schedule direction of the skewing transformation.
/// Searches small integer vectors; the classic result guarantees one
/// exists for any finite lex-positive distance set.
pub fn wavefront_vector(dists: &[IVec], bound: i64) -> Option<IVec> {
    let n = dists.first()?.dim();
    for cand in pdm_matrix::lex::small_vectors(n, bound) {
        let t = IVec(cand);
        if t.is_zero() {
            continue;
        }
        if dists.iter().all(|d| matches!(t.dot(d), Ok(v) if v >= 1)) {
            return Some(t);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_loopir::parse::parse_loop;

    #[test]
    fn uniform_stencil_applicable() {
        let nest =
            parse_loop("for i = 1..=9 { for j = 1..=9 { A[i, j] = A[i - 1, j] + A[i, j - 1]; } }")
                .unwrap();
        let r = Banerjee.analyze(&nest).unwrap();
        assert!(r.applicable);
        assert_eq!(r.outer_doall, 0);
        assert_eq!(r.inner_doall, 1); // wavefront over (1,0),(0,1)
    }

    #[test]
    fn variable_distance_not_applicable() {
        let nest = parse_loop(
            "for i1 = 0..=9 { for i2 = 0..=9 {
               A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
             } }",
        )
        .unwrap();
        let r = Banerjee.analyze(&nest).unwrap();
        assert!(!r.applicable);
        assert!(r.reason.contains("variable"));
    }

    #[test]
    fn independent_loop_fully_parallel() {
        let nest = parse_loop("for i = 0..=9 { A[i] = i; }").unwrap();
        let r = Banerjee.analyze(&nest).unwrap();
        assert!(r.applicable);
        assert_eq!(r.outer_doall, 1);
    }

    #[test]
    fn zero_column_found() {
        let nest =
            parse_loop("for i = 1..=9 { for j = 0..=9 { A[i, j] = A[i - 1, j] + 1; } }").unwrap();
        let r = Banerjee.analyze(&nest).unwrap();
        assert_eq!(r.outer_doall, 1); // j column zero
        assert_eq!(r.inner_doall, 0);
    }

    #[test]
    fn uniform_distance_extraction() {
        let nest = parse_loop("for i = 3..=20 { A[i] = A[i - 3] + 1; }").unwrap();
        let d = uniform_distances(&nest).unwrap().unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].as_slice(), &[3]);
    }

    #[test]
    fn wavefront_vector_exists_for_stencil() {
        let dists = vec![IVec::from_slice(&[1, 0]), IVec::from_slice(&[0, 1])];
        let t = wavefront_vector(&dists, 2).unwrap();
        for d in &dists {
            assert!(t.dot(d).unwrap() >= 1);
        }
    }

    #[test]
    fn wavefront_vector_none_for_conflicting() {
        // (1,-1) and (-1,1) can never both be >= 1 ... but (-1,1) is not
        // lex positive; use (1,-1),(1,1) which does admit (1,0).
        let ok = vec![IVec::from_slice(&[1, -1]), IVec::from_slice(&[1, 1])];
        assert!(wavefront_vector(&ok, 2).is_some());
        // Degenerate: zero distance admits no t with t·0 >= 1.
        let bad = vec![IVec::from_slice(&[0, 0])];
        assert!(wavefront_vector(&bad, 2).is_none());
    }
}
