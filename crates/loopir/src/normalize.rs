//! Loop normalization: non-unit steps to unit-stride nests.
//!
//! The paper's framework (like most unimodular frameworks) assumes
//! unit-step loops; real front-ends (the FPT compiler the paper
//! references) normalize `do i = lo, hi, s` first. This pass rewrites
//!
//! ```text
//! for i = lo..=hi step s   ⇒   for i' = 0..=⌊(hi − lo)/s⌋   (i = lo + s·i')
//! ```
//!
//! substituting `i := lo + s·i'` in every inner bound and every affine
//! subscript. The transformation is exact: the new nest executes the same
//! accesses in the same order.

use crate::access::AffineAccess;
use crate::expr::Expr;
use crate::nest::{ArrayDecl, LoopNest};
use crate::stmt::{ArrayRef, Statement};
use crate::{IrError, Result};
use pdm_matrix::mat::IMat;
use pdm_matrix::num::floor_div;
use pdm_matrix::vec::IVec;
use pdm_poly::expr::AffineExpr;

/// A nest with per-level steps, produced by the parser before
/// normalization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SteppedNest {
    /// The unit-step body data (bounds still in original index space).
    pub nest: LoopNest,
    /// Positive step per level (1 = already normalized).
    pub steps: Vec<i64>,
}

/// Normalize a stepped nest to unit strides.
///
/// Level `k` with bounds `lo_k(i_outer) ..= hi_k(i_outer)` and step
/// `s_k > 1` becomes `0 ..= ⌊(hi_k − lo_k)/s_k⌋` over a fresh index
/// `i'_k`, and every occurrence of `i_k` (inner bounds, subscripts) is
/// replaced by `lo_k + s_k·i'_k`.
///
/// Restriction: when `s_k > 1`, `lo_k`/`hi_k` must be constants (affine
/// lower bounds under division would need floor-expressions the IR's
/// bound language deliberately does not have; the parser enforces this).
pub fn normalize(stepped: &SteppedNest) -> Result<LoopNest> {
    let nest = &stepped.nest;
    let n = nest.depth();
    if stepped.steps.len() != n {
        return Err(IrError::Invalid("one step per level required".into()));
    }
    if stepped.steps.iter().all(|&s| s == 1) {
        return Ok(nest.clone());
    }
    for (k, &s) in stepped.steps.iter().enumerate() {
        if s < 1 {
            return Err(IrError::Invalid(format!(
                "step of loop {k} must be positive, got {s}"
            )));
        }
        if s > 1 && (!nest.lower(k).is_constant() || !nest.upper(k).is_constant()) {
            return Err(IrError::Invalid(format!(
                "loop {k}: non-unit step requires constant bounds"
            )));
        }
    }

    // Substitution i_k = base_k + s_k * i'_k, expressed per level.
    let bases: Vec<i64> = (0..n)
        .map(|k| {
            if stepped.steps[k] == 1 {
                0 // handled via identity below; base folded only for s>1
            } else {
                nest.lower(k).constant
            }
        })
        .collect();

    // New bounds (bound expressions span depth + param columns; the
    // strided levels require constant bounds, checked above).
    let width = n + nest.param_names().len();
    let mut lower = Vec::with_capacity(n);
    let mut upper = Vec::with_capacity(n);
    for k in 0..n {
        let s = stepped.steps[k];
        if s == 1 {
            // Substitute outer indices inside the affine bound.
            lower.push(substitute_expr(nest.lower(k), &stepped.steps, &bases)?);
            upper.push(substitute_expr(nest.upper(k), &stepped.steps, &bases)?);
        } else {
            let lo = nest.lower(k).constant;
            let hi = nest.upper(k).constant;
            let count = floor_div(hi - lo, s).map_err(IrError::Matrix)?;
            lower.push(AffineExpr::constant(width, 0));
            upper.push(AffineExpr::constant(width, count));
        }
    }

    // Rewrite accesses: subscript coefficients scale by s_k, offsets
    // absorb the bases.
    let body: Vec<Statement> = nest
        .body()
        .iter()
        .map(|stmt| {
            Ok(Statement {
                lhs: substitute_ref(&stmt.lhs, &stepped.steps, &bases)?,
                rhs: substitute_body_expr(&stmt.rhs, &stepped.steps, &bases)?,
            })
        })
        .collect::<Result<_>>()?;

    let arrays: Vec<ArrayDecl> = nest.arrays().to_vec();
    LoopNest::new_symbolic(
        nest.index_names().to_vec(),
        nest.param_names().to_vec(),
        lower,
        upper,
        arrays,
        body,
    )
}

fn substitute_expr(e: &AffineExpr, steps: &[i64], bases: &[i64]) -> Result<AffineExpr> {
    // i_k = base_k + s_k * i'_k  =>  coeff_k * i_k = (coeff_k * s_k) i'_k
    // + coeff_k * base_k. Bound expressions may be wider than the loop
    // depth (trailing symbolic-parameter columns); those columns pass
    // through untouched — parameters are not strided.
    let n = steps.len();
    let mut coeffs = IVec::zeros(e.dim());
    let mut constant = e.constant;
    for k in 0..e.dim() {
        let c = e.coeff(k);
        if c == 0 {
            continue;
        }
        if k >= n || steps[k] == 1 {
            coeffs[k] += c;
        } else {
            coeffs[k] += c * steps[k];
            constant += c * bases[k];
        }
    }
    Ok(AffineExpr::new(coeffs, constant))
}

fn substitute_ref(r: &ArrayRef, steps: &[i64], bases: &[i64]) -> Result<ArrayRef> {
    let n = r.access.depth();
    let m = r.access.dims();
    let mut mat = IMat::zeros(n, m);
    let mut off = r.access.offset.clone();
    for d in 0..m {
        for k in 0..n {
            let c = r.access.matrix.get(k, d);
            if steps[k] == 1 {
                mat.set(k, d, c);
            } else {
                mat.set(k, d, c * steps[k]);
                off[d] += c * bases[k];
            }
        }
    }
    Ok(ArrayRef {
        array: r.array,
        access: AffineAccess::new(mat, off)?,
    })
}

fn substitute_body_expr(e: &Expr, steps: &[i64], bases: &[i64]) -> Result<Expr> {
    Ok(match e {
        Expr::Const(c) => Expr::Const(*c),
        Expr::Index(k) => {
            if steps[*k] == 1 {
                Expr::Index(*k)
            } else {
                // i_k = base + s * i'_k as an expression tree.
                Expr::add(
                    Expr::Const(bases[*k]),
                    Expr::mul(Expr::Const(steps[*k]), Expr::Index(*k)),
                )
            }
        }
        Expr::Read(r) => Expr::Read(substitute_ref(r, steps, bases)?),
        Expr::Add(a, b) => Expr::add(
            substitute_body_expr(a, steps, bases)?,
            substitute_body_expr(b, steps, bases)?,
        ),
        Expr::Sub(a, b) => Expr::sub(
            substitute_body_expr(a, steps, bases)?,
            substitute_body_expr(b, steps, bases)?,
        ),
        Expr::Mul(a, b) => Expr::mul(
            substitute_body_expr(a, steps, bases)?,
            substitute_body_expr(b, steps, bases)?,
        ),
        Expr::Neg(a) => Expr::Neg(Box::new(substitute_body_expr(a, steps, bases)?)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_loop_stepped;

    #[test]
    fn unit_steps_are_identity() {
        let s = parse_loop_stepped("for i = 0..=9 { A[i] = i; }").unwrap();
        assert_eq!(s.steps, vec![1]);
        let n = normalize(&s).unwrap();
        assert_eq!(n, s.nest);
    }

    #[test]
    fn stride_two_normalizes() {
        let s = parse_loop_stepped("for i = 1..=9 step 2 { A[i] = i; }").unwrap();
        assert_eq!(s.steps, vec![2]);
        let n = normalize(&s).unwrap();
        // i in {1,3,5,7,9} -> i' in 0..=4, access A[2*i' + 1].
        let its = n.iterations().unwrap();
        assert_eq!(its.len(), 5);
        let w = &n.body()[0].lhs;
        assert_eq!(w.access.matrix.get(0, 0), 2);
        assert_eq!(w.access.offset[0], 1);
    }

    #[test]
    fn normalized_execution_touches_same_cells() {
        // A[i] = 7 for i = 2, 5, 8.
        let s = parse_loop_stepped("for i = 2..=9 step 3 { A[i] = 7; }").unwrap();
        let n = normalize(&s).unwrap();
        let cells: Vec<i64> = n
            .iterations()
            .unwrap()
            .iter()
            .map(|it| n.body()[0].lhs.access.eval(it).unwrap()[0])
            .collect();
        assert_eq!(cells, vec![2, 5, 8]);
    }

    #[test]
    fn mixed_steps_2d() {
        let s =
            parse_loop_stepped("for i = 0..=8 step 2 { for j = 0..=3 { A[i + j] = A[i] + j; } }")
                .unwrap();
        assert_eq!(s.steps, vec![2, 1]);
        let n = normalize(&s).unwrap();
        assert_eq!(n.iterations().unwrap().len(), 5 * 4);
        // Subscript i + j becomes 2 i' + j.
        let w = &n.body()[0].lhs;
        assert_eq!(w.access.matrix.get(0, 0), 2);
        assert_eq!(w.access.matrix.get(1, 0), 1);
        // The read A[i] becomes A[2*i']; the bare index j stays Index(1).
        let mut reads = Vec::new();
        n.body()[0].rhs.reads(&mut reads);
        assert_eq!(reads[0].access.matrix.get(0, 0), 2);
        // A loop body that names the strided index directly gets the
        // base + step * i' expression tree.
        let s2 = parse_loop_stepped("for i = 3..=9 step 2 { A[i] = i; }").unwrap();
        let n2 = normalize(&s2).unwrap();
        let rendered = format!("{:?}", n2.body()[0].rhs);
        assert!(rendered.contains("Mul"), "{rendered}");
        assert!(rendered.contains("Const(3)"), "{rendered}");
    }

    #[test]
    fn bad_steps_rejected() {
        let s = parse_loop_stepped("for i = 0..=9 step 2 { A[i] = 1; }").unwrap();
        let bad = SteppedNest {
            nest: s.nest.clone(),
            steps: vec![0],
        };
        assert!(normalize(&bad).is_err());
        let wrong_len = SteppedNest {
            nest: s.nest,
            steps: vec![1, 1],
        };
        assert!(normalize(&wrong_len).is_err());
    }

    #[test]
    fn stepped_loop_with_affine_inner_bound_keeps_semantics() {
        // Outer stride 2, inner bound depends on the outer index. The
        // inner bound i (affine) is substituted to 2*i'.
        let s =
            parse_loop_stepped("for i = 0..=6 step 2 { for j = 0..=i { A[i, j] = 1; } }").unwrap();
        let n = normalize(&s).unwrap();
        // i in {0,2,4,6}: inner counts 1,3,5,7 -> 16 iterations.
        assert_eq!(n.iterations().unwrap().len(), 16);
    }

    #[test]
    fn analysis_composes_with_normalization() {
        // Stride-2 chain A[i] = A[i-2] over even i: normalized it is a
        // unit chain with distance 1 (i' space) -> sequential; and the
        // ORIGINAL even/odd split is gone because only evens execute.
        let s = parse_loop_stepped("for i = 2..=20 step 2 { A[i] = A[i - 2] + 1; }").unwrap();
        let n = normalize(&s).unwrap();
        let a = pdm_core_analysis_shim(&n);
        assert_eq!(a, vec![vec![1]]);
    }

    /// Tiny shim so the loopir crate can check PDM shape without a
    /// circular dev-dependency on pdm-core: replicate the distance of the
    /// single flow pair by brute force.
    fn pdm_core_analysis_shim(nest: &LoopNest) -> Vec<Vec<i64>> {
        let its = nest.iterations().unwrap();
        let w = &nest.body()[0].lhs;
        let mut reads = Vec::new();
        nest.body()[0].rhs.reads(&mut reads);
        let r = reads[0];
        let mut dists = std::collections::BTreeSet::new();
        for i in &its {
            for j in &its {
                if w.access.eval(i).unwrap() == r.access.eval(j).unwrap() && i != j {
                    let d = j.sub(i).unwrap();
                    if pdm_matrix::lex::is_lex_positive(&d) {
                        dists.insert(d.0.clone());
                    }
                }
            }
        }
        dists.into_iter().take(1).collect()
    }
}
