//! Loop normalization: non-unit steps to unit strides, and **imperfect
//! nests to perfect kernels**.
//!
//! # Step normalization
//!
//! The paper's framework (like most unimodular frameworks) assumes
//! unit-step loops; real front-ends (the FPT compiler the paper
//! references) normalize `do i = lo, hi, s` first. This pass rewrites
//!
//! ```text
//! for i = lo..=hi step s   ⇒   for i' = 0..=⌊(hi − lo)/s⌋   (i = lo + s·i')
//! ```
//!
//! substituting `i := lo + s·i'` in every inner bound and every affine
//! subscript. The transformation is exact: the new nest executes the same
//! accesses in the same order.
//!
//! # Imperfect-nest normalization
//!
//! [`to_perfect_kernels`] lowers an [`ImperfectNest`] — statements
//! between loop levels — into an ordered sequence of perfect kernels the
//! existing planner handles unchanged, choosing per level between the
//! two classic techniques:
//!
//! * **Loop fission** (distribution): level `k`'s `pre`/`post`
//!   statements become their own depth-`k+1` kernels, executed before /
//!   after every deeper kernel. Fission *reorders* iterations across
//!   the distributed loops, so it is applied only when a Fourier–Motzkin
//!   refutation shows no dependence can flow **against** the new order
//!   (see [`fission legality`](self#fission-legality) below).
//! * **Code sinking**: the statements move *into* the inner loop,
//!   guarded on its first (`pre`) or last (`post`) iteration
//!   ([`crate::stmt::IndexGuard`]). Sinking preserves the original
//!   interleaved execution order exactly, so it is always legal — as
//!   long as the inner loop provably executes at least once for every
//!   outer iteration (otherwise the sunk statement would be skipped),
//!   which is again decided by FM refutation.
//!
//! Fission is preferred (separately-planned kernels usually expose more
//! parallelism); sinking is the order-preserving fallback; when the
//! inner loop may be empty *and* fission would flip a dependence, the
//! nest is rejected with a typed error rather than silently
//! mis-scheduled. [`sink_fully`] / [`unsink`] expose sinking alone as an
//! exact, invertible pair — the round-trip the differential tests pin.
//!
//! ## Fission legality
//!
//! Distributing loops `0..=k` over items `X` (earlier) and `Y` (later)
//! is illegal iff some instance `Y(J)` that originally ran *before*
//! `X(I)` — i.e. `J`'s level-`0..=k` prefix is lexicographically smaller
//! than `I`'s — touches the same array cell with at least one write.
//! For every conflicting access pair and every lex-difference level
//! `t ≤ k`, the pass builds the joint system over `(I, J)` (both
//! iteration spaces, subscript equality, `J_{0..t} = I_{0..t}`,
//! `J_t ≤ I_t − 1`) and requires it rationally **infeasible**
//! ([`pdm_poly::fm::is_rationally_feasible`]). Rational infeasibility
//! implies integer infeasibility, so the check is conservative in the
//! safe direction: it may fall back to sinking unnecessarily, never
//! fission illegally.

use crate::access::AffineAccess;
use crate::expr::Expr;
use crate::imperfect::{ImperfectNest, StmtPosition};
use crate::nest::{ArrayDecl, LoopNest};
use crate::stmt::{AccessKind, ArrayRef, IndexGuard, Statement};
use crate::{IrError, Result};
use pdm_matrix::mat::IMat;
use pdm_matrix::num::floor_div;
use pdm_matrix::vec::IVec;
use pdm_poly::expr::AffineExpr;
use pdm_poly::system::System;

/// A nest with per-level steps, produced by the parser before
/// normalization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SteppedNest {
    /// The unit-step body data (bounds still in original index space).
    pub nest: LoopNest,
    /// Positive step per level (1 = already normalized).
    pub steps: Vec<i64>,
}

/// Normalize a stepped nest to unit strides.
///
/// Level `k` with bounds `lo_k(i_outer) ..= hi_k(i_outer)` and step
/// `s_k > 1` becomes `0 ..= ⌊(hi_k − lo_k)/s_k⌋` over a fresh index
/// `i'_k`, and every occurrence of `i_k` (inner bounds, subscripts) is
/// replaced by `lo_k + s_k·i'_k`.
///
/// Restriction: when `s_k > 1`, `lo_k`/`hi_k` must be constants (affine
/// lower bounds under division would need floor-expressions the IR's
/// bound language deliberately does not have; the parser enforces this).
pub fn normalize(stepped: &SteppedNest) -> Result<LoopNest> {
    let nest = &stepped.nest;
    let n = nest.depth();
    if stepped.steps.len() != n {
        return Err(IrError::Invalid("one step per level required".into()));
    }
    if stepped.steps.iter().all(|&s| s == 1) {
        return Ok(nest.clone());
    }
    for (k, &s) in stepped.steps.iter().enumerate() {
        if s < 1 {
            return Err(IrError::Invalid(format!(
                "step of loop {k} must be positive, got {s}"
            )));
        }
        if s > 1 && (!nest.lower(k).is_constant() || !nest.upper(k).is_constant()) {
            return Err(IrError::Invalid(format!(
                "loop {k}: non-unit step requires constant bounds"
            )));
        }
    }

    // Substitution i_k = base_k + s_k * i'_k, expressed per level.
    let bases: Vec<i64> = (0..n)
        .map(|k| {
            if stepped.steps[k] == 1 {
                0 // handled via identity below; base folded only for s>1
            } else {
                nest.lower(k).constant
            }
        })
        .collect();

    // New bounds (bound expressions span depth + param columns; the
    // strided levels require constant bounds, checked above).
    let width = n + nest.param_names().len();
    let mut lower = Vec::with_capacity(n);
    let mut upper = Vec::with_capacity(n);
    for k in 0..n {
        let s = stepped.steps[k];
        if s == 1 {
            // Substitute outer indices inside the affine bound.
            lower.push(substitute_expr(nest.lower(k), &stepped.steps, &bases)?);
            upper.push(substitute_expr(nest.upper(k), &stepped.steps, &bases)?);
        } else {
            let lo = nest.lower(k).constant;
            let hi = nest.upper(k).constant;
            let count = floor_div(hi - lo, s).map_err(IrError::Matrix)?;
            lower.push(AffineExpr::constant(width, 0));
            upper.push(AffineExpr::constant(width, count));
        }
    }

    // Rewrite accesses: subscript coefficients scale by s_k, offsets
    // absorb the bases.
    let body: Vec<Statement> = nest
        .body()
        .iter()
        .map(|stmt| {
            Ok(Statement {
                lhs: substitute_ref(&stmt.lhs, &stepped.steps, &bases)?,
                rhs: substitute_body_expr(&stmt.rhs, &stepped.steps, &bases)?,
                guards: substitute_guards(&stmt.guards, &stepped.steps, &bases)?,
            })
        })
        .collect::<Result<_>>()?;

    let arrays: Vec<ArrayDecl> = nest.arrays().to_vec();
    LoopNest::new_symbolic(
        nest.index_names().to_vec(),
        nest.param_names().to_vec(),
        lower,
        upper,
        arrays,
        body,
    )
}

fn substitute_expr(e: &AffineExpr, steps: &[i64], bases: &[i64]) -> Result<AffineExpr> {
    // i_k = base_k + s_k * i'_k  =>  coeff_k * i_k = (coeff_k * s_k) i'_k
    // + coeff_k * base_k. Bound expressions may be wider than the loop
    // depth (trailing symbolic-parameter columns); those columns pass
    // through untouched — parameters are not strided.
    let n = steps.len();
    let mut coeffs = IVec::zeros(e.dim());
    let mut constant = e.constant;
    for k in 0..e.dim() {
        let c = e.coeff(k);
        if c == 0 {
            continue;
        }
        if k >= n || steps[k] == 1 {
            coeffs[k] += c;
        } else {
            coeffs[k] += c * steps[k];
            constant += c * bases[k];
        }
    }
    Ok(AffineExpr::new(coeffs, constant))
}

/// Rewrite statement guards under `i_k = base_k + s_k·i'_k`. The guarded
/// index itself must be unit-step (a strided guard target would need a
/// divisibility predicate the guard language does not have); outer
/// strided indices inside the guard value substitute exactly.
fn substitute_guards(
    guards: &[crate::stmt::IndexGuard],
    steps: &[i64],
    bases: &[i64],
) -> Result<Vec<crate::stmt::IndexGuard>> {
    guards
        .iter()
        .map(|g| {
            if steps[g.index] != 1 {
                return Err(IrError::Invalid(format!(
                    "loop {}: non-unit step on a guarded index is unsupported",
                    g.index
                )));
            }
            Ok(crate::stmt::IndexGuard {
                index: g.index,
                value: substitute_expr(&g.value, steps, bases)?,
            })
        })
        .collect()
}

fn substitute_ref(r: &ArrayRef, steps: &[i64], bases: &[i64]) -> Result<ArrayRef> {
    let n = r.access.depth();
    let m = r.access.dims();
    let mut mat = IMat::zeros(n, m);
    let mut off = r.access.offset.clone();
    for d in 0..m {
        for k in 0..n {
            let c = r.access.matrix.get(k, d);
            if steps[k] == 1 {
                mat.set(k, d, c);
            } else {
                mat.set(k, d, c * steps[k]);
                off[d] += c * bases[k];
            }
        }
    }
    Ok(ArrayRef {
        array: r.array,
        // Parameters are not strided: their coefficients pass through.
        access: AffineAccess::with_params(mat, r.access.params.clone(), off)?,
    })
}

fn substitute_body_expr(e: &Expr, steps: &[i64], bases: &[i64]) -> Result<Expr> {
    Ok(match e {
        Expr::Const(c) => Expr::Const(*c),
        Expr::Index(k) => {
            if steps[*k] == 1 {
                Expr::Index(*k)
            } else {
                // i_k = base + s * i'_k as an expression tree.
                Expr::add(
                    Expr::Const(bases[*k]),
                    Expr::mul(Expr::Const(steps[*k]), Expr::Index(*k)),
                )
            }
        }
        Expr::Read(r) => Expr::Read(substitute_ref(r, steps, bases)?),
        Expr::Add(a, b) => Expr::add(
            substitute_body_expr(a, steps, bases)?,
            substitute_body_expr(b, steps, bases)?,
        ),
        Expr::Sub(a, b) => Expr::sub(
            substitute_body_expr(a, steps, bases)?,
            substitute_body_expr(b, steps, bases)?,
        ),
        Expr::Mul(a, b) => Expr::mul(
            substitute_body_expr(a, steps, bases)?,
            substitute_body_expr(b, steps, bases)?,
        ),
        Expr::Neg(a) => Expr::Neg(Box::new(substitute_body_expr(a, steps, bases)?)),
    })
}

// ---------------------------------------------------------------------
// Imperfect-nest normalization: sinking, fission, perfect kernels.
// ---------------------------------------------------------------------

/// One perfect nest produced by [`to_perfect_kernels`], tagged with where
/// its statements came from in the imperfect source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PerfectKernel {
    /// The kernel as a plain concrete perfect nest (depth is the host
    /// level plus one; the innermost kernel has the full original
    /// depth). Arrays are the *full* original declaration list so array
    /// ids stay stable across kernels — the shared program memory
    /// depends on that.
    pub nest: LoopNest,
    /// Source position of the kernel's statements.
    pub origin: StmtPosition,
}

/// The result of normalizing an imperfect nest: perfect kernels in
/// sequential execution order plus conservative inter-kernel dependence
/// edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NormalizedProgram {
    /// Kernels in the order fission sequenced them (source order).
    pub kernels: Vec<PerfectKernel>,
    /// Dependence edges `(from, to)` with `from < to`: kernel `to` may
    /// read or overwrite cells kernel `from` touches, so `to` must not
    /// start before `from` finishes. Conservative (rational-feasibility
    /// over-approximation of the exact integer dependence); acyclic by
    /// construction since edges always point forward.
    pub edges: Vec<(usize, usize)>,
}

impl NormalizedProgram {
    /// Number of kernels.
    pub fn kernel_count(&self) -> usize {
        self.kernels.len()
    }

    /// Kernels that `kernel` must wait for.
    pub fn deps_of(&self, kernel: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter(|(_, t)| *t == kernel)
            .map(|(f, _)| *f)
            .collect()
    }
}

/// Truncate an affine expression over `n` variables to its first `d`
/// (all dropped coefficients are structurally zero for validated inputs).
fn truncate_expr(e: &AffineExpr, d: usize) -> AffineExpr {
    AffineExpr::new(IVec::from_slice(&e.coeffs.as_slice()[..d]), e.constant)
}

/// Truncate a full-depth access to depth `d`.
fn truncate_ref(r: &ArrayRef, d: usize) -> Result<ArrayRef> {
    let m = r.access.dims();
    let mut mat = IMat::zeros(d, m);
    for k in 0..d {
        for c in 0..m {
            mat.set(k, c, r.access.matrix.get(k, c));
        }
    }
    Ok(ArrayRef {
        array: r.array,
        // Truncation drops trailing index rows only; parameter
        // coefficients (zero rows for the concrete nests this path
        // handles) pass through unchanged.
        access: AffineAccess::with_params(mat, r.access.params.clone(), r.access.offset.clone())?,
    })
}

fn truncate_body_expr(e: &Expr, d: usize) -> Result<Expr> {
    Ok(match e {
        Expr::Const(c) => Expr::Const(*c),
        Expr::Index(k) => Expr::Index(*k),
        Expr::Read(r) => Expr::Read(truncate_ref(r, d)?),
        Expr::Add(a, b) => Expr::add(truncate_body_expr(a, d)?, truncate_body_expr(b, d)?),
        Expr::Sub(a, b) => Expr::sub(truncate_body_expr(a, d)?, truncate_body_expr(b, d)?),
        Expr::Mul(a, b) => Expr::mul(truncate_body_expr(a, d)?, truncate_body_expr(b, d)?),
        Expr::Neg(a) => Expr::Neg(Box::new(truncate_body_expr(a, d)?)),
    })
}

fn truncate_stmt(s: &Statement, d: usize) -> Result<Statement> {
    Ok(Statement {
        lhs: truncate_ref(&s.lhs, d)?,
        rhs: truncate_body_expr(&s.rhs, d)?,
        guards: s
            .guards
            .iter()
            .map(|g| IndexGuard {
                index: g.index,
                value: truncate_expr(&g.value, d),
            })
            .collect(),
    })
}

/// Shift an affine expression over `n` variables into a `2n`-variable
/// joint system, placing its variables at offset `off`.
fn widen_expr(e: &AffineExpr, n2: usize, off: usize) -> AffineExpr {
    let mut coeffs = IVec::zeros(n2);
    for (k, &c) in e.coeffs.iter().enumerate() {
        coeffs[off + k] = c;
    }
    AffineExpr::new(coeffs, e.constant)
}

/// Subscript `d` of an access as an affine form over the first `n`
/// variables of a `n2`-wide system, at offset `off`.
fn subscript_expr(r: &ArrayRef, d: usize, n2: usize, off: usize) -> AffineExpr {
    let mut coeffs = IVec::zeros(n2);
    for k in 0..r.access.depth() {
        coeffs[off + k] = r.access.matrix.get(k, d);
    }
    AffineExpr::new(coeffs, r.access.offset[d])
}

/// Add the iteration-space constraints of levels `0..=level` (bounds over
/// the original indices) for the variable block at `off` of a `n2`-wide
/// joint system.
fn add_space(
    sys: &mut System,
    lower: &[AffineExpr],
    upper: &[AffineExpr],
    level: usize,
    n2: usize,
    off: usize,
) -> Result<()> {
    for j in 0..=level {
        let xj = AffineExpr::var(n2, off + j);
        let lo = widen_expr(&lower[j], n2, off);
        let hi = widen_expr(&upper[j], n2, off);
        sys.add_ge0(xj.sub(&lo).map_err(IrError::Matrix)?)
            .map_err(IrError::Matrix)?;
        sys.add_ge0(hi.sub(&xj).map_err(IrError::Matrix)?)
            .map_err(IrError::Matrix)?;
    }
    Ok(())
}

/// Add `a == b` as two inequalities.
fn add_eq(sys: &mut System, a: &AffineExpr, b: &AffineExpr) -> Result<()> {
    sys.add_ge0(a.sub(b).map_err(IrError::Matrix)?)
        .map_err(IrError::Matrix)?;
    sys.add_ge0(b.sub(a).map_err(IrError::Matrix)?)
        .map_err(IrError::Matrix)?;
    Ok(())
}

/// Conflicting access pairs between two statements: same array, at least
/// one side a write.
fn conflict_pairs<'a>(a: &'a Statement, b: &'a Statement) -> Vec<(&'a ArrayRef, &'a ArrayRef)> {
    let mut out = Vec::new();
    for (ka, ra) in a.accesses() {
        for (kb, rb) in b.accesses() {
            if ra.array != rb.array {
                continue;
            }
            if ka == AccessKind::Read && kb == AccessKind::Read {
                continue;
            }
            out.push((ra, rb));
        }
    }
    out
}

/// Can instances of `later` at an earlier `0..=k` prefix touch the same
/// cell as instances of `earlier` at a later prefix? (`earlier` runs at
/// level `lvl_e`, `later` at `lvl_l`; both full-depth statements of the
/// nest whose bounds are given.) `true` means fission at level `k` would
/// flip a (potential) dependence.
fn flipped_dependence_possible(
    lower: &[AffineExpr],
    upper: &[AffineExpr],
    k: usize,
    earlier: &Statement,
    lvl_e: usize,
    later: &Statement,
    lvl_l: usize,
) -> Result<bool> {
    let n = lower.len();
    let n2 = 2 * n; // I = earlier's instance, J = later's instance
    for (ra, rb) in conflict_pairs(earlier, later) {
        for t in 0..=k {
            let mut sys = System::universe(n2);
            add_space(&mut sys, lower, upper, lvl_e, n2, 0)?;
            add_space(&mut sys, lower, upper, lvl_l, n2, n)?;
            for d in 0..ra.access.dims() {
                let sa = subscript_expr(ra, d, n2, 0);
                let sb = subscript_expr(rb, d, n2, n);
                add_eq(&mut sys, &sa, &sb)?;
            }
            // J's prefix lexicographically smaller than I's, first
            // difference at level t.
            for j in 0..t {
                let ij = AffineExpr::var(n2, j);
                let jj = AffineExpr::var(n2, n + j);
                add_eq(&mut sys, &ij, &jj)?;
            }
            // I_t - J_t - 1 >= 0.
            let it = AffineExpr::var(n2, t);
            let jt = AffineExpr::var(n2, n + t);
            let gap = it
                .sub(&jt)
                .and_then(|e| e.add(&AffineExpr::constant(n2, -1)))
                .map_err(IrError::Matrix)?;
            sys.add_ge0(gap).map_err(IrError::Matrix)?;
            if pdm_poly::fm::is_rationally_feasible(&sys).map_err(IrError::Matrix)? {
                return Ok(true);
            }
        }
    }
    Ok(false)
}

/// Is fission legal at level `k`: distributing loops `0..=k` over
/// `[pre_k, subtree, post_k]` must not flip any potential dependence.
fn fission_legal(
    lower: &[AffineExpr],
    upper: &[AffineExpr],
    k: usize,
    pre_k: &[Statement],
    post_k: &[Statement],
    subtree: &[(usize, &Statement)],
) -> Result<bool> {
    // pre_k before subtree.
    for s in pre_k {
        for (lvl, t) in subtree {
            if flipped_dependence_possible(lower, upper, k, s, k, t, *lvl)? {
                return Ok(false);
            }
        }
    }
    // subtree before post_k.
    for (lvl, s) in subtree {
        for t in post_k {
            if flipped_dependence_possible(lower, upper, k, s, *lvl, t, k)? {
                return Ok(false);
            }
        }
    }
    // pre_k before post_k.
    for s in pre_k {
        for t in post_k {
            if flipped_dependence_possible(lower, upper, k, s, k, t, k)? {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

/// Is loop `k + 1` provably non-empty at every feasible iteration of
/// loops `0..=k`? (The sinking precondition.) Decided by refutation:
/// the system "outer point feasible ∧ `upper_{k+1} < lower_{k+1}`" must
/// be rationally infeasible.
fn inner_loop_nonempty(lower: &[AffineExpr], upper: &[AffineExpr], k: usize) -> Result<bool> {
    let n = lower.len();
    let mut sys = System::universe(n);
    add_space(&mut sys, lower, upper, k, n, 0)?;
    // lower_{k+1} - upper_{k+1} - 1 >= 0  (inner range empty).
    let gap = lower[k + 1]
        .sub(&upper[k + 1])
        .and_then(|e| e.add(&AffineExpr::constant(n, -1)))
        .map_err(IrError::Matrix)?;
    sys.add_ge0(gap).map_err(IrError::Matrix)?;
    Ok(!pdm_poly::fm::is_rationally_feasible(&sys).map_err(IrError::Matrix)?)
}

/// Build the depth-`level + 1` perfect kernel holding `stmts`.
fn make_kernel(
    names: &[String],
    lower: &[AffineExpr],
    upper: &[AffineExpr],
    arrays: &[ArrayDecl],
    level: usize,
    stmts: &[Statement],
    origin: StmtPosition,
) -> Result<PerfectKernel> {
    let d = level + 1;
    let nest = LoopNest::new(
        names[..d].to_vec(),
        lower[..d].iter().map(|e| truncate_expr(e, d)).collect(),
        upper[..d].iter().map(|e| truncate_expr(e, d)).collect(),
        arrays.to_vec(),
        stmts
            .iter()
            .map(|s| truncate_stmt(s, d))
            .collect::<Result<Vec<_>>>()?,
    )?;
    Ok(PerfectKernel { nest, origin })
}

/// Conservative inter-kernel dependence edges: `(i, j)` for `i < j` when
/// some access of kernel `i` and some access of kernel `j` (≥ 1 write)
/// can rationally touch the same cell of the same array.
fn kernel_edges(kernels: &[PerfectKernel]) -> Result<Vec<(usize, usize)>> {
    let mut edges = Vec::new();
    for i in 0..kernels.len() {
        for j in i + 1..kernels.len() {
            if kernels_conflict(&kernels[i].nest, &kernels[j].nest)? {
                edges.push((i, j));
            }
        }
    }
    Ok(edges)
}

fn kernels_conflict(a: &LoopNest, b: &LoopNest) -> Result<bool> {
    let (na, nb) = (a.depth(), b.depth());
    let n2 = na + nb;
    let lower_a: Vec<AffineExpr> = (0..na).map(|k| a.lower(k).clone()).collect();
    let upper_a: Vec<AffineExpr> = (0..na).map(|k| a.upper(k).clone()).collect();
    let lower_b: Vec<AffineExpr> = (0..nb).map(|k| b.lower(k).clone()).collect();
    let upper_b: Vec<AffineExpr> = (0..nb).map(|k| b.upper(k).clone()).collect();
    for sa in a.body() {
        for sb in b.body() {
            for (ra, rb) in conflict_pairs(sa, sb) {
                let mut sys = System::universe(n2);
                add_space(&mut sys, &lower_a, &upper_a, na - 1, n2, 0)?;
                add_space(&mut sys, &lower_b, &upper_b, nb - 1, n2, na)?;
                for d in 0..ra.access.dims() {
                    let ea = subscript_expr(ra, d, n2, 0);
                    let eb = subscript_expr(rb, d, n2, na);
                    add_eq(&mut sys, &ea, &eb)?;
                }
                if pdm_poly::fm::is_rationally_feasible(&sys).map_err(IrError::Matrix)? {
                    return Ok(true);
                }
            }
        }
    }
    Ok(false)
}

/// Guard `stmts` on level `index == value` (sinking one level).
fn guard_stmts(stmts: Vec<Statement>, index: usize, value: &AffineExpr) -> Vec<Statement> {
    stmts
        .into_iter()
        .map(|mut s| {
            s.guards.push(IndexGuard {
                index,
                value: value.clone(),
            });
            s
        })
        .collect()
}

/// Sink level `k`'s pre/post statements one level inward with
/// first/last-iteration guards. The destination order is the
/// exactness invariant of sinking — pre statements **prepend** before
/// the deeper level's existing pre list (they ran earlier in source
/// order), post statements **append** after its post list — and this
/// helper is the single implementation both [`to_perfect_kernels`] and
/// [`sink_fully`] use, so the two paths (and the [`unsink`] inverse)
/// cannot drift apart.
#[allow(clippy::too_many_arguments)]
fn sink_one_level(
    k: usize,
    n: usize,
    lower: &[AffineExpr],
    upper: &[AffineExpr],
    pre_k: Vec<Statement>,
    post_k: Vec<Statement>,
    pre: &mut [Vec<Statement>],
    post: &mut [Vec<Statement>],
    body: &mut Vec<Statement>,
) {
    let sunk_pre = guard_stmts(pre_k, k + 1, &lower[k + 1]);
    let sunk_post = guard_stmts(post_k, k + 1, &upper[k + 1]);
    if k + 1 == n - 1 {
        body.splice(0..0, sunk_pre);
        body.extend(sunk_post);
    } else {
        pre[k + 1].splice(0..0, sunk_pre);
        post[k + 1].extend(sunk_post);
    }
}

/// Normalize an imperfect nest into an ordered sequence of perfect
/// kernels plus conservative dependence edges — the input of
/// `pdm-core`'s `ProgramPlan`. Per level, **fission** is applied when
/// provably order-safe, otherwise statements are **sunk** with guards
/// (when the inner loop is provably non-empty); a nest admitting neither
/// is rejected with [`IrError::Invalid`]. See the [module
/// docs](self#imperfect-nest-normalization).
pub fn to_perfect_kernels(imp: &ImperfectNest) -> Result<NormalizedProgram> {
    let n = imp.depth();
    let (names, lower, upper, arrays, mut pre, mut post, mut body) = imp.clone().into_parts();
    // (level, statements) of fissioned-off kernels, in discovery order.
    let mut front: Vec<(usize, Vec<Statement>)> = Vec::new();
    let mut back: Vec<(usize, Vec<Statement>)> = Vec::new();
    for k in 0..n.saturating_sub(1) {
        let pre_k = std::mem::take(&mut pre[k]);
        let post_k = std::mem::take(&mut post[k]);
        if pre_k.is_empty() && post_k.is_empty() {
            continue;
        }
        let subtree: Vec<(usize, &Statement)> = {
            let mut v = Vec::new();
            for j in k + 1..n - 1 {
                v.extend(pre[j].iter().map(|s| (j, s)));
                v.extend(post[j].iter().map(|s| (j, s)));
            }
            v.extend(body.iter().map(|s| (n - 1, s)));
            v
        };
        if fission_legal(&lower, &upper, k, &pre_k, &post_k, &subtree)? {
            if !pre_k.is_empty() {
                front.push((k, pre_k));
            }
            if !post_k.is_empty() {
                back.push((k, post_k));
            }
        } else if inner_loop_nonempty(&lower, &upper, k)? {
            sink_one_level(
                k, n, &lower, &upper, pre_k, post_k, &mut pre, &mut post, &mut body,
            );
        } else {
            return Err(IrError::Invalid(format!(
                "cannot normalize: fission at level {k} would reorder a dependence \
                 and loop {} may be empty, so sinking is not legal either",
                k + 1
            )));
        }
    }
    let mut kernels = Vec::new();
    for (k, stmts) in &front {
        kernels.push(make_kernel(
            &names,
            &lower,
            &upper,
            &arrays,
            *k,
            stmts,
            StmtPosition::Pre(*k),
        )?);
    }
    kernels.push(make_kernel(
        &names,
        &lower,
        &upper,
        &arrays,
        n - 1,
        &body,
        StmtPosition::Body,
    )?);
    for (k, stmts) in back.iter().rev() {
        kernels.push(make_kernel(
            &names,
            &lower,
            &upper,
            &arrays,
            *k,
            stmts,
            StmtPosition::Post(*k),
        )?);
    }
    let edges = kernel_edges(&kernels)?;
    Ok(NormalizedProgram { kernels, edges })
}

/// Sink **every** between-level statement into the innermost body with
/// first/last-iteration guards, producing one guarded perfect nest with
/// the exact original execution order. Errors when some inner loop may
/// be empty (the sunk statement would be skipped). Inverse:
/// [`unsink`].
pub fn sink_fully(imp: &ImperfectNest) -> Result<LoopNest> {
    let n = imp.depth();
    let (names, lower, upper, arrays, mut pre, mut post, mut body) = imp.clone().into_parts();
    for k in 0..n.saturating_sub(1) {
        let pre_k = std::mem::take(&mut pre[k]);
        let post_k = std::mem::take(&mut post[k]);
        if pre_k.is_empty() && post_k.is_empty() {
            continue;
        }
        if !inner_loop_nonempty(&lower, &upper, k)? {
            return Err(IrError::Invalid(format!(
                "cannot sink past loop {}: it may be empty for some outer iteration",
                k + 1
            )));
        }
        sink_one_level(
            k, n, &lower, &upper, pre_k, post_k, &mut pre, &mut post, &mut body,
        );
    }
    LoopNest::new(names, lower, upper, arrays, body)
}

/// Hoist sunk statements back out of a perfect nest: the inverse of
/// [`sink_fully`]. A leading body statement whose guard set pins level
/// `d` to `lower[d]` hoists to `pre[d − 1]` (recursively outward); a
/// trailing one pinned to `upper[d]` hoists to `post[d − 1]`. Exact on
/// `sink_fully` output whenever no inner loop is degenerate
/// (`lower == upper`, which would make first- and last-iteration guards
/// indistinguishable); statements it cannot attribute stay in the body.
pub fn unsink(nest: &LoopNest) -> Result<ImperfectNest> {
    if nest.is_symbolic() {
        return Err(IrError::UnboundParameter {
            name: nest.param_names()[0].clone(),
        });
    }
    let n = nest.depth();
    let mut pre: Vec<Vec<Statement>> = vec![Vec::new(); n.saturating_sub(1)];
    let mut post: Vec<Vec<Statement>> = vec![Vec::new(); n.saturating_sub(1)];
    let mut body: Vec<Statement> = nest.body().to_vec();

    // Remove the guard pinning `level` to `value`, if present.
    let strip = |s: &mut Statement, level: usize, value: &AffineExpr| -> bool {
        if let Some(pos) = s
            .guards
            .iter()
            .position(|g| g.index == level && g.value == *value)
        {
            s.guards.remove(pos);
            true
        } else {
            false
        }
    };

    // Hoist level by level, innermost container first.
    for d in (1..n).rev() {
        // `stmts` of the current level-d container.
        let (mut level_pre, mut level_post) = (Vec::new(), Vec::new());
        {
            let stmts: &mut Vec<Statement> = if d == n - 1 { &mut body } else { &mut pre[d] };
            while let Some(first) = stmts.first() {
                let mut cand = first.clone();
                if strip(&mut cand, d, nest.lower(d))
                    && crate::imperfect::stmt_max_level(&cand).is_none_or(|m| m < d)
                {
                    stmts.remove(0);
                    level_pre.push(cand);
                } else {
                    break;
                }
            }
        }
        {
            let stmts: &mut Vec<Statement> = if d == n - 1 { &mut body } else { &mut post[d] };
            while let Some(last) = stmts.last() {
                let mut cand = last.clone();
                if strip(&mut cand, d, nest.upper(d))
                    && crate::imperfect::stmt_max_level(&cand).is_none_or(|m| m < d)
                {
                    stmts.pop();
                    level_post.insert(0, cand);
                } else {
                    break;
                }
            }
        }
        pre[d - 1] = level_pre;
        post[d - 1] = level_post;
    }

    ImperfectNest::new(
        nest.index_names().to_vec(),
        (0..n).map(|k| nest.lower(k).clone()).collect(),
        (0..n).map(|k| nest.upper(k).clone()).collect(),
        nest.arrays().to_vec(),
        pre,
        post,
        body,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_loop_stepped;

    #[test]
    fn unit_steps_are_identity() {
        let s = parse_loop_stepped("for i = 0..=9 { A[i] = i; }").unwrap();
        assert_eq!(s.steps, vec![1]);
        let n = normalize(&s).unwrap();
        assert_eq!(n, s.nest);
    }

    #[test]
    fn stride_two_normalizes() {
        let s = parse_loop_stepped("for i = 1..=9 step 2 { A[i] = i; }").unwrap();
        assert_eq!(s.steps, vec![2]);
        let n = normalize(&s).unwrap();
        // i in {1,3,5,7,9} -> i' in 0..=4, access A[2*i' + 1].
        let its = n.iterations().unwrap();
        assert_eq!(its.len(), 5);
        let w = &n.body()[0].lhs;
        assert_eq!(w.access.matrix.get(0, 0), 2);
        assert_eq!(w.access.offset[0], 1);
    }

    #[test]
    fn normalized_execution_touches_same_cells() {
        // A[i] = 7 for i = 2, 5, 8.
        let s = parse_loop_stepped("for i = 2..=9 step 3 { A[i] = 7; }").unwrap();
        let n = normalize(&s).unwrap();
        let cells: Vec<i64> = n
            .iterations()
            .unwrap()
            .iter()
            .map(|it| n.body()[0].lhs.access.eval(it).unwrap()[0])
            .collect();
        assert_eq!(cells, vec![2, 5, 8]);
    }

    #[test]
    fn mixed_steps_2d() {
        let s =
            parse_loop_stepped("for i = 0..=8 step 2 { for j = 0..=3 { A[i + j] = A[i] + j; } }")
                .unwrap();
        assert_eq!(s.steps, vec![2, 1]);
        let n = normalize(&s).unwrap();
        assert_eq!(n.iterations().unwrap().len(), 5 * 4);
        // Subscript i + j becomes 2 i' + j.
        let w = &n.body()[0].lhs;
        assert_eq!(w.access.matrix.get(0, 0), 2);
        assert_eq!(w.access.matrix.get(1, 0), 1);
        // The read A[i] becomes A[2*i']; the bare index j stays Index(1).
        let mut reads = Vec::new();
        n.body()[0].rhs.reads(&mut reads);
        assert_eq!(reads[0].access.matrix.get(0, 0), 2);
        // A loop body that names the strided index directly gets the
        // base + step * i' expression tree.
        let s2 = parse_loop_stepped("for i = 3..=9 step 2 { A[i] = i; }").unwrap();
        let n2 = normalize(&s2).unwrap();
        let rendered = format!("{:?}", n2.body()[0].rhs);
        assert!(rendered.contains("Mul"), "{rendered}");
        assert!(rendered.contains("Const(3)"), "{rendered}");
    }

    #[test]
    fn bad_steps_rejected() {
        let s = parse_loop_stepped("for i = 0..=9 step 2 { A[i] = 1; }").unwrap();
        let bad = SteppedNest {
            nest: s.nest.clone(),
            steps: vec![0],
        };
        assert!(normalize(&bad).is_err());
        let wrong_len = SteppedNest {
            nest: s.nest,
            steps: vec![1, 1],
        };
        assert!(normalize(&wrong_len).is_err());
    }

    #[test]
    fn stepped_loop_with_affine_inner_bound_keeps_semantics() {
        // Outer stride 2, inner bound depends on the outer index. The
        // inner bound i (affine) is substituted to 2*i'.
        let s =
            parse_loop_stepped("for i = 0..=6 step 2 { for j = 0..=i { A[i, j] = 1; } }").unwrap();
        let n = normalize(&s).unwrap();
        // i in {0,2,4,6}: inner counts 1,3,5,7 -> 16 iterations.
        assert_eq!(n.iterations().unwrap().len(), 16);
    }

    #[test]
    fn analysis_composes_with_normalization() {
        // Stride-2 chain A[i] = A[i-2] over even i: normalized it is a
        // unit chain with distance 1 (i' space) -> sequential; and the
        // ORIGINAL even/odd split is gone because only evens execute.
        let s = parse_loop_stepped("for i = 2..=20 step 2 { A[i] = A[i - 2] + 1; }").unwrap();
        let n = normalize(&s).unwrap();
        let a = pdm_core_analysis_shim(&n);
        assert_eq!(a, vec![vec![1]]);
    }

    #[test]
    fn sink_then_unsink_roundtrips() {
        let src = "for i = 0..=5 {
            A[i, 0] = i;
            for j = 0..=5 { A[i, j] = A[i, j] + 1; }
            A[i, 5] = A[i, 5] + 2;
        }";
        let imp = crate::parse::parse_imperfect(src).unwrap();
        let sunk = sink_fully(&imp).unwrap();
        // Sinking produced one perfect nest with guarded edge statements.
        assert_eq!(sunk.body().len(), 3);
        assert!(sunk.body()[0].is_guarded());
        assert!(sunk.body()[2].is_guarded());
        assert!(!sunk.body()[1].is_guarded());
        // The guarded nest renders and re-parses.
        let text = crate::pretty::render(&sunk);
        assert_eq!(crate::parse::parse_loop(&text).unwrap(), sunk);
        // Unsinking recovers the imperfect source exactly.
        let back = unsink(&sunk).unwrap();
        assert_eq!(back, imp);
        assert_eq!(
            crate::pretty::render_imperfect(&back),
            crate::pretty::render_imperfect(&imp)
        );
    }

    #[test]
    fn sink_rejects_possibly_empty_inner_loop() {
        // Inner loop j = 2..=i is empty for i < 2.
        let imp = crate::parse::parse_imperfect(
            "for i = 0..=5 { A[i, 0] = 1; for j = 2..=i { A[i, j] = 2; } }",
        )
        .unwrap();
        assert!(matches!(sink_fully(&imp), Err(IrError::Invalid(_))));
    }

    #[test]
    fn independent_pre_statement_fissions() {
        // Pre statement writes B, body writes A reading A only: no
        // conflict between the two groups, so fission splits them.
        let imp = crate::parse::parse_imperfect(
            "for i = 0..=5 { B[i, 0] = i; for j = 0..=5 { A[i, j] = A[i, j] + 1; } }",
        )
        .unwrap();
        let prog = to_perfect_kernels(&imp).unwrap();
        assert_eq!(prog.kernel_count(), 2);
        assert_eq!(prog.kernels[0].origin, StmtPosition::Pre(0));
        assert_eq!(prog.kernels[0].nest.depth(), 1);
        assert_eq!(prog.kernels[1].origin, StmtPosition::Body);
        assert_eq!(prog.kernels[1].nest.depth(), 2);
        // Disjoint arrays: no dependence edge.
        assert!(prog.edges.is_empty());
        // No statement gained a guard.
        for k in &prog.kernels {
            assert!(k.nest.body().iter().all(|s| !s.is_guarded()));
        }
    }

    #[test]
    fn forward_only_dependence_still_fissions() {
        // Pre writes A[i, 0]; body reads A[i, 0] (same i): dependence
        // flows pre -> body at the same prefix, never backward, so
        // fission is legal — but the kernels carry a dependence edge.
        let imp = crate::parse::parse_imperfect(
            "for i = 0..=5 { A[i, 0] = i; for j = 1..=5 { A[i, j] = A[i, 0] + 1; } }",
        )
        .unwrap();
        let prog = to_perfect_kernels(&imp).unwrap();
        assert_eq!(prog.kernel_count(), 2);
        assert_eq!(prog.edges, vec![(0, 1)]);
    }

    #[test]
    fn cyclic_dependence_sinks_instead() {
        // Body at iteration i reads what pre wrote at i; pre at i + 1
        // reads what the body wrote at i (A[i + 1 - 1, 5] = A[i, 5]):
        // fission would flip that backward dependence, so the pass must
        // sink. The inner loop is constant-bounded (never empty), so
        // sinking is legal.
        let imp = crate::parse::parse_imperfect(
            "for i = 1..=5 {
               A[i, 0] = A[i - 1, 5] + 1;
               for j = 1..=5 { A[i, j] = A[i, j - 1] + 1; }
             }",
        )
        .unwrap();
        let prog = to_perfect_kernels(&imp).unwrap();
        assert_eq!(prog.kernel_count(), 1);
        let kernel = &prog.kernels[0].nest;
        assert_eq!(kernel.depth(), 2);
        assert_eq!(kernel.body().len(), 2);
        assert!(kernel.body()[0].is_guarded(), "sunk statement is guarded");
        assert_eq!(kernel.body()[0].guards[0].index, 1);
    }

    #[test]
    fn perfect_input_yields_single_kernel() {
        let imp = crate::imperfect::ImperfectNest::from_perfect(
            &crate::parse::parse_loop("for i = 0..=3 { for j = 0..=3 { A[i, j] = 1; } }").unwrap(),
        )
        .unwrap();
        let prog = to_perfect_kernels(&imp).unwrap();
        assert_eq!(prog.kernel_count(), 1);
        assert!(prog.edges.is_empty());
        assert_eq!(prog.kernels[0].origin, StmtPosition::Body);
    }

    /// Tiny shim so the loopir crate can check PDM shape without a
    /// circular dev-dependency on pdm-core: replicate the distance of the
    /// single flow pair by brute force.
    fn pdm_core_analysis_shim(nest: &LoopNest) -> Vec<Vec<i64>> {
        let its = nest.iterations().unwrap();
        let w = &nest.body()[0].lhs;
        let mut reads = Vec::new();
        nest.body()[0].rhs.reads(&mut reads);
        let r = reads[0];
        let mut dists = std::collections::BTreeSet::new();
        for i in &its {
            for j in &its {
                if w.access.eval(i).unwrap() == r.access.eval(j).unwrap() && i != j {
                    let d = j.sub(i).unwrap();
                    if pdm_matrix::lex::is_lex_positive(&d) {
                        dists.insert(d.0.clone());
                    }
                }
            }
        }
        dists.into_iter().take(1).collect()
    }
}
