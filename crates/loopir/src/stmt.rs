//! Statements and array references.

use crate::access::{AffineAccess, ArrayId};
use crate::expr::Expr;
use pdm_poly::expr::AffineExpr;
use std::fmt;

/// Read or write classification of an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// The access stores into the array.
    Write,
    /// The access loads from the array.
    Read,
}

/// A reference `Array[s(i)]` with an affine subscript map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayRef {
    /// Which array.
    pub array: ArrayId,
    /// The subscript map.
    pub access: AffineAccess,
}

impl fmt::Display for ArrayRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "arr{}[", self.array.0)?;
        // Render each subscript as an affine combination of i1..in.
        let n = self.access.depth();
        for c in 0..self.access.dims() {
            if c > 0 {
                write!(f, ", ")?;
            }
            let mut first = true;
            for k in 0..n {
                let coef = self.access.matrix.get(k, c);
                if coef == 0 {
                    continue;
                }
                if !first {
                    write!(f, "{}", if coef > 0 { " + " } else { " - " })?;
                } else if coef < 0 {
                    write!(f, "-")?;
                }
                if coef.abs() != 1 {
                    write!(f, "{}*", coef.abs())?;
                }
                write!(f, "i{}", k + 1)?;
                first = false;
            }
            for k in 0..self.access.params.rows() {
                let coef = self.access.params.get(k, c);
                if coef == 0 {
                    continue;
                }
                if !first {
                    write!(f, "{}", if coef > 0 { " + " } else { " - " })?;
                } else if coef < 0 {
                    write!(f, "-")?;
                }
                if coef.abs() != 1 {
                    write!(f, "{}*", coef.abs())?;
                }
                write!(f, "p{}", k + 1)?;
                first = false;
            }
            let b = self.access.offset[c];
            if first {
                write!(f, "{b}")?;
            } else if b > 0 {
                write!(f, " + {b}")?;
            } else if b < 0 {
                write!(f, " - {}", -b)?;
            }
        }
        write!(f, "]")
    }
}

/// An equality guard `i_index == value(i_0 … i_{index−1})` attached to a
/// statement: the statement executes only at iteration points satisfying
/// every one of its guards.
///
/// Guards are how code **sinking** embeds an imperfect-nest statement
/// into a perfect kernel (see [`crate::normalize::sink_fully`]): a
/// statement that originally ran once per outer iteration becomes a body
/// statement guarded on the first (or last) iteration of each inner
/// loop. The dependence analysis deliberately **ignores** guards — it
/// over-approximates a guarded statement by its unguarded accesses,
/// which is sound (extra dependences can only reduce parallelism, never
/// break an ordering).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexGuard {
    /// The guarded loop level (0-based).
    pub index: usize,
    /// Affine value over the loop indices; only levels strictly outer to
    /// `index` may carry nonzero coefficients.
    pub value: AffineExpr,
}

impl IndexGuard {
    /// Does the iteration point satisfy the guard?
    ///
    /// Evaluated in `i128` so the comparison is **exact** for any `i64`
    /// coefficients and indices — the compiled engine's `GuardEq` op
    /// uses the identical arithmetic, keeping the executors
    /// bit-identical even on adversarial guard values that would
    /// overflow an `i64` accumulator.
    #[inline]
    pub fn holds(&self, idx: &[i64]) -> bool {
        let mut v = self.value.constant as i128;
        for (c, i) in self.value.coeffs.iter().zip(idx) {
            v += *c as i128 * *i as i128;
        }
        v == idx[self.index] as i128
    }
}

/// An assignment `lhs = rhs;` inside the loop body, optionally guarded
/// (`lhs = rhs when i2 == 0;` in the DSL).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Statement {
    /// Destination reference (the single write of the statement).
    pub lhs: ArrayRef,
    /// Right-hand side expression.
    pub rhs: Expr,
    /// Conjunction of equality guards (empty = execute at every point).
    pub guards: Vec<IndexGuard>,
}

impl Statement {
    /// An unguarded assignment.
    pub fn new(lhs: ArrayRef, rhs: Expr) -> Statement {
        Statement {
            lhs,
            rhs,
            guards: Vec::new(),
        }
    }

    /// All accesses of this statement: the write plus every read.
    /// Guards contribute no accesses (they read only loop indices).
    pub fn accesses(&self) -> Vec<(AccessKind, &ArrayRef)> {
        let mut out = vec![(AccessKind::Write, &self.lhs)];
        let mut reads = Vec::new();
        self.rhs.reads(&mut reads);
        out.extend(reads.into_iter().map(|r| (AccessKind::Read, r)));
        out
    }

    /// Does the statement carry guards?
    pub fn is_guarded(&self) -> bool {
        !self.guards.is_empty()
    }

    /// Do all guards hold at the iteration point?
    #[inline]
    pub fn guards_hold(&self, idx: &[i64]) -> bool {
        self.guards.iter().all(|g| g.holds(idx))
    }
}

// Name-free diagnostic rendering (indices as `i1…`, guard values in the
// generic `x0…` form) — the *parseable* text form with real index/array
// names is `crate::pretty::render_stmt`.
impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {}", self.lhs, self.rhs)?;
        for (j, g) in self.guards.iter().enumerate() {
            let sep = if j == 0 { " when " } else { ", " };
            write!(f, "{sep}i{} == {}", g.index + 1, g.value)?;
        }
        write!(f, ";")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_matrix::mat::IMat;
    use pdm_matrix::vec::IVec;

    fn access(rows: &[Vec<i64>], off: &[i64]) -> AffineAccess {
        AffineAccess::new(IMat::from_rows(rows).unwrap(), IVec::from_slice(off)).unwrap()
    }

    #[test]
    fn accesses_lists_write_then_reads() {
        let w = ArrayRef {
            array: ArrayId(0),
            access: access(&[vec![1], vec![0]], &[0]),
        };
        let r = ArrayRef {
            array: ArrayId(0),
            access: access(&[vec![1], vec![1]], &[1]),
        };
        let s = Statement::new(w.clone(), Expr::add(Expr::Read(r.clone()), Expr::Const(1)));
        let acc = s.accesses();
        assert_eq!(acc.len(), 2);
        assert_eq!(acc[0].0, AccessKind::Write);
        assert_eq!(acc[0].1, &w);
        assert_eq!(acc[1].0, AccessKind::Read);
        assert_eq!(acc[1].1, &r);
    }

    #[test]
    fn guards_gate_execution_points() {
        let w = ArrayRef {
            array: ArrayId(0),
            access: access(&[vec![1], vec![0]], &[0]),
        };
        let mut s = Statement::new(w, Expr::Const(1));
        assert!(!s.is_guarded());
        assert!(s.guards_hold(&[3, 9]));
        // Guard: i2 == i1 + 1.
        s.guards.push(IndexGuard {
            index: 1,
            value: AffineExpr::new(pdm_matrix::vec::IVec::from_slice(&[1, 0]), 1),
        });
        assert!(s.guards_hold(&[3, 4]));
        assert!(!s.guards_hold(&[3, 5]));
        assert!(s.to_string().contains("when i2 == x0 + 1"));
    }

    #[test]
    fn display_subscripts_paper_style() {
        // A[i1 + i2, 3*i1 + i2 + 3]
        let w = ArrayRef {
            array: ArrayId(0),
            access: access(&[vec![1, 3], vec![1, 1]], &[0, 3]),
        };
        assert_eq!(w.to_string(), "arr0[i1 + i2, 3*i1 + i2 + 3]");
        // Constant-only and negative-coefficient subscripts.
        let c = ArrayRef {
            array: ArrayId(1),
            access: access(&[vec![0, -2], vec![0, 1]], &[5, -1]),
        };
        assert_eq!(c.to_string(), "arr1[5, -2*i1 + i2 - 1]");
    }
}
