//! Statements and array references.

use crate::access::{AffineAccess, ArrayId};
use crate::expr::Expr;
use std::fmt;

/// Read or write classification of an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// The access stores into the array.
    Write,
    /// The access loads from the array.
    Read,
}

/// A reference `Array[s(i)]` with an affine subscript map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayRef {
    /// Which array.
    pub array: ArrayId,
    /// The subscript map.
    pub access: AffineAccess,
}

impl fmt::Display for ArrayRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "arr{}[", self.array.0)?;
        // Render each subscript as an affine combination of i1..in.
        let n = self.access.depth();
        for c in 0..self.access.dims() {
            if c > 0 {
                write!(f, ", ")?;
            }
            let mut first = true;
            for k in 0..n {
                let coef = self.access.matrix.get(k, c);
                if coef == 0 {
                    continue;
                }
                if !first {
                    write!(f, "{}", if coef > 0 { " + " } else { " - " })?;
                } else if coef < 0 {
                    write!(f, "-")?;
                }
                if coef.abs() != 1 {
                    write!(f, "{}*", coef.abs())?;
                }
                write!(f, "i{}", k + 1)?;
                first = false;
            }
            let b = self.access.offset[c];
            if first {
                write!(f, "{b}")?;
            } else if b > 0 {
                write!(f, " + {b}")?;
            } else if b < 0 {
                write!(f, " - {}", -b)?;
            }
        }
        write!(f, "]")
    }
}

/// An assignment `lhs = rhs;` inside the loop body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Statement {
    /// Destination reference (the single write of the statement).
    pub lhs: ArrayRef,
    /// Right-hand side expression.
    pub rhs: Expr,
}

impl Statement {
    /// All accesses of this statement: the write plus every read.
    pub fn accesses(&self) -> Vec<(AccessKind, &ArrayRef)> {
        let mut out = vec![(AccessKind::Write, &self.lhs)];
        let mut reads = Vec::new();
        self.rhs.reads(&mut reads);
        out.extend(reads.into_iter().map(|r| (AccessKind::Read, r)));
        out
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} = {};", self.lhs, self.rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_matrix::mat::IMat;
    use pdm_matrix::vec::IVec;

    fn access(rows: &[Vec<i64>], off: &[i64]) -> AffineAccess {
        AffineAccess::new(IMat::from_rows(rows).unwrap(), IVec::from_slice(off)).unwrap()
    }

    #[test]
    fn accesses_lists_write_then_reads() {
        let w = ArrayRef {
            array: ArrayId(0),
            access: access(&[vec![1], vec![0]], &[0]),
        };
        let r = ArrayRef {
            array: ArrayId(0),
            access: access(&[vec![1], vec![1]], &[1]),
        };
        let s = Statement {
            lhs: w.clone(),
            rhs: Expr::add(Expr::Read(r.clone()), Expr::Const(1)),
        };
        let acc = s.accesses();
        assert_eq!(acc.len(), 2);
        assert_eq!(acc[0].0, AccessKind::Write);
        assert_eq!(acc[0].1, &w);
        assert_eq!(acc[1].0, AccessKind::Read);
        assert_eq!(acc[1].1, &r);
    }

    #[test]
    fn display_subscripts_paper_style() {
        // A[i1 + i2, 3*i1 + i2 + 3]
        let w = ArrayRef {
            array: ArrayId(0),
            access: access(&[vec![1, 3], vec![1, 1]], &[0, 3]),
        };
        assert_eq!(w.to_string(), "arr0[i1 + i2, 3*i1 + i2 + 3]");
        // Constant-only and negative-coefficient subscripts.
        let c = ArrayRef {
            array: ArrayId(1),
            access: access(&[vec![0, -2], vec![0, 1]], &[5, -1]),
        };
        assert_eq!(c.to_string(), "arr1[5, -2*i1 + i2 - 1]");
    }
}
