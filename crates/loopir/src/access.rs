//! Affine array access functions `s(i) = i·A + b`.

use crate::{IrError, Result};
use pdm_matrix::mat::IMat;
use pdm_matrix::vec::IVec;

/// Identifier of an array within a [`crate::nest::LoopNest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub usize);

/// An affine subscript map from iteration vectors to array indices.
///
/// Row-vector convention, matching the paper's eq. (2.3): an iteration
/// `i ∈ Zⁿ` accesses element `i·A + b` of an `m`-dimensional array, where
/// `A` is `n × m` (one *column* per subscript position) and `b ∈ Zᵐ`.
///
/// A **parametric** access additionally carries `params`, a `p × m`
/// coefficient matrix over the nest's symbolic parameters: the full map
/// is `i·A + q·P + b` for a parameter valuation `q ∈ Zᵖ`. Parametric
/// accesses cannot be evaluated directly — substitute the nest first
/// ([`crate::nest::LoopNest::substitute`] folds `q·P` into the offset) —
/// and static planning sees only the parameter-free hull `(A, b)`;
/// the runtime inspector audits each concrete valuation. Accesses keep
/// `params` **canonically empty** (zero rows) when every parameter
/// coefficient is zero, so non-parametric nests hash and compare
/// exactly as before.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AffineAccess {
    /// Coefficient matrix, `n × m`.
    pub matrix: IMat,
    /// Constant offsets, length `m`.
    pub offset: IVec,
    /// Parameter coefficient matrix, `p × m` — or `0 × m` for the
    /// common parameter-free case.
    pub params: IMat,
}

impl AffineAccess {
    /// Build and validate shape consistency (parameter-free).
    pub fn new(matrix: IMat, offset: IVec) -> Result<Self> {
        if matrix.cols() != offset.dim() {
            return Err(IrError::Invalid(format!(
                "access matrix has {} subscript columns but offset has {}",
                matrix.cols(),
                offset.dim()
            )));
        }
        let cols = matrix.cols();
        Ok(AffineAccess {
            matrix,
            offset,
            params: IMat::zeros(0, cols),
        })
    }

    /// Build a parametric access `i·A + q·P + b`. A `params` matrix
    /// that is all zeros is canonicalized away (dropped to zero rows),
    /// so structurally identical accesses always compare equal.
    pub fn with_params(matrix: IMat, params: IMat, offset: IVec) -> Result<Self> {
        let mut access = AffineAccess::new(matrix, offset)?;
        if params.cols() != access.matrix.cols() {
            return Err(IrError::Invalid(format!(
                "access params matrix has {} subscript columns but matrix has {}",
                params.cols(),
                access.matrix.cols()
            )));
        }
        let nonzero = (0..params.rows()).any(|r| (0..params.cols()).any(|c| params.get(r, c) != 0));
        if nonzero {
            access.params = params;
        }
        Ok(access)
    }

    /// Identity access `A[i1, …, in]`.
    pub fn identity(n: usize) -> Self {
        AffineAccess {
            matrix: IMat::identity(n),
            offset: IVec::zeros(n),
            params: IMat::zeros(0, n),
        }
    }

    /// Loop depth `n` this access expects.
    pub fn depth(&self) -> usize {
        self.matrix.rows()
    }

    /// Array dimensionality `m`.
    pub fn dims(&self) -> usize {
        self.matrix.cols()
    }

    /// Does any subscript read a symbolic parameter?
    pub fn is_parametric(&self) -> bool {
        self.params.rows() > 0
    }

    /// Evaluate the subscripts at iteration `i`. Parametric accesses
    /// refuse: their subscripts are undefined until the enclosing nest
    /// is substituted at a concrete valuation.
    pub fn eval(&self, i: &IVec) -> Result<IVec> {
        if self.is_parametric() {
            return Err(IrError::Invalid(
                "cannot evaluate a parametric access; substitute the nest first".into(),
            ));
        }
        Ok(self.matrix.vec_mul(i)?.add(&self.offset)?)
    }

    /// The access with `q·P` folded into the offset at valuation `q`
    /// (length `p`, ordered as the nest's parameters) — the concrete
    /// access [`crate::nest::LoopNest::substitute`] installs.
    pub fn substitute_params(&self, values: &IVec) -> Result<Self> {
        if !self.is_parametric() {
            return Ok(self.clone());
        }
        if values.dim() < self.params.rows() {
            return Err(IrError::Invalid(format!(
                "access reads {} parameters but valuation has {}",
                self.params.rows(),
                values.dim()
            )));
        }
        let mut offset = self.offset.clone();
        for c in 0..self.params.cols() {
            let mut extra = 0i64;
            for r in 0..self.params.rows() {
                extra += self.params.get(r, c) * values[r];
            }
            offset[c] += extra;
        }
        AffineAccess::new(self.matrix.clone(), offset)
    }

    /// Is the access *uniform enough* for a constant-distance method —
    /// i.e. square (`m == n`) and nonsingular (Corollary 5's condition)?
    pub fn is_nonsingular(&self) -> bool {
        self.matrix.is_square() && matches!(pdm_matrix::det::det(&self.matrix), Ok(d) if d != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_row_convention() {
        // Paper §4.1 write access: (i1+i2, 3 i1 + i2 + 3).
        // A is 2x2 with columns (subscripts): col0 = (1,1), col1 = (3,1).
        let a = AffineAccess::new(
            IMat::from_rows(&[vec![1, 3], vec![1, 1]]).unwrap(),
            IVec::from_slice(&[0, 3]),
        )
        .unwrap();
        let s = a.eval(&IVec::from_slice(&[2, 5])).unwrap();
        assert_eq!(s.as_slice(), &[7, 14]); // (2+5, 6+5+3)
        assert_eq!(a.depth(), 2);
        assert_eq!(a.dims(), 2);
    }

    #[test]
    fn identity_access() {
        let a = AffineAccess::identity(3);
        let i = IVec::from_slice(&[4, -1, 7]);
        assert_eq!(a.eval(&i).unwrap(), i);
        assert!(a.is_nonsingular());
    }

    #[test]
    fn shape_mismatch_rejected() {
        let err = AffineAccess::new(IMat::identity(2), IVec::zeros(3));
        assert!(err.is_err());
    }

    #[test]
    fn nonsingularity() {
        // Rank-deficient access (both subscripts i1+i2).
        let a = AffineAccess::new(
            IMat::from_rows(&[vec![1, 1], vec![1, 1]]).unwrap(),
            IVec::zeros(2),
        )
        .unwrap();
        assert!(!a.is_nonsingular());
        // Rectangular access (1-D array in a 2-deep loop).
        let b = AffineAccess::new(
            IMat::from_rows(&[vec![1], vec![2]]).unwrap(),
            IVec::zeros(1),
        )
        .unwrap();
        assert!(!b.is_nonsingular());
    }
}
