//! Affine array access functions `s(i) = i·A + b`.

use crate::{IrError, Result};
use pdm_matrix::mat::IMat;
use pdm_matrix::vec::IVec;

/// Identifier of an array within a [`crate::nest::LoopNest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub usize);

/// An affine subscript map from iteration vectors to array indices.
///
/// Row-vector convention, matching the paper's eq. (2.3): an iteration
/// `i ∈ Zⁿ` accesses element `i·A + b` of an `m`-dimensional array, where
/// `A` is `n × m` (one *column* per subscript position) and `b ∈ Zᵐ`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AffineAccess {
    /// Coefficient matrix, `n × m`.
    pub matrix: IMat,
    /// Constant offsets, length `m`.
    pub offset: IVec,
}

impl AffineAccess {
    /// Build and validate shape consistency.
    pub fn new(matrix: IMat, offset: IVec) -> Result<Self> {
        if matrix.cols() != offset.dim() {
            return Err(IrError::Invalid(format!(
                "access matrix has {} subscript columns but offset has {}",
                matrix.cols(),
                offset.dim()
            )));
        }
        Ok(AffineAccess { matrix, offset })
    }

    /// Identity access `A[i1, …, in]`.
    pub fn identity(n: usize) -> Self {
        AffineAccess {
            matrix: IMat::identity(n),
            offset: IVec::zeros(n),
        }
    }

    /// Loop depth `n` this access expects.
    pub fn depth(&self) -> usize {
        self.matrix.rows()
    }

    /// Array dimensionality `m`.
    pub fn dims(&self) -> usize {
        self.matrix.cols()
    }

    /// Evaluate the subscripts at iteration `i`.
    pub fn eval(&self, i: &IVec) -> Result<IVec> {
        Ok(self.matrix.vec_mul(i)?.add(&self.offset)?)
    }

    /// Is the access *uniform enough* for a constant-distance method —
    /// i.e. square (`m == n`) and nonsingular (Corollary 5's condition)?
    pub fn is_nonsingular(&self) -> bool {
        self.matrix.is_square() && matches!(pdm_matrix::det::det(&self.matrix), Ok(d) if d != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_row_convention() {
        // Paper §4.1 write access: (i1+i2, 3 i1 + i2 + 3).
        // A is 2x2 with columns (subscripts): col0 = (1,1), col1 = (3,1).
        let a = AffineAccess::new(
            IMat::from_rows(&[vec![1, 3], vec![1, 1]]).unwrap(),
            IVec::from_slice(&[0, 3]),
        )
        .unwrap();
        let s = a.eval(&IVec::from_slice(&[2, 5])).unwrap();
        assert_eq!(s.as_slice(), &[7, 14]); // (2+5, 6+5+3)
        assert_eq!(a.depth(), 2);
        assert_eq!(a.dims(), 2);
    }

    #[test]
    fn identity_access() {
        let a = AffineAccess::identity(3);
        let i = IVec::from_slice(&[4, -1, 7]);
        assert_eq!(a.eval(&i).unwrap(), i);
        assert!(a.is_nonsingular());
    }

    #[test]
    fn shape_mismatch_rejected() {
        let err = AffineAccess::new(IMat::identity(2), IVec::zeros(3));
        assert!(err.is_err());
    }

    #[test]
    fn nonsingularity() {
        // Rank-deficient access (both subscripts i1+i2).
        let a = AffineAccess::new(
            IMat::from_rows(&[vec![1, 1], vec![1, 1]]).unwrap(),
            IVec::zeros(2),
        )
        .unwrap();
        assert!(!a.is_nonsingular());
        // Rectangular access (1-D array in a 2-deep loop).
        let b = AffineAccess::new(
            IMat::from_rows(&[vec![1], vec![2]]).unwrap(),
            IVec::zeros(1),
        )
        .unwrap();
        assert!(!b.is_nonsingular());
    }
}
