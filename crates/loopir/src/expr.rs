//! Scalar expressions for loop bodies.
//!
//! Bodies compute over `i64` arrays with wrapping arithmetic — the
//! executor's job is to witness *ordering* (dependences), not numerics, and
//! wrapping keeps sequential and parallel runs bit-identical even under
//! adversarial workloads.

use crate::access::ArrayId;
use crate::stmt::ArrayRef;
use std::fmt;

/// A scalar integer expression over loop indices and array reads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Const(i64),
    /// Loop index `i_k` (0-based level).
    Index(usize),
    /// Array element read.
    Read(ArrayRef),
    /// Sum.
    Add(Box<Expr>, Box<Expr>),
    /// Difference.
    Sub(Box<Expr>, Box<Expr>),
    /// Product.
    Mul(Box<Expr>, Box<Expr>),
    /// Negation.
    Neg(Box<Expr>),
}

impl Expr {
    /// Convenience constructor: `a + b`.
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Add(Box::new(a), Box::new(b))
    }

    /// Convenience constructor: `a - b`.
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Sub(Box::new(a), Box::new(b))
    }

    /// Convenience constructor: `a * b`.
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Mul(Box::new(a), Box::new(b))
    }

    /// Collect every array read in evaluation order.
    pub fn reads<'a>(&'a self, out: &mut Vec<&'a ArrayRef>) {
        match self {
            Expr::Const(_) | Expr::Index(_) => {}
            Expr::Read(r) => out.push(r),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
                a.reads(out);
                b.reads(out);
            }
            Expr::Neg(a) => a.reads(out),
        }
    }

    /// Does the expression read the given array anywhere?
    pub fn reads_array(&self, id: ArrayId) -> bool {
        let mut v = Vec::new();
        self.reads(&mut v);
        v.iter().any(|r| r.array == id)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Index(k) => write!(f, "i{}", k + 1),
            Expr::Read(r) => write!(f, "{r}"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::Neg(a) => write!(f, "(-{a})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::AffineAccess;
    use pdm_matrix::mat::IMat;
    use pdm_matrix::vec::IVec;

    fn aref(id: usize) -> ArrayRef {
        ArrayRef {
            array: ArrayId(id),
            access: AffineAccess::new(IMat::identity(1), IVec::zeros(1)).unwrap(),
        }
    }

    #[test]
    fn reads_collection() {
        let e = Expr::add(
            Expr::Read(aref(0)),
            Expr::mul(Expr::Read(aref(1)), Expr::Const(2)),
        );
        let mut v = Vec::new();
        e.reads(&mut v);
        assert_eq!(v.len(), 2);
        assert!(e.reads_array(ArrayId(0)));
        assert!(e.reads_array(ArrayId(1)));
        assert!(!e.reads_array(ArrayId(2)));
    }

    #[test]
    fn display_nested() {
        let e = Expr::sub(Expr::Index(0), Expr::Neg(Box::new(Expr::Const(3))));
        let s = e.to_string();
        assert!(s.contains("i1"));
        assert!(s.contains('3'));
    }
}
