//! Imperfect loop nests: statements *between* loop levels.
//!
//! The paper's machinery (and this workspace's [`crate::nest::LoopNest`])
//! assumes a **perfect** nest — every statement lives in the innermost
//! loop. Real wavefront, initialization, and reduction-epilogue loops are
//! imperfect: each level may run statements before its inner loop starts
//! (`pre`) and after it finishes (`post`). [`ImperfectNest`] is that
//! shape:
//!
//! ```text
//! for i1 = l1..=u1 {
//!   pre[0] …                 // depth-1 statements
//!   for i2 = l2..=u2 {
//!     pre[1] …               // depth-2 statements
//!     for i3 … {
//!       body …               // innermost statements
//!     }
//!     post[1] …
//!   }
//!   post[0] …
//! }
//! ```
//!
//! The type is an IR, not an analysis target: [`crate::normalize`]
//! lowers it to a sequence of perfect kernels (by code sinking with
//! guards and/or loop fission) that the existing planner handles
//! unchanged.
//!
//! **Representation invariant:** every statement — at any level — stores
//! its accesses, guards, and index reads at the **full nest depth** `n`,
//! with structurally-zero coefficients for levels deeper than its own.
//! That makes sinking a statement a pure guard edit and lets the
//! [`ImperfectNest::hull`] nest reuse all perfect-nest machinery
//! (footprints, ranges) without re-shaping accesses; only kernel
//! extraction truncates.
//!
//! Imperfect nests are concrete-only (no symbolic parameters): the
//! template/instantiate flow of PR 4 stays a perfect-nest feature, and
//! normalization needs integer bound reasoning anyway.

use crate::expr::Expr;
use crate::nest::{ArrayDecl, LoopNest};
use crate::stmt::Statement;
use crate::{IrError, Result};
use pdm_poly::expr::AffineExpr;

/// Where a statement sits in the imperfect structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StmtPosition {
    /// In level `k`'s body, before loop `k + 1` (`k < depth − 1`).
    Pre(usize),
    /// In the innermost loop.
    Body,
    /// In level `k`'s body, after loop `k + 1` (`k < depth − 1`).
    Post(usize),
}

impl StmtPosition {
    /// The loop level whose body hosts the statement (0-based); its
    /// statements may read indices `0..=level`.
    pub fn level(&self, depth: usize) -> usize {
        match self {
            StmtPosition::Pre(k) | StmtPosition::Post(k) => *k,
            StmtPosition::Body => depth - 1,
        }
    }
}

/// An `n`-fold loop nest that may carry statements between levels.
///
/// Bounds follow the perfect-nest rules (level `k`'s bounds are affine in
/// strictly-outer indices, inclusive); see the [module docs](self) for
/// the statement representation invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImperfectNest {
    index_names: Vec<String>,
    lower: Vec<AffineExpr>,
    upper: Vec<AffineExpr>,
    arrays: Vec<ArrayDecl>,
    /// `pre[k]` runs inside loop `k` before loop `k + 1` (length `n − 1`).
    pre: Vec<Vec<Statement>>,
    /// `post[k]` runs inside loop `k` after loop `k + 1` (length `n − 1`).
    post: Vec<Vec<Statement>>,
    /// Innermost statements.
    body: Vec<Statement>,
}

/// Highest loop level a statement reads, through subscript coefficients,
/// `Expr::Index` nodes, and guards (`None` when it reads no index at all).
pub(crate) fn stmt_max_level(stmt: &Statement) -> Option<usize> {
    let mut max: Option<usize> = None;
    let mut bump = |k: usize| max = Some(max.map_or(k, |m: usize| m.max(k)));
    for (_, r) in stmt.accesses() {
        for k in 0..r.access.depth() {
            if (0..r.access.dims()).any(|d| r.access.matrix.get(k, d) != 0) {
                bump(k);
            }
        }
    }
    fn expr_levels(e: &Expr, bump: &mut impl FnMut(usize)) {
        match e {
            Expr::Const(_) => {}
            Expr::Index(k) => bump(*k),
            Expr::Read(_) => {} // handled via accesses()
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
                expr_levels(a, bump);
                expr_levels(b, bump);
            }
            Expr::Neg(a) => expr_levels(a, bump),
        }
    }
    expr_levels(&stmt.rhs, &mut bump);
    for g in &stmt.guards {
        bump(g.index);
        for k in 0..g.value.dim() {
            if g.value.coeff(k) != 0 {
                bump(k);
            }
        }
    }
    max
}

impl ImperfectNest {
    /// Build an imperfect nest, validating bounds, statement levels, and
    /// array consistency. `pre`/`post` must have length `depth − 1`.
    pub fn new(
        index_names: Vec<String>,
        lower: Vec<AffineExpr>,
        upper: Vec<AffineExpr>,
        arrays: Vec<ArrayDecl>,
        pre: Vec<Vec<Statement>>,
        post: Vec<Vec<Statement>>,
        body: Vec<Statement>,
    ) -> Result<Self> {
        let n = index_names.len();
        if n == 0 {
            return Err(IrError::Invalid("loop nest must have depth >= 1".into()));
        }
        if pre.len() != n - 1 || post.len() != n - 1 {
            return Err(IrError::Invalid(format!(
                "expected {} pre/post levels, got {} pre / {} post",
                n - 1,
                pre.len(),
                post.len()
            )));
        }
        let nest = ImperfectNest {
            index_names,
            lower,
            upper,
            arrays,
            pre,
            post,
            body,
        };
        // Bounds, array arity, access depth, and guard shape: delegate to
        // the perfect-nest validator over the flattened statement list.
        let hull = nest.hull()?;
        // Level discipline: a statement hosted at level k may read
        // indices 0..=k only.
        for (pos, stmt) in nest.statements() {
            let level = pos.level(nest.depth());
            if let Some(used) = stmt_max_level(stmt) {
                if used > level {
                    return Err(IrError::Invalid(format!(
                        "statement at {pos:?} (level {level}) reads index i{}",
                        used + 1
                    )));
                }
            }
        }
        drop(hull);
        Ok(nest)
    }

    /// View a perfect nest as the trivial imperfect nest (empty pre/post).
    pub fn from_perfect(nest: &LoopNest) -> Result<ImperfectNest> {
        if nest.is_symbolic() {
            return Err(IrError::UnboundParameter {
                name: nest.param_names()[0].clone(),
            });
        }
        let n = nest.depth();
        ImperfectNest::new(
            nest.index_names().to_vec(),
            (0..n).map(|k| nest.lower(k).clone()).collect(),
            (0..n).map(|k| nest.upper(k).clone()).collect(),
            nest.arrays().to_vec(),
            vec![Vec::new(); n - 1],
            vec![Vec::new(); n - 1],
            nest.body().to_vec(),
        )
    }

    /// Loop depth `n`.
    pub fn depth(&self) -> usize {
        self.index_names.len()
    }

    /// Index variable names, outermost first.
    pub fn index_names(&self) -> &[String] {
        &self.index_names
    }

    /// Lower bound expression of level `k`.
    pub fn lower(&self, k: usize) -> &AffineExpr {
        &self.lower[k]
    }

    /// Upper bound expression of level `k` (inclusive).
    pub fn upper(&self, k: usize) -> &AffineExpr {
        &self.upper[k]
    }

    /// Declared arrays.
    pub fn arrays(&self) -> &[ArrayDecl] {
        &self.arrays
    }

    /// Statements of level `k` before loop `k + 1`.
    pub fn pre(&self, k: usize) -> &[Statement] {
        &self.pre[k]
    }

    /// Statements of level `k` after loop `k + 1`.
    pub fn post(&self, k: usize) -> &[Statement] {
        &self.post[k]
    }

    /// Innermost statements.
    pub fn body(&self) -> &[Statement] {
        &self.body
    }

    /// Is the nest already perfect (no between-level statements)?
    pub fn is_perfect(&self) -> bool {
        self.pre.iter().all(Vec::is_empty) && self.post.iter().all(Vec::is_empty)
    }

    /// Every statement in source (top-to-bottom) order with its position:
    /// `pre[0] … pre[n−2], body, post[n−2] … post[0]`. Source order is
    /// also first-encounter execution order, which is what the
    /// conservative inter-kernel dependence edges are anchored to.
    pub fn statements(&self) -> Vec<(StmtPosition, &Statement)> {
        let mut out = Vec::new();
        for (k, stmts) in self.pre.iter().enumerate() {
            out.extend(stmts.iter().map(|s| (StmtPosition::Pre(k), s)));
        }
        out.extend(self.body.iter().map(|s| (StmtPosition::Body, s)));
        for (k, stmts) in self.post.iter().enumerate().rev() {
            out.extend(stmts.iter().map(|s| (StmtPosition::Post(k), s)));
        }
        out
    }

    /// The **hull**: a perfect nest with the same bounds and arrays whose
    /// body is every statement of the imperfect nest (in source order).
    /// Not semantically equivalent — between-level statements would run
    /// once per innermost iteration — but exactly right for footprint
    /// sizing (`Memory`), global index ranges, and shape validation,
    /// because it executes a superset of the real accesses.
    pub fn hull(&self) -> Result<LoopNest> {
        LoopNest::new(
            self.index_names.clone(),
            self.lower.clone(),
            self.upper.clone(),
            self.arrays.clone(),
            self.statements()
                .into_iter()
                .map(|(_, s)| s.clone())
                .collect(),
        )
    }

    /// Total number of statements across all positions.
    pub fn stmt_count(&self) -> usize {
        self.pre.iter().map(Vec::len).sum::<usize>()
            + self.post.iter().map(Vec::len).sum::<usize>()
            + self.body.len()
    }

    /// Clone with mutable access to the structure lists — used by the
    /// normalization pass, which sinks by moving statements between
    /// levels. Exposed as a tuple to keep the invariant-checking
    /// constructor the only public way to build one from scratch.
    pub(crate) fn into_parts(
        self,
    ) -> (
        Vec<String>,
        Vec<AffineExpr>,
        Vec<AffineExpr>,
        Vec<ArrayDecl>,
        Vec<Vec<Statement>>,
        Vec<Vec<Statement>>,
        Vec<Statement>,
    ) {
        (
            self.index_names,
            self.lower,
            self.upper,
            self.arrays,
            self.pre,
            self.post,
            self.body,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_imperfect;

    #[test]
    fn from_perfect_roundtrip() {
        let nest = crate::parse::parse_loop("for i = 0..=4 { for j = 0..=4 { A[i, j] = i + j; } }")
            .unwrap();
        let imp = ImperfectNest::from_perfect(&nest).unwrap();
        assert!(imp.is_perfect());
        assert_eq!(imp.depth(), 2);
        assert_eq!(imp.hull().unwrap(), nest);
    }

    #[test]
    fn level_discipline_enforced() {
        // A pre-statement at level 0 reading index j (level 1) is invalid.
        let err = parse_imperfect("for i = 0..=4 { A[j, 0] = 1; for j = 0..=4 { A[i, j] = 2; } }");
        assert!(err.is_err());
    }

    #[test]
    fn statements_in_source_order() {
        let imp = parse_imperfect(
            "for i = 0..=4 {
               A[i, 0] = 1;
               for j = 0..=4 { A[i, j] = 2; }
               A[i, 4] = 3;
             }",
        )
        .unwrap();
        assert!(!imp.is_perfect());
        let ordered: Vec<StmtPosition> = imp.statements().iter().map(|(p, _)| *p).collect();
        assert_eq!(
            ordered,
            vec![
                StmtPosition::Pre(0),
                StmtPosition::Body,
                StmtPosition::Post(0)
            ]
        );
        assert_eq!(imp.stmt_count(), 3);
    }
}
