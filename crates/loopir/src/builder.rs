//! Programmatic construction of loop nests.
//!
//! The text DSL ([`crate::parse`]) is the usual front door; the builder is
//! for tests, benchmarks and generated workloads that assemble nests from
//! matrices directly.

use crate::access::{AffineAccess, ArrayId};
use crate::expr::Expr;
use crate::nest::{ArrayDecl, LoopNest};
use crate::stmt::{ArrayRef, Statement};
use crate::{IrError, Result};
use pdm_matrix::mat::IMat;
use pdm_matrix::vec::IVec;
use pdm_poly::expr::AffineExpr;

/// Fluent builder for [`LoopNest`].
#[derive(Debug, Clone)]
pub struct NestBuilder {
    names: Vec<String>,
    lower: Vec<AffineExpr>,
    upper: Vec<AffineExpr>,
    arrays: Vec<ArrayDecl>,
    body: Vec<Statement>,
}

impl NestBuilder {
    /// Start a nest with the given index names (outermost first); bounds
    /// default to `0..=0`.
    pub fn new(names: &[&str]) -> Self {
        let n = names.len();
        NestBuilder {
            names: names.iter().map(|s| s.to_string()).collect(),
            lower: vec![AffineExpr::constant(n, 0); n],
            upper: vec![AffineExpr::constant(n, 0); n],
            arrays: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Set constant bounds `lo..=hi` for level `k`.
    pub fn bounds_const(mut self, k: usize, lo: i64, hi: i64) -> Self {
        let n = self.names.len();
        self.lower[k] = AffineExpr::constant(n, lo);
        self.upper[k] = AffineExpr::constant(n, hi);
        self
    }

    /// Set affine bounds for level `k`.
    pub fn bounds_expr(mut self, k: usize, lo: AffineExpr, hi: AffineExpr) -> Self {
        self.lower[k] = lo;
        self.upper[k] = hi;
        self
    }

    /// Declare an array.
    pub fn array(mut self, name: &str, dims: usize) -> Self {
        self.arrays.push(ArrayDecl {
            name: name.to_string(),
            dims,
        });
        self
    }

    /// Build an [`ArrayRef`] for a declared array from
    /// `(row-coefficients, offset)` per subscript: subscript `j` is
    /// `coeffs·i + offset`.
    pub fn aref(&self, name: &str, subs: &[(Vec<i64>, i64)]) -> Result<ArrayRef> {
        let id = self
            .arrays
            .iter()
            .position(|a| a.name == name)
            .ok_or_else(|| IrError::Invalid(format!("unknown array {name}")))?;
        let n = self.names.len();
        let m = subs.len();
        let mut mat = IMat::zeros(n, m);
        let mut off = IVec::zeros(m);
        for (j, (coeffs, b)) in subs.iter().enumerate() {
            if coeffs.len() != n {
                return Err(IrError::Invalid(format!(
                    "subscript {j} of {name} has {} coefficients, depth is {n}",
                    coeffs.len()
                )));
            }
            for (k, &c) in coeffs.iter().enumerate() {
                mat.set(k, j, c);
            }
            off[j] = *b;
        }
        Ok(ArrayRef {
            array: ArrayId(id),
            access: AffineAccess::new(mat, off)?,
        })
    }

    /// Append a raw statement.
    pub fn stmt(mut self, lhs: ArrayRef, rhs: Expr) -> Self {
        self.body.push(Statement::new(lhs, rhs));
        self
    }

    /// Append `lhs_array[lhs_subs] = sum(reads) + 1;` — the common shape
    /// for dependence-focused tests.
    pub fn stmt_simple(
        mut self,
        lhs_array: &str,
        lhs_subs: &[(Vec<i64>, i64)],
        reads: &[(&str, Vec<(Vec<i64>, i64)>)],
    ) -> Self {
        let lhs = self
            .aref(lhs_array, lhs_subs)
            .expect("stmt_simple: bad lhs");
        let mut rhs = Expr::Const(1);
        for (name, subs) in reads {
            let r = self.aref(name, subs).expect("stmt_simple: bad read");
            rhs = Expr::add(rhs, Expr::Read(r));
        }
        self.body.push(Statement::new(lhs, rhs));
        self
    }

    /// Finish, running full validation.
    pub fn build(self) -> Result<LoopNest> {
        LoopNest::new(self.names, self.lower, self.upper, self.arrays, self.body)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_valid_nest() {
        let b = NestBuilder::new(&["i", "j"])
            .bounds_const(0, 0, 3)
            .bounds_const(1, 1, 2)
            .array("A", 2);
        let lhs = b.aref("A", &[(vec![1, 0], 0), (vec![0, 1], 0)]).unwrap();
        let nest = b.stmt(lhs, Expr::Const(7)).build().unwrap();
        assert_eq!(nest.depth(), 2);
        assert_eq!(nest.iterations().unwrap().len(), 8);
    }

    #[test]
    fn unknown_array_rejected() {
        let b = NestBuilder::new(&["i"]);
        assert!(b.aref("Z", &[(vec![1], 0)]).is_err());
    }

    #[test]
    fn wrong_coeff_count_rejected() {
        let b = NestBuilder::new(&["i", "j"]).array("A", 1);
        assert!(b.aref("A", &[(vec![1], 0)]).is_err());
    }

    #[test]
    fn stmt_simple_reads() {
        let nest = NestBuilder::new(&["i"])
            .bounds_const(0, 0, 9)
            .array("A", 1)
            .stmt_simple("A", &[(vec![2], 0)], &[("A", vec![(vec![1], 0)])])
            .build()
            .unwrap();
        assert_eq!(nest.body().len(), 1);
        let accs = nest.accesses();
        assert_eq!(accs.len(), 2);
    }
}
