//! Deterministic random loop-nest generation for fuzzing and benchmarks.
//!
//! Produces valid affine nests of configurable depth/size without a
//! dependency on external RNG crates (xorshift64*), so the same seed
//! reproduces the same nest in every crate that consumes this module.

use crate::access::{AffineAccess, ArrayId};
use crate::builder::NestBuilder;
use crate::expr::Expr;
use crate::imperfect::ImperfectNest;
use crate::nest::{ArrayDecl, LoopNest};
use crate::stmt::{ArrayRef, Statement};
use crate::Result;
use pdm_matrix::mat::IMat;
use pdm_matrix::vec::IVec;
use pdm_poly::expr::AffineExpr;

/// Configuration for the generator.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Loop depth.
    pub depth: usize,
    /// Inclusive upper bound of each (0-based) loop.
    pub extent: i64,
    /// Max |coefficient| in subscripts.
    pub coeff: i64,
    /// Max |offset| in subscripts.
    pub offset: i64,
    /// Number of statements.
    pub stmts: usize,
    /// Number of distinct arrays.
    pub arrays: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            depth: 2,
            extent: 9,
            coeff: 3,
            offset: 4,
            stmts: 1,
            arrays: 1,
        }
    }
}

/// A tiny deterministic RNG (xorshift64*).
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Seeded constructor; zero seeds are nudged.
    pub fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }
    /// Next raw value.
    pub fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545F4914F6CDD1D)
    }
    /// Uniform in `[-m, m]`.
    pub fn pm(&mut self, m: i64) -> i64 {
        (self.next() % (2 * m as u64 + 1)) as i64 - m
    }
    /// Uniform in `[0, m)`.
    pub fn below(&mut self, m: usize) -> usize {
        (self.next() % m as u64) as usize
    }
}

/// Generate a random valid nest. Every statement writes one array and
/// reads another (possibly the same), with random affine subscripts.
pub fn random_nest(seed: u64, cfg: &GenConfig) -> Result<LoopNest> {
    let mut rng = Rng::new(seed);
    let names: Vec<String> = (1..=cfg.depth).map(|k| format!("i{k}")).collect();
    let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
    let mut b = NestBuilder::new(&name_refs);
    for k in 0..cfg.depth {
        b = b.bounds_const(k, 0, cfg.extent);
    }
    // Arrays all have `depth` subscripts so random matrices always fit.
    for a in 0..cfg.arrays {
        b = b.array(&format!("A{a}"), cfg.depth);
    }
    let subs = |rng: &mut Rng| -> Vec<(Vec<i64>, i64)> {
        (0..cfg.depth)
            .map(|_| {
                (
                    (0..cfg.depth).map(|_| rng.pm(cfg.coeff)).collect(),
                    rng.pm(cfg.offset),
                )
            })
            .collect()
    };
    for _ in 0..cfg.stmts {
        let w_arr = format!("A{}", rng.below(cfg.arrays));
        let r_arr = format!("A{}", rng.below(cfg.arrays));
        let lhs = b.aref(&w_arr, &subs(&mut rng))?;
        let read = b.aref(&r_arr, &subs(&mut rng))?;
        b = b.stmt(lhs, Expr::add(Expr::Read(read), Expr::Const(1)));
    }
    b.build()
}

/// Generate a random **symbolic** nest: same body/array generation as
/// [`random_nest`] (subscripts are always parameter-free), but the bounds
/// mix concrete constants, triangular outer-index forms, and the named
/// parameters — the outermost upper bound always carries a parameter so
/// every shape is genuinely size-parametric. Lower the result per size
/// with [`LoopNest::substitute`]; small or negative valuations produce
/// empty (sub)spaces on purpose, exercising the degenerate paths.
pub fn random_symbolic_nest(seed: u64, cfg: &GenConfig, params: &[&str]) -> Result<LoopNest> {
    assert!(!params.is_empty(), "need at least one parameter name");
    let concrete = random_nest(seed, cfg)?;
    let mut rng = Rng::new(seed ^ 0x9E37_79B9_7F4A_7C15);
    let n = cfg.depth;
    let p = params.len();
    let width = n + p;
    let mut lower = Vec::with_capacity(n);
    let mut upper = Vec::with_capacity(n);
    for k in 0..n {
        lower.push(AffineExpr::constant(width, rng.below(2) as i64));
        let mut coeffs = IVec::zeros(width);
        let constant;
        let form = if k == 0 { 0 } else { rng.below(4) };
        match form {
            0 => {
                // N + c: parametric extent.
                coeffs[n + rng.below(p)] = 1;
                constant = rng.pm(2);
            }
            1 => {
                // Concrete extent.
                constant = cfg.extent.max(1);
            }
            2 => {
                // Triangular: outer index + c.
                coeffs[rng.below(k)] = 1;
                constant = rng.below(3) as i64;
            }
            _ => {
                // Anti-triangular parametric: N - outer index + c.
                coeffs[rng.below(k)] = -1;
                coeffs[n + rng.below(p)] = 1;
                constant = rng.below(2) as i64;
            }
        }
        upper.push(AffineExpr::new(coeffs, constant));
    }
    LoopNest::new_symbolic(
        concrete.index_names().to_vec(),
        params.iter().map(|s| s.to_string()).collect(),
        lower,
        upper,
        concrete.arrays().to_vec(),
        concrete.body().to_vec(),
    )
}

/// Generate a random nest with **parametric subscripts**: concrete
/// rectangular bounds, but subscripts mix index terms with `c·p` terms
/// over the named parameters — the inspector/executor shapes. Static
/// planning sees only the parameter-free hull `(A, b)`; the runtime
/// inspector audits each concrete valuation
/// ([`LoopNest::substitute`] folds the parameter terms into offsets).
/// At least one access per nest is genuinely parametric.
pub fn random_inspector_nest(seed: u64, cfg: &GenConfig, params: &[&str]) -> Result<LoopNest> {
    assert!(!params.is_empty(), "need at least one parameter name");
    let mut rng = Rng::new(seed ^ 0x5851_F42D_4C95_7F2D);
    let n = cfg.depth;
    let p = params.len();
    let width = n + p;
    let names: Vec<String> = (1..=n).map(|k| format!("i{k}")).collect();
    let lower = vec![AffineExpr::constant(width, 0); n];
    let upper = vec![AffineExpr::constant(width, cfg.extent.max(1)); n];
    let arrays: Vec<ArrayDecl> = (0..cfg.arrays.max(1))
        .map(|a| ArrayDecl {
            name: format!("A{a}"),
            dims: n,
        })
        .collect();
    let aref = |rng: &mut Rng, parametric: bool| -> Result<ArrayRef> {
        let array = ArrayId(rng.below(arrays.len()));
        let mut mat = IMat::zeros(n, n);
        let mut par = IMat::zeros(p, n);
        let mut off = IVec::zeros(n);
        for d in 0..n {
            for k in 0..n {
                mat.set(k, d, rng.pm(cfg.coeff));
            }
            if parametric {
                // Small parameter coefficients keep the touched region
                // near the hull for moderate valuations; zeros are fine,
                // a nonzero entry is forced below.
                for k in 0..p {
                    par.set(k, d, rng.pm(1));
                }
            }
            off[d] = rng.pm(cfg.offset);
        }
        if parametric {
            let zero = (0..p).all(|k| (0..n).all(|d| par.get(k, d) == 0));
            if zero {
                par.set(
                    rng.below(p),
                    rng.below(n),
                    if rng.below(2) == 0 { 1 } else { -1 },
                );
            }
        }
        Ok(ArrayRef {
            array,
            access: AffineAccess::with_params(mat, par, off)?,
        })
    };
    let mut body = Vec::new();
    for s in 0..cfg.stmts.max(1) {
        let lhs_parametric = s == 0 || rng.below(2) == 0;
        let lhs = aref(&mut rng, lhs_parametric)?;
        let read_parametric = rng.below(2) == 0;
        let read = aref(&mut rng, read_parametric)?;
        body.push(Statement::new(
            lhs,
            Expr::add(Expr::Read(read), Expr::Const(1)),
        ));
    }
    LoopNest::new_symbolic(
        names,
        params.iter().map(|s| s.to_string()).collect(),
        lower,
        upper,
        arrays,
        body,
    )
}

/// Generate a random **imperfect** nest: a perfect random body (as in
/// [`random_nest`]) plus `between` statements placed at random levels
/// before or after the nested loop, each restricted to its level's
/// visible indices. Bounds mix constant and triangular (outer-index)
/// uppers, with lower bounds of 0 — every inner loop is non-empty by
/// construction, so the code-sinking fallback of
/// [`crate::normalize::to_perfect_kernels`] always applies and the
/// generator never produces an unnormalizable nest.
pub fn random_imperfect_nest(seed: u64, cfg: &GenConfig, between: usize) -> Result<ImperfectNest> {
    let mut rng = Rng::new(seed ^ 0xABCD_1234_5678_9EF1);
    let n = cfg.depth.max(2);
    let names: Vec<String> = (1..=n).map(|k| format!("i{k}")).collect();
    let lower = vec![AffineExpr::constant(n, 0); n];
    let mut upper = Vec::with_capacity(n);
    for k in 0..n {
        let triangular = k > 0 && rng.below(3) == 2;
        if triangular {
            // upper = i_outer + c with c ≥ 0: non-empty since lower = 0
            // and every outer level is itself non-negative.
            let mut c = IVec::zeros(n);
            c[rng.below(k)] = 1;
            upper.push(AffineExpr::new(c, rng.below(3) as i64));
        } else {
            upper.push(AffineExpr::constant(n, cfg.extent.max(1)));
        }
    }
    let arrays: Vec<ArrayDecl> = (0..cfg.arrays.max(1))
        .map(|a| ArrayDecl {
            name: format!("A{a}"),
            dims: n,
        })
        .collect();
    // A random access whose subscripts read indices 0..=level only.
    let aref = |rng: &mut Rng, level: usize| -> Result<ArrayRef> {
        let array = ArrayId(rng.below(arrays.len()));
        let mut mat = IMat::zeros(n, n);
        let mut off = IVec::zeros(n);
        for d in 0..n {
            for k in 0..=level {
                mat.set(k, d, rng.pm(cfg.coeff));
            }
            off[d] = rng.pm(cfg.offset);
        }
        Ok(ArrayRef {
            array,
            access: AffineAccess::new(mat, off)?,
        })
    };
    let stmt = |rng: &mut Rng, level: usize| -> Result<Statement> {
        let lhs = aref(rng, level)?;
        let read = aref(rng, level)?;
        Ok(Statement::new(
            lhs,
            Expr::add(Expr::Read(read), Expr::Const(1)),
        ))
    };
    let mut body = Vec::new();
    for _ in 0..cfg.stmts.max(1) {
        body.push(stmt(&mut rng, n - 1)?);
    }
    let mut pre = vec![Vec::new(); n - 1];
    let mut post = vec![Vec::new(); n - 1];
    for _ in 0..between {
        let level = rng.below(n - 1);
        let s = stmt(&mut rng, level)?;
        if rng.below(2) == 0 {
            pre[level].push(s);
        } else {
            post[level].push(s);
        }
    }
    ImperfectNest::new(names, lower, upper, arrays, pre, post, body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let cfg = GenConfig::default();
        let a = random_nest(42, &cfg).unwrap();
        let b = random_nest(42, &cfg).unwrap();
        assert_eq!(a, b);
        let c = random_nest(43, &cfg).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn generated_nests_are_valid() {
        for seed in 0..50 {
            let cfg = GenConfig {
                depth: 1 + (seed as usize % 3),
                stmts: 1 + (seed as usize % 2),
                arrays: 1 + (seed as usize % 2),
                ..GenConfig::default()
            };
            let nest = random_nest(seed, &cfg).unwrap();
            assert_eq!(nest.depth(), cfg.depth);
            assert!(!nest.iterations().unwrap().is_empty());
        }
    }

    #[test]
    fn symbolic_generator_is_deterministic_and_parametric() {
        let cfg = GenConfig {
            depth: 3,
            ..GenConfig::default()
        };
        let a = random_symbolic_nest(9, &cfg, &["N", "M"]).unwrap();
        let b = random_symbolic_nest(9, &cfg, &["N", "M"]).unwrap();
        assert_eq!(a, b);
        assert!(a.is_symbolic());
        // The outermost upper bound always reads a parameter.
        assert!((0..2).any(|j| a.upper(0).coeff(3 + j) != 0));
        // Substitution yields a valid concrete nest (possibly empty).
        let conc = a.substitute(&[("N", 5), ("M", 4)]).unwrap();
        assert!(!conc.is_symbolic());
        conc.iterations().unwrap();
    }

    #[test]
    fn inspector_generator_is_deterministic_and_parametric() {
        for seed in 0..30 {
            let cfg = GenConfig {
                depth: 1 + (seed as usize % 2),
                extent: 6,
                ..GenConfig::default()
            };
            let a = random_inspector_nest(seed, &cfg, &["N"]).unwrap();
            let b = random_inspector_nest(seed, &cfg, &["N"]).unwrap();
            assert_eq!(a, b);
            assert!(a.has_parametric_accesses(), "seed {seed} not parametric");
            // Bounds are concrete even though the nest is symbolic.
            for k in 0..a.depth() {
                assert!(a.lower(k).is_constant() && a.upper(k).is_constant());
            }
            // Substitution folds parameters into offsets and executes.
            let conc = a.substitute(&[("N", 2)]).unwrap();
            assert!(!conc.has_parametric_accesses());
            assert!(!conc.iterations().unwrap().is_empty());
        }
    }

    #[test]
    fn imperfect_generator_is_deterministic_and_valid() {
        for seed in 0..30 {
            let cfg = GenConfig {
                depth: 2 + (seed as usize % 2),
                extent: 4,
                ..GenConfig::default()
            };
            let a = random_imperfect_nest(seed, &cfg, 1 + (seed as usize % 3)).unwrap();
            let b = random_imperfect_nest(seed, &cfg, 1 + (seed as usize % 3)).unwrap();
            assert_eq!(a, b);
            assert!(
                !a.is_perfect(),
                "seed {seed} generated no between-level stmts"
            );
            // The hull must be a valid perfect nest with iterations.
            assert!(!a.hull().unwrap().iterations().unwrap().is_empty());
        }
    }

    #[test]
    fn rng_ranges() {
        let mut rng = Rng::new(7);
        for _ in 0..1000 {
            let v = rng.pm(3);
            assert!((-3..=3).contains(&v));
            assert!(rng.below(5) < 5);
        }
    }
}
