//! The perfect loop nest (the paper's eq. 2.1).

use crate::access::ArrayId;
use crate::stmt::{AccessKind, ArrayRef, Statement};
use crate::{IrError, Result};
use pdm_matrix::vec::IVec;
use pdm_poly::bounds::LoopBounds;
use pdm_poly::expr::AffineExpr;
use pdm_poly::system::System;

/// Declaration of an array used by the nest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Source-level name.
    pub name: String,
    /// Dimensionality.
    pub dims: usize,
}

/// An `n`-fold perfectly nested loop.
///
/// Loop `k` runs from `lower[k]` to `upper[k]` **inclusive**, both affine
/// expressions over the *outer* indices `i_0 … i_{k−1}` (the paper's
/// `l_j, u_j` integer functions of outer indices; integer-constant bounds
/// are the common special case). The body is a sequence of assignments
/// executed for every iteration in lexicographic order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopNest {
    index_names: Vec<String>,
    lower: Vec<AffineExpr>,
    upper: Vec<AffineExpr>,
    arrays: Vec<ArrayDecl>,
    body: Vec<Statement>,
}

impl LoopNest {
    /// Build a nest, validating every shape constraint.
    pub fn new(
        index_names: Vec<String>,
        lower: Vec<AffineExpr>,
        upper: Vec<AffineExpr>,
        arrays: Vec<ArrayDecl>,
        body: Vec<Statement>,
    ) -> Result<Self> {
        let n = index_names.len();
        if n == 0 {
            return Err(IrError::Invalid("loop nest must have depth >= 1".into()));
        }
        if lower.len() != n || upper.len() != n {
            return Err(IrError::Invalid(format!(
                "expected {n} bounds, got {} lower / {} upper",
                lower.len(),
                upper.len()
            )));
        }
        for (k, b) in lower.iter().chain(upper.iter()).enumerate() {
            let k = k % n;
            if b.dim() != n {
                return Err(IrError::Invalid(format!(
                    "bound of loop {k} has dimension {} != depth {n}",
                    b.dim()
                )));
            }
            // A bound may only mention outer indices.
            for inner in k..n {
                if b.coeff(inner) != 0 {
                    return Err(IrError::Invalid(format!(
                        "bound of loop {k} mentions index i{} (not outer)",
                        inner + 1
                    )));
                }
            }
        }
        let nest = LoopNest {
            index_names,
            lower,
            upper,
            arrays,
            body,
        };
        nest.validate_body()?;
        Ok(nest)
    }

    fn validate_body(&self) -> Result<()> {
        let n = self.depth();
        for (si, stmt) in self.body.iter().enumerate() {
            for (_, r) in stmt.accesses() {
                if r.access.depth() != n {
                    return Err(IrError::Invalid(format!(
                        "statement {si}: access expects depth {}, nest has {n}",
                        r.access.depth()
                    )));
                }
                let Some(decl) = self.arrays.get(r.array.0) else {
                    return Err(IrError::Invalid(format!(
                        "statement {si}: unknown array id {}",
                        r.array.0
                    )));
                };
                if decl.dims != r.access.dims() {
                    return Err(IrError::Invalid(format!(
                        "statement {si}: array {} has {} dims, access uses {}",
                        decl.name,
                        decl.dims,
                        r.access.dims()
                    )));
                }
            }
        }
        Ok(())
    }

    /// Loop depth `n`.
    pub fn depth(&self) -> usize {
        self.index_names.len()
    }

    /// Index variable names, outermost first.
    pub fn index_names(&self) -> &[String] {
        &self.index_names
    }

    /// Lower bound expression of level `k`.
    pub fn lower(&self, k: usize) -> &AffineExpr {
        &self.lower[k]
    }

    /// Upper bound expression of level `k` (inclusive).
    pub fn upper(&self, k: usize) -> &AffineExpr {
        &self.upper[k]
    }

    /// Declared arrays.
    pub fn arrays(&self) -> &[ArrayDecl] {
        &self.arrays
    }

    /// Body statements.
    pub fn body(&self) -> &[Statement] {
        &self.body
    }

    /// Look up an array by source name.
    pub fn array_by_name(&self, name: &str) -> Option<ArrayId> {
        self.arrays.iter().position(|a| a.name == name).map(ArrayId)
    }

    /// The iteration polyhedron `{ i : l_k ≤ i_k ≤ u_k }` as a constraint
    /// system over the `n` indices.
    pub fn iteration_system(&self) -> Result<System> {
        let n = self.depth();
        let mut sys = System::universe(n);
        for k in 0..n {
            // i_k - lower_k >= 0
            let ik = AffineExpr::var(n, k);
            sys.add_ge0(ik.sub(&self.lower[k]).map_err(IrError::Matrix)?)
                .map_err(IrError::Matrix)?;
            // upper_k - i_k >= 0
            sys.add_ge0(self.upper[k].sub(&ik).map_err(IrError::Matrix)?)
                .map_err(IrError::Matrix)?;
        }
        Ok(sys)
    }

    /// Global inclusive `(min, max)` range of every loop variable over the
    /// iteration polyhedron, computed by Fourier–Motzkin projection.
    /// Errors with `Unbounded` when a direction has no finite bound.
    pub fn index_ranges(&self) -> Result<Vec<(i64, i64)>> {
        let n = self.depth();
        let sys = self.iteration_system()?;
        let mut out = Vec::with_capacity(n);
        for k in 0..n {
            let others: Vec<usize> = (0..n).filter(|&v| v != k).collect();
            let proj = others
                .iter()
                .try_fold(sys.clone(), |s, &v| pdm_poly::fm::eliminate(&s, v))
                .map_err(IrError::Matrix)?;
            let mut lo: Option<i64> = None;
            let mut hi: Option<i64> = None;
            for e in proj.constraints() {
                let a = e.coeff(k);
                if a > 0 {
                    let b = pdm_matrix::num::ceil_div(-e.constant, a).map_err(IrError::Matrix)?;
                    lo = Some(lo.map_or(b, |c: i64| c.max(b)));
                } else if a < 0 {
                    let b = pdm_matrix::num::floor_div(e.constant, -a).map_err(IrError::Matrix)?;
                    hi = Some(hi.map_or(b, |c: i64| c.min(b)));
                }
            }
            match (lo, hi) {
                (Some(l), Some(h)) => out.push((l, h)),
                _ => return Err(IrError::Matrix(pdm_matrix::MatrixError::Unbounded)),
            }
        }
        Ok(out)
    }

    /// Enumerate the iteration vectors in lexicographic (execution) order.
    pub fn iterations(&self) -> Result<Vec<IVec>> {
        let sys = self.iteration_system()?;
        let b = LoopBounds::from_system(&sys).map_err(IrError::Matrix)?;
        Ok(b.enumerate()
            .map_err(IrError::Matrix)?
            .into_iter()
            .map(IVec)
            .collect())
    }

    /// Every access of the body, tagged with its statement index and kind.
    pub fn accesses(&self) -> Vec<(usize, AccessKind, &ArrayRef)> {
        let mut out = Vec::new();
        for (si, stmt) in self.body.iter().enumerate() {
            for (kind, r) in stmt.accesses() {
                out.push((si, kind, r));
            }
        }
        out
    }

    /// All ordered reference pairs that can induce a dependence: same
    /// array, at least one of the two is a write. Pairs are returned as
    /// `(from, to)` with their statement indices and kinds; both
    /// orientations of distinct accesses appear once (the analysis decides
    /// direction from the solution's lexicographic sign).
    pub fn dependence_pairs(&self) -> Vec<DependencePair<'_>> {
        let accs = self.accesses();
        let mut out = Vec::new();
        for (a_idx, &(s1, k1, r1)) in accs.iter().enumerate() {
            for &(s2, k2, r2) in accs.iter().skip(a_idx) {
                if r1.array != r2.array {
                    continue;
                }
                if k1 == AccessKind::Read && k2 == AccessKind::Read {
                    continue;
                }
                out.push(DependencePair {
                    stmt_a: s1,
                    kind_a: k1,
                    ref_a: r1,
                    stmt_b: s2,
                    kind_b: k2,
                    ref_b: r2,
                });
            }
        }
        out
    }
}

/// A pair of references that may be dependent (same array, ≥ 1 write).
#[derive(Debug, Clone, Copy)]
pub struct DependencePair<'a> {
    /// Statement index of the first reference.
    pub stmt_a: usize,
    /// Kind of the first reference.
    pub kind_a: AccessKind,
    /// First reference.
    pub ref_a: &'a ArrayRef,
    /// Statement index of the second reference.
    pub stmt_b: usize,
    /// Kind of the second reference.
    pub kind_b: AccessKind,
    /// Second reference.
    pub ref_b: &'a ArrayRef,
}

impl DependencePair<'_> {
    /// Classify: flow (W→R), anti (R→W), output (W→W) — direction resolved
    /// later by the solver; this is the unordered classification.
    pub fn class(&self) -> &'static str {
        match (self.kind_a, self.kind_b) {
            (AccessKind::Write, AccessKind::Write) => "output",
            (AccessKind::Write, AccessKind::Read) => "flow/anti",
            (AccessKind::Read, AccessKind::Write) => "flow/anti",
            (AccessKind::Read, AccessKind::Read) => unreachable!("filtered"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NestBuilder;

    fn paper41() -> LoopNest {
        crate::parse::parse_loop(
            "for i1 = 0..=9 { for i2 = 0..=9 {
               A[i1 + i2, 3*i1 + i2 + 3] = A[i1 + i2 + 1, i1 + 2*i2] + 1;
             } }",
        )
        .unwrap()
    }

    #[test]
    fn depth_and_iterations() {
        let nest = paper41();
        assert_eq!(nest.depth(), 2);
        let its = nest.iterations().unwrap();
        assert_eq!(its.len(), 100);
        assert_eq!(its[0].as_slice(), &[0, 0]);
        assert_eq!(its[99].as_slice(), &[9, 9]);
        // Lexicographic order.
        for w in its.windows(2) {
            assert!(pdm_matrix::lex::lex_cmp(&w[0], &w[1]).is_lt());
        }
    }

    #[test]
    fn dependence_pairs_filter_read_read() {
        let nest = paper41();
        // Accesses: write A, read A => pairs: (W,W) self and (W,R);
        // the (R,R) pair is filtered out.
        let pairs = nest.dependence_pairs();
        assert_eq!(pairs.len(), 2);
        let classes: Vec<_> = pairs.iter().map(|p| p.class()).collect();
        assert!(classes.contains(&"output"));
        assert!(classes.contains(&"flow/anti"));
    }

    #[test]
    fn triangular_bounds_nest() {
        // for i1 = 0..=5 { for i2 = 0..=i1 { ... } }
        let nest = NestBuilder::new(&["i1", "i2"])
            .bounds_const(0, 0, 5)
            .bounds_expr(1, AffineExpr::constant(2, 0), AffineExpr::var(2, 0))
            .array("A", 1)
            .stmt_simple("A", &[(vec![1, 0], 0)], &[("A", vec![(vec![0, 1], 0)])])
            .build()
            .unwrap();
        let its = nest.iterations().unwrap();
        assert_eq!(its.len(), 6 + 5 + 4 + 3 + 2 + 1);
        for it in &its {
            assert!(it[1] <= it[0]);
        }
    }

    #[test]
    fn invalid_nests_rejected() {
        // Bound referencing an inner index.
        let bad = LoopNest::new(
            vec!["i1".into(), "i2".into()],
            vec![AffineExpr::constant(2, 0), AffineExpr::constant(2, 0)],
            vec![AffineExpr::var(2, 1), AffineExpr::constant(2, 3)],
            vec![],
            vec![],
        );
        assert!(bad.is_err());
        // Zero depth.
        assert!(LoopNest::new(vec![], vec![], vec![], vec![], vec![]).is_err());
    }

    #[test]
    fn self_dependence_pair_present() {
        // A single write access must still form a W-W self pair (output
        // dependence candidacy, as the paper's §4.1 uses).
        let nest = crate::parse::parse_loop("for i = 0..=4 { A[2*i] = 1; }").unwrap();
        let pairs = nest.dependence_pairs();
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].class(), "output");
    }
}
