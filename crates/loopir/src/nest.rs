//! The perfect loop nest (the paper's eq. 2.1).

use crate::access::ArrayId;
use crate::stmt::{AccessKind, ArrayRef, Statement};
use crate::{IrError, Result};
use pdm_matrix::vec::IVec;
use pdm_poly::bounds::LoopBounds;
use pdm_poly::expr::AffineExpr;
use pdm_poly::system::System;

/// Declaration of an array used by the nest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Source-level name.
    pub name: String,
    /// Dimensionality.
    pub dims: usize,
}

/// An `n`-fold perfectly nested loop.
///
/// Loop `k` runs from `lower[k]` to `upper[k]` **inclusive**, both affine
/// expressions over the *outer* indices `i_0 … i_{k−1}` (the paper's
/// `l_j, u_j` integer functions of outer indices; integer-constant bounds
/// are the common special case). The body is a sequence of assignments
/// executed for every iteration in lexicographic order.
///
/// # Symbolic bounds
///
/// A nest may additionally carry named **parameters** (`N`, `M`, …): the
/// bound expressions then live over `depth + params` columns — loop
/// indices first, parameters after — and stay symbolic until
/// [`LoopNest::substitute`] folds an integer valuation into the
/// constants. Array **subscripts** may also read parameters (a
/// [`crate::access::AffineAccess`] with nonzero `params` rows): the
/// dependence structure of such a nest varies with problem size, so
/// static planning sees only the parameter-free hull and the runtime
/// inspector must audit each concrete valuation before running a
/// speculative parallel plan ([`LoopNest::has_parametric_accesses`]
/// flags this). Body *expressions* (the values computed, as opposed to
/// the cells addressed) stay parameter-free. Concrete-only APIs reject
/// symbolic nests with [`IrError::UnboundParameter`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopNest {
    index_names: Vec<String>,
    param_names: Vec<String>,
    lower: Vec<AffineExpr>,
    upper: Vec<AffineExpr>,
    arrays: Vec<ArrayDecl>,
    body: Vec<Statement>,
}

impl LoopNest {
    /// Build a concrete (parameter-free) nest, validating every shape
    /// constraint.
    pub fn new(
        index_names: Vec<String>,
        lower: Vec<AffineExpr>,
        upper: Vec<AffineExpr>,
        arrays: Vec<ArrayDecl>,
        body: Vec<Statement>,
    ) -> Result<Self> {
        Self::new_symbolic(index_names, Vec::new(), lower, upper, arrays, body)
    }

    /// Build a nest whose bounds may mention the named parameters (as
    /// trailing columns of the bound expressions), validating every shape
    /// constraint.
    pub fn new_symbolic(
        index_names: Vec<String>,
        param_names: Vec<String>,
        lower: Vec<AffineExpr>,
        upper: Vec<AffineExpr>,
        arrays: Vec<ArrayDecl>,
        body: Vec<Statement>,
    ) -> Result<Self> {
        let n = index_names.len();
        let p = param_names.len();
        if n == 0 {
            return Err(IrError::Invalid("loop nest must have depth >= 1".into()));
        }
        for (j, name) in param_names.iter().enumerate() {
            if index_names.contains(name) {
                return Err(IrError::Invalid(format!(
                    "parameter '{name}' shadows a loop index"
                )));
            }
            if param_names[..j].contains(name) {
                return Err(IrError::Invalid(format!("duplicate parameter '{name}'")));
            }
        }
        if lower.len() != n || upper.len() != n {
            return Err(IrError::Invalid(format!(
                "expected {n} bounds, got {} lower / {} upper",
                lower.len(),
                upper.len()
            )));
        }
        for (k, b) in lower.iter().chain(upper.iter()).enumerate() {
            let k = k % n;
            if b.dim() != n + p {
                return Err(IrError::Invalid(format!(
                    "bound of loop {k} has dimension {} != depth {n} + params {p}",
                    b.dim()
                )));
            }
            // A bound may only mention outer indices (parameter columns
            // `n..n+p` are always allowed).
            for inner in k..n {
                if b.coeff(inner) != 0 {
                    return Err(IrError::Invalid(format!(
                        "bound of loop {k} mentions index i{} (not outer)",
                        inner + 1
                    )));
                }
            }
        }
        let nest = LoopNest {
            index_names,
            param_names,
            lower,
            upper,
            arrays,
            body,
        };
        nest.validate_body()?;
        Ok(nest)
    }

    fn validate_body(&self) -> Result<()> {
        let n = self.depth();
        for (si, stmt) in self.body.iter().enumerate() {
            for g in &stmt.guards {
                if g.index >= n {
                    return Err(IrError::Invalid(format!(
                        "statement {si}: guard on level {} but depth is {n}",
                        g.index
                    )));
                }
                if g.value.dim() != n {
                    return Err(IrError::Invalid(format!(
                        "statement {si}: guard value has dimension {} != depth {n}",
                        g.value.dim()
                    )));
                }
                for inner in g.index..n {
                    if g.value.coeff(inner) != 0 {
                        return Err(IrError::Invalid(format!(
                            "statement {si}: guard on level {} reads index i{} (not outer)",
                            g.index,
                            inner + 1
                        )));
                    }
                }
            }
            for (_, r) in stmt.accesses() {
                if r.access.depth() != n {
                    return Err(IrError::Invalid(format!(
                        "statement {si}: access expects depth {}, nest has {n}",
                        r.access.depth()
                    )));
                }
                let pr = r.access.params.rows();
                if pr != 0 && pr != self.param_names.len() {
                    return Err(IrError::Invalid(format!(
                        "statement {si}: access reads {pr} parameters, nest has {}",
                        self.param_names.len()
                    )));
                }
                let Some(decl) = self.arrays.get(r.array.0) else {
                    return Err(IrError::Invalid(format!(
                        "statement {si}: unknown array id {}",
                        r.array.0
                    )));
                };
                if decl.dims != r.access.dims() {
                    return Err(IrError::Invalid(format!(
                        "statement {si}: array {} has {} dims, access uses {}",
                        decl.name,
                        decl.dims,
                        r.access.dims()
                    )));
                }
            }
        }
        Ok(())
    }

    /// Loop depth `n`.
    pub fn depth(&self) -> usize {
        self.index_names.len()
    }

    /// Index variable names, outermost first.
    pub fn index_names(&self) -> &[String] {
        &self.index_names
    }

    /// Names of the symbolic parameters (empty for concrete nests). A
    /// bound expression's columns are `index_names ++ param_names`.
    pub fn param_names(&self) -> &[String] {
        &self.param_names
    }

    /// Does the nest carry unbound symbolic parameters?
    pub fn is_symbolic(&self) -> bool {
        !self.param_names.is_empty()
    }

    /// Does any array subscript read a symbolic parameter? Such a nest's
    /// dependence structure changes with problem size: static planning
    /// covers only the parameter-free hull, and a plan built from it is
    /// **speculative** — the runtime inspector must certify each
    /// concrete valuation before parallel execution.
    pub fn has_parametric_accesses(&self) -> bool {
        self.body
            .iter()
            .flat_map(|s| s.accesses())
            .any(|(_, r)| r.access.is_parametric())
    }

    /// Error unless the nest is concrete; names the first unbound
    /// parameter otherwise.
    fn require_concrete(&self) -> Result<()> {
        match self.param_names.first() {
            None => Ok(()),
            Some(name) => Err(IrError::UnboundParameter { name: name.clone() }),
        }
    }

    /// Lower bound expression of level `k`.
    pub fn lower(&self, k: usize) -> &AffineExpr {
        &self.lower[k]
    }

    /// Upper bound expression of level `k` (inclusive).
    pub fn upper(&self, k: usize) -> &AffineExpr {
        &self.upper[k]
    }

    /// Fold an integer valuation of every parameter into the bound
    /// constants, yielding the concrete nest the executors run. The
    /// valuation must bind **exactly** the nest's parameters: a missing
    /// parameter is an [`IrError::UnboundParameter`], an unknown name an
    /// [`IrError::Invalid`] (catching typos loudly instead of silently
    /// ignoring a binding). Cheap: one pass over the `2·depth` bound
    /// rows; body and subscripts are shared unchanged unless a subscript
    /// is itself parametric, in which case the body is rebuilt with each
    /// access's parameter terms folded into its offsets.
    pub fn substitute(&self, params: &[(&str, i64)]) -> Result<LoopNest> {
        for (name, _) in params {
            if !self.param_names.iter().any(|p| p == name) {
                return Err(IrError::Invalid(format!(
                    "substitute: '{name}' is not a parameter of this nest"
                )));
            }
        }
        let mut vals = Vec::with_capacity(self.param_names.len());
        for p in &self.param_names {
            match params.iter().find(|(name, _)| name == p) {
                Some(&(_, v)) => vals.push(v),
                None => return Err(IrError::UnboundParameter { name: p.clone() }),
            }
        }
        let n = self.depth();
        let fold = |e: &AffineExpr| -> Result<AffineExpr> {
            let mut acc = e.constant as i128;
            for (j, &v) in vals.iter().enumerate() {
                acc += e.coeff(n + j) as i128 * v as i128;
            }
            let constant = i64::try_from(acc)
                .map_err(|_| IrError::Matrix(pdm_matrix::MatrixError::Overflow))?;
            Ok(AffineExpr::new(
                IVec::from_slice(&e.coeffs.as_slice()[..n]),
                constant,
            ))
        };
        let lower = self.lower.iter().map(&fold).collect::<Result<Vec<_>>>()?;
        let upper = self.upper.iter().map(&fold).collect::<Result<Vec<_>>>()?;
        let body = if self.has_parametric_accesses() {
            let values = IVec::from_slice(&vals);
            self.body
                .iter()
                .map(|s| substitute_stmt(s, &values))
                .collect::<Result<Vec<_>>>()?
        } else {
            self.body.clone()
        };
        LoopNest::new(
            self.index_names.clone(),
            lower,
            upper,
            self.arrays.clone(),
            body,
        )
    }

    /// Stable structural hash of the nest **shape** — index/parameter
    /// arity and names, bound coefficient rows, array declarations, and
    /// the full body structure. Two nests compare equal iff they hash
    /// equal up to collisions, so caches key on this and verify with
    /// `==` on hit (see `pdm-runtime`'s `PlanCache`). FNV-1a, stable
    /// across processes and platforms.
    pub fn structural_hash(&self) -> u64 {
        let mut h = Fnv::new();
        h.word(self.index_names.len() as u64);
        for name in self.index_names.iter().chain(&self.param_names) {
            h.bytes(name.as_bytes());
        }
        h.word(self.param_names.len() as u64);
        for e in self.lower.iter().chain(&self.upper) {
            h.expr(e);
        }
        h.word(self.arrays.len() as u64);
        for a in &self.arrays {
            h.bytes(a.name.as_bytes());
            h.word(a.dims as u64);
        }
        h.word(self.body.len() as u64);
        for stmt in &self.body {
            h.aref(&stmt.lhs);
            h.body_expr(&stmt.rhs);
            h.word(stmt.guards.len() as u64);
            for g in &stmt.guards {
                h.word(g.index as u64);
                h.expr(&g.value);
            }
        }
        h.finish()
    }

    /// Declared arrays.
    pub fn arrays(&self) -> &[ArrayDecl] {
        &self.arrays
    }

    /// Body statements.
    pub fn body(&self) -> &[Statement] {
        &self.body
    }

    /// Look up an array by source name.
    pub fn array_by_name(&self, name: &str) -> Option<ArrayId> {
        self.arrays.iter().position(|a| a.name == name).map(ArrayId)
    }

    /// The iteration polyhedron `{ i : l_k ≤ i_k ≤ u_k }` as a constraint
    /// system over the `n` indices. Concrete nests only: a symbolic nest
    /// gets [`IrError::UnboundParameter`] (use
    /// [`LoopNest::symbolic_system`] or substitute first).
    pub fn iteration_system(&self) -> Result<System> {
        self.require_concrete()?;
        let n = self.depth();
        let mut sys = System::universe(n);
        for k in 0..n {
            // i_k - lower_k >= 0
            let ik = AffineExpr::var(n, k);
            sys.add_ge0(ik.sub(&self.lower[k]).map_err(IrError::Matrix)?)
                .map_err(IrError::Matrix)?;
            // upper_k - i_k >= 0
            sys.add_ge0(self.upper[k].sub(&ik).map_err(IrError::Matrix)?)
                .map_err(IrError::Matrix)?;
        }
        Ok(sys)
    }

    /// The iteration polyhedron over `(indices, parameters)`: a system of
    /// `depth + params` columns, loop indices first. Parameter columns
    /// are ordinary (free) variables of the system; planning eliminates
    /// only the index columns and carries the parameter columns into the
    /// extracted bound rows ([`pdm_poly::bounds::LoopBounds`] with
    /// trailing parameter columns). For a concrete nest this is exactly
    /// [`LoopNest::iteration_system`].
    pub fn symbolic_system(&self) -> Result<System> {
        let n = self.depth();
        let w = n + self.param_names.len();
        let mut sys = System::universe(w);
        for k in 0..n {
            let ik = AffineExpr::var(w, k);
            sys.add_ge0(ik.sub(&self.lower[k]).map_err(IrError::Matrix)?)
                .map_err(IrError::Matrix)?;
            sys.add_ge0(self.upper[k].sub(&ik).map_err(IrError::Matrix)?)
                .map_err(IrError::Matrix)?;
        }
        Ok(sys)
    }

    /// Global inclusive `(min, max)` range of every loop variable over the
    /// iteration polyhedron, computed by Fourier–Motzkin projection.
    /// Errors with `Unbounded` when a direction has no finite bound, and
    /// with [`IrError::UnboundParameter`] on symbolic nests (a symbolic
    /// range has no integer endpoints to report).
    pub fn index_ranges(&self) -> Result<Vec<(i64, i64)>> {
        let n = self.depth();
        let sys = self.iteration_system()?;
        let mut out = Vec::with_capacity(n);
        for k in 0..n {
            let others: Vec<usize> = (0..n).filter(|&v| v != k).collect();
            let proj = others
                .iter()
                .try_fold(sys.clone(), |s, &v| pdm_poly::fm::eliminate(&s, v))
                .map_err(IrError::Matrix)?;
            let mut lo: Option<i64> = None;
            let mut hi: Option<i64> = None;
            for e in proj.constraints() {
                let a = e.coeff(k);
                if a > 0 {
                    let b = pdm_matrix::num::ceil_div(-e.constant, a).map_err(IrError::Matrix)?;
                    lo = Some(lo.map_or(b, |c: i64| c.max(b)));
                } else if a < 0 {
                    let b = pdm_matrix::num::floor_div(e.constant, -a).map_err(IrError::Matrix)?;
                    hi = Some(hi.map_or(b, |c: i64| c.min(b)));
                }
            }
            match (lo, hi) {
                (Some(l), Some(h)) => out.push((l, h)),
                _ => return Err(IrError::Matrix(pdm_matrix::MatrixError::Unbounded)),
            }
        }
        Ok(out)
    }

    /// Enumerate the iteration vectors in lexicographic (execution) order.
    /// Concrete nests only ([`IrError::UnboundParameter`] otherwise).
    pub fn iterations(&self) -> Result<Vec<IVec>> {
        let sys = self.iteration_system()?;
        let b = LoopBounds::from_system(&sys).map_err(IrError::Matrix)?;
        Ok(b.enumerate()
            .map_err(IrError::Matrix)?
            .into_iter()
            .map(IVec)
            .collect())
    }

    /// Every access of the body, tagged with its statement index and kind.
    pub fn accesses(&self) -> Vec<(usize, AccessKind, &ArrayRef)> {
        let mut out = Vec::new();
        for (si, stmt) in self.body.iter().enumerate() {
            for (kind, r) in stmt.accesses() {
                out.push((si, kind, r));
            }
        }
        out
    }

    /// All ordered reference pairs that can induce a dependence: same
    /// array, at least one of the two is a write. Pairs are returned as
    /// `(from, to)` with their statement indices and kinds; both
    /// orientations of distinct accesses appear once (the analysis decides
    /// direction from the solution's lexicographic sign).
    pub fn dependence_pairs(&self) -> Vec<DependencePair<'_>> {
        let accs = self.accesses();
        let mut out = Vec::new();
        for (a_idx, &(s1, k1, r1)) in accs.iter().enumerate() {
            for &(s2, k2, r2) in accs.iter().skip(a_idx) {
                if r1.array != r2.array {
                    continue;
                }
                if k1 == AccessKind::Read && k2 == AccessKind::Read {
                    continue;
                }
                out.push(DependencePair {
                    stmt_a: s1,
                    kind_a: k1,
                    ref_a: r1,
                    stmt_b: s2,
                    kind_b: k2,
                    ref_b: r2,
                });
            }
        }
        out
    }
}

/// One statement with every parametric access folded to its concrete
/// form at `values` (ordered as the nest's parameters).
fn substitute_stmt(stmt: &Statement, values: &IVec) -> Result<Statement> {
    Ok(Statement {
        lhs: substitute_ref(&stmt.lhs, values)?,
        rhs: substitute_body_expr(&stmt.rhs, values)?,
        guards: stmt.guards.clone(),
    })
}

fn substitute_ref(r: &ArrayRef, values: &IVec) -> Result<ArrayRef> {
    Ok(ArrayRef {
        array: r.array,
        access: r.access.substitute_params(values)?,
    })
}

fn substitute_body_expr(e: &crate::expr::Expr, values: &IVec) -> Result<crate::expr::Expr> {
    use crate::expr::Expr;
    Ok(match e {
        Expr::Const(_) | Expr::Index(_) => e.clone(),
        Expr::Read(r) => Expr::Read(substitute_ref(r, values)?),
        Expr::Add(a, b) => Expr::add(
            substitute_body_expr(a, values)?,
            substitute_body_expr(b, values)?,
        ),
        Expr::Sub(a, b) => Expr::sub(
            substitute_body_expr(a, values)?,
            substitute_body_expr(b, values)?,
        ),
        Expr::Mul(a, b) => Expr::mul(
            substitute_body_expr(a, values)?,
            substitute_body_expr(b, values)?,
        ),
        Expr::Neg(a) => Expr::Neg(Box::new(substitute_body_expr(a, values)?)),
    })
}

/// FNV-1a folding over the nest structure (see
/// [`LoopNest::structural_hash`]): deliberately hand-rolled instead of
/// `std::hash::Hash` so the value is stable across processes, platforms,
/// and std versions — it is a cache key, not an in-process table hash.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf29ce484222325)
    }
    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x100000001b3);
    }
    fn bytes(&mut self, bs: &[u8]) {
        self.word(bs.len() as u64);
        for &b in bs {
            self.byte(b);
        }
    }
    fn word(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.byte(b);
        }
    }
    fn expr(&mut self, e: &AffineExpr) {
        self.word(e.dim() as u64);
        for &c in e.coeffs.iter() {
            self.word(c as u64);
        }
        self.word(e.constant as u64);
    }
    fn aref(&mut self, r: &ArrayRef) {
        self.word(r.array.0 as u64);
        self.word(r.access.depth() as u64);
        self.word(r.access.dims() as u64);
        for k in 0..r.access.depth() {
            for d in 0..r.access.dims() {
                self.word(r.access.matrix.get(k, d) as u64);
            }
        }
        for &o in r.access.offset.iter() {
            self.word(o as u64);
        }
        // Parameter coefficient rows — hashed only when present, so the
        // hash of every pre-existing (parameter-free) shape is unchanged.
        if r.access.params.rows() > 0 {
            self.word(r.access.params.rows() as u64);
            for k in 0..r.access.params.rows() {
                for d in 0..r.access.params.cols() {
                    self.word(r.access.params.get(k, d) as u64);
                }
            }
        }
    }
    fn body_expr(&mut self, e: &crate::expr::Expr) {
        use crate::expr::Expr;
        match e {
            Expr::Const(c) => {
                self.byte(1);
                self.word(*c as u64);
            }
            Expr::Index(k) => {
                self.byte(2);
                self.word(*k as u64);
            }
            Expr::Read(r) => {
                self.byte(3);
                self.aref(r);
            }
            Expr::Add(a, b) => {
                self.byte(4);
                self.body_expr(a);
                self.body_expr(b);
            }
            Expr::Sub(a, b) => {
                self.byte(5);
                self.body_expr(a);
                self.body_expr(b);
            }
            Expr::Mul(a, b) => {
                self.byte(6);
                self.body_expr(a);
                self.body_expr(b);
            }
            Expr::Neg(a) => {
                self.byte(7);
                self.body_expr(a);
            }
        }
    }
    fn finish(&self) -> u64 {
        self.0
    }
}

/// A pair of references that may be dependent (same array, ≥ 1 write).
#[derive(Debug, Clone, Copy)]
pub struct DependencePair<'a> {
    /// Statement index of the first reference.
    pub stmt_a: usize,
    /// Kind of the first reference.
    pub kind_a: AccessKind,
    /// First reference.
    pub ref_a: &'a ArrayRef,
    /// Statement index of the second reference.
    pub stmt_b: usize,
    /// Kind of the second reference.
    pub kind_b: AccessKind,
    /// Second reference.
    pub ref_b: &'a ArrayRef,
}

impl DependencePair<'_> {
    /// Classify: flow (W→R), anti (R→W), output (W→W) — direction resolved
    /// later by the solver; this is the unordered classification.
    pub fn class(&self) -> &'static str {
        match (self.kind_a, self.kind_b) {
            (AccessKind::Write, AccessKind::Write) => "output",
            (AccessKind::Write, AccessKind::Read) => "flow/anti",
            (AccessKind::Read, AccessKind::Write) => "flow/anti",
            (AccessKind::Read, AccessKind::Read) => unreachable!("filtered"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::NestBuilder;

    fn paper41() -> LoopNest {
        crate::parse::parse_loop(
            "for i1 = 0..=9 { for i2 = 0..=9 {
               A[i1 + i2, 3*i1 + i2 + 3] = A[i1 + i2 + 1, i1 + 2*i2] + 1;
             } }",
        )
        .unwrap()
    }

    #[test]
    fn depth_and_iterations() {
        let nest = paper41();
        assert_eq!(nest.depth(), 2);
        let its = nest.iterations().unwrap();
        assert_eq!(its.len(), 100);
        assert_eq!(its[0].as_slice(), &[0, 0]);
        assert_eq!(its[99].as_slice(), &[9, 9]);
        // Lexicographic order.
        for w in its.windows(2) {
            assert!(pdm_matrix::lex::lex_cmp(&w[0], &w[1]).is_lt());
        }
    }

    #[test]
    fn dependence_pairs_filter_read_read() {
        let nest = paper41();
        // Accesses: write A, read A => pairs: (W,W) self and (W,R);
        // the (R,R) pair is filtered out.
        let pairs = nest.dependence_pairs();
        assert_eq!(pairs.len(), 2);
        let classes: Vec<_> = pairs.iter().map(|p| p.class()).collect();
        assert!(classes.contains(&"output"));
        assert!(classes.contains(&"flow/anti"));
    }

    #[test]
    fn triangular_bounds_nest() {
        // for i1 = 0..=5 { for i2 = 0..=i1 { ... } }
        let nest = NestBuilder::new(&["i1", "i2"])
            .bounds_const(0, 0, 5)
            .bounds_expr(1, AffineExpr::constant(2, 0), AffineExpr::var(2, 0))
            .array("A", 1)
            .stmt_simple("A", &[(vec![1, 0], 0)], &[("A", vec![(vec![0, 1], 0)])])
            .build()
            .unwrap();
        let its = nest.iterations().unwrap();
        assert_eq!(its.len(), 6 + 5 + 4 + 3 + 2 + 1);
        for it in &its {
            assert!(it[1] <= it[0]);
        }
    }

    #[test]
    fn invalid_nests_rejected() {
        // Bound referencing an inner index.
        let bad = LoopNest::new(
            vec!["i1".into(), "i2".into()],
            vec![AffineExpr::constant(2, 0), AffineExpr::constant(2, 0)],
            vec![AffineExpr::var(2, 1), AffineExpr::constant(2, 3)],
            vec![],
            vec![],
        );
        assert!(bad.is_err());
        // Zero depth.
        assert!(LoopNest::new(vec![], vec![], vec![], vec![], vec![]).is_err());
    }

    fn symbolic_chain() -> LoopNest {
        crate::parse::parse_loop_symbolic("for i = 1..=N { A[i] = A[i - 1] + 1; }", &["N"]).unwrap()
    }

    #[test]
    fn symbolic_nest_rejects_concrete_apis_with_typed_error() {
        let nest = symbolic_chain();
        assert!(nest.is_symbolic());
        assert_eq!(nest.param_names(), &["N".to_string()]);
        for err in [
            nest.iteration_system().unwrap_err(),
            nest.index_ranges().unwrap_err(),
            nest.iterations().unwrap_err(),
        ] {
            match err {
                IrError::UnboundParameter { name } => assert_eq!(name, "N"),
                other => panic!("expected UnboundParameter, got {other:?}"),
            }
        }
    }

    #[test]
    fn substitute_lowers_to_the_concrete_nest() {
        let nest = symbolic_chain();
        let conc = nest.substitute(&[("N", 7)]).unwrap();
        assert!(!conc.is_symbolic());
        assert_eq!(conc.iterations().unwrap().len(), 7);
        // Missing and unknown bindings are loud, typed errors.
        assert!(matches!(
            nest.substitute(&[]),
            Err(IrError::UnboundParameter { .. })
        ));
        assert!(matches!(
            nest.substitute(&[("N", 7), ("M", 1)]),
            Err(IrError::Invalid(_))
        ));
        // Substituting an empty valuation into a concrete nest is the
        // identity.
        assert_eq!(conc.substitute(&[]).unwrap(), conc);
    }

    #[test]
    fn symbolic_system_spans_indices_and_params() {
        let nest = symbolic_chain();
        let sys = nest.symbolic_system().unwrap();
        assert_eq!(sys.dim(), 2); // i and N
                                  // i - 1 >= 0 and N - i >= 0.
        assert!(sys.contains(&[3, 5]).unwrap());
        assert!(!sys.contains(&[6, 5]).unwrap());
        assert!(!sys.contains(&[0, 5]).unwrap());
        // On a concrete nest it coincides with iteration_system.
        let conc = nest.substitute(&[("N", 5)]).unwrap();
        assert_eq!(
            conc.symbolic_system().unwrap(),
            conc.iteration_system().unwrap()
        );
    }

    #[test]
    fn structural_hash_distinguishes_shapes_not_sizes() {
        let a = symbolic_chain();
        let b = crate::parse::parse_loop_symbolic("for i = 1..=N { A[i] = A[i - 1] + 1; }", &["N"])
            .unwrap();
        assert_eq!(a.structural_hash(), b.structural_hash());
        assert_eq!(a, b);
        let c = crate::parse::parse_loop_symbolic("for i = 1..=N { A[i] = A[i - 2] + 1; }", &["N"])
            .unwrap();
        assert_ne!(a.structural_hash(), c.structural_hash());
        // Substitution changes the shape (bounds become concrete).
        assert_ne!(
            a.structural_hash(),
            a.substitute(&[("N", 9)]).unwrap().structural_hash()
        );
    }

    #[test]
    fn parameter_shadowing_index_rejected() {
        let err = LoopNest::new_symbolic(
            vec!["i".into()],
            vec!["i".into()],
            vec![AffineExpr::constant(2, 0)],
            vec![AffineExpr::constant(2, 3)],
            vec![],
            vec![],
        );
        assert!(err.is_err());
    }

    #[test]
    fn duplicate_parameter_rejected() {
        // A duplicate name would leave a dead trailing column (every
        // occurrence resolves to the first) and fork the structural hash
        // of an otherwise-identical shape.
        let err = LoopNest::new_symbolic(
            vec!["i".into()],
            vec!["N".into(), "N".into()],
            vec![AffineExpr::constant(3, 0)],
            vec![AffineExpr::constant(3, 3)],
            vec![],
            vec![],
        );
        assert!(matches!(err, Err(IrError::Invalid(_))));
        assert!(
            crate::parse::parse_loop_symbolic("for i = 0..=N { A[i] = 1; }", &["N", "N"]).is_err()
        );
    }

    #[test]
    fn self_dependence_pair_present() {
        // A single write access must still form a W-W self pair (output
        // dependence candidacy, as the paper's §4.1 uses).
        let nest = crate::parse::parse_loop("for i = 0..=4 { A[2*i] = 1; }").unwrap();
        let pairs = nest.dependence_pairs();
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].class(), "output");
    }
}
