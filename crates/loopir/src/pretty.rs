//! Pretty-printing loop nests back to DSL/paper-style text.

use crate::nest::LoopNest;
use crate::stmt::ArrayRef;
use std::fmt::Write as _;

/// Render a nest as indented `for`-loop text with the original index and
/// array names (the inverse of [`crate::parse::parse_loop`] up to layout).
pub fn render(nest: &LoopNest) -> String {
    // Bound expressions span index columns then parameter columns, so
    // symbolic nests render their parameters by name.
    let mut names: Vec<String> = nest.index_names().to_vec();
    names.extend(nest.param_names().iter().cloned());
    let mut out = String::new();
    for k in 0..nest.depth() {
        let indent = "  ".repeat(k);
        let lo = nest.lower(k).display_with(&names);
        let hi = nest.upper(k).display_with(&names);
        let _ = writeln!(out, "{indent}for {} = {lo}..={hi} {{", names[k]);
    }
    let body_indent = "  ".repeat(nest.depth());
    for stmt in nest.body() {
        let _ = writeln!(
            out,
            "{body_indent}{} = {};",
            render_ref(nest, &stmt.lhs),
            render_expr(nest, &stmt.rhs)
        );
    }
    for k in (0..nest.depth()).rev() {
        let _ = writeln!(out, "{}}}", "  ".repeat(k));
    }
    out
}

/// Render an array reference with real names.
pub fn render_ref(nest: &LoopNest, r: &ArrayRef) -> String {
    let names = nest.index_names();
    let arr = &nest.arrays()[r.array.0].name;
    let mut out = format!("{arr}[");
    for c in 0..r.access.dims() {
        if c > 0 {
            out.push_str(", ");
        }
        let mut first = true;
        for k in 0..r.access.depth() {
            let coef = r.access.matrix.get(k, c);
            if coef == 0 {
                continue;
            }
            if !first {
                out.push_str(if coef > 0 { " + " } else { " - " });
            } else if coef < 0 {
                out.push('-');
            }
            if coef.abs() != 1 {
                let _ = write!(out, "{}*", coef.abs());
            }
            out.push_str(&names[k]);
            first = false;
        }
        let b = r.access.offset[c];
        if first {
            let _ = write!(out, "{b}");
        } else if b > 0 {
            let _ = write!(out, " + {b}");
        } else if b < 0 {
            let _ = write!(out, " - {}", -b);
        }
    }
    out.push(']');
    out
}

fn render_expr(nest: &LoopNest, e: &crate::expr::Expr) -> String {
    use crate::expr::Expr;
    match e {
        Expr::Const(c) => c.to_string(),
        Expr::Index(k) => nest.index_names()[*k].clone(),
        Expr::Read(r) => render_ref(nest, r),
        Expr::Add(a, b) => format!("({} + {})", render_expr(nest, a), render_expr(nest, b)),
        Expr::Sub(a, b) => format!("({} - {})", render_expr(nest, a), render_expr(nest, b)),
        Expr::Mul(a, b) => format!("({} * {})", render_expr(nest, a), render_expr(nest, b)),
        Expr::Neg(a) => format!("(-{})", render_expr(nest, a)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_loop;

    #[test]
    fn roundtrip_through_parser() {
        let src = "for i1 = 0..=9 { for i2 = 0..=9 {
            A[i1 + i2, 3*i1 + i2 + 3] = A[i1 + i2 + 1, i1 + 2*i2] + 1;
        } }";
        let nest = parse_loop(src).unwrap();
        let text = render(&nest);
        // The rendered text parses back to the identical nest.
        let nest2 = parse_loop(&text).unwrap();
        assert_eq!(nest, nest2);
    }

    #[test]
    fn render_contains_names_and_bounds() {
        let nest = parse_loop("for i = 2..=7 { for j = 0..=i { X[i, j] = j; } }").unwrap();
        let text = render(&nest);
        assert!(text.contains("for i = 2..=7 {"));
        assert!(text.contains("for j = 0..=i {"));
        assert!(text.contains("X[i, j]"));
    }

    #[test]
    fn negative_offsets_render() {
        let nest = parse_loop("for i = 1..=5 { A[i - 1] = A[i] - 2; }").unwrap();
        let text = render(&nest);
        assert!(text.contains("A[i - 1]"), "got: {text}");
    }
}
