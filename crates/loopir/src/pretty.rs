//! Pretty-printing loop nests back to DSL/paper-style text.

use crate::imperfect::ImperfectNest;
use crate::nest::LoopNest;
use crate::stmt::{ArrayRef, Statement};
use std::fmt::Write as _;

/// Render a nest as indented `for`-loop text with the original index and
/// array names (the inverse of [`crate::parse::parse_loop`] up to layout).
/// Guarded statements render their `when` clauses, so sunk nests
/// round-trip through the parser too.
pub fn render(nest: &LoopNest) -> String {
    // Bound expressions span index columns then parameter columns, so
    // symbolic nests render their parameters by name.
    let mut names: Vec<String> = nest.index_names().to_vec();
    names.extend(nest.param_names().iter().cloned());
    let mut out = String::new();
    for k in 0..nest.depth() {
        let indent = "  ".repeat(k);
        let lo = nest.lower(k).display_with(&names);
        let hi = nest.upper(k).display_with(&names);
        let _ = writeln!(out, "{indent}for {} = {lo}..={hi} {{", names[k]);
    }
    let body_indent = "  ".repeat(nest.depth());
    for stmt in nest.body() {
        let _ = writeln!(
            out,
            "{body_indent}{}",
            render_stmt(&names, nest.arrays(), stmt)
        );
    }
    for k in (0..nest.depth()).rev() {
        let _ = writeln!(out, "{}}}", "  ".repeat(k));
    }
    out
}

/// Render an imperfect nest: each level prints its `pre` statements, the
/// nested loop, then its `post` statements (the inverse of
/// [`crate::parse::parse_imperfect`] up to layout).
pub fn render_imperfect(imp: &ImperfectNest) -> String {
    let names: Vec<String> = imp.index_names().to_vec();
    let n = imp.depth();
    let mut out = String::new();
    for k in 0..n {
        let indent = "  ".repeat(k);
        let lo = imp.lower(k).display_with(&names);
        let hi = imp.upper(k).display_with(&names);
        let _ = writeln!(out, "{indent}for {} = {lo}..={hi} {{", names[k]);
        let inner = "  ".repeat(k + 1);
        let stmts = if k + 1 == n { imp.body() } else { imp.pre(k) };
        for stmt in stmts {
            let _ = writeln!(out, "{inner}{}", render_stmt(&names, imp.arrays(), stmt));
        }
    }
    for k in (0..n).rev() {
        let indent = "  ".repeat(k);
        if k + 1 < n {
            let inner = "  ".repeat(k + 1);
            for stmt in imp.post(k) {
                let _ = writeln!(out, "{inner}{}", render_stmt(&names, imp.arrays(), stmt));
            }
        }
        let _ = writeln!(out, "{indent}}}");
    }
    out
}

/// Render one statement with real names, `when` clauses included.
pub fn render_stmt(
    names: &[String],
    arrays: &[crate::nest::ArrayDecl],
    stmt: &Statement,
) -> String {
    let mut out = format!(
        "{} = {}{}",
        render_ref_names(names, arrays, &stmt.lhs),
        render_expr_names(names, arrays, &stmt.rhs),
        render_guards(names, &stmt.guards)
    );
    out.push(';');
    out
}

/// The ` when i == e, j == f` suffix of a guarded statement (empty for
/// unguarded ones) — the single source of the clause syntax, shared by
/// [`render_stmt`] and `pdm-core`'s codegen.
pub fn render_guards(names: &[String], guards: &[crate::stmt::IndexGuard]) -> String {
    let mut out = String::new();
    for (j, g) in guards.iter().enumerate() {
        let sep = if j == 0 { " when " } else { ", " };
        let _ = write!(
            out,
            "{sep}{} == {}",
            names[g.index],
            g.value.display_with(names)
        );
    }
    out
}

/// Render an array reference with real names.
pub fn render_ref(nest: &LoopNest, r: &ArrayRef) -> String {
    let mut names: Vec<String> = nest.index_names().to_vec();
    names.extend(nest.param_names().iter().cloned());
    render_ref_names(&names, nest.arrays(), r)
}

/// Render an access's subscripts: index terms (`names[..depth]`), then
/// parameter terms (`names[depth..]`, for parametric accesses), then the
/// constant offset.
fn render_ref_names(names: &[String], arrays: &[crate::nest::ArrayDecl], r: &ArrayRef) -> String {
    let arr = &arrays[r.array.0].name;
    let mut out = format!("{arr}[");
    for c in 0..r.access.dims() {
        if c > 0 {
            out.push_str(", ");
        }
        let mut first = true;
        for k in 0..r.access.depth() {
            let coef = r.access.matrix.get(k, c);
            if coef == 0 {
                continue;
            }
            if !first {
                out.push_str(if coef > 0 { " + " } else { " - " });
            } else if coef < 0 {
                out.push('-');
            }
            if coef.abs() != 1 {
                let _ = write!(out, "{}*", coef.abs());
            }
            out.push_str(&names[k]);
            first = false;
        }
        for k in 0..r.access.params.rows() {
            let coef = r.access.params.get(k, c);
            if coef == 0 {
                continue;
            }
            if !first {
                out.push_str(if coef > 0 { " + " } else { " - " });
            } else if coef < 0 {
                out.push('-');
            }
            if coef.abs() != 1 {
                let _ = write!(out, "{}*", coef.abs());
            }
            out.push_str(&names[r.access.depth() + k]);
            first = false;
        }
        let b = r.access.offset[c];
        if first {
            let _ = write!(out, "{b}");
        } else if b > 0 {
            let _ = write!(out, " + {b}");
        } else if b < 0 {
            let _ = write!(out, " - {}", -b);
        }
    }
    out.push(']');
    out
}

fn render_expr_names(
    names: &[String],
    arrays: &[crate::nest::ArrayDecl],
    e: &crate::expr::Expr,
) -> String {
    use crate::expr::Expr;
    match e {
        Expr::Const(c) => c.to_string(),
        Expr::Index(k) => names[*k].clone(),
        Expr::Read(r) => render_ref_names(names, arrays, r),
        Expr::Add(a, b) => format!(
            "({} + {})",
            render_expr_names(names, arrays, a),
            render_expr_names(names, arrays, b)
        ),
        Expr::Sub(a, b) => format!(
            "({} - {})",
            render_expr_names(names, arrays, a),
            render_expr_names(names, arrays, b)
        ),
        Expr::Mul(a, b) => format!(
            "({} * {})",
            render_expr_names(names, arrays, a),
            render_expr_names(names, arrays, b)
        ),
        Expr::Neg(a) => format!("(-{})", render_expr_names(names, arrays, a)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::{parse_imperfect, parse_loop};

    #[test]
    fn roundtrip_through_parser() {
        let src = "for i1 = 0..=9 { for i2 = 0..=9 {
            A[i1 + i2, 3*i1 + i2 + 3] = A[i1 + i2 + 1, i1 + 2*i2] + 1;
        } }";
        let nest = parse_loop(src).unwrap();
        let text = render(&nest);
        // The rendered text parses back to the identical nest.
        let nest2 = parse_loop(&text).unwrap();
        assert_eq!(nest, nest2);
    }

    #[test]
    fn render_contains_names_and_bounds() {
        let nest = parse_loop("for i = 2..=7 { for j = 0..=i { X[i, j] = j; } }").unwrap();
        let text = render(&nest);
        assert!(text.contains("for i = 2..=7 {"));
        assert!(text.contains("for j = 0..=i {"));
        assert!(text.contains("X[i, j]"));
    }

    #[test]
    fn negative_offsets_render() {
        let nest = parse_loop("for i = 1..=5 { A[i - 1] = A[i] - 2; }").unwrap();
        let text = render(&nest);
        assert!(text.contains("A[i - 1]"), "got: {text}");
    }

    #[test]
    fn guarded_statement_roundtrips() {
        let src = "for i = 0..=5 { for j = 0..=5 { A[i, j] = i when j == i + 1; } }";
        let nest = parse_loop(src).unwrap();
        assert!(nest.body()[0].is_guarded());
        let text = render(&nest);
        assert!(text.contains("when j == i + 1"), "got: {text}");
        assert_eq!(parse_loop(&text).unwrap(), nest);
    }

    #[test]
    fn parametric_subscripts_roundtrip() {
        let src = "for i = 0..=9 { A[i + 2*N] = A[i - N] + 1; }";
        let nest = crate::parse::parse_loop_symbolic(src, &["N"]).unwrap();
        assert!(nest.has_parametric_accesses());
        let text = render(&nest);
        assert!(text.contains("A[i + 2*N]"), "got: {text}");
        assert!(text.contains("A[i - N]"), "got: {text}");
        let nest2 = crate::parse::parse_loop_symbolic(&text, &["N"]).unwrap();
        assert_eq!(nest, nest2);
    }

    #[test]
    fn imperfect_roundtrips_through_parser() {
        let src = "for i = 1..=6 {
            A[i, 0] = i;
            for j = 1..=6 { A[i, j] = A[i - 1, j] + A[i, j - 1]; }
            A[i, 6] = A[i, 6] + 1;
        }";
        let imp = parse_imperfect(src).unwrap();
        let text = render_imperfect(&imp);
        assert_eq!(parse_imperfect(&text).unwrap(), imp, "got: {text}");
        assert!(text.contains("A[i, 0] = i;"));
    }
}
