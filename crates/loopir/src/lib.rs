//! # pdm-loopir — perfect loop-nest IR with affine accesses
//!
//! The analysis of the paper consumes exactly this shape of program
//! (its eq. 2.1): an `n`-fold **perfectly nested** loop whose bounds are
//! affine in the outer indices and whose array subscripts are **arbitrary
//! affine functions of all loop indices** — the generality that produces
//! *variable* dependence distances.
//!
//! The crate supplies:
//! * [`access::AffineAccess`] — subscript maps `s(i) = i·A + b` (row-vector
//!   convention, matching the paper),
//! * [`expr::Expr`] / [`stmt::Statement`] — executable loop bodies over
//!   integer arrays,
//! * [`nest::LoopNest`] — the nest itself: bounds, arrays, body, iteration
//!   polyhedron,
//! * [`parse`] — a small text DSL so examples, tests and benchmarks can
//!   state loops as readably as the paper does,
//! * [`pretty`] — the inverse: render a nest (or a transformed schedule)
//!   back to text.
//!
//! ```
//! use pdm_loopir::parse::parse_loop;
//!
//! let nest = parse_loop(
//!     "for i1 = 0..=9 { for i2 = 0..=9 {
//!        A[i1 + i2, 3*i1 + i2 + 3] = A[i1 + i2 + 1, i1 + 2*i2] + 1;
//!     } }",
//! ).unwrap();
//! assert_eq!(nest.depth(), 2);
//! assert_eq!(nest.iterations().unwrap().len(), 100);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod access;
pub mod builder;
pub mod expr;
pub mod generator;
pub mod nest;
pub mod normalize;
pub mod parse;
pub mod pretty;
pub mod stmt;

pub use access::{AffineAccess, ArrayId};
pub use expr::Expr;
pub use nest::{ArrayDecl, LoopNest};
pub use stmt::{AccessKind, ArrayRef, Statement};

/// Errors from IR construction, validation and parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// Underlying exact-arithmetic failure.
    Matrix(pdm_matrix::MatrixError),
    /// Malformed IR (dimension clash, unknown array, …).
    Invalid(String),
    /// DSL syntax error with a byte offset and message.
    Parse {
        /// Byte offset in the source text.
        at: usize,
        /// Explanation.
        msg: String,
    },
}

impl std::fmt::Display for IrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IrError::Matrix(e) => write!(f, "matrix error: {e}"),
            IrError::Invalid(m) => write!(f, "invalid loop IR: {m}"),
            IrError::Parse { at, msg } => write!(f, "parse error at byte {at}: {msg}"),
        }
    }
}

impl std::error::Error for IrError {}

impl From<pdm_matrix::MatrixError> for IrError {
    fn from(e: pdm_matrix::MatrixError) -> Self {
        IrError::Matrix(e)
    }
}

/// Result alias for the crate.
pub type Result<T> = std::result::Result<T, IrError>;
