//! # pdm-loopir — perfect loop-nest IR with affine accesses
//!
//! The analysis of the paper consumes exactly this shape of program
//! (its eq. 2.1): an `n`-fold **perfectly nested** loop whose bounds are
//! affine in the outer indices and whose array subscripts are **arbitrary
//! affine functions of all loop indices** — the generality that produces
//! *variable* dependence distances.
//!
//! The crate supplies:
//! * [`access::AffineAccess`] — subscript maps `s(i) = i·A + b` (row-vector
//!   convention, matching the paper),
//! * [`expr::Expr`] / [`stmt::Statement`] — executable loop bodies over
//!   integer arrays,
//! * [`nest::LoopNest`] — the nest itself: bounds, arrays, body, iteration
//!   polyhedron. Bounds may carry **named parameter columns**
//!   (`N`, `M`, …) kept symbolic through planning; see below,
//! * [`parse`] — a small text DSL so examples, tests and benchmarks can
//!   state loops as readably as the paper does,
//! * [`pretty`] — the inverse: render a nest (or a transformed schedule)
//!   back to text.
//!
//! ## Concrete nests
//!
//! ```
//! use pdm_loopir::parse::parse_loop;
//!
//! let nest = parse_loop(
//!     "for i1 = 0..=9 { for i2 = 0..=9 {
//!        A[i1 + i2, 3*i1 + i2 + 3] = A[i1 + i2 + 1, i1 + 2*i2] + 1;
//!     } }",
//! ).unwrap();
//! assert_eq!(nest.depth(), 2);
//! assert_eq!(nest.iterations().unwrap().len(), 100);
//! ```
//!
//! ## Symbolic (parametric) nests: template → instantiate
//!
//! The paper's transformation is valid for *any* loop bounds, so the
//! nest shape can be analyzed once and re-bounded per problem size. A
//! **symbolic** nest ([`parse::parse_loop_symbolic`]) keeps named
//! parameters as extra columns of its bound expressions instead of
//! substituting integers at parse time. Downstream, `pdm-core` plans the
//! shape once (`PlanTemplate`) and instantiates it per size with no
//! re-analysis; here in the IR the two halves of the flow are:
//!
//! * planning-side: [`nest::LoopNest::symbolic_system`] exposes the
//!   iteration polyhedron over `(indices, parameters)` so Fourier–Motzkin
//!   can eliminate loop indices while *carrying* the parameter columns;
//! * instantiation-side: [`nest::LoopNest::substitute`] folds a parameter
//!   valuation into the bound constants, yielding the concrete nest the
//!   executors run.
//!
//! Concrete-only APIs ([`nest::LoopNest::iteration_system`],
//! [`nest::LoopNest::index_ranges`], [`nest::LoopNest::iterations`])
//! refuse symbolic nests with a typed [`IrError::UnboundParameter`]
//! naming the offending parameter.
//!
//! ```
//! use pdm_loopir::parse::parse_loop_symbolic;
//!
//! let sym = parse_loop_symbolic(
//!     "for i = 0..N { A[2*i] = A[i] + 1; }",
//!     &["N"],
//! ).unwrap();
//! assert!(sym.is_symbolic());
//! let nest = sym.substitute(&[("N", 100)]).unwrap();
//! assert_eq!(nest.iterations().unwrap().len(), 100);
//! ```
//!
//! ## Imperfect nests: statements between loop levels
//!
//! Real wavefront/initialization/epilogue loops are **imperfect** —
//! each level may run statements before (`pre`) and after (`post`) its
//! nested loop. [`imperfect::ImperfectNest`]
//! ([`parse::parse_imperfect`]) represents that shape, with every
//! statement stored at full nest depth (zero coefficients for deeper
//! levels), and [`normalize::to_perfect_kernels`] lowers it to an
//! ordered sequence of perfect kernels the planner handles unchanged —
//! by **fission** (when distribution provably cannot flip a dependence)
//! or **code sinking** (guarding the statement on the first/last inner
//! iteration via [`stmt::IndexGuard`], exact whenever the inner loop is
//! provably non-empty). [`normalize::sink_fully`] /
//! [`normalize::unsink`] expose sinking as an invertible pair; guarded
//! statements render as `when` clauses (`A[i, 0] = i when j == 0;`) and
//! parse back, so sunk programs round-trip through text.
//!
//! ```
//! use pdm_loopir::parse::parse_imperfect;
//! use pdm_loopir::normalize::to_perfect_kernels;
//!
//! let imp = parse_imperfect(
//!     "for i = 0..=7 {
//!        B[i, 0] = i;                             # prologue at depth 1
//!        for j = 1..=7 { A[i, j] = A[i, j - 1] + B[i, 0]; }
//!      }",
//! ).unwrap();
//! let prog = to_perfect_kernels(&imp).unwrap();
//! assert_eq!(prog.kernels.len(), 2);              // init kernel + row kernel
//! assert_eq!(prog.edges, vec![(0, 1)]);           // init before rows
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod access;
pub mod builder;
pub mod expr;
pub mod generator;
pub mod imperfect;
pub mod nest;
pub mod normalize;
pub mod parse;
pub mod pretty;
pub mod stmt;

pub use access::{AffineAccess, ArrayId};
pub use expr::Expr;
pub use imperfect::{ImperfectNest, StmtPosition};
pub use nest::{ArrayDecl, LoopNest};
pub use normalize::{to_perfect_kernels, NormalizedProgram, PerfectKernel};
pub use stmt::{AccessKind, ArrayRef, IndexGuard, Statement};

/// Errors from IR construction, validation and parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// Underlying exact-arithmetic failure.
    Matrix(pdm_matrix::MatrixError),
    /// Malformed IR (dimension clash, unknown array, …).
    Invalid(String),
    /// DSL syntax error with a byte offset and message.
    Parse {
        /// Byte offset in the source text.
        at: usize,
        /// Explanation.
        msg: String,
    },
    /// A symbolic nest reached a concrete-only API (or a substitution
    /// left a parameter unbound). Carries the parameter's name.
    UnboundParameter {
        /// Name of the parameter that has no integer value.
        name: String,
    },
}

impl std::fmt::Display for IrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IrError::Matrix(e) => write!(f, "matrix error: {e}"),
            IrError::Invalid(m) => write!(f, "invalid loop IR: {m}"),
            IrError::Parse { at, msg } => write!(f, "parse error at byte {at}: {msg}"),
            IrError::UnboundParameter { name } => {
                write!(
                    f,
                    "parameter '{name}' is unbound: substitute it (LoopNest::substitute) \
                     before calling a concrete-only API"
                )
            }
        }
    }
}

impl std::error::Error for IrError {}

impl From<pdm_matrix::MatrixError> for IrError {
    fn from(e: pdm_matrix::MatrixError) -> Self {
        IrError::Matrix(e)
    }
}

/// Result alias for the crate.
pub type Result<T> = std::result::Result<T, IrError>;
