//! A small text DSL for perfect loop nests.
//!
//! Grammar (whitespace-insensitive, `#` line comments):
//!
//! ```text
//! nest   := loop
//! loop   := 'for' IDENT '=' affine ('..' | '..=') affine '{' (loop | stmt+) '}'
//! stmt   := IDENT '[' affine (',' affine)* ']' '=' expr guard? ';'
//! guard  := 'when' IDENT '==' affine (',' IDENT '==' affine)*
//! expr   := term (('+'|'-') term)*
//! term   := unary ('*' unary)*
//! unary  := '-' unary | atom
//! atom   := INT | IDENT ('[' affine,* ']')? | '(' expr ')'
//! ```
//!
//! A `when` clause guards the statement on index equalities
//! (`A[i] = 1 when j == 0;` runs only at `j == 0`) — the textual form of
//! [`crate::stmt::IndexGuard`], produced by code sinking and accepted
//! back by the parser so sunk programs round-trip through text.
//!
//! [`parse_imperfect`] accepts the **imperfect** extension of the
//! grammar: statements may appear before and after a (single) nested
//! loop at every level, producing an
//! [`crate::imperfect::ImperfectNest`].
//!
//! `affine` positions (bounds, subscripts) must reduce to linear forms in
//! the loop indices plus named parameters; body expressions are arbitrary
//! `+ - *` arithmetic. `a..b` is exclusive, `a..=b` inclusive (the paper's
//! `do i = l, u`).
//!
//! # Two ways to bind parameters
//!
//! **Substituting** ([`parse_loop_with`]) folds an integer valuation into
//! the nest at parse time — the historical flow, one parse + one plan per
//! problem size:
//!
//! ```
//! use pdm_loopir::parse::parse_loop_with;
//! let nest = parse_loop_with(
//!     "for i = 0..N { A[2*i] = A[i] + 1; }",
//!     &[("N", 100)],
//! ).unwrap();
//! assert_eq!(nest.iterations().unwrap().len(), 100);
//! ```
//!
//! **Symbolic** ([`parse_loop_symbolic`]) keeps the named parameters as
//! live columns of the bound expressions, producing one nest *shape* that
//! `pdm-core` plans once (`PlanTemplate`) and instantiates per size with
//! no re-analysis — the template → instantiate flow. Parameters in loop
//! **bounds** are free: the dependence analysis never reads bounds, so
//! one symbolic plan is valid for every instantiation. Parameters in
//! **subscripts** (`A[i + N]`) are accepted too, but make the plan
//! *speculative* — the dependence structure changes with the valuation,
//! and the runtime inspector must certify each instantiation before it
//! may run in parallel (see `pdm-runtime`'s `inspector` module).
//!
//! ```
//! use pdm_loopir::parse::parse_loop_symbolic;
//! let shape = parse_loop_symbolic(
//!     "for i = 0..N { A[2*i] = A[i] + 1; }",
//!     &["N"],
//! ).unwrap();
//! for n in [10, 100] {
//!     let nest = shape.substitute(&[("N", n)]).unwrap();
//!     assert_eq!(nest.iterations().unwrap().len(), n as usize);
//! }
//! ```

use crate::access::{AffineAccess, ArrayId};
use crate::expr::Expr;
use crate::imperfect::ImperfectNest;
use crate::nest::{ArrayDecl, LoopNest};
use crate::stmt::{ArrayRef, Statement};
use crate::{IrError, Result};
use pdm_matrix::mat::IMat;
use pdm_matrix::vec::IVec;
use pdm_poly::expr::AffineExpr;
use std::collections::HashMap;

/// Parse a nest with no parameters. Loops with `step k` clauses are
/// normalized to unit strides (see [`crate::normalize`]).
pub fn parse_loop(src: &str) -> Result<LoopNest> {
    parse_loop_with(src, &[])
}

/// Parse a nest, substituting the named integer parameters in bounds and
/// subscripts; `step` clauses are normalized away.
pub fn parse_loop_with(src: &str, params: &[(&str, i64)]) -> Result<LoopNest> {
    let stepped = parse_loop_stepped_with(src, params)?;
    crate::normalize::normalize(&stepped)
}

/// Parse a nest keeping `step` clauses explicit (for tools that want to
/// inspect or re-render the original strides).
pub fn parse_loop_stepped(src: &str) -> Result<crate::normalize::SteppedNest> {
    parse_loop_stepped_with(src, &[])
}

/// Parse a nest keeping the named parameters **symbolic**: the result
/// is one nest *shape* ([`LoopNest::is_symbolic`]) whose bound
/// expressions carry a column per parameter, ready for template
/// planning; lower it per problem size with [`LoopNest::substitute`].
///
/// Parameters may appear in loop bounds **and in array subscripts**
/// (`A[i + N]` — the access carries parameter coefficient rows,
/// [`LoopNest::has_parametric_accesses`]). A parametric subscript makes
/// the dependence structure size-dependent, so plans built from the
/// shape are speculative: static planning covers only the
/// parameter-free hull, and the runtime inspector must certify each
/// concrete valuation before parallel execution. A parameter in a body
/// *expression* (a computed value) or a `step` clause is still a parse
/// error. `step` clauses are normalized away as usual.
pub fn parse_loop_symbolic(src: &str, params: &[&str]) -> Result<LoopNest> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        src_len: src.len(),
        params: HashMap::new(),
        symbolic: params.iter().map(|s| s.to_string()).collect(),
        index_names: Vec::new(),
        headers: Vec::new(),
        arrays: Vec::new(),
    };
    let stepped = p.parse_nest()?;
    crate::normalize::normalize(&stepped)
}

/// Parse an **imperfect** nest: at every level, statements may appear
/// before and after the (single) nested loop. The result is an
/// [`ImperfectNest`]; lower it to perfect kernels with
/// [`crate::normalize::to_perfect_kernels`] (or, when every level's
/// inner loop is provably non-empty, to one guarded perfect nest with
/// [`crate::normalize::sink_fully`]).
///
/// Imperfect sources are concrete-only and unit-stride (`step` clauses
/// and symbolic parameters are rejected); a level with more than one
/// nested loop — a loop *tree* — is a parse error.
///
/// ```
/// use pdm_loopir::parse::parse_imperfect;
/// let imp = parse_imperfect(
///     "for i = 1..=8 {
///        A[i, 0] = i;                              # pre: init the row edge
///        for j = 1..=8 { A[i, j] = A[i - 1, j] + A[i, j - 1]; }
///        A[i, 8] = A[i, 8] + 1;                    # post: row epilogue
///      }",
/// ).unwrap();
/// assert_eq!(imp.depth(), 2);
/// assert_eq!(imp.pre(0).len(), 1);
/// assert_eq!(imp.post(0).len(), 1);
/// ```
pub fn parse_imperfect(src: &str) -> Result<ImperfectNest> {
    let tokens = lex(src)?;
    // Pre-scan the loop spine for every index name, so statements at any
    // level parse with full-depth accesses (the representation invariant
    // of `ImperfectNest`).
    let mut names: Vec<String> = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if !matches!(t.tok, Tok::For) {
            continue;
        }
        match tokens.get(i + 1).map(|t| &t.tok) {
            Some(Tok::Ident(s)) => {
                if names.contains(s) {
                    return Err(IrError::Parse {
                        at: tokens[i + 1].at,
                        msg: format!("duplicate loop index '{s}'"),
                    });
                }
                names.push(s.clone());
            }
            _ => {
                return Err(IrError::Parse {
                    at: t.at,
                    msg: "expected loop index name after 'for'".into(),
                })
            }
        }
    }
    if names.is_empty() {
        return Err(IrError::Parse {
            at: 0,
            msg: "expected 'for'".into(),
        });
    }
    let mut p = Parser {
        tokens,
        pos: 0,
        src_len: src.len(),
        params: HashMap::new(),
        symbolic: Vec::new(),
        index_names: names,
        headers: Vec::new(),
        arrays: Vec::new(),
    };
    p.parse_imperfect_nest()
}

/// [`parse_loop_stepped`] with parameters.
pub fn parse_loop_stepped_with(
    src: &str,
    params: &[(&str, i64)],
) -> Result<crate::normalize::SteppedNest> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        src_len: src.len(),
        params: params.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        symbolic: Vec::new(),
        index_names: Vec::new(),
        headers: Vec::new(),
        arrays: Vec::new(),
    };
    p.parse_nest()
}

// ----------------------------- lexer -----------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(i64),
    For,
    Assign,
    EqEq,
    DotDot,
    DotDotEq,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    LParen,
    RParen,
    Comma,
    Semi,
    Plus,
    Minus,
    Star,
    Eof,
}

#[derive(Debug, Clone)]
struct Token {
    tok: Tok,
    at: usize,
}

fn lex(src: &str) -> Result<Vec<Token>> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '{' => {
                out.push(Token {
                    tok: Tok::LBrace,
                    at: i,
                });
                i += 1;
            }
            '}' => {
                out.push(Token {
                    tok: Tok::RBrace,
                    at: i,
                });
                i += 1;
            }
            '[' => {
                out.push(Token {
                    tok: Tok::LBracket,
                    at: i,
                });
                i += 1;
            }
            ']' => {
                out.push(Token {
                    tok: Tok::RBracket,
                    at: i,
                });
                i += 1;
            }
            '(' => {
                out.push(Token {
                    tok: Tok::LParen,
                    at: i,
                });
                i += 1;
            }
            ')' => {
                out.push(Token {
                    tok: Tok::RParen,
                    at: i,
                });
                i += 1;
            }
            ',' => {
                out.push(Token {
                    tok: Tok::Comma,
                    at: i,
                });
                i += 1;
            }
            ';' => {
                out.push(Token {
                    tok: Tok::Semi,
                    at: i,
                });
                i += 1;
            }
            '+' => {
                out.push(Token {
                    tok: Tok::Plus,
                    at: i,
                });
                i += 1;
            }
            '-' => {
                out.push(Token {
                    tok: Tok::Minus,
                    at: i,
                });
                i += 1;
            }
            '*' => {
                out.push(Token {
                    tok: Tok::Star,
                    at: i,
                });
                i += 1;
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token {
                        tok: Tok::EqEq,
                        at: i,
                    });
                    i += 2;
                } else {
                    out.push(Token {
                        tok: Tok::Assign,
                        at: i,
                    });
                    i += 1;
                }
            }
            '.' => {
                if bytes.get(i + 1) == Some(&b'.') {
                    if bytes.get(i + 2) == Some(&b'=') {
                        out.push(Token {
                            tok: Tok::DotDotEq,
                            at: i,
                        });
                        i += 3;
                    } else {
                        out.push(Token {
                            tok: Tok::DotDot,
                            at: i,
                        });
                        i += 2;
                    }
                } else {
                    return Err(IrError::Parse {
                        at: i,
                        msg: "unexpected '.'".into(),
                    });
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let v: i64 = text.parse().map_err(|_| IrError::Parse {
                    at: start,
                    msg: format!("integer literal '{text}' out of range"),
                })?;
                out.push(Token {
                    tok: Tok::Int(v),
                    at: start,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let text = &src[start..i];
                let tok = if text == "for" {
                    Tok::For
                } else {
                    Tok::Ident(text.to_string())
                };
                out.push(Token { tok, at: start });
            }
            other => {
                return Err(IrError::Parse {
                    at: i,
                    msg: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        at: src.len(),
    });
    Ok(out)
}

// ----------------------- linear-form sub-parser -------------------------

/// A linear form over *named* variables plus a constant; converted to an
/// [`AffineExpr`] once the loop depth is known.
#[derive(Debug, Clone, Default)]
struct LinForm {
    coeffs: HashMap<String, i64>,
    constant: i64,
}

impl LinForm {
    fn constant(c: i64) -> Self {
        LinForm {
            coeffs: HashMap::new(),
            constant: c,
        }
    }
    fn var(name: &str) -> Self {
        let mut coeffs = HashMap::new();
        coeffs.insert(name.to_string(), 1);
        LinForm {
            coeffs,
            constant: 0,
        }
    }
    fn add(mut self, other: &LinForm, sign: i64) -> Self {
        for (k, v) in &other.coeffs {
            *self.coeffs.entry(k.clone()).or_insert(0) += sign * v;
        }
        self.constant += sign * other.constant;
        self
    }
    fn scale(mut self, k: i64) -> Self {
        for v in self.coeffs.values_mut() {
            *v *= k;
        }
        self.constant *= k;
        self
    }
    fn is_const(&self) -> bool {
        self.coeffs.values().all(|&v| v == 0)
    }
}

// ------------------------------ parser ----------------------------------

struct Header {
    name: String,
    lo: LinForm,
    hi: LinForm,
    inclusive: bool,
    step: i64,
    at: usize,
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    src_len: usize,
    /// Concrete parameters, substituted wherever they occur.
    params: HashMap<String, i64>,
    /// Symbolic parameters, kept as bound columns (ordered; defines the
    /// column layout of the resulting nest's bound expressions).
    symbolic: Vec<String>,
    index_names: Vec<String>,
    headers: Vec<Header>,
    arrays: Vec<ArrayDecl>,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }
    fn at(&self) -> usize {
        self.tokens[self.pos].at
    }
    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.pos].tok.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }
    fn expect(&mut self, want: Tok, what: &str) -> Result<()> {
        if std::mem::discriminant(self.peek()) == std::mem::discriminant(&want) {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {what}, found {:?}", self.peek())))
        }
    }
    fn err(&self, msg: String) -> IrError {
        IrError::Parse {
            at: self.at().min(self.src_len),
            msg,
        }
    }

    fn parse_nest(&mut self) -> Result<crate::normalize::SteppedNest> {
        // Collect nested 'for' headers.
        self.parse_for_header()?;
        while matches!(self.peek(), Tok::For) {
            self.parse_for_header()?;
        }
        // Body statements.
        let mut body = Vec::new();
        while !matches!(self.peek(), Tok::RBrace | Tok::Eof) {
            body.push(self.parse_statement()?);
        }
        if body.is_empty() {
            return Err(self.err("loop body has no statements".into()));
        }
        // Closing braces, one per loop level.
        for _ in 0..self.headers.len() {
            self.expect(Tok::RBrace, "'}'")?;
        }
        if !matches!(self.peek(), Tok::Eof) {
            return Err(self.err("trailing input after loop nest".into()));
        }

        // Convert headers to affine bounds (index columns first, one
        // trailing column per symbolic parameter).
        let n = self.index_names.len();
        let mut lower = Vec::with_capacity(n);
        let mut upper = Vec::with_capacity(n);
        for k in 0..n {
            let h = &self.headers[k];
            let lo = self.lin_to_affine(&h.lo, n, Some(k), true, h.at)?;
            let mut hi = self.lin_to_affine(&h.hi, n, Some(k), true, h.at)?;
            if !h.inclusive {
                // a..b means <= b-1.
                hi.constant -= 1;
            }
            lower.push(lo);
            upper.push(hi);
        }

        let steps: Vec<i64> = self.headers.iter().map(|h| h.step).collect();
        let nest = LoopNest::new_symbolic(
            self.index_names.clone(),
            self.symbolic.clone(),
            lower,
            upper,
            std::mem::take(&mut self.arrays),
            body,
        )?;
        Ok(crate::normalize::SteppedNest { nest, steps })
    }

    /// Parse the whole pre-scanned imperfect spine.
    fn parse_imperfect_nest(&mut self) -> Result<ImperfectNest> {
        let n = self.index_names.len();
        let mut pre = vec![Vec::new(); n - 1];
        let mut post = vec![Vec::new(); n - 1];
        let mut body = Vec::new();
        self.parse_imperfect_header(0)?;
        self.parse_imperfect_level(0, &mut pre, &mut post, &mut body)?;
        if !matches!(self.peek(), Tok::Eof) {
            return Err(self.err("trailing input after loop nest".into()));
        }
        let mut lower = Vec::with_capacity(n);
        let mut upper = Vec::with_capacity(n);
        for k in 0..n {
            let h = &self.headers[k];
            let lo = self.lin_to_affine(&h.lo, n, Some(k), false, h.at)?;
            let mut hi = self.lin_to_affine(&h.hi, n, Some(k), false, h.at)?;
            if !h.inclusive {
                hi.constant -= 1;
            }
            lower.push(lo);
            upper.push(hi);
        }
        ImperfectNest::new(
            self.index_names.clone(),
            lower,
            upper,
            std::mem::take(&mut self.arrays),
            pre,
            post,
            body,
        )
    }

    /// One `for` header of the imperfect spine; the index name must match
    /// the pre-scanned name of `level` (a mismatch means the source is a
    /// loop tree, not a nest).
    fn parse_imperfect_header(&mut self, level: usize) -> Result<()> {
        let at = self.at();
        self.expect(Tok::For, "'for'")?;
        let name = match self.bump() {
            Tok::Ident(s) => s,
            _ => return Err(self.err("expected loop index name".into())),
        };
        if name != self.index_names[level] {
            return Err(IrError::Parse {
                at,
                msg: format!(
                    "imperfect nests must form a single loop spine: expected loop '{}'",
                    self.index_names[level]
                ),
            });
        }
        self.expect(Tok::Assign, "'='")?;
        let lo = self.parse_linform()?;
        let inclusive = match self.bump() {
            Tok::DotDot => false,
            Tok::DotDotEq => true,
            _ => return Err(self.err("expected '..' or '..='".into())),
        };
        let hi = self.parse_linform()?;
        if matches!(self.peek(), Tok::Ident(w) if w == "step") {
            return Err(self.err("step clauses are not supported in imperfect nests".into()));
        }
        self.expect(Tok::LBrace, "'{'")?;
        self.headers.push(Header {
            name,
            lo,
            hi,
            inclusive,
            step: 1,
            at,
        });
        Ok(())
    }

    /// Items of one imperfect level, up to and including its `}`:
    /// statements before the nested loop are `pre`, after it `post`;
    /// innermost statements are the body.
    fn parse_imperfect_level(
        &mut self,
        level: usize,
        pre: &mut [Vec<Statement>],
        post: &mut [Vec<Statement>],
        body: &mut Vec<Statement>,
    ) -> Result<()> {
        let n = self.index_names.len();
        let innermost = level + 1 == n;
        let mut seen_inner = false;
        let mut local_pre = Vec::new();
        let mut local_post = Vec::new();
        loop {
            match self.peek() {
                Tok::RBrace => break,
                Tok::Eof => return Err(self.err("unexpected end of input (missing '}')".into())),
                Tok::For => {
                    if innermost || seen_inner {
                        return Err(self.err(
                            "a level may contain at most one nested loop \
                             (loop trees are not supported)"
                                .into(),
                        ));
                    }
                    seen_inner = true;
                    self.parse_imperfect_header(level + 1)?;
                    self.parse_imperfect_level(level + 1, pre, post, body)?;
                }
                _ => {
                    let stmt = self.parse_statement()?;
                    if innermost {
                        body.push(stmt);
                    } else if seen_inner {
                        local_post.push(stmt);
                    } else {
                        local_pre.push(stmt);
                    }
                }
            }
        }
        self.expect(Tok::RBrace, "'}'")?;
        if innermost {
            if body.is_empty() {
                return Err(self.err("innermost loop body has no statements".into()));
            }
        } else {
            if !seen_inner {
                return Err(self.err(format!(
                    "level '{}' is missing its nested loop '{}'",
                    self.index_names[level],
                    self.index_names[level + 1]
                )));
            }
            pre[level] = local_pre;
            post[level] = local_post;
        }
        Ok(())
    }

    fn parse_for_header(&mut self) -> Result<()> {
        let at = self.at();
        self.expect(Tok::For, "'for'")?;
        let name = match self.bump() {
            Tok::Ident(s) => s,
            _ => return Err(self.err("expected loop index name".into())),
        };
        if self.index_names.contains(&name) {
            return Err(self.err(format!("duplicate loop index '{name}'")));
        }
        if self.params.contains_key(&name) || self.symbolic.contains(&name) {
            return Err(self.err(format!("loop index '{name}' shadows a parameter")));
        }
        self.expect(Tok::Assign, "'='")?;
        let lo = self.parse_linform()?;
        let inclusive = match self.bump() {
            Tok::DotDot => false,
            Tok::DotDotEq => true,
            _ => return Err(self.err("expected '..' or '..='".into())),
        };
        let hi = self.parse_linform()?;
        // Optional `step <positive constant>` clause.
        let mut step = 1i64;
        if let Tok::Ident(word) = self.peek() {
            if word == "step" {
                self.bump();
                let lf = self.parse_linform()?;
                step = self.lin_const(&lf)?;
                if step < 1 {
                    return Err(self.err(format!("step must be positive, got {step}")));
                }
            }
        }
        self.expect(Tok::LBrace, "'{'")?;
        self.index_names.push(name.clone());
        self.headers.push(Header {
            name,
            lo,
            hi,
            inclusive,
            step,
            at,
        });
        Ok(())
    }

    /// Evaluate a linear form that must be constant (params resolved).
    fn lin_const(&self, lf: &LinForm) -> Result<i64> {
        let mut c = lf.constant;
        for (name, &coef) in &lf.coeffs {
            if coef == 0 {
                continue;
            }
            match self.params.get(name) {
                Some(&v) => c += coef * v,
                None => {
                    return Err(self.err(format!("'{name}' is not a constant in a step clause")))
                }
            }
        }
        Ok(c)
    }

    /// Convert a named linear form to an [`AffineExpr`] over the loop
    /// indices (plus, when `allow_params`, the symbolic parameter
    /// columns). `bound_level` restricts which indices may appear (only
    /// strictly-outer ones for a bound at that level; `None` = all).
    /// Symbolic parameters outside a bound or subscript position (guard
    /// values, `step` clauses) are rejected — those must stay
    /// valuation-independent.
    fn lin_to_affine(
        &self,
        lf: &LinForm,
        n: usize,
        bound_level: Option<usize>,
        allow_params: bool,
        at: usize,
    ) -> Result<AffineExpr> {
        let width = if allow_params {
            n + self.symbolic.len()
        } else {
            n
        };
        let mut coeffs = IVec::zeros(width);
        let mut constant = lf.constant;
        for (name, &c) in &lf.coeffs {
            if c == 0 {
                continue;
            }
            if let Some(k) = self.index_names.iter().position(|x| x == name) {
                if let Some(level) = bound_level {
                    if k >= level {
                        return Err(IrError::Parse {
                            at,
                            msg: format!(
                                "bound of loop '{}' may not use index '{name}'",
                                self.headers
                                    .get(level)
                                    .map(|h| h.name.as_str())
                                    .unwrap_or("?")
                            ),
                        });
                    }
                }
                coeffs[k] += c;
            } else if let Some(&v) = self.params.get(name) {
                constant += c * v;
            } else if let Some(j) = self.symbolic.iter().position(|x| x == name) {
                if !allow_params {
                    return Err(IrError::Parse {
                        at,
                        msg: format!("symbolic parameter '{name}' may only appear in loop bounds"),
                    });
                }
                coeffs[n + j] += c;
            } else {
                return Err(IrError::Parse {
                    at,
                    msg: format!("unknown identifier '{name}' in affine position"),
                });
            }
        }
        Ok(AffineExpr::new(coeffs, constant))
    }

    // linform := lterm (('+'|'-') lterm)*
    fn parse_linform(&mut self) -> Result<LinForm> {
        let mut acc = self.parse_lterm()?;
        loop {
            match self.peek() {
                Tok::Plus => {
                    self.bump();
                    let t = self.parse_lterm()?;
                    acc = acc.add(&t, 1);
                }
                Tok::Minus => {
                    self.bump();
                    let t = self.parse_lterm()?;
                    acc = acc.add(&t, -1);
                }
                _ => return Ok(acc),
            }
        }
    }

    // lterm := lunary ('*' lunary)*   -- at most one non-constant side
    fn parse_lterm(&mut self) -> Result<LinForm> {
        let mut acc = self.parse_lunary()?;
        while matches!(self.peek(), Tok::Star) {
            let at = self.at();
            self.bump();
            let rhs = self.parse_lunary()?;
            acc = if rhs.is_const() {
                acc.scale(rhs.constant)
            } else if acc.is_const() {
                rhs.scale(acc.constant)
            } else {
                return Err(IrError::Parse {
                    at,
                    msg: "product of two non-constant terms is not affine".into(),
                });
            };
        }
        Ok(acc)
    }

    fn parse_lunary(&mut self) -> Result<LinForm> {
        match self.peek().clone() {
            Tok::Minus => {
                self.bump();
                Ok(self.parse_lunary()?.scale(-1))
            }
            Tok::Int(v) => {
                self.bump();
                Ok(LinForm::constant(v))
            }
            Tok::Ident(name) => {
                self.bump();
                Ok(LinForm::var(&name))
            }
            Tok::LParen => {
                self.bump();
                let inner = self.parse_linform()?;
                self.expect(Tok::RParen, "')'")?;
                Ok(inner)
            }
            other => Err(self.err(format!("expected affine term, found {other:?}"))),
        }
    }

    // ------------------------- statements --------------------------------

    fn parse_statement(&mut self) -> Result<Statement> {
        let name = match self.bump() {
            Tok::Ident(s) => s,
            other => return Err(self.err(format!("expected array name, found {other:?}"))),
        };
        let subs = self.parse_subscripts()?;
        let lhs = self.make_ref(&name, subs)?;
        self.expect(Tok::Assign, "'='")?;
        let rhs = self.parse_expr()?;
        let mut guards = Vec::new();
        if matches!(self.peek(), Tok::Ident(w) if w == "when") {
            self.bump();
            loop {
                guards.push(self.parse_guard()?);
                if matches!(self.peek(), Tok::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::Semi, "';'")?;
        Ok(Statement { lhs, rhs, guards })
    }

    /// One `IDENT == affine` equality of a `when` clause. The guarded
    /// identifier must be a loop index; the value is an affine form over
    /// the indices (outer-only discipline is enforced by nest
    /// validation, where the guard's host level is known).
    fn parse_guard(&mut self) -> Result<crate::stmt::IndexGuard> {
        let at = self.at();
        let name = match self.bump() {
            Tok::Ident(s) => s,
            other => return Err(self.err(format!("expected guard index, found {other:?}"))),
        };
        let Some(index) = self.index_names.iter().position(|x| x == &name) else {
            return Err(IrError::Parse {
                at,
                msg: format!("'{name}' in a when clause is not a loop index"),
            });
        };
        self.expect(Tok::EqEq, "'=='")?;
        let at = self.at();
        let lf = self.parse_linform()?;
        let value = self.lin_to_affine(&lf, self.index_names.len(), None, false, at)?;
        Ok(crate::stmt::IndexGuard { index, value })
    }

    fn parse_subscripts(&mut self) -> Result<Vec<LinForm>> {
        self.expect(Tok::LBracket, "'['")?;
        let mut subs = vec![self.parse_linform()?];
        while matches!(self.peek(), Tok::Comma) {
            self.bump();
            subs.push(self.parse_linform()?);
        }
        self.expect(Tok::RBracket, "']'")?;
        Ok(subs)
    }

    fn make_ref(&mut self, name: &str, subs: Vec<LinForm>) -> Result<ArrayRef> {
        let at = self.at();
        let n = self.index_names.len();
        let m = subs.len();
        // Register or check the array.
        let id = if let Some(pos) = self.arrays.iter().position(|a| a.name == name) {
            if self.arrays[pos].dims != m {
                return Err(IrError::Parse {
                    at,
                    msg: format!(
                        "array '{name}' used with {m} subscripts, earlier with {}",
                        self.arrays[pos].dims
                    ),
                });
            }
            pos
        } else {
            self.arrays.push(ArrayDecl {
                name: name.to_string(),
                dims: m,
            });
            self.arrays.len() - 1
        };
        // Subscripts may read symbolic parameters: the coefficients
        // split into index rows (the hull static planning sees) and
        // parameter rows (folded in per valuation; audited at runtime
        // by the inspector). `with_params` drops an all-zero parameter
        // block, so parameter-free subscripts build the same access as
        // before.
        let p = self.symbolic.len();
        let mut mat = IMat::zeros(n, m);
        let mut par = IMat::zeros(p, m);
        let mut off = IVec::zeros(m);
        for (j, lf) in subs.iter().enumerate() {
            let ae = self.lin_to_affine(lf, n, None, true, at)?;
            for k in 0..n {
                mat.set(k, j, ae.coeff(k));
            }
            for k in 0..p {
                par.set(k, j, ae.coeff(n + k));
            }
            off[j] = ae.constant;
        }
        Ok(ArrayRef {
            array: ArrayId(id),
            access: AffineAccess::with_params(mat, par, off)?,
        })
    }

    // expr := term (('+'|'-') term)*
    fn parse_expr(&mut self) -> Result<Expr> {
        let mut acc = self.parse_term()?;
        loop {
            match self.peek() {
                Tok::Plus => {
                    self.bump();
                    acc = Expr::add(acc, self.parse_term()?);
                }
                Tok::Minus => {
                    self.bump();
                    acc = Expr::sub(acc, self.parse_term()?);
                }
                _ => return Ok(acc),
            }
        }
    }

    fn parse_term(&mut self) -> Result<Expr> {
        let mut acc = self.parse_unary()?;
        while matches!(self.peek(), Tok::Star) {
            self.bump();
            acc = Expr::mul(acc, self.parse_unary()?);
        }
        Ok(acc)
    }

    fn parse_unary(&mut self) -> Result<Expr> {
        match self.peek().clone() {
            Tok::Minus => {
                self.bump();
                Ok(Expr::Neg(Box::new(self.parse_unary()?)))
            }
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::Const(v))
            }
            Tok::LParen => {
                self.bump();
                let e = self.parse_expr()?;
                self.expect(Tok::RParen, "')'")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                self.bump();
                if matches!(self.peek(), Tok::LBracket) {
                    let subs = self.parse_subscripts()?;
                    Ok(Expr::Read(self.make_ref(&name, subs)?))
                } else if let Some(k) = self.index_names.iter().position(|x| x == &name) {
                    Ok(Expr::Index(k))
                } else if let Some(&v) = self.params.get(&name) {
                    Ok(Expr::Const(v))
                } else if self.symbolic.contains(&name) {
                    Err(self.err(format!(
                        "symbolic parameter '{name}' may only appear in loop bounds"
                    )))
                } else {
                    Err(self.err(format!("unknown identifier '{name}' in expression")))
                }
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_41() {
        let nest = parse_loop(
            "for i1 = 0..=9 { for i2 = 0..=9 {
               A[i1 + i2, 3*i1 + i2 + 3] = A[i1 + i2 + 1, i1 + 2*i2] + 1;
             } }",
        )
        .unwrap();
        assert_eq!(nest.depth(), 2);
        assert_eq!(nest.arrays().len(), 1);
        assert_eq!(nest.arrays()[0].dims, 2);
        let w = &nest.body()[0].lhs;
        assert_eq!(w.access.matrix.get(0, 1), 3); // coefficient of i1 in subscript 2
        assert_eq!(w.access.offset.as_slice(), &[0, 3]);
    }

    #[test]
    fn parses_paper_42() {
        let nest = parse_loop(
            "for i1 = 0..=9 { for i2 = 0..=9 {
               B[2*i1 + 2, i1 + i2 + 1] = A[2*i1, i1 + i2] + 1;
               A[2*i1 + 1, i1 + i2 + 2] = B[2*i1, i1 + i2] + 2;
             } }",
        )
        .unwrap();
        assert_eq!(nest.body().len(), 2);
        assert_eq!(nest.arrays().len(), 2);
    }

    #[test]
    fn exclusive_and_inclusive_ranges() {
        let ex = parse_loop("for i = 0..10 { A[i] = 0; }").unwrap();
        assert_eq!(ex.iterations().unwrap().len(), 10);
        let inc = parse_loop("for i = 0..=10 { A[i] = 0; }").unwrap();
        assert_eq!(inc.iterations().unwrap().len(), 11);
    }

    #[test]
    fn parameters_substitute() {
        let nest = parse_loop_with("for i = 1..=N { A[i] = A[i - 1] + N; }", &[("N", 5)]).unwrap();
        assert_eq!(nest.iterations().unwrap().len(), 5);
        // N inside the body becomes the constant 5.
        assert!(format!("{:?}", nest.body()[0].rhs).contains("Const(5)"));
    }

    #[test]
    fn symbolic_params_stay_in_bounds() {
        let nest = parse_loop_symbolic(
            "for i = 0..=N { for j = 0..=i { A[i, j] = A[j, i] + 1; } }",
            &["N"],
        )
        .unwrap();
        assert!(nest.is_symbolic());
        assert_eq!(nest.param_names(), &["N".to_string()]);
        // Bound exprs carry 3 columns: i, j, N.
        assert_eq!(nest.upper(0).dim(), 3);
        assert_eq!(nest.upper(0).coeff(2), 1);
        let conc = nest.substitute(&[("N", 4)]).unwrap();
        assert_eq!(conc.iterations().unwrap().len(), 15);
    }

    #[test]
    fn symbolic_multi_param_bounds() {
        let nest =
            parse_loop_symbolic("for i = M..=N { A[i] = A[i - 1] + 1; }", &["N", "M"]).unwrap();
        let conc = nest.substitute(&[("M", 2), ("N", 6)]).unwrap();
        assert_eq!(conc.iterations().unwrap().len(), 5);
    }

    #[test]
    fn symbolic_param_rejected_outside_bounds_and_subscripts() {
        // In a body expression (a computed value, not an address).
        assert!(parse_loop_symbolic("for i = 0..=9 { A[i] = N; }", &["N"]).is_err());
        // In a step clause.
        assert!(parse_loop_symbolic("for i = 0..=9 step N { A[i] = 1; }", &["N"]).is_err());
        // Shadowing a loop index.
        assert!(parse_loop_symbolic("for N = 0..=9 { A[N] = 1; }", &["N"]).is_err());
    }

    #[test]
    fn symbolic_param_in_subscript_parses_parametrically() {
        let shape =
            parse_loop_symbolic("for i = 0..=9 { A[i + 2*N] = A[i] + 1; }", &["N"]).unwrap();
        assert!(shape.has_parametric_accesses());
        let lhs = &shape.body()[0].lhs.access;
        assert!(lhs.is_parametric());
        assert_eq!(lhs.params.rows(), 1);
        assert_eq!(lhs.params.get(0, 0), 2);
        // Evaluation is refused until substitution makes it concrete.
        assert!(lhs.eval(&pdm_matrix::vec::IVec::from_slice(&[3])).is_err());
        // Substitution folds 2·N into the offset and agrees with the
        // substituting parser.
        for n in [0i64, 3, -1] {
            let a = shape.substitute(&[("N", n)]).unwrap();
            let b =
                parse_loop_with("for i = 0..=9 { A[i + 2*N] = A[i] + 1; }", &[("N", n)]).unwrap();
            assert_eq!(a, b, "N={n}");
            assert!(!a.has_parametric_accesses());
        }
        // A parameter-free subscript still builds the canonical
        // (zero-row) access, so old shapes hash identically.
        let plain = parse_loop_symbolic("for i = 0..=N { A[i + 2] = A[i] + 1; }", &["N"]).unwrap();
        assert!(!plain.has_parametric_accesses());
        assert!(!plain.body()[0].lhs.access.is_parametric());
    }

    #[test]
    fn symbolic_and_substituted_parses_agree() {
        let src = "for i = 1..N { for j = 0..=i { A[i, j] = A[i - 1, j] + 1; } }";
        let sym = parse_loop_symbolic(src, &["N"]).unwrap();
        for n in [1i64, 2, 7, 12] {
            let a = sym.substitute(&[("N", n)]).unwrap();
            let b = parse_loop_with(src, &[("N", n)]).unwrap();
            assert_eq!(a, b, "N={n}");
        }
    }

    #[test]
    fn triangular_bounds_parse() {
        let nest = parse_loop("for i = 0..=4 { for j = 0..=i { A[i, j] = 1; } }").unwrap();
        assert_eq!(nest.iterations().unwrap().len(), 15);
    }

    #[test]
    fn bound_using_inner_index_rejected() {
        let err = parse_loop("for i = 0..=j { for j = 0..=3 { A[i] = 0; } }");
        assert!(err.is_err());
    }

    #[test]
    fn nonlinear_subscript_rejected() {
        let err = parse_loop("for i = 0..=3 { A[i * i] = 0; }");
        assert!(matches!(err, Err(IrError::Parse { .. })));
    }

    #[test]
    fn inconsistent_array_arity_rejected() {
        let err = parse_loop("for i = 0..=3 { A[i] = A[i, i] + 1; }");
        assert!(err.is_err());
    }

    #[test]
    fn comments_and_whitespace() {
        let nest = parse_loop(
            "# the paper's simplest example\nfor i = 0..=3 {\n  A[2*i] = A[i] + 1; # doubling\n}",
        )
        .unwrap();
        assert_eq!(nest.depth(), 1);
    }

    #[test]
    fn error_positions_reported() {
        let err = parse_loop("for i = 0..=3 { A[i] = @; }");
        match err {
            Err(IrError::Parse { at, .. }) => assert!(at > 0),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_index_rejected() {
        assert!(parse_loop("for i = 0..2 { for i = 0..2 { A[i] = 0; } }").is_err());
    }

    #[test]
    fn negative_and_parenthesized_bounds() {
        let nest = parse_loop("for i = -3..=(2 + 1) { A[i + 3] = 1; }").unwrap();
        let its = nest.iterations().unwrap();
        assert_eq!(its.len(), 7);
        assert_eq!(its[0].as_slice(), &[-3]);
        assert_eq!(its[6].as_slice(), &[3]);
    }

    #[test]
    fn body_expression_shapes() {
        let nest = parse_loop("for i = 1..=4 { A[i] = 2 * A[i - 1] - (A[i] + i) * 3; }").unwrap();
        let mut reads = Vec::new();
        nest.body()[0].rhs.reads(&mut reads);
        assert_eq!(reads.len(), 2);
    }

    #[test]
    fn empty_body_rejected() {
        assert!(parse_loop("for i = 0..=3 { }").is_err());
    }
}
