//! Exact affine expressions `a·x + c` over a fixed variable set.

use pdm_matrix::num::{cadd, cmul, cmuladd};
use pdm_matrix::vec::IVec;
use pdm_matrix::{MatrixError, Result};
use std::fmt;

/// An affine form `coeffs · x + constant` over `dim` integer variables.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AffineExpr {
    /// Per-variable coefficients.
    pub coeffs: IVec,
    /// Constant term.
    pub constant: i64,
}

impl AffineExpr {
    /// The constant expression `c` over `dim` variables.
    pub fn constant(dim: usize, c: i64) -> Self {
        AffineExpr {
            coeffs: IVec::zeros(dim),
            constant: c,
        }
    }

    /// The single variable `x_i`.
    pub fn var(dim: usize, i: usize) -> Self {
        AffineExpr {
            coeffs: IVec::unit(dim, i),
            constant: 0,
        }
    }

    /// Build from parts.
    pub fn new(coeffs: IVec, constant: i64) -> Self {
        AffineExpr { coeffs, constant }
    }

    /// Number of variables in scope.
    pub fn dim(&self) -> usize {
        self.coeffs.dim()
    }

    /// Is the expression a constant (all coefficients zero)?
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_zero()
    }

    /// Evaluate at an integer point.
    pub fn eval(&self, x: &[i64]) -> Result<i64> {
        if x.len() != self.dim() {
            return Err(MatrixError::DimMismatch {
                op: "AffineExpr::eval",
                lhs: (1, self.dim()),
                rhs: (1, x.len()),
            });
        }
        let acc: i128 = self
            .coeffs
            .iter()
            .zip(x)
            .map(|(&a, &b)| a as i128 * b as i128)
            .sum::<i128>()
            + self.constant as i128;
        i64::try_from(acc).map_err(|_| MatrixError::Overflow)
    }

    /// Sum of two expressions.
    pub fn add(&self, other: &AffineExpr) -> Result<AffineExpr> {
        Ok(AffineExpr {
            coeffs: self.coeffs.add(&other.coeffs)?,
            constant: cadd(self.constant, other.constant)?,
        })
    }

    /// Difference.
    pub fn sub(&self, other: &AffineExpr) -> Result<AffineExpr> {
        Ok(AffineExpr {
            coeffs: self.coeffs.sub(&other.coeffs)?,
            constant: pdm_matrix::num::csub(self.constant, other.constant)?,
        })
    }

    /// Scale by `k`.
    pub fn scale(&self, k: i64) -> Result<AffineExpr> {
        Ok(AffineExpr {
            coeffs: self.coeffs.scale(k)?,
            constant: cmul(self.constant, k)?,
        })
    }

    /// `self + k · other`.
    pub fn add_scaled(&self, k: i64, other: &AffineExpr) -> Result<AffineExpr> {
        Ok(AffineExpr {
            coeffs: self.coeffs.add_scaled(k, &other.coeffs)?,
            constant: cmuladd(self.constant, k, other.constant)?,
        })
    }

    /// Coefficient of variable `i`.
    pub fn coeff(&self, i: usize) -> i64 {
        self.coeffs[i]
    }

    /// Replace variable `i` by the affine expression `repl` (over the same
    /// variable set, with `repl.coeff(i) == 0`); the coefficient of `i`
    /// becomes zero.
    pub fn substitute(&self, i: usize, repl: &AffineExpr) -> Result<AffineExpr> {
        let k = self.coeffs[i];
        let mut out = self.clone();
        out.coeffs[i] = 0;
        if k != 0 {
            out = out.add_scaled(k, repl)?;
        }
        Ok(out)
    }

    /// Extend the variable set to `new_dim` (new variables get coefficient
    /// zero). Existing variables keep their indices.
    pub fn extend_dim(&self, new_dim: usize) -> AffineExpr {
        assert!(new_dim >= self.dim());
        let mut coeffs = self.coeffs.0.clone();
        coeffs.resize(new_dim, 0);
        AffineExpr {
            coeffs: IVec(coeffs),
            constant: self.constant,
        }
    }

    /// Render with the given variable names.
    pub fn display_with(&self, names: &[String]) -> String {
        let mut parts: Vec<String> = Vec::new();
        for (i, &c) in self.coeffs.iter().enumerate() {
            let name = names.get(i).cloned().unwrap_or_else(|| format!("x{i}"));
            match c {
                0 => {}
                1 => parts.push(name),
                -1 => parts.push(format!("-{name}")),
                _ => parts.push(format!("{c}*{name}")),
            }
        }
        if self.constant != 0 || parts.is_empty() {
            parts.push(self.constant.to_string());
        }
        let mut out = String::new();
        for (k, p) in parts.iter().enumerate() {
            if k == 0 {
                out.push_str(p);
            } else if let Some(stripped) = p.strip_prefix('-') {
                out.push_str(" - ");
                out.push_str(stripped);
            } else {
                out.push_str(" + ");
                out.push_str(p);
            }
        }
        out
    }
}

impl fmt::Display for AffineExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<String> = (0..self.dim()).map(|i| format!("x{i}")).collect();
        write!(f, "{}", self.display_with(&names))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_basic() {
        // 2*x0 - x1 + 3
        let e = AffineExpr::new(IVec::from_slice(&[2, -1]), 3);
        assert_eq!(e.eval(&[5, 4]).unwrap(), 9);
        assert_eq!(e.eval(&[0, 0]).unwrap(), 3);
        assert!(e.eval(&[1]).is_err());
    }

    #[test]
    fn constructors() {
        let c = AffineExpr::constant(3, 7);
        assert!(c.is_constant());
        assert_eq!(c.eval(&[9, 9, 9]).unwrap(), 7);
        let v = AffineExpr::var(3, 1);
        assert_eq!(v.eval(&[4, 5, 6]).unwrap(), 5);
    }

    #[test]
    fn arithmetic() {
        let a = AffineExpr::new(IVec::from_slice(&[1, 2]), 3);
        let b = AffineExpr::new(IVec::from_slice(&[0, 1]), -1);
        assert_eq!(a.add(&b).unwrap().eval(&[2, 3]).unwrap(), 13);
        assert_eq!(a.sub(&b).unwrap().eval(&[2, 3]).unwrap(), 9);
        assert_eq!(a.scale(-2).unwrap().eval(&[2, 3]).unwrap(), -22);
        assert_eq!(a.add_scaled(3, &b).unwrap().eval(&[2, 3]).unwrap(), 17);
    }

    #[test]
    fn substitution_eliminates_variable() {
        // e = x0 + 2*x1; substitute x1 := x0 - 1  =>  3*x0 - 2.
        let e = AffineExpr::new(IVec::from_slice(&[1, 2]), 0);
        let repl = AffineExpr::new(IVec::from_slice(&[1, 0]), -1);
        let s = e.substitute(1, &repl).unwrap();
        assert_eq!(s.coeff(1), 0);
        for x0 in -5..=5 {
            assert_eq!(s.eval(&[x0, 999]).unwrap(), 3 * x0 - 2);
        }
    }

    #[test]
    fn extend_dim_keeps_semantics() {
        let e = AffineExpr::new(IVec::from_slice(&[1, -2]), 5);
        let w = e.extend_dim(4);
        assert_eq!(w.dim(), 4);
        assert_eq!(w.eval(&[3, 1, 7, 7]).unwrap(), e.eval(&[3, 1]).unwrap());
    }

    #[test]
    fn display_readable() {
        let e = AffineExpr::new(IVec::from_slice(&[1, -1, 2]), -3);
        assert_eq!(e.to_string(), "x0 - x1 + 2*x2 - 3");
        assert_eq!(AffineExpr::constant(2, 0).to_string(), "0");
        assert_eq!(
            e.display_with(&["i".into(), "j".into(), "k".into()]),
            "i - j + 2*k - 3"
        );
    }
}
