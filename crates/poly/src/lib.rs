//! # pdm-poly — affine inequality systems and Fourier–Motzkin elimination
//!
//! Loop bounds of a (transformed) nest form a convex integer polyhedron
//! `{ x ∈ Zⁿ : A·xᵀ + b ≥ 0 }`. After a unimodular change of basis the new
//! bounds are not rectangular, and the paper (following Banerjee and
//! Schrijver \[1, 13\]) recovers per-level `max(⌈·⌉)/min(⌊·⌋)` bounds by
//! **Fourier–Motzkin elimination**: eliminating the innermost variables one
//! by one leaves, at each level, the constraints that bound that loop in
//! terms of the outer indices only.
//!
//! The crate provides:
//! * [`expr::AffineExpr`] — exact affine forms `a·x + c`,
//! * [`system::System`] — conjunctions of `expr ≥ 0` constraints, with
//!   structural ([`system::System::simplify`]) and exact
//!   ([`system::System::prune_redundant`]) redundancy elimination,
//! * [`fm`] — Fourier–Motzkin projection with Kohler/Imbert history
//!   pruning and min-pairs elimination ordering,
//! * [`bounds`] — per-level loop bound extraction (irredundant rows by
//!   default) and lexicographic enumeration of the integer points (the
//!   executable iteration space).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bounds;
pub mod expr;
pub mod fm;
pub mod system;

pub use bounds::{BoundExpr, LevelBounds, LoopBounds};
pub use expr::AffineExpr;
pub use fm::{ElimStats, Prune};
pub use system::System;

/// Result alias re-using the exact-arithmetic error type.
pub type Result<T> = std::result::Result<T, pdm_matrix::MatrixError>;
