//! Fourier–Motzkin elimination with redundancy control.
//!
//! Projecting a variable `x_k` out of a system of affine inequalities:
//! every pair of a lower bound `a·x_k ≥ L(x)` (`a > 0`) and an upper bound
//! `b·x_k ≤ U(x)` (`b > 0`) combines into the `x_k`-free consequence
//! `b·L(x) ≤ a·U(x)`. Constraints not mentioning `x_k` pass through.
//!
//! The rational projection is exact for the loop-bound use case: the
//! *original* constraints still bound the inner loops, and the projected
//! ones bound the outer loops, so every generated iteration is real and
//! none is missed (possible integer "dark shadow" gaps only manifest as
//! empty inner loops, the standard behaviour of FM-generated bounds which
//! the paper also exhibits with its `max/min/ceil/floor` bounds).
//!
//! # Redundancy pruning
//!
//! Raw pairing grows intermediate systems quadratically per step, and most
//! generated rows are implied by the others. Three defenses keep the
//! working system small (selected via [`Prune`]):
//!
//! 1. **Structural** (always on): every row is gcd-normalized, trivially
//!    true constants are dropped, and parallel rows (identical primitive
//!    coefficient vectors) are merged keeping the tightest constant — the
//!    dominated row is implied by the kept one, so removal is exact.
//! 2. **History bookkeeping** ([`Prune::Fast`]) — Imbert/Kohler style:
//!    each row carries the set of *original* constraints it was derived
//!    from; when two rows combine, the histories union. Kohler's
//!    acceleration theorem states that after eliminating `k` variables,
//!    any derived row whose history exceeds `k + 1` original rows is a
//!    redundant consequence of the rows with smaller histories, so it is
//!    dropped eagerly at combine time. Because gcd tightening only
//!    *strengthens* rows on integer points (`a·x + c ≥ 0 ⇔ (a/g)·x +
//!    ⌊c/g⌋ ≥ 0` for integer `x`), the implication certificate survives
//!    the tightening and the drop preserves the integer solution set.
//! 3. **Exact** ([`Prune::Exact`]): after each step the surviving rows
//!    are pruned with [`crate::system::System::prune_redundant`] — a row
//!    is removed iff the system with that row *negated* (`e ≤ −1`) is
//!    rationally infeasible, decided by [`is_rationally_feasible`]. This
//!    yields an irredundant system (over the integers) at every step.
//!
//! Elimination **order** matters for intermediate growth:
//! [`eliminate_all`] picks the next variable by the classic *min-pairs*
//! greedy — the candidate minimizing `#lower · #upper` produces the
//! fewest combined rows. The projection itself is order-independent, so
//! callers supply a *set* of variables.
//!
//! # Parameter columns
//!
//! Elimination only ever touches the variable it is stepping: columns a
//! caller never passes — the **parameter columns** of a symbolic
//! pipeline (`LoopBounds::from_system_parametric` eliminates loop
//! indices only) — are carried verbatim through every combination, so
//! the projected system stays exact *as a function of the parameters*.
//! The Kohler history rule and exact pruning remain sound in that
//! reading: both certify implications that hold with parameters as free
//! variables, hence for every instantiation.

use crate::expr::AffineExpr;
use crate::system::{negate_ge0, normalize_ge0, System};
use pdm_matrix::vec::IVec;
use pdm_matrix::Result;
use std::collections::HashMap;

/// Per-step exact pruning is skipped above this working-system size:
/// each exact test is itself an FM feasibility run, so on systems where
/// the Kohler rule already failed to contain growth, quadratic-many
/// feasibility runs would cost more than the rows they remove save.
const EXACT_STEP_CAP: usize = 64;

/// How aggressively elimination prunes redundant intermediate rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Prune {
    /// Structural cleanup only (gcd normalization, parallel-row
    /// dominance) — the historical baseline.
    None,
    /// Structural cleanup plus Kohler/Imbert history bookkeeping: cheap,
    /// eager, and exact on integer points.
    Fast,
    /// [`Prune::Fast`] plus exact per-step pruning via rational
    /// feasibility of the negated row, skipped for working systems above
    /// an internal size cap. Produces (near-)irredundant intermediate
    /// systems at higher (polynomial, not exponential) per-step cost.
    Exact,
}

/// Row-count accounting for one multi-variable elimination run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ElimStats {
    /// Largest working-system size observed after any step.
    pub peak_rows: usize,
    /// Combined rows dropped eagerly by the Kohler history rule.
    pub dropped_history: usize,
    /// Rows removed by exact (negation-infeasibility) pruning.
    pub dropped_exact: usize,
}

/// A working row: the constraint plus the set of original-system rows it
/// was derived from (bitset over original indices; meaningful only while
/// `tracked`).
#[derive(Debug, Clone)]
struct Row {
    expr: AffineExpr,
    hist: u128,
}

/// The mutable elimination state: one working system reused across steps
/// (no per-step clone of the full system). Crate-visible so
/// [`crate::bounds`] can walk the levels with persistent histories.
pub(crate) struct Eliminator {
    dim: usize,
    rows: Vec<Row>,
    /// Number of elimination steps performed (Kohler's `k`).
    eliminated: usize,
    /// Histories are valid (≤ 128 original rows and pruning requested).
    tracked: bool,
    prune: Prune,
    stats: ElimStats,
}

impl Eliminator {
    pub(crate) fn new(sys: &System, prune: Prune) -> Eliminator {
        let tracked = prune != Prune::None && sys.len() <= 128;
        let rows: Vec<Row> = sys
            .constraints()
            .iter()
            .enumerate()
            .map(|(i, e)| Row {
                expr: e.clone(),
                hist: if tracked { 1u128 << i } else { 0 },
            })
            .collect();
        let stats = ElimStats {
            peak_rows: rows.len(),
            ..ElimStats::default()
        };
        Eliminator {
            dim: sys.dim(),
            rows,
            eliminated: 0,
            tracked,
            prune,
            stats,
        }
    }

    pub(crate) fn has_constant_contradiction(&self) -> bool {
        self.rows
            .iter()
            .any(|r| r.expr.is_constant() && r.expr.constant < 0)
    }

    /// Current working constraints.
    pub(crate) fn exprs(&self) -> impl Iterator<Item = &AffineExpr> {
        self.rows.iter().map(|r| &r.expr)
    }

    /// Current working-system size.
    pub(crate) fn len(&self) -> usize {
        self.rows.len()
    }

    /// `#lower · #upper` for variable `k` — the number of combined rows
    /// one elimination step would generate (min-pairs score).
    fn pair_score(&self, k: usize) -> (usize, usize) {
        let mut lowers = 0usize;
        let mut uppers = 0usize;
        for r in &self.rows {
            match r.expr.coeff(k).signum() {
                1.. => lowers += 1,
                0 => {}
                _ => uppers += 1,
            }
        }
        (lowers * uppers, lowers + uppers)
    }

    /// Eliminate `x_k` in place: pair every lower with every upper, keep
    /// the free rows, then dedup / prune.
    pub(crate) fn step(&mut self, k: usize) -> Result<()> {
        assert!(k < self.dim, "variable index out of range");
        let mut lowers: Vec<Row> = Vec::new();
        let mut uppers: Vec<Row> = Vec::new();
        let mut out: Vec<Row> = Vec::new();
        for r in self.rows.drain(..) {
            match r.expr.coeff(k).signum() {
                0 => out.push(r),
                1.. => lowers.push(r),
                _ => uppers.push(r),
            }
        }
        self.eliminated += 1;
        // Kohler: after eliminating `k` variables, a derived row combining
        // more than `k + 1` original rows is redundant.
        let budget = self.eliminated + 1;
        for lo in &lowers {
            for up in &uppers {
                let hist = lo.hist | up.hist;
                if self.tracked && hist.count_ones() as usize > budget {
                    self.stats.dropped_history += 1;
                    continue;
                }
                let a = lo.expr.coeff(k); // > 0
                let b = -up.expr.coeff(k); // > 0
                                           // b*lo + a*up has zero x_k coefficient.
                let combined = lo.expr.scale(b)?.add(&up.expr.scale(a)?)?;
                debug_assert_eq!(combined.coeff(k), 0);
                if let Some(e) = normalize_ge0(combined)? {
                    out.push(Row { expr: e, hist });
                }
            }
        }
        self.rows = out;
        self.dedup();
        if self.prune == Prune::Exact && self.rows.len() <= EXACT_STEP_CAP {
            self.exact_prune()?;
        }
        self.stats.peak_rows = self.stats.peak_rows.max(self.rows.len());
        Ok(())
    }

    /// Merge parallel rows keeping the tightest constant (and, among equal
    /// constants, the smallest history so the Kohler rule keeps biting).
    fn dedup(&mut self) {
        let mut best: HashMap<IVec, usize> = HashMap::new();
        let mut out: Vec<Row> = Vec::with_capacity(self.rows.len());
        for r in self.rows.drain(..) {
            match best.entry(r.expr.coeffs.clone()) {
                std::collections::hash_map::Entry::Occupied(o) => {
                    let cur = &mut out[*o.get()];
                    let tighter = r.expr.constant < cur.expr.constant
                        || (r.expr.constant == cur.expr.constant
                            && r.hist.count_ones() < cur.hist.count_ones());
                    if tighter {
                        *cur = r;
                    }
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(out.len());
                    out.push(r);
                }
            }
        }
        self.rows = out;
    }

    /// Exact pruning of the working rows, preserving histories of the
    /// survivors (coefficient vectors are unique after [`Self::dedup`], so
    /// survivors are identified by expression). Rows can disappear both
    /// through `prune_redundant`'s negation tests and through the
    /// structural merge inside it, so survivorship is decided by the
    /// resulting row count, not the negation-removal count alone.
    pub(crate) fn exact_prune(&mut self) -> Result<()> {
        if self.rows.len() <= 1 {
            return Ok(());
        }
        let before = self.rows.len();
        let mut sys = self.to_system()?;
        sys.prune_redundant()?;
        if sys.len() != before {
            let keep: std::collections::HashSet<&AffineExpr> = sys.constraints().iter().collect();
            self.rows.retain(|r| keep.contains(&r.expr));
            self.stats.dropped_exact += before - self.rows.len();
        }
        Ok(())
    }

    fn to_system(&self) -> Result<System> {
        let mut out = System::universe(self.dim);
        for r in &self.rows {
            out.add_ge0(r.expr.clone())?;
        }
        Ok(out)
    }

    fn into_system(self) -> Result<System> {
        let mut out = self.to_system()?;
        out.simplify();
        Ok(out)
    }
}

/// Eliminate variable `k`, returning a system over the same variable set
/// whose constraints no longer mention `x_k`. Single-step: structural
/// pruning only (the Kohler rule cannot fire on one step, and exact
/// pruning is the caller's choice — see
/// [`crate::system::System::prune_redundant`]).
pub fn eliminate(sys: &System, k: usize) -> Result<System> {
    let mut el = Eliminator::new(sys, Prune::None);
    el.step(k)?;
    el.into_system()
}

/// Eliminate the *set* of variables `vars` with [`Prune::Fast`]
/// bookkeeping, choosing the elimination order by the min-pairs greedy.
/// The projection (hence feasibility and integer membership over the
/// remaining variables) is order-independent; the literal constraint set
/// returned may differ from a fixed-order run.
pub fn eliminate_all(sys: &System, vars: &[usize]) -> Result<System> {
    Ok(eliminate_all_stats(sys, vars, Prune::Fast)?.0)
}

/// [`eliminate_all`] with an explicit [`Prune`] level, also returning
/// row-count statistics — the instrumented entry point used by the
/// `bench_fm` harness to measure pruning effectiveness.
pub fn eliminate_all_stats(
    sys: &System,
    vars: &[usize],
    prune: Prune,
) -> Result<(System, ElimStats)> {
    let mut el = Eliminator::new(sys, prune);
    let mut remaining: Vec<usize> = vars.to_vec();
    remaining.sort_unstable();
    remaining.dedup();
    while !remaining.is_empty() {
        let (pos, _) = remaining
            .iter()
            .enumerate()
            .min_by_key(|(_, &k)| el.pair_score(k))
            .expect("non-empty");
        let k = remaining.swap_remove(pos);
        el.step(k)?;
    }
    let stats = el.stats;
    Ok((el.into_system()?, stats))
}

/// Is the system feasible over the *rationals*? Projects out every
/// variable (min-pairs order, Kohler-pruned) with an early exit as soon
/// as a constant contradiction appears.
///
/// (Rational feasibility is what plain FM decides; integer gaps are
/// handled at bound-enumeration time. This function must not use
/// [`Prune::Exact`]: exact pruning itself calls back into feasibility.)
pub fn is_rationally_feasible(sys: &System) -> Result<bool> {
    let mut el = Eliminator::new(sys, Prune::Fast);
    let mut remaining: Vec<usize> = (0..sys.dim()).collect();
    while !remaining.is_empty() {
        if el.has_constant_contradiction() {
            return Ok(false);
        }
        let (pos, _) = remaining
            .iter()
            .enumerate()
            .min_by_key(|(_, &k)| el.pair_score(k))
            .expect("non-empty");
        let k = remaining.swap_remove(pos);
        el.step(k)?;
    }
    Ok(!el.has_constant_contradiction())
}

/// Decide whether `e ≥ 0` is redundant in `sys` (which need not contain
/// it): redundant iff `sys ∧ (e ≤ −1)` is rationally infeasible, i.e. no
/// integer point of `sys` violates `e ≥ 0`.
pub fn is_redundant(sys: &System, e: &AffineExpr) -> Result<bool> {
    let Some(neg) = negate_ge0(e)? else {
        // Negation overflowed: conservatively treat as irredundant.
        return Ok(false);
    };
    let mut test = sys.clone();
    test.add_ge0(neg)?;
    Ok(!is_rationally_feasible(&test)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_matrix::vec::IVec;

    fn ge0(coeffs: &[i64], c: i64) -> AffineExpr {
        AffineExpr::new(IVec::from_slice(coeffs), c)
    }

    #[test]
    fn projection_of_a_box_is_a_box() {
        let mut s = System::universe(2);
        s.add_range(0, 1, 4).unwrap();
        s.add_range(1, 2, 7).unwrap();
        let p = eliminate(&s, 1).unwrap();
        // x1 gone; x0 range survives.
        for x0 in -2..8 {
            assert_eq!(
                p.contains(&[x0, 0]).unwrap(),
                (1..=4).contains(&x0),
                "x0={x0}"
            );
        }
        assert!(p.constraints().iter().all(|e| e.coeff(1) == 0));
    }

    #[test]
    fn projection_matches_exists_semantics_on_triangle() {
        // Triangle: x0 >= 0, x1 >= 0, x0 + x1 <= 5.
        let mut s = System::universe(2);
        s.add_ge0(ge0(&[1, 0], 0)).unwrap();
        s.add_ge0(ge0(&[0, 1], 0)).unwrap();
        s.add_ge0(ge0(&[-1, -1], 5)).unwrap();
        let p = eliminate(&s, 1).unwrap();
        for x0 in -3..9i64 {
            let exists = (-10..=10).any(|x1| s.contains(&[x0, x1]).unwrap());
            assert_eq!(p.contains(&[x0, 0]).unwrap(), exists, "x0={x0}");
        }
    }

    #[test]
    fn skewed_constraints_combine() {
        // 2*x1 >= x0  and  3*x1 <= 12 - x0  =>  combine: 3*x0 <= 2*(12-x0)
        // i.e. 24 - 5*x0 >= 0.
        let mut s = System::universe(2);
        s.add_ge0(ge0(&[-1, 2], 0)).unwrap();
        s.add_ge0(ge0(&[-1, -3], 12)).unwrap();
        let p = eliminate(&s, 1).unwrap();
        for x0 in -10..=10i64 {
            let exists = (-50..=50).any(|x1| s.contains(&[x0, x1]).unwrap());
            assert_eq!(p.contains(&[x0, 0]).unwrap(), exists, "x0={x0}");
        }
    }

    #[test]
    fn feasibility() {
        let mut s = System::universe(2);
        s.add_range(0, 0, 3).unwrap();
        assert!(is_rationally_feasible(&s).unwrap());
        // Contradiction: x0 >= 4 with x0 <= 3.
        s.add_ge0(ge0(&[1, 0], -4)).unwrap();
        assert!(!is_rationally_feasible(&s).unwrap());
    }

    #[test]
    fn eliminate_all_leaves_constants() {
        let mut s = System::universe(3);
        s.add_range(0, 0, 2).unwrap();
        s.add_range(1, 0, 2).unwrap();
        s.add_range(2, 0, 2).unwrap();
        let p = eliminate_all(&s, &[2, 1, 0]).unwrap();
        assert!(!p.has_constant_contradiction());
        assert!(p.constraints().iter().all(|e| e.is_constant()) || p.is_empty());
    }

    #[test]
    fn unbounded_variable_projects_to_free() {
        // Only a lower bound on x1: projection keeps every x0 constraint
        // and produces nothing new.
        let mut s = System::universe(2);
        s.add_range(0, 0, 1).unwrap();
        s.add_ge0(ge0(&[0, 1], 0)).unwrap(); // x1 >= 0, no upper
        let p = eliminate(&s, 1).unwrap();
        assert!(p.contains(&[0, -99]).unwrap());
        assert!(!p.contains(&[2, 0]).unwrap());
    }

    #[test]
    fn empty_integer_interior_is_rationally_feasible() {
        // 2 <= 2*x0 <= 3 has rational solutions (x0 = 1.25) and the single
        // integer x0=1: after gcd tightening (2x0-2>=0 -> x0-1>=0,
        // 3-2x0>=0 -> tightened via floor(3/2): 1 - x0 >= 0) membership is
        // exactly x0 == 1.
        let mut s = System::universe(1);
        s.add_ge0(ge0(&[2], -2)).unwrap();
        s.add_ge0(ge0(&[-2], 3)).unwrap();
        assert!(s.contains(&[1]).unwrap());
        assert!(!s.contains(&[2]).unwrap());
        assert!(is_rationally_feasible(&s).unwrap());
    }

    /// A chain x0 ≤ x1 ≤ … ≤ x_{d−1} inside a box: eliminating the middle
    /// variables with history tracking must agree with the unpruned run on
    /// feasibility and on membership over the surviving variables.
    #[test]
    fn kohler_pruning_matches_unpruned_projection() {
        let d = 4;
        let mut s = System::universe(d);
        for i in 0..d {
            s.add_range(i, -3, 3).unwrap();
        }
        for i in 0..d - 1 {
            // x_{i+1} - x_i >= 0.
            let mut c = vec![0i64; d];
            c[i] = -1;
            c[i + 1] = 1;
            s.add_ge0(ge0(&c, 0)).unwrap();
        }
        let (fast, fstats) = eliminate_all_stats(&s, &[1, 2], Prune::Fast).unwrap();
        let (none, nstats) = eliminate_all_stats(&s, &[1, 2], Prune::None).unwrap();
        assert!(fstats.peak_rows <= nstats.peak_rows);
        for x0 in -5..=5i64 {
            for x3 in -5..=5i64 {
                let p = [x0, 0, 0, x3];
                assert_eq!(
                    fast.contains(&p).unwrap(),
                    none.contains(&p).unwrap(),
                    "x0={x0} x3={x3}"
                );
            }
        }
    }

    #[test]
    fn exact_elimination_prunes_harder() {
        // Dense couplings blow up unpruned FM; exact pruning must keep the
        // peak strictly smaller while preserving feasibility.
        let d = 5;
        let mut s = System::universe(d);
        for i in 0..d {
            s.add_range(i, -4, 4).unwrap();
        }
        for i in 0..d {
            for j in i + 1..d {
                let mut c = vec![0i64; d];
                c[i] = 1;
                c[j] = 1;
                s.add_ge0(ge0(&c, 5)).unwrap();
                let neg: Vec<i64> = c.iter().map(|v| -v).collect();
                s.add_ge0(ge0(&neg, 5)).unwrap();
            }
        }
        let vars: Vec<usize> = (0..d).collect();
        let (_, none) = eliminate_all_stats(&s, &vars, Prune::None).unwrap();
        let (ex_sys, ex) = eliminate_all_stats(&s, &vars, Prune::Exact).unwrap();
        assert!(ex.peak_rows < none.peak_rows, "{ex:?} vs {none:?}");
        assert!(ex.dropped_exact > 0 || ex.dropped_history > 0);
        assert!(!ex_sys.has_constant_contradiction());
    }

    #[test]
    fn redundancy_oracle() {
        // x0 in [0, 5]: "x0 <= 9" is redundant, "x0 <= 3" is not.
        let mut s = System::universe(1);
        s.add_range(0, 0, 5).unwrap();
        assert!(is_redundant(&s, &ge0(&[-1], 9)).unwrap());
        assert!(!is_redundant(&s, &ge0(&[-1], 3)).unwrap());
    }
}
