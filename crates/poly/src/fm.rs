//! Fourier–Motzkin elimination.
//!
//! Projecting a variable `x_k` out of a system of affine inequalities:
//! every pair of a lower bound `a·x_k ≥ L(x)` (`a > 0`) and an upper bound
//! `b·x_k ≤ U(x)` (`b > 0`) combines into the `x_k`-free consequence
//! `b·L(x) ≤ a·U(x)`. Constraints not mentioning `x_k` pass through.
//!
//! The rational projection is exact for the loop-bound use case: the
//! *original* constraints still bound the inner loops, and the projected
//! ones bound the outer loops, so every generated iteration is real and
//! none is missed (possible integer "dark shadow" gaps only manifest as
//! empty inner loops, the standard behaviour of FM-generated bounds which
//! the paper also exhibits with its `max/min/ceil/floor` bounds).

use crate::expr::AffineExpr;
use crate::system::System;
use pdm_matrix::Result;

/// Eliminate variable `k`, returning a system over the same variable set
/// whose constraints no longer mention `x_k`.
pub fn eliminate(sys: &System, k: usize) -> Result<System> {
    let dim = sys.dim();
    assert!(k < dim, "variable index out of range");
    let mut lowers: Vec<AffineExpr> = Vec::new(); // a > 0 :  a*x_k + rest >= 0
    let mut uppers: Vec<AffineExpr> = Vec::new(); // a < 0
    let mut free: Vec<AffineExpr> = Vec::new();

    for e in sys.constraints() {
        match e.coeff(k).signum() {
            0 => free.push(e.clone()),
            1.. => lowers.push(e.clone()),
            _ => uppers.push(e.clone()),
        }
    }

    let mut out = System::universe(dim);
    for e in free {
        out.add_ge0(e)?;
    }
    for lo in &lowers {
        for up in &uppers {
            let a = lo.coeff(k); // > 0
            let b = -up.coeff(k); // > 0
                                  // b*lo + a*up has zero x_k coefficient.
            let combined = lo.scale(b)?.add(&up.scale(a)?)?;
            debug_assert_eq!(combined.coeff(k), 0);
            out.add_ge0(combined)?;
        }
    }
    out.simplify();
    Ok(out)
}

/// Eliminate several variables in the given order.
pub fn eliminate_all(sys: &System, vars: &[usize]) -> Result<System> {
    let mut cur = sys.clone();
    for &k in vars {
        cur = eliminate(&cur, k)?;
    }
    Ok(cur)
}

/// Is the system feasible over the *rationals*? Projects out every
/// variable; infeasibility surfaces as a constant contradiction.
///
/// (Rational feasibility is what plain FM decides; integer gaps are
/// handled at bound-enumeration time.)
pub fn is_rationally_feasible(sys: &System) -> Result<bool> {
    let mut cur = sys.clone();
    for k in 0..sys.dim() {
        if cur.has_constant_contradiction() {
            return Ok(false);
        }
        cur = eliminate(&cur, k)?;
    }
    Ok(!cur.has_constant_contradiction())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_matrix::vec::IVec;

    fn ge0(coeffs: &[i64], c: i64) -> AffineExpr {
        AffineExpr::new(IVec::from_slice(coeffs), c)
    }

    #[test]
    fn projection_of_a_box_is_a_box() {
        let mut s = System::universe(2);
        s.add_range(0, 1, 4).unwrap();
        s.add_range(1, 2, 7).unwrap();
        let p = eliminate(&s, 1).unwrap();
        // x1 gone; x0 range survives.
        for x0 in -2..8 {
            assert_eq!(
                p.contains(&[x0, 0]).unwrap(),
                (1..=4).contains(&x0),
                "x0={x0}"
            );
        }
        assert!(p.constraints().iter().all(|e| e.coeff(1) == 0));
    }

    #[test]
    fn projection_matches_exists_semantics_on_triangle() {
        // Triangle: x0 >= 0, x1 >= 0, x0 + x1 <= 5.
        let mut s = System::universe(2);
        s.add_ge0(ge0(&[1, 0], 0)).unwrap();
        s.add_ge0(ge0(&[0, 1], 0)).unwrap();
        s.add_ge0(ge0(&[-1, -1], 5)).unwrap();
        let p = eliminate(&s, 1).unwrap();
        for x0 in -3..9i64 {
            let exists = (-10..=10).any(|x1| s.contains(&[x0, x1]).unwrap());
            assert_eq!(p.contains(&[x0, 0]).unwrap(), exists, "x0={x0}");
        }
    }

    #[test]
    fn skewed_constraints_combine() {
        // 2*x1 >= x0  and  3*x1 <= 12 - x0  =>  combine: 3*x0 <= 2*(12-x0)
        // i.e. 24 - 5*x0 >= 0.
        let mut s = System::universe(2);
        s.add_ge0(ge0(&[-1, 2], 0)).unwrap();
        s.add_ge0(ge0(&[-1, -3], 12)).unwrap();
        let p = eliminate(&s, 1).unwrap();
        for x0 in -10..=10i64 {
            let exists = (-50..=50).any(|x1| s.contains(&[x0, x1]).unwrap());
            assert_eq!(p.contains(&[x0, 0]).unwrap(), exists, "x0={x0}");
        }
    }

    #[test]
    fn feasibility() {
        let mut s = System::universe(2);
        s.add_range(0, 0, 3).unwrap();
        assert!(is_rationally_feasible(&s).unwrap());
        // Contradiction: x0 >= 4 with x0 <= 3.
        s.add_ge0(ge0(&[1, 0], -4)).unwrap();
        assert!(!is_rationally_feasible(&s).unwrap());
    }

    #[test]
    fn eliminate_all_leaves_constants() {
        let mut s = System::universe(3);
        s.add_range(0, 0, 2).unwrap();
        s.add_range(1, 0, 2).unwrap();
        s.add_range(2, 0, 2).unwrap();
        let p = eliminate_all(&s, &[2, 1, 0]).unwrap();
        assert!(!p.has_constant_contradiction());
        assert!(p.constraints().iter().all(|e| e.is_constant()) || p.is_empty());
    }

    #[test]
    fn unbounded_variable_projects_to_free() {
        // Only a lower bound on x1: projection keeps every x0 constraint
        // and produces nothing new.
        let mut s = System::universe(2);
        s.add_range(0, 0, 1).unwrap();
        s.add_ge0(ge0(&[0, 1], 0)).unwrap(); // x1 >= 0, no upper
        let p = eliminate(&s, 1).unwrap();
        assert!(p.contains(&[0, -99]).unwrap());
        assert!(!p.contains(&[2, 0]).unwrap());
    }

    #[test]
    fn empty_integer_interior_is_rationally_feasible() {
        // 2 <= 2*x0 <= 3 has rational solutions (x0 = 1.25) and the single
        // integer x0=1: after gcd tightening (2x0-2>=0 -> x0-1>=0,
        // 3-2x0>=0 -> tightened via floor(3/2): 1 - x0 >= 0) membership is
        // exactly x0 == 1.
        let mut s = System::universe(1);
        s.add_ge0(ge0(&[2], -2)).unwrap();
        s.add_ge0(ge0(&[-2], 3)).unwrap();
        assert!(s.contains(&[1]).unwrap());
        assert!(!s.contains(&[2]).unwrap());
        assert!(is_rationally_feasible(&s).unwrap());
    }
}
