//! Conjunctions of affine inequalities (integer polyhedra).
//!
//! # Normal form and redundancy
//!
//! Every stored constraint is **gcd-normalized**: the coefficient vector
//! is primitive and the constant is tightened with floor division, which
//! is exact on integer points. Two layers of redundancy elimination build
//! on that normal form:
//!
//! * [`System::simplify`] — *structural*: trivially true constants are
//!   dropped, and parallel constraints (identical primitive coefficient
//!   vectors) are merged keeping the tightest constant. The dominated row
//!   is implied by the kept one, so the integer solution set is unchanged.
//! * [`System::prune_redundant`] — *exact*: a constraint `e ≥ 0` is
//!   redundant iff the system with that constraint replaced by its
//!   integer negation `e ≤ −1` is rationally infeasible (decided by
//!   [`crate::fm::is_rationally_feasible`]). Infeasibility of the test
//!   system means no integer point of the remaining constraints violates
//!   `e ≥ 0` — integer values of `e` are either `≥ 0` or `≤ −1` — so the
//!   removal preserves integer membership exactly. The check is
//!   conservative in the other direction: a rationally feasible test
//!   system keeps the constraint even when the violating points are all
//!   fractional.
//!
//! # Parameter columns
//!
//! A [`System`] is variable-agnostic: columns acquire meaning only from
//! their consumers. Symbolic (parametric) pipelines exploit that by
//! laying out loop indices first and named parameters after
//! (`pdm_loopir`'s `LoopNest::symbolic_system`), then eliminating only
//! the index columns — parameters ride through combination, gcd
//! normalization, and pruning untouched, and pruning decisions made with
//! parameters as free variables hold for every valuation (see
//! [`crate::bounds`]'s parametric section).

use crate::expr::AffineExpr;
use pdm_matrix::gcd::gcd_slice;
use pdm_matrix::num::floor_div;
use pdm_matrix::vec::IVec;
use pdm_matrix::Result;
use std::fmt;

/// Gcd-normalize `e ≥ 0`: divide by the gcd of the coefficients and
/// tighten the constant with floor division (exact on integer points).
/// Returns `None` for trivially true constant rows; contradictory
/// constants are kept so emptiness stays observable.
pub(crate) fn normalize_ge0(e: AffineExpr) -> Result<Option<AffineExpr>> {
    let g = gcd_slice(e.coeffs.as_slice());
    let e = if g > 1 {
        AffineExpr::new(e.coeffs.exact_div(g)?, floor_div(e.constant, g)?)
    } else {
        e
    };
    if e.is_constant() && e.constant >= 0 {
        return Ok(None);
    }
    Ok(Some(e))
}

/// The integer negation of `e ≥ 0`: `e ≤ −1`, i.e. `−e − 1 ≥ 0`.
/// Returns `None` when the negation would overflow (callers then treat
/// the constraint as irredundant — conservative and safe).
pub(crate) fn negate_ge0(e: &AffineExpr) -> Result<Option<AffineExpr>> {
    match e
        .scale(-1)
        .and_then(|n| n.add(&AffineExpr::constant(e.dim(), -1)))
    {
        Ok(neg) => Ok(Some(neg)),
        Err(pdm_matrix::MatrixError::Overflow) => Ok(None),
        Err(e) => Err(e),
    }
}

/// A conjunction of constraints `eᵢ(x) ≥ 0` over `dim` integer variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct System {
    dim: usize,
    constraints: Vec<AffineExpr>,
}

impl System {
    /// The unconstrained system over `dim` variables.
    pub fn universe(dim: usize) -> Self {
        System {
            dim,
            constraints: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The constraints (each meaning `e ≥ 0`).
    pub fn constraints(&self) -> &[AffineExpr] {
        &self.constraints
    }

    /// Add `e ≥ 0`, normalizing by the gcd of the coefficients (the
    /// constant is *tightened* with floor division, valid for integer
    /// points).
    pub fn add_ge0(&mut self, e: AffineExpr) -> Result<()> {
        assert_eq!(e.dim(), self.dim, "constraint dimension mismatch");
        let Some(e) = normalize_ge0(e)? else {
            return Ok(());
        };
        if !self.constraints.contains(&e) {
            self.constraints.push(e);
        }
        Ok(())
    }

    /// Add the two-sided bound `lo ≤ x_i ≤ hi`.
    pub fn add_range(&mut self, i: usize, lo: i64, hi: i64) -> Result<()> {
        // x_i - lo >= 0
        let mut lower = AffineExpr::var(self.dim, i);
        lower.constant = -lo;
        self.add_ge0(lower)?;
        // hi - x_i >= 0
        let upper = AffineExpr::var(self.dim, i)
            .scale(-1)?
            .add(&AffineExpr::constant(self.dim, hi))?;
        self.add_ge0(upper)
    }

    /// Add `lhs ≤ rhs` as `rhs − lhs ≥ 0`.
    pub fn add_le(&mut self, lhs: &AffineExpr, rhs: &AffineExpr) -> Result<()> {
        self.add_ge0(rhs.sub(lhs)?)
    }

    /// Is the point inside every constraint?
    pub fn contains(&self, x: &[i64]) -> Result<bool> {
        for e in &self.constraints {
            if e.eval(x)? < 0 {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Does the system contain an *obviously* false constraint
    /// (constant < 0)? FM elimination reduces infeasibility to this after
    /// all variables are projected out.
    pub fn has_constant_contradiction(&self) -> bool {
        self.constraints
            .iter()
            .any(|e| e.is_constant() && e.constant < 0)
    }

    /// Apply a substitution `x := y·T + t0` given by an integer matrix:
    /// each old variable `x_i` is replaced by the affine expression
    /// `exprs[i]` over the *new* variable set (all of equal dimension).
    pub fn change_of_variables(&self, exprs: &[AffineExpr], new_dim: usize) -> Result<System> {
        assert_eq!(exprs.len(), self.dim, "one expression per old variable");
        let mut out = System::universe(new_dim);
        for e in &self.constraints {
            // e(x) = sum_i c_i x_i + k  =>  sum_i c_i exprs_i(y) + k.
            let mut acc = AffineExpr::constant(new_dim, e.constant);
            for i in 0..self.dim {
                let c = e.coeff(i);
                if c != 0 {
                    acc = acc.add_scaled(c, &exprs[i])?;
                }
            }
            out.add_ge0(acc)?;
        }
        Ok(out)
    }

    /// Structural redundancy pruning: drop trivially true constant rows
    /// and remove constraints dominated by another with identical
    /// (primitive, post-normalization) coefficients — keep the tightest,
    /// i.e. smallest constant. Exact on integer points: every removed row
    /// is implied by a kept one.
    pub fn simplify(&mut self) {
        use std::collections::HashMap;
        let mut best: HashMap<IVec, i64> = HashMap::new();
        for e in &self.constraints {
            if e.is_constant() && e.constant >= 0 {
                continue;
            }
            best.entry(e.coeffs.clone())
                .and_modify(|c| *c = (*c).min(e.constant))
                .or_insert(e.constant);
        }
        let mut out: Vec<AffineExpr> = best
            .into_iter()
            .map(|(coeffs, constant)| AffineExpr { coeffs, constant })
            .collect();
        out.sort_by(|a, b| a.coeffs.cmp(&b.coeffs).then(a.constant.cmp(&b.constant)));
        self.constraints = out;
    }

    /// Exact redundancy elimination: greedily remove every constraint
    /// whose integer negation (`e ≤ −1`) is rationally infeasible against
    /// the remaining rows — see the module docs for the exactness
    /// argument. Returns the number of constraints removed.
    ///
    /// Rationally infeasible systems are left untouched (every row of an
    /// empty system is vacuously redundant; keeping them preserves the
    /// constraints that surface the emptiness to Fourier–Motzkin bound
    /// generation). Cost: one FM feasibility run per constraint — callers
    /// on hot paths should gate on [`System::len`].
    pub fn prune_redundant(&mut self) -> Result<usize> {
        self.simplify();
        if self.constraints.len() <= 1 || !crate::fm::is_rationally_feasible(self)? {
            return Ok(0);
        }
        let mut removed = 0usize;
        let mut i = 0;
        while self.constraints.len() > 1 && i < self.constraints.len() {
            if self.unique_sign_on_some_var(i) {
                // Provably irredundant without an FM run: the system is
                // rationally feasible, and pushing the witnessed variable
                // past every other constraint (none opposes it) violates
                // this row arbitrarily — so the negated test system is
                // feasible.
                i += 1;
                continue;
            }
            let mut rest = System::universe(self.dim);
            for (j, e) in self.constraints.iter().enumerate() {
                if j != i {
                    rest.add_ge0(e.clone())?;
                }
            }
            if crate::fm::is_redundant(&rest, &self.constraints[i])? {
                self.constraints.remove(i);
                removed += 1;
            } else {
                i += 1;
            }
        }
        Ok(removed)
    }

    /// Is constraint `i` the only row with a positive (or the only row
    /// with a negative) coefficient on some variable? If so it is the
    /// unique bound on that side: from any rational point of the
    /// remaining system that variable can be pushed indefinitely without
    /// violating them, driving this row below any threshold — hence the
    /// row is irredundant whenever the system is feasible.
    fn unique_sign_on_some_var(&self, i: usize) -> bool {
        let e = &self.constraints[i];
        'var: for k in 0..self.dim {
            let s = e.coeff(k).signum();
            if s == 0 {
                continue;
            }
            for (j, other) in self.constraints.iter().enumerate() {
                if j != i && other.coeff(k).signum() == s {
                    continue 'var;
                }
            }
            return true;
        }
        false
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// True when no constraints are present.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }
}

impl fmt::Display for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.constraints.is_empty() {
            return write!(f, "true (Z^{})", self.dim);
        }
        for (k, e) in self.constraints.iter().enumerate() {
            if k > 0 {
                writeln!(f)?;
            }
            write!(f, "{e} >= 0")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership() {
        let mut s = System::universe(2);
        s.add_range(0, 0, 5).unwrap();
        s.add_range(1, 1, 3).unwrap();
        assert!(s.contains(&[0, 1]).unwrap());
        assert!(s.contains(&[5, 3]).unwrap());
        assert!(!s.contains(&[6, 1]).unwrap());
        assert!(!s.contains(&[0, 0]).unwrap());
    }

    #[test]
    fn gcd_normalization_tightens() {
        let mut s = System::universe(1);
        // 2x - 3 >= 0  =>  x >= 2 after integer tightening (x - 1 >= 0
        // would be wrong: x=1 gives 2-3 < 0). floor(-3/2) = -2: x - 2 >= 0.
        s.add_ge0(AffineExpr::new(IVec::from_slice(&[2]), -3))
            .unwrap();
        assert!(!s.contains(&[1]).unwrap());
        assert!(s.contains(&[2]).unwrap());
        assert_eq!(
            s.constraints()[0],
            AffineExpr::new(IVec::from_slice(&[1]), -2)
        );
    }

    #[test]
    fn trivial_constraints_dropped_contradictions_kept() {
        let mut s = System::universe(1);
        s.add_ge0(AffineExpr::constant(1, 5)).unwrap();
        assert!(s.is_empty());
        s.add_ge0(AffineExpr::constant(1, -1)).unwrap();
        assert!(s.has_constant_contradiction());
        assert!(!s.contains(&[0]).unwrap());
    }

    #[test]
    fn duplicates_not_stored() {
        let mut s = System::universe(1);
        let e = AffineExpr::new(IVec::from_slice(&[1]), 0);
        s.add_ge0(e.clone()).unwrap();
        s.add_ge0(e).unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn simplify_keeps_tightest() {
        let mut s = System::universe(1);
        s.add_ge0(AffineExpr::new(IVec::from_slice(&[1]), 5))
            .unwrap(); // x >= -5
        s.add_ge0(AffineExpr::new(IVec::from_slice(&[1]), 2))
            .unwrap(); // x >= -2
        s.simplify();
        assert_eq!(s.len(), 1);
        assert_eq!(s.constraints()[0].constant, 2);
    }

    #[test]
    fn change_of_variables_preserves_membership() {
        // Box 0<=x0<=4, 0<=x1<=4 under x = (y0, y1 - y0) (skew inverse).
        let mut s = System::universe(2);
        s.add_range(0, 0, 4).unwrap();
        s.add_range(1, 0, 4).unwrap();
        let exprs = vec![
            AffineExpr::new(IVec::from_slice(&[1, 0]), 0),
            AffineExpr::new(IVec::from_slice(&[-1, 1]), 0),
        ];
        let t = s.change_of_variables(&exprs, 2).unwrap();
        for y0 in -10..=10 {
            for y1 in -10..=10i64 {
                let x = [y0, y1 - y0];
                assert_eq!(
                    t.contains(&[y0, y1]).unwrap(),
                    s.contains(&x).unwrap(),
                    "mismatch at y=({y0},{y1})"
                );
            }
        }
    }

    #[test]
    fn prune_removes_implied_rows() {
        // x0 >= 0, x1 >= 0, x0 + x1 <= 5 make x0 <= 9 and x0 + 2*x1 <= 12
        // redundant.
        let mut s = System::universe(2);
        s.add_ge0(AffineExpr::new(IVec::from_slice(&[1, 0]), 0))
            .unwrap();
        s.add_ge0(AffineExpr::new(IVec::from_slice(&[0, 1]), 0))
            .unwrap();
        s.add_ge0(AffineExpr::new(IVec::from_slice(&[-1, -1]), 5))
            .unwrap();
        s.add_ge0(AffineExpr::new(IVec::from_slice(&[-1, 0]), 9))
            .unwrap();
        s.add_ge0(AffineExpr::new(IVec::from_slice(&[-1, -2]), 12))
            .unwrap();
        let before = s.clone();
        let removed = s.prune_redundant().unwrap();
        assert_eq!(removed, 2, "{s}");
        assert_eq!(s.len(), 3);
        for x0 in -8..=8i64 {
            for x1 in -8..=8i64 {
                assert_eq!(
                    s.contains(&[x0, x1]).unwrap(),
                    before.contains(&[x0, x1]).unwrap(),
                    "({x0},{x1})"
                );
            }
        }
    }

    #[test]
    fn prune_keeps_irredundant_systems_intact() {
        let mut s = System::universe(2);
        s.add_range(0, 0, 4).unwrap();
        s.add_range(1, 0, 4).unwrap();
        assert_eq!(s.prune_redundant().unwrap(), 0);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn prune_leaves_infeasible_systems_alone() {
        let mut s = System::universe(1);
        s.add_range(0, 3, 2).unwrap(); // x >= 3 and x <= 2
        assert_eq!(s.prune_redundant().unwrap(), 0);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn negation_is_integer_complement() {
        let e = AffineExpr::new(IVec::from_slice(&[2, -1]), 3);
        let neg = negate_ge0(&e).unwrap().unwrap();
        for x0 in -4..=4i64 {
            for x1 in -4..=4i64 {
                let v = e.eval(&[x0, x1]).unwrap();
                let nv = neg.eval(&[x0, x1]).unwrap();
                assert_eq!(v >= 0, nv < 0, "exactly one side holds");
            }
        }
    }

    #[test]
    fn simplify_drops_trivial_constants() {
        let mut s = System::universe(1);
        s.add_range(0, 0, 3).unwrap();
        // Inject a trivially true row bypassing add_ge0's filter.
        s.constraints.push(AffineExpr::constant(1, 7));
        s.simplify();
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn add_le_orientation() {
        let mut s = System::universe(2);
        let x0 = AffineExpr::var(2, 0);
        let x1 = AffineExpr::var(2, 1);
        s.add_le(&x0, &x1).unwrap(); // x0 <= x1
        assert!(s.contains(&[1, 2]).unwrap());
        assert!(s.contains(&[2, 2]).unwrap());
        assert!(!s.contains(&[3, 2]).unwrap());
    }

    #[test]
    fn display() {
        let mut s = System::universe(2);
        s.add_range(0, 0, 2).unwrap();
        let text = s.to_string();
        assert!(text.contains(">= 0"));
        assert_eq!(System::universe(1).to_string(), "true (Z^1)");
    }
}
