//! Conjunctions of affine inequalities (integer polyhedra).

use crate::expr::AffineExpr;
use pdm_matrix::gcd::gcd_slice;
use pdm_matrix::num::floor_div;
use pdm_matrix::vec::IVec;
use pdm_matrix::Result;
use std::fmt;

/// A conjunction of constraints `eᵢ(x) ≥ 0` over `dim` integer variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct System {
    dim: usize,
    constraints: Vec<AffineExpr>,
}

impl System {
    /// The unconstrained system over `dim` variables.
    pub fn universe(dim: usize) -> Self {
        System {
            dim,
            constraints: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The constraints (each meaning `e ≥ 0`).
    pub fn constraints(&self) -> &[AffineExpr] {
        &self.constraints
    }

    /// Add `e ≥ 0`, normalizing by the gcd of the coefficients (the
    /// constant is *tightened* with floor division, valid for integer
    /// points).
    pub fn add_ge0(&mut self, e: AffineExpr) -> Result<()> {
        assert_eq!(e.dim(), self.dim, "constraint dimension mismatch");
        let g = gcd_slice(e.coeffs.as_slice());
        let e = if g > 1 {
            AffineExpr::new(e.coeffs.exact_div(g)?, floor_div(e.constant, g)?)
        } else {
            e
        };
        // Skip trivially true constants; keep contradictions so emptiness
        // is observable.
        if e.is_constant() && e.constant >= 0 {
            return Ok(());
        }
        if !self.constraints.contains(&e) {
            self.constraints.push(e);
        }
        Ok(())
    }

    /// Add the two-sided bound `lo ≤ x_i ≤ hi`.
    pub fn add_range(&mut self, i: usize, lo: i64, hi: i64) -> Result<()> {
        // x_i - lo >= 0
        let mut lower = AffineExpr::var(self.dim, i);
        lower.constant = -lo;
        self.add_ge0(lower)?;
        // hi - x_i >= 0
        let upper = AffineExpr::var(self.dim, i)
            .scale(-1)?
            .add(&AffineExpr::constant(self.dim, hi))?;
        self.add_ge0(upper)
    }

    /// Add `lhs ≤ rhs` as `rhs − lhs ≥ 0`.
    pub fn add_le(&mut self, lhs: &AffineExpr, rhs: &AffineExpr) -> Result<()> {
        self.add_ge0(rhs.sub(lhs)?)
    }

    /// Is the point inside every constraint?
    pub fn contains(&self, x: &[i64]) -> Result<bool> {
        for e in &self.constraints {
            if e.eval(x)? < 0 {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Does the system contain an *obviously* false constraint
    /// (constant < 0)? FM elimination reduces infeasibility to this after
    /// all variables are projected out.
    pub fn has_constant_contradiction(&self) -> bool {
        self.constraints
            .iter()
            .any(|e| e.is_constant() && e.constant < 0)
    }

    /// Apply a substitution `x := y·T + t0` given by an integer matrix:
    /// each old variable `x_i` is replaced by the affine expression
    /// `exprs[i]` over the *new* variable set (all of equal dimension).
    pub fn change_of_variables(&self, exprs: &[AffineExpr], new_dim: usize) -> Result<System> {
        assert_eq!(exprs.len(), self.dim, "one expression per old variable");
        let mut out = System::universe(new_dim);
        for e in &self.constraints {
            // e(x) = sum_i c_i x_i + k  =>  sum_i c_i exprs_i(y) + k.
            let mut acc = AffineExpr::constant(new_dim, e.constant);
            for i in 0..self.dim {
                let c = e.coeff(i);
                if c != 0 {
                    acc = acc.add_scaled(c, &exprs[i])?;
                }
            }
            out.add_ge0(acc)?;
        }
        Ok(out)
    }

    /// Remove constraints dominated by another with identical coefficients
    /// (keep the tightest, i.e. smallest constant).
    pub fn simplify(&mut self) {
        use std::collections::HashMap;
        let mut best: HashMap<IVec, i64> = HashMap::new();
        for e in &self.constraints {
            best.entry(e.coeffs.clone())
                .and_modify(|c| *c = (*c).min(e.constant))
                .or_insert(e.constant);
        }
        let mut out: Vec<AffineExpr> = best
            .into_iter()
            .map(|(coeffs, constant)| AffineExpr { coeffs, constant })
            .collect();
        out.sort_by(|a, b| a.coeffs.cmp(&b.coeffs).then(a.constant.cmp(&b.constant)));
        self.constraints = out;
    }

    /// Number of constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// True when no constraints are present.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }
}

impl fmt::Display for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.constraints.is_empty() {
            return write!(f, "true (Z^{})", self.dim);
        }
        for (k, e) in self.constraints.iter().enumerate() {
            if k > 0 {
                writeln!(f)?;
            }
            write!(f, "{e} >= 0")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn membership() {
        let mut s = System::universe(2);
        s.add_range(0, 0, 5).unwrap();
        s.add_range(1, 1, 3).unwrap();
        assert!(s.contains(&[0, 1]).unwrap());
        assert!(s.contains(&[5, 3]).unwrap());
        assert!(!s.contains(&[6, 1]).unwrap());
        assert!(!s.contains(&[0, 0]).unwrap());
    }

    #[test]
    fn gcd_normalization_tightens() {
        let mut s = System::universe(1);
        // 2x - 3 >= 0  =>  x >= 2 after integer tightening (x - 1 >= 0
        // would be wrong: x=1 gives 2-3 < 0). floor(-3/2) = -2: x - 2 >= 0.
        s.add_ge0(AffineExpr::new(IVec::from_slice(&[2]), -3))
            .unwrap();
        assert!(!s.contains(&[1]).unwrap());
        assert!(s.contains(&[2]).unwrap());
        assert_eq!(
            s.constraints()[0],
            AffineExpr::new(IVec::from_slice(&[1]), -2)
        );
    }

    #[test]
    fn trivial_constraints_dropped_contradictions_kept() {
        let mut s = System::universe(1);
        s.add_ge0(AffineExpr::constant(1, 5)).unwrap();
        assert!(s.is_empty());
        s.add_ge0(AffineExpr::constant(1, -1)).unwrap();
        assert!(s.has_constant_contradiction());
        assert!(!s.contains(&[0]).unwrap());
    }

    #[test]
    fn duplicates_not_stored() {
        let mut s = System::universe(1);
        let e = AffineExpr::new(IVec::from_slice(&[1]), 0);
        s.add_ge0(e.clone()).unwrap();
        s.add_ge0(e).unwrap();
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn simplify_keeps_tightest() {
        let mut s = System::universe(1);
        s.add_ge0(AffineExpr::new(IVec::from_slice(&[1]), 5))
            .unwrap(); // x >= -5
        s.add_ge0(AffineExpr::new(IVec::from_slice(&[1]), 2))
            .unwrap(); // x >= -2
        s.simplify();
        assert_eq!(s.len(), 1);
        assert_eq!(s.constraints()[0].constant, 2);
    }

    #[test]
    fn change_of_variables_preserves_membership() {
        // Box 0<=x0<=4, 0<=x1<=4 under x = (y0, y1 - y0) (skew inverse).
        let mut s = System::universe(2);
        s.add_range(0, 0, 4).unwrap();
        s.add_range(1, 0, 4).unwrap();
        let exprs = vec![
            AffineExpr::new(IVec::from_slice(&[1, 0]), 0),
            AffineExpr::new(IVec::from_slice(&[-1, 1]), 0),
        ];
        let t = s.change_of_variables(&exprs, 2).unwrap();
        for y0 in -10..=10 {
            for y1 in -10..=10i64 {
                let x = [y0, y1 - y0];
                assert_eq!(
                    t.contains(&[y0, y1]).unwrap(),
                    s.contains(&x).unwrap(),
                    "mismatch at y=({y0},{y1})"
                );
            }
        }
    }

    #[test]
    fn add_le_orientation() {
        let mut s = System::universe(2);
        let x0 = AffineExpr::var(2, 0);
        let x1 = AffineExpr::var(2, 1);
        s.add_le(&x0, &x1).unwrap(); // x0 <= x1
        assert!(s.contains(&[1, 2]).unwrap());
        assert!(s.contains(&[2, 2]).unwrap());
        assert!(!s.contains(&[3, 2]).unwrap());
    }

    #[test]
    fn display() {
        let mut s = System::universe(2);
        s.add_range(0, 0, 2).unwrap();
        let text = s.to_string();
        assert!(text.contains(">= 0"));
        assert_eq!(System::universe(1).to_string(), "true (Z^1)");
    }
}
