//! Per-level loop bounds extracted by Fourier–Motzkin elimination.
//!
//! Given a polyhedron over loop indices `x_0 … x_{n−1}` (outermost first),
//! eliminate variables innermost-outward. The constraints of the system in
//! which `x_k` is the innermost surviving variable yield the bounds of loop
//! `k` as functions of `x_0 … x_{k−1}` only:
//!
//! ```text
//! a·x_k + e(x_outer) ≥ 0, a > 0   ⇒   x_k ≥ ⌈ −e / a ⌉   (lower)
//! a·x_k + e(x_outer) ≥ 0, a < 0   ⇒   x_k ≤ ⌊ e / −a ⌋   (upper)
//! ```
//!
//! The effective bound is the `max` of all lowers / `min` of all uppers —
//! exactly the `max(…, ⌈…⌉)` / `min(…, ⌊…⌋)` bounds in the paper's
//! transformed loops of §4.1.
//!
//! # Irredundance
//!
//! By default every intermediate system is pruned exactly
//! ([`System::prune_redundant`]) before its level's bounds are read off,
//! so the `lowers`/`uppers` rows of each [`LevelBounds`] are
//! **irredundant**: no row can be removed without changing the integer
//! iteration set. Consumers that evaluate the rows per iteration
//! (`pdm-runtime`'s compiled walkers, the interpreter's `max`/`min`
//! reductions) therefore do the minimum per-level work. Pruning an
//! intermediate system preserves the enumerated set because removal only
//! ever drops rows implied (over the integers) by surviving rows, and
//! every surviving row is still enforced at the level of its highest
//! variable. [`LoopBounds::from_system_pruned`] exposes the unpruned
//! baseline for measurement.
//!
//! # Parameter columns
//!
//! [`LoopBounds::from_system_parametric`] treats only the leading
//! `levels` columns of the input system as loop indices; the trailing
//! columns are **named parameters** (`N`, `M`, …) that Fourier–Motzkin
//! **never eliminates** — they ride through every combination step and
//! surface in the extracted [`BoundExpr`] numerators, producing bounds
//! like `x_k ≤ ⌊(N − x_0)/2⌋` that are valid for *every* parameter
//! valuation. Exact pruning in the parametric run treats parameters as
//! free variables, so a row is removed only when it is redundant for all
//! valuations simultaneously — conservative (a row redundant only for
//! specific sizes survives) and sound.
//!
//! [`LoopBounds::substitute_params`] folds an integer valuation into the
//! constants — a single pass over the rows, no FM — and re-normalizes
//! each row exactly as concrete constraint normalization would
//! (gcd reduction, denominator collapse with side-aware rounding,
//! parallel-row dominance).
//!
//! **Exactness contract.** The *integer points* enumerated by an
//! instantiated template are always identical to the concrete
//! pipeline's — every original constraint is still enforced at the
//! level of its highest variable, so no spurious iteration can appear
//! and none can vanish. The evaluated `(lo, hi)` *literals* also match
//! in practice (the differential suite pins them on randomized nests),
//! with one principled exception: concrete elimination integer-tightens
//! every row by the gcd of its coefficients, and when an intermediate
//! row's index-coefficient gcd exceeds 1 while a parameter coefficient
//! is not divisible by it, the parametric run cannot tighten before the
//! next combination — its descendants may then be rationally *wider*.
//! Such widening only ever adds dark-shadow positions whose subtrees
//! contain no integer point (the standard FM behaviour; see
//! [`crate::fm`]'s module docs), i.e. empty inner loops, never extra
//! work. Rows derived directly from nest bounds are immune: a
//! unimodular transform cannot give them a nontrivial index gcd
//! (columns of `T⁻¹` sharing a common factor would divide `det = ±1`).

use crate::expr::AffineExpr;
use crate::fm::{Eliminator, Prune};
use crate::system::System;
use pdm_matrix::gcd::gcd_slice;
use pdm_matrix::num::{ceil_div, floor_div};
use pdm_matrix::vec::IVec;
use pdm_matrix::{MatrixError, Result};

/// Exact pruning is skipped for intermediate systems larger than this
/// (each exact test is a full FM feasibility run; a working system this
/// large means the structural and Kohler defenses have already failed
/// badly enough that quadratic-many feasibility runs would dominate
/// planning).
const EXACT_PRUNE_CAP: usize = 96;

/// One side of a loop bound: the rational expression `num / den` with
/// `den > 0`, to be rounded up (lower bounds) or down (upper bounds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundExpr {
    /// Numerator, an affine expression over the *outer* variables.
    pub num: AffineExpr,
    /// Positive denominator.
    pub den: i64,
}

impl BoundExpr {
    /// Evaluate as a lower bound: `⌈ num(x) / den ⌉`.
    pub fn eval_lower(&self, x: &[i64]) -> Result<i64> {
        ceil_div(self.num.eval(x)?, self.den)
    }

    /// Evaluate as an upper bound: `⌊ num(x) / den ⌋`.
    pub fn eval_upper(&self, x: &[i64]) -> Result<i64> {
        floor_div(self.num.eval(x)?, self.den)
    }

    /// Render as source text (`ceil`/`floor` spelled only when `den > 1`).
    pub fn display_with(&self, names: &[String], lower: bool) -> String {
        let inner = self.num.display_with(names);
        if self.den == 1 {
            inner
        } else if lower {
            format!("ceil(({inner})/{})", self.den)
        } else {
            format!("floor(({inner})/{})", self.den)
        }
    }
}

/// The bounds of one loop level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelBounds {
    /// Lower bound candidates (effective bound = max of all).
    pub lowers: Vec<BoundExpr>,
    /// Upper bound candidates (effective bound = min of all).
    pub uppers: Vec<BoundExpr>,
}

impl LevelBounds {
    /// Effective lower bound at the given outer-index prefix. The prefix
    /// slice must be padded to full dimension (inner entries are ignored
    /// because their coefficients are zero).
    pub fn lower(&self, x: &[i64]) -> Result<i64> {
        let mut best: Option<i64> = None;
        for b in &self.lowers {
            let v = b.eval_lower(x)?;
            best = Some(best.map_or(v, |c: i64| c.max(v)));
        }
        best.ok_or(MatrixError::Unbounded)
    }

    /// Effective upper bound at the given outer-index prefix.
    pub fn upper(&self, x: &[i64]) -> Result<i64> {
        let mut best: Option<i64> = None;
        for b in &self.uppers {
            let v = b.eval_upper(x)?;
            best = Some(best.map_or(v, |c: i64| c.min(v)));
        }
        best.ok_or(MatrixError::Unbounded)
    }
}

/// Loop bounds for every level of a nest, outermost first.
///
/// `dim` counts loop levels; `params` counts trailing parameter columns
/// of the row numerators (0 for concrete bounds). Parametric bounds are
/// a planning artifact — substitute a valuation
/// ([`LoopBounds::substitute_params`]) before evaluating ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopBounds {
    dim: usize,
    params: usize,
    levels: Vec<LevelBounds>,
    /// Parameter-only residual rows of the parametric elimination
    /// (`g(params) ≥ 0`; zero coefficients on every level column). A
    /// valuation violating a guard makes the space empty — these are
    /// exactly the rows whose concrete images surface as the constant
    /// contradictions [`LoopBounds::from_system`] folds into its
    /// empty-space encoding, so [`LoopBounds::substitute_params`] checks
    /// them and injects the same encoding. Empty for concrete bounds.
    guards: Vec<AffineExpr>,
}

impl LoopBounds {
    /// Derive bounds for all levels from the constraint system by
    /// Fourier–Motzkin elimination (innermost variable first), with exact
    /// per-level redundancy pruning — the per-level rows are irredundant
    /// (see the module docs).
    pub fn from_system(sys: &System) -> Result<LoopBounds> {
        Self::from_system_pruned(sys, Prune::Exact)
    }

    /// [`LoopBounds::from_system`] with an explicit pruning level.
    /// [`Prune::None`] reproduces the historical unpruned behaviour —
    /// kept as the measurement baseline for `bench_fm`. [`Prune::Fast`]
    /// and [`Prune::Exact`] thread **one** eliminator through every
    /// level, so Kohler histories persist across the per-level steps and
    /// eagerly drop implied combinations even where exact pruning is
    /// capped out; [`Prune::Exact`] additionally prunes each level's
    /// system exactly before its rows are read off.
    pub fn from_system_pruned(sys: &System, prune: Prune) -> Result<LoopBounds> {
        Self::from_system_parametric_pruned(sys, sys.dim(), prune)
    }

    /// Derive **parametric** bounds: only the leading `levels` columns of
    /// `sys` are loop indices (eliminated innermost-first); the trailing
    /// `sys.dim() − levels` columns are parameters carried through
    /// elimination into the extracted rows (see the module docs). With
    /// `levels == sys.dim()` this is exactly [`LoopBounds::from_system`].
    pub fn from_system_parametric(sys: &System, levels: usize) -> Result<LoopBounds> {
        Self::from_system_parametric_pruned(sys, levels, Prune::Exact)
    }

    /// [`LoopBounds::from_system_parametric`] with an explicit pruning
    /// level.
    pub fn from_system_parametric_pruned(
        sys: &System,
        levels: usize,
        prune: Prune,
    ) -> Result<LoopBounds> {
        let w = sys.dim();
        assert!(levels <= w, "more loop levels than system columns");
        let n = levels;
        let params = w - n;
        let mut out_levels: Vec<LevelBounds> = Vec::with_capacity(n);
        // Single working system reused across levels (no per-level
        // clone); exact pruning runs pre-extraction, so the eliminator's
        // own per-step mode never needs to be Exact.
        let step_prune = match prune {
            Prune::None => Prune::None,
            _ => Prune::Fast,
        };
        let mut el = Eliminator::new(sys, step_prune);
        let mut infeasible = false;
        // Walk from the innermost level to the outermost, recording the
        // bounds of x_k before eliminating it. Parameter columns are
        // never stepped — they stay in `rest` and become symbolic terms
        // of the extracted rows.
        let mut collected: Vec<LevelBounds> = Vec::with_capacity(n);
        for k in (0..n).rev() {
            infeasible |= el.has_constant_contradiction();
            if prune == Prune::Exact && el.len() <= EXACT_PRUNE_CAP {
                el.exact_prune()?;
            }
            let mut lowers = Vec::new();
            let mut uppers = Vec::new();
            for e in el.exprs() {
                let a = e.coeff(k);
                if a == 0 {
                    continue;
                }
                // Strip the x_k term: rest = e - a*x_k.
                let mut rest = e.clone();
                rest.coeffs[k] = 0;
                if a > 0 {
                    // x_k >= ceil(-rest / a)
                    lowers.push(BoundExpr {
                        num: rest.scale(-1)?,
                        den: a,
                    });
                } else {
                    // x_k <= floor(rest / -a)
                    uppers.push(BoundExpr { num: rest, den: -a });
                }
            }
            collected.push(LevelBounds { lowers, uppers });
            el.step(k)?;
        }
        infeasible |= el.has_constant_contradiction();
        // Every level column is eliminated, so surviving non-constant
        // rows read parameters only: the feasibility guards.
        let guards: Vec<AffineExpr> = el.exprs().filter(|e| !e.is_constant()).cloned().collect();
        debug_assert!(guards.iter().all(|g| (0..n).all(|k| g.coeff(k) == 0)));
        collected.reverse();
        out_levels.extend(collected);
        if infeasible && n > 0 {
            // A constant contradiction anywhere makes the whole space
            // empty — and, being parameter-free, empty for every
            // valuation. Encode that as an always-empty outermost range
            // (lower 1 > upper 0) so every consumer sees zero points
            // without special cases.
            out_levels[0].lowers.push(BoundExpr {
                num: AffineExpr::constant(w, 1),
                den: 1,
            });
            out_levels[0].uppers.push(BoundExpr {
                num: AffineExpr::constant(w, 0),
                den: 1,
            });
        }
        Ok(LoopBounds {
            dim: n,
            params,
            levels: out_levels,
            guards,
        })
    }

    /// The parameter-only feasibility guards (see the field docs; empty
    /// for concrete bounds).
    pub fn guards(&self) -> &[AffineExpr] {
        &self.guards
    }

    /// Number of loop levels.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of trailing parameter columns (0 for concrete bounds).
    pub fn params(&self) -> usize {
        self.params
    }

    /// Does any bound row or feasibility guard read a parameter
    /// column with a nonzero coefficient? `false` means the described
    /// iteration set is *identical at every valuation* — the
    /// geometric precondition interval certification
    /// (`PlanTemplate::stability_box` in `pdm-core`) needs before it
    /// can reason about valuations purely through access offsets.
    pub fn reads_params(&self) -> bool {
        if self.params == 0 {
            return false;
        }
        let n = self.dim;
        let reads = |e: &AffineExpr| (n..n + self.params).any(|c| e.coeff(c) != 0);
        self.guards.iter().any(reads)
            || self
                .levels
                .iter()
                .any(|l| l.lowers.iter().chain(&l.uppers).any(|b| reads(&b.num)))
    }

    /// Fold an integer valuation of the parameters into the row
    /// constants, yielding concrete bounds — the cheap instantiation step
    /// of a plan template: one pass over the rows, **no Fourier–Motzkin,
    /// no planning**. Each substituted row is re-normalized exactly as
    /// concrete constraint normalization would have produced it (the
    /// denominator collapses with side-aware `ceil`/`floor` rounding when
    /// it divides every coefficient, common factors reduce, and
    /// parallel rows merge keeping the tightest constant). The
    /// enumerated integer points always match the concrete pipeline
    /// exactly; the range literals may be rationally wider only at
    /// integer-empty dark-shadow positions (see the module docs'
    /// exactness contract).
    pub fn substitute_params(&self, vals: &[i64]) -> Result<LoopBounds> {
        if vals.len() != self.params {
            return Err(MatrixError::DimMismatch {
                op: "LoopBounds::substitute_params",
                lhs: (1, self.params),
                rhs: (1, vals.len()),
            });
        }
        if self.params == 0 {
            return Ok(self.clone());
        }
        let n = self.dim;
        let fold_side = |rows: &[BoundExpr], lower: bool| -> Result<Vec<BoundExpr>> {
            let mut out: Vec<BoundExpr> = Vec::with_capacity(rows.len());
            for b in rows {
                let mut acc = b.num.constant as i128;
                for (j, &v) in vals.iter().enumerate() {
                    acc += b.num.coeff(n + j) as i128 * v as i128;
                }
                let mut constant = i64::try_from(acc).map_err(|_| MatrixError::Overflow)?;
                let mut coeffs: Vec<i64> = b.num.coeffs.as_slice()[..n].to_vec();
                let mut den = b.den;
                if den > 1 && coeffs.iter().all(|c| c % den == 0) {
                    // ⌈(den·c'·x + b)/den⌉ = c'·x + ⌈b/den⌉ (resp. ⌊·⌋):
                    // the rounding lands entirely on the constant.
                    for c in &mut coeffs {
                        *c /= den;
                    }
                    constant = if lower {
                        ceil_div(constant, den)?
                    } else {
                        floor_div(constant, den)?
                    };
                    den = 1;
                } else {
                    let mut all = coeffs.clone();
                    all.push(constant);
                    all.push(den);
                    let g = gcd_slice(&all);
                    if g > 1 {
                        for c in &mut coeffs {
                            *c /= g;
                        }
                        constant /= g;
                        den /= g;
                    }
                }
                let cand = BoundExpr {
                    num: AffineExpr::new(IVec(coeffs), constant),
                    den,
                };
                // Parallel-row dominance: identical (coeffs, den) rows
                // merge keeping the tightest constant (max of lowers,
                // min of uppers) — what the concrete pipeline's
                // constraint dedup produces.
                match out
                    .iter_mut()
                    .find(|e| e.num.coeffs == cand.num.coeffs && e.den == cand.den)
                {
                    Some(e) if lower => e.num.constant = e.num.constant.max(cand.num.constant),
                    Some(e) => e.num.constant = e.num.constant.min(cand.num.constant),
                    None => out.push(cand),
                }
            }
            Ok(out)
        };
        let mut levels = Vec::with_capacity(self.levels.len());
        for l in &self.levels {
            levels.push(LevelBounds {
                lowers: fold_side(&l.lowers, true)?,
                uppers: fold_side(&l.uppers, false)?,
            });
        }
        // Feasibility guards: a violated guard means the space is empty
        // at this valuation — inject the same always-empty outermost
        // encoding the concrete pipeline derives from its constant
        // contradictions, so schedulers enumerate zero groups instead of
        // walking empty-work prefixes.
        let mut violated = false;
        for g in &self.guards {
            let mut acc = g.constant as i128;
            for (j, &v) in vals.iter().enumerate() {
                acc += g.coeff(n + j) as i128 * v as i128;
            }
            if acc < 0 {
                violated = true;
                break;
            }
        }
        if violated && n > 0 {
            levels[0].lowers.push(BoundExpr {
                num: AffineExpr::constant(n, 1),
                den: 1,
            });
            levels[0].uppers.push(BoundExpr {
                num: AffineExpr::constant(n, 0),
                den: 1,
            });
        }
        Ok(LoopBounds {
            dim: n,
            params: 0,
            levels,
            guards: Vec::new(),
        })
    }

    /// Bounds of level `k`.
    pub fn level(&self, k: usize) -> &LevelBounds {
        &self.levels[k]
    }

    /// Bound rows (lowers + uppers) at each level, outermost first — the
    /// per-iteration `max`/`min` work a consumer performs.
    pub fn rows_per_level(&self) -> Vec<usize> {
        self.levels
            .iter()
            .map(|l| l.lowers.len() + l.uppers.len())
            .collect()
    }

    /// Total bound rows across all levels.
    pub fn total_rows(&self) -> usize {
        self.levels
            .iter()
            .map(|l| l.lowers.len() + l.uppers.len())
            .sum()
    }

    /// The `(lower, upper)` range of level `k` for a given prefix of outer
    /// indices (`prefix.len() == k`). Returns `Err(Unbounded)` when FM
    /// found no bound on that side. Concrete bounds only: parametric
    /// bounds must be lowered with [`LoopBounds::substitute_params`]
    /// first (evaluation fails loudly on the dimension mismatch
    /// otherwise).
    pub fn range(&self, k: usize, prefix: &[i64]) -> Result<(i64, i64)> {
        assert_eq!(prefix.len(), k, "prefix must cover outer levels");
        let mut x = prefix.to_vec();
        x.resize(self.dim, 0);
        Ok((self.levels[k].lower(&x)?, self.levels[k].upper(&x)?))
    }

    /// Enumerate every integer point, lexicographically.
    pub fn enumerate(&self) -> Result<Vec<Vec<i64>>> {
        let mut out = Vec::new();
        let mut prefix: Vec<i64> = Vec::with_capacity(self.dim);
        self.walk(&mut prefix, &mut out)?;
        Ok(out)
    }

    fn walk(&self, prefix: &mut Vec<i64>, out: &mut Vec<Vec<i64>>) -> Result<()> {
        let k = prefix.len();
        if k == self.dim {
            out.push(prefix.clone());
            return Ok(());
        }
        let (lo, hi) = self.range(k, prefix)?;
        for v in lo..=hi {
            prefix.push(v);
            self.walk(prefix, out)?;
            prefix.pop();
        }
        Ok(())
    }

    /// Total number of integer points (counted via enumeration of the
    /// outer levels only where possible; exact but not asymptotically
    /// clever — used by tests and metrics, not inner loops).
    pub fn count_points(&self) -> Result<u64> {
        let mut count = 0u64;
        let mut prefix: Vec<i64> = Vec::with_capacity(self.dim);
        self.count_walk(&mut prefix, &mut count)?;
        Ok(count)
    }

    fn count_walk(&self, prefix: &mut Vec<i64>, count: &mut u64) -> Result<()> {
        let k = prefix.len();
        let (lo, hi) = self.range(k, prefix)?;
        if k == self.dim - 1 {
            if hi >= lo {
                *count += (hi - lo + 1) as u64;
            }
            return Ok(());
        }
        for v in lo..=hi {
            prefix.push(v);
            self.count_walk(prefix, count)?;
            prefix.pop();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_matrix::vec::IVec;

    fn ge0(coeffs: &[i64], c: i64) -> AffineExpr {
        AffineExpr::new(IVec::from_slice(coeffs), c)
    }

    #[test]
    fn rectangular_bounds_roundtrip() {
        let mut s = System::universe(2);
        s.add_range(0, 1, 3).unwrap();
        s.add_range(1, -1, 1).unwrap();
        let b = LoopBounds::from_system(&s).unwrap();
        assert_eq!(b.range(0, &[]).unwrap(), (1, 3));
        assert_eq!(b.range(1, &[2]).unwrap(), (-1, 1));
        let pts = b.enumerate().unwrap();
        assert_eq!(pts.len(), 9);
        assert_eq!(pts[0], vec![1, -1]);
        assert_eq!(pts[8], vec![3, 1]);
        assert_eq!(b.count_points().unwrap(), 9);
    }

    #[test]
    fn triangular_bounds() {
        // 0 <= x0 <= 4, 0 <= x1 <= x0.
        let mut s = System::universe(2);
        s.add_range(0, 0, 4).unwrap();
        s.add_ge0(ge0(&[0, 1], 0)).unwrap();
        s.add_ge0(ge0(&[1, -1], 0)).unwrap();
        let b = LoopBounds::from_system(&s).unwrap();
        let pts = b.enumerate().unwrap();
        assert_eq!(pts.len(), 5 + 4 + 3 + 2 + 1);
        for p in &pts {
            assert!(p[1] >= 0 && p[1] <= p[0]);
        }
    }

    #[test]
    fn skewed_space_matches_brute_force() {
        // The paper's §4.1 transformed outer loop: j1 = i1 - i2 etc.
        // Use constraints 0 <= y0 + y1 <= 9, 0 <= y1 <= 9 (image of a box
        // under a skew) and compare with direct filtering.
        let mut s = System::universe(2);
        s.add_ge0(ge0(&[1, 1], 0)).unwrap();
        s.add_ge0(ge0(&[-1, -1], 9)).unwrap();
        s.add_range(1, 0, 9).unwrap();
        let b = LoopBounds::from_system(&s).unwrap();
        let mut expect = Vec::new();
        for y0 in -20..=20i64 {
            for y1 in -20..=20i64 {
                if y0 + y1 >= 0 && y0 + y1 <= 9 && (0..=9).contains(&y1) {
                    expect.push(vec![y0, y1]);
                }
            }
        }
        let got = b.enumerate().unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn divided_bounds_use_ceil_floor() {
        // 0 <= 2*x0 <= 7  =>  x0 in [0, 3].
        let mut s = System::universe(1);
        s.add_ge0(ge0(&[2], 0)).unwrap();
        s.add_ge0(ge0(&[-2], 7)).unwrap();
        let b = LoopBounds::from_system(&s).unwrap();
        assert_eq!(b.range(0, &[]).unwrap(), (0, 3));
    }

    #[test]
    fn unbounded_detected() {
        let mut s = System::universe(1);
        s.add_ge0(ge0(&[1], 0)).unwrap(); // x0 >= 0 only
        let b = LoopBounds::from_system(&s).unwrap();
        assert_eq!(b.range(0, &[]), Err(MatrixError::Unbounded));
    }

    #[test]
    fn empty_ranges_enumerate_to_nothing() {
        let mut s = System::universe(2);
        s.add_range(0, 3, 2).unwrap(); // empty outer
        s.add_range(1, 0, 5).unwrap();
        let b = LoopBounds::from_system(&s).unwrap();
        assert_eq!(b.enumerate().unwrap().len(), 0);
        assert_eq!(b.count_points().unwrap(), 0);
    }

    #[test]
    fn display_spells_ceil_floor() {
        let be = BoundExpr {
            num: ge0(&[1, 0], 3),
            den: 2,
        };
        let names = vec!["i".to_string(), "j".to_string()];
        assert_eq!(be.display_with(&names, true), "ceil((i + 3)/2)");
        assert_eq!(be.display_with(&names, false), "floor((i + 3)/2)");
        let be1 = BoundExpr {
            num: ge0(&[0, 1], 0),
            den: 1,
        };
        assert_eq!(be1.display_with(&names, true), "j");
    }

    #[test]
    fn pruned_bounds_enumerate_identically_with_fewer_rows() {
        use crate::fm::Prune;
        // A triangle plus redundant cuts: same points, fewer rows.
        let mut s = System::universe(2);
        s.add_ge0(ge0(&[1, 0], 0)).unwrap();
        s.add_ge0(ge0(&[0, 1], 0)).unwrap();
        s.add_ge0(ge0(&[-1, -1], 6)).unwrap();
        s.add_ge0(ge0(&[-1, 0], 20)).unwrap(); // x0 <= 20: implied
        s.add_ge0(ge0(&[0, -1], 11)).unwrap(); // x1 <= 11: implied
        s.add_ge0(ge0(&[-2, -1], 40)).unwrap(); // implied
        let pruned = LoopBounds::from_system(&s).unwrap();
        let raw = LoopBounds::from_system_pruned(&s, Prune::None).unwrap();
        assert_eq!(pruned.enumerate().unwrap(), raw.enumerate().unwrap());
        assert!(
            pruned.total_rows() < raw.total_rows(),
            "{} vs {}",
            pruned.total_rows(),
            raw.total_rows()
        );
        // The triangle needs exactly two rows per level.
        assert_eq!(pruned.rows_per_level(), vec![2, 2]);
    }

    #[test]
    fn dominated_parallel_rows_pruned_from_level_bounds() {
        // x >= 0, x <= 5, x <= 9: the dominated upper bound must not
        // survive into the extracted level rows (regression: exact_prune
        // once only synced rows removed by negation tests, not by the
        // structural merge).
        let mut s = System::universe(1);
        s.add_ge0(ge0(&[1], 0)).unwrap();
        s.add_ge0(ge0(&[-1], 5)).unwrap();
        s.add_ge0(ge0(&[-1], 9)).unwrap();
        let b = LoopBounds::from_system(&s).unwrap();
        assert_eq!(b.rows_per_level(), vec![2]);
        assert_eq!(b.range(0, &[]).unwrap(), (0, 5));
    }

    /// The triangle `0 ≤ x_0 ≤ N`, `0 ≤ x_1 ≤ x_0` with one parameter
    /// column: parametric derivation + substitution must agree with the
    /// concrete pipeline for every size — including empty ones.
    #[test]
    fn parametric_triangle_matches_concrete_per_size() {
        // Columns: x0, x1, N.
        let mut sym = System::universe(3);
        sym.add_ge0(ge0(&[1, 0, 0], 0)).unwrap();
        sym.add_ge0(ge0(&[-1, 0, 1], 0)).unwrap(); // x0 <= N
        sym.add_ge0(ge0(&[0, 1, 0], 0)).unwrap();
        sym.add_ge0(ge0(&[1, -1, 0], 0)).unwrap(); // x1 <= x0
        let pb = LoopBounds::from_system_parametric(&sym, 2).unwrap();
        assert_eq!(pb.dim(), 2);
        assert_eq!(pb.params(), 1);
        assert!(pb.reads_params(), "x0 <= N reads the parameter column");
        for n in [-1i64, 0, 1, 5, 9] {
            let inst = pb.substitute_params(&[n]).unwrap();
            assert_eq!(inst.params(), 0);
            assert!(!inst.reads_params(), "concrete bounds read no params");
            let mut conc = System::universe(2);
            conc.add_range(0, 0, n).unwrap();
            conc.add_ge0(ge0(&[0, 1], 0)).unwrap();
            conc.add_ge0(ge0(&[1, -1], 0)).unwrap();
            let cb = LoopBounds::from_system(&conc).unwrap();
            assert_eq!(inst.enumerate().unwrap(), cb.enumerate().unwrap(), "N={n}");
        }
    }

    /// A parametric column that no row actually uses (concrete extents,
    /// parameters only in the nest's accesses) reads no params — the
    /// shape interval certification keys on.
    #[test]
    fn unused_parameter_columns_read_nothing() {
        let mut sym = System::universe(2); // x0, K (K never constrained)
        sym.add_ge0(ge0(&[1, 0], 0)).unwrap();
        sym.add_ge0(ge0(&[-1, 0], 9)).unwrap(); // x0 <= 9
        let pb = LoopBounds::from_system_parametric(&sym, 1).unwrap();
        assert_eq!(pb.params(), 1);
        assert!(!pb.reads_params());
    }

    /// Divided parametric bounds: `0 ≤ 2·x_0 ≤ N` must instantiate to the
    /// same rows concrete normalization produces (denominator collapse
    /// with floor rounding).
    #[test]
    fn parametric_substitution_renormalizes_rows() {
        let mut sym = System::universe(2); // x0, N
        sym.add_ge0(ge0(&[2, 0], 0)).unwrap();
        sym.add_ge0(ge0(&[-2, 1], 0)).unwrap(); // 2*x0 <= N
        let pb = LoopBounds::from_system_parametric(&sym, 1).unwrap();
        for n in [0i64, 7, 9, 10] {
            let inst = pb.substitute_params(&[n]).unwrap();
            let mut conc = System::universe(1);
            conc.add_ge0(ge0(&[2], 0)).unwrap();
            conc.add_ge0(ge0(&[-2], n)).unwrap();
            let cb = LoopBounds::from_system(&conc).unwrap();
            assert_eq!(inst.range(0, &[]).unwrap(), cb.range(0, &[]).unwrap());
            // Rows match structurally, not just semantically: the
            // substituted upper collapses to den 1 with a floor-divided
            // constant, exactly like the gcd-normalized concrete row.
            assert_eq!(inst.level(0), cb.level(0), "N={n}");
        }
    }

    /// Two parallel parametric uppers merge under substitution keeping
    /// the tightest, matching concrete dedup.
    #[test]
    fn parametric_substitution_merges_parallel_rows() {
        let mut sym = System::universe(3); // x0, N, M
        sym.add_ge0(ge0(&[1, 0, 0], 0)).unwrap();
        sym.add_ge0(ge0(&[-1, 1, 0], 0)).unwrap(); // x0 <= N
        sym.add_ge0(ge0(&[-1, 0, 1], 0)).unwrap(); // x0 <= M
        let pb = LoopBounds::from_system_parametric_pruned(&sym, 1, Prune::Exact).unwrap();
        let inst = pb.substitute_params(&[9, 4]).unwrap();
        assert_eq!(inst.level(0).uppers.len(), 1);
        assert_eq!(inst.range(0, &[]).unwrap(), (0, 4));
        let wider = pb.substitute_params(&[3, 8]).unwrap();
        assert_eq!(wider.range(0, &[]).unwrap(), (0, 3));
    }

    /// `x_0 ∈ [0,4]`, `x_1 ∈ [3, N]`: for `N < 3` the space is empty in a
    /// way only visible *across* levels — the parametric run must keep
    /// the `N − 3 ≥ 0` residual as a guard and inject the empty-space
    /// encoding at substitution, exactly like the concrete pipeline's
    /// constant-contradiction path, so schedulers enumerate zero
    /// outer-level values instead of empty-work ones.
    #[test]
    fn guards_empty_the_space_like_concrete_contradictions() {
        let mut sym = System::universe(3); // x0, x1, N
        sym.add_range(0, 0, 4).unwrap();
        sym.add_ge0(ge0(&[0, 1, 0], -3)).unwrap(); // x1 >= 3
        sym.add_ge0(ge0(&[0, -1, 1], 0)).unwrap(); // x1 <= N
        let pb = LoopBounds::from_system_parametric(&sym, 2).unwrap();
        assert!(
            pb.guards().iter().any(|g| g.coeff(2) != 0),
            "guard on N expected, got {:?}",
            pb.guards()
        );
        let empty = pb.substitute_params(&[2]).unwrap();
        assert!(empty.guards().is_empty());
        assert_eq!(empty.range(0, &[]).unwrap(), (1, 0), "empty encoding");
        assert_eq!(empty.enumerate().unwrap().len(), 0);
        let full = pb.substitute_params(&[9]).unwrap();
        assert_eq!(full.range(0, &[]).unwrap(), (0, 4));
        assert_eq!(full.enumerate().unwrap().len(), 5 * 7);
    }

    #[test]
    fn substitute_params_validates_arity() {
        let mut s = System::universe(1);
        s.add_range(0, 0, 4).unwrap();
        let b = LoopBounds::from_system(&s).unwrap();
        // Concrete bounds: the empty valuation is the identity…
        assert_eq!(b.substitute_params(&[]).unwrap(), b);
        // …and a surplus valuation is an error.
        assert!(b.substitute_params(&[3]).is_err());
    }

    #[test]
    fn three_level_tetrahedron() {
        // 0 <= x0 <= x1 <= x2 <= 3: count = C(5,3)? Enumerate vs filter.
        let mut s = System::universe(3);
        s.add_ge0(ge0(&[1, 0, 0], 0)).unwrap();
        s.add_ge0(ge0(&[-1, 1, 0], 0)).unwrap();
        s.add_ge0(ge0(&[0, -1, 1], 0)).unwrap();
        s.add_ge0(ge0(&[0, 0, -1], 3)).unwrap();
        let b = LoopBounds::from_system(&s).unwrap();
        let got = b.enumerate().unwrap();
        let mut expect = Vec::new();
        for x0 in 0..=3i64 {
            for x1 in x0..=3 {
                for x2 in x1..=3 {
                    expect.push(vec![x0, x1, x2]);
                }
            }
        }
        assert_eq!(got, expect);
    }
}
