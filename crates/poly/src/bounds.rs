//! Per-level loop bounds extracted by Fourier–Motzkin elimination.
//!
//! Given a polyhedron over loop indices `x_0 … x_{n−1}` (outermost first),
//! eliminate variables innermost-outward. The constraints of the system in
//! which `x_k` is the innermost surviving variable yield the bounds of loop
//! `k` as functions of `x_0 … x_{k−1}` only:
//!
//! ```text
//! a·x_k + e(x_outer) ≥ 0, a > 0   ⇒   x_k ≥ ⌈ −e / a ⌉   (lower)
//! a·x_k + e(x_outer) ≥ 0, a < 0   ⇒   x_k ≤ ⌊ e / −a ⌋   (upper)
//! ```
//!
//! The effective bound is the `max` of all lowers / `min` of all uppers —
//! exactly the `max(…, ⌈…⌉)` / `min(…, ⌊…⌋)` bounds in the paper's
//! transformed loops of §4.1.
//!
//! # Irredundance
//!
//! By default every intermediate system is pruned exactly
//! ([`System::prune_redundant`]) before its level's bounds are read off,
//! so the `lowers`/`uppers` rows of each [`LevelBounds`] are
//! **irredundant**: no row can be removed without changing the integer
//! iteration set. Consumers that evaluate the rows per iteration
//! (`pdm-runtime`'s compiled walkers, the interpreter's `max`/`min`
//! reductions) therefore do the minimum per-level work. Pruning an
//! intermediate system preserves the enumerated set because removal only
//! ever drops rows implied (over the integers) by surviving rows, and
//! every surviving row is still enforced at the level of its highest
//! variable. [`LoopBounds::from_system_pruned`] exposes the unpruned
//! baseline for measurement.

use crate::expr::AffineExpr;
use crate::fm::{Eliminator, Prune};
use crate::system::System;
use pdm_matrix::num::{ceil_div, floor_div};
use pdm_matrix::{MatrixError, Result};

/// Exact pruning is skipped for intermediate systems larger than this
/// (each exact test is a full FM feasibility run; a working system this
/// large means the structural and Kohler defenses have already failed
/// badly enough that quadratic-many feasibility runs would dominate
/// planning).
const EXACT_PRUNE_CAP: usize = 96;

/// One side of a loop bound: the rational expression `num / den` with
/// `den > 0`, to be rounded up (lower bounds) or down (upper bounds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BoundExpr {
    /// Numerator, an affine expression over the *outer* variables.
    pub num: AffineExpr,
    /// Positive denominator.
    pub den: i64,
}

impl BoundExpr {
    /// Evaluate as a lower bound: `⌈ num(x) / den ⌉`.
    pub fn eval_lower(&self, x: &[i64]) -> Result<i64> {
        ceil_div(self.num.eval(x)?, self.den)
    }

    /// Evaluate as an upper bound: `⌊ num(x) / den ⌋`.
    pub fn eval_upper(&self, x: &[i64]) -> Result<i64> {
        floor_div(self.num.eval(x)?, self.den)
    }

    /// Render as source text (`ceil`/`floor` spelled only when `den > 1`).
    pub fn display_with(&self, names: &[String], lower: bool) -> String {
        let inner = self.num.display_with(names);
        if self.den == 1 {
            inner
        } else if lower {
            format!("ceil(({inner})/{})", self.den)
        } else {
            format!("floor(({inner})/{})", self.den)
        }
    }
}

/// The bounds of one loop level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelBounds {
    /// Lower bound candidates (effective bound = max of all).
    pub lowers: Vec<BoundExpr>,
    /// Upper bound candidates (effective bound = min of all).
    pub uppers: Vec<BoundExpr>,
}

impl LevelBounds {
    /// Effective lower bound at the given outer-index prefix. The prefix
    /// slice must be padded to full dimension (inner entries are ignored
    /// because their coefficients are zero).
    pub fn lower(&self, x: &[i64]) -> Result<i64> {
        let mut best: Option<i64> = None;
        for b in &self.lowers {
            let v = b.eval_lower(x)?;
            best = Some(best.map_or(v, |c: i64| c.max(v)));
        }
        best.ok_or(MatrixError::Unbounded)
    }

    /// Effective upper bound at the given outer-index prefix.
    pub fn upper(&self, x: &[i64]) -> Result<i64> {
        let mut best: Option<i64> = None;
        for b in &self.uppers {
            let v = b.eval_upper(x)?;
            best = Some(best.map_or(v, |c: i64| c.min(v)));
        }
        best.ok_or(MatrixError::Unbounded)
    }
}

/// Loop bounds for every level of a nest, outermost first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopBounds {
    dim: usize,
    levels: Vec<LevelBounds>,
}

impl LoopBounds {
    /// Derive bounds for all levels from the constraint system by
    /// Fourier–Motzkin elimination (innermost variable first), with exact
    /// per-level redundancy pruning — the per-level rows are irredundant
    /// (see the module docs).
    pub fn from_system(sys: &System) -> Result<LoopBounds> {
        Self::from_system_pruned(sys, Prune::Exact)
    }

    /// [`LoopBounds::from_system`] with an explicit pruning level.
    /// [`Prune::None`] reproduces the historical unpruned behaviour —
    /// kept as the measurement baseline for `bench_fm`. [`Prune::Fast`]
    /// and [`Prune::Exact`] thread **one** eliminator through every
    /// level, so Kohler histories persist across the per-level steps and
    /// eagerly drop implied combinations even where exact pruning is
    /// capped out; [`Prune::Exact`] additionally prunes each level's
    /// system exactly before its rows are read off.
    pub fn from_system_pruned(sys: &System, prune: Prune) -> Result<LoopBounds> {
        let n = sys.dim();
        let mut levels: Vec<LevelBounds> = Vec::with_capacity(n);
        // Single working system reused across levels (no per-level
        // clone); exact pruning runs pre-extraction, so the eliminator's
        // own per-step mode never needs to be Exact.
        let step_prune = match prune {
            Prune::None => Prune::None,
            _ => Prune::Fast,
        };
        let mut el = Eliminator::new(sys, step_prune);
        let mut infeasible = false;
        // Walk from the innermost level to the outermost, recording the
        // bounds of x_k before eliminating it.
        let mut collected: Vec<LevelBounds> = Vec::with_capacity(n);
        for k in (0..n).rev() {
            infeasible |= el.has_constant_contradiction();
            if prune == Prune::Exact && el.len() <= EXACT_PRUNE_CAP {
                el.exact_prune()?;
            }
            let mut lowers = Vec::new();
            let mut uppers = Vec::new();
            for e in el.exprs() {
                let a = e.coeff(k);
                if a == 0 {
                    continue;
                }
                // Strip the x_k term: rest = e - a*x_k.
                let mut rest = e.clone();
                rest.coeffs[k] = 0;
                if a > 0 {
                    // x_k >= ceil(-rest / a)
                    lowers.push(BoundExpr {
                        num: rest.scale(-1)?,
                        den: a,
                    });
                } else {
                    // x_k <= floor(rest / -a)
                    uppers.push(BoundExpr { num: rest, den: -a });
                }
            }
            collected.push(LevelBounds { lowers, uppers });
            el.step(k)?;
        }
        infeasible |= el.has_constant_contradiction();
        collected.reverse();
        levels.extend(collected);
        if infeasible && n > 0 {
            // A constant contradiction anywhere makes the whole space
            // empty. Encode that as an always-empty outermost range
            // (lower 1 > upper 0) so every consumer sees zero points
            // without special cases.
            levels[0].lowers.push(BoundExpr {
                num: AffineExpr::constant(n, 1),
                den: 1,
            });
            levels[0].uppers.push(BoundExpr {
                num: AffineExpr::constant(n, 0),
                den: 1,
            });
        }
        Ok(LoopBounds { dim: n, levels })
    }

    /// Number of loop levels.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Bounds of level `k`.
    pub fn level(&self, k: usize) -> &LevelBounds {
        &self.levels[k]
    }

    /// Bound rows (lowers + uppers) at each level, outermost first — the
    /// per-iteration `max`/`min` work a consumer performs.
    pub fn rows_per_level(&self) -> Vec<usize> {
        self.levels
            .iter()
            .map(|l| l.lowers.len() + l.uppers.len())
            .collect()
    }

    /// Total bound rows across all levels.
    pub fn total_rows(&self) -> usize {
        self.levels
            .iter()
            .map(|l| l.lowers.len() + l.uppers.len())
            .sum()
    }

    /// The `(lower, upper)` range of level `k` for a given prefix of outer
    /// indices (`prefix.len() == k`). Returns `Err(Unbounded)` when FM
    /// found no bound on that side.
    pub fn range(&self, k: usize, prefix: &[i64]) -> Result<(i64, i64)> {
        assert_eq!(prefix.len(), k, "prefix must cover outer levels");
        let mut x = prefix.to_vec();
        x.resize(self.dim, 0);
        Ok((self.levels[k].lower(&x)?, self.levels[k].upper(&x)?))
    }

    /// Enumerate every integer point, lexicographically.
    pub fn enumerate(&self) -> Result<Vec<Vec<i64>>> {
        let mut out = Vec::new();
        let mut prefix: Vec<i64> = Vec::with_capacity(self.dim);
        self.walk(&mut prefix, &mut out)?;
        Ok(out)
    }

    fn walk(&self, prefix: &mut Vec<i64>, out: &mut Vec<Vec<i64>>) -> Result<()> {
        let k = prefix.len();
        if k == self.dim {
            out.push(prefix.clone());
            return Ok(());
        }
        let (lo, hi) = self.range(k, prefix)?;
        for v in lo..=hi {
            prefix.push(v);
            self.walk(prefix, out)?;
            prefix.pop();
        }
        Ok(())
    }

    /// Total number of integer points (counted via enumeration of the
    /// outer levels only where possible; exact but not asymptotically
    /// clever — used by tests and metrics, not inner loops).
    pub fn count_points(&self) -> Result<u64> {
        let mut count = 0u64;
        let mut prefix: Vec<i64> = Vec::with_capacity(self.dim);
        self.count_walk(&mut prefix, &mut count)?;
        Ok(count)
    }

    fn count_walk(&self, prefix: &mut Vec<i64>, count: &mut u64) -> Result<()> {
        let k = prefix.len();
        let (lo, hi) = self.range(k, prefix)?;
        if k == self.dim - 1 {
            if hi >= lo {
                *count += (hi - lo + 1) as u64;
            }
            return Ok(());
        }
        for v in lo..=hi {
            prefix.push(v);
            self.count_walk(prefix, count)?;
            prefix.pop();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_matrix::vec::IVec;

    fn ge0(coeffs: &[i64], c: i64) -> AffineExpr {
        AffineExpr::new(IVec::from_slice(coeffs), c)
    }

    #[test]
    fn rectangular_bounds_roundtrip() {
        let mut s = System::universe(2);
        s.add_range(0, 1, 3).unwrap();
        s.add_range(1, -1, 1).unwrap();
        let b = LoopBounds::from_system(&s).unwrap();
        assert_eq!(b.range(0, &[]).unwrap(), (1, 3));
        assert_eq!(b.range(1, &[2]).unwrap(), (-1, 1));
        let pts = b.enumerate().unwrap();
        assert_eq!(pts.len(), 9);
        assert_eq!(pts[0], vec![1, -1]);
        assert_eq!(pts[8], vec![3, 1]);
        assert_eq!(b.count_points().unwrap(), 9);
    }

    #[test]
    fn triangular_bounds() {
        // 0 <= x0 <= 4, 0 <= x1 <= x0.
        let mut s = System::universe(2);
        s.add_range(0, 0, 4).unwrap();
        s.add_ge0(ge0(&[0, 1], 0)).unwrap();
        s.add_ge0(ge0(&[1, -1], 0)).unwrap();
        let b = LoopBounds::from_system(&s).unwrap();
        let pts = b.enumerate().unwrap();
        assert_eq!(pts.len(), 5 + 4 + 3 + 2 + 1);
        for p in &pts {
            assert!(p[1] >= 0 && p[1] <= p[0]);
        }
    }

    #[test]
    fn skewed_space_matches_brute_force() {
        // The paper's §4.1 transformed outer loop: j1 = i1 - i2 etc.
        // Use constraints 0 <= y0 + y1 <= 9, 0 <= y1 <= 9 (image of a box
        // under a skew) and compare with direct filtering.
        let mut s = System::universe(2);
        s.add_ge0(ge0(&[1, 1], 0)).unwrap();
        s.add_ge0(ge0(&[-1, -1], 9)).unwrap();
        s.add_range(1, 0, 9).unwrap();
        let b = LoopBounds::from_system(&s).unwrap();
        let mut expect = Vec::new();
        for y0 in -20..=20i64 {
            for y1 in -20..=20i64 {
                if y0 + y1 >= 0 && y0 + y1 <= 9 && (0..=9).contains(&y1) {
                    expect.push(vec![y0, y1]);
                }
            }
        }
        let got = b.enumerate().unwrap();
        assert_eq!(got, expect);
    }

    #[test]
    fn divided_bounds_use_ceil_floor() {
        // 0 <= 2*x0 <= 7  =>  x0 in [0, 3].
        let mut s = System::universe(1);
        s.add_ge0(ge0(&[2], 0)).unwrap();
        s.add_ge0(ge0(&[-2], 7)).unwrap();
        let b = LoopBounds::from_system(&s).unwrap();
        assert_eq!(b.range(0, &[]).unwrap(), (0, 3));
    }

    #[test]
    fn unbounded_detected() {
        let mut s = System::universe(1);
        s.add_ge0(ge0(&[1], 0)).unwrap(); // x0 >= 0 only
        let b = LoopBounds::from_system(&s).unwrap();
        assert_eq!(b.range(0, &[]), Err(MatrixError::Unbounded));
    }

    #[test]
    fn empty_ranges_enumerate_to_nothing() {
        let mut s = System::universe(2);
        s.add_range(0, 3, 2).unwrap(); // empty outer
        s.add_range(1, 0, 5).unwrap();
        let b = LoopBounds::from_system(&s).unwrap();
        assert_eq!(b.enumerate().unwrap().len(), 0);
        assert_eq!(b.count_points().unwrap(), 0);
    }

    #[test]
    fn display_spells_ceil_floor() {
        let be = BoundExpr {
            num: ge0(&[1, 0], 3),
            den: 2,
        };
        let names = vec!["i".to_string(), "j".to_string()];
        assert_eq!(be.display_with(&names, true), "ceil((i + 3)/2)");
        assert_eq!(be.display_with(&names, false), "floor((i + 3)/2)");
        let be1 = BoundExpr {
            num: ge0(&[0, 1], 0),
            den: 1,
        };
        assert_eq!(be1.display_with(&names, true), "j");
    }

    #[test]
    fn pruned_bounds_enumerate_identically_with_fewer_rows() {
        use crate::fm::Prune;
        // A triangle plus redundant cuts: same points, fewer rows.
        let mut s = System::universe(2);
        s.add_ge0(ge0(&[1, 0], 0)).unwrap();
        s.add_ge0(ge0(&[0, 1], 0)).unwrap();
        s.add_ge0(ge0(&[-1, -1], 6)).unwrap();
        s.add_ge0(ge0(&[-1, 0], 20)).unwrap(); // x0 <= 20: implied
        s.add_ge0(ge0(&[0, -1], 11)).unwrap(); // x1 <= 11: implied
        s.add_ge0(ge0(&[-2, -1], 40)).unwrap(); // implied
        let pruned = LoopBounds::from_system(&s).unwrap();
        let raw = LoopBounds::from_system_pruned(&s, Prune::None).unwrap();
        assert_eq!(pruned.enumerate().unwrap(), raw.enumerate().unwrap());
        assert!(
            pruned.total_rows() < raw.total_rows(),
            "{} vs {}",
            pruned.total_rows(),
            raw.total_rows()
        );
        // The triangle needs exactly two rows per level.
        assert_eq!(pruned.rows_per_level(), vec![2, 2]);
    }

    #[test]
    fn dominated_parallel_rows_pruned_from_level_bounds() {
        // x >= 0, x <= 5, x <= 9: the dominated upper bound must not
        // survive into the extracted level rows (regression: exact_prune
        // once only synced rows removed by negation tests, not by the
        // structural merge).
        let mut s = System::universe(1);
        s.add_ge0(ge0(&[1], 0)).unwrap();
        s.add_ge0(ge0(&[-1], 5)).unwrap();
        s.add_ge0(ge0(&[-1], 9)).unwrap();
        let b = LoopBounds::from_system(&s).unwrap();
        assert_eq!(b.rows_per_level(), vec![2]);
        assert_eq!(b.range(0, &[]).unwrap(), (0, 5));
    }

    #[test]
    fn three_level_tetrahedron() {
        // 0 <= x0 <= x1 <= x2 <= 3: count = C(5,3)? Enumerate vs filter.
        let mut s = System::universe(3);
        s.add_ge0(ge0(&[1, 0, 0], 0)).unwrap();
        s.add_ge0(ge0(&[-1, 1, 0], 0)).unwrap();
        s.add_ge0(ge0(&[0, -1, 1], 0)).unwrap();
        s.add_ge0(ge0(&[0, 0, -1], 3)).unwrap();
        let b = LoopBounds::from_system(&s).unwrap();
        let got = b.enumerate().unwrap();
        let mut expect = Vec::new();
        for x0 in 0..=3i64 {
            for x1 in x0..=3 {
                for x2 in x1..=3 {
                    expect.push(vec![x0, x1, x2]);
                }
            }
        }
        assert_eq!(got, expect);
    }
}
