//! Property tests: Fourier–Motzkin projection soundness/completeness,
//! loop-bound enumeration exactness, and redundancy-pruning membership
//! preservation on random small polyhedra.

use pdm_matrix::vec::IVec;
use pdm_poly::bounds::LoopBounds;
use pdm_poly::expr::AffineExpr;
use pdm_poly::fm::{eliminate, eliminate_all_stats, Prune};
use pdm_poly::system::System;
use proptest::prelude::*;

/// A random bounded system over `dim` variables: a containing box plus a
/// few random affine cuts.
fn bounded_system(dim: usize) -> impl Strategy<Value = System> {
    let cuts =
        proptest::collection::vec((proptest::collection::vec(-3i64..=3, dim), -6i64..=6), 0..4);
    cuts.prop_map(move |cuts| {
        let mut s = System::universe(dim);
        for i in 0..dim {
            s.add_range(i, -4, 4).unwrap();
        }
        for (coeffs, c) in cuts {
            s.add_ge0(AffineExpr::new(IVec::from_slice(&coeffs), c))
                .unwrap();
        }
        s
    })
}

proptest! {
    /// Projection is exactly ∃-elimination over the integers *when the
    /// eliminated coefficient divides cleanly*; in general it may only
    /// overapproximate (rational shadow), so: every integer point with a
    /// witness is in the projection (completeness), and every projected
    /// point has a *rational* witness — checked here by scanning a denser
    /// grid than the box.
    #[test]
    fn fm_projection_complete(sys in bounded_system(2)) {
        let p = eliminate(&sys, 1).unwrap();
        for x0 in -6..=6i64 {
            let witness = (-6..=6).any(|x1| sys.contains(&[x0, x1]).unwrap());
            if witness {
                prop_assert!(p.contains(&[x0, 0]).unwrap(),
                    "projection lost witnessed x0={x0}");
            }
        }
    }

    /// Enumerated bound points are exactly the members of the system.
    #[test]
    fn bounds_enumeration_is_exact(sys in bounded_system(2)) {
        let b = LoopBounds::from_system(&sys).unwrap();
        let got: std::collections::HashSet<Vec<i64>> =
            b.enumerate().unwrap().into_iter().collect();
        for x0 in -6..=6i64 {
            for x1 in -6..=6i64 {
                let inside = sys.contains(&[x0, x1]).unwrap();
                if inside {
                    prop_assert!(got.contains(&vec![x0, x1]),
                        "member ({x0},{x1}) missing from enumeration");
                }
            }
        }
        // Everything enumerated must satisfy the original system.
        for p in &got {
            prop_assert!(sys.contains(p).unwrap(), "spurious point {p:?}");
        }
    }

    /// Enumeration agrees with count_points.
    #[test]
    fn count_matches_enumeration(sys in bounded_system(3)) {
        let b = LoopBounds::from_system(&sys).unwrap();
        prop_assert_eq!(
            b.count_points().unwrap(),
            b.enumerate().unwrap().len() as u64
        );
    }

    /// Exact pruning preserves integer membership pointwise: for every
    /// grid point, `prune(s).contains(p) == s.contains(p)`.
    #[test]
    fn prune_preserves_integer_membership(sys in bounded_system(2)) {
        let mut pruned = sys.clone();
        pruned.prune_redundant().unwrap();
        prop_assert!(pruned.len() <= sys.len());
        for x0 in -6..=6i64 {
            for x1 in -6..=6i64 {
                prop_assert_eq!(
                    pruned.contains(&[x0, x1]).unwrap(),
                    sys.contains(&[x0, x1]).unwrap(),
                    "membership changed at ({}, {})", x0, x1
                );
            }
        }
    }

    /// Projection after pruning still matches ∃-semantics: every integer
    /// point with a witness stays in the projection (the completeness
    /// direction of the triangle/skew tests), for the pruned system just
    /// as for the raw one.
    #[test]
    fn fm_projection_complete_after_prune(sys in bounded_system(2)) {
        let mut pruned = sys.clone();
        pruned.prune_redundant().unwrap();
        let p = eliminate(&pruned, 1).unwrap();
        for x0 in -6..=6i64 {
            let witness = (-6..=6).any(|x1| sys.contains(&[x0, x1]).unwrap());
            if witness {
                prop_assert!(p.contains(&[x0, 0]).unwrap(),
                    "pruned projection lost witnessed x0={}", x0);
            }
        }
    }

    /// All three pruning levels of `eliminate_all` agree on the
    /// projection's constant-contradiction status and never let pruned
    /// peaks exceed the raw peak; pruned results keep every witnessed
    /// point of the surviving variable.
    #[test]
    fn eliminate_all_prune_levels_agree(sys in bounded_system(3)) {
        let vars = [1usize, 2];
        let (raw, s_raw) = eliminate_all_stats(&sys, &vars, Prune::None).unwrap();
        let (fast, s_fast) = eliminate_all_stats(&sys, &vars, Prune::Fast).unwrap();
        let (exact, s_exact) = eliminate_all_stats(&sys, &vars, Prune::Exact).unwrap();
        prop_assert_eq!(raw.has_constant_contradiction(),
            fast.has_constant_contradiction());
        prop_assert_eq!(raw.has_constant_contradiction(),
            exact.has_constant_contradiction());
        prop_assert!(s_fast.peak_rows <= s_raw.peak_rows);
        prop_assert!(s_exact.peak_rows <= s_raw.peak_rows);
        for x0 in -6..=6i64 {
            let witness = (-4..=4i64).any(|x1| {
                (-4..=4i64).any(|x2| sys.contains(&[x0, x1, x2]).unwrap())
            });
            if witness {
                prop_assert!(fast.contains(&[x0, 0, 0]).unwrap(),
                    "fast projection lost witnessed x0={}", x0);
                prop_assert!(exact.contains(&[x0, 0, 0]).unwrap(),
                    "exact projection lost witnessed x0={}", x0);
            }
        }
    }

    /// Bound enumeration from a pruned system visits exactly the same
    /// points as from the raw system.
    #[test]
    fn pruned_bounds_enumerate_identically(sys in bounded_system(2)) {
        let raw = LoopBounds::from_system_pruned(&sys, Prune::None).unwrap();
        let pruned = LoopBounds::from_system(&sys).unwrap();
        prop_assert!(pruned.total_rows() <= raw.total_rows());
        prop_assert_eq!(raw.enumerate().unwrap(), pruned.enumerate().unwrap());
    }

    /// A unimodular change of variables preserves the number of integer
    /// points (it is a bijection of Z^n).
    #[test]
    fn change_of_variables_preserves_cardinality(
        sys in bounded_system(2),
        k in -2i64..=2,
    ) {
        // x0 = y0, x1 = y1 - k*y0  (inverse of a skew).
        let exprs = vec![
            AffineExpr::new(IVec::from_slice(&[1, 0]), 0),
            AffineExpr::new(IVec::from_slice(&[-k, 1]), 0),
        ];
        let t = sys.change_of_variables(&exprs, 2).unwrap();
        let b0 = LoopBounds::from_system(&sys).unwrap();
        let b1 = LoopBounds::from_system(&t).unwrap();
        prop_assert_eq!(b0.count_points().unwrap(), b1.count_points().unwrap());
    }
}
