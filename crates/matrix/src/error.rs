//! Error type shared by all exact-arithmetic routines.

use std::fmt;

/// Errors produced by exact integer linear algebra.
///
/// Every public routine in this crate returns `Result<_, MatrixError>`
/// rather than panicking: dependence analysis is run over user-supplied
/// loop nests, and a malformed nest (or an overflowing reduction) must be
/// reported, not crash the compiler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// An intermediate value exceeded the `i64` range.
    Overflow,
    /// Two operands had incompatible dimensions.
    DimMismatch {
        /// Human-readable description of the failing operation.
        op: &'static str,
        /// Dimensions of the left operand (rows, cols).
        lhs: (usize, usize),
        /// Dimensions of the right operand (rows, cols).
        rhs: (usize, usize),
    },
    /// A square matrix was required.
    NotSquare {
        /// Actual dimensions.
        dims: (usize, usize),
    },
    /// A matrix expected to be unimodular had `|det| != 1`.
    NotUnimodular {
        /// The offending determinant.
        det: i64,
    },
    /// A full-rank matrix was required (e.g. for partitioning).
    Singular,
    /// An index was out of bounds.
    IndexOutOfBounds {
        /// The offending index (row, col).
        index: (usize, usize),
        /// Matrix dimensions.
        dims: (usize, usize),
    },
    /// A matrix or vector with at least one row/element was required.
    Empty,
    /// A linear diophantine system has no integral solution.
    NoIntegerSolution,
    /// An iteration space or polyhedron is unbounded where a finite bound
    /// is required (e.g. for enumeration or execution).
    Unbounded,
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::Overflow => write!(f, "integer overflow in exact arithmetic"),
            MatrixError::DimMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: {}x{} vs {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            MatrixError::NotSquare { dims } => {
                write!(f, "square matrix required, got {}x{}", dims.0, dims.1)
            }
            MatrixError::NotUnimodular { det } => {
                write!(f, "unimodular matrix required, determinant is {det}")
            }
            MatrixError::Singular => write!(f, "full-rank matrix required"),
            MatrixError::IndexOutOfBounds { index, dims } => write!(
                f,
                "index ({}, {}) out of bounds for {}x{} matrix",
                index.0, index.1, dims.0, dims.1
            ),
            MatrixError::Empty => write!(f, "non-empty matrix or vector required"),
            MatrixError::NoIntegerSolution => {
                write!(f, "linear diophantine system has no integer solution")
            }
            MatrixError::Unbounded => {
                write!(
                    f,
                    "polyhedron is unbounded where a finite bound is required"
                )
            }
        }
    }
}

impl std::error::Error for MatrixError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MatrixError::DimMismatch {
            op: "mul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let s = e.to_string();
        assert!(s.contains("mul"));
        assert!(s.contains("2x3"));
        assert!(s.contains("4x5"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(MatrixError::Overflow);
        assert!(e.to_string().contains("overflow"));
    }

    #[test]
    fn eq_and_clone() {
        let e = MatrixError::NotUnimodular { det: 2 };
        assert_eq!(e.clone(), e);
        assert_ne!(e, MatrixError::Overflow);
    }
}
