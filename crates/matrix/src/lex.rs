//! Lexicographic order on integer vectors and echelon-matrix predicates.
//!
//! The entire legality theory of the paper is phrased lexicographically:
//! a dependence distance must be `≻ 0` (executed later), and Theorem 1 says
//! a unimodular `T` is legal iff `H·T` is an echelon matrix whose rows are
//! lexicographically positive. This module supplies exactly those
//! predicates.

use crate::mat::IMat;
use std::cmp::Ordering;

/// Lexicographic comparison of two equal-length integer vectors.
///
/// `lex_cmp(a, b) == Ordering::Less` means `a ≺ b`: at the first differing
/// index, `a` has the smaller component.
pub fn lex_cmp(a: &[i64], b: &[i64]) -> Ordering {
    debug_assert_eq!(a.len(), b.len(), "lex_cmp on unequal dims");
    for (&x, &y) in a.iter().zip(b) {
        match x.cmp(&y) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    Ordering::Equal
}

/// Is `v ≻ 0`, i.e. is the first nonzero component positive?
pub fn is_lex_positive(v: &[i64]) -> bool {
    for &x in v {
        if x != 0 {
            return x > 0;
        }
    }
    false
}

/// Is `v ≺ 0`?
pub fn is_lex_negative(v: &[i64]) -> bool {
    for &x in v {
        if x != 0 {
            return x < 0;
        }
    }
    false
}

/// Is `v ⪰ 0` (lexicographically positive or zero)?
pub fn is_lex_nonnegative(v: &[i64]) -> bool {
    !is_lex_negative(v)
}

/// Is `m` an echelon matrix?
///
/// Per the paper's definition: only the first `r` rows are nonzero, and the
/// levels (index of first nonzero entry) of successive nonzero rows strictly
/// increase.
pub fn is_echelon(m: &IMat) -> bool {
    let mut last_level: Option<usize> = None;
    let mut seen_zero_row = false;
    for i in 0..m.rows() {
        let row = m.row(i);
        match row.iter().position(|&x| x != 0) {
            None => seen_zero_row = true,
            Some(level) => {
                if seen_zero_row {
                    return false; // nonzero row after a zero row
                }
                if let Some(l) = last_level {
                    if level <= l {
                        return false;
                    }
                }
                last_level = Some(level);
            }
        }
    }
    true
}

/// Is `m` echelon with every nonzero row lexicographically positive?
///
/// This is the exact hypothesis of Theorem 1 (legality of a unimodular
/// transformation) and Lemma 2 (membership in the row lattice preserves
/// lexicographic sign).
pub fn is_lex_positive_echelon(m: &IMat) -> bool {
    if !is_echelon(m) {
        return false;
    }
    (0..m.rows()).all(|i| {
        let row = m.row(i);
        row.iter().all(|&x| x == 0) || is_lex_positive(row)
    })
}

/// Iterate integer vectors of dimension `n` with components in
/// `[-bound, bound]`, in lexicographic order. Used by tests and by the
/// brute-force cross-validation of lattice predicates.
pub fn small_vectors(n: usize, bound: i64) -> impl Iterator<Item = Vec<i64>> {
    let width = (2 * bound + 1) as usize;
    let total = width.pow(n as u32);
    (0..total).map(move |mut k| {
        let mut v = vec![0i64; n];
        for slot in v.iter_mut().rev() {
            *slot = (k % width) as i64 - bound;
            k /= width;
        }
        v
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::IMat;

    #[test]
    fn lex_cmp_orders_first_difference() {
        assert_eq!(lex_cmp(&[1, 0], &[1, 1]), Ordering::Less);
        assert_eq!(lex_cmp(&[2, -5], &[1, 100]), Ordering::Greater);
        assert_eq!(lex_cmp(&[3, 3], &[3, 3]), Ordering::Equal);
        assert_eq!(lex_cmp(&[0, 1, 0], &[0, 0, 9]), Ordering::Greater);
    }

    #[test]
    fn lex_sign_predicates() {
        assert!(is_lex_positive(&[0, 2, -1]));
        assert!(!is_lex_positive(&[0, -2, 1]));
        assert!(!is_lex_positive(&[0, 0, 0]));
        assert!(is_lex_negative(&[-1, 5]));
        assert!(!is_lex_negative(&[0, 0]));
        assert!(is_lex_nonnegative(&[0, 0]));
        assert!(is_lex_nonnegative(&[0, 1]));
        assert!(!is_lex_nonnegative(&[-1, 1]));
    }

    #[test]
    fn echelon_detection() {
        let e = IMat::from_rows(&[vec![2, 1, 0], vec![0, 0, 3], vec![0, 0, 0]]).unwrap();
        assert!(is_echelon(&e));
        assert!(is_lex_positive_echelon(&e));

        // Levels not increasing.
        let bad = IMat::from_rows(&[vec![0, 1, 0], vec![1, 0, 0]]).unwrap();
        assert!(!is_echelon(&bad));

        // Equal levels.
        let bad2 = IMat::from_rows(&[vec![1, 0], vec![2, 1]]).unwrap();
        assert!(!is_echelon(&bad2));

        // Nonzero row after zero row.
        let bad3 = IMat::from_rows(&[vec![0, 0], vec![0, 1]]).unwrap();
        assert!(!is_echelon(&bad3));

        // Echelon but a row is lex-negative.
        let neg = IMat::from_rows(&[vec![1, 5], vec![0, -2]]).unwrap();
        assert!(is_echelon(&neg));
        assert!(!is_lex_positive_echelon(&neg));
    }

    #[test]
    fn zero_matrix_is_echelon() {
        let z = IMat::zeros(2, 3);
        assert!(is_echelon(&z));
        assert!(is_lex_positive_echelon(&z));
    }

    #[test]
    fn small_vectors_enumerates_all() {
        let all: Vec<_> = small_vectors(2, 1).collect();
        assert_eq!(all.len(), 9);
        assert!(all.contains(&vec![-1, -1]));
        assert!(all.contains(&vec![0, 0]));
        assert!(all.contains(&vec![1, 1]));
        // Lexicographic enumeration order.
        assert_eq!(all[0], vec![-1, -1]);
        assert_eq!(all[8], vec![1, 1]);
    }
}
