//! Verified unimodular matrices and their exact inverses.
//!
//! A unimodular matrix (integer, `|det| = 1`) is a bijection of the integer
//! lattice `Zⁿ` onto itself — the only loop transformations that reorder an
//! iteration space one-to-one (legality property 1 of the paper). This
//! module wraps `IMat` in a type whose constructor *proves* unimodularity
//! and which can always produce the exact integer inverse.
//!
//! The elementary constructors mirror the paper's §3.1 vocabulary:
//! `skewing(i, j, k)` (add `k`·column_i to column_j, "right skewing"),
//! `interchange(i, j)`, `reversal(i)`, and the cyclic `shift(from, to)`.
//! Transformations act on **row** index vectors by right multiplication:
//! `j = i · T`.

use crate::det::det;
use crate::hnf::hermite_normal_form;
use crate::mat::IMat;
use crate::vec::IVec;
use crate::{MatrixError, Result};
use std::fmt;

/// A square integer matrix with `|det| = 1`, verified at construction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Unimodular {
    mat: IMat,
}

impl Unimodular {
    /// Wrap a matrix, verifying `|det| = 1`.
    pub fn new(mat: IMat) -> Result<Self> {
        if !mat.is_square() {
            return Err(MatrixError::NotSquare {
                dims: (mat.rows(), mat.cols()),
            });
        }
        let d = det(&mat)?;
        if d.abs() != 1 {
            return Err(MatrixError::NotUnimodular { det: d });
        }
        Ok(Unimodular { mat })
    }

    /// The `n × n` identity transformation.
    pub fn identity(n: usize) -> Self {
        Unimodular {
            mat: IMat::identity(n),
        }
    }

    /// Right skewing `skewing(i, j, k)`: adds `k ×` column `i` to column `j`
    /// of any matrix multiplied on the right by this transform. In loop
    /// terms: new index `u_j = i_j + k·i_i`.
    ///
    /// Legal for `i < j` whenever the PDM is lex-positive echelon
    /// (Corollary 2).
    pub fn skewing(n: usize, i: usize, j: usize, k: i64) -> Result<Self> {
        if i >= n || j >= n || i == j {
            return Err(MatrixError::IndexOutOfBounds {
                index: (i, j),
                dims: (n, n),
            });
        }
        let mut m = IMat::identity(n);
        m.set(i, j, k);
        Ok(Unimodular { mat: m })
    }

    /// Interchange of loops `i` and `j` (column swap).
    pub fn interchange(n: usize, i: usize, j: usize) -> Result<Self> {
        if i >= n || j >= n {
            return Err(MatrixError::IndexOutOfBounds {
                index: (i, j),
                dims: (n, n),
            });
        }
        let mut m = IMat::identity(n);
        m.swap_cols(i, j);
        Ok(Unimodular { mat: m })
    }

    /// Reversal of loop `i` (negated column).
    pub fn reversal(n: usize, i: usize) -> Result<Self> {
        if i >= n {
            return Err(MatrixError::IndexOutOfBounds {
                index: (i, i),
                dims: (n, n),
            });
        }
        let mut m = IMat::identity(n);
        m.set(i, i, -1);
        Ok(Unimodular { mat: m })
    }

    /// Cyclic shift moving loop `from` to position `to` (the paper's
    /// `shift` transformation, used to move parallel loops outermost or
    /// innermost).
    pub fn shift(n: usize, from: usize, to: usize) -> Result<Self> {
        if from >= n || to >= n {
            return Err(MatrixError::IndexOutOfBounds {
                index: (from, to),
                dims: (n, n),
            });
        }
        let mut m = IMat::identity(n);
        m.shift_col(from, to);
        Ok(Unimodular { mat: m })
    }

    /// Build from an arbitrary permutation of `0..n`.
    pub fn permutation(perm: &[usize]) -> Result<Self> {
        let n = perm.len();
        let mut seen = vec![false; n];
        let mut m = IMat::zeros(n, n);
        for (i, &p) in perm.iter().enumerate() {
            if p >= n || seen[p] {
                return Err(MatrixError::IndexOutOfBounds {
                    index: (i, p),
                    dims: (n, n),
                });
            }
            seen[p] = true;
            // Index vector i maps to j with j[p] = i[i]: column p of row i.
            m.set(i, p, 1);
        }
        Ok(Unimodular { mat: m })
    }

    /// The underlying matrix.
    pub fn mat(&self) -> &IMat {
        &self.mat
    }

    /// Dimension `n` of the transformation.
    pub fn dim(&self) -> usize {
        self.mat.rows()
    }

    /// Exact inverse, again unimodular.
    ///
    /// Computed by Hermite-reducing `self` to the identity and reading the
    /// accumulated row transform: if `W·M = I` then `W = M⁻¹`.
    pub fn inverse(&self) -> Result<Unimodular> {
        let h = hermite_normal_form(&self.mat)?;
        // HNF of a unimodular matrix is the identity (det ±1 forces all
        // pivots to 1 and the reduction clears everything above).
        debug_assert_eq!(h.hnf, IMat::identity(self.dim()));
        Ok(Unimodular { mat: h.u })
    }

    /// Compose: `self · other` (apply `self` first when transforming row
    /// vectors by right multiplication: `i · (self · other)`).
    pub fn compose(&self, other: &Unimodular) -> Result<Unimodular> {
        Ok(Unimodular {
            mat: self.mat.mul(&other.mat)?,
        })
    }

    /// Apply to a row index vector: `i · T`.
    pub fn apply(&self, v: &IVec) -> Result<IVec> {
        self.mat.vec_mul(v)
    }

    /// Apply the inverse to a row index vector (`j · T⁻¹`), e.g. to recover
    /// original indices inside a transformed loop body.
    pub fn apply_inverse(&self, v: &IVec) -> Result<IVec> {
        self.inverse()?.apply(v)
    }
}

impl fmt::Display for Unimodular {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mat)
    }
}

impl AsRef<IMat> for Unimodular {
    fn as_ref(&self) -> &IMat {
        &self.mat
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[Vec<i64>]) -> IMat {
        IMat::from_rows(rows).unwrap()
    }

    #[test]
    fn constructor_verifies() {
        assert!(Unimodular::new(m(&[vec![1, 1], vec![0, 1]])).is_ok());
        assert!(matches!(
            Unimodular::new(m(&[vec![2, 0], vec![0, 1]])),
            Err(MatrixError::NotUnimodular { det: 2 })
        ));
        assert!(matches!(
            Unimodular::new(IMat::zeros(2, 3)),
            Err(MatrixError::NotSquare { .. })
        ));
    }

    #[test]
    fn paper_4_8_transform_is_unimodular() {
        // §4.1 eq. (4.8): T = [[1, -1], [0, 1]] ... the paper's T maps
        // (i1,i2) to (i1, i2-i1)-style skew; verify our skewing builder
        // produces a legal unimodular matrix of that shape.
        let t = Unimodular::skewing(2, 0, 1, -1).unwrap();
        assert_eq!(t.mat(), &m(&[vec![1, -1], vec![0, 1]]));
        let inv = t.inverse().unwrap();
        assert_eq!(inv.mat(), &m(&[vec![1, 1], vec![0, 1]]));
    }

    #[test]
    fn inverse_roundtrip() {
        let t = Unimodular::new(m(&[vec![2, 1], vec![1, 1]])).unwrap();
        let inv = t.inverse().unwrap();
        assert_eq!(t.mat().mul(inv.mat()).unwrap(), IMat::identity(2));
        assert_eq!(inv.mat().mul(t.mat()).unwrap(), IMat::identity(2));
    }

    #[test]
    fn elementary_constructors() {
        let ic = Unimodular::interchange(3, 0, 2).unwrap();
        let v = IVec::from_slice(&[1, 2, 3]);
        assert_eq!(ic.apply(&v).unwrap().as_slice(), &[3, 2, 1]);

        let rev = Unimodular::reversal(2, 1).unwrap();
        assert_eq!(
            rev.apply(&IVec::from_slice(&[4, 5])).unwrap().as_slice(),
            &[4, -5]
        );

        let sh = Unimodular::shift(3, 2, 0).unwrap();
        assert_eq!(
            sh.apply(&IVec::from_slice(&[1, 2, 3])).unwrap().as_slice(),
            &[3, 1, 2]
        );

        let sk = Unimodular::skewing(2, 0, 1, 3).unwrap();
        // u = (i1, i2 + 3 i1)
        assert_eq!(
            sk.apply(&IVec::from_slice(&[2, 5])).unwrap().as_slice(),
            &[2, 11]
        );
    }

    #[test]
    fn permutation_builder() {
        let p = Unimodular::permutation(&[2, 0, 1]).unwrap();
        // index vector (a,b,c): a goes to slot 2, b to slot 0, c to slot 1.
        assert_eq!(
            p.apply(&IVec::from_slice(&[1, 2, 3])).unwrap().as_slice(),
            &[2, 3, 1]
        );
        assert!(Unimodular::permutation(&[0, 0]).is_err());
        assert!(Unimodular::permutation(&[0, 5]).is_err());
    }

    #[test]
    fn compose_applies_left_to_right() {
        let a = Unimodular::skewing(2, 0, 1, 1).unwrap();
        let b = Unimodular::interchange(2, 0, 1).unwrap();
        let ab = a.compose(&b).unwrap();
        let v = IVec::from_slice(&[3, 4]);
        let direct = b.apply(&a.apply(&v).unwrap()).unwrap();
        assert_eq!(ab.apply(&v).unwrap(), direct);
    }

    #[test]
    fn apply_inverse_undoes_apply() {
        let t = Unimodular::new(m(&[vec![1, 2], vec![1, 3]])).unwrap();
        let v = IVec::from_slice(&[-7, 11]);
        let w = t.apply(&v).unwrap();
        assert_eq!(t.apply_inverse(&w).unwrap(), v);
    }

    #[test]
    fn invalid_elementary_indices() {
        assert!(Unimodular::skewing(2, 1, 1, 3).is_err());
        assert!(Unimodular::skewing(2, 0, 2, 3).is_err());
        assert!(Unimodular::interchange(2, 0, 2).is_err());
        assert!(Unimodular::reversal(2, 2).is_err());
        assert!(Unimodular::shift(2, 0, 2).is_err());
    }
}
