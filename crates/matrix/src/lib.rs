//! # pdm-matrix — exact integer linear algebra for loop dependence analysis
//!
//! This crate is the numeric substrate of the *pseudo distance matrix* (PDM)
//! loop parallelizer (Yu & D'Hollander, ICPP 2000). Everything here is exact
//! integer arithmetic over `i64` with overflow detection — dependence
//! analysis must never silently wrap, because a wrapped entry produces an
//! *incorrect but plausible* transformation.
//!
//! Following the paper, **vectors are row vectors** and lattices are *row*
//! spaces: an index vector `i` maps through a subscript matrix as `i·A + b`,
//! and a lattice `L(H)` is the set `{ x·H : x ∈ Zᵏ }` of integer combinations
//! of the rows of `H`.
//!
//! Provided algorithms:
//! * extended GCD and GCD of slices ([`gcd`]),
//! * unimodular **row echelon** reduction `U·A = E` ([`echelon`]),
//! * **Hermite normal form** (the canonical lattice basis used as the PDM)
//!   ([`hnf`]),
//! * **Smith normal form** ([`snf`]),
//! * fraction-free (Bareiss) **determinant** ([`det`]),
//! * verified **unimodular** matrices with exact inverses ([`unimodular`]),
//! * integer **lattices**: membership, equality, index ([`lattice`]),
//! * linear diophantine system solving ([`solve`]).
//!
//! ```
//! use pdm_matrix::{IMat, hnf::hermite_normal_form};
//!
//! // The two generator rows of the paper's §4.1 example...
//! let g = IMat::from_rows(&[vec![2, 2], vec![0, 3]]).unwrap();
//! let h = hermite_normal_form(&g).unwrap().hnf;
//! // ...reduce to the pseudo distance matrix of eq. (4.7).
//! assert_eq!(h, IMat::from_rows(&[vec![2, 2], vec![0, 3]]).unwrap());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod det;
pub mod echelon;
pub mod error;
pub mod gcd;
pub mod hnf;
pub mod lattice;
pub mod lex;
pub mod mat;
pub mod num;
pub mod snf;
pub mod solve;
pub mod unimodular;
pub mod vec;

pub use error::MatrixError;
pub use lattice::Lattice;
pub use mat::IMat;
pub use unimodular::Unimodular;
pub use vec::IVec;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MatrixError>;
