//! Checked scalar arithmetic helpers.
//!
//! All reduction algorithms in this crate (echelon, HNF, SNF, Bareiss)
//! funnel their scalar arithmetic through these helpers so an overflow is
//! surfaced as [`MatrixError::Overflow`] instead of wrapping. The dependence
//! matrices the parallelizer manipulates are tiny (entries are subscript
//! coefficients and loop strides), but adversarial inputs and randomized
//! property tests must not be able to corrupt a reduction silently.

use crate::{MatrixError, Result};

/// Checked addition.
#[inline]
pub fn cadd(a: i64, b: i64) -> Result<i64> {
    a.checked_add(b).ok_or(MatrixError::Overflow)
}

/// Checked subtraction.
#[inline]
pub fn csub(a: i64, b: i64) -> Result<i64> {
    a.checked_sub(b).ok_or(MatrixError::Overflow)
}

/// Checked multiplication.
#[inline]
pub fn cmul(a: i64, b: i64) -> Result<i64> {
    a.checked_mul(b).ok_or(MatrixError::Overflow)
}

/// Checked negation (`-i64::MIN` overflows).
#[inline]
pub fn cneg(a: i64) -> Result<i64> {
    a.checked_neg().ok_or(MatrixError::Overflow)
}

/// `a + b*c` with overflow checking, the fused kernel of every row operation.
#[inline]
pub fn cmuladd(a: i64, b: i64, c: i64) -> Result<i64> {
    cadd(a, cmul(b, c)?)
}

/// Floor division: rounds toward negative infinity (Rust's `/` truncates).
///
/// Used when reducing entries above an HNF pivot and when computing the
/// partitioned loop bounds of Theorem 2, where `mod` must be nonnegative.
#[inline]
pub fn floor_div(a: i64, b: i64) -> Result<i64> {
    if b == 0 {
        return Err(MatrixError::Singular);
    }
    let q = a.wrapping_div(b);
    let r = a.wrapping_rem(b);
    // Truncated toward zero; step one back when signs disagree and there is
    // a remainder.
    if r != 0 && ((r < 0) != (b < 0)) {
        csub(q, 1)
    } else if a == i64::MIN && b == -1 {
        Err(MatrixError::Overflow)
    } else {
        Ok(q)
    }
}

/// Ceiling division: rounds toward positive infinity.
#[inline]
pub fn ceil_div(a: i64, b: i64) -> Result<i64> {
    if b == 0 {
        return Err(MatrixError::Singular);
    }
    if a == i64::MIN && b == -1 {
        return Err(MatrixError::Overflow);
    }
    let q = a.wrapping_div(b);
    let r = a.wrapping_rem(b);
    if r != 0 && ((r < 0) == (b < 0)) {
        cadd(q, 1)
    } else {
        Ok(q)
    }
}

/// Euclidean (always nonnegative) remainder: `a - floor_div(a,b)*b`.
#[inline]
pub fn emod(a: i64, b: i64) -> Result<i64> {
    let q = floor_div(a, b)?;
    csub(a, cmul(q, b)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checked_ops_catch_overflow() {
        assert_eq!(cadd(i64::MAX, 1), Err(MatrixError::Overflow));
        assert_eq!(csub(i64::MIN, 1), Err(MatrixError::Overflow));
        assert_eq!(cmul(i64::MAX, 2), Err(MatrixError::Overflow));
        assert_eq!(cneg(i64::MIN), Err(MatrixError::Overflow));
        assert_eq!(cmuladd(1, i64::MAX, 2), Err(MatrixError::Overflow));
    }

    #[test]
    fn checked_ops_pass_through() {
        assert_eq!(cadd(2, 3).unwrap(), 5);
        assert_eq!(csub(2, 3).unwrap(), -1);
        assert_eq!(cmul(-4, 3).unwrap(), -12);
        assert_eq!(cmuladd(10, -2, 3).unwrap(), 4);
    }

    #[test]
    fn floor_div_rounds_down() {
        assert_eq!(floor_div(7, 2).unwrap(), 3);
        assert_eq!(floor_div(-7, 2).unwrap(), -4);
        assert_eq!(floor_div(7, -2).unwrap(), -4);
        assert_eq!(floor_div(-7, -2).unwrap(), 3);
        assert_eq!(floor_div(6, 3).unwrap(), 2);
        assert_eq!(floor_div(-6, 3).unwrap(), -2);
    }

    #[test]
    fn ceil_div_rounds_up() {
        assert_eq!(ceil_div(7, 2).unwrap(), 4);
        assert_eq!(ceil_div(-7, 2).unwrap(), -3);
        assert_eq!(ceil_div(7, -2).unwrap(), -3);
        assert_eq!(ceil_div(-7, -2).unwrap(), 4);
        assert_eq!(ceil_div(6, 3).unwrap(), 2);
    }

    #[test]
    fn emod_is_nonnegative_for_positive_modulus() {
        for a in -20..=20 {
            for b in 1..=7 {
                let m = emod(a, b).unwrap();
                assert!((0..b).contains(&m), "emod({a},{b}) = {m}");
                assert_eq!((a - m) % b, 0);
            }
        }
    }

    #[test]
    fn division_by_zero_is_an_error() {
        assert!(floor_div(1, 0).is_err());
        assert!(ceil_div(1, 0).is_err());
        assert!(emod(1, 0).is_err());
    }

    #[test]
    fn division_min_by_minus_one_is_overflow() {
        assert_eq!(floor_div(i64::MIN, -1), Err(MatrixError::Overflow));
        assert_eq!(ceil_div(i64::MIN, -1), Err(MatrixError::Overflow));
    }

    #[test]
    fn floor_ceil_consistent_with_exact_division() {
        for a in -30..=30 {
            for b in [-5, -2, -1, 1, 2, 5] {
                let f = floor_div(a, b).unwrap();
                let c = ceil_div(a, b).unwrap();
                if b > 0 {
                    assert!(f * b <= a && a < (f + 1) * b, "floor({a},{b})={f}");
                } else {
                    assert!(f * b >= a && a > (f + 1) * b, "floor({a},{b})={f}");
                }
                if a % b == 0 {
                    assert_eq!(f, c);
                } else {
                    assert_eq!(c, f + 1);
                }
            }
        }
    }
}
