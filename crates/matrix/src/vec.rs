//! Integer row vectors.
//!
//! `IVec` is a thin, owned wrapper over `Vec<i64>` with the exact-arithmetic
//! operations dependence analysis needs: checked add/sub/scale, dot products
//! accumulated in `i128`, and the *leading element / level* terminology of
//! the paper (the level of a row is the index of its first nonzero entry,
//! which drives echelon-form bookkeeping and lexicographic reasoning).

use crate::num::{cadd, cmul, cneg, csub};
use crate::{MatrixError, Result};
use std::fmt;
use std::ops::{Deref, Index, IndexMut};

/// An owned integer row vector.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct IVec(pub Vec<i64>);

impl IVec {
    /// A zero vector of dimension `n`.
    pub fn zeros(n: usize) -> Self {
        IVec(vec![0; n])
    }

    /// The `i`-th standard basis row vector of dimension `n`.
    pub fn unit(n: usize, i: usize) -> Self {
        let mut v = vec![0; n];
        v[i] = 1;
        IVec(v)
    }

    /// Build from a slice.
    pub fn from_slice(xs: &[i64]) -> Self {
        IVec(xs.to_vec())
    }

    /// Dimension of the vector.
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Is every component zero?
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&x| x == 0)
    }

    /// The *leading element*: value of the first nonzero component.
    pub fn leading(&self) -> Option<i64> {
        self.0.iter().copied().find(|&x| x != 0)
    }

    /// The *level*: index of the first nonzero component (`None` if zero).
    ///
    /// Matches the paper's definition: the level of row `h` is the index of
    /// its leading element.
    pub fn level(&self) -> Option<usize> {
        self.0.iter().position(|&x| x != 0)
    }

    /// Component-wise sum.
    pub fn add(&self, other: &IVec) -> Result<IVec> {
        self.zip_with(other, cadd, "vec add")
    }

    /// Component-wise difference.
    pub fn sub(&self, other: &IVec) -> Result<IVec> {
        self.zip_with(other, csub, "vec sub")
    }

    /// Scale every component by `k`.
    pub fn scale(&self, k: i64) -> Result<IVec> {
        self.0
            .iter()
            .map(|&x| cmul(x, k))
            .collect::<Result<_>>()
            .map(IVec)
    }

    /// Negate every component.
    pub fn neg(&self) -> Result<IVec> {
        self.0
            .iter()
            .map(|&x| cneg(x))
            .collect::<Result<_>>()
            .map(IVec)
    }

    /// `self + k * other`, the fused row-operation kernel.
    pub fn add_scaled(&self, k: i64, other: &IVec) -> Result<IVec> {
        if self.dim() != other.dim() {
            return Err(MatrixError::DimMismatch {
                op: "add_scaled",
                lhs: (1, self.dim()),
                rhs: (1, other.dim()),
            });
        }
        self.0
            .iter()
            .zip(&other.0)
            .map(|(&a, &b)| crate::num::cmuladd(a, k, b))
            .collect::<Result<_>>()
            .map(IVec)
    }

    /// Dot product, accumulated in `i128` and checked on the way out.
    pub fn dot(&self, other: &IVec) -> Result<i64> {
        if self.dim() != other.dim() {
            return Err(MatrixError::DimMismatch {
                op: "dot",
                lhs: (1, self.dim()),
                rhs: (1, other.dim()),
            });
        }
        let acc: i128 = self
            .0
            .iter()
            .zip(&other.0)
            .map(|(&a, &b)| a as i128 * b as i128)
            .sum();
        i64::try_from(acc).map_err(|_| MatrixError::Overflow)
    }

    /// GCD of all components (0 for the zero vector).
    pub fn content(&self) -> i64 {
        crate::gcd::gcd_slice(&self.0)
    }

    /// Divide every component by `d`, which must divide them all exactly.
    pub fn exact_div(&self, d: i64) -> Result<IVec> {
        if d == 0 {
            return Err(MatrixError::Singular);
        }
        self.0
            .iter()
            .map(|&x| {
                if x % d == 0 {
                    Ok(x / d)
                } else {
                    Err(MatrixError::NoIntegerSolution)
                }
            })
            .collect::<Result<_>>()
            .map(IVec)
    }

    /// Access the underlying slice.
    pub fn as_slice(&self) -> &[i64] {
        &self.0
    }

    fn zip_with(
        &self,
        other: &IVec,
        f: impl Fn(i64, i64) -> Result<i64>,
        op: &'static str,
    ) -> Result<IVec> {
        if self.dim() != other.dim() {
            return Err(MatrixError::DimMismatch {
                op,
                lhs: (1, self.dim()),
                rhs: (1, other.dim()),
            });
        }
        self.0
            .iter()
            .zip(&other.0)
            .map(|(&a, &b)| f(a, b))
            .collect::<Result<_>>()
            .map(IVec)
    }
}

impl Deref for IVec {
    type Target = [i64];
    fn deref(&self) -> &[i64] {
        &self.0
    }
}

impl Index<usize> for IVec {
    type Output = i64;
    fn index(&self, i: usize) -> &i64 {
        &self.0[i]
    }
}

impl IndexMut<usize> for IVec {
    fn index_mut(&mut self, i: usize) -> &mut i64 {
        &mut self.0[i]
    }
}

impl From<Vec<i64>> for IVec {
    fn from(v: Vec<i64>) -> Self {
        IVec(v)
    }
}

impl FromIterator<i64> for IVec {
    fn from_iter<T: IntoIterator<Item = i64>>(iter: T) -> Self {
        IVec(iter.into_iter().collect())
    }
}

impl fmt::Display for IVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, x) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let v = IVec::from_slice(&[0, 0, -3, 1]);
        assert_eq!(v.dim(), 4);
        assert!(!v.is_zero());
        assert_eq!(v.leading(), Some(-3));
        assert_eq!(v.level(), Some(2));
        assert_eq!(v[2], -3);
        assert!(IVec::zeros(3).is_zero());
        assert_eq!(IVec::zeros(3).level(), None);
        assert_eq!(IVec::unit(3, 1).as_slice(), &[0, 1, 0]);
    }

    #[test]
    fn arithmetic() {
        let a = IVec::from_slice(&[1, 2, 3]);
        let b = IVec::from_slice(&[4, -5, 6]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5, -3, 9]);
        assert_eq!(a.sub(&b).unwrap().as_slice(), &[-3, 7, -3]);
        assert_eq!(a.scale(-2).unwrap().as_slice(), &[-2, -4, -6]);
        assert_eq!(a.neg().unwrap().as_slice(), &[-1, -2, -3]);
        assert_eq!(a.add_scaled(2, &b).unwrap().as_slice(), &[9, -8, 15]);
        assert_eq!(a.dot(&b).unwrap(), 4 - 10 + 18);
    }

    #[test]
    fn dim_mismatch_reported() {
        let a = IVec::from_slice(&[1, 2]);
        let b = IVec::from_slice(&[1]);
        assert!(matches!(a.add(&b), Err(MatrixError::DimMismatch { .. })));
        assert!(matches!(a.dot(&b), Err(MatrixError::DimMismatch { .. })));
    }

    #[test]
    fn dot_overflow_detected() {
        let a = IVec::from_slice(&[i64::MAX, i64::MAX]);
        let b = IVec::from_slice(&[2, 2]);
        assert_eq!(a.dot(&b), Err(MatrixError::Overflow));
    }

    #[test]
    fn dot_large_intermediate_ok() {
        // Intermediate products overflow i64 but the sum fits.
        let a = IVec::from_slice(&[i64::MAX / 2, -(i64::MAX / 2)]);
        let b = IVec::from_slice(&[2, 2]);
        assert_eq!(a.dot(&b).unwrap(), 0);
    }

    #[test]
    fn content_and_exact_div() {
        let v = IVec::from_slice(&[6, -9, 12]);
        assert_eq!(v.content(), 3);
        assert_eq!(v.exact_div(3).unwrap().as_slice(), &[2, -3, 4]);
        assert_eq!(v.exact_div(4), Err(MatrixError::NoIntegerSolution));
        assert_eq!(v.exact_div(0), Err(MatrixError::Singular));
    }

    #[test]
    fn display_format() {
        assert_eq!(IVec::from_slice(&[1, -2]).to_string(), "(1, -2)");
        assert_eq!(IVec::zeros(0).to_string(), "()");
    }
}
