//! Linear diophantine systems `x·A = c` (eq. 2.6–2.10 of the paper).
//!
//! The dependence equations of a reference pair form exactly such a system:
//! `x = (i, j)` is the concatenated pair of iteration vectors and `A` stacks
//! the subscript coefficient matrices. The solution method is the paper's:
//! reduce `A` to row echelon `E = U·A`; then `x·A = c ⇔ t·E = c` with
//! `t = x·U⁻¹`, and `t` splits into `rank` *determined* components (forward
//! substitution, each division must be exact or there is **no dependence**)
//! and `m − rank` *free* components. Back in `x`-space the general solution
//! is `x = t_det·U_det + span_Z(rows of U_free)`.

use crate::echelon::row_echelon;
use crate::mat::IMat;
use crate::vec::IVec;
use crate::{MatrixError, Result};

/// General solution of `x·A = c` over the integers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DioSolution {
    /// One particular solution `x₀` (dimension = rows of `A`).
    pub particular: IVec,
    /// Basis of the homogeneous solution lattice, one row per free
    /// variable (`(m − rank) × m`). Every solution is
    /// `x₀ + z·basis` for `z ∈ Z^{m−rank}`.
    pub basis: IMat,
    /// Rank of `A` (number of determined components).
    pub rank: usize,
    /// The fixed components `t₁..t_r` of the transformed unknown `t`
    /// (useful for deriving the constant part of distance vectors).
    pub t_fixed: IVec,
    /// The unimodular `U` of the echelon reduction `U·A = E`.
    pub u: IMat,
}

/// Solve `x·A = c` over `Z`.
///
/// Returns `Ok(None)` when the system has no integer solution (the GCD/
/// exact-division test fails during forward substitution) — i.e. the two
/// references can never touch the same element and there is no dependence.
pub fn solve_dio(a: &IMat, c: &IVec) -> Result<Option<DioSolution>> {
    if c.dim() != a.cols() {
        return Err(MatrixError::DimMismatch {
            op: "solve_dio",
            lhs: (a.rows(), a.cols()),
            rhs: (1, c.dim()),
        });
    }
    let m = a.rows();
    let red = row_echelon(a)?;
    let e = &red.echelon;
    let r = red.rank;

    // Forward substitution on t·E = c using the strictly increasing levels.
    let mut residual = c.clone();
    let mut t_fixed = IVec::zeros(r);
    for j in 0..r {
        let row = e.row_vec(j);
        let lj = row.level().expect("nonzero row inside rank");
        let pivot = e.get(j, lj);
        let rhs = residual[lj];
        if rhs % pivot != 0 {
            return Ok(None); // no integer solution => no dependence
        }
        let tj = rhs / pivot;
        t_fixed[j] = tj;
        if tj != 0 {
            residual = residual.add_scaled(-tj, &row)?;
        }
    }
    if !residual.is_zero() {
        return Ok(None); // inconsistent system
    }

    // x = t·U: particular solution uses (t_fixed, 0), homogeneous basis is
    // the free rows of U.
    let mut particular = IVec::zeros(m);
    for j in 0..r {
        if t_fixed[j] != 0 {
            particular = particular.add_scaled(t_fixed[j], &red.u.row_vec(j))?;
        }
    }
    let basis = red.u.submatrix(r, m, 0, m);

    Ok(Some(DioSolution {
        particular,
        basis,
        rank: r,
        t_fixed,
        u: red.u,
    }))
}

/// Does `x·A = c` admit any integer solution? (Exact multi-dimensional GCD
/// test.)
pub fn has_integer_solution(a: &IMat, c: &IVec) -> Result<bool> {
    Ok(solve_dio(a, c)?.is_some())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[Vec<i64>]) -> IMat {
        IMat::from_rows(rows).unwrap()
    }

    fn verify_solution(a: &IMat, c: &IVec, s: &DioSolution) {
        // Particular solution satisfies the system.
        assert_eq!(&a.vec_mul(&s.particular).unwrap(), c);
        // Every basis row is homogeneous.
        for k in 0..s.basis.rows() {
            let xr = s.basis.row_vec(k);
            assert!(
                a.vec_mul(&xr).unwrap().is_zero(),
                "basis row {k} not homogeneous"
            );
        }
        assert_eq!(s.basis.rows(), a.rows() - s.rank);
    }

    #[test]
    fn single_equation_gcd_behaviour() {
        // 2x + 4y = 6 has solutions; 2x + 4y = 3 does not.
        let a = m(&[vec![2], vec![4]]);
        let s = solve_dio(&a, &IVec::from_slice(&[6])).unwrap().unwrap();
        verify_solution(&a, &IVec::from_slice(&[6]), &s);
        assert!(solve_dio(&a, &IVec::from_slice(&[3])).unwrap().is_none());
    }

    #[test]
    fn paper_4_1_flow_dependence_system() {
        // §4.1: A(i1+i2, 3i1+i2+3) written, A(i1+i2+1, i1+2i2) read.
        // x·M = c with x = (i1,i2,j1,j2), M rows = [A1; -A2], c = b2 - b1.
        let a = m(&[vec![1, 3], vec![1, 1], vec![-1, -1], vec![-1, -2]]);
        let c = IVec::from_slice(&[1, -3]);
        let s = solve_dio(&a, &c).unwrap().expect("dependence exists");
        verify_solution(&a, &c, &s);
        // Two free variables (rank 2, m=4).
        assert_eq!(s.rank, 2);
        assert_eq!(s.basis.rows(), 2);
    }

    #[test]
    fn inconsistent_full_rank_system() {
        // x·I = c is always solvable; over-determined columns may not be.
        let a = m(&[vec![1, 1]]); // x * (1 1) = (c0, c1) needs c0 == c1
        assert!(solve_dio(&a, &IVec::from_slice(&[2, 2])).unwrap().is_some());
        assert!(solve_dio(&a, &IVec::from_slice(&[2, 3])).unwrap().is_none());
    }

    #[test]
    fn zero_matrix_cases() {
        let a = IMat::zeros(2, 2);
        // 0 = 0: every x is a solution; basis spans Z^2.
        let s = solve_dio(&a, &IVec::zeros(2)).unwrap().unwrap();
        assert_eq!(s.rank, 0);
        assert_eq!(s.basis.rows(), 2);
        // 0 = c != 0: none.
        assert!(solve_dio(&a, &IVec::from_slice(&[1, 0])).unwrap().is_none());
    }

    #[test]
    fn dim_mismatch_is_reported() {
        let a = IMat::zeros(2, 2);
        assert!(matches!(
            solve_dio(&a, &IVec::zeros(3)),
            Err(MatrixError::DimMismatch { .. })
        ));
    }

    #[test]
    fn general_solution_sweep_matches_brute_force() {
        // Small system: enumerate all x in [-6,6]^3 satisfying x·A = c and
        // check each is particular + integer combination of basis rows.
        let a = m(&[vec![1, 2], vec![2, 1], vec![3, 3]]);
        let c = IVec::from_slice(&[3, 3]);
        let s = solve_dio(&a, &c).unwrap().unwrap();
        verify_solution(&a, &c, &s);
        let lat = crate::lattice::Lattice::from_generators(&s.basis).unwrap();
        for x in crate::lex::small_vectors(3, 6) {
            let xv = IVec(x);
            if a.vec_mul(&xv).unwrap() == c {
                let diff = xv.sub(&s.particular).unwrap();
                assert!(
                    lat.contains(&diff).unwrap(),
                    "solution {xv} not represented"
                );
            }
        }
    }

    #[test]
    fn randomized_solutions_verify() {
        let mut state = 0xABCDEF0123456789u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 9) as i64 - 4
        };
        for _ in 0..200 {
            let rows = 1 + (next().unsigned_abs() as usize % 4);
            let cols = 1 + (next().unsigned_abs() as usize % 3);
            let data: Vec<i64> = (0..rows * cols).map(|_| next()).collect();
            let a = IMat::from_flat(rows, cols, &data).unwrap();
            // Construct a solvable rhs from a random x.
            let x: IVec = (0..rows).map(|_| next()).collect();
            let c = a.vec_mul(&x).unwrap();
            let s = solve_dio(&a, &c).unwrap().expect("constructed solvable");
            verify_solution(&a, &c, &s);
        }
    }
}
