//! Dense integer matrices.
//!
//! `IMat` is a row-major dense matrix of `i64` with the exact operations the
//! reduction algorithms require: elementary row *and* column operations
//! (with checked arithmetic), multiplication, transposition, and block
//! extraction. Row operations are the vocabulary of echelon/Hermite
//! reduction; column operations are the vocabulary of the paper's
//! Algorithm 1, which massages the PDM by *legal* column transformations.

use crate::num::{cadd, cmul, cmuladd, cneg};
use crate::vec::IVec;
use crate::{MatrixError, Result};
use std::fmt;

/// A dense, row-major integer matrix.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IMat {
    rows: usize,
    cols: usize,
    data: Vec<i64>,
}

impl IMat {
    /// An `r × c` zero matrix.
    pub fn zeros(r: usize, c: usize) -> Self {
        IMat {
            rows: r,
            cols: c,
            data: vec![0; r * c],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = IMat::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1;
        }
        m
    }

    /// Build from a slice of equal-length rows.
    pub fn from_rows(rows: &[Vec<i64>]) -> Result<Self> {
        if rows.is_empty() {
            return Ok(IMat::zeros(0, 0));
        }
        let c = rows[0].len();
        if rows.iter().any(|r| r.len() != c) {
            return Err(MatrixError::DimMismatch {
                op: "from_rows",
                lhs: (rows.len(), c),
                rhs: (0, 0),
            });
        }
        let mut data = Vec::with_capacity(rows.len() * c);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(IMat {
            rows: rows.len(),
            cols: c,
            data,
        })
    }

    /// Build an `r × c` matrix from a flat row-major slice.
    pub fn from_flat(r: usize, c: usize, data: &[i64]) -> Result<Self> {
        if data.len() != r * c {
            return Err(MatrixError::DimMismatch {
                op: "from_flat",
                lhs: (r, c),
                rhs: (1, data.len()),
            });
        }
        Ok(IMat {
            rows: r,
            cols: c,
            data: data.to_vec(),
        })
    }

    /// Build a diagonal matrix from the given entries.
    pub fn diag(d: &[i64]) -> Self {
        let n = d.len();
        let mut m = IMat::zeros(n, n);
        for (i, &x) in d.iter().enumerate() {
            m.data[i * n + i] = x;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Is this matrix square?
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Is every entry zero?
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(|&x| x == 0)
    }

    /// Entry accessor (panics on out-of-bounds, like slice indexing).
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> i64 {
        assert!(r < self.rows && c < self.cols, "IMat::get out of bounds");
        self.data[r * self.cols + c]
    }

    /// Entry mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: i64) {
        assert!(r < self.rows && c < self.cols, "IMat::set out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[i64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy row `r` into an [`IVec`].
    pub fn row_vec(&self, r: usize) -> IVec {
        IVec::from_slice(self.row(r))
    }

    /// Copy column `c` into an [`IVec`].
    pub fn col_vec(&self, c: usize) -> IVec {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Iterate over the rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[i64]> {
        self.data.chunks_exact(self.cols.max(1)).take(self.rows)
    }

    /// Transpose.
    pub fn transpose(&self) -> IMat {
        let mut t = IMat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t.data[c * self.rows + r] = self.get(r, c);
            }
        }
        t
    }

    /// Matrix sum.
    pub fn add(&self, other: &IMat) -> Result<IMat> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(self.mismatch("add", other));
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| cadd(a, b))
            .collect::<Result<_>>()?;
        Ok(IMat {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Matrix difference.
    pub fn sub(&self, other: &IMat) -> Result<IMat> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(self.mismatch("sub", other));
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| crate::num::csub(a, b))
            .collect::<Result<_>>()?;
        Ok(IMat {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Matrix product `self · other` with `i128` accumulation.
    pub fn mul(&self, other: &IMat) -> Result<IMat> {
        if self.cols != other.rows {
            return Err(self.mismatch("mul", other));
        }
        let mut out = IMat::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for j in 0..other.cols {
                let mut acc: i128 = 0;
                for k in 0..self.cols {
                    acc += self.get(i, k) as i128 * other.get(k, j) as i128;
                }
                out.data[i * other.cols + j] =
                    i64::try_from(acc).map_err(|_| MatrixError::Overflow)?;
            }
        }
        Ok(out)
    }

    /// Row-vector times matrix: `v · self`.
    pub fn vec_mul(&self, v: &IVec) -> Result<IVec> {
        if v.dim() != self.rows {
            return Err(MatrixError::DimMismatch {
                op: "vec_mul",
                lhs: (1, v.dim()),
                rhs: (self.rows, self.cols),
            });
        }
        let mut out = vec![0i64; self.cols];
        for (j, slot) in out.iter_mut().enumerate() {
            let mut acc: i128 = 0;
            for (i, &vi) in v.iter().enumerate() {
                acc += vi as i128 * self.get(i, j) as i128;
            }
            *slot = i64::try_from(acc).map_err(|_| MatrixError::Overflow)?;
        }
        Ok(IVec(out))
    }

    /// Scale every entry.
    pub fn scale(&self, k: i64) -> Result<IMat> {
        let data = self
            .data
            .iter()
            .map(|&x| cmul(x, k))
            .collect::<Result<_>>()?;
        Ok(IMat {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    // ----- elementary row operations (unimodular when |k| preserved) -----

    /// Swap rows `a` and `b`.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(a * self.cols + c, b * self.cols + c);
        }
    }

    /// Negate row `r`.
    pub fn negate_row(&mut self, r: usize) -> Result<()> {
        for c in 0..self.cols {
            let v = self.get(r, c);
            self.set(r, c, cneg(v)?);
        }
        Ok(())
    }

    /// `row[dst] += k * row[src]`.
    pub fn add_scaled_row(&mut self, dst: usize, k: i64, src: usize) -> Result<()> {
        assert_ne!(dst, src, "add_scaled_row with dst == src is not unimodular");
        for c in 0..self.cols {
            let v = cmuladd(self.get(dst, c), k, self.get(src, c))?;
            self.set(dst, c, v);
        }
        Ok(())
    }

    // ----- elementary column operations -----

    /// Swap columns `a` and `b`.
    pub fn swap_cols(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for r in 0..self.rows {
            self.data.swap(r * self.cols + a, r * self.cols + b);
        }
    }

    /// Negate column `c`.
    pub fn negate_col(&mut self, c: usize) -> Result<()> {
        for r in 0..self.rows {
            let v = self.get(r, c);
            self.set(r, c, cneg(v)?);
        }
        Ok(())
    }

    /// `col[dst] += k * col[src]`.
    pub fn add_scaled_col(&mut self, dst: usize, k: i64, src: usize) -> Result<()> {
        assert_ne!(dst, src, "add_scaled_col with dst == src is not unimodular");
        for r in 0..self.rows {
            let v = cmuladd(self.get(r, dst), k, self.get(r, src))?;
            self.set(r, dst, v);
        }
        Ok(())
    }

    /// Move column `from` to position `to`, shifting the columns in between
    /// (a cyclic rotation — this is the paper's `shift` transformation).
    pub fn shift_col(&mut self, from: usize, to: usize) {
        if from == to {
            return;
        }
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            if from < to {
                row[from..=to].rotate_left(1);
            } else {
                row[to..=from].rotate_right(1);
            }
        }
    }

    // ----- block extraction -----

    /// Copy the sub-matrix with rows `r0..r1` and columns `c0..c1`.
    pub fn submatrix(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> IMat {
        assert!(r0 <= r1 && r1 <= self.rows && c0 <= c1 && c1 <= self.cols);
        let mut out = IMat::zeros(r1 - r0, c1 - c0);
        for r in r0..r1 {
            for c in c0..c1 {
                out.data[(r - r0) * (c1 - c0) + (c - c0)] = self.get(r, c);
            }
        }
        out
    }

    /// Stack `self` on top of `other` (column counts must agree).
    pub fn vstack(&self, other: &IMat) -> Result<IMat> {
        if self.cols != other.cols && self.rows != 0 && other.rows != 0 {
            return Err(self.mismatch("vstack", other));
        }
        if self.rows == 0 {
            return Ok(other.clone());
        }
        if other.rows == 0 {
            return Ok(self.clone());
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Ok(IMat {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// Concatenate `self` with `other` side by side (row counts must agree).
    pub fn hstack(&self, other: &IMat) -> Result<IMat> {
        if self.rows != other.rows {
            return Err(self.mismatch("hstack", other));
        }
        let mut out = IMat::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.data[r * (self.cols + other.cols)..r * (self.cols + other.cols) + self.cols]
                .copy_from_slice(self.row(r));
            out.data[r * (self.cols + other.cols) + self.cols..(r + 1) * (self.cols + other.cols)]
                .copy_from_slice(other.row(r));
        }
        Ok(out)
    }

    /// Drop all-zero rows, keeping the order of the remaining rows.
    pub fn drop_zero_rows(&self) -> IMat {
        let rows: Vec<Vec<i64>> = self
            .rows_iter()
            .filter(|r| r.iter().any(|&x| x != 0))
            .map(|r| r.to_vec())
            .collect();
        if rows.is_empty() {
            IMat::zeros(0, self.cols)
        } else {
            IMat::from_rows(&rows).expect("rows have equal length")
        }
    }

    /// Indices of all-zero columns (Lemma 1: those loops are parallel).
    pub fn zero_cols(&self) -> Vec<usize> {
        (0..self.cols)
            .filter(|&c| (0..self.rows).all(|r| self.get(r, c) == 0))
            .collect()
    }

    fn mismatch(&self, op: &'static str, other: &IMat) -> MatrixError {
        MatrixError::DimMismatch {
            op,
            lhs: (self.rows, self.cols),
            rhs: (other.rows, other.cols),
        }
    }
}

impl fmt::Display for IMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Column-aligned pretty printing, one bracketed row per line.
        let widths: Vec<usize> = (0..self.cols)
            .map(|c| {
                (0..self.rows)
                    .map(|r| format!("{}", self.get(r, c)).len())
                    .max()
                    .unwrap_or(1)
            })
            .collect();
        for r in 0..self.rows {
            write!(f, "[")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>width$}", self.get(r, c), width = widths[c])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[Vec<i64>]) -> IMat {
        IMat::from_rows(rows).unwrap()
    }

    #[test]
    fn constructors() {
        assert_eq!(IMat::zeros(2, 3).rows(), 2);
        assert!(IMat::zeros(2, 3).is_zero());
        let i3 = IMat::identity(3);
        assert_eq!(i3.get(1, 1), 1);
        assert_eq!(i3.get(0, 1), 0);
        let d = IMat::diag(&[2, 5]);
        assert_eq!(d.get(0, 0), 2);
        assert_eq!(d.get(1, 1), 5);
        assert_eq!(d.get(1, 0), 0);
        assert!(IMat::from_rows(&[vec![1], vec![1, 2]]).is_err());
        assert!(IMat::from_flat(2, 2, &[1, 2, 3]).is_err());
        assert_eq!(IMat::from_flat(2, 2, &[1, 2, 3, 4]).unwrap().get(1, 0), 3);
    }

    #[test]
    fn mul_matches_hand_computation() {
        let a = m(&[vec![1, 2], vec![3, 4]]);
        let b = m(&[vec![5, 6], vec![7, 8]]);
        assert_eq!(a.mul(&b).unwrap(), m(&[vec![19, 22], vec![43, 50]]));
        let id = IMat::identity(2);
        assert_eq!(a.mul(&id).unwrap(), a);
        assert_eq!(id.mul(&a).unwrap(), a);
    }

    #[test]
    fn vec_mul_row_convention() {
        // Row vector times matrix: (1,2) · [[1,0],[0,3]] = (1,6).
        let a = m(&[vec![1, 0], vec![0, 3]]);
        let v = IVec::from_slice(&[1, 2]);
        assert_eq!(a.vec_mul(&v).unwrap().as_slice(), &[1, 6]);
    }

    #[test]
    fn transpose_involution() {
        let a = m(&[vec![1, 2, 3], vec![4, 5, 6]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().get(2, 1), 6);
    }

    #[test]
    fn row_and_col_ops() {
        let mut a = m(&[vec![1, 2], vec![3, 4]]);
        a.swap_rows(0, 1);
        assert_eq!(a, m(&[vec![3, 4], vec![1, 2]]));
        a.negate_row(0).unwrap();
        assert_eq!(a, m(&[vec![-3, -4], vec![1, 2]]));
        a.add_scaled_row(0, 3, 1).unwrap();
        assert_eq!(a, m(&[vec![0, 2], vec![1, 2]]));

        let mut b = m(&[vec![1, 2], vec![3, 4]]);
        b.swap_cols(0, 1);
        assert_eq!(b, m(&[vec![2, 1], vec![4, 3]]));
        b.negate_col(1).unwrap();
        assert_eq!(b, m(&[vec![2, -1], vec![4, -3]]));
        b.add_scaled_col(0, 2, 1).unwrap();
        assert_eq!(b, m(&[vec![0, -1], vec![-2, -3]]));
    }

    #[test]
    fn shift_col_rotates() {
        let mut a = m(&[vec![1, 2, 3, 4]]);
        a.shift_col(2, 0); // move col 2 to front
        assert_eq!(a, m(&[vec![3, 1, 2, 4]]));
        let mut b = m(&[vec![1, 2, 3, 4]]);
        b.shift_col(0, 3); // move col 0 to back
        assert_eq!(b, m(&[vec![2, 3, 4, 1]]));
        let mut c = m(&[vec![1, 2]]);
        c.shift_col(1, 1);
        assert_eq!(c, m(&[vec![1, 2]]));
    }

    #[test]
    fn blocks_and_stacking() {
        let a = m(&[vec![1, 2, 3], vec![4, 5, 6], vec![7, 8, 9]]);
        assert_eq!(a.submatrix(1, 3, 0, 2), m(&[vec![4, 5], vec![7, 8]]));
        let top = m(&[vec![1, 2]]);
        let bot = m(&[vec![3, 4], vec![5, 6]]);
        assert_eq!(
            top.vstack(&bot).unwrap(),
            m(&[vec![1, 2], vec![3, 4], vec![5, 6]])
        );
        let l = m(&[vec![1], vec![2]]);
        let r = m(&[vec![3, 4], vec![5, 6]]);
        assert_eq!(l.hstack(&r).unwrap(), m(&[vec![1, 3, 4], vec![2, 5, 6]]));
        assert!(l.vstack(&r).is_err());
    }

    #[test]
    fn vstack_with_empty() {
        let a = m(&[vec![1, 2]]);
        let empty = IMat::zeros(0, 2);
        assert_eq!(empty.vstack(&a).unwrap(), a);
        assert_eq!(a.vstack(&empty).unwrap(), a);
    }

    #[test]
    fn zero_helpers() {
        let a = m(&[vec![0, 1, 0], vec![0, 0, 0], vec![0, 2, 0]]);
        assert_eq!(a.zero_cols(), vec![0, 2]);
        assert_eq!(a.drop_zero_rows(), m(&[vec![0, 1, 0], vec![0, 2, 0]]));
        assert_eq!(IMat::zeros(2, 2).drop_zero_rows().rows(), 0);
    }

    #[test]
    fn display_aligns_columns() {
        let a = m(&[vec![1, -20], vec![300, 4]]);
        let s = a.to_string();
        assert!(s.contains("[  1 -20]"));
        assert!(s.contains("[300   4]"));
    }

    #[test]
    fn overflow_propagates() {
        let a = m(&[vec![i64::MAX]]);
        assert!(a.scale(2).is_err());
        assert!(a.add(&a).is_err());
        let big = m(&[vec![i64::MAX], vec![i64::MAX]]);
        let v = IVec::from_slice(&[2, 2]);
        assert!(big.vec_mul(&v).is_err());
    }
}
