//! Greatest common divisors and the extended Euclidean algorithm.
//!
//! The extended GCD is the workhorse of every unimodular reduction: a single
//! `ext_gcd` step builds the 2×2 unimodular block that annihilates one
//! matrix entry against another (Banerjee's echelon reduction, HNF, SNF).

use crate::num::{cmul, cneg, csub};
use crate::Result;

/// Nonnegative greatest common divisor; `gcd(0, 0) == 0`.
pub fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.unsigned_abs(), b.unsigned_abs());
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a as i64
}

/// GCD of a slice; zero for an empty slice.
pub fn gcd_slice(xs: &[i64]) -> i64 {
    xs.iter().fold(0, |g, &x| gcd(g, x))
}

/// Least common multiple; `lcm(0, x) == 0`.
pub fn lcm(a: i64, b: i64) -> Result<i64> {
    if a == 0 || b == 0 {
        return Ok(0);
    }
    cmul((a / gcd(a, b)).abs(), b.abs())
}

/// Result of the extended Euclidean algorithm: `a*x + b*y = g` with
/// `g = gcd(a, b) >= 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExtGcd {
    /// The nonnegative gcd.
    pub g: i64,
    /// Bézout coefficient of `a`.
    pub x: i64,
    /// Bézout coefficient of `b`.
    pub y: i64,
}

/// Extended Euclidean algorithm.
///
/// Returns `ExtGcd { g, x, y }` with `a*x + b*y == g == gcd(a, b)` and
/// `g >= 0`. The coefficients are the minimal ones produced by the standard
/// iteration, so they stay well inside `i64` for any input.
pub fn ext_gcd(a: i64, b: i64) -> Result<ExtGcd> {
    // Iterative version maintaining (r, x, y) triples.
    let (mut r0, mut r1) = (a, b);
    let (mut x0, mut x1) = (1i64, 0i64);
    let (mut y0, mut y1) = (0i64, 1i64);
    while r1 != 0 {
        let q = r0 / r1; // truncated is fine: invariants hold for any q
        let r2 = csub(r0, cmul(q, r1)?)?;
        let x2 = csub(x0, cmul(q, x1)?)?;
        let y2 = csub(y0, cmul(q, y1)?)?;
        r0 = r1;
        r1 = r2;
        x0 = x1;
        x1 = x2;
        y0 = y1;
        y1 = y2;
    }
    if r0 < 0 {
        r0 = cneg(r0)?;
        x0 = cneg(x0)?;
        y0 = cneg(y0)?;
    }
    Ok(ExtGcd {
        g: r0,
        x: x0,
        y: y0,
    })
}

/// Does `d` divide `a` (with the convention that only 0 is divisible by 0)?
#[inline]
pub fn divides(d: i64, a: i64) -> bool {
    if d == 0 {
        a == 0
    } else {
        a % d == 0
    }
}

/// Solve the single-variable congruence `a*x ≡ c (mod m)`, returning the
/// smallest nonnegative solution if one exists.
///
/// Used by the single-subscript exact dependence test.
pub fn solve_congruence(a: i64, c: i64, m: i64) -> Result<Option<i64>> {
    if m == 0 {
        // Degenerates to a*x = c.
        if a == 0 {
            return Ok(if c == 0 { Some(0) } else { None });
        }
        return Ok(if c % a == 0 { Some(c / a) } else { None });
    }
    let e = ext_gcd(a, m)?;
    if !divides(e.g, c) {
        return Ok(None);
    }
    let m_red = (m / e.g).abs();
    if m_red == 0 {
        return Ok(Some(0));
    }
    let x = cmul(e.x, c / e.g)?;
    Ok(Some(crate::num::emod(x, m_red)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basic() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(-12, 18), 6);
        assert_eq!(gcd(12, -18), 6);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
        assert_eq!(gcd(0, 0), 0);
        assert_eq!(gcd(i64::MIN, i64::MIN), i64::MIN.unsigned_abs() as i64);
    }

    #[test]
    fn gcd_slice_basic() {
        assert_eq!(gcd_slice(&[4, 6, 8]), 2);
        assert_eq!(gcd_slice(&[]), 0);
        assert_eq!(gcd_slice(&[0, 0, 7]), 7);
        assert_eq!(gcd_slice(&[9]), 9);
    }

    #[test]
    fn lcm_basic() {
        assert_eq!(lcm(4, 6).unwrap(), 12);
        assert_eq!(lcm(0, 6).unwrap(), 0);
        assert_eq!(lcm(-4, 6).unwrap(), 12);
    }

    #[test]
    fn ext_gcd_bezout_identity() {
        for a in -50..=50 {
            for b in -50..=50 {
                let e = ext_gcd(a, b).unwrap();
                assert_eq!(e.g, gcd(a, b), "gcd mismatch for ({a},{b})");
                assert_eq!(a * e.x + b * e.y, e.g, "Bezout fails for ({a},{b})");
                assert!(e.g >= 0);
            }
        }
    }

    #[test]
    fn divides_convention() {
        assert!(divides(3, 9));
        assert!(!divides(3, 10));
        assert!(divides(0, 0));
        assert!(!divides(0, 1));
        assert!(divides(-3, 9));
    }

    #[test]
    fn congruence_solutions_verify() {
        for a in -10..=10i64 {
            for c in -10..=10i64 {
                for m in 1..=10i64 {
                    match solve_congruence(a, c, m).unwrap() {
                        Some(x) => {
                            assert_eq!((a * x - c).rem_euclid(m), 0, "a={a} c={c} m={m} x={x}")
                        }
                        None => {
                            // Verify exhaustively that no solution exists.
                            for x in 0..m {
                                assert_ne!((a * x - c).rem_euclid(m), 0, "missed x={x}");
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn congruence_zero_modulus() {
        assert_eq!(solve_congruence(3, 9, 0).unwrap(), Some(3));
        assert_eq!(solve_congruence(3, 10, 0).unwrap(), None);
        assert_eq!(solve_congruence(0, 0, 0).unwrap(), Some(0));
        assert_eq!(solve_congruence(0, 1, 0).unwrap(), None);
    }
}
