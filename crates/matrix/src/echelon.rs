//! Unimodular row echelon reduction (eq. 2.7–2.9 of the paper).
//!
//! Given an `m × n` integer matrix `A`, compute a unimodular `U` (`m × m`)
//! such that `E = U·A` is an *echelon matrix*: only the first `rank` rows
//! are nonzero and their levels strictly increase. This is the "common
//! algorithm" the paper cites from Banerjee for solving the linear
//! diophantine dependence system `x·A = c`: the system becomes `t·E = c`
//! with `t = x·U⁻¹`, solvable by forward substitution.
//!
//! The reduction uses only integer row swaps, negations and additions of
//! integer multiples of one row to another — all determinant-preserving up
//! to sign, so `U` is unimodular by construction (and verified in tests).

use crate::mat::IMat;
use crate::Result;

/// Outcome of a row echelon reduction: `u * a == echelon`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Echelon {
    /// The unimodular row-transformation matrix `U`.
    pub u: IMat,
    /// The echelon form `E = U·A`.
    pub echelon: IMat,
    /// Number of nonzero rows of `E`.
    pub rank: usize,
    /// Sign of `det(U)`: `+1` or `-1` (tracks row swaps and negations).
    pub det_u_sign: i64,
}

/// Reduce `a` to row echelon form by a unimodular transformation.
///
/// Pivoting strategy: for each pivot column, repeatedly subtract multiples
/// of the row with the smallest nonzero absolute entry from the others
/// (a Euclidean cascade), until a single nonzero entry remains; the pivot is
/// then the (positive) gcd of the original column segment.
pub fn row_echelon(a: &IMat) -> Result<Echelon> {
    let m = a.rows();
    let n = a.cols();
    let mut e = a.clone();
    let mut u = IMat::identity(m);
    let mut det_sign = 1i64;
    let mut pivot_row = 0usize;

    for col in 0..n {
        if pivot_row == m {
            break;
        }
        // Euclidean elimination below `pivot_row` in `col`.
        loop {
            // Find the row (>= pivot_row) with minimal nonzero |entry|.
            let mut best: Option<(usize, i64)> = None;
            for r in pivot_row..m {
                let v = e.get(r, col);
                if v != 0 && best.is_none_or(|(_, bv)| v.abs() < bv.abs()) {
                    best = Some((r, v));
                }
            }
            let Some((br, _)) = best else {
                break; // column is zero below pivot_row
            };
            if br != pivot_row {
                e.swap_rows(pivot_row, br);
                u.swap_rows(pivot_row, br);
                det_sign = -det_sign;
            }
            let p = e.get(pivot_row, col);
            // Reduce all other rows modulo the pivot.
            let mut all_zero = true;
            for r in pivot_row + 1..m {
                let v = e.get(r, col);
                if v != 0 {
                    let q = crate::num::floor_div(v, p)?;
                    if q != 0 {
                        e.add_scaled_row(r, -q, pivot_row)?;
                        u.add_scaled_row(r, -q, pivot_row)?;
                    }
                    if e.get(r, col) != 0 {
                        all_zero = false;
                    }
                }
            }
            if all_zero {
                // Normalize the pivot to be positive.
                if e.get(pivot_row, col) < 0 {
                    e.negate_row(pivot_row)?;
                    u.negate_row(pivot_row)?;
                    det_sign = -det_sign;
                }
                pivot_row += 1;
                break;
            }
        }
    }

    Ok(Echelon {
        u,
        echelon: e,
        rank: pivot_row,
        det_u_sign: det_sign,
    })
}

/// Column echelon reduction: find unimodular `V` (`n × n`) with `A·V` in
/// *column* echelon form (the transpose notion). Returns the transform and
/// the reduced matrix.
///
/// Implemented by transposing, reducing rows, and transposing back; the
/// rank is shared with the row reduction.
pub fn col_echelon(a: &IMat) -> Result<ColEchelon> {
    let red = row_echelon(&a.transpose())?;
    Ok(ColEchelon {
        v: red.u.transpose(),
        echelon: red.echelon.transpose(),
        rank: red.rank,
    })
}

/// Outcome of a column echelon reduction: `a * v == echelon`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColEchelon {
    /// The unimodular column-transformation matrix `V`.
    pub v: IMat,
    /// The column echelon form `A·V`.
    pub echelon: IMat,
    /// Number of nonzero columns.
    pub rank: usize,
}

/// Rank of an integer matrix (via echelon reduction).
pub fn rank(a: &IMat) -> Result<usize> {
    Ok(row_echelon(a)?.rank)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::det::det;
    use crate::lex::is_echelon;

    fn m(rows: &[Vec<i64>]) -> IMat {
        IMat::from_rows(rows).unwrap()
    }

    fn check_reduction(a: &IMat) {
        let r = row_echelon(a).unwrap();
        // U·A == E.
        assert_eq!(r.u.mul(a).unwrap(), r.echelon, "U*A != E for\n{a}");
        // E is echelon.
        assert!(is_echelon(&r.echelon), "not echelon:\n{}", r.echelon);
        // U is unimodular.
        let d = det(&r.u).unwrap();
        assert_eq!(d.abs(), 1, "U not unimodular, det={d}");
        assert_eq!(d, r.det_u_sign, "recorded sign wrong");
        // Nonzero rows count equals rank; pivots positive.
        for i in 0..r.rank {
            let lead = r.echelon.row_vec(i).leading().unwrap();
            assert!(lead > 0, "pivot not positive");
        }
        for i in r.rank..a.rows() {
            assert!(r.echelon.row_vec(i).is_zero());
        }
    }

    #[test]
    fn paper_eq_4_2_coefficient_matrix() {
        // §4.1: subscripts (i1+i2, 3i1+i2+3) vs (i1+i2+1, i1+2i2).
        // Row-vector convention: x·M = c with M = [A1; -A2] (4×2).
        let mm = m(&[vec![1, 3], vec![1, 1], vec![-1, -1], vec![-1, -2]]);
        let r = row_echelon(&mm).unwrap();
        assert_eq!(r.rank, 2);
        check_reduction(&mm);
        // The echelon form the paper reports (up to a unimodular choice)
        // has pivots 1 and 1 in columns 0 and 1, e.g. rows (1,1),(0,1)
        // after gcd reduction — verify pivot columns and gcds instead of
        // one specific matrix.
        assert_eq!(r.echelon.row_vec(0).level(), Some(0));
        assert_eq!(r.echelon.row_vec(1).level(), Some(1));
    }

    #[test]
    fn simple_known_forms() {
        check_reduction(&m(&[vec![2, 4], vec![4, 2]]));
        check_reduction(&m(&[vec![0, 0], vec![0, 0]]));
        check_reduction(&m(&[vec![6], vec![4], vec![10]]));
        check_reduction(&m(&[vec![1, 2, 3]]));
        // gcd pivot: column (6,4,10) reduces to gcd 2.
        let r = row_echelon(&m(&[vec![6], vec![4], vec![10]])).unwrap();
        assert_eq!(r.echelon.get(0, 0), 2);
        assert_eq!(r.rank, 1);
    }

    #[test]
    fn rank_examples() {
        assert_eq!(rank(&m(&[vec![1, 2], vec![2, 4]])).unwrap(), 1);
        assert_eq!(rank(&m(&[vec![1, 0], vec![0, 1]])).unwrap(), 2);
        assert_eq!(rank(&IMat::zeros(3, 3)).unwrap(), 0);
        assert_eq!(rank(&m(&[vec![0, 5, 0], vec![0, 3, 0]])).unwrap(), 1);
    }

    #[test]
    fn col_echelon_mirror() {
        let a = m(&[vec![2, 4, 6], vec![1, 3, 5]]);
        let r = col_echelon(&a).unwrap();
        assert_eq!(a.mul(&r.v).unwrap(), r.echelon);
        assert_eq!(det(&r.v).unwrap().abs(), 1);
        assert_eq!(r.rank, 2);
        // Column echelon: transposed result is row echelon.
        assert!(is_echelon(&r.echelon.transpose()));
    }

    #[test]
    fn randomized_reductions_hold_invariants() {
        // Deterministic LCG so the test is reproducible without rand.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 21) as i64 - 10
        };
        for _ in 0..200 {
            let rows = 1 + (next().unsigned_abs() as usize % 4);
            let cols = 1 + (next().unsigned_abs() as usize % 4);
            let data: Vec<i64> = (0..rows * cols).map(|_| next()).collect();
            let a = IMat::from_flat(rows, cols, &data).unwrap();
            check_reduction(&a);
        }
    }

    #[test]
    fn wide_and_tall_matrices() {
        check_reduction(&m(&[vec![3, 1, 4, 1, 5], vec![9, 2, 6, 5, 3]]));
        check_reduction(&m(&[vec![2], vec![7], vec![1], vec![8]]));
    }
}
