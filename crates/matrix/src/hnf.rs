//! Hermite normal form — the canonical lattice basis used as the PDM.
//!
//! The paper (eq. 2.18) defines the HNF as the full-row-rank matrix obtained
//! from the echelon form with, for each pivot (leading) entry
//! `h[j, l_j] > 0`, every entry *above* it reduced into `[0, h[j, l_j])`.
//! The HNF of a matrix is the unique canonical basis of its **row lattice**,
//! so two generator sets span the same set of dependence distances iff
//! their HNFs are equal — which is what makes the PDM well-defined.

use crate::echelon::row_echelon;
use crate::mat::IMat;
use crate::num::floor_div;
use crate::Result;

/// Outcome of a Hermite normal form computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hnf {
    /// Unimodular `U` with `U·A = full` (the padded form, zero rows last).
    pub u: IMat,
    /// The HNF proper: full-row-rank (zero rows dropped), `rank × n`.
    pub hnf: IMat,
    /// The padded `m × n` form (HNF rows followed by zero rows).
    pub full: IMat,
    /// Row rank of `A`.
    pub rank: usize,
}

/// Compute the row-style Hermite normal form of `a`.
pub fn hermite_normal_form(a: &IMat) -> Result<Hnf> {
    let red = row_echelon(a)?;
    let mut e = red.echelon;
    let mut u = red.u;

    // Reduce entries above each pivot into [0, pivot).
    for j in 0..red.rank {
        let lj = e.row_vec(j).level().expect("nonzero row within rank");
        let pivot = e.get(j, lj);
        debug_assert!(pivot > 0, "echelon pivots are normalized positive");
        for i in 0..j {
            let v = e.get(i, lj);
            let q = floor_div(v, pivot)?;
            if q != 0 {
                e.add_scaled_row(i, -q, j)?;
                u.add_scaled_row(i, -q, j)?;
            }
        }
    }

    let hnf = e.submatrix(0, red.rank, 0, e.cols());
    Ok(Hnf {
        u,
        hnf,
        full: e,
        rank: red.rank,
    })
}

/// Is `h` in Hermite normal form (full row rank, echelon, positive pivots,
/// entries above each pivot in `[0, pivot)`)?
pub fn is_hnf(h: &IMat) -> bool {
    if !crate::lex::is_echelon(h) {
        return false;
    }
    for j in 0..h.rows() {
        let row = h.row_vec(j);
        let Some(lj) = row.level() else {
            return false; // zero row: not full row rank
        };
        let pivot = h.get(j, lj);
        if pivot <= 0 {
            return false;
        }
        for i in 0..j {
            let v = h.get(i, lj);
            if v < 0 || v >= pivot {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::det::det;

    fn m(rows: &[Vec<i64>]) -> IMat {
        IMat::from_rows(rows).unwrap()
    }

    fn check(a: &IMat) -> Hnf {
        let h = hermite_normal_form(a).unwrap();
        assert_eq!(h.u.mul(a).unwrap(), h.full, "U*A != full for\n{a}");
        assert_eq!(det(&h.u).unwrap().abs(), 1);
        assert!(is_hnf(&h.hnf), "not HNF:\n{}", h.hnf);
        assert_eq!(h.hnf.rows(), h.rank);
        h
    }

    #[test]
    fn paper_4_1_pdm() {
        // §4.1 merges generators (2,2),(0,3) and (1,-1)... the flow pair
        // contributes rows spanning the same lattice as [[2,2],[0,3]]
        // (eq. 4.4), the output pair [[1,-1]]... here we check eq. (4.7):
        // HNF([[2,2],[0,3]] ∪ [[1,-1]]) -- merged below in the core crate.
        // At the matrix level, verify HNF of eq. (4.4) generators:
        let g = m(&[vec![2, 2], vec![0, 3]]);
        let h = check(&g);
        assert_eq!(h.hnf, m(&[vec![2, 2], vec![0, 3]]));
    }

    #[test]
    fn paper_4_2_pdm() {
        // §4.2 eq. (4.12): PDM = [[2,1],[0,2]].
        let g = m(&[vec![2, 1], vec![0, 2]]);
        let h = check(&g);
        assert_eq!(h.hnf, g);
        // A redundant generator set spanning the same lattice reduces to
        // the same HNF (uniqueness).
        let g2 = m(&[vec![2, 1], vec![0, 2], vec![2, 3], vec![4, 2]]);
        let h2 = check(&g2);
        assert_eq!(h2.hnf, h.hnf);
    }

    #[test]
    fn reduces_above_pivot() {
        let g = m(&[vec![1, 7], vec![0, 3]]);
        let h = check(&g);
        // Entry above pivot 3 must be in [0,3).
        assert_eq!(h.hnf, m(&[vec![1, 1], vec![0, 3]]));
    }

    #[test]
    fn negative_rows_normalized() {
        let g = m(&[vec![-2, 0], vec![0, -5]]);
        let h = check(&g);
        assert_eq!(h.hnf, m(&[vec![2, 0], vec![0, 5]]));
    }

    #[test]
    fn zero_matrix_hnf_is_empty() {
        let h = check(&IMat::zeros(3, 2));
        assert_eq!(h.rank, 0);
        assert_eq!(h.hnf.rows(), 0);
        assert_eq!(h.hnf.cols(), 2);
    }

    #[test]
    fn hnf_uniqueness_under_row_shuffle() {
        let g1 = m(&[vec![3, 1, 2], vec![1, 2, 0], vec![0, 0, 4]]);
        let mut rows: Vec<Vec<i64>> = (0..g1.rows()).map(|r| g1.row(r).to_vec()).collect();
        rows.reverse();
        let g2 = IMat::from_rows(&rows).unwrap();
        assert_eq!(check(&g1).hnf, check(&g2).hnf);
    }

    #[test]
    fn is_hnf_rejects_bad_forms() {
        assert!(!is_hnf(&m(&[vec![-1, 0], vec![0, 1]]))); // negative pivot
        assert!(!is_hnf(&m(&[vec![1, 5], vec![0, 3]]))); // 5 >= 3 above pivot
        assert!(!is_hnf(&m(&[vec![0, 1], vec![1, 0]]))); // not echelon
        assert!(!is_hnf(&m(&[vec![1, 0], vec![0, 0]]))); // zero row
        assert!(is_hnf(&m(&[vec![1, 2, 0], vec![0, 3, 1]])));
        assert!(is_hnf(&IMat::zeros(0, 4))); // empty is vacuously HNF
    }

    #[test]
    fn randomized_hnf_invariants() {
        let mut state = 0xDEADBEEFCAFEBABEu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 15) as i64 - 7
        };
        for _ in 0..150 {
            let rows = 1 + (next().unsigned_abs() as usize % 4);
            let cols = 1 + (next().unsigned_abs() as usize % 4);
            let data: Vec<i64> = (0..rows * cols).map(|_| next()).collect();
            let a = IMat::from_flat(rows, cols, &data).unwrap();
            check(&a);
        }
    }
}
