//! Integer row lattices.
//!
//! A lattice `L(G) = { x·G : x ∈ Zᵏ }` (eq. 2.14) is the closure of a set of
//! generator rows under integer combination. The paper's central observation
//! is that the set of *all* dependence distance vectors of a loop — direct
//! and transitive — is contained in such a lattice, and the lattice has a
//! canonical basis: the Hermite normal form, i.e. the **pseudo distance
//! matrix**. Two generator sets are interchangeable iff their HNFs agree.

use crate::hnf::hermite_normal_form;
use crate::mat::IMat;
use crate::vec::IVec;
use crate::{MatrixError, Result};
use std::fmt;

/// An integer lattice of row vectors, stored via its canonical HNF basis.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Lattice {
    /// Canonical basis: HNF, full row rank (`rank × dim`).
    basis: IMat,
    /// Ambient dimension.
    dim: usize,
}

impl Lattice {
    /// The zero lattice `{0}` in dimension `n`.
    pub fn zero(n: usize) -> Self {
        Lattice {
            basis: IMat::zeros(0, n),
            dim: n,
        }
    }

    /// The full lattice `Zⁿ`.
    pub fn full(n: usize) -> Self {
        Lattice {
            basis: IMat::identity(n),
            dim: n,
        }
    }

    /// Build the lattice spanned by the rows of `g`.
    pub fn from_generators(g: &IMat) -> Result<Self> {
        let h = hermite_normal_form(g)?;
        Ok(Lattice {
            basis: h.hnf,
            dim: g.cols(),
        })
    }

    /// Canonical HNF basis (full row rank).
    pub fn basis(&self) -> &IMat {
        &self.basis
    }

    /// Ambient dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Rank (number of independent generators).
    pub fn rank(&self) -> usize {
        self.basis.rows()
    }

    /// Is this the zero lattice?
    pub fn is_zero(&self) -> bool {
        self.rank() == 0
    }

    /// Does the lattice span all of `Qⁿ` (rank = dim)?
    pub fn is_full_rank(&self) -> bool {
        self.rank() == self.dim
    }

    /// Integer coordinates of `v` in the basis, if `v` is a lattice member.
    ///
    /// Solves `x·H = v` by forward substitution over the strictly
    /// increasing levels of the HNF rows.
    pub fn coordinates(&self, v: &IVec) -> Result<Option<IVec>> {
        if v.dim() != self.dim {
            return Err(MatrixError::DimMismatch {
                op: "lattice coordinates",
                lhs: (self.basis.rows(), self.dim),
                rhs: (1, v.dim()),
            });
        }
        let mut residual = v.clone();
        let mut coords = IVec::zeros(self.rank());
        for j in 0..self.rank() {
            let row = self.basis.row_vec(j);
            let lj = row.level().expect("HNF rows are nonzero");
            let pivot = self.basis.get(j, lj);
            let rhs = residual[lj];
            if rhs % pivot != 0 {
                return Ok(None);
            }
            let xj = rhs / pivot;
            coords[j] = xj;
            if xj != 0 {
                residual = residual.add_scaled(-xj, &row)?;
            }
        }
        Ok(if residual.is_zero() {
            Some(coords)
        } else {
            None
        })
    }

    /// Lattice membership.
    pub fn contains(&self, v: &IVec) -> Result<bool> {
        Ok(self.coordinates(v)?.is_some())
    }

    /// Is `other` a sublattice of `self`?
    pub fn includes(&self, other: &Lattice) -> Result<bool> {
        for j in 0..other.rank() {
            if !self.contains(&other.basis.row_vec(j))? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Lattice sum `L(self) + L(other)` (union of generators).
    pub fn join(&self, other: &Lattice) -> Result<Lattice> {
        if self.dim != other.dim {
            return Err(MatrixError::DimMismatch {
                op: "lattice join",
                lhs: (self.rank(), self.dim),
                rhs: (other.rank(), other.dim),
            });
        }
        Lattice::from_generators(&self.basis.vstack(&other.basis)?)
    }

    /// Index `[Zⁿ : L]` of a full-rank lattice — the number of cosets, i.e.
    /// the partition count of Theorem 2. `None` when not full rank.
    pub fn index(&self) -> Option<i64> {
        if !self.is_full_rank() {
            return None;
        }
        // HNF of a full-rank lattice is upper triangular with positive
        // diagonal; the index is the product of the diagonal.
        let mut prod: i64 = 1;
        for j in 0..self.dim {
            prod = prod.checked_mul(self.basis.get(j, j))?;
        }
        Some(prod)
    }

    /// Apply a linear map on the right: the image lattice `{ x·G·T }`.
    pub fn transform(&self, t: &IMat) -> Result<Lattice> {
        Lattice::from_generators(&self.basis.mul(t)?)
    }

    /// Invariant factors of the quotient group `Zⁿ / L` for a full-rank
    /// lattice: `Zⁿ/L ≅ Z/d₁ ⊕ … ⊕ Z/dₙ` with `dᵢ | dᵢ₊₁` (Smith normal
    /// form of the basis). The product of the factors is the lattice
    /// index — the partition count of the paper's Theorem 2 — while the
    /// factors themselves describe the *shape* of the partition group
    /// (e.g. §4.2's `[[2,1],[0,2]]` quotient is `Z/1 ⊕ Z/4`, a cyclic
    /// 4-group, not `Z/2 ⊕ Z/2`).
    pub fn quotient_invariants(&self) -> Result<Option<Vec<i64>>> {
        if !self.is_full_rank() {
            return Ok(None);
        }
        Ok(Some(crate::snf::invariant_factors(&self.basis)?))
    }
}

impl fmt::Display for Lattice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            write!(f, "L{{0}} in Z^{}", self.dim)
        } else {
            writeln!(f, "L(rows) in Z^{}:", self.dim)?;
            write!(f, "{}", self.basis)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::small_vectors;

    fn m(rows: &[Vec<i64>]) -> IMat {
        IMat::from_rows(rows).unwrap()
    }

    #[test]
    fn membership_matches_brute_force() {
        let lat = Lattice::from_generators(&m(&[vec![2, 2], vec![0, 3]])).unwrap();
        for v in small_vectors(2, 8) {
            // Brute force: is v = a*(2,2) + b*(0,3) for small a,b?
            let mut found = false;
            for a in -8..=8i64 {
                for b in -8..=8i64 {
                    if 2 * a == v[0] && 2 * a + 3 * b == v[1] {
                        found = true;
                    }
                }
            }
            assert_eq!(
                lat.contains(&IVec::from_slice(&v)).unwrap(),
                found,
                "membership mismatch at {v:?}"
            );
        }
    }

    #[test]
    fn coordinates_reconstruct() {
        let lat = Lattice::from_generators(&m(&[vec![2, 1, 0], vec![0, 3, 1]])).unwrap();
        for v in small_vectors(3, 6) {
            let vv = IVec::from_slice(&v);
            if let Some(x) = lat.coordinates(&vv).unwrap() {
                let rebuilt = lat.basis().vec_mul(&x).unwrap();
                assert_eq!(rebuilt, vv);
            }
        }
    }

    #[test]
    fn canonical_equality() {
        let a = Lattice::from_generators(&m(&[vec![2, 2], vec![0, 3]])).unwrap();
        let b = Lattice::from_generators(&m(&[vec![2, 5], vec![2, -1], vec![0, 3]])).unwrap();
        assert_eq!(a, b);
        let c = Lattice::from_generators(&m(&[vec![1, 0], vec![0, 1]])).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn zero_and_full() {
        let z = Lattice::zero(3);
        assert!(z.is_zero());
        assert!(z.contains(&IVec::zeros(3)).unwrap());
        assert!(!z.contains(&IVec::from_slice(&[1, 0, 0])).unwrap());
        let f = Lattice::full(2);
        assert!(f.is_full_rank());
        assert_eq!(f.index(), Some(1));
        for v in small_vectors(2, 3) {
            assert!(f.contains(&IVec::from_slice(&v)).unwrap());
        }
    }

    #[test]
    fn index_counts_partitions() {
        // §4.2: PDM [[2,1],[0,2]] -> det 4 partitions.
        let lat = Lattice::from_generators(&m(&[vec![2, 1], vec![0, 2]])).unwrap();
        assert_eq!(lat.index(), Some(4));
        // Non-full-rank lattice has no finite index.
        let thin = Lattice::from_generators(&m(&[vec![1, 1]])).unwrap();
        assert_eq!(thin.index(), None);
        // Cross-check: count residues of Z^2 mod the lattice in a box.
        let mut cosets = std::collections::HashSet::new();
        for v in small_vectors(2, 4) {
            // Reduce v to a canonical coset representative by subtracting
            // basis rows greedily (works because basis is triangular).
            let b = lat.basis();
            let mut x = v.clone();
            let q0 = crate::num::floor_div(x[0], b.get(0, 0)).unwrap();
            x[0] -= q0 * b.get(0, 0);
            x[1] -= q0 * b.get(0, 1);
            let q1 = crate::num::floor_div(x[1], b.get(1, 1)).unwrap();
            x[1] -= q1 * b.get(1, 1);
            cosets.insert(x);
        }
        assert_eq!(cosets.len(), 4);
    }

    #[test]
    fn join_is_lub() {
        let a = Lattice::from_generators(&m(&[vec![2, 0]])).unwrap();
        let b = Lattice::from_generators(&m(&[vec![0, 2]])).unwrap();
        let j = a.join(&b).unwrap();
        assert!(j.includes(&a).unwrap());
        assert!(j.includes(&b).unwrap());
        assert_eq!(j.rank(), 2);
        assert_eq!(j.index(), Some(4));
    }

    #[test]
    fn inclusion_is_partial_order() {
        let coarse = Lattice::from_generators(&m(&[vec![4, 0], vec![0, 4]])).unwrap();
        let fine = Lattice::from_generators(&m(&[vec![2, 0], vec![0, 2]])).unwrap();
        assert!(fine.includes(&coarse).unwrap());
        assert!(!coarse.includes(&fine).unwrap());
        assert!(fine.includes(&fine).unwrap());
    }

    #[test]
    fn transform_image() {
        let lat = Lattice::from_generators(&m(&[vec![1, 0], vec![0, 2]])).unwrap();
        // Skew by T = [[1,1],[0,1]]: (1,0)->(1,1), (0,2)->(0,2).
        let t = m(&[vec![1, 1], vec![0, 1]]);
        let img = lat.transform(&t).unwrap();
        assert!(img.contains(&IVec::from_slice(&[1, 1])).unwrap());
        assert!(img.contains(&IVec::from_slice(&[0, 2])).unwrap());
        assert!(!img.contains(&IVec::from_slice(&[0, 1])).unwrap());
        assert_eq!(img.index(), Some(2));
    }

    #[test]
    fn quotient_invariants_shape() {
        // §4.2 PDM: index 4, cyclic quotient Z/4 (invariants 1, 4).
        let l42 = Lattice::from_generators(&m(&[vec![2, 1], vec![0, 2]])).unwrap();
        assert_eq!(l42.quotient_invariants().unwrap(), Some(vec![1, 4]));
        // diag(2,2): Klein four-group Z/2 + Z/2.
        let l22 = Lattice::from_generators(&m(&[vec![2, 0], vec![0, 2]])).unwrap();
        assert_eq!(l22.quotient_invariants().unwrap(), Some(vec![2, 2]));
        // Product of invariants equals the index in both cases.
        for l in [&l42, &l22] {
            let inv = l.quotient_invariants().unwrap().unwrap();
            assert_eq!(inv.iter().product::<i64>(), l.index().unwrap());
        }
        // Non-full-rank: no finite quotient.
        let thin = Lattice::from_generators(&m(&[vec![1, 1]])).unwrap();
        assert_eq!(thin.quotient_invariants().unwrap(), None);
    }

    #[test]
    fn dim_mismatch_errors() {
        let a = Lattice::zero(2);
        let b = Lattice::zero(3);
        assert!(a.join(&b).is_err());
        assert!(a.contains(&IVec::zeros(3)).is_err());
    }
}
