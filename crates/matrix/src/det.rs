//! Exact determinants via the Bareiss fraction-free algorithm.
//!
//! Bareiss keeps every intermediate value an exact integer (each division is
//! provably exact), avoiding both floating point and rational arithmetic.
//! Intermediates are carried in `i128`; the result is checked back into
//! `i64`. Determinants decide unimodularity (`|det| = 1`) and give the
//! partition count `det(H)` of Theorem 2.

use crate::mat::IMat;
use crate::{MatrixError, Result};

/// Determinant of a square integer matrix.
pub fn det(a: &IMat) -> Result<i64> {
    if !a.is_square() {
        return Err(MatrixError::NotSquare {
            dims: (a.rows(), a.cols()),
        });
    }
    let n = a.rows();
    if n == 0 {
        return Ok(1); // det of the empty matrix
    }
    // Work in i128 to survive intermediate growth.
    let mut m: Vec<i128> = (0..n)
        .flat_map(|r| a.row(r).iter().map(|&x| x as i128).collect::<Vec<_>>())
        .collect();
    let idx = |r: usize, c: usize| r * n + c;
    let mut sign = 1i128;
    let mut prev = 1i128;

    for k in 0..n - 1 {
        // Pivot search.
        if m[idx(k, k)] == 0 {
            let Some(swap) = (k + 1..n).find(|&r| m[idx(r, k)] != 0) else {
                return Ok(0);
            };
            for c in 0..n {
                m.swap(idx(k, c), idx(swap, c));
            }
            sign = -sign;
        }
        for i in k + 1..n {
            for j in k + 1..n {
                let num = m[idx(i, j)]
                    .checked_mul(m[idx(k, k)])
                    .and_then(|x| {
                        m[idx(i, k)]
                            .checked_mul(m[idx(k, j)])
                            .and_then(|y| x.checked_sub(y))
                    })
                    .ok_or(MatrixError::Overflow)?;
                debug_assert_eq!(num % prev, 0, "Bareiss division not exact");
                m[idx(i, j)] = num / prev;
            }
            m[idx(i, k)] = 0;
        }
        prev = m[idx(k, k)];
    }

    let d = sign * m[idx(n - 1, n - 1)];
    i64::try_from(d).map_err(|_| MatrixError::Overflow)
}

/// Is `a` unimodular (square with determinant ±1)?
pub fn is_unimodular(a: &IMat) -> bool {
    matches!(det(a), Ok(1) | Ok(-1))
}

/// Naive cofactor-expansion determinant (exponential). Retained as an
/// independent oracle for testing Bareiss and as the ablation baseline for
/// the `analysis_scaling` bench.
pub fn det_cofactor(a: &IMat) -> Result<i64> {
    if !a.is_square() {
        return Err(MatrixError::NotSquare {
            dims: (a.rows(), a.cols()),
        });
    }
    fn go(a: &IMat) -> Result<i128> {
        let n = a.rows();
        if n == 0 {
            return Ok(1);
        }
        if n == 1 {
            return Ok(a.get(0, 0) as i128);
        }
        let mut acc: i128 = 0;
        for c in 0..n {
            let x = a.get(0, c) as i128;
            if x == 0 {
                continue;
            }
            // Minor without row 0 and column c.
            let rows: Vec<Vec<i64>> = (1..n)
                .map(|r| {
                    (0..n)
                        .filter(|&cc| cc != c)
                        .map(|cc| a.get(r, cc))
                        .collect()
                })
                .collect();
            let minor = IMat::from_rows(&rows).expect("square minor");
            let sub = go(&minor)?;
            let term = x.checked_mul(sub).ok_or(MatrixError::Overflow)?;
            acc = if c % 2 == 0 {
                acc.checked_add(term)
            } else {
                acc.checked_sub(term)
            }
            .ok_or(MatrixError::Overflow)?;
        }
        Ok(acc)
    }
    i64::try_from(go(a)?).map_err(|_| MatrixError::Overflow)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[Vec<i64>]) -> IMat {
        IMat::from_rows(rows).unwrap()
    }

    #[test]
    fn known_determinants() {
        assert_eq!(det(&IMat::identity(4)).unwrap(), 1);
        assert_eq!(det(&m(&[vec![2]])).unwrap(), 2);
        assert_eq!(det(&m(&[vec![1, 2], vec![3, 4]])).unwrap(), -2);
        assert_eq!(det(&m(&[vec![2, 0], vec![0, 2]])).unwrap(), 4);
        assert_eq!(det(&IMat::zeros(3, 3)).unwrap(), 0);
        assert_eq!(det(&IMat::zeros(0, 0)).unwrap(), 1);
        // Paper §4.2: PDM [[2,1],[0,2]] has det 4 -> 4 partitions.
        assert_eq!(det(&m(&[vec![2, 1], vec![0, 2]])).unwrap(), 4);
    }

    #[test]
    fn zero_pivot_needs_swap() {
        assert_eq!(det(&m(&[vec![0, 1], vec![1, 0]])).unwrap(), -1);
        assert_eq!(
            det(&m(&[vec![0, 0, 1], vec![0, 1, 0], vec![1, 0, 0]])).unwrap(),
            -1
        );
    }

    #[test]
    fn singular_detected() {
        assert_eq!(det(&m(&[vec![1, 2], vec![2, 4]])).unwrap(), 0);
        assert_eq!(
            det(&m(&[vec![1, 2, 3], vec![4, 5, 6], vec![7, 8, 9]])).unwrap(),
            0
        );
    }

    #[test]
    fn not_square_rejected() {
        assert!(matches!(
            det(&IMat::zeros(2, 3)),
            Err(MatrixError::NotSquare { .. })
        ));
    }

    #[test]
    fn bareiss_matches_cofactor_oracle() {
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 11) as i64 - 5
        };
        for n in 1..=5usize {
            for _ in 0..60 {
                let data: Vec<i64> = (0..n * n).map(|_| next()).collect();
                let a = IMat::from_flat(n, n, &data).unwrap();
                assert_eq!(
                    det(&a).unwrap(),
                    det_cofactor(&a).unwrap(),
                    "mismatch on\n{a}"
                );
            }
        }
    }

    #[test]
    fn unimodular_predicate() {
        assert!(is_unimodular(&IMat::identity(3)));
        assert!(is_unimodular(&m(&[vec![1, 5], vec![0, -1]])));
        assert!(!is_unimodular(&m(&[vec![2, 0], vec![0, 1]])));
        assert!(!is_unimodular(&IMat::zeros(2, 3)));
    }

    #[test]
    fn multiplicativity_spot_check() {
        let a = m(&[vec![1, 2], vec![3, 5]]);
        let b = m(&[vec![2, 1], vec![1, 1]]);
        let ab = a.mul(&b).unwrap();
        assert_eq!(det(&ab).unwrap(), det(&a).unwrap() * det(&b).unwrap());
    }
}
