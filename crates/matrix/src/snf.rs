//! Smith normal form `U·A·V = D`.
//!
//! The SNF diagonalizes an integer matrix by unimodular row *and* column
//! operations, with each diagonal entry dividing the next. It is the
//! natural tool for counting lattice quotients (`Zⁿ/L ≅ ⊕ Z/dᵢZ`), used by
//! the baseline uniformization method and as an independent oracle for the
//! partition count `det(H)` in property tests.

use crate::mat::IMat;
use crate::num::floor_div;
use crate::Result;

/// Outcome of a Smith normal form computation: `u * a * v == d`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snf {
    /// Unimodular row transform (`m × m`).
    pub u: IMat,
    /// Unimodular column transform (`n × n`).
    pub v: IMat,
    /// The diagonal form (`m × n`), nonnegative diagonal, `dᵢ | dᵢ₊₁`.
    pub d: IMat,
    /// Number of nonzero diagonal entries (the rank).
    pub rank: usize,
}

/// Compute the Smith normal form of `a`.
pub fn smith_normal_form(a: &IMat) -> Result<Snf> {
    let m = a.rows();
    let n = a.cols();
    let mut d = a.clone();
    let mut u = IMat::identity(m);
    let mut v = IMat::identity(n);

    let dim = m.min(n);
    for k in 0..dim {
        loop {
            // Find the entry with minimal nonzero |value| in the trailing
            // block and bring it to (k, k).
            let mut best: Option<(usize, usize, i64)> = None;
            for r in k..m {
                for c in k..n {
                    let x = d.get(r, c);
                    if x != 0 && best.is_none_or(|(_, _, bv)| x.abs() < bv.abs()) {
                        best = Some((r, c, x));
                    }
                }
            }
            let Some((br, bc, _)) = best else {
                // Trailing block is zero: done.
                return finish(u, v, d, k);
            };
            if br != k {
                d.swap_rows(k, br);
                u.swap_rows(k, br);
            }
            if bc != k {
                d.swap_cols(k, bc);
                v.swap_cols(k, bc);
            }
            let pivot = d.get(k, k);

            // Clear the rest of column k.
            let mut dirty = false;
            for r in k + 1..m {
                let x = d.get(r, k);
                if x != 0 {
                    let q = floor_div(x, pivot)?;
                    if q != 0 {
                        d.add_scaled_row(r, -q, k)?;
                        u.add_scaled_row(r, -q, k)?;
                    }
                    if d.get(r, k) != 0 {
                        dirty = true;
                    }
                }
            }
            if dirty {
                continue;
            }
            // Clear the rest of row k.
            for c in k + 1..n {
                let x = d.get(k, c);
                if x != 0 {
                    let q = floor_div(x, pivot)?;
                    if q != 0 {
                        d.add_scaled_col(c, -q, k)?;
                        v.add_scaled_col(c, -q, k)?;
                    }
                    if d.get(k, c) != 0 {
                        dirty = true;
                    }
                }
            }
            if dirty {
                continue;
            }

            // Divisibility repair: pivot must divide every trailing entry.
            let p = d.get(k, k);
            let mut fixed = true;
            'scan: for r in k + 1..m {
                for c in k + 1..n {
                    if d.get(r, c) % p != 0 {
                        // Add row r to row k, which reintroduces a smaller
                        // remainder in the trailing block next iteration.
                        d.add_scaled_row(k, 1, r)?;
                        u.add_scaled_row(k, 1, r)?;
                        fixed = false;
                        break 'scan;
                    }
                }
            }
            if fixed {
                if d.get(k, k) < 0 {
                    d.negate_row(k)?;
                    u.negate_row(k)?;
                }
                break;
            }
        }
    }
    let rank = (0..dim).take_while(|&k| d.get(k, k) != 0).count();
    finish(u, v, d, rank)
}

fn finish(u: IMat, v: IMat, mut d: IMat, rank: usize) -> Result<Snf> {
    // Normalize signs of any diagonal survivors.
    for k in 0..rank.min(d.rows()).min(d.cols()) {
        if d.get(k, k) < 0 {
            d.negate_row(k)?;
            // Sign fix must also flow into u; but `finish` receives u by
            // value so rebuild is needed. Callers only reach here with
            // nonnegative diagonals except through the early return, where
            // the invariant also holds, so this branch is defensive.
            unreachable!("diagonal entries are normalized before finish");
        }
    }
    Ok(Snf { u, v, d, rank })
}

/// The invariant factors (nonzero diagonal entries) of `a`.
pub fn invariant_factors(a: &IMat) -> Result<Vec<i64>> {
    let s = smith_normal_form(a)?;
    Ok((0..s.rank).map(|k| s.d.get(k, k)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::det::det;

    fn m(rows: &[Vec<i64>]) -> IMat {
        IMat::from_rows(rows).unwrap()
    }

    fn check(a: &IMat) -> Snf {
        let s = smith_normal_form(a).unwrap();
        assert_eq!(
            s.u.mul(a).unwrap().mul(&s.v).unwrap(),
            s.d,
            "U*A*V != D for\n{a}"
        );
        assert_eq!(det(&s.u).unwrap().abs(), 1, "U not unimodular");
        assert_eq!(det(&s.v).unwrap().abs(), 1, "V not unimodular");
        // Diagonal, nonnegative, divisibility chain.
        for r in 0..s.d.rows() {
            for c in 0..s.d.cols() {
                if r != c {
                    assert_eq!(s.d.get(r, c), 0, "off-diagonal in D");
                }
            }
        }
        let diag: Vec<i64> = (0..s.d.rows().min(s.d.cols()))
            .map(|k| s.d.get(k, k))
            .collect();
        for w in diag.windows(2) {
            if w[1] != 0 {
                assert_ne!(w[0], 0, "zero before nonzero on diagonal");
                assert_eq!(w[1] % w[0], 0, "divisibility {} | {} fails", w[0], w[1]);
            }
        }
        assert!(diag.iter().all(|&x| x >= 0));
        s
    }

    #[test]
    fn known_forms() {
        let s = check(&m(&[vec![2, 4], vec![6, 8]]));
        assert_eq!(
            invariant_factors(&m(&[vec![2, 4], vec![6, 8]])).unwrap(),
            vec![2, 4]
        );
        assert_eq!(s.rank, 2);

        let s2 = check(&m(&[vec![2, 1], vec![0, 2]]));
        // det 4, gcd of entries 1 -> factors 1, 4.
        assert_eq!(
            invariant_factors(&m(&[vec![2, 1], vec![0, 2]])).unwrap(),
            vec![1, 4]
        );
        assert_eq!(s2.rank, 2);
    }

    #[test]
    fn identity_and_zero() {
        let s = check(&IMat::identity(3));
        assert_eq!(s.rank, 3);
        let z = check(&IMat::zeros(2, 3));
        assert_eq!(z.rank, 0);
    }

    #[test]
    fn rectangular() {
        check(&m(&[vec![2, 4, 6]]));
        check(&m(&[vec![3], vec![6], vec![9]]));
        let s = smith_normal_form(&m(&[vec![2, 4, 6]])).unwrap();
        assert_eq!(s.d.get(0, 0), 2);
    }

    #[test]
    fn det_preserved_up_to_sign() {
        let a = m(&[vec![2, 1], vec![1, 3]]);
        let s = check(&a);
        let prod: i64 = (0..2).map(|k| s.d.get(k, k)).product();
        assert_eq!(prod, det(&a).unwrap().abs());
    }

    #[test]
    fn randomized_snf_invariants() {
        let mut state = 0x0123456789ABCDEFu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 13) as i64 - 6
        };
        for _ in 0..120 {
            let rows = 1 + (next().unsigned_abs() as usize % 4);
            let cols = 1 + (next().unsigned_abs() as usize % 4);
            let data: Vec<i64> = (0..rows * cols).map(|_| next()).collect();
            check(&IMat::from_flat(rows, cols, &data).unwrap());
        }
    }
}
