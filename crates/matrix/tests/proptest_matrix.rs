//! Property-based tests for the exact linear algebra kernel.
//!
//! These exercise the algebraic laws that the dependence analysis relies
//! on: reductions must be exact factorizations, normal forms must be
//! canonical, and lattice predicates must agree with brute force.

use pdm_matrix::det::{det, is_unimodular};
use pdm_matrix::echelon::row_echelon;
use pdm_matrix::hnf::{hermite_normal_form, is_hnf};
use pdm_matrix::lattice::Lattice;
use pdm_matrix::lex::{is_echelon, is_lex_positive, lex_cmp, small_vectors};
use pdm_matrix::snf::smith_normal_form;
use pdm_matrix::solve::solve_dio;
use pdm_matrix::{IMat, IVec, Unimodular};
use proptest::prelude::*;

/// Strategy: a small matrix with entries in [-9, 9].
fn small_matrix(max_dim: usize) -> impl Strategy<Value = IMat> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-9i64..=9, r * c)
            .prop_map(move |data| IMat::from_flat(r, c, &data).unwrap())
    })
}

/// Strategy: a small unimodular matrix built as a product of elementary
/// transformations (always |det| = 1 by construction).
fn small_unimodular(n: usize) -> impl Strategy<Value = Unimodular> {
    proptest::collection::vec((0..n, 0..n, -3i64..=3, 0..3u8), 0..8).prop_map(move |ops| {
        let mut t = Unimodular::identity(n);
        for (i, j, k, kind) in ops {
            let step = match kind {
                0 if i != j => Unimodular::skewing(n, i, j, k).unwrap(),
                1 => Unimodular::interchange(n, i, j).unwrap(),
                _ => Unimodular::reversal(n, i).unwrap(),
            };
            t = t.compose(&step).unwrap();
        }
        t
    })
}

proptest! {
    #[test]
    fn echelon_is_exact_factorization(a in small_matrix(5)) {
        let r = row_echelon(&a).unwrap();
        prop_assert_eq!(r.u.mul(&a).unwrap(), r.echelon.clone());
        prop_assert!(is_echelon(&r.echelon));
        prop_assert!(is_unimodular(&r.u));
    }

    #[test]
    fn hnf_is_canonical_under_unimodular_premultiplication(
        a in small_matrix(4),
        seed in 0u64..1000,
    ) {
        // Premultiplying by any unimodular W preserves the row lattice,
        // hence the HNF.
        let m = a.rows();
        let mut w = IMat::identity(m);
        // Cheap deterministic unimodular from the seed.
        let mut s = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        for _ in 0..4 {
            s ^= s << 13; s ^= s >> 7; s ^= s << 17;
            let i = (s as usize) % m;
            let j = (s as usize / 7) % m;
            let k = (s % 5) as i64 - 2;
            if i != j {
                w.add_scaled_row(i, k, j).unwrap();
            }
        }
        let wa = w.mul(&a).unwrap();
        let h1 = hermite_normal_form(&a).unwrap().hnf;
        let h2 = hermite_normal_form(&wa).unwrap().hnf;
        prop_assert_eq!(h1, h2);
    }

    #[test]
    fn hnf_spans_same_lattice(a in small_matrix(4)) {
        let h = hermite_normal_form(&a).unwrap();
        prop_assert!(is_hnf(&h.hnf));
        let orig = Lattice::from_generators(&a).unwrap();
        let canon = Lattice::from_generators(&h.hnf).unwrap();
        prop_assert!(orig.includes(&canon).unwrap());
        prop_assert!(canon.includes(&orig).unwrap());
    }

    #[test]
    fn snf_diagonal_products_match_det(
        data in proptest::collection::vec(-6i64..=6, 9)
    ) {
        let a = IMat::from_flat(3, 3, &data).unwrap();
        let s = smith_normal_form(&a).unwrap();
        let prod: i64 = (0..3).map(|k| s.d.get(k, k)).product();
        prop_assert_eq!(prod, det(&a).unwrap().abs());
    }

    #[test]
    fn solve_dio_agrees_with_brute_force(
        data in proptest::collection::vec(-4i64..=4, 6),
        c0 in -6i64..=6,
        c1 in -6i64..=6,
    ) {
        let a = IMat::from_flat(3, 2, &data).unwrap();
        let c = IVec::from_slice(&[c0, c1]);
        let sol = solve_dio(&a, &c).unwrap();
        // Brute-force search in a ball; if we find a witness, the solver
        // must have too (completeness on the ball).
        let witness = small_vectors(3, 6)
            .find(|x| a.vec_mul(&IVec::from_slice(x)).unwrap() == c);
        if witness.is_some() {
            prop_assert!(sol.is_some(), "solver missed a witnessed solution");
        }
        if let Some(s) = sol {
            prop_assert_eq!(a.vec_mul(&s.particular).unwrap(), c);
        }
    }

    #[test]
    fn unimodular_inverse_is_exact(t in small_unimodular(4)) {
        let inv = t.inverse().unwrap();
        prop_assert_eq!(t.mat().mul(inv.mat()).unwrap(), IMat::identity(4));
        prop_assert_eq!(inv.mat().mul(t.mat()).unwrap(), IMat::identity(4));
    }

    #[test]
    fn unimodular_preserves_lattice_index(t in small_unimodular(3)) {
        // A unimodular image of Z^3 under any full-rank lattice keeps the
        // index: [Z^n : L] == [Z^n : L·T].
        let lat = Lattice::from_generators(
            &IMat::from_rows(&[vec![2, 1, 0], vec![0, 3, 1], vec![0, 0, 2]]).unwrap(),
        ).unwrap();
        let img = lat.transform(t.mat()).unwrap();
        prop_assert_eq!(img.index().map(i64::abs), lat.index());
    }

    #[test]
    fn lex_cmp_total_order(
        a in proptest::collection::vec(-5i64..=5, 4),
        b in proptest::collection::vec(-5i64..=5, 4),
        c in proptest::collection::vec(-5i64..=5, 4),
    ) {
        use std::cmp::Ordering;
        // Antisymmetry.
        prop_assert_eq!(lex_cmp(&a, &b), lex_cmp(&b, &a).reverse());
        // Transitivity (on this triple).
        if lex_cmp(&a, &b) != Ordering::Greater && lex_cmp(&b, &c) != Ordering::Greater {
            prop_assert_ne!(lex_cmp(&a, &c), Ordering::Greater);
        }
        // Sign predicate consistency: v > 0 lexicographically iff 0 < v.
        let zero = vec![0i64; 4];
        prop_assert_eq!(is_lex_positive(&a), lex_cmp(&zero, &a) == Ordering::Less);
    }

    #[test]
    fn lattice_join_includes_both(a in small_matrix(3), b in small_matrix(3)) {
        prop_assume!(a.cols() == b.cols());
        let la = Lattice::from_generators(&a).unwrap();
        let lb = Lattice::from_generators(&b).unwrap();
        let j = la.join(&lb).unwrap();
        prop_assert!(j.includes(&la).unwrap());
        prop_assert!(j.includes(&lb).unwrap());
    }

    #[test]
    fn lattice_membership_closed_under_addition(
        g in small_matrix(3),
        x in proptest::collection::vec(-3i64..=3, 3),
        y in proptest::collection::vec(-3i64..=3, 3),
    ) {
        prop_assume!(g.cols() == 3);
        let lat = Lattice::from_generators(&g).unwrap();
        // Members built from coordinate vectors are members, and so are
        // their sums (closure under addition).
        let coords = |src: &[i64]| -> IVec {
            src.iter().copied().chain(std::iter::repeat(0)).take(lat.rank()).collect()
        };
        let a_ = lat.basis().vec_mul(&coords(&x)).unwrap();
        let b_ = lat.basis().vec_mul(&coords(&y)).unwrap();
        prop_assert!(lat.contains(&a_).unwrap());
        prop_assert!(lat.contains(&b_).unwrap());
        prop_assert!(lat.contains(&a_.add(&b_).unwrap()).unwrap());
    }
}
