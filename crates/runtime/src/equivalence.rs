//! Execution-equivalence harnesses.
//!
//! The strongest end-to-end statement the library can make about a
//! generated schedule: running it on rayon produces bit-identical array
//! contents to the original sequential loop, from identical initial data.
//! [`compare`] checks the interpreter pair; [`compare_three_way`] adds
//! the compiled engine, pinning all three executors — sequential
//! interpreter (reference semantics), interpreted-parallel, and
//! compiled-parallel — to one result.

use crate::compile::CompiledPlan;
use crate::exec::{run_parallel, run_sequential};
use crate::memory::Memory;
use crate::Result;
use pdm_core::plan::ParallelPlan;
use pdm_loopir::nest::LoopNest;

/// Outcome of an equivalence run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivalenceReport {
    /// Iterations executed (identical for both runs by construction).
    pub iterations: u64,
    /// Number of independent parallel groups the plan produced.
    pub groups: usize,
    /// Did the final memories match?
    pub equal: bool,
}

/// Run `nest` sequentially and via `plan` on rayon, from identical
/// deterministic initial memory, and compare the results.
pub fn compare(nest: &LoopNest, plan: &ParallelPlan, seed: u64) -> Result<EquivalenceReport> {
    let mut m_seq = Memory::for_nest(nest)?;
    let mut m_par = Memory::for_nest(nest)?;
    m_seq.init_deterministic(seed);
    m_par.init_deterministic(seed);
    let c1 = run_sequential(nest, &m_seq)?;
    let c2 = run_parallel(nest, plan, &m_par)?;
    debug_assert_eq!(c1, c2, "iteration counts diverged");
    Ok(EquivalenceReport {
        iterations: c1,
        groups: crate::exec::group_count(plan)? as usize,
        equal: m_seq.snapshot() == m_par.snapshot(),
    })
}

/// Convenience assertion for tests: analyze, plan, execute, compare.
pub fn assert_plan_equivalent(nest: &LoopNest, seed: u64) {
    let plan = pdm_core::parallelize(nest).expect("parallelize");
    let rep = compare(nest, &plan, seed).expect("execute");
    assert!(
        rep.equal,
        "parallel execution diverged from sequential ({} iterations, {} groups)",
        rep.iterations, rep.groups
    );
}

/// Outcome of a three-way equivalence run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreeWayReport {
    /// Iterations executed by the sequential reference.
    pub iterations: u64,
    /// Independent parallel groups in the plan.
    pub groups: usize,
    /// Interpreted-parallel matched the sequential reference.
    pub interp_equal: bool,
    /// Compiled-parallel matched the sequential reference.
    pub compiled_equal: bool,
}

impl ThreeWayReport {
    /// All executors agreed.
    pub fn all_equal(&self) -> bool {
        self.interp_equal && self.compiled_equal
    }
}

/// Run the sequential interpreter, the parallel interpreter, and the
/// compiled parallel engine from identical deterministic initial memory,
/// and compare all results against the sequential reference.
pub fn compare_three_way(
    nest: &LoopNest,
    plan: &ParallelPlan,
    seed: u64,
) -> Result<ThreeWayReport> {
    let mut m_seq = Memory::for_nest(nest)?;
    let mut m_par = Memory::for_nest(nest)?;
    let mut m_comp = Memory::for_nest(nest)?;
    m_seq.init_deterministic(seed);
    m_par.init_deterministic(seed);
    m_comp.init_deterministic(seed);
    let c1 = run_sequential(nest, &m_seq)?;
    let c2 = run_parallel(nest, plan, &m_par)?;
    let compiled = CompiledPlan::compile(nest, plan, &m_comp)?;
    let c3 = compiled.run_parallel(&m_comp)?;
    debug_assert_eq!(c1, c2, "interpreted iteration counts diverged");
    debug_assert_eq!(c1, c3, "compiled iteration count diverged");
    let reference = m_seq.snapshot();
    Ok(ThreeWayReport {
        iterations: c1,
        groups: crate::exec::group_count(plan)? as usize,
        interp_equal: reference == m_par.snapshot() && c1 == c2,
        compiled_equal: reference == m_comp.snapshot() && c1 == c3,
    })
}

/// Outcome of a program (imperfect-nest) equivalence run: every
/// normalized executor against the imperfect reference interpreter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramReport {
    /// Statement executions of the imperfect reference.
    pub reference_stmts: u64,
    /// Summed kernel iterations (identical across the program executors
    /// by construction).
    pub kernel_iterations: u64,
    /// Kernels in the plan.
    pub kernels: usize,
    /// Fissioned-sequential (kernels in order) matched the reference.
    pub fission_seq_equal: bool,
    /// Staged interpreted-parallel matched the reference.
    pub interp_par_equal: bool,
    /// Staged compiled-parallel matched the reference.
    pub compiled_par_equal: bool,
}

impl ProgramReport {
    /// All executors agreed with the reference.
    pub fn all_equal(&self) -> bool {
        self.fission_seq_equal && self.interp_par_equal && self.compiled_par_equal
    }
}

/// Run the imperfect reference interpreter, the fissioned-sequential
/// baseline, the staged interpreted-parallel executor, and the staged
/// compiled-parallel engine from identical deterministic initial memory,
/// and compare every result against the reference.
pub fn compare_program(
    imp: &pdm_loopir::imperfect::ImperfectNest,
    pp: &pdm_core::program::ProgramPlan,
    seed: u64,
) -> Result<ProgramReport> {
    let mut m_ref = Memory::for_imperfect(imp)?;
    let mut m_seq = Memory::for_imperfect(imp)?;
    let mut m_par = Memory::for_imperfect(imp)?;
    let mut m_comp = Memory::for_imperfect(imp)?;
    m_ref.init_deterministic(seed);
    m_seq.init_deterministic(seed);
    m_par.init_deterministic(seed);
    m_comp.init_deterministic(seed);
    let reference_stmts = crate::staged::run_imperfect_sequential(imp, &m_ref)?;
    let c_seq = crate::staged::run_program_sequential(pp, &m_seq)?;
    let c_par = crate::staged::run_program_parallel(pp, &m_par)?;
    let compiled = crate::staged::CompiledProgram::compile(pp, &m_comp)?;
    let c_comp = compiled.run_parallel(&m_comp)?;
    debug_assert_eq!(c_seq, c_par, "program iteration counts diverged");
    debug_assert_eq!(c_seq, c_comp, "compiled program iteration count diverged");
    let reference = m_ref.snapshot();
    Ok(ProgramReport {
        reference_stmts,
        kernel_iterations: c_seq,
        kernels: pp.kernel_count(),
        fission_seq_equal: reference == m_seq.snapshot(),
        interp_par_equal: reference == m_par.snapshot() && c_seq == c_par,
        compiled_par_equal: reference == m_comp.snapshot() && c_seq == c_comp,
    })
}

/// Convenience assertion: normalize, plan, and require every program
/// executor to match the imperfect reference bit-for-bit.
pub fn assert_program_equivalent(imp: &pdm_loopir::imperfect::ImperfectNest, seed: u64) {
    let pp = pdm_core::program::parallelize_program(imp).expect("parallelize_program");
    let rep = compare_program(imp, &pp, seed).expect("execute");
    assert!(
        rep.all_equal(),
        "program executors diverged from the imperfect reference: {rep:?}"
    );
}

/// Convenience assertion: analyze, plan, and require all three executors
/// to agree bit-for-bit.
pub fn assert_three_way_equivalent(nest: &LoopNest, seed: u64) {
    let plan = pdm_core::parallelize(nest).expect("parallelize");
    let rep = compare_three_way(nest, &plan, seed).expect("execute");
    assert!(
        rep.all_equal(),
        "executors diverged (interp_equal: {}, compiled_equal: {}; {} iterations, {} groups)",
        rep.interp_equal,
        rep.compiled_equal,
        rep.iterations,
        rep.groups
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_loopir::parse::{parse_loop, parse_loop_with};

    #[test]
    fn paper_examples_equivalent() {
        for src in [
            "for i1 = 0..=9 { for i2 = 0..=9 {
               A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
             } }",
            "for i1 = 0..=9 { for i2 = 0..=9 {
               A[i1, 3*i2 + 2] = B[i1, i2] + 1;
               B[3*i1 + 2, i1 + i2 + 1] = A[i1, i2] + 2;
             } }",
        ] {
            let nest = parse_loop(src).unwrap();
            assert_plan_equivalent(&nest, 1);
            assert_plan_equivalent(&nest, 99);
        }
    }

    #[test]
    fn workload_suite_equivalent() {
        for src in [
            // chain (fully sequential plan)
            "for i = 1..=40 { A[i] = A[i - 1] + 1; }",
            // independent
            "for i = 0..=40 { A[i] = i * 3; }",
            // variable-distance scan
            "for i = 0..=40 { A[2*i] = A[i] + 1; }",
            // classic stencil
            "for i = 1..=12 { for j = 1..=12 { A[i, j] = A[i - 1, j] + A[i, j - 1]; } }",
            // inner parallel
            "for i = 1..=12 { for j = 0..=12 { A[i, j] = A[i - 1, j] + 1; } }",
            // strided uniform
            "for i = 2..=30 { A[i] = A[i - 2] + 1; }",
            // triangular bounds
            "for i = 0..=12 { for j = 0..=i { A[i, j] = A[i, j] + j; } }",
            // 3-deep mixed
            "for i = 1..=5 { for j = 0..=5 { for k = 0..=5 {
               A[i, j, k] = A[i - 1, j, k] + 1;
             } } }",
        ] {
            let nest = parse_loop(src).unwrap();
            assert_plan_equivalent(&nest, 7);
        }
    }

    #[test]
    fn larger_sizes_equivalent() {
        let nest = parse_loop_with(
            "for i1 = 0..N { for i2 = 0..N {
               A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
             } }",
            &[("N", 40)],
        )
        .unwrap();
        assert_plan_equivalent(&nest, 3);
    }

    #[test]
    fn report_fields() {
        let nest = parse_loop("for i = 0..=9 { A[i] = 1; }").unwrap();
        let plan = pdm_core::parallelize(&nest).unwrap();
        let rep = compare(&nest, &plan, 0).unwrap();
        assert_eq!(rep.iterations, 10);
        assert_eq!(rep.groups, 10); // fully parallel: one group per point
        assert!(rep.equal);
    }
}
