//! Flat bytecode form of a loop body, evaluated without recursion or
//! per-iteration allocation.
//!
//! The tree-walking interpreter in [`crate::exec`] re-traverses every
//! `Expr` node and allocates one subscript `Vec<i64>` per array access per
//! iteration. This module lowers a nest's body **once** into:
//!
//! * a postfix [`Op`] sequence evaluated on a reusable scratch stack, and
//! * one [`LinAccess`] per array reference — the access's affine subscript
//!   map composed with the array's row-major layout, so each reference
//!   becomes a single **linear form** `flat(i) = base + coeff · i` over
//!   the original iteration indices.
//!
//! Linearization is what makes strength reduction possible: the drivers in
//! [`crate::compile`] never recompute `flat` from scratch — they keep one
//! running flat offset per access in [`Scratch::flats`] and nudge it by a
//! precomputed per-loop-level delta whenever an index advances.
//!
//! ## Bounds safety
//!
//! `Memory::for_nest` sizes every array by interval arithmetic over the
//! *global* index ranges, so any access evaluated at an iteration inside
//! the polyhedron is in its per-dimension box, and therefore its flat
//! index is in `[0, len)`. The executor still guards the flat range
//! (defense in depth — an out-of-range flat index means a compiler bug)
//! and reconstructs the per-dimension subscript only on that cold error
//! path.
//!
//! ## Arithmetic
//!
//! Body arithmetic is **wrapping**, bit-compatible with the interpreter
//! (see [`crate::exec`] for the wrapping-vs-checked policy).

use crate::memory::Memory;
use crate::{Result, RuntimeError};
use pdm_loopir::access::AffineAccess;
use pdm_loopir::expr::Expr;
use pdm_loopir::nest::LoopNest;

/// One postfix bytecode operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Push a literal.
    Const(i64),
    /// Push original loop index `k`.
    Index(u32),
    /// Push the value of access table entry `a` at its current flat offset.
    Load(u32),
    /// Pop two, push their wrapping sum.
    Add,
    /// Pop two, push their wrapping difference.
    Sub,
    /// Pop two, push their wrapping product.
    Mul,
    /// Pop one, push its wrapping negation.
    Neg,
    /// Pop one value and store it through access table entry `a`.
    Store(u32),
    /// Skip the next `skip` ops unless `idx[level] == guards[g](idx)` —
    /// the compiled form of a statement's [`pdm_loopir::stmt::IndexGuard`].
    /// A guarded statement compiles to its guard checks first, each
    /// jumping past the statement's remaining ops on failure, so the
    /// operand stack stays empty across a skip.
    GuardEq {
        /// Guarded loop level.
        level: u32,
        /// Index into the program's guard-value table.
        g: u32,
        /// Ops to skip when the guard fails.
        skip: u32,
    },
}

/// An array reference lowered to a linear form over the iteration vector:
/// `flat(i) = base + coeff · i`, indexing the array's dense backing store.
#[derive(Debug, Clone)]
pub struct LinAccess {
    /// Index of the array in the nest's [`Memory`].
    pub array: u32,
    /// Flat offset at `i = 0`.
    pub base: i64,
    /// Per-original-index flat strides (length = loop depth).
    pub coeff: Vec<i64>,
    /// Backing length of the array (flat guard).
    pub len: usize,
    /// Original affine access, kept for the cold error path only.
    pub origin: AffineAccess,
}

impl LinAccess {
    fn lower(
        access: &AffineAccess,
        array: usize,
        dims: &[(i64, i64)],
        len: usize,
        depth: usize,
    ) -> Result<LinAccess> {
        let m = access.dims();
        debug_assert_eq!(m, dims.len());
        // Row-major strides of the (lo, hi)-boxed array.
        let mut stride = vec![1i128; m];
        for d in (0..m.saturating_sub(1)).rev() {
            let (lo, hi) = dims[d + 1];
            stride[d] = stride[d + 1] * (hi - lo + 1).max(0) as i128;
        }
        let overflow = || RuntimeError::Matrix(pdm_matrix::MatrixError::Overflow);
        let mut base: i128 = 0;
        for d in 0..m {
            base += (access.offset[d] as i128 - dims[d].0 as i128) * stride[d];
        }
        let mut coeff = Vec::with_capacity(depth);
        for k in 0..depth {
            let mut c: i128 = 0;
            for d in 0..m {
                c += access.matrix.get(k, d) as i128 * stride[d];
            }
            coeff.push(i64::try_from(c).map_err(|_| overflow())?);
        }
        Ok(LinAccess {
            array: array as u32,
            base: i64::try_from(base).map_err(|_| overflow())?,
            coeff,
            len,
            origin: access.clone(),
        })
    }
}

/// Reusable per-worker evaluation state. One `Scratch` serves any number
/// of iterations and groups; nothing inside allocates after construction.
#[derive(Debug, Clone)]
pub struct Scratch {
    /// Operand stack (pre-sized to the program's maximum depth).
    stack: Vec<i64>,
    /// Current original iteration indices.
    pub idx: Vec<i64>,
    /// Current flat offset of every access (strength-reduced).
    pub flats: Vec<i64>,
}

/// A compiled loop body: postfix ops plus the linearized access table.
///
/// A `Program` is tied to the array geometry of the [`Memory`] it was
/// compiled against; `Memory::for_nest` is deterministic, so any memory
/// allocated for the same nest shares that geometry.
#[derive(Debug, Clone)]
pub struct Program {
    ops: Vec<Op>,
    accesses: Vec<LinAccess>,
    /// Guard-value table: affine forms `coeffs · idx + constant` over the
    /// original indices, referenced by [`Op::GuardEq`].
    guards: Vec<(Vec<i64>, i64)>,
    depth: usize,
    max_stack: usize,
}

impl Program {
    /// Lower the nest's body against `mem`'s array geometry.
    pub fn compile(nest: &LoopNest, mem: &Memory) -> Result<Program> {
        let depth = nest.depth();
        let mut ops = Vec::new();
        let mut accesses = Vec::new();
        let mut guards = Vec::new();
        for stmt in nest.body() {
            // Compile the statement body first so each guard knows how
            // many ops it must skip on failure.
            let mut stmt_ops = Vec::new();
            emit_expr(&stmt.rhs, nest, mem, depth, &mut stmt_ops, &mut accesses)?;
            let id = push_access(
                &stmt.lhs.access,
                stmt.lhs.array.0,
                nest,
                mem,
                depth,
                &mut accesses,
            )?;
            stmt_ops.push(Op::Store(id));
            // Guard checks: each failure skips the remaining guards and
            // the statement ops (the stack is empty between statements).
            for (j, guard) in stmt.guards.iter().enumerate() {
                let g = guards.len() as u32;
                guards.push((
                    (0..depth).map(|k| guard.value.coeff(k)).collect(),
                    guard.value.constant,
                ));
                let remaining_guards = stmt.guards.len() - 1 - j;
                ops.push(Op::GuardEq {
                    level: guard.index as u32,
                    g,
                    skip: (remaining_guards + stmt_ops.len()) as u32,
                });
            }
            ops.extend(stmt_ops);
        }
        let max_stack = simulate_stack(&ops);
        Ok(Program {
            ops,
            accesses,
            guards,
            depth,
            max_stack,
        })
    }

    /// The bytecode.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// The linearized access table.
    pub fn accesses(&self) -> &[LinAccess] {
        &self.accesses
    }

    /// Loop depth the program expects.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Allocate the reusable evaluation state for this program.
    pub fn new_scratch(&self) -> Scratch {
        Scratch {
            stack: vec![0; self.max_stack.max(1)],
            idx: vec![0; self.depth],
            flats: vec![0; self.accesses.len()],
        }
    }

    /// Recompute every flat offset from `scratch.idx` (used when a driver
    /// repositions the iteration point non-incrementally).
    pub fn reset_flats(&self, scratch: &mut Scratch) {
        for (f, acc) in scratch.flats.iter_mut().zip(&self.accesses) {
            let mut v = acc.base;
            for (c, i) in acc.coeff.iter().zip(&scratch.idx) {
                v = v.wrapping_add(c.wrapping_mul(*i));
            }
            *f = v;
        }
    }

    /// Execute the body once at the iteration point described by
    /// `scratch.idx` / `scratch.flats`.
    #[inline]
    pub fn exec(&self, mem: &Memory, scratch: &mut Scratch) -> Result<()> {
        let stack = &mut scratch.stack;
        let mut sp = 0usize;
        let mut pc = 0usize;
        while pc < self.ops.len() {
            let op = &self.ops[pc];
            pc += 1;
            match *op {
                Op::GuardEq { level, g, skip } => {
                    // Exact i128 evaluation, bit-identical to
                    // `IndexGuard::holds` (guard arithmetic must not
                    // wrap — a wrapped value could alias a real index).
                    let (coeffs, constant) = &self.guards[g as usize];
                    let mut v = *constant as i128;
                    for (c, i) in coeffs.iter().zip(&scratch.idx) {
                        v += *c as i128 * *i as i128;
                    }
                    if v != scratch.idx[level as usize] as i128 {
                        pc += skip as usize;
                    }
                }
                Op::Const(c) => {
                    stack[sp] = c;
                    sp += 1;
                }
                Op::Index(k) => {
                    stack[sp] = scratch.idx[k as usize];
                    sp += 1;
                }
                Op::Load(a) => {
                    let acc = &self.accesses[a as usize];
                    let f = scratch.flats[a as usize];
                    let v = usize::try_from(f)
                        .ok()
                        .and_then(|f| mem.read_flat(acc.array as usize, f));
                    match v {
                        Some(v) => {
                            stack[sp] = v;
                            sp += 1;
                        }
                        None => return Err(self.oob(a, mem, &scratch.idx)),
                    }
                }
                Op::Add => {
                    sp -= 1;
                    stack[sp - 1] = stack[sp - 1].wrapping_add(stack[sp]);
                }
                Op::Sub => {
                    sp -= 1;
                    stack[sp - 1] = stack[sp - 1].wrapping_sub(stack[sp]);
                }
                Op::Mul => {
                    sp -= 1;
                    stack[sp - 1] = stack[sp - 1].wrapping_mul(stack[sp]);
                }
                Op::Neg => {
                    stack[sp - 1] = stack[sp - 1].wrapping_neg();
                }
                Op::Store(a) => {
                    sp -= 1;
                    let acc = &self.accesses[a as usize];
                    let f = scratch.flats[a as usize];
                    let ok = usize::try_from(f)
                        .ok()
                        .and_then(|f| mem.write_flat(acc.array as usize, f, stack[sp]));
                    if ok.is_none() {
                        return Err(self.oob(a, mem, &scratch.idx));
                    }
                }
            }
        }
        debug_assert_eq!(sp, 0, "program left operands on the stack");
        Ok(())
    }

    /// Number of compiled guard checks (for tests/inspection).
    pub fn guard_count(&self) -> usize {
        self.guards.len()
    }

    /// Cold path: reconstruct the subscript of a failed access.
    #[cold]
    fn oob(&self, a: u32, mem: &Memory, idx: &[i64]) -> RuntimeError {
        let acc = &self.accesses[a as usize];
        let sub = acc
            .origin
            .eval(&pdm_matrix::vec::IVec(idx.to_vec()))
            .map(|s| s.0)
            .unwrap_or_default();
        RuntimeError::OutOfBounds {
            array: mem.arrays()[acc.array as usize].name.clone(),
            subscript: sub,
        }
    }
}

fn push_access(
    access: &AffineAccess,
    array: usize,
    nest: &LoopNest,
    mem: &Memory,
    depth: usize,
    accesses: &mut Vec<LinAccess>,
) -> Result<u32> {
    debug_assert!(array < nest.arrays().len());
    let storage = &mem.arrays()[array];
    let lin = LinAccess::lower(access, array, &storage.dims, storage.len(), depth)?;
    accesses.push(lin);
    Ok((accesses.len() - 1) as u32)
}

fn emit_expr(
    e: &Expr,
    nest: &LoopNest,
    mem: &Memory,
    depth: usize,
    ops: &mut Vec<Op>,
    accesses: &mut Vec<LinAccess>,
) -> Result<()> {
    match e {
        Expr::Const(c) => ops.push(Op::Const(*c)),
        Expr::Index(k) => ops.push(Op::Index(*k as u32)),
        Expr::Read(r) => {
            let id = push_access(&r.access, r.array.0, nest, mem, depth, accesses)?;
            ops.push(Op::Load(id));
        }
        Expr::Add(a, b) => {
            emit_expr(a, nest, mem, depth, ops, accesses)?;
            emit_expr(b, nest, mem, depth, ops, accesses)?;
            ops.push(Op::Add);
        }
        Expr::Sub(a, b) => {
            emit_expr(a, nest, mem, depth, ops, accesses)?;
            emit_expr(b, nest, mem, depth, ops, accesses)?;
            ops.push(Op::Sub);
        }
        Expr::Mul(a, b) => {
            emit_expr(a, nest, mem, depth, ops, accesses)?;
            emit_expr(b, nest, mem, depth, ops, accesses)?;
            ops.push(Op::Mul);
        }
        Expr::Neg(a) => {
            emit_expr(a, nest, mem, depth, ops, accesses)?;
            ops.push(Op::Neg);
        }
    }
    Ok(())
}

fn simulate_stack(ops: &[Op]) -> usize {
    let (mut depth, mut max) = (0isize, 0isize);
    for op in ops {
        match op {
            Op::Const(_) | Op::Index(_) | Op::Load(_) => depth += 1,
            Op::Add | Op::Sub | Op::Mul | Op::Store(_) => depth -= 1,
            // A guard skips a stack-balanced region, so the linear scan
            // stays a sound over-approximation of the true maximum.
            Op::Neg | Op::GuardEq { .. } => {}
        }
        max = max.max(depth);
    }
    max.max(0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_loopir::parse::parse_loop;

    fn compile(src: &str) -> (LoopNest, Memory, Program) {
        let nest = parse_loop(src).unwrap();
        let mem = Memory::for_nest(&nest).unwrap();
        let prog = Program::compile(&nest, &mem).unwrap();
        (nest, mem, prog)
    }

    #[test]
    fn linearization_matches_eval_plus_flat() {
        let (nest, mem, prog) = compile(
            "for i1 = 0..=9 { for i2 = 0..=9 {
               A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
             } }",
        );
        for it in nest.iterations().unwrap() {
            for acc in prog.accesses() {
                let sub = acc.origin.eval(&it).unwrap();
                let expect = mem.flat(pdm_loopir::access::ArrayId(acc.array as usize), &sub.0);
                let mut lin = acc.base;
                for (c, i) in acc.coeff.iter().zip(it.as_slice()) {
                    lin += c * i;
                }
                assert_eq!(expect, Some(lin as usize), "at {it}");
            }
        }
    }

    #[test]
    fn exec_matches_interpreter_at_single_points() {
        let (nest, mem, prog) = compile("for i = 1..=10 { A[i] = A[i - 1] + 2 * i; }");
        let mem2 = Memory::for_nest(&nest).unwrap();
        let mut scratch = prog.new_scratch();
        for it in nest.iterations().unwrap() {
            scratch.idx.copy_from_slice(it.as_slice());
            prog.reset_flats(&mut scratch);
            prog.exec(&mem, &mut scratch).unwrap();
            crate::exec::exec_body(&nest, &mem2, it.as_slice()).unwrap();
        }
        assert_eq!(mem.snapshot(), mem2.snapshot());
    }

    #[test]
    fn stack_depth_is_tight_and_nonzero() {
        let (_, _, prog) = compile("for i = 0..=3 { A[i] = ((i + 1) * (i - 2)) + A[i]; }");
        assert!(prog.new_scratch().stack.len() >= 2);
        assert!(!prog.ops().is_empty());
    }

    #[test]
    fn guarded_statement_compiles_and_skips() {
        // A[i, j] += 1 everywhere; B[i, 0] = i only at j == 0.
        let (nest, mem, prog) = compile(
            "for i = 0..=4 { for j = 0..=4 {
               A[i, j] = A[i, j] + 1;
               B[i, 0] = i when j == 0;
             } }",
        );
        assert_eq!(prog.guard_count(), 1);
        let mem2 = Memory::for_nest(&nest).unwrap();
        let mut scratch = prog.new_scratch();
        for it in nest.iterations().unwrap() {
            scratch.idx.copy_from_slice(it.as_slice());
            prog.reset_flats(&mut scratch);
            prog.exec(&mem, &mut scratch).unwrap();
            crate::exec::exec_body(&nest, &mem2, it.as_slice()).unwrap();
        }
        assert_eq!(mem.snapshot(), mem2.snapshot());
        // B got exactly the guarded writes.
        let b = nest.array_by_name("B").unwrap();
        for i in 0..=4 {
            assert_eq!(mem.read(b, &[i, 0]).unwrap(), i);
        }
    }

    #[test]
    fn guard_overflow_is_exact_across_executors() {
        // 2^62 * i overflows an i64 accumulator at i = 4 (wrapping to
        // 0, which would falsely match j = 0). Exact i128 guard
        // arithmetic must keep the compiled engine and the interpreter
        // bit-identical: the guard holds only at i = 0, j = 0.
        let (nest, mem, prog) = compile(
            "for i = 0..=4 { for j = 0..=4 { A[i, j] = 7 when j == 4611686018427387904*i; } }",
        );
        let mem2 = Memory::for_nest(&nest).unwrap();
        let mut scratch = prog.new_scratch();
        for it in nest.iterations().unwrap() {
            scratch.idx.copy_from_slice(it.as_slice());
            prog.reset_flats(&mut scratch);
            prog.exec(&mem, &mut scratch).unwrap();
            crate::exec::exec_body(&nest, &mem2, it.as_slice()).unwrap();
        }
        assert_eq!(mem.snapshot(), mem2.snapshot());
        let a = nest.array_by_name("A").unwrap();
        assert_eq!(mem.read(a, &[0, 0]).unwrap(), 7);
        assert_eq!(
            mem.read(a, &[4, 0]).unwrap(),
            0,
            "wrapped guard must not fire"
        );
    }

    #[test]
    fn negative_index_boxes_linearize() {
        let (nest, mem, prog) = compile("for i = -5..=5 { A[2*i] = A[i] + 1; }");
        // Box is [-10, 10]; flat(A[2i]) at i = -5 is 0.
        for it in nest.iterations().unwrap() {
            for acc in prog.accesses() {
                let sub = acc.origin.eval(&it).unwrap();
                let mut lin = acc.base;
                for (c, i) in acc.coeff.iter().zip(it.as_slice()) {
                    lin += c * i;
                }
                assert_eq!(
                    mem.flat(pdm_loopir::access::ArrayId(0), &sub.0),
                    Some(lin as usize)
                );
            }
        }
    }
}
