//! Sequential and parallel **interpretation** of loop nests — the
//! reference semantics.
//!
//! This module favors obviousness over speed: it re-walks the `Expr`
//! tree and re-evaluates bounds at every iteration point. The compiled
//! engine ([`crate::compile`]) is the fast path; its contract is
//! bit-identical `Memory` contents to this interpreter, which the
//! three-way harness in [`crate::equivalence`] enforces.
//!
//! ## Wrapping vs. checked arithmetic
//!
//! *Body* arithmetic (subscript evaluation in `eval_access`, value
//! computation in `eval_expr`) is **wrapping**: the executor's job is
//! to witness ordering, and wrapping keeps sequential, parallel, and
//! compiled runs bit-identical even on adversarial inputs. *Analysis*
//! arithmetic (`pdm_matrix::num`, bounds evaluation, residues) is
//! **checked**: a silent wrap there would produce an incorrect but
//! plausible-looking transformation, so it must fail loudly instead.

use crate::memory::Memory;
use crate::schedule;
use crate::{Result, RuntimeError};
use pdm_core::plan::ParallelPlan;
use pdm_loopir::expr::Expr;
use pdm_loopir::nest::LoopNest;
use pdm_matrix::vec::IVec;
use pdm_poly::bounds::LoopBounds;
use rayon::prelude::*;

/// Execute the nest in original sequential (lexicographic) order.
/// Returns the number of iterations executed.
pub fn run_sequential(nest: &LoopNest, mem: &Memory) -> Result<u64> {
    let sys = nest.iteration_system()?;
    let bounds = LoopBounds::from_system(&sys)?;
    let n = nest.depth();
    let mut idx = vec![0i64; n];
    let mut count = 0u64;
    walk_seq(nest, mem, &bounds, &mut idx, 0, &mut count)?;
    Ok(count)
}

fn walk_seq(
    nest: &LoopNest,
    mem: &Memory,
    bounds: &LoopBounds,
    idx: &mut Vec<i64>,
    level: usize,
    count: &mut u64,
) -> Result<()> {
    let n = nest.depth();
    let (lo, hi) = range_at(bounds, level, idx)?;
    for v in lo..=hi {
        idx[level] = v;
        if level + 1 == n {
            exec_body(nest, mem, idx)?;
            *count += 1;
        } else {
            walk_seq(nest, mem, bounds, idx, level + 1, count)?;
        }
    }
    Ok(())
}

fn range_at(bounds: &LoopBounds, level: usize, idx: &[i64]) -> Result<(i64, i64)> {
    // `bounds.range` wants exactly the outer prefix.
    let prefix = &idx[..level];
    Ok(bounds.range(level, prefix)?)
}

/// Execute the loop body at one iteration point. Guarded statements
/// (sunk imperfect-nest statements) run only where their index
/// equalities hold.
#[inline]
pub fn exec_body(nest: &LoopNest, mem: &Memory, idx: &[i64]) -> Result<()> {
    for stmt in nest.body() {
        exec_stmt(stmt, mem, idx)?;
    }
    Ok(())
}

/// Execute one (possibly guarded) statement at one iteration point —
/// shared by [`exec_body`] and the imperfect-nest reference interpreter.
#[inline]
pub(crate) fn exec_stmt(
    stmt: &pdm_loopir::stmt::Statement,
    mem: &Memory,
    idx: &[i64],
) -> Result<()> {
    if !stmt.guards_hold(idx) {
        return Ok(());
    }
    let value = eval_expr(&stmt.rhs, mem, idx)?;
    let sub = eval_access(&stmt.lhs.access, idx);
    mem.write(stmt.lhs.array, &sub, value)
}

/// Evaluate an affine access into a freshly allocated subscript vector.
/// This costs one `Vec<i64>` **per access per iteration** — acceptable
/// for the reference interpreter, and exactly the overhead the compiled
/// engine's linearized, strength-reduced addressing eliminates (see
/// [`crate::program::LinAccess`]).
#[inline]
fn eval_access(access: &pdm_loopir::access::AffineAccess, idx: &[i64]) -> Vec<i64> {
    let m = access.dims();
    let n = access.depth();
    let mut out = Vec::with_capacity(m);
    for d in 0..m {
        let mut acc = access.offset[d];
        for k in 0..n {
            acc = acc.wrapping_add(access.matrix.get(k, d).wrapping_mul(idx[k]));
        }
        out.push(acc);
    }
    out
}

/// Evaluate a body expression (wrapping integer arithmetic).
pub fn eval_expr(e: &Expr, mem: &Memory, idx: &[i64]) -> Result<i64> {
    Ok(match e {
        Expr::Const(c) => *c,
        Expr::Index(k) => idx[*k],
        Expr::Read(r) => {
            let sub = eval_access(&r.access, idx);
            mem.read(r.array, &sub)?
        }
        Expr::Add(a, b) => eval_expr(a, mem, idx)?.wrapping_add(eval_expr(b, mem, idx)?),
        Expr::Sub(a, b) => eval_expr(a, mem, idx)?.wrapping_sub(eval_expr(b, mem, idx)?),
        Expr::Mul(a, b) => eval_expr(a, mem, idx)?.wrapping_mul(eval_expr(b, mem, idx)?),
        Expr::Neg(a) => eval_expr(a, mem, idx)?.wrapping_neg(),
    })
}

/// One independent parallel group: a fixed doall prefix plus a partition
/// offset.
///
/// Construction is instrumented (see [`crate::schedule::live_groups`]):
/// the streaming schedulers keep at most one `GroupSpec` alive per worker
/// range, and the gauge is how tests and `bench_groups` verify that.
/// `#[non_exhaustive]` forces downstream construction through
/// [`GroupSpec::new`] so literal construction cannot bypass the gauge
/// (a `Drop` without the matching creation would drive it negative).
#[derive(Debug, PartialEq, Eq)]
#[non_exhaustive]
pub struct GroupSpec {
    /// Values of the leading doall coordinates (length = doall prefix).
    pub prefix: Vec<i64>,
    /// Theorem-2 partition offset (empty when no partitioning).
    pub offset: IVec,
}

impl GroupSpec {
    /// Build a group spec (instrumented constructor — all construction
    /// must pass through here so the live-group gauge stays exact).
    pub fn new(prefix: Vec<i64>, offset: IVec) -> GroupSpec {
        schedule::group_created();
        GroupSpec { prefix, offset }
    }
}

impl Clone for GroupSpec {
    fn clone(&self) -> Self {
        GroupSpec::new(self.prefix.clone(), self.offset.clone())
    }
}

impl Drop for GroupSpec {
    fn drop(&mut self) {
        schedule::group_dropped();
    }
}

/// The plan's Theorem-2 offset table — a single empty offset when the
/// plan is unpartitioned, so group arithmetic never special-cases.
pub(crate) fn offset_table(plan: &ParallelPlan) -> Vec<IVec> {
    match plan.partition() {
        Some(part) => part.offsets(),
        None => vec![IVec::zeros(0)],
    }
}

/// Exact number of independent groups (doall-prefix values × partition
/// offsets), computed arithmetically where bounds are prefix-independent
/// and by a cursor walk otherwise — never by materializing the groups
/// (or the offset table: `partition_count` is `det(H)`, computed in
/// O(depth)).
pub fn group_count(plan: &ParallelPlan) -> Result<u64> {
    schedule::group_count(
        plan.bounds(),
        plan.doall_count(),
        plan.partition_count() as usize,
    )
}

/// Enumerate the plan's independent groups **materialized as a `Vec`**.
///
/// Compatibility shim for tests, debugging, and group-table inspection
/// only: it holds every group live at once, exactly the `O(#groups)`
/// allocation spike the streaming schedulers exist to avoid. Production
/// paths use [`crate::schedule::GroupCursor`] ranges; see the
/// [`crate::schedule`] module docs for when materializing is still the
/// right tool.
pub fn groups(plan: &ParallelPlan) -> Result<Vec<GroupSpec>> {
    let offsets = offset_table(plan);
    let mut out = Vec::new();
    schedule::for_each_group_in_range(
        plan.bounds(),
        plan.doall_count(),
        offsets.len(),
        0,
        u64::MAX,
        |_, prefix, o| {
            out.push(GroupSpec::new(prefix.to_vec(), offsets[o].clone()));
            Ok(())
        },
    )?;
    Ok(out)
}

/// Walk every iteration of one group in transformed lexicographic order,
/// invoking `body(original_iteration_indices)`.
pub fn walk_group<F: FnMut(&[i64]) -> Result<()>>(
    nest: &LoopNest,
    plan: &ParallelPlan,
    group: &GroupSpec,
    mut body: F,
) -> Result<()> {
    let n = plan.depth();
    let z = plan.doall_count();
    let mut y = vec![0i64; n];
    y[..z].copy_from_slice(&group.prefix);
    let mut q = vec![0i64; n - z];
    let tinv = plan.inverse().mat();
    let mut orig = vec![0i64; n];
    let depth_done = nest.depth(); // == n
    debug_assert_eq!(depth_done, n);

    fn rec<F: FnMut(&[i64]) -> Result<()>>(
        plan: &ParallelPlan,
        group: &GroupSpec,
        y: &mut Vec<i64>,
        q: &mut Vec<i64>,
        level: usize,
        tinv: &pdm_matrix::mat::IMat,
        orig: &mut Vec<i64>,
        body: &mut F,
    ) -> Result<()> {
        let n = plan.depth();
        let z = plan.doall_count();
        let (lo, hi) = plan.bounds().range(level, &y[..level])?;
        // The residue of this level depends only on the offset and the
        // *outer* lattice coordinates, so it is computed once on level
        // entry; `q[kk]` then advances by 1 per `step` instead of being
        // re-derived from the residue at every point.
        let (start, step, q_start) = match plan.partition() {
            Some(p) => {
                let kk = level - z;
                let r = p.residue(&group.offset, &q[..kk], kk)?;
                let s = p.steps()[kk];
                let v = pdm_core::partition::Partitioning::first_at_least(lo, r, s)?;
                (v, s, p.q_of(v, r, kk)?)
            }
            None => (lo, 1, 0),
        };
        let mut v = start;
        let mut qk = q_start;
        while v <= hi {
            y[level] = v;
            if plan.partition().is_some() {
                q[level - z] = qk;
            }
            if level + 1 == n {
                // Back-substitute i = y · T⁻¹ without allocation.
                for i in 0..n {
                    let mut acc: i64 = 0;
                    for (k, &yk) in y.iter().enumerate() {
                        acc = acc.wrapping_add(yk.wrapping_mul(tinv.get(k, i)));
                    }
                    orig[i] = acc;
                }
                body(orig)?;
            } else {
                rec(plan, group, y, q, level + 1, tinv, orig, body)?;
            }
            v += step;
            qk += 1;
        }
        Ok(())
    }

    if z == n {
        // Fully parallel nest: the "group" is a single iteration.
        for i in 0..n {
            let mut acc: i64 = 0;
            for (k, &yk) in y.iter().enumerate() {
                acc = acc.wrapping_add(yk.wrapping_mul(tinv.get(k, i)));
            }
            orig[i] = acc;
        }
        return body(&orig);
    }
    rec(plan, group, &mut y, &mut q, z, tinv, &mut orig, &mut body)
}

/// Walk the contiguous group range `start..end` with one cursor, holding
/// at most one [`GroupSpec`] alive at a time. Returns the iterations
/// executed. (`pub(crate)`: the staged multi-kernel executor drives
/// per-kernel ranges through the same runner.)
pub(crate) fn run_group_range(
    nest: &LoopNest,
    plan: &ParallelPlan,
    offsets: &[IVec],
    mem: &Memory,
    start: u64,
    end: u64,
) -> Result<u64> {
    let mut count = 0u64;
    schedule::for_each_group_in_range(
        plan.bounds(),
        plan.doall_count(),
        offsets.len(),
        start,
        end,
        |_, prefix, o| {
            let g = GroupSpec::new(prefix.to_vec(), offsets[o].clone());
            walk_group(nest, plan, &g, |idx| {
                exec_body(nest, mem, idx)?;
                count += 1;
                Ok(())
            })
        },
    )?;
    Ok(count)
}

/// Run one pre-positioned range task: walk its groups with the carried
/// cursor, holding at most one [`GroupSpec`] alive at a time.
fn run_group_task(
    nest: &LoopNest,
    plan: &ParallelPlan,
    offsets: &[IVec],
    mem: &Memory,
    task: &schedule::RangeTask<'_, LoopBounds>,
) -> Result<u64> {
    let mut count = 0u64;
    task.for_each(|_, prefix, o| {
        let g = GroupSpec::new(prefix.to_vec(), offsets[o].clone());
        walk_group(nest, plan, &g, |idx| {
            exec_body(nest, mem, idx)?;
            count += 1;
            Ok(())
        })
    })?;
    Ok(count)
}

/// Execute the plan **in parallel**: the group index space is split into
/// contiguous ranges with steal-aware sizing
/// ([`crate::schedule::plan_range_tasks`] — finer chunks when per-group
/// cost is skewed so idle workers have something to steal), one
/// work-stealing rayon task per range; each task arrives with a
/// pre-positioned streaming [`crate::schedule::GroupCursor`] — no group
/// materialization. Returns the number of iterations executed.
pub fn run_parallel(nest: &LoopNest, plan: &ParallelPlan, mem: &Memory) -> Result<u64> {
    let offsets = offset_table(plan);
    let sched = crate::config::RuntimeConfig::global().schedule();
    let tasks = schedule::plan_range_tasks(
        plan.bounds(),
        plan.doall_count(),
        offsets.len(),
        &sched,
        rayon::current_num_threads(),
    )?;
    if tasks.is_empty() {
        return Ok(0);
    }
    let counts: std::result::Result<Vec<u64>, RuntimeError> = tasks
        .par_iter()
        .map(|task| run_group_task(nest, plan, &offsets, mem, task))
        .collect();
    Ok(counts?.into_iter().sum())
}

/// [`run_parallel`] on a dedicated rayon pool with `threads` workers —
/// for thread-scaling measurements.
pub fn run_parallel_with_threads(
    nest: &LoopNest,
    plan: &ParallelPlan,
    mem: &Memory,
    threads: usize,
) -> Result<u64> {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .map_err(|e| RuntimeError::Core(format!("rayon pool: {e}")))?;
    pool.install(|| run_parallel(nest, plan, mem))
}

/// Execute the transformed schedule sequentially (groups one after the
/// other). Useful as a determinism baseline and to time transformation
/// overhead without parallelism.
pub fn run_transformed_sequential(
    nest: &LoopNest,
    plan: &ParallelPlan,
    mem: &Memory,
) -> Result<u64> {
    // Walk to exhaustion in one pass — counting first would enumerate a
    // prefix-dependent space twice.
    let offsets = offset_table(plan);
    run_group_range(nest, plan, &offsets, mem, 0, u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_core::parallelize;
    use pdm_loopir::access::ArrayId;
    use pdm_loopir::parse::parse_loop;

    #[test]
    fn sequential_chain_sums() {
        let nest = parse_loop("for i = 1..=10 { A[i] = A[i - 1] + 1; }").unwrap();
        let mem = Memory::for_nest(&nest).unwrap();
        let n = run_sequential(&nest, &mem).unwrap();
        assert_eq!(n, 10);
        // A[0] = 0 initially; A[i] = i.
        for i in 0..=10 {
            assert_eq!(mem.read(ArrayId(0), &[i]).unwrap(), i);
        }
    }

    #[test]
    fn groups_counts() {
        let nest = parse_loop(
            "for i1 = 0..=9 { for i2 = 0..=9 {
               A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
             } }",
        )
        .unwrap();
        let plan = parallelize(&nest).unwrap();
        let gs = groups(&plan).unwrap();
        // doall y1 has some range R; 2 partitions -> |R| * 2 groups.
        let (lo, hi) = plan.bounds().range(0, &[]).unwrap();
        assert_eq!(gs.len() as i64, (hi - lo + 1) * 2);
        // The arithmetic count must agree with the materialized shim.
        assert_eq!(group_count(&plan).unwrap(), gs.len() as u64);
    }

    #[test]
    fn parallel_covers_every_iteration_exactly_once() {
        let nest = parse_loop(
            "for i1 = 0..=9 { for i2 = 0..=9 {
               A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
             } }",
        )
        .unwrap();
        let plan = parallelize(&nest).unwrap();
        // Collect all iterations via the group walker.
        let mut seen = Vec::new();
        for g in groups(&plan).unwrap() {
            walk_group(&nest, &plan, &g, |idx| {
                seen.push(idx.to_vec());
                Ok(())
            })
            .unwrap();
        }
        let expect: std::collections::HashSet<Vec<i64>> = nest
            .iterations()
            .unwrap()
            .into_iter()
            .map(|v| v.0)
            .collect();
        let got: std::collections::HashSet<Vec<i64>> = seen.iter().cloned().collect();
        assert_eq!(seen.len(), expect.len(), "duplicates in group walk");
        assert_eq!(got, expect);
    }

    #[test]
    fn parallel_equals_sequential_on_paper_41() {
        let nest = parse_loop(
            "for i1 = 0..=9 { for i2 = 0..=9 {
               A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
             } }",
        )
        .unwrap();
        let plan = parallelize(&nest).unwrap();
        let mut m1 = Memory::for_nest(&nest).unwrap();
        let mut m2 = Memory::for_nest(&nest).unwrap();
        m1.init_deterministic(42);
        m2.init_deterministic(42);
        let c1 = run_sequential(&nest, &m1).unwrap();
        let c2 = run_parallel(&nest, &plan, &m2).unwrap();
        assert_eq!(c1, c2);
        assert_eq!(m1.snapshot(), m2.snapshot());
    }

    #[test]
    fn fully_parallel_loop_runs() {
        let nest = parse_loop("for i = 0..=99 { A[i] = i * 2; }").unwrap();
        let plan = parallelize(&nest).unwrap();
        let mem = Memory::for_nest(&nest).unwrap();
        let c = run_parallel(&nest, &plan, &mem).unwrap();
        assert_eq!(c, 100);
        for i in 0..=99 {
            assert_eq!(mem.read(ArrayId(0), &[i]).unwrap(), 2 * i);
        }
    }

    #[test]
    fn transformed_sequential_matches() {
        let nest = parse_loop(
            "for i1 = 0..=9 { for i2 = 0..=9 {
               A[i1, 3*i2 + 2] = B[i1, i2] + 1;
               B[3*i1 + 2, i1 + i2 + 1] = A[i1, i2] + 2;
             } }",
        )
        .unwrap();
        let plan = parallelize(&nest).unwrap();
        let mut m1 = Memory::for_nest(&nest).unwrap();
        let mut m2 = Memory::for_nest(&nest).unwrap();
        m1.init_deterministic(5);
        m2.init_deterministic(5);
        run_sequential(&nest, &m1).unwrap();
        run_transformed_sequential(&nest, &plan, &m2).unwrap();
        assert_eq!(m1.snapshot(), m2.snapshot());
    }
}
