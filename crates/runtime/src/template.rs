//! Runtime-side template instantiation and the LRU plan cache.
//!
//! `pdm-core`'s [`PlanTemplate`] carries everything planning ever
//! derives from a nest *shape*; this module finishes the job for the
//! executors. [`instantiate_compiled`] (also reachable as the
//! [`InstantiateCompiled::instantiate_compiled`] method on the template)
//! lowers a valuation straight to a ready-to-run [`CompiledInstance`]:
//! concrete nest, concrete [`ParallelPlan`], a [`Memory`] sized for that
//! size's footprint, and the [`CompiledPlan`] engine program — with the
//! only per-size analysis work being affine bound evaluation.
//!
//! [`PlanCache`] closes the loop for a service answering heavy traffic
//! over many kernels: an LRU keyed by the nest's
//! [`structural hash`](LoopNest::structural_hash) (verified by `==` on
//! hit, so collisions cannot alias plans) that makes the *template* —
//! the expensive object — a pay-once artifact per kernel shape:
//!
//! ```
//! use pdm_loopir::parse::parse_loop_symbolic;
//! use pdm_runtime::template::{InstantiateCompiled, PlanCache};
//!
//! let shape = parse_loop_symbolic(
//!     "for i = 1..=N { A[i] = A[i - 1] + 1; }", &["N"]).unwrap();
//! let mut cache = PlanCache::new(16);
//! for n in [10i64, 1000, 10] {
//!     let template = cache.get_or_plan(&shape).unwrap(); // plans once
//!     let inst = template.instantiate_compiled(&[("N", n)]).unwrap();
//!     inst.compiled.run_parallel(&inst.memory).unwrap();
//! }
//! assert_eq!((cache.hits(), cache.misses()), (2, 1));
//! ```

use crate::compile::CompiledPlan;
use crate::memory::Memory;
use crate::Result;
use pdm_core::plan::ParallelPlan;
use pdm_core::template::{plan_template, PlanTemplate};
use pdm_loopir::nest::LoopNest;
use std::sync::Arc;

/// A template lowered at one parameter valuation: everything an executor
/// needs, ready to run.
pub struct CompiledInstance {
    /// The concrete nest at this valuation.
    pub nest: LoopNest,
    /// The concrete plan (identical to what fresh planning would build).
    pub plan: ParallelPlan,
    /// Arrays sized for this valuation's access footprint (zero-filled;
    /// call [`Memory::init_deterministic`] for seeded contents).
    pub memory: Memory,
    /// The compiled engine program for `(nest, plan, memory)`.
    pub compiled: CompiledPlan,
}

/// Lower `template` at `params` to a ready-to-run [`CompiledInstance`].
/// The plan assembly is pure bound-row evaluation (no FM, no analysis);
/// memory allocation and bytecode lowering are the same per-size work
/// any execution path pays.
pub fn instantiate_compiled(
    template: &PlanTemplate,
    params: &[(&str, i64)],
) -> Result<CompiledInstance> {
    let nest = template.instantiate_nest(params)?;
    let plan = template.instantiate(params)?;
    let memory = Memory::for_nest(&nest)?;
    let compiled = CompiledPlan::compile(&nest, &plan, &memory)?;
    Ok(CompiledInstance {
        nest,
        plan,
        memory,
        compiled,
    })
}

/// Method-call sugar for [`instantiate_compiled`] on the core
/// [`PlanTemplate`] (an extension trait because the type lives in
/// `pdm-core`, which cannot depend on the runtime).
pub trait InstantiateCompiled {
    /// See [`instantiate_compiled`].
    fn instantiate_compiled(&self, params: &[(&str, i64)]) -> Result<CompiledInstance>;
}

impl InstantiateCompiled for PlanTemplate {
    fn instantiate_compiled(&self, params: &[(&str, i64)]) -> Result<CompiledInstance> {
        instantiate_compiled(self, params)
    }
}

struct CacheEntry {
    hash: u64,
    nest: LoopNest,
    template: Arc<PlanTemplate>,
}

/// An LRU cache of [`PlanTemplate`]s keyed by nest structural hash.
///
/// Heavy traffic over one kernel at many sizes pays the planning cost
/// (dependence testing + Fourier–Motzkin) exactly once; every further
/// request is a hash lookup plus cheap instantiation. Keys are the
/// 64-bit [`LoopNest::structural_hash`], and hits are verified with full
/// nest equality, so a hash collision degrades to a miss instead of
/// aliasing two kernels. Recency order is maintained on both hits and
/// inserts; the least recently used template is evicted at capacity.
///
/// The cache is a plain `&mut self` structure — wrap it in a `Mutex`
/// (or shard it) for concurrent services; the cached `Arc` handles stay
/// valid after eviction.
pub struct PlanCache {
    cap: usize,
    /// Most recently used last; linear scans are fine at cache sizes
    /// where templates (with their matrices and bound rows) fit anyway.
    entries: Vec<CacheEntry>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl PlanCache {
    /// An empty cache holding at most `capacity` templates (≥ 1).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            cap: capacity.max(1),
            entries: Vec::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// The template for `nest`'s shape: cached if present, freshly
    /// planned (and inserted, evicting the LRU entry at capacity)
    /// otherwise.
    pub fn get_or_plan(&mut self, nest: &LoopNest) -> Result<Arc<PlanTemplate>> {
        if let Some(template) = self.probe(nest) {
            return Ok(template);
        }
        let template = Arc::new(plan_template(nest)?);
        self.insert(nest, template.clone());
        Ok(template)
    }

    /// Look up `nest`'s shape without planning: the cached template (a
    /// hit, refreshing its recency) or `None` (a miss). The split
    /// lookup exists for callers that must *not* plan while holding a
    /// lock — `ShardedPlanCache`'s single-flight layer probes under the
    /// shard lock, plans outside it, and [`insert`](PlanCache::insert)s
    /// the result.
    pub fn probe(&mut self, nest: &LoopNest) -> Option<Arc<PlanTemplate>> {
        let hash = nest.structural_hash();
        if let Some(i) = self
            .entries
            .iter()
            .position(|e| e.hash == hash && &e.nest == nest)
        {
            let entry = self.entries.remove(i);
            let template = entry.template.clone();
            self.entries.push(entry);
            self.hits += 1;
            Some(template)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Look up by structural hash alone — no nest to verify equality
    /// against, so a 64-bit collision *can* return the other shape's
    /// template (the first inserted with that hash wins). This is the
    /// wire-protocol path, where clients identify shapes they planned
    /// earlier by hash; same-process callers that hold the nest should
    /// prefer [`probe`](PlanCache::probe). Counts a hit or a miss like
    /// `probe`.
    pub fn probe_hash(&mut self, hash: u64) -> Option<Arc<PlanTemplate>> {
        if let Some(i) = self.entries.iter().position(|e| e.hash == hash) {
            let entry = self.entries.remove(i);
            let template = entry.template.clone();
            self.entries.push(entry);
            self.hits += 1;
            Some(template)
        } else {
            self.misses += 1;
            None
        }
    }

    /// Insert a freshly planned template for `nest`, evicting the least
    /// recently used entry at capacity. The counterpart of
    /// [`probe`](PlanCache::probe); duplicate inserts for the same shape
    /// are benign (the newer entry wins recency, the older one ages
    /// out).
    pub fn insert(&mut self, nest: &LoopNest, template: Arc<PlanTemplate>) {
        if self.entries.len() >= self.cap {
            self.entries.remove(0);
            self.evictions += 1;
        }
        self.entries.push(CacheEntry {
            hash: nest.structural_hash(),
            nest: nest.clone(),
            template,
        });
    }

    /// Maximum number of cached templates.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Currently cached templates.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that had to plan.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries displaced by LRU eviction at capacity.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_loopir::parse::{parse_loop_symbolic, parse_loop_with};

    const CHAIN: &str = "for i = 1..=N { A[i] = A[i - 1] + 1; }";

    #[test]
    fn compiled_instance_matches_fresh_pipeline() {
        let shape = parse_loop_symbolic(CHAIN, &["N"]).unwrap();
        let template = plan_template(&shape).unwrap();
        for n in [1i64, 17, 40] {
            let mut inst = template.instantiate_compiled(&[("N", n)]).unwrap();
            inst.memory.init_deterministic(3);
            let ran = inst.compiled.run_parallel(&inst.memory).unwrap();
            assert_eq!(ran, n as u64);

            let nest = parse_loop_with(CHAIN, &[("N", n)]).unwrap();
            let mut mem = Memory::for_nest(&nest).unwrap();
            mem.init_deterministic(3);
            crate::exec::run_sequential(&nest, &mem).unwrap();
            assert_eq!(inst.memory.snapshot(), mem.snapshot(), "N={n}");
        }
    }

    #[test]
    fn cache_hits_on_shape_and_evicts_lru() {
        let a = parse_loop_symbolic(CHAIN, &["N"]).unwrap();
        let b = parse_loop_symbolic("for i = 0..=N { A[i] = i; }", &["N"]).unwrap();
        let c = parse_loop_symbolic("for i = 0..=N { A[2*i] = A[i] + 1; }", &["N"]).unwrap();
        let mut cache = PlanCache::new(2);
        let ta1 = cache.get_or_plan(&a).unwrap();
        let ta2 = cache.get_or_plan(&a).unwrap();
        assert!(Arc::ptr_eq(&ta1, &ta2), "same shape must hit");
        cache.get_or_plan(&b).unwrap();
        // Touch `a` so `b` is the LRU, then insert `c`: `b` is evicted.
        cache.get_or_plan(&a).unwrap();
        let tc = cache.get_or_plan(&c).unwrap();
        assert_eq!(cache.len(), 2);
        let before = cache.misses();
        cache.get_or_plan(&b).unwrap(); // miss; evicts `a` (now the LRU)
        assert_eq!(cache.misses(), before + 1, "evicted shape must replan");
        let tc2 = cache.get_or_plan(&c).unwrap();
        assert!(Arc::ptr_eq(&tc, &tc2), "surviving entry still hits");
        let ta3 = cache.get_or_plan(&a).unwrap();
        assert!(
            !Arc::ptr_eq(&ta1, &ta3),
            "evicted entry must be a fresh template"
        );
        // c evicted b, b evicted a, a evicted c: one per over-capacity insert.
        assert_eq!(cache.evictions(), 3);
    }

    #[test]
    fn probe_and_insert_compose_to_get_or_plan() {
        let a = parse_loop_symbolic(CHAIN, &["N"]).unwrap();
        let mut cache = PlanCache::new(2);
        assert!(cache.probe(&a).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));
        let t = Arc::new(plan_template(&a).unwrap());
        cache.insert(&a, t.clone());
        let hit = cache.probe(&a).expect("inserted shape must probe as a hit");
        assert!(Arc::ptr_eq(&t, &hit));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.evictions(), 0);
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let a = parse_loop_symbolic(CHAIN, &["N"]).unwrap();
        let mut cache = PlanCache::new(4);
        assert!(cache.is_empty());
        cache.get_or_plan(&a).unwrap();
        cache.get_or_plan(&a).unwrap();
        cache.get_or_plan(&a).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (2, 1));
        assert_eq!(cache.capacity(), 4);
        assert_eq!(cache.len(), 1);
    }
}
