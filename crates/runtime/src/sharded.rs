//! Concurrent plan caching: a sharded [`PlanCache`] with single-flight
//! deduplication.
//!
//! [`PlanCache`] is a `&mut self` structure — correct for one thread,
//! but a serving layer answers many concurrent requests, and wrapping
//! the whole cache in one mutex would serialize every lookup *and*
//! every planning run behind it. [`ShardedPlanCache`] fixes both
//! problems:
//!
//! * **Sharding.** The cache splits into N independent shards selected
//!   by the nest's [`structural hash`](LoopNest::structural_hash); each
//!   shard is its own [`PlanCache`] behind its own lock, so lookups for
//!   different shapes contend only within their shard. Per-shard
//!   hit/miss/eviction counters aggregate into [`CacheStats`].
//!
//! * **Single-flight planning.** On a miss, planning (dependence
//!   analysis + Fourier–Motzkin — the milliseconds-scale work the cache
//!   exists to amortize) runs *outside* every lock, and concurrent
//!   requests for the same shape are deduplicated: the first requester
//!   becomes the **leader** and plans; followers wait on the leader's
//!   `Flight` and receive the same `Arc` (or the same error) without
//!   planning again. A thundering herd of M identical requests costs
//!   one planning run, not M.
//!
//! The waiting protocol has no lost wakeups: a flight's result slot and
//! its condvar share one mutex, so a follower either observes the
//! filled slot or is parked before the leader's `notify_all`. In-flight
//! entries are keyed by hash but carry the full nest, and followers
//! join a flight only on nest *equality* — a 64-bit hash collision
//! degrades to two independent planning runs instead of aliasing two
//! kernels (the same guarantee [`PlanCache`] makes for cached entries).
//!
//! **Fault hardening.** The flight slot is a tri-state
//! (`Pending`/`Ready`/`Failed`), and the leader's planning run executes
//! under a completion guard: if the leader unwinds (a panic inside
//! planning — injectable via `pdm-service`'s fault harness, or a real
//! bug), the guard's `Drop` still clears the in-flight entry and fills
//! the slot with [`RuntimeError::PlanningFailed`], so every follower
//! wakes with a typed, retryable error instead of parking forever on a
//! condvar nobody will signal. Flight locks use the same
//! poison-recovery policy as the shard cache lock (`lock_cache`):
//! both structures are consistent between critical sections, so a
//! panicked thread elsewhere must not cascade into every later request.
//!
//! Lock ordering: the flight table's lock may be held while taking the
//! shard's cache lock (miss re-check), never the reverse — leaders
//! insert into the cache and then clear their flight in two separate
//! critical sections.
//!
//! The module also hosts [`VerdictCache`], the sharded store of
//! inspector verdicts keyed by `(structural_hash, valuation)` — the
//! per-size companion of the per-shape template cache, so a service
//! audits each `(shape, size)` pair once (see [`crate::inspector`]).

use crate::inspector::Verdict;
use crate::template::PlanCache;
use crate::{Result, RuntimeError};
use pdm_core::template::{plan_template, PlanTemplate};
use pdm_loopir::nest::LoopNest;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Lock with poison recovery: both flight structures keep their state
/// consistent between critical sections, so a panic that poisons the
/// mutex must not wedge later requests (same policy as [`lock_cache`]).
fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The tri-state slot of a [`Flight`].
enum FlightState {
    /// The leader is still planning.
    Pending,
    /// The leader finished (`Ok` or a typed planning error) — this
    /// exact result is shared with every follower.
    Ready(Result<Arc<PlanTemplate>>),
    /// The leader died without publishing (panic mid-plan). Followers
    /// receive [`RuntimeError::PlanningFailed`]; the shape is
    /// retryable.
    Failed,
}

/// One in-flight planning run: the leader resolves `slot` out of
/// `Pending` and notifies; followers wait until it is resolved.
struct Flight {
    /// The shape being planned — followers join only on equality.
    nest: LoopNest,
    slot: Mutex<FlightState>,
    ready: Condvar,
}

impl Flight {
    fn new(nest: LoopNest) -> Flight {
        Flight {
            nest,
            slot: Mutex::new(FlightState::Pending),
            ready: Condvar::new(),
        }
    }

    /// Leader side: publish the outcome and wake every follower.
    fn fill(&self, state: FlightState) {
        let mut slot = lock_recovering(&self.slot);
        *slot = state;
        self.ready.notify_all();
    }

    /// Follower side: block until the leader publishes (or dies — the
    /// leader's completion guard turns that into `Failed`).
    fn wait(&self) -> Result<Arc<PlanTemplate>> {
        let mut slot = lock_recovering(&self.slot);
        loop {
            match &*slot {
                FlightState::Pending => {}
                FlightState::Ready(result) => return result.clone(),
                FlightState::Failed => {
                    return Err(RuntimeError::PlanningFailed(
                        "the planning run for this shape panicked".into(),
                    ))
                }
            }
            slot = match self.ready.wait(slot) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }
}

struct Shard {
    cache: Mutex<PlanCache>,
    /// Hash → flights currently planning a shape with that hash. A
    /// `Vec` per hash because distinct shapes may collide; each flight
    /// carries its nest and is matched by equality.
    inflight: Mutex<HashMap<u64, Vec<Arc<Flight>>>>,
    hits: AtomicU64,
    planned: AtomicU64,
    waited: AtomicU64,
}

impl Shard {
    fn new(capacity: usize) -> Shard {
        Shard {
            cache: Mutex::new(PlanCache::new(capacity)),
            inflight: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            planned: AtomicU64::new(0),
            waited: AtomicU64::new(0),
        }
    }
}

/// Counter snapshot of a [`ShardedPlanCache`] (one shard via
/// [`ShardedPlanCache::shard_stats`], or the whole cache via
/// [`ShardedPlanCache::stats`]).
///
/// Every [`get_or_plan`](ShardedPlanCache::get_or_plan) call lands in
/// exactly one of `hits`, `planned`, or `waited`, so
/// `hits + planned + waited` equals the total request count
/// ([`CacheStats::requests`]) and `planned` is the number of actual
/// planning runs — with single-flight dedup, at most one per distinct
/// shape concurrently, and exactly one per shape when nothing evicts.
///
/// The bucket invariant holds on **every** exit path, including the
/// `planning_failed` ones: a leader whose planning closure returns an
/// error counts `planned` in the flight guard's `complete`, a leader
/// that *panics* counts `planned` in the guard's `Drop` (the same
/// `Drop` that fails the flight), and every follower of either counted
/// `waited` before parking. A storm of panicking leaders therefore
/// cannot leak or double-count a request — pinned by the
/// `panicking_leader_storm_keeps_stats_invariant` regression test.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that planned (led a flight).
    pub planned: u64,
    /// Requests that waited on another request's flight.
    pub waited: u64,
    /// Cache entries displaced by LRU eviction.
    pub evictions: u64,
    /// Templates currently cached.
    pub entries: u64,
}

impl CacheStats {
    /// Total requests: `hits + planned + waited`.
    pub fn requests(&self) -> u64 {
        self.hits + self.planned + self.waited
    }

    /// Requests that missed the cache: `planned + waited`.
    pub fn misses(&self) -> u64 {
        self.planned + self.waited
    }

    /// Element-wise sum (aggregating shards).
    fn add(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.planned += other.planned;
        self.waited += other.waited;
        self.evictions += other.evictions;
        self.entries += other.entries;
    }
}

/// A sharded, internally synchronized [`PlanCache`] with single-flight
/// planning — the concurrent template store behind `pdm-service`'s
/// sessions.
///
/// Unlike [`PlanCache`], every method takes `&self`: the cache is
/// `Sync` and meant to be shared (`Arc`) across worker threads.
///
/// ```
/// use pdm_loopir::parse::parse_loop_symbolic;
/// use pdm_runtime::sharded::ShardedPlanCache;
/// use std::sync::Arc;
///
/// let cache = Arc::new(ShardedPlanCache::new(8, 64));
/// let shape = parse_loop_symbolic(
///     "for i = 1..=N { A[i] = A[i - 1] + 1; }", &["N"]).unwrap();
/// let a = cache.get_or_plan(&shape).unwrap(); // plans
/// let b = cache.get_or_plan(&shape).unwrap(); // hits
/// assert!(Arc::ptr_eq(&a, &b));
/// let s = cache.stats();
/// assert_eq!((s.hits, s.planned, s.waited), (1, 1, 0));
/// ```
pub struct ShardedPlanCache {
    shards: Vec<Shard>,
}

impl ShardedPlanCache {
    /// A cache of `shards` independent shards (≥ 1), each holding at
    /// most `capacity_per_shard` templates (≥ 1).
    pub fn new(shards: usize, capacity_per_shard: usize) -> ShardedPlanCache {
        ShardedPlanCache {
            shards: (0..shards.max(1))
                .map(|_| Shard::new(capacity_per_shard))
                .collect(),
        }
    }

    fn shard_for(&self, hash: u64) -> &Shard {
        // The structural hash is FNV-mixed; plain modulo spreads it.
        &self.shards[(hash % self.shards.len() as u64) as usize]
    }

    /// The template for `nest`'s shape: cached, joined from an
    /// in-flight planning run for the same shape, or freshly planned —
    /// whichever is available, with planning always outside every lock
    /// and deduplicated across concurrent callers.
    ///
    /// Errors are delivered to the leader *and* every follower of the
    /// failed flight, but are not cached: a later request for the same
    /// shape plans again. A leader that *panics* mid-plan cannot strand
    /// its followers either — they receive
    /// [`RuntimeError::PlanningFailed`] and the in-flight entry is
    /// cleared so the next request re-plans (see
    /// [`get_or_plan_with`](ShardedPlanCache::get_or_plan_with)).
    pub fn get_or_plan(&self, nest: &LoopNest) -> Result<Arc<PlanTemplate>> {
        self.get_or_plan_with(nest, || {
            plan_template(nest)
                .map(Arc::new)
                .map_err(RuntimeError::from)
        })
    }

    /// [`get_or_plan`](ShardedPlanCache::get_or_plan) with the planning
    /// step supplied by the caller — the hook `pdm-service` uses to
    /// wrap planning with fault probes and deadline checks. `plan` runs
    /// at most once, outside every lock, only when this call leads a
    /// flight; its result must be the template for `nest` (inserting
    /// anything else would alias shapes).
    ///
    /// The leader runs under a completion guard: if `plan` unwinds, the
    /// guard clears the in-flight entry and fails the flight, so
    /// followers get a typed error instead of a deadlock, and the panic
    /// resumes on the leader's thread.
    pub fn get_or_plan_with<F>(&self, nest: &LoopNest, plan: F) -> Result<Arc<PlanTemplate>>
    where
        F: FnOnce() -> Result<Arc<PlanTemplate>>,
    {
        let hash = nest.structural_hash();
        let shard = self.shard_for(hash);

        // Fast path: shared-shape traffic takes one short lock.
        if let Some(t) = lock_cache(shard).probe(nest) {
            shard.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(t);
        }

        // Slow path: join or create a flight. Re-probe the cache under
        // the flight-table lock — a leader may have inserted and
        // cleared its flight between our probe and this lock, and
        // missing that window would replan a cached shape.
        let flight = {
            let mut inflight = lock_recovering(&shard.inflight);
            if let Some(t) = lock_cache(shard).probe(nest) {
                shard.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(t);
            }
            let flights = inflight.entry(hash).or_default();
            if let Some(f) = flights.iter().find(|f| &f.nest == nest) {
                // Follower: drop the table lock, then wait.
                let f = f.clone();
                drop(inflight);
                shard.waited.fetch_add(1, Ordering::Relaxed);
                return f.wait();
            }
            let f = Arc::new(Flight::new(nest.clone()));
            flights.push(f.clone());
            f
        };

        // Leader: plan with no locks held, under the completion guard —
        // if `plan` unwinds, the guard's Drop fails the flight and
        // clears the entry so followers wake and retries can lead.
        let guard = FlightGuard {
            shard,
            hash,
            flight: &flight,
            completed: false,
        };
        let result = plan();
        guard.complete(nest, result.clone());
        result
    }

    /// Look up a cached template by structural hash alone — the wire
    /// protocol's "I planned this shape earlier" path. Returns `None`
    /// when no template with that hash is cached (it may have been
    /// evicted, or never planned here); callers translate that into a
    /// resubmit-the-source error. Counts a hit when found; an unknown
    /// hash is not counted as a request (see [`CacheStats`]).
    pub fn get_by_hash(&self, hash: u64) -> Option<Arc<PlanTemplate>> {
        let shard = self.shard_for(hash);
        let found = lock_cache(shard).probe_hash(hash);
        if found.is_some() {
            shard.hits.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Templates currently cached across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock_cache(s).len()).sum()
    }

    /// Is every shard empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregated counters across all shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for s in self.shard_stats() {
            total.add(&s);
        }
        total
    }

    /// Per-shard counter snapshots, in shard order (the service's
    /// metrics endpoint reports these individually).
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.shards
            .iter()
            .map(|s| {
                let cache = lock_cache(s);
                CacheStats {
                    hits: s.hits.load(Ordering::Relaxed),
                    planned: s.planned.load(Ordering::Relaxed),
                    waited: s.waited.load(Ordering::Relaxed),
                    evictions: cache.evictions(),
                    entries: cache.len() as u64,
                }
            })
            .collect()
    }
}

/// The leader's completion guard: planning runs between its creation
/// and [`FlightGuard::complete`]. If the planning closure unwinds, the
/// `Drop` impl runs *during* that unwind and performs the same protocol
/// as completion — clear the in-flight entry, count the run, wake the
/// followers — but with [`FlightState::Failed`] so followers receive a
/// typed, retryable error rather than waiting on a condvar the dead
/// leader will never signal.
struct FlightGuard<'a> {
    shard: &'a Shard,
    hash: u64,
    flight: &'a Arc<Flight>,
    completed: bool,
}

impl FlightGuard<'_> {
    /// Normal completion: publish `result` (caching it when `Ok`).
    fn complete(mut self, nest: &LoopNest, result: Result<Arc<PlanTemplate>>) {
        if let Ok(template) = &result {
            lock_cache(self.shard).insert(nest, template.clone());
        }
        // Clear the flight *after* the insert: a request that finds
        // neither a cached entry nor a flight must be safe to lead.
        clear_flight(self.shard, self.hash, self.flight);
        self.shard.planned.fetch_add(1, Ordering::Relaxed);
        self.flight.fill(FlightState::Ready(result));
        self.completed = true;
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if self.completed {
            return;
        }
        // Leader panicked mid-plan. The attempt still counts as a
        // planning run (CacheStats bucket accounting), the entry is
        // cleared so a retry can lead, and followers wake with Failed.
        clear_flight(self.shard, self.hash, self.flight);
        self.shard.planned.fetch_add(1, Ordering::Relaxed);
        self.flight.fill(FlightState::Failed);
    }
}

fn clear_flight(shard: &Shard, hash: u64, flight: &Arc<Flight>) {
    let mut inflight = lock_recovering(&shard.inflight);
    if let Some(flights) = inflight.get_mut(&hash) {
        flights.retain(|f| !Arc::ptr_eq(f, flight));
        if flights.is_empty() {
            inflight.remove(&hash);
        }
    }
}

/// Shard-cache lock with poison recovery: the cache's own state is
/// always consistent between method calls, so a panic elsewhere must
/// not wedge the whole service.
fn lock_cache(shard: &Shard) -> std::sync::MutexGuard<'_, PlanCache> {
    match shard.cache.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Default per-shard point-entry capacity. Override globally with
/// `PDM_VERDICT_CAPACITY` ([`crate::config::RuntimeConfig`]) or per
/// cache with [`VerdictCache::with_capacity`].
pub const DEFAULT_VERDICT_CAPACITY: usize = 256;

/// Interval entries retained per shape; beyond this the oldest
/// interval is dropped (counted as an eviction). Certified intervals
/// are few per shape in practice — this is a churn backstop.
const MAX_INTERVALS_PER_SHAPE: usize = 32;

/// Which tier answered a [`VerdictCache::get_with_source`] probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerdictSource {
    /// A certified valuation interval contained the probe — no audit
    /// for this valuation ever ran.
    Interval,
    /// An exact `(shape, valuation)` point entry.
    Point,
}

/// Counter and occupancy snapshot of a [`VerdictCache`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct VerdictCacheStats {
    /// Point-entry hits.
    pub hits: u64,
    /// Probes answered by a certified interval.
    pub interval_hits: u64,
    /// Probes answered by neither tier.
    pub misses: u64,
    /// Point entries evicted by the LRU bound plus interval entries
    /// dropped by the per-shape cap.
    pub evictions: u64,
    /// Point entries currently cached.
    pub entries: u64,
    /// Interval entries currently cached.
    pub intervals: u64,
}

/// One certified valuation box: every valuation `v` with
/// `lo[j] <= v[j] <= hi[j]` for all `j` provably audits to `verdict`.
struct IntervalEntry {
    lo: Vec<i64>,
    hi: Vec<i64>,
    verdict: Verdict,
}

impl IntervalEntry {
    fn contains(&self, valuation: &[i64]) -> bool {
        self.lo.len() == valuation.len()
            && valuation
                .iter()
                .zip(self.lo.iter().zip(&self.hi))
                .all(|(&v, (&lo, &hi))| lo <= v && v <= hi)
    }
}

/// Point-entry shard: shape hash → valuation → (verdict, last-used
/// tick). Two map levels so the hit path probes the inner map with a
/// borrowed `&[i64]` (`Vec<i64>: Borrow<[i64]>`) — no allocation per
/// `get`. `len` tracks total entries across the outer map; `tick` is
/// the shard-local LRU clock.
#[derive(Default)]
struct PointShard {
    map: HashMap<u64, HashMap<Vec<i64>, (Verdict, u64)>>,
    len: usize,
    tick: u64,
}

/// RwLock with poison recovery, mirroring [`lock_recovering`]: the
/// interval tier is read-mostly and its state is consistent between
/// method calls.
fn read_recovering<T>(l: &std::sync::RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    match l.read() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn write_recovering<T>(l: &std::sync::RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    match l.write() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Sharded store of inspector verdicts: the template cache amortizes
/// *planning* per shape, this cache amortizes *auditing*. Two tiers:
///
/// * **Intervals** — certified valuation boxes
///   (`PlanTemplate::stability_box` in `pdm-core`), sharded by shape
///   hash under read-mostly `RwLock`s and probed *first*: any
///   in-interval valuation is answered without ever having been
///   audited.
/// * **Points** — exact `(shape, valuation)` entries, LRU-bounded per
///   shard. The shard index mixes the **valuation** into the hash, so
///   valuation churn on one hot shape spreads across shards instead
///   of serializing on a single mutex.
///
/// Audits are cheap relative to planning (one logging pass over the
/// iteration space, no Fourier–Motzkin), so there is no single-flight
/// layer here: concurrent first requests for one valuation may audit
/// twice and insert the same (deterministic) verdict — harmless, and
/// much simpler than the flight protocol above.
pub struct VerdictCache {
    points: Vec<Mutex<PointShard>>,
    intervals: Vec<std::sync::RwLock<HashMap<u64, Vec<IntervalEntry>>>>,
    capacity: usize,
    hits: AtomicU64,
    interval_hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl VerdictCache {
    /// A cache of `shards` independent shards (≥ 1) with the default
    /// per-shard point capacity.
    pub fn new(shards: usize) -> VerdictCache {
        VerdictCache::with_capacity(shards, DEFAULT_VERDICT_CAPACITY)
    }

    /// A cache of `shards` shards, each holding at most
    /// `capacity_per_shard` point entries (≥ 1; least-recently-used
    /// entries are evicted beyond that).
    pub fn with_capacity(shards: usize, capacity_per_shard: usize) -> VerdictCache {
        let shards = shards.max(1);
        VerdictCache {
            points: (0..shards)
                .map(|_| Mutex::new(PointShard::default()))
                .collect(),
            intervals: (0..shards)
                .map(|_| std::sync::RwLock::new(HashMap::new()))
                .collect(),
            capacity: capacity_per_shard.max(1),
            hits: AtomicU64::new(0),
            interval_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Point-entry capacity per shard.
    pub fn capacity_per_shard(&self) -> usize {
        self.capacity
    }

    fn point_shard_for(&self, hash: u64, valuation: &[i64]) -> &Mutex<PointShard> {
        // FNV-1a over the shape hash and the valuation, so distinct
        // sizes of one hot shape land on distinct shard mutexes.
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ hash;
        h = h.wrapping_mul(0x0100_0000_01b3);
        for &v in valuation {
            h ^= v as u64;
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
        &self.points[(h % self.points.len() as u64) as usize]
    }

    fn interval_shard_for(
        &self,
        hash: u64,
    ) -> &std::sync::RwLock<HashMap<u64, Vec<IntervalEntry>>> {
        &self.intervals[(hash % self.intervals.len() as u64) as usize]
    }

    /// The cached verdict for a `(shape, valuation)` pair, counting a
    /// point hit, an interval hit, or a miss.
    pub fn get(&self, hash: u64, valuation: &[i64]) -> Option<Verdict> {
        self.get_with_source(hash, valuation).map(|(v, _)| v)
    }

    /// [`VerdictCache::get`] plus which tier answered. Intervals are
    /// probed first: a certified box answers every valuation inside it,
    /// audited or not.
    pub fn get_with_source(
        &self,
        hash: u64,
        valuation: &[i64],
    ) -> Option<(Verdict, VerdictSource)> {
        {
            let shard = read_recovering(self.interval_shard_for(hash));
            if let Some(entries) = shard.get(&hash) {
                if let Some(e) = entries.iter().find(|e| e.contains(valuation)) {
                    self.interval_hits.fetch_add(1, Ordering::Relaxed);
                    return Some((e.verdict.clone(), VerdictSource::Interval));
                }
            }
        }
        let mut shard = lock_recovering(self.point_shard_for(hash, valuation));
        let tick = shard.tick;
        shard.tick += 1;
        // Borrowed-key probe: no allocation on the hit path.
        if let Some(entry) = shard.map.get_mut(&hash).and_then(|m| m.get_mut(valuation)) {
            entry.1 = tick;
            let v = entry.0.clone();
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some((v, VerdictSource::Point));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Record the verdict for a `(shape, valuation)` point. At
    /// capacity the shard's least-recently-used entry is evicted
    /// first (and counted).
    pub fn insert(&self, hash: u64, valuation: Vec<i64>, verdict: Verdict) {
        let mut shard = lock_recovering(self.point_shard_for(hash, &valuation));
        let tick = shard.tick;
        shard.tick += 1;
        let is_new = shard
            .map
            .get(&hash)
            .is_none_or(|m| !m.contains_key(valuation.as_slice()));
        if is_new && shard.len >= self.capacity {
            // Exact LRU: an O(entries) scan, paid only at capacity —
            // shards are small (capacity ≤ a few hundred entries).
            let victim = shard
                .map
                .iter()
                .flat_map(|(&h, m)| m.iter().map(move |(v, &(_, t))| (t, h, v.clone())))
                .min_by_key(|e| e.0);
            if let Some((_, h, v)) = victim {
                let emptied = {
                    let m = shard.map.get_mut(&h).expect("victim shape present");
                    m.remove(&v);
                    m.is_empty()
                };
                if emptied {
                    shard.map.remove(&h);
                }
                shard.len -= 1;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        if shard
            .map
            .entry(hash)
            .or_default()
            .insert(valuation, (verdict, tick))
            .is_none()
        {
            shard.len += 1;
        }
    }

    /// Record a certified valuation interval for a shape: every
    /// valuation inside `bounds` (closed per-parameter ranges, indexed
    /// like the valuation) is answered with `verdict` without an
    /// audit. Duplicate boxes (e.g. from two concurrent first
    /// requests) are deduplicated; beyond
    /// [`MAX_INTERVALS_PER_SHAPE`] the oldest interval is dropped and
    /// counted as an eviction.
    pub fn insert_interval(&self, hash: u64, bounds: &[(i64, i64)], verdict: Verdict) {
        let (lo, hi): (Vec<i64>, Vec<i64>) = bounds.iter().copied().unzip();
        let mut shard = write_recovering(self.interval_shard_for(hash));
        let entries = shard.entry(hash).or_default();
        if entries.iter().any(|e| e.lo == lo && e.hi == hi) {
            return;
        }
        entries.push(IntervalEntry { lo, hi, verdict });
        if entries.len() > MAX_INTERVALS_PER_SHAPE {
            entries.remove(0);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The verdict for a pair — cached, or computed by `audit` and
    /// cached as a point entry (errors are returned uncached, so a
    /// transient failure does not pin a wrong verdict). The `audit`
    /// closure runs outside every cache lock.
    pub fn get_or_audit<F>(&self, hash: u64, valuation: &[i64], audit: F) -> Result<Verdict>
    where
        F: FnOnce() -> Result<Verdict>,
    {
        if let Some(v) = self.get(hash, valuation) {
            return Ok(v);
        }
        let v = audit()?;
        self.insert(hash, valuation.to_vec(), v.clone());
        Ok(v)
    }

    /// Point verdicts currently cached (intervals are counted
    /// separately — see [`VerdictCache::stats`]).
    pub fn len(&self) -> usize {
        self.points.iter().map(|s| lock_recovering(s).len).sum()
    }

    /// Is the cache empty of point entries?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(point hits, misses)` counter snapshot — the legacy shape;
    /// interval hits are separate in [`VerdictCache::stats`].
    pub fn hit_stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Full counter and occupancy snapshot.
    pub fn stats(&self) -> VerdictCacheStats {
        VerdictCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            interval_hits: self.interval_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.len() as u64,
            intervals: self
                .intervals
                .iter()
                .map(|s| read_recovering(s).values().map(Vec::len).sum::<usize>())
                .sum::<usize>() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_loopir::parse::parse_loop_symbolic;
    use std::sync::Barrier;

    /// M distinct plannable shapes: constant dependence distance `c`
    /// varies, so each renders to a different structural hash.
    fn shapes(m: usize) -> Vec<LoopNest> {
        (0..m)
            .map(|c| {
                parse_loop_symbolic(
                    &format!("for i = 1..=N {{ A[i + {c}] = A[i] + 1; }}"),
                    &["N"],
                )
                .expect("shape parses")
            })
            .collect()
    }

    #[test]
    fn one_plan_per_shape_across_threads() {
        let m = 6;
        let threads = 8;
        let reps = 3;
        let cache = ShardedPlanCache::new(4, 16);
        let shapes = shapes(m);
        let barrier = Barrier::new(threads);
        std::thread::scope(|sc| {
            for t in 0..threads {
                let (cache, shapes, barrier) = (&cache, &shapes, &barrier);
                sc.spawn(move || {
                    barrier.wait();
                    for r in 0..reps {
                        // Rotate start offset so threads collide on
                        // different shapes at different times.
                        for k in 0..m {
                            let nest = &shapes[(t + r + k) % m];
                            let template = cache.get_or_plan(nest).unwrap();
                            assert_eq!(template.nest(), nest);
                        }
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(
            s.planned, m as u64,
            "single-flight must plan each shape exactly once: {s:?}"
        );
        assert_eq!(
            s.requests(),
            (threads * reps * m) as u64,
            "hits + planned + waited must cover every request: {s:?}"
        );
        assert_eq!(s.entries, m as u64);
        assert_eq!(s.evictions, 0);
        assert_eq!(cache.len(), m);
    }

    #[test]
    fn followers_share_the_leaders_arc() {
        let threads = 8;
        let cache = ShardedPlanCache::new(2, 8);
        let shape = &shapes(1)[0];
        let barrier = Barrier::new(threads);
        let got: Vec<Arc<PlanTemplate>> = std::thread::scope(|sc| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let (cache, barrier) = (&cache, &barrier);
                    sc.spawn(move || {
                        barrier.wait();
                        cache.get_or_plan(shape).unwrap()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for t in &got[1..] {
            assert!(
                Arc::ptr_eq(&got[0], t),
                "every requester must receive the same template"
            );
        }
        let s = cache.stats();
        assert_eq!(s.planned, 1, "{s:?}");
        assert_eq!(s.requests(), threads as u64, "{s:?}");
        // Whoever arrived during the flight waited; the rest hit.
        assert_eq!(s.hits + s.waited, threads as u64 - 1, "{s:?}");
    }

    #[test]
    fn evictions_are_counted_and_replans_happen() {
        // One shard of capacity 1: alternating shapes always evict.
        let cache = ShardedPlanCache::new(1, 1);
        let shapes = shapes(2);
        for _ in 0..3 {
            cache.get_or_plan(&shapes[0]).unwrap();
            cache.get_or_plan(&shapes[1]).unwrap();
        }
        let s = cache.stats();
        assert_eq!(s.planned, 6, "capacity-1 thrash replans every time");
        assert_eq!(s.evictions, 5, "every insert after the first evicts");
        assert_eq!(s.entries, 1);
        assert_eq!(s.hits, 0);
    }

    #[test]
    fn leader_panic_frees_followers_and_allows_retry() {
        let followers = 6;
        let cache = ShardedPlanCache::new(2, 8);
        let shape = &shapes(1)[0];
        let in_plan = Barrier::new(followers + 1);

        std::thread::scope(|sc| {
            // Leader: enters planning, waits until every follower has
            // had time to join the flight, then panics mid-plan.
            let leader = sc.spawn(|| {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    cache.get_or_plan_with(shape, || {
                        in_plan.wait();
                        // Give followers a moment to actually park on
                        // the flight condvar before dying.
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        panic!("injected leader fault");
                    })
                }));
                assert!(result.is_err(), "the leader must observe its own panic");
            });
            let handles: Vec<_> = (0..followers)
                .map(|_| {
                    sc.spawn(|| {
                        in_plan.wait(); // leader is inside `plan` now
                        cache.get_or_plan(shape)
                    })
                })
                .collect();
            leader.join().unwrap();
            let mut failed = 0;
            let mut planned_ok = 0;
            for h in handles {
                match h.join().unwrap() {
                    // Followers parked on the flight get the typed error...
                    Err(RuntimeError::PlanningFailed(_)) => failed += 1,
                    // ...unless they arrived after the guard cleared the
                    // entry, in which case they led a fresh (successful)
                    // planning run or hit its cached result.
                    Ok(t) => {
                        assert_eq!(t.nest(), shape);
                        planned_ok += 1;
                    }
                    Err(e) => panic!("unexpected follower error: {e}"),
                }
            }
            assert_eq!(failed + planned_ok, followers);
        });

        // No deadlock above; the shape is retryable and the flight
        // table is clean (a fresh request leads or hits, not waits).
        let t = cache.get_or_plan(shape).unwrap();
        assert_eq!(t.nest(), shape);
        let s = cache.stats();
        assert_eq!(
            s.requests(),
            s.hits + s.planned + s.waited,
            "CacheStats bucket invariant: {s:?}"
        );
        assert!(
            s.planned >= 2,
            "the panicked run and the successful retry both count: {s:?}"
        );
        assert_eq!(s.entries, 1);
    }

    #[test]
    fn panicking_leader_storm_keeps_stats_invariant() {
        // Satellite regression for the CacheStats bucket accounting on
        // the planning_failed path: several rounds of concurrent
        // requests where EVERY planning run panics. Each call — leader
        // (counted by the guard's Drop), follower (counted before
        // parking), or late re-leader — must land in exactly one
        // bucket, and the cache must come out clean and retryable.
        let rounds = 4;
        let threads = 6;
        let cache = ShardedPlanCache::new(2, 8);
        let shape = &shapes(1)[0];
        for _ in 0..rounds {
            let barrier = Barrier::new(threads);
            std::thread::scope(|sc| {
                for _ in 0..threads {
                    let (cache, barrier) = (&cache, &barrier);
                    sc.spawn(move || {
                        barrier.wait();
                        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            cache.get_or_plan_with(shape, || panic!("storm fault"))
                        }));
                        // Either this call led (and panicked) or it
                        // followed a doomed flight (typed error).
                        if let Ok(outcome) = result {
                            assert!(
                                matches!(outcome, Err(RuntimeError::PlanningFailed(_))),
                                "follower must see the typed error"
                            );
                        }
                    });
                }
            });
        }
        let s = cache.stats();
        assert_eq!(
            s.requests(),
            (rounds * threads) as u64,
            "every stormed request lands in exactly one bucket: {s:?}"
        );
        assert_eq!(s.hits, 0, "nothing was ever cached during the storm");
        assert_eq!(s.entries, 0);

        // Recovery: a clean request leads a fresh flight and caches.
        let t = cache.get_or_plan(shape).unwrap();
        assert_eq!(t.nest(), shape);
        let s = cache.stats();
        assert_eq!(
            s.requests(),
            (rounds * threads) as u64 + 1,
            "post-recovery accounting still balances: {s:?}"
        );
        assert_eq!(s.entries, 1);
    }

    #[test]
    fn verdict_cache_round_trips_and_counts() {
        use crate::inspector::Verdict;
        let vc = VerdictCache::new(4);
        assert!(vc.is_empty());
        assert_eq!(vc.get(7, &[1, 2]), None);
        vc.insert(7, vec![1, 2], Verdict::Certified);
        assert_eq!(vc.get(7, &[1, 2]), Some(Verdict::Certified));
        // Distinct valuations of one shape are distinct entries.
        assert_eq!(vc.get(7, &[1, 3]), None);
        let mut audits = 0;
        let v = vc
            .get_or_audit(7, &[1, 3], || {
                audits += 1;
                Ok(Verdict::Rejected {
                    reason: "test".into(),
                })
            })
            .unwrap();
        assert_eq!(v.kind(), "rejected");
        assert_eq!(audits, 1);
        // Second call hits without re-auditing.
        vc.get_or_audit(7, &[1, 3], || {
            panic!("must not re-audit a cached valuation")
        })
        .unwrap();
        assert_eq!(vc.len(), 2);
        let (hits, misses) = vc.hit_stats();
        assert_eq!(hits, 2);
        assert_eq!(misses, 3);
    }

    #[test]
    fn verdict_cache_bounds_points_with_lru_eviction() {
        use crate::inspector::Verdict;
        // One shard so every valuation shares a capacity pool.
        let vc = VerdictCache::with_capacity(1, 2);
        assert_eq!(vc.capacity_per_shard(), 2);
        vc.insert(7, vec![1], Verdict::Certified);
        vc.insert(7, vec![2], Verdict::Certified);
        // Touch [1] so [2] becomes least-recently-used, then overflow.
        assert!(vc.get(7, &[1]).is_some());
        vc.insert(7, vec![3], Verdict::Certified);
        assert_eq!(vc.len(), 2, "capacity bound holds");
        assert!(vc.get(7, &[1]).is_some(), "recently used survives");
        assert!(vc.get(7, &[3]).is_some(), "new entry present");
        assert!(vc.get(7, &[2]).is_none(), "LRU victim evicted");
        let s = vc.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
        // Re-inserting an existing key is an update, not an eviction.
        vc.insert(7, vec![3], Verdict::Certified);
        assert_eq!(vc.stats().evictions, 1);
        assert_eq!(vc.len(), 2);
    }

    #[test]
    fn verdict_cache_intervals_answer_ahead_of_points() {
        use crate::inspector::Verdict;
        let vc = VerdictCache::new(4);
        vc.insert_interval(9, &[(20, i64::MAX)], Verdict::Certified);
        // In-interval valuations hit without any point entry.
        assert_eq!(vc.get(9, &[20]), Some(Verdict::Certified));
        assert_eq!(
            vc.get_with_source(9, &[1_000_000]),
            Some((Verdict::Certified, VerdictSource::Interval))
        );
        // Outside the box falls through to the point tier.
        assert_eq!(vc.get(9, &[19]), None);
        vc.insert(9, vec![19], Verdict::Rejected { reason: "t".into() });
        assert_eq!(
            vc.get_with_source(9, &[19]).map(|(v, s)| (v.kind(), s)),
            Some(("rejected", VerdictSource::Point))
        );
        // A duplicate box is deduplicated, a distinct one is kept.
        vc.insert_interval(9, &[(20, i64::MAX)], Verdict::Certified);
        vc.insert_interval(9, &[(i64::MIN, -20)], Verdict::Certified);
        let s = vc.stats();
        assert_eq!(s.intervals, 2);
        assert_eq!(s.interval_hits, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.entries, 1);
        // get_or_audit never audits inside a certified interval.
        vc.get_or_audit(9, &[500], || panic!("in-interval audit"))
            .unwrap();
    }

    #[test]
    fn bounded_verdict_cache_storm_keeps_stats_invariant() {
        use crate::inspector::Verdict;
        use std::sync::atomic::AtomicU64;
        // Tiny capacity so the storm constantly evicts, plus auditors
        // that panic or error mid-flight: every probe must still land
        // in exactly one counter bucket, the bound must hold, and the
        // cache must stay usable (no poisoned shard).
        let vc = std::sync::Arc::new(VerdictCache::with_capacity(2, 4));
        vc.insert_interval(1, &[(1_000, i64::MAX)], Verdict::Certified);
        let threads = 8usize;
        let rounds = 60usize;
        let probes = AtomicU64::new(0);
        let barrier = Barrier::new(threads);
        std::thread::scope(|scope| {
            for t in 0..threads {
                let vc = std::sync::Arc::clone(&vc);
                let probes = &probes;
                let barrier = &barrier;
                scope.spawn(move || {
                    barrier.wait();
                    for r in 0..rounds {
                        let k = ((t * rounds + r) % 40) as i64;
                        // Mix shapes: shape 1 carries the interval, so
                        // large valuations are interval hits.
                        let hash = if r % 3 == 0 { 1 } else { 2 };
                        let val = if r % 5 == 0 { k + 1_000 } else { k };
                        probes.fetch_add(1, Ordering::Relaxed);
                        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            vc.get_or_audit(hash, &[val], || match r % 4 {
                                0 => panic!("injected auditor panic"),
                                1 => Err(RuntimeError::Core("injected".into())),
                                _ => Ok(Verdict::Certified),
                            })
                        }));
                        if let Ok(Ok(v)) = out {
                            assert_eq!(v, Verdict::Certified);
                        }
                    }
                });
            }
        });
        let s = vc.stats();
        let probes = probes.load(Ordering::Relaxed);
        assert_eq!(
            s.hits + s.interval_hits + s.misses,
            probes,
            "every probe lands in exactly one bucket: {s:?}"
        );
        assert!(s.interval_hits > 0, "storm exercised the interval tier");
        assert!(s.entries <= (2 * 4) as u64, "LRU bound violated: {s:?}");
        assert_eq!(s.entries as usize, vc.len());
        // Eviction accounting balances: successful audits that
        // inserted minus evictions equals what is still resident.
        assert!(s.evictions > 0, "tiny capacity must have evicted: {s:?}");
        // The cache is not wedged: a clean probe still round-trips.
        vc.insert(3, vec![0], Verdict::Certified);
        assert_eq!(vc.get(3, &[0]), Some(Verdict::Certified));
    }

    #[test]
    fn planning_error_is_typed_and_not_cached() {
        let cache = ShardedPlanCache::new(1, 4);
        let shape = &shapes(1)[0];
        let err = cache
            .get_or_plan_with(shape, || {
                Err(RuntimeError::PlanningFailed("synthetic".into()))
            })
            .unwrap_err();
        assert!(matches!(err, RuntimeError::PlanningFailed(_)));
        assert_eq!(cache.len(), 0, "errors are not cached");
        // The same shape plans fine afterwards.
        assert!(cache.get_or_plan(shape).is_ok());
        let s = cache.stats();
        assert_eq!(s.planned, 2);
    }

    #[test]
    fn shard_stats_sum_to_totals() {
        let cache = ShardedPlanCache::new(4, 8);
        let shapes = shapes(5);
        for nest in &shapes {
            cache.get_or_plan(nest).unwrap();
            cache.get_or_plan(nest).unwrap();
        }
        let per_shard = cache.shard_stats();
        assert_eq!(per_shard.len(), 4);
        let mut sum = CacheStats::default();
        for s in &per_shard {
            sum.add(s);
        }
        assert_eq!(sum, cache.stats());
        assert_eq!(sum.planned, 5);
        assert_eq!(sum.hits, 5);
    }
}
