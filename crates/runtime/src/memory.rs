//! Array storage for loop execution.
//!
//! Arrays are dense `i64` boxes sized by conservative interval arithmetic:
//! each loop variable's global range is obtained by Fourier–Motzkin
//! projection of the iteration polyhedron, and each affine subscript's
//! extent follows by interval evaluation. The box over-approximates the
//! true footprint (extra cells are simply never touched).
//!
//! Cells live in [`std::cell::UnsafeCell`] so a **shared** memory view can
//! be handed to rayon workers: the dependence analysis proves that
//! concurrent groups never conflict, and the [`crate::checked`] module
//! verifies exactly that claim at runtime.

use crate::{Result, RuntimeError};
use pdm_loopir::access::ArrayId;
use pdm_loopir::nest::LoopNest;
use std::cell::UnsafeCell;

/// One array's storage: inclusive per-dimension index ranges plus a dense
/// backing vector.
pub struct ArrayStorage {
    /// Source name.
    pub name: String,
    /// Inclusive `(lo, hi)` per dimension.
    pub dims: Vec<(i64, i64)>,
    data: Vec<UnsafeCell<i64>>,
}

impl ArrayStorage {
    fn len_of(dims: &[(i64, i64)]) -> usize {
        dims.iter()
            .map(|&(lo, hi)| (hi - lo + 1).max(0) as usize)
            .product()
    }

    /// Flatten a subscript; `None` when out of the box.
    #[inline]
    pub fn flat_index(&self, sub: &[i64]) -> Option<usize> {
        debug_assert_eq!(sub.len(), self.dims.len());
        let mut idx = 0usize;
        for (d, &s) in sub.iter().enumerate() {
            let (lo, hi) = self.dims[d];
            if s < lo || s > hi {
                return None;
            }
            let width = (hi - lo + 1) as usize;
            idx = idx * width + (s - lo) as usize;
        }
        Some(idx)
    }

    /// Total cells.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Is the array empty?
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// A set of arrays for one nest.
///
/// `Memory` is `Sync`: parallel groups access disjoint cells (proven by
/// the analysis, validated by the race checker), so the interior
/// mutability is sound in exactly the way a `doall` loop is.
pub struct Memory {
    arrays: Vec<ArrayStorage>,
}

// SAFETY: concurrent access is restricted by construction to provably
// disjoint cells (independent doall groups); the checked executor
// additionally validates this dynamically in tests.
unsafe impl Sync for Memory {}

impl Memory {
    /// Allocate arrays sized for every access of the nest, zero-filled.
    pub fn for_nest(nest: &LoopNest) -> Result<Memory> {
        let ranges = index_ranges(nest)?;
        let mut arrays = Vec::new();
        for (aid, decl) in nest.arrays().iter().enumerate() {
            let mut dims = vec![(i64::MAX, i64::MIN); decl.dims];
            let mut touched = false;
            for (_, _, r) in nest.accesses() {
                if r.array != ArrayId(aid) {
                    continue;
                }
                touched = true;
                for d in 0..decl.dims {
                    // Interval arithmetic: coeff * [lo, hi] summed + offset.
                    let mut lo = r.access.offset[d] as i128;
                    let mut hi = lo;
                    for k in 0..nest.depth() {
                        let c = r.access.matrix.get(k, d) as i128;
                        let (rl, rh) = ranges[k];
                        let a = c * rl as i128;
                        let b = c * rh as i128;
                        lo += a.min(b);
                        hi += a.max(b);
                    }
                    let lo = i64::try_from(lo)
                        .map_err(|_| RuntimeError::Matrix(pdm_matrix::MatrixError::Overflow))?;
                    let hi = i64::try_from(hi)
                        .map_err(|_| RuntimeError::Matrix(pdm_matrix::MatrixError::Overflow))?;
                    dims[d].0 = dims[d].0.min(lo);
                    dims[d].1 = dims[d].1.max(hi);
                }
            }
            if !touched {
                dims = vec![(0, -1); decl.dims]; // empty box
            }
            let len = ArrayStorage::len_of(&dims);
            let data = (0..len).map(|_| UnsafeCell::new(0)).collect();
            arrays.push(ArrayStorage {
                name: decl.name.clone(),
                dims,
                data,
            });
        }
        Ok(Memory { arrays })
    }

    /// Allocate arrays sized for every statement of an imperfect nest.
    /// Sizing runs over the nest's
    /// [`hull`](pdm_loopir::imperfect::ImperfectNest::hull) — the
    /// perfect nest holding all statements — which touches a superset of
    /// the real accesses, so every executor (imperfect reference,
    /// fissioned kernels, sunk guarded kernels) fits in the same box and
    /// kernels can share one memory with stable array ids.
    pub fn for_imperfect(imp: &pdm_loopir::imperfect::ImperfectNest) -> Result<Memory> {
        Memory::for_nest(&imp.hull()?)
    }

    /// Deterministically initialize every cell from its flat index (used
    /// so equivalence tests exercise non-trivial data).
    pub fn init_deterministic(&mut self, seed: u64) {
        for a in &mut self.arrays {
            for (k, cell) in a.data.iter_mut().enumerate() {
                let mut x = seed.wrapping_add(k as u64).wrapping_mul(0x9E3779B97F4A7C15);
                x ^= x >> 29;
                x = x.wrapping_mul(0xBF58476D1CE4E5B9);
                x ^= x >> 32;
                *cell.get_mut() = (x % 1000) as i64 - 500;
            }
        }
    }

    /// Read a cell.
    #[inline]
    pub fn read(&self, a: ArrayId, sub: &[i64]) -> Result<i64> {
        let arr = &self.arrays[a.0];
        match arr.flat_index(sub) {
            // SAFETY: see the `Sync` impl — groups touch disjoint cells.
            Some(i) => Ok(unsafe { *arr.data[i].get() }),
            None => Err(RuntimeError::OutOfBounds {
                array: arr.name.clone(),
                subscript: sub.to_vec(),
            }),
        }
    }

    /// Write a cell.
    #[inline]
    pub fn write(&self, a: ArrayId, sub: &[i64], v: i64) -> Result<()> {
        let arr = &self.arrays[a.0];
        match arr.flat_index(sub) {
            // SAFETY: see the `Sync` impl.
            Some(i) => {
                unsafe { *arr.data[i].get() = v };
                Ok(())
            }
            None => Err(RuntimeError::OutOfBounds {
                array: arr.name.clone(),
                subscript: sub.to_vec(),
            }),
        }
    }

    /// Read a cell by its flat index, as precomputed by the compiled
    /// engine ([`crate::program`]). `None` when out of range.
    #[inline]
    pub fn read_flat(&self, a: usize, i: usize) -> Option<i64> {
        // SAFETY: see the `Sync` impl — groups touch disjoint cells.
        self.arrays[a].data.get(i).map(|c| unsafe { *c.get() })
    }

    /// Write a cell by its flat index. `None` when out of range.
    #[inline]
    pub fn write_flat(&self, a: usize, i: usize, v: i64) -> Option<()> {
        // SAFETY: see the `Sync` impl.
        self.arrays[a].data.get(i).map(|c| {
            unsafe { *c.get() = v };
        })
    }

    /// The arrays.
    pub fn arrays(&self) -> &[ArrayStorage] {
        &self.arrays
    }

    /// Snapshot all contents (for equivalence comparison).
    pub fn snapshot(&self) -> Vec<Vec<i64>> {
        self.arrays
            .iter()
            .map(|a| a.data.iter().map(|c| unsafe { *c.get() }).collect())
            .collect()
    }

    /// Flat index of a subscript in array `a` (for the race checker's
    /// logs).
    pub fn flat(&self, a: ArrayId, sub: &[i64]) -> Option<usize> {
        self.arrays[a.0].flat_index(sub)
    }
}

/// Global inclusive range of every loop variable, by FM projection.
/// (Thin wrapper over [`LoopNest::index_ranges`], kept for API
/// stability of this crate.)
pub fn index_ranges(nest: &LoopNest) -> Result<Vec<(i64, i64)>> {
    Ok(nest.index_ranges()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_loopir::parse::parse_loop;

    #[test]
    fn extents_cover_all_accesses() {
        let nest = parse_loop(
            "for i1 = 0..=9 { for i2 = 0..=9 {
               A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
             } }",
        )
        .unwrap();
        let mem = Memory::for_nest(&nest).unwrap();
        for it in nest.iterations().unwrap() {
            for (_, _, r) in nest.accesses() {
                let sub = r.access.eval(&it).unwrap();
                assert!(
                    mem.flat(r.array, &sub).is_some(),
                    "access {sub} outside extents"
                );
            }
        }
    }

    #[test]
    fn negative_ranges_supported() {
        let nest = parse_loop("for i = -5..=5 { A[2*i] = A[i] + 1; }").unwrap();
        let mem = Memory::for_nest(&nest).unwrap();
        assert_eq!(mem.arrays()[0].dims, vec![(-10, 10)]);
        mem.write(ArrayId(0), &[-10], 42).unwrap();
        assert_eq!(mem.read(ArrayId(0), &[-10]).unwrap(), 42);
    }

    #[test]
    fn out_of_bounds_reported() {
        let nest = parse_loop("for i = 0..=4 { A[i] = 1; }").unwrap();
        let mem = Memory::for_nest(&nest).unwrap();
        assert!(matches!(
            mem.read(ArrayId(0), &[99]),
            Err(RuntimeError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn index_ranges_triangular() {
        let nest = parse_loop("for i = 0..=6 { for j = 0..=i { A[i, j] = 1; } }").unwrap();
        let r = index_ranges(&nest).unwrap();
        assert_eq!(r[0], (0, 6));
        assert_eq!(r[1], (0, 6)); // conservative: j's global range
    }

    #[test]
    fn deterministic_init_reproducible() {
        let nest = parse_loop("for i = 0..=9 { A[i] = A[i] + 1; }").unwrap();
        let mut m1 = Memory::for_nest(&nest).unwrap();
        let mut m2 = Memory::for_nest(&nest).unwrap();
        m1.init_deterministic(7);
        m2.init_deterministic(7);
        assert_eq!(m1.snapshot(), m2.snapshot());
        m2.init_deterministic(8);
        assert_ne!(m1.snapshot(), m2.snapshot());
    }
}
