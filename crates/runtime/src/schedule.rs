//! Streaming enumeration and range scheduling of independent groups.
//!
//! The parallel plans of this crate expose their work as *groups* — one
//! per (doall-prefix value × Theorem-2 partition offset). The historical
//! executors materialized the entire cross product as a `Vec` before the
//! first iteration ran, an `O(#groups × depth)` allocation spike that
//! dominates memory on deep doall nests (a depth-4 all-doall nest with
//! extent 18 has 104 976 groups). This module replaces that with a
//! **streaming enumerator**: schedulers hand workers contiguous *ranges*
//! of the group index space, and each worker walks its range with a
//! [`GroupCursor`] holding `O(depth)` state.
//!
//! # Cursor state
//!
//! A [`GroupCursor`] stores only the current doall prefix (one `i64` per
//! doall level), the cached `(lo, hi)` bounds of each prefix level, the
//! current offset index, and the linear position. [`GroupCursor::advance`]
//! is an odometer step: the offset index increments first and, on wrap,
//! the innermost prefix level that has room is bumped while deeper levels
//! re-enter at their (freshly evaluated) lower bounds — prefixes whose
//! inner ranges are empty are skipped exactly as the materialized
//! enumeration skipped them. The sequence of `(prefix, offset)` pairs is
//! **identical** — same order, same multiset — to the rows of the
//! deprecated materializing `groups()` helpers.
//!
//! # Seek semantics
//!
//! [`GroupCursor::seek`] positions the cursor at the `k`-th group of that
//! sequence. Linear index `k` decomposes as `k = prefix_ordinal ×
//! num_offsets + offset_index`. The prefix ordinal is resolved level by
//! level: when every level below is **prefix-independent** (its bound
//! rows read no outer variable), subtree sizes are equal and the level
//! value is a single division — `O(depth)` total for rectangular bounds.
//! Otherwise the cursor scans the level's values accumulating exact
//! subtree counts, recursing over the prefix-dependent levels:
//! `O(depth × extent)` with one dependent level, and in the worst case
//! (every level dependent) proportional to the dependent prefix subspace
//! itself. Range scheduling pays one seek per range (`threads ×
//! chunks_per_thread` of them), which the measured 14–42× streaming
//! enumeration win absorbs; if per-range seeks ever dominate on a
//! deeply-dependent workload, split by walking one cursor and cloning
//! its `O(depth)` state at the range boundaries instead. `seek(k)`
//! agrees with `k` calls to [`GroupCursor::advance`] from the start,
//! which the property tests assert on random nests.
//!
//! # Counting
//!
//! [`group_count`] / [`prefix_count`] size the schedule **before** any
//! enumeration: extents of the longest prefix-independent level suffix
//! multiply arithmetically, and only the (possibly empty) dependent head
//! is walked. On a rectangular nest the count is pure arithmetic.
//!
//! # Scheduling
//!
//! [`Schedule::ranges`] splits `0..group_count` into contiguous
//! sub-ranges, several per worker so chunk imbalance can amortize:
//! `threads × chunks_per_thread` target chunks (default
//! [`DEFAULT_CHUNKS_PER_THREAD`] = 4, matching the chunked scheduler this
//! module replaces). Override with the `PDM_CHUNKS_PER_THREAD`
//! environment variable (any positive integer; larger values smooth
//! imbalanced group costs at the price of more per-range seeks). Each
//! range is walked by one task with one cursor and one reused scratch, so
//! peak simultaneously-live group state is `O(threads ×
//! chunks_per_thread)` instead of `O(#groups)`.
//!
//! # When materializing is still appropriate
//!
//! The `groups()` shims ([`crate::exec::groups`],
//! [`crate::compile::CompiledPlan::groups`]) survive as thin
//! `cursor → Vec` collectors for tests, debugging, and group-table
//! inspection (e.g. printing a plan's groups). Production execution paths
//! never call them; new code should reach for a cursor or
//! [`Schedule::ranges`] instead.
//!
//! # Instrumentation
//!
//! [`GroupSpec`](crate::exec::GroupSpec) and
//! [`CompiledGroup`](crate::compile::CompiledGroup) have instrumented
//! constructors feeding the [`live_groups`] / [`peak_live_groups`]
//! gauges, which the `bench_groups` snapshot and the allocation-spike
//! regression test read.

use crate::{Result, RuntimeError};
use pdm_matrix::MatrixError;
use pdm_poly::bounds::LoopBounds;
use std::sync::atomic::{AtomicI64, Ordering};

fn overflow() -> RuntimeError {
    RuntimeError::Matrix(MatrixError::Overflow)
}

/// Inclusive-range width as a `u64` (`0` when empty).
fn width(lo: i64, hi: i64) -> Result<u64> {
    if hi < lo {
        return Ok(0);
    }
    u64::try_from(hi as i128 - lo as i128 + 1).map_err(|_| overflow())
}

/// Per-level bounds a cursor can walk: evaluate a level's `(lo, hi)`
/// range at a point and report whether the range depends on outer levels.
///
/// Implemented by [`pdm_poly::bounds::LoopBounds`] (interpreter paths)
/// and [`crate::compile::CompiledBounds`] (compiled engine), so one
/// cursor serves both executors.
pub trait PrefixBounds {
    /// Number of loop levels.
    fn dim(&self) -> usize;

    /// Effective `(lo, hi)` of level `level` at point `x`. `x` must be
    /// padded to full dimension; only `x[..level]` is read through
    /// nonzero coefficients.
    fn level_range(&self, level: usize, x: &[i64]) -> Result<(i64, i64)>;

    /// Does level `level`'s range read any outer loop variable? `false`
    /// means the level's extent is one fixed interval, enabling the
    /// arithmetic counting and O(1)-per-level seek fast paths.
    fn prefix_dependent(&self, level: usize) -> bool;
}

impl PrefixBounds for LoopBounds {
    fn dim(&self) -> usize {
        LoopBounds::dim(self)
    }

    fn level_range(&self, level: usize, x: &[i64]) -> Result<(i64, i64)> {
        let lb = self.level(level);
        Ok((lb.lower(x)?, lb.upper(x)?))
    }

    fn prefix_dependent(&self, level: usize) -> bool {
        let lb = self.level(level);
        lb.lowers
            .iter()
            .chain(&lb.uppers)
            .any(|b| b.num.coeffs.iter().any(|&c| c != 0))
    }
}

/// Streaming enumerator over a plan's independent groups.
///
/// Walks doall-prefix values in lexicographic order crossed with offset
/// indices `0..num_offsets` (offset-minor), holding `O(depth)` state —
/// never more than one group. See the [module docs](self) for the state,
/// ordering, and seek semantics.
#[derive(Debug, Clone)]
pub struct GroupCursor<'a, B: PrefixBounds> {
    bounds: &'a B,
    /// Number of leading (doall) levels enumerated.
    z: usize,
    num_offsets: usize,
    /// Full-width point; entries `>= z` stay zero.
    x: Vec<i64>,
    /// Cached per-level lower bounds along the current prefix.
    lo: Vec<i64>,
    /// Cached per-level upper bounds along the current prefix.
    hi: Vec<i64>,
    /// Current offset index (`< num_offsets`).
    offset: usize,
    /// Linear index of the current group.
    pos: u64,
    /// Smallest `j` such that levels `j..z` are all prefix-independent.
    indep_from: usize,
    exhausted: bool,
}

impl<'a, B: PrefixBounds> GroupCursor<'a, B> {
    /// Open a cursor over the first `z` levels of `bounds` crossed with
    /// `num_offsets` partition offsets, positioned at group 0 (or already
    /// exhausted when the prefix space is empty). `num_offsets` must be
    /// at least 1 — unpartitioned plans pass a single empty offset.
    pub fn new(bounds: &'a B, z: usize, num_offsets: usize) -> Result<Self> {
        if num_offsets == 0 {
            return Err(RuntimeError::Core(
                "group cursor needs a non-empty offset table".into(),
            ));
        }
        let n = bounds.dim();
        debug_assert!(z <= n, "doall prefix exceeds nest depth");
        let mut indep_from = z;
        while indep_from > 0 && !bounds.prefix_dependent(indep_from - 1) {
            indep_from -= 1;
        }
        let mut cur = GroupCursor {
            bounds,
            z,
            num_offsets,
            x: vec![0; n],
            lo: vec![0; z],
            hi: vec![0; z],
            offset: 0,
            pos: 0,
            indep_from,
            exhausted: false,
        };
        if !cur.first_from(0)? {
            cur.exhausted = true;
        }
        Ok(cur)
    }

    /// The current `(prefix, offset_index)` pair, or `None` once every
    /// group has been yielded.
    #[inline]
    pub fn current(&self) -> Option<(&[i64], usize)> {
        if self.exhausted {
            None
        } else {
            Some((&self.x[..self.z], self.offset))
        }
    }

    /// Linear index of the current group (meaningful while
    /// [`GroupCursor::current`] is `Some`).
    #[inline]
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Has the cursor run past the last group?
    #[inline]
    pub fn is_exhausted(&self) -> bool {
        self.exhausted
    }

    /// Step to the next group. Returns `false` (and exhausts the cursor)
    /// when the current group was the last.
    pub fn advance(&mut self) -> Result<bool> {
        if self.exhausted {
            return Ok(false);
        }
        self.offset += 1;
        if self.offset >= self.num_offsets {
            self.offset = 0;
            if !self.next_prefix()? {
                self.exhausted = true;
                return Ok(false);
            }
        }
        self.pos += 1;
        Ok(true)
    }

    /// Fill levels `j..z` with their minimal feasible values, bumping
    /// outer levels (within their cached `hi`) whenever an inner range
    /// comes up empty. Returns `false` when no feasible prefix remains.
    fn first_from(&mut self, mut j: usize) -> Result<bool> {
        loop {
            if j == self.z {
                return Ok(true);
            }
            let (lo, hi) = self.bounds.level_range(j, &self.x)?;
            if lo <= hi {
                self.lo[j] = lo;
                self.hi[j] = hi;
                self.x[j] = lo;
                j += 1;
            } else {
                loop {
                    if j == 0 {
                        return Ok(false);
                    }
                    j -= 1;
                    if self.x[j] < self.hi[j] {
                        self.x[j] += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
    }

    /// Odometer-bump to the lexicographically next feasible prefix.
    fn next_prefix(&mut self) -> Result<bool> {
        let mut j = self.z;
        loop {
            if j == 0 {
                return Ok(false);
            }
            j -= 1;
            if self.x[j] < self.hi[j] {
                self.x[j] += 1;
                break;
            }
        }
        self.first_from(j + 1)
    }

    /// Are levels `j..z` all prefix-independent?
    #[inline]
    fn indep_below(&self, j: usize) -> bool {
        j >= self.indep_from
    }

    /// Product of the (constant) extents of the prefix-independent levels
    /// `j..z` — the completions below any value at level `j − 1`.
    fn tail_product(&self, j: usize) -> Result<u64> {
        debug_assert!(self.indep_below(j));
        let mut t: u64 = 1;
        for k in j..self.z {
            let (lo, hi) = self.bounds.level_range(k, &self.x)?;
            t = t.checked_mul(width(lo, hi)?).ok_or_else(overflow)?;
            if t == 0 {
                return Ok(0);
            }
        }
        Ok(t)
    }

    /// Exact number of prefix completions of levels `j..z` given the
    /// values currently in `x[..j]` (counting recursion over the
    /// prefix-dependent levels only).
    fn count_completions(&mut self, j: usize) -> Result<u64> {
        if self.indep_below(j) {
            return self.tail_product(j);
        }
        let (lo, hi) = self.bounds.level_range(j, &self.x)?;
        let mut total: u64 = 0;
        let mut v = lo;
        while v <= hi {
            self.x[j] = v;
            total = total
                .checked_add(self.count_completions(j + 1)?)
                .ok_or_else(overflow)?;
            if v == hi {
                break;
            }
            v += 1;
        }
        Ok(total)
    }

    /// Position the cursor at the group with linear index `target`.
    /// Returns `false` (and exhausts the cursor) when `target` is past
    /// the last group. `O(depth)` when all prefix levels are
    /// independent; with prefix-dependent levels it counts subtrees
    /// exactly — see the [module docs](self) for the cost model.
    pub fn seek(&mut self, target: u64) -> Result<bool> {
        self.exhausted = false;
        self.pos = target;
        self.offset = (target % self.num_offsets as u64) as usize;
        let mut p = target / self.num_offsets as u64;
        for j in 0..self.z {
            let (lo, hi) = self.bounds.level_range(j, &self.x)?;
            self.lo[j] = lo;
            self.hi[j] = hi;
            if lo > hi {
                self.exhausted = true;
                return Ok(false);
            }
            if self.indep_below(j + 1) {
                let sub = self.tail_product(j + 1)?;
                if sub == 0 {
                    self.exhausted = true;
                    return Ok(false);
                }
                let step = p / sub;
                if step >= width(lo, hi)? {
                    self.exhausted = true;
                    return Ok(false);
                }
                self.x[j] = lo + step as i64;
                p %= sub;
            } else {
                let mut v = lo;
                let mut found = false;
                while v <= hi {
                    self.x[j] = v;
                    let c = self.count_completions(j + 1)?;
                    // `count_completions` scribbles on deeper `x` slots;
                    // they are rewritten by the deeper loop iterations.
                    self.x[j] = v;
                    if p < c {
                        found = true;
                        break;
                    }
                    p -= c;
                    if v == hi {
                        break;
                    }
                    v += 1;
                }
                if !found {
                    self.exhausted = true;
                    return Ok(false);
                }
            }
        }
        if self.z == 0 && p > 0 {
            self.exhausted = true;
            return Ok(false);
        }
        Ok(true)
    }
}

/// Drive `f(position, prefix, offset_index)` over every group in the
/// contiguous range `start..end` with one streaming cursor — the shared
/// skeleton of every range scheduler (interpreted, compiled, checked)
/// and of the materializing `groups()` shims (which pass
/// `end = u64::MAX` to walk to exhaustion). The prefix slice is only
/// valid for the duration of each call.
pub fn for_each_group_in_range<B, F>(
    bounds: &B,
    z: usize,
    num_offsets: usize,
    start: u64,
    end: u64,
    mut f: F,
) -> Result<()>
where
    B: PrefixBounds,
    F: FnMut(u64, &[i64], usize) -> Result<()>,
{
    let mut cur = GroupCursor::new(bounds, z, num_offsets)?;
    if start > 0 && !cur.seek(start)? {
        return Ok(());
    }
    while cur.position() < end {
        let pos = cur.position();
        match cur.current() {
            Some((prefix, o)) => f(pos, prefix, o)?,
            None => break,
        }
        if !cur.advance()? {
            break;
        }
    }
    Ok(())
}

/// Number of doall-prefix value combinations over the first `z` levels of
/// `bounds`, without enumerating the prefix-independent suffix: constant
/// extents multiply arithmetically and only the dependent head levels are
/// walked. Pure arithmetic on rectangular nests.
pub fn prefix_count<B: PrefixBounds>(bounds: &B, z: usize) -> Result<u64> {
    let mut j_star = z;
    while j_star > 0 && !bounds.prefix_dependent(j_star - 1) {
        j_star -= 1;
    }
    let x = vec![0i64; bounds.dim()];
    let mut tail: u64 = 1;
    for k in j_star..z {
        let (lo, hi) = bounds.level_range(k, &x)?;
        tail = tail.checked_mul(width(lo, hi)?).ok_or_else(overflow)?;
        if tail == 0 {
            return Ok(0);
        }
    }
    let head = if j_star == 0 {
        1
    } else {
        // Walk only the dependent head levels (offset dimension unused).
        let mut cur = GroupCursor::new(bounds, j_star, 1)?;
        let mut c: u64 = 0;
        while cur.current().is_some() {
            c = c.checked_add(1).ok_or_else(overflow)?;
            cur.advance()?;
        }
        c
    };
    head.checked_mul(tail).ok_or_else(overflow)
}

/// Total group count: [`prefix_count`] × `num_offsets`. This is the
/// length of the sequence a [`GroupCursor`] yields and the exclusive
/// upper bound of the index space [`Schedule::ranges`] splits.
pub fn group_count<B: PrefixBounds>(bounds: &B, z: usize, num_offsets: usize) -> Result<u64> {
    prefix_count(bounds, z)?
        .checked_mul(num_offsets as u64)
        .ok_or_else(overflow)
}

/// Default [`Schedule::chunks_per_thread`]: 4 contiguous ranges per
/// worker, the factor the pre-streaming chunked scheduler used.
pub const DEFAULT_CHUNKS_PER_THREAD: usize = 4;

/// Range-splitting knobs for the streaming schedulers.
///
/// `chunks_per_thread` controls how many contiguous group ranges each
/// worker receives. More chunks smooth imbalanced group costs (the
/// vendored rayon stand-in splits contiguously without work stealing) at
/// the price of one cursor seek per extra range. The default is
/// [`DEFAULT_CHUNKS_PER_THREAD`]; [`Schedule::from_env`] lets the
/// `PDM_CHUNKS_PER_THREAD` environment variable override it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Schedule {
    /// Target contiguous group ranges per worker thread (≥ 1).
    pub chunks_per_thread: usize,
}

impl Default for Schedule {
    fn default() -> Self {
        Schedule {
            chunks_per_thread: DEFAULT_CHUNKS_PER_THREAD,
        }
    }
}

impl Schedule {
    /// The schedule configured by the environment: `PDM_CHUNKS_PER_THREAD`
    /// (a positive integer) when set and parseable, the default otherwise.
    pub fn from_env() -> Schedule {
        Self::from_env_value(std::env::var("PDM_CHUNKS_PER_THREAD").ok().as_deref())
    }

    /// [`Schedule::from_env`] with the raw variable value injected —
    /// testable without mutating process environment.
    pub fn from_env_value(raw: Option<&str>) -> Schedule {
        let chunks = raw
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&c| c > 0)
            .unwrap_or(DEFAULT_CHUNKS_PER_THREAD);
        Schedule {
            chunks_per_thread: chunks,
        }
    }

    /// Split `0..total` into contiguous `(start, end)` sub-ranges,
    /// targeting `threads × chunks_per_thread` chunks. Ranges cover the
    /// space exactly once, in order; `total == 0` yields no ranges.
    pub fn ranges(&self, total: u64, threads: usize) -> Vec<(u64, u64)> {
        if total == 0 {
            return Vec::new();
        }
        let target = (threads.max(1) as u64).saturating_mul(self.chunks_per_thread.max(1) as u64);
        let chunk = total.div_ceil(target).max(1);
        let mut out = Vec::with_capacity(total.div_ceil(chunk) as usize);
        let mut start = 0u64;
        while start < total {
            let end = start.saturating_add(chunk).min(total);
            out.push((start, end));
            start = end;
        }
        out
    }
}

// ---------------------------------------------------------------------
// Live-group instrumentation.
// ---------------------------------------------------------------------

static LIVE_GROUPS: AtomicI64 = AtomicI64::new(0);
static PEAK_LIVE_GROUPS: AtomicI64 = AtomicI64::new(0);

/// Record a group-struct construction (called by the instrumented
/// constructors of [`crate::exec::GroupSpec`] and
/// [`crate::compile::CompiledGroup`]).
#[inline]
pub(crate) fn group_created() {
    let live = LIVE_GROUPS.fetch_add(1, Ordering::Relaxed) + 1;
    PEAK_LIVE_GROUPS.fetch_max(live, Ordering::Relaxed);
}

/// Record a group-struct drop.
#[inline]
pub(crate) fn group_dropped() {
    LIVE_GROUPS.fetch_sub(1, Ordering::Relaxed);
}

/// Currently-live instrumented group structs (process-wide gauge).
pub fn live_groups() -> i64 {
    LIVE_GROUPS.load(Ordering::Relaxed)
}

/// High-water mark of [`live_groups`] since the last
/// [`reset_peak_live_groups`] — the allocation-spike metric `bench_groups`
/// snapshots and the regression test bounds.
pub fn peak_live_groups() -> i64 {
    PEAK_LIVE_GROUPS.load(Ordering::Relaxed)
}

/// Reset the peak gauge to the current live count. Process-wide: callers
/// that need an isolated reading (tests, benches) must not race other
/// group-creating work.
pub fn reset_peak_live_groups() {
    PEAK_LIVE_GROUPS.store(LIVE_GROUPS.load(Ordering::Relaxed), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_poly::bounds::LoopBounds;
    use pdm_poly::expr::AffineExpr;
    use pdm_poly::system::System;

    /// Bounds of a rectangular box `lo_k ≤ x_k ≤ hi_k`.
    fn box_bounds(ranges: &[(i64, i64)]) -> LoopBounds {
        let n = ranges.len();
        let mut s = System::universe(n);
        for (k, &(lo, hi)) in ranges.iter().enumerate() {
            s.add_range(k, lo, hi).unwrap();
        }
        LoopBounds::from_system(&s).unwrap()
    }

    /// Bounds of the triangle `0 ≤ x_0 ≤ n`, `0 ≤ x_1 ≤ x_0`.
    fn triangle_bounds(n: i64) -> LoopBounds {
        let mut s = System::universe(2);
        s.add_range(0, 0, n).unwrap();
        let mut c = vec![0i64; 2];
        c[1] = 1;
        s.add_ge0(AffineExpr::new(pdm_matrix::vec::IVec(c), 0))
            .unwrap();
        // x_0 - x_1 >= 0
        s.add_ge0(AffineExpr::new(pdm_matrix::vec::IVec(vec![1, -1]), 0))
            .unwrap();
        LoopBounds::from_system(&s).unwrap()
    }

    fn collect(bounds: &LoopBounds, z: usize, noff: usize) -> Vec<(Vec<i64>, usize)> {
        let mut cur = GroupCursor::new(bounds, z, noff).unwrap();
        let mut out = Vec::new();
        while let Some((p, o)) = cur.current() {
            out.push((p.to_vec(), o));
            if !cur.advance().unwrap() {
                break;
            }
        }
        out
    }

    #[test]
    fn rectangular_cursor_order_and_count() {
        let b = box_bounds(&[(0, 2), (1, 3)]);
        let got = collect(&b, 2, 2);
        assert_eq!(got.len(), 3 * 3 * 2);
        // Offset-minor, prefix lexicographic.
        assert_eq!(got[0], (vec![0, 1], 0));
        assert_eq!(got[1], (vec![0, 1], 1));
        assert_eq!(got[2], (vec![0, 2], 0));
        assert_eq!(got.last().unwrap(), &(vec![2, 3], 1));
        assert_eq!(group_count(&b, 2, 2).unwrap(), 18);
        assert_eq!(prefix_count(&b, 2).unwrap(), 9);
    }

    #[test]
    fn triangular_cursor_skips_and_counts_exactly() {
        let b = triangle_bounds(4);
        let got = collect(&b, 2, 1);
        // (x0, x1) with 0 <= x1 <= x0 <= 4: 1+2+3+4+5 = 15 prefixes.
        assert_eq!(got.len(), 15);
        assert_eq!(prefix_count(&b, 2).unwrap(), 15);
        for w in got.windows(2) {
            assert!(w[0].0 < w[1].0, "not lexicographic: {w:?}");
        }
    }

    #[test]
    fn zero_prefix_levels_yield_one_prefix_per_offset() {
        let b = box_bounds(&[(0, 5)]);
        let got = collect(&b, 0, 3);
        assert_eq!(
            got,
            vec![(vec![], 0), (vec![], 1), (vec![], 2)],
            "z == 0 must yield exactly the offset table"
        );
        assert_eq!(group_count(&b, 0, 3).unwrap(), 3);
    }

    #[test]
    fn empty_space_exhausts_immediately() {
        let b = box_bounds(&[(5, 2), (0, 3)]);
        let mut cur = GroupCursor::new(&b, 2, 2).unwrap();
        assert!(cur.current().is_none());
        assert!(!cur.advance().unwrap());
        assert_eq!(group_count(&b, 2, 2).unwrap(), 0);
        assert!(!cur.seek(0).unwrap());
    }

    #[test]
    fn seek_matches_advance_on_rectangle_and_triangle() {
        for (b, z, noff) in [
            (box_bounds(&[(0, 3), (-2, 2)]), 2usize, 3usize),
            (triangle_bounds(5), 2, 2),
        ] {
            let all = collect(&b, z, noff);
            let total = group_count(&b, z, noff).unwrap();
            assert_eq!(all.len() as u64, total);
            for k in 0..total {
                let mut cur = GroupCursor::new(&b, z, noff).unwrap();
                assert!(cur.seek(k).unwrap(), "seek({k}) of {total}");
                let (p, o) = cur.current().unwrap();
                assert_eq!((p.to_vec(), o), all[k as usize], "seek({k})");
                assert_eq!(cur.position(), k);
                // And the cursor keeps advancing correctly from there.
                if cur.advance().unwrap() {
                    let (p, o) = cur.current().unwrap();
                    assert_eq!((p.to_vec(), o), all[k as usize + 1]);
                }
            }
            let mut cur = GroupCursor::new(&b, z, noff).unwrap();
            assert!(!cur.seek(total).unwrap(), "seek past the end");
        }
    }

    #[test]
    fn schedule_ranges_partition_exactly() {
        let s = Schedule::default();
        for (total, threads) in [(0u64, 4usize), (1, 4), (7, 2), (1000, 3), (16, 16)] {
            let ranges = s.ranges(total, threads);
            let mut expect = 0u64;
            for &(a, b) in &ranges {
                assert_eq!(a, expect, "ranges must be contiguous");
                assert!(b > a, "ranges must be non-empty");
                expect = b;
            }
            assert_eq!(expect, total, "ranges must cover 0..total");
            if total > 0 {
                assert!(ranges.len() as u64 <= (threads * s.chunks_per_thread) as u64 + 1);
            }
        }
    }

    #[test]
    fn schedule_env_parsing() {
        assert_eq!(
            Schedule::from_env_value(None).chunks_per_thread,
            DEFAULT_CHUNKS_PER_THREAD
        );
        assert_eq!(Schedule::from_env_value(Some("8")).chunks_per_thread, 8);
        assert_eq!(Schedule::from_env_value(Some(" 2 ")).chunks_per_thread, 2);
        // Garbage and zero fall back to the default.
        assert_eq!(
            Schedule::from_env_value(Some("0")).chunks_per_thread,
            DEFAULT_CHUNKS_PER_THREAD
        );
        assert_eq!(
            Schedule::from_env_value(Some("many")).chunks_per_thread,
            DEFAULT_CHUNKS_PER_THREAD
        );
    }

    #[test]
    fn live_group_gauges_track_construction() {
        reset_peak_live_groups();
        let base = live_groups();
        let g1 = crate::exec::GroupSpec::new(vec![1], pdm_matrix::vec::IVec::zeros(0));
        let g2 = g1.clone();
        assert_eq!(live_groups(), base + 2);
        assert!(peak_live_groups() >= base + 2);
        drop(g1);
        drop(g2);
        assert_eq!(live_groups(), base);
    }
}
