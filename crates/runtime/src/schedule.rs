//! Streaming enumeration and range scheduling of independent groups.
//!
//! The parallel plans of this crate expose their work as *groups* — one
//! per (doall-prefix value × Theorem-2 partition offset). The historical
//! executors materialized the entire cross product as a `Vec` before the
//! first iteration ran, an `O(#groups × depth)` allocation spike that
//! dominates memory on deep doall nests (a depth-4 all-doall nest with
//! extent 18 has 104 976 groups). This module replaces that with a
//! **streaming enumerator**: schedulers hand workers contiguous *ranges*
//! of the group index space, and each worker walks its range with a
//! [`GroupCursor`] holding `O(depth)` state.
//!
//! # Cursor state
//!
//! A [`GroupCursor`] stores only the current doall prefix (one `i64` per
//! doall level), the cached `(lo, hi)` bounds of each prefix level, the
//! current offset index, and the linear position. [`GroupCursor::advance`]
//! is an odometer step: the offset index increments first and, on wrap,
//! the innermost prefix level that has room is bumped while deeper levels
//! re-enter at their (freshly evaluated) lower bounds — prefixes whose
//! inner ranges are empty are skipped exactly as the materialized
//! enumeration skipped them. The sequence of `(prefix, offset)` pairs is
//! **identical** — same order, same multiset — to the rows of the
//! deprecated materializing `groups()` helpers.
//!
//! # Seek semantics
//!
//! [`GroupCursor::seek`] positions the cursor at the `k`-th group of that
//! sequence. Linear index `k` decomposes as `k = prefix_ordinal ×
//! num_offsets + offset_index`. The prefix ordinal is resolved level by
//! level: when every level below is **prefix-independent** (its bound
//! rows read no outer variable), subtree sizes are equal and the level
//! value is a single division — `O(depth)` total for rectangular bounds.
//! Otherwise the cursor scans the level's values accumulating exact
//! subtree counts, recursing over the prefix-dependent levels:
//! `O(depth × extent)` with one dependent level, and in the worst case
//! (every level dependent) proportional to the dependent prefix subspace
//! itself. Range scheduling therefore positions cursors two ways
//! ([`plan_range_tasks`]): rectangular prefixes pay one `O(depth)` seek
//! per range, while prefix-dependent prefixes are split by **walking one
//! cursor and cloning its `O(depth)` state at each range boundary**
//! ([`GroupCursor::advance_to`]) — one `O(#groups)` walk total instead
//! of a counting seek per range. `seek(k)` agrees with `k` calls to
//! [`GroupCursor::advance`] from the start, and cursor-clone splitting
//! agrees with `seek`, both asserted by the property tests on random
//! nests.
//!
//! # Counting
//!
//! [`group_count`] / [`prefix_count`] size the schedule **before** any
//! enumeration: extents of the longest prefix-independent level suffix
//! multiply arithmetically, and only the (possibly empty) dependent head
//! is walked. On a rectangular nest the count is pure arithmetic.
//!
//! # Scheduling
//!
//! [`Schedule::ranges`] splits `0..group_count` into contiguous
//! sub-ranges, several per worker so the work-stealing executor always
//! has spare chunks to steal: `threads × chunks_per_thread` target
//! chunks (default [`DEFAULT_CHUNKS_PER_THREAD`] = 4). Chunk sizing is
//! **steal-aware** ([`Schedule::ranges_for`]): when the group space is
//! cost-skewed — some trailing (sequential) level's bounds read a doall
//! prefix variable, so per-group cost varies across the space
//! ([`cost_skewed`]) — the split targets `threads ×
//! steal_chunks_per_thread` finer chunks (default
//! [`DEFAULT_STEAL_CHUNKS_PER_THREAD`] = 16) so workers stuck behind fat
//! groups leave plenty for idle threads to steal. Rectangular nests keep
//! the coarse split. Override with the `PDM_CHUNKS_PER_THREAD` and
//! `PDM_STEAL_CHUNKS_PER_THREAD` environment variables (any positive
//! integer; larger values smooth imbalanced group costs at the price of
//! more per-range cursor positioning). Each range is walked by one task
//! with one cursor and one reused scratch, so peak simultaneously-live
//! group state stays `O(threads × chunks_per_thread)` (or the steal
//! variant on skewed spaces) instead of `O(#groups)`.
//!
//! # When materializing is still appropriate
//!
//! The `groups()` shims ([`crate::exec::groups`],
//! [`crate::compile::CompiledPlan::groups`]) survive as thin
//! `cursor → Vec` collectors for tests, debugging, and group-table
//! inspection (e.g. printing a plan's groups). Production execution paths
//! never call them; new code should reach for a cursor or
//! [`Schedule::ranges`] instead.
//!
//! # Instrumentation
//!
//! [`GroupSpec`](crate::exec::GroupSpec) and
//! [`CompiledGroup`](crate::compile::CompiledGroup) have instrumented
//! constructors feeding the [`live_groups`] / [`peak_live_groups`]
//! gauges, which the `bench_groups` snapshot and the allocation-spike
//! regression test read.

use crate::{Result, RuntimeError};
use pdm_matrix::MatrixError;
use pdm_poly::bounds::LoopBounds;
use std::sync::atomic::{AtomicI64, Ordering};

fn overflow() -> RuntimeError {
    RuntimeError::Matrix(MatrixError::Overflow)
}

/// Inclusive-range width as a `u64` (`0` when empty).
fn width(lo: i64, hi: i64) -> Result<u64> {
    if hi < lo {
        return Ok(0);
    }
    u64::try_from(hi as i128 - lo as i128 + 1).map_err(|_| overflow())
}

/// Per-level bounds a cursor can walk: evaluate a level's `(lo, hi)`
/// range at a point and report whether the range depends on outer levels.
///
/// Implemented by [`pdm_poly::bounds::LoopBounds`] (interpreter paths)
/// and [`crate::compile::CompiledBounds`] (compiled engine), so one
/// cursor serves both executors.
pub trait PrefixBounds {
    /// Number of loop levels.
    fn dim(&self) -> usize;

    /// Effective `(lo, hi)` of level `level` at point `x`. `x` must be
    /// padded to full dimension; only `x[..level]` is read through
    /// nonzero coefficients.
    fn level_range(&self, level: usize, x: &[i64]) -> Result<(i64, i64)>;

    /// Does level `level`'s range read any outer loop variable? `false`
    /// means the level's extent is one fixed interval, enabling the
    /// arithmetic counting and O(1)-per-level seek fast paths.
    fn prefix_dependent(&self, level: usize) -> bool;

    /// Does level `level`'s range read any of the first `z` (doall
    /// prefix) variables specifically? Distinct from
    /// [`PrefixBounds::prefix_dependent`]: a trailing sequential level
    /// whose bounds read only *other trailing* variables has the same
    /// extent under every prefix, so it does not skew per-group cost.
    /// The default conservatively falls back to `prefix_dependent`;
    /// implementations with access to bound coefficients answer
    /// precisely.
    fn reads_prefix(&self, level: usize, _z: usize) -> bool {
        self.prefix_dependent(level)
    }
}

impl PrefixBounds for LoopBounds {
    fn dim(&self) -> usize {
        LoopBounds::dim(self)
    }

    fn level_range(&self, level: usize, x: &[i64]) -> Result<(i64, i64)> {
        let lb = self.level(level);
        Ok((lb.lower(x)?, lb.upper(x)?))
    }

    fn prefix_dependent(&self, level: usize) -> bool {
        let lb = self.level(level);
        lb.lowers
            .iter()
            .chain(&lb.uppers)
            .any(|b| b.num.coeffs.iter().any(|&c| c != 0))
    }

    fn reads_prefix(&self, level: usize, z: usize) -> bool {
        let lb = self.level(level);
        lb.lowers
            .iter()
            .chain(&lb.uppers)
            .any(|b| b.num.coeffs.iter().take(z).any(|&c| c != 0))
    }
}

/// Streaming enumerator over a plan's independent groups.
///
/// Walks doall-prefix values in lexicographic order crossed with offset
/// indices `0..num_offsets` (offset-minor), holding `O(depth)` state —
/// never more than one group. See the [module docs](self) for the state,
/// ordering, and seek semantics.
#[derive(Debug)]
pub struct GroupCursor<'a, B: PrefixBounds> {
    bounds: &'a B,
    /// Number of leading (doall) levels enumerated.
    z: usize,
    num_offsets: usize,
    /// Full-width point; entries `>= z` stay zero.
    x: Vec<i64>,
    /// Cached per-level lower bounds along the current prefix.
    lo: Vec<i64>,
    /// Cached per-level upper bounds along the current prefix.
    hi: Vec<i64>,
    /// Current offset index (`< num_offsets`).
    offset: usize,
    /// Linear index of the current group.
    pos: u64,
    /// Smallest `j` such that levels `j..z` are all prefix-independent.
    indep_from: usize,
    exhausted: bool,
}

// Manual impl: the derive would demand `B: Clone`, but the cursor only
// holds `&'a B` — cloning copies the `O(depth)` walk state and shares
// the borrow. Cheap clones are what make cursor-clone range splitting
// ([`plan_range_tasks`]) an `O(#groups)` single pass.
impl<'a, B: PrefixBounds> Clone for GroupCursor<'a, B> {
    fn clone(&self) -> Self {
        GroupCursor {
            bounds: self.bounds,
            z: self.z,
            num_offsets: self.num_offsets,
            x: self.x.clone(),
            lo: self.lo.clone(),
            hi: self.hi.clone(),
            offset: self.offset,
            pos: self.pos,
            indep_from: self.indep_from,
            exhausted: self.exhausted,
        }
    }
}

impl<'a, B: PrefixBounds> GroupCursor<'a, B> {
    /// Open a cursor over the first `z` levels of `bounds` crossed with
    /// `num_offsets` partition offsets, positioned at group 0 (or already
    /// exhausted when the prefix space is empty). `num_offsets` must be
    /// at least 1 — unpartitioned plans pass a single empty offset.
    pub fn new(bounds: &'a B, z: usize, num_offsets: usize) -> Result<Self> {
        if num_offsets == 0 {
            return Err(RuntimeError::Core(
                "group cursor needs a non-empty offset table".into(),
            ));
        }
        let n = bounds.dim();
        debug_assert!(z <= n, "doall prefix exceeds nest depth");
        let mut indep_from = z;
        while indep_from > 0 && !bounds.prefix_dependent(indep_from - 1) {
            indep_from -= 1;
        }
        let mut cur = GroupCursor {
            bounds,
            z,
            num_offsets,
            x: vec![0; n],
            lo: vec![0; z],
            hi: vec![0; z],
            offset: 0,
            pos: 0,
            indep_from,
            exhausted: false,
        };
        if !cur.first_from(0)? {
            cur.exhausted = true;
        }
        Ok(cur)
    }

    /// The current `(prefix, offset_index)` pair, or `None` once every
    /// group has been yielded.
    #[inline]
    pub fn current(&self) -> Option<(&[i64], usize)> {
        if self.exhausted {
            None
        } else {
            Some((&self.x[..self.z], self.offset))
        }
    }

    /// Linear index of the current group (meaningful while
    /// [`GroupCursor::current`] is `Some`).
    #[inline]
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Has the cursor run past the last group?
    #[inline]
    pub fn is_exhausted(&self) -> bool {
        self.exhausted
    }

    /// Step to the next group. Returns `false` (and exhausts the cursor)
    /// when the current group was the last.
    pub fn advance(&mut self) -> Result<bool> {
        if self.exhausted {
            return Ok(false);
        }
        self.offset += 1;
        if self.offset >= self.num_offsets {
            self.offset = 0;
            if !self.next_prefix()? {
                self.exhausted = true;
                return Ok(false);
            }
        }
        self.pos += 1;
        Ok(true)
    }

    /// Fill levels `j..z` with their minimal feasible values, bumping
    /// outer levels (within their cached `hi`) whenever an inner range
    /// comes up empty. Returns `false` when no feasible prefix remains.
    fn first_from(&mut self, mut j: usize) -> Result<bool> {
        loop {
            if j == self.z {
                return Ok(true);
            }
            let (lo, hi) = self.bounds.level_range(j, &self.x)?;
            if lo <= hi {
                self.lo[j] = lo;
                self.hi[j] = hi;
                self.x[j] = lo;
                j += 1;
            } else {
                loop {
                    if j == 0 {
                        return Ok(false);
                    }
                    j -= 1;
                    if self.x[j] < self.hi[j] {
                        self.x[j] += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
    }

    /// Odometer-bump to the lexicographically next feasible prefix.
    fn next_prefix(&mut self) -> Result<bool> {
        let mut j = self.z;
        loop {
            if j == 0 {
                return Ok(false);
            }
            j -= 1;
            if self.x[j] < self.hi[j] {
                self.x[j] += 1;
                break;
            }
        }
        self.first_from(j + 1)
    }

    /// Are levels `j..z` all prefix-independent?
    #[inline]
    fn indep_below(&self, j: usize) -> bool {
        j >= self.indep_from
    }

    /// Product of the (constant) extents of the prefix-independent levels
    /// `j..z` — the completions below any value at level `j − 1`.
    fn tail_product(&self, j: usize) -> Result<u64> {
        debug_assert!(self.indep_below(j));
        let mut t: u64 = 1;
        for k in j..self.z {
            let (lo, hi) = self.bounds.level_range(k, &self.x)?;
            t = t.checked_mul(width(lo, hi)?).ok_or_else(overflow)?;
            if t == 0 {
                return Ok(0);
            }
        }
        Ok(t)
    }

    /// Exact number of prefix completions of levels `j..z` given the
    /// values currently in `x[..j]` (counting recursion over the
    /// prefix-dependent levels only).
    fn count_completions(&mut self, j: usize) -> Result<u64> {
        if self.indep_below(j) {
            return self.tail_product(j);
        }
        let (lo, hi) = self.bounds.level_range(j, &self.x)?;
        let mut total: u64 = 0;
        let mut v = lo;
        while v <= hi {
            self.x[j] = v;
            total = total
                .checked_add(self.count_completions(j + 1)?)
                .ok_or_else(overflow)?;
            if v == hi {
                break;
            }
            v += 1;
        }
        Ok(total)
    }

    /// Position the cursor at the group with linear index `target`.
    /// Returns `false` (and exhausts the cursor) when `target` is past
    /// the last group. `O(depth)` when all prefix levels are
    /// independent; with prefix-dependent levels it counts subtrees
    /// exactly — see the [module docs](self) for the cost model.
    pub fn seek(&mut self, target: u64) -> Result<bool> {
        self.exhausted = false;
        self.pos = target;
        self.offset = (target % self.num_offsets as u64) as usize;
        let mut p = target / self.num_offsets as u64;
        for j in 0..self.z {
            let (lo, hi) = self.bounds.level_range(j, &self.x)?;
            self.lo[j] = lo;
            self.hi[j] = hi;
            if lo > hi {
                self.exhausted = true;
                return Ok(false);
            }
            if self.indep_below(j + 1) {
                let sub = self.tail_product(j + 1)?;
                if sub == 0 {
                    self.exhausted = true;
                    return Ok(false);
                }
                let step = p / sub;
                if step >= width(lo, hi)? {
                    self.exhausted = true;
                    return Ok(false);
                }
                self.x[j] = lo + step as i64;
                p %= sub;
            } else {
                let mut v = lo;
                let mut found = false;
                while v <= hi {
                    self.x[j] = v;
                    let c = self.count_completions(j + 1)?;
                    // `count_completions` scribbles on deeper `x` slots;
                    // they are rewritten by the deeper loop iterations.
                    self.x[j] = v;
                    if p < c {
                        found = true;
                        break;
                    }
                    p -= c;
                    if v == hi {
                        break;
                    }
                    v += 1;
                }
                if !found {
                    self.exhausted = true;
                    return Ok(false);
                }
            }
        }
        if self.z == 0 && p > 0 {
            self.exhausted = true;
            return Ok(false);
        }
        Ok(true)
    }

    /// Advance (never rewind) until the cursor sits at linear index
    /// `target`, or return `false` once the space is exhausted first.
    /// Unlike [`GroupCursor::seek`] this never counts subtrees — each
    /// step is one odometer bump — so walking one cursor across
    /// ascending range boundaries and cloning its `O(depth)` state at
    /// each one costs `O(#groups)` in total, independent of how many
    /// prefix levels are dependent. Requires `target ≥ position()`.
    pub fn advance_to(&mut self, target: u64) -> Result<bool> {
        debug_assert!(
            self.exhausted || target >= self.pos,
            "advance_to cannot rewind (at {}, asked for {target})",
            self.pos
        );
        while !self.exhausted && self.pos < target {
            self.advance()?;
        }
        Ok(!self.exhausted)
    }
}

/// Drive `f(position, prefix, offset_index)` over every group in the
/// contiguous range `start..end` with one streaming cursor — the shared
/// skeleton of every range scheduler (interpreted, compiled, checked)
/// and of the materializing `groups()` shims (which pass
/// `end = u64::MAX` to walk to exhaustion). The prefix slice is only
/// valid for the duration of each call.
pub fn for_each_group_in_range<B, F>(
    bounds: &B,
    z: usize,
    num_offsets: usize,
    start: u64,
    end: u64,
    mut f: F,
) -> Result<()>
where
    B: PrefixBounds,
    F: FnMut(u64, &[i64], usize) -> Result<()>,
{
    let mut cur = GroupCursor::new(bounds, z, num_offsets)?;
    if start > 0 && !cur.seek(start)? {
        return Ok(());
    }
    drive_cursor(&mut cur, end, &mut f)
}

/// Walk `cur` up to (exclusive) linear index `end`, calling
/// `f(position, prefix, offset_index)` per group.
fn drive_cursor<B, F>(cur: &mut GroupCursor<'_, B>, end: u64, f: &mut F) -> Result<()>
where
    B: PrefixBounds,
    F: FnMut(u64, &[i64], usize) -> Result<()>,
{
    while cur.position() < end {
        let pos = cur.position();
        match cur.current() {
            Some((prefix, o)) => f(pos, prefix, o)?,
            None => break,
        }
        if !cur.advance()? {
            break;
        }
    }
    Ok(())
}

/// One schedulable unit of a group space: a contiguous linear range with
/// a [`GroupCursor`] already positioned at its start. Tasks are
/// [`Clone`] (an `O(depth)` copy), so a parallel region can execute a
/// task from a shared reference by cloning the embedded cursor.
#[derive(Debug)]
pub struct RangeTask<'a, B: PrefixBounds> {
    cursor: GroupCursor<'a, B>,
    end: u64,
}

// Manual impl for the same reason as [`GroupCursor`]'s: no `B: Clone`
// bound — the task shares the bounds borrow and copies cursor state.
impl<'a, B: PrefixBounds> Clone for RangeTask<'a, B> {
    fn clone(&self) -> Self {
        RangeTask {
            cursor: self.cursor.clone(),
            end: self.end,
        }
    }
}

impl<B: PrefixBounds> RangeTask<'_, B> {
    /// First linear index of the range.
    pub fn start(&self) -> u64 {
        self.cursor.position()
    }

    /// One-past-last linear index of the range.
    pub fn end(&self) -> u64 {
        self.end
    }

    /// Run `f(position, prefix, offset_index)` over every group in the
    /// range. The pre-positioned cursor is cloned, so a task can be
    /// executed repeatedly (and from `&self` inside a parallel region).
    pub fn for_each<F>(&self, mut f: F) -> Result<()>
    where
        F: FnMut(u64, &[i64], usize) -> Result<()>,
    {
        let mut cur = self.cursor.clone();
        drive_cursor(&mut cur, self.end, &mut f)
    }
}

/// Per-group cost varies across the group space exactly when some
/// trailing (sequential) level's bounds read a doall prefix variable:
/// the trailing iteration count — the work one group does — is then a
/// function of which prefix the group carries. Levels reading only
/// other trailing variables contribute the same trailing volume to
/// every group and do not skew. [`Schedule::ranges_for`] splits skewed
/// spaces finer so work stealing has something to take.
pub fn cost_skewed<B: PrefixBounds>(bounds: &B, z: usize) -> bool {
    (z..bounds.dim()).any(|level| bounds.reads_prefix(level, z))
}

/// Split a group space into steal-aware [`RangeTask`]s: range sizing by
/// [`Schedule::ranges_for`] (finer when [`cost_skewed`]), cursor
/// positioning by per-range `O(depth)` [`GroupCursor::seek`] when every
/// prefix level is independent, and by the cursor-clone walk
/// ([`GroupCursor::advance_to`] + clone at each boundary) when seeks
/// would have to count prefix-dependent subtrees.
pub fn plan_range_tasks<'a, B: PrefixBounds>(
    bounds: &'a B,
    z: usize,
    num_offsets: usize,
    sched: &Schedule,
    threads: usize,
) -> Result<Vec<RangeTask<'a, B>>> {
    let total = group_count(bounds, z, num_offsets)?;
    let ranges = sched.ranges_for(bounds, z, total, threads);
    let mut tasks = Vec::with_capacity(ranges.len());
    if ranges.is_empty() {
        return Ok(tasks);
    }
    if (0..z).any(|level| bounds.prefix_dependent(level)) {
        let mut walker = GroupCursor::new(bounds, z, num_offsets)?;
        for &(start, end) in &ranges {
            walker.advance_to(start)?;
            tasks.push(RangeTask {
                cursor: walker.clone(),
                end,
            });
        }
    } else {
        for &(start, end) in &ranges {
            let mut cursor = GroupCursor::new(bounds, z, num_offsets)?;
            cursor.seek(start)?;
            tasks.push(RangeTask { cursor, end });
        }
    }
    Ok(tasks)
}

/// Number of doall-prefix value combinations over the first `z` levels of
/// `bounds`, without enumerating the prefix-independent suffix: constant
/// extents multiply arithmetically and only the dependent head levels are
/// walked. Pure arithmetic on rectangular nests.
pub fn prefix_count<B: PrefixBounds>(bounds: &B, z: usize) -> Result<u64> {
    let mut j_star = z;
    while j_star > 0 && !bounds.prefix_dependent(j_star - 1) {
        j_star -= 1;
    }
    let x = vec![0i64; bounds.dim()];
    let mut tail: u64 = 1;
    for k in j_star..z {
        let (lo, hi) = bounds.level_range(k, &x)?;
        tail = tail.checked_mul(width(lo, hi)?).ok_or_else(overflow)?;
        if tail == 0 {
            return Ok(0);
        }
    }
    let head = if j_star == 0 {
        1
    } else {
        // Walk only the dependent head levels (offset dimension unused).
        let mut cur = GroupCursor::new(bounds, j_star, 1)?;
        let mut c: u64 = 0;
        while cur.current().is_some() {
            c = c.checked_add(1).ok_or_else(overflow)?;
            cur.advance()?;
        }
        c
    };
    head.checked_mul(tail).ok_or_else(overflow)
}

/// Total group count: [`prefix_count`] × `num_offsets`. This is the
/// length of the sequence a [`GroupCursor`] yields and the exclusive
/// upper bound of the index space [`Schedule::ranges`] splits.
pub fn group_count<B: PrefixBounds>(bounds: &B, z: usize, num_offsets: usize) -> Result<u64> {
    prefix_count(bounds, z)?
        .checked_mul(num_offsets as u64)
        .ok_or_else(overflow)
}

/// Default [`Schedule::chunks_per_thread`]: 4 contiguous ranges per
/// worker, the factor the pre-streaming chunked scheduler used.
pub const DEFAULT_CHUNKS_PER_THREAD: usize = 4;

/// Default [`Schedule::steal_chunks_per_thread`]: 16 ranges per worker
/// on cost-skewed group spaces, fine enough that a worker stuck behind
/// the fat end of a triangular nest leaves most of its share stealable.
pub const DEFAULT_STEAL_CHUNKS_PER_THREAD: usize = 16;

/// Range-splitting knobs for the streaming schedulers.
///
/// `chunks_per_thread` controls how many contiguous group ranges each
/// worker receives on *uniform-cost* (rectangular) group spaces;
/// `steal_chunks_per_thread` applies instead when the space is
/// [`cost_skewed`], splitting finer so the work-stealing executor's
/// idle threads always find a chunk to take. More chunks smooth
/// imbalanced group costs at the price of extra per-range cursor
/// positioning. Defaults are [`DEFAULT_CHUNKS_PER_THREAD`] and
/// [`DEFAULT_STEAL_CHUNKS_PER_THREAD`]; [`Schedule::from_env`] lets the
/// `PDM_CHUNKS_PER_THREAD` and `PDM_STEAL_CHUNKS_PER_THREAD`
/// environment variables override them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Schedule {
    /// Target contiguous group ranges per worker thread (≥ 1) on
    /// uniform-cost group spaces.
    pub chunks_per_thread: usize,
    /// Target ranges per worker thread on [`cost_skewed`] group spaces
    /// (effective value never drops below `chunks_per_thread`).
    pub steal_chunks_per_thread: usize,
}

impl Default for Schedule {
    fn default() -> Self {
        Schedule {
            chunks_per_thread: DEFAULT_CHUNKS_PER_THREAD,
            steal_chunks_per_thread: DEFAULT_STEAL_CHUNKS_PER_THREAD,
        }
    }
}

impl Schedule {
    /// The schedule configured by the environment:
    /// `PDM_CHUNKS_PER_THREAD` and `PDM_STEAL_CHUNKS_PER_THREAD`
    /// (positive integers) when set and parseable, defaults otherwise.
    pub fn from_env() -> Schedule {
        Self::from_env_value(
            std::env::var("PDM_CHUNKS_PER_THREAD").ok().as_deref(),
            std::env::var("PDM_STEAL_CHUNKS_PER_THREAD").ok().as_deref(),
        )
    }

    /// [`Schedule::from_env`] with the raw variable values injected —
    /// testable without mutating process environment.
    pub fn from_env_value(raw_chunks: Option<&str>, raw_steal: Option<&str>) -> Schedule {
        let parse = |raw: Option<&str>, default: usize| {
            raw.and_then(|s| s.trim().parse::<usize>().ok())
                .filter(|&c| c > 0)
                .unwrap_or(default)
        };
        Schedule {
            chunks_per_thread: parse(raw_chunks, DEFAULT_CHUNKS_PER_THREAD),
            steal_chunks_per_thread: parse(raw_steal, DEFAULT_STEAL_CHUNKS_PER_THREAD),
        }
    }

    /// Split `0..total` into contiguous `(start, end)` sub-ranges,
    /// targeting `threads × chunks_per_thread` chunks. Ranges cover the
    /// space exactly once, in order; `total == 0` yields no ranges.
    pub fn ranges(&self, total: u64, threads: usize) -> Vec<(u64, u64)> {
        Self::split(total, threads, self.chunks_per_thread)
    }

    /// Steal-aware [`Schedule::ranges`]: on a [`cost_skewed`] group
    /// space the split targets `threads × steal_chunks_per_thread`
    /// chunks so stealing has something to take; uniform spaces keep
    /// the coarse `chunks_per_thread` split.
    pub fn ranges_for<B: PrefixBounds>(
        &self,
        bounds: &B,
        z: usize,
        total: u64,
        threads: usize,
    ) -> Vec<(u64, u64)> {
        let chunks = if cost_skewed(bounds, z) {
            self.steal_chunks_per_thread.max(self.chunks_per_thread)
        } else {
            self.chunks_per_thread
        };
        Self::split(total, threads, chunks)
    }

    fn split(total: u64, threads: usize, chunks_per_thread: usize) -> Vec<(u64, u64)> {
        if total == 0 {
            return Vec::new();
        }
        let target = (threads.max(1) as u64).saturating_mul(chunks_per_thread.max(1) as u64);
        let chunk = total.div_ceil(target).max(1);
        let mut out = Vec::with_capacity(total.div_ceil(chunk) as usize);
        let mut start = 0u64;
        while start < total {
            let end = start.saturating_add(chunk).min(total);
            out.push((start, end));
            start = end;
        }
        out
    }
}

// ---------------------------------------------------------------------
// Live-group instrumentation.
// ---------------------------------------------------------------------

static LIVE_GROUPS: AtomicI64 = AtomicI64::new(0);
static PEAK_LIVE_GROUPS: AtomicI64 = AtomicI64::new(0);

/// Record a group-struct construction (called by the instrumented
/// constructors of [`crate::exec::GroupSpec`] and
/// [`crate::compile::CompiledGroup`]).
#[inline]
pub(crate) fn group_created() {
    let live = LIVE_GROUPS.fetch_add(1, Ordering::Relaxed) + 1;
    PEAK_LIVE_GROUPS.fetch_max(live, Ordering::Relaxed);
}

/// Record a group-struct drop.
#[inline]
pub(crate) fn group_dropped() {
    LIVE_GROUPS.fetch_sub(1, Ordering::Relaxed);
}

/// Currently-live instrumented group structs (process-wide gauge).
pub fn live_groups() -> i64 {
    LIVE_GROUPS.load(Ordering::Relaxed)
}

/// High-water mark of [`live_groups`] since the last
/// [`reset_peak_live_groups`] — the allocation-spike metric `bench_groups`
/// snapshots and the regression test bounds.
pub fn peak_live_groups() -> i64 {
    PEAK_LIVE_GROUPS.load(Ordering::Relaxed)
}

/// Reset the peak gauge to the current live count. Process-wide: callers
/// that need an isolated reading (tests, benches) must not race other
/// group-creating work.
pub fn reset_peak_live_groups() {
    PEAK_LIVE_GROUPS.store(LIVE_GROUPS.load(Ordering::Relaxed), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_poly::bounds::LoopBounds;
    use pdm_poly::expr::AffineExpr;
    use pdm_poly::system::System;

    /// Bounds of a rectangular box `lo_k ≤ x_k ≤ hi_k`.
    fn box_bounds(ranges: &[(i64, i64)]) -> LoopBounds {
        let n = ranges.len();
        let mut s = System::universe(n);
        for (k, &(lo, hi)) in ranges.iter().enumerate() {
            s.add_range(k, lo, hi).unwrap();
        }
        LoopBounds::from_system(&s).unwrap()
    }

    /// Bounds of the triangle `0 ≤ x_0 ≤ n`, `0 ≤ x_1 ≤ x_0`.
    fn triangle_bounds(n: i64) -> LoopBounds {
        let mut s = System::universe(2);
        s.add_range(0, 0, n).unwrap();
        let mut c = vec![0i64; 2];
        c[1] = 1;
        s.add_ge0(AffineExpr::new(pdm_matrix::vec::IVec(c), 0))
            .unwrap();
        // x_0 - x_1 >= 0
        s.add_ge0(AffineExpr::new(pdm_matrix::vec::IVec(vec![1, -1]), 0))
            .unwrap();
        LoopBounds::from_system(&s).unwrap()
    }

    fn collect(bounds: &LoopBounds, z: usize, noff: usize) -> Vec<(Vec<i64>, usize)> {
        let mut cur = GroupCursor::new(bounds, z, noff).unwrap();
        let mut out = Vec::new();
        while let Some((p, o)) = cur.current() {
            out.push((p.to_vec(), o));
            if !cur.advance().unwrap() {
                break;
            }
        }
        out
    }

    #[test]
    fn rectangular_cursor_order_and_count() {
        let b = box_bounds(&[(0, 2), (1, 3)]);
        let got = collect(&b, 2, 2);
        assert_eq!(got.len(), 3 * 3 * 2);
        // Offset-minor, prefix lexicographic.
        assert_eq!(got[0], (vec![0, 1], 0));
        assert_eq!(got[1], (vec![0, 1], 1));
        assert_eq!(got[2], (vec![0, 2], 0));
        assert_eq!(got.last().unwrap(), &(vec![2, 3], 1));
        assert_eq!(group_count(&b, 2, 2).unwrap(), 18);
        assert_eq!(prefix_count(&b, 2).unwrap(), 9);
    }

    #[test]
    fn triangular_cursor_skips_and_counts_exactly() {
        let b = triangle_bounds(4);
        let got = collect(&b, 2, 1);
        // (x0, x1) with 0 <= x1 <= x0 <= 4: 1+2+3+4+5 = 15 prefixes.
        assert_eq!(got.len(), 15);
        assert_eq!(prefix_count(&b, 2).unwrap(), 15);
        for w in got.windows(2) {
            assert!(w[0].0 < w[1].0, "not lexicographic: {w:?}");
        }
    }

    #[test]
    fn zero_prefix_levels_yield_one_prefix_per_offset() {
        let b = box_bounds(&[(0, 5)]);
        let got = collect(&b, 0, 3);
        assert_eq!(
            got,
            vec![(vec![], 0), (vec![], 1), (vec![], 2)],
            "z == 0 must yield exactly the offset table"
        );
        assert_eq!(group_count(&b, 0, 3).unwrap(), 3);
    }

    #[test]
    fn empty_space_exhausts_immediately() {
        let b = box_bounds(&[(5, 2), (0, 3)]);
        let mut cur = GroupCursor::new(&b, 2, 2).unwrap();
        assert!(cur.current().is_none());
        assert!(!cur.advance().unwrap());
        assert_eq!(group_count(&b, 2, 2).unwrap(), 0);
        assert!(!cur.seek(0).unwrap());
    }

    #[test]
    fn seek_matches_advance_on_rectangle_and_triangle() {
        for (b, z, noff) in [
            (box_bounds(&[(0, 3), (-2, 2)]), 2usize, 3usize),
            (triangle_bounds(5), 2, 2),
        ] {
            let all = collect(&b, z, noff);
            let total = group_count(&b, z, noff).unwrap();
            assert_eq!(all.len() as u64, total);
            for k in 0..total {
                let mut cur = GroupCursor::new(&b, z, noff).unwrap();
                assert!(cur.seek(k).unwrap(), "seek({k}) of {total}");
                let (p, o) = cur.current().unwrap();
                assert_eq!((p.to_vec(), o), all[k as usize], "seek({k})");
                assert_eq!(cur.position(), k);
                // And the cursor keeps advancing correctly from there.
                if cur.advance().unwrap() {
                    let (p, o) = cur.current().unwrap();
                    assert_eq!((p.to_vec(), o), all[k as usize + 1]);
                }
            }
            let mut cur = GroupCursor::new(&b, z, noff).unwrap();
            assert!(!cur.seek(total).unwrap(), "seek past the end");
        }
    }

    #[test]
    fn schedule_ranges_partition_exactly() {
        let s = Schedule::default();
        for (total, threads) in [(0u64, 4usize), (1, 4), (7, 2), (1000, 3), (16, 16)] {
            let ranges = s.ranges(total, threads);
            let mut expect = 0u64;
            for &(a, b) in &ranges {
                assert_eq!(a, expect, "ranges must be contiguous");
                assert!(b > a, "ranges must be non-empty");
                expect = b;
            }
            assert_eq!(expect, total, "ranges must cover 0..total");
            if total > 0 {
                assert!(ranges.len() as u64 <= (threads * s.chunks_per_thread) as u64 + 1);
            }
        }
    }

    #[test]
    fn schedule_env_parsing() {
        assert_eq!(
            Schedule::from_env_value(None, None).chunks_per_thread,
            DEFAULT_CHUNKS_PER_THREAD
        );
        assert_eq!(
            Schedule::from_env_value(None, None).steal_chunks_per_thread,
            DEFAULT_STEAL_CHUNKS_PER_THREAD
        );
        assert_eq!(
            Schedule::from_env_value(Some("8"), None).chunks_per_thread,
            8
        );
        assert_eq!(
            Schedule::from_env_value(Some(" 2 "), Some("32")),
            Schedule {
                chunks_per_thread: 2,
                steal_chunks_per_thread: 32
            }
        );
        // Garbage and zero fall back to the defaults, independently.
        assert_eq!(
            Schedule::from_env_value(Some("0"), Some("nope")),
            Schedule::default()
        );
        assert_eq!(
            Schedule::from_env_value(Some("many"), None).chunks_per_thread,
            DEFAULT_CHUNKS_PER_THREAD
        );
    }

    /// Bounds of `0 ≤ x_0 ≤ n` with trailing `0 ≤ x_1 ≤ x_0`: treated
    /// with `z = 1`, the sequential level's extent grows with the doall
    /// prefix — the canonical cost-skewed shape.
    fn skewed_tail_bounds(n: i64) -> LoopBounds {
        triangle_bounds(n)
    }

    #[test]
    fn cost_skew_detection() {
        // Trailing level reads the doall prefix: skewed.
        let tri = skewed_tail_bounds(7);
        assert!(tri.reads_prefix(1, 1));
        assert!(cost_skewed(&tri, 1));
        // Fully-parallel triangle: every group is one iteration, so no
        // trailing level exists to skew, whatever the prefix shape.
        assert!(!cost_skewed(&tri, 2));
        // Rectangles are never skewed.
        let b = box_bounds(&[(0, 9), (0, 9)]);
        assert!(!cost_skewed(&b, 1));
        assert!(!cost_skewed(&b, 2));
        // A trailing level reading only another *trailing* variable
        // adds the same trailing volume to every group: not skewed,
        // even though the level is prefix_dependent.
        let mut s = System::universe(3);
        s.add_range(0, 0, 9).unwrap();
        s.add_range(1, 0, 5).unwrap();
        // 0 <= x_2 <= x_1 (x_1 is sequential when z = 1).
        s.add_ge0(AffineExpr::new(pdm_matrix::vec::IVec(vec![0, 0, 1]), 0))
            .unwrap();
        s.add_ge0(AffineExpr::new(pdm_matrix::vec::IVec(vec![0, 1, -1]), 0))
            .unwrap();
        let b = LoopBounds::from_system(&s).unwrap();
        assert!(b.prefix_dependent(2), "x_2 does read an outer variable");
        assert!(!b.reads_prefix(2, 1), "but not a doall-prefix one");
        assert!(!cost_skewed(&b, 1));
    }

    #[test]
    fn steal_aware_ranges_split_skewed_spaces_finer() {
        let sched = Schedule::default();
        let threads = 4;
        let total = 4096u64;
        // Skewed: the split targets steal_chunks_per_thread per worker.
        let tri = skewed_tail_bounds(7);
        let fine = sched.ranges_for(&tri, 1, total, threads);
        assert_eq!(
            fine.len(),
            threads * DEFAULT_STEAL_CHUNKS_PER_THREAD,
            "skewed spaces must split into steal-sized chunks"
        );
        // Rectangular: the coarse split is unchanged.
        let b = box_bounds(&[(0, 9), (0, 9)]);
        let coarse = sched.ranges_for(&b, 1, total, threads);
        assert_eq!(coarse, sched.ranges(total, threads));
        assert_eq!(coarse.len(), threads * DEFAULT_CHUNKS_PER_THREAD);
        // Both splits still partition the space exactly.
        for ranges in [&fine, &coarse] {
            let mut expect = 0u64;
            for &(a, b) in ranges.iter() {
                assert_eq!(a, expect);
                assert!(b > a);
                expect = b;
            }
            assert_eq!(expect, total);
        }
    }

    #[test]
    fn advance_to_agrees_with_seek() {
        let tri = triangle_bounds(6);
        let total = group_count(&tri, 2, 2).unwrap();
        let mut walker = GroupCursor::new(&tri, 2, 2).unwrap();
        for k in 0..total {
            let mut seeker = GroupCursor::new(&tri, 2, 2).unwrap();
            assert!(seeker.seek(k).unwrap());
            assert!(walker.advance_to(k).unwrap());
            assert_eq!(walker.current(), seeker.current(), "position {k}");
            assert_eq!(walker.position(), seeker.position());
        }
        assert!(!walker.advance_to(total).unwrap(), "walking past the end");
    }

    #[test]
    fn planned_tasks_cover_the_space_exactly() {
        let sched = Schedule::default();
        for (bounds, z, noff) in [
            (box_bounds(&[(0, 5), (1, 4)]), 2usize, 3usize),
            (triangle_bounds(9), 2, 2),
            (skewed_tail_bounds(9), 1, 2),
            (box_bounds(&[(3, 1)]), 1, 1), // empty space
        ] {
            let total = group_count(&bounds, z, noff).unwrap();
            let tasks = plan_range_tasks(&bounds, z, noff, &sched, 3).unwrap();
            let mut seen = Vec::new();
            for t in &tasks {
                assert!(t.start() <= t.end());
                t.for_each(|pos, prefix, o| {
                    // Every group matches what a seek to that position
                    // observes (pins clone-split against seek).
                    let mut c = GroupCursor::new(&bounds, z, noff).unwrap();
                    assert!(c.seek(pos).unwrap());
                    let (p, oo) = c.current().unwrap();
                    assert_eq!((p, oo), (prefix, o), "position {pos}");
                    seen.push(pos);
                    Ok(())
                })
                .unwrap();
            }
            assert_eq!(
                seen,
                (0..total).collect::<Vec<_>>(),
                "tasks must cover 0..{total} exactly once, in order"
            );
        }
    }

    #[test]
    fn live_group_gauges_track_construction() {
        reset_peak_live_groups();
        let base = live_groups();
        let g1 = crate::exec::GroupSpec::new(vec![1], pdm_matrix::vec::IVec::zeros(0));
        let g2 = g1.clone();
        assert_eq!(live_groups(), base + 2);
        assert!(peak_live_groups() >= base + 2);
        drop(g1);
        drop(g2);
        assert_eq!(live_groups(), base);
    }
}
