//! # pdm-runtime — executing loop nests: compile → schedule → execute
//!
//! The runtime realizes the schedules produced by `pdm-core` through two
//! executors with one contract — bit-identical `Memory` contents:
//!
//! **Reference interpreter** ([`exec`]). Walks the nest recursively,
//! re-evaluating expression trees and bounds at every point. Slow on
//! purpose: it is the executable *semantics*, kept obvious so the fast
//! path has something trustworthy to be checked against.
//!
//! **Compiled engine** ([`compile`] + [`program`]). The perf-critical
//! pipeline, lowering a `(LoopNest, ParallelPlan)` pair once and then
//! executing allocation-free:
//!
//! 1. *Compile* — body `Expr` trees flatten to postfix bytecode run on a
//!    reusable scratch stack; each array access composes with the
//!    row-major layout into a single linear form `base + coeff·i`
//!    ([`program::LinAccess`]); per-level Fourier–Motzkin bounds become
//!    raw coefficient rows ([`compile::CompiledBounds`]).
//! 2. *Schedule* — the independent-group index space (doall-prefix
//!    values × Theorem-2 partition offsets) is counted arithmetically
//!    ([`schedule::group_count`]) and split into contiguous ranges with
//!    steal-aware sizing ([`schedule::plan_range_tasks`] — finer chunks
//!    when per-group cost is skewed, so the work-stealing pool's idle
//!    threads always find something to take), one rayon task per range;
//!    each task arrives with a pre-positioned streaming
//!    [`schedule::GroupCursor`] with `O(depth)` state and one reused
//!    scratch — the group list is never materialized
//!    ([`compile::CompiledPlan::run_parallel`]).
//! 3. *Execute* — an iterative (non-recursive) walker advances the
//!    transformed point level by level; the `y·T⁻¹` back-substitution
//!    and every access's flat offset update by precomputed per-level
//!    deltas (strength reduction), and partition residues are computed
//!    once per level entry with lattice coordinates advancing by 1.
//!
//! **Staged program executor** ([`staged`]). Imperfect nests normalize
//! into multi-kernel [`pdm_core::program::ProgramPlan`]s; the staged
//! executors run them — interpreted or compiled — with kernels of one
//! DAG stage sharing a single rayon region (their streaming group
//! ranges flattened into one task list) and barriers **only** at stage
//! boundaries. [`staged::run_imperfect_sequential`] is the matching
//! reference semantics, and
//! [`checked::run_program_parallel_checked`] validates stage-level
//! independence with kernel-indexed race reports.
//!
//! Supporting modules:
//!
//! * [`schedule`] — the streaming group enumerator: prefix cursors,
//!   arithmetic group counting, `k`-th-group seeking, cursor-clone
//!   range planning, steal-aware range splitting
//!   (`PDM_CHUNKS_PER_THREAD` / `PDM_STEAL_CHUNKS_PER_THREAD`), and the
//!   live-group instrumentation the allocation-spike regression test
//!   reads;
//! * [`template`] — parametric serving: lower a `pdm-core`
//!   `PlanTemplate` at a size to a ready-to-run
//!   [`template::CompiledInstance`] (no re-analysis, no FM), with an LRU
//!   [`template::PlanCache`] keyed by nest structural hash so heavy
//!   traffic over one kernel shape pays planning once;
//! * [`sharded`] — the concurrent version of that cache:
//!   [`sharded::ShardedPlanCache`] shards entries across independent
//!   locks and deduplicates concurrent planning runs for the same shape
//!   through a single-flight layer (`pdm-service`'s template store);
//! * [`config`] — [`config::RuntimeConfig`]: every `PDM_*` environment
//!   knob parsed once per process instead of per executor call;
//! * [`memory`] — integer array storage sized from the nest's access
//!   footprint (conservative interval arithmetic over the iteration
//!   polyhedron), with a `Sync` shared view for `doall` execution;
//! * [`checked`] — a group-conflict race checker: every access is logged
//!   per group and cross-group conflicts (≥ 1 write) are reported;
//! * [`inspector`] — inspector/executor speculation for nests whose
//!   *subscripts* read symbolic parameters: the plan is computed on the
//!   parameter-free hull, and once per valuation [`inspector::audit`]
//!   walks the concrete access lattice to certify the parallel plan,
//!   refine it into stages, or reject it back to sequential order, with
//!   verdicts cached in [`sharded::VerdictCache`];
//! * [`equivalence`] — the soundness harness: two-way (sequential vs.
//!   interpreted-parallel) and three-way (… vs. compiled-parallel)
//!   output comparison, used all over the test suite and benches.
//!
//! The parallel executors' memory accesses are unsynchronized by design:
//! the dependence analysis *proves* cross-group independence, and that
//! proof is what the checker and the equivalence harness validate.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod checked;
pub mod compile;
pub mod config;
pub mod equivalence;
pub mod exec;
pub mod inspector;
pub mod memory;
pub mod program;
pub mod schedule;
pub mod sharded;
pub mod staged;
pub mod template;

pub use compile::{CompiledNest, CompiledPlan};
pub use config::RuntimeConfig;
pub use exec::{run_parallel, run_sequential, run_transformed_sequential};
pub use inspector::{audit, run_refined, run_with_verdict, Verdict};
pub use memory::Memory;
pub use schedule::{GroupCursor, Schedule};
pub use sharded::{CacheStats, ShardedPlanCache};
pub use staged::{
    run_imperfect_sequential, run_program_parallel, run_program_sequential, CompiledProgram,
};
pub use template::{CompiledInstance, InstantiateCompiled, PlanCache};

/// Errors from execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// Exact arithmetic failure.
    Matrix(pdm_matrix::MatrixError),
    /// Loop IR failure.
    Ir(pdm_loopir::IrError),
    /// Core pipeline failure.
    Core(String),
    /// An access fell outside the allocated array extents (always a bug in
    /// extent computation, surfaced loudly).
    OutOfBounds {
        /// Array name.
        array: String,
        /// Offending subscript.
        subscript: Vec<i64>,
    },
    /// The race checker found cross-group conflicts.
    RaceDetected {
        /// Number of conflicting cells.
        conflicts: usize,
        /// A sample description.
        sample: String,
    },
    /// A single-flight planning run died without producing a result —
    /// the leader panicked (or was otherwise torn down) mid-plan.
    /// Followers of the failed flight receive this instead of
    /// deadlocking; the shape is retryable (the in-flight entry is
    /// cleared, so the next request leads a fresh planning run).
    PlanningFailed(String),
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Matrix(e) => write!(f, "matrix error: {e}"),
            RuntimeError::Ir(e) => write!(f, "loop IR error: {e}"),
            RuntimeError::Core(m) => write!(f, "core error: {m}"),
            RuntimeError::OutOfBounds { array, subscript } => {
                write!(f, "access out of bounds: {array}{subscript:?}")
            }
            RuntimeError::RaceDetected { conflicts, sample } => {
                write!(f, "race detected on {conflicts} cells, e.g. {sample}")
            }
            RuntimeError::PlanningFailed(m) => {
                write!(f, "planning failed: {m} (retry the request)")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<pdm_matrix::MatrixError> for RuntimeError {
    fn from(e: pdm_matrix::MatrixError) -> Self {
        RuntimeError::Matrix(e)
    }
}

impl From<pdm_loopir::IrError> for RuntimeError {
    fn from(e: pdm_loopir::IrError) -> Self {
        RuntimeError::Ir(e)
    }
}

impl From<pdm_core::CoreError> for RuntimeError {
    fn from(e: pdm_core::CoreError) -> Self {
        RuntimeError::Core(e.to_string())
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, RuntimeError>;
