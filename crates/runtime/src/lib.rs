//! # pdm-runtime — executing loop nests, sequentially and in parallel
//!
//! The runtime realizes the schedules produced by `pdm-core`:
//!
//! * [`memory`] — integer array storage sized from the nest's access
//!   footprint (conservative interval arithmetic over the iteration
//!   polyhedron), with a `Sync` shared view for `doall` execution;
//! * [`exec`] — a sequential interpreter (the reference semantics) and a
//!   **rayon**-parallel executor that runs one task per independent group
//!   (doall-prefix value × Theorem-2 partition offset), each walking its
//!   iterations in transformed lexicographic order;
//! * [`checked`] — a group-conflict race checker: every access is logged
//!   per group and cross-group conflicts (≥ 1 write) are reported. A
//!   correct plan produces none; deliberately broken plans are caught
//!   (tested);
//! * [`equivalence`] — sequential-vs-parallel output comparison, the
//!   end-to-end soundness harness used all over the test suite and
//!   benches.
//!
//! The parallel executor's memory accesses are unsynchronized by design:
//! the dependence analysis *proves* cross-group independence, and that
//! proof is what the checker and the equivalence harness validate.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod checked;
pub mod equivalence;
pub mod exec;
pub mod memory;

pub use exec::{run_parallel, run_sequential, run_transformed_sequential};
pub use memory::Memory;

/// Errors from execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RuntimeError {
    /// Exact arithmetic failure.
    Matrix(pdm_matrix::MatrixError),
    /// Loop IR failure.
    Ir(pdm_loopir::IrError),
    /// Core pipeline failure.
    Core(String),
    /// An access fell outside the allocated array extents (always a bug in
    /// extent computation, surfaced loudly).
    OutOfBounds {
        /// Array name.
        array: String,
        /// Offending subscript.
        subscript: Vec<i64>,
    },
    /// The race checker found cross-group conflicts.
    RaceDetected {
        /// Number of conflicting cells.
        conflicts: usize,
        /// A sample description.
        sample: String,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::Matrix(e) => write!(f, "matrix error: {e}"),
            RuntimeError::Ir(e) => write!(f, "loop IR error: {e}"),
            RuntimeError::Core(m) => write!(f, "core error: {m}"),
            RuntimeError::OutOfBounds { array, subscript } => {
                write!(f, "access out of bounds: {array}{subscript:?}")
            }
            RuntimeError::RaceDetected { conflicts, sample } => {
                write!(f, "race detected on {conflicts} cells, e.g. {sample}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<pdm_matrix::MatrixError> for RuntimeError {
    fn from(e: pdm_matrix::MatrixError) -> Self {
        RuntimeError::Matrix(e)
    }
}

impl From<pdm_loopir::IrError> for RuntimeError {
    fn from(e: pdm_loopir::IrError) -> Self {
        RuntimeError::Ir(e)
    }
}

impl From<pdm_core::CoreError> for RuntimeError {
    fn from(e: pdm_core::CoreError) -> Self {
        RuntimeError::Core(e.to_string())
    }
}

/// Result alias.
pub type Result<T> = std::result::Result<T, RuntimeError>;
