//! Compile-once execution of loop nests and parallel plans.
//!
//! [`crate::exec`] interprets: every iteration re-walks the `Expr` tree,
//! re-evaluates affine bounds through allocating helpers, recomputes the
//! `y·T⁻¹` back-substitution with a full dot product, and queries the
//! partition residue twice per innermost point. This module lowers a
//! `(LoopNest, ParallelPlan)` pair **once** into a flat program and then
//! executes it with none of that per-iteration work:
//!
//! * the body becomes postfix bytecode with linearized accesses
//!   ([`crate::program`]);
//! * per-level loop bounds become [`CompiledBounds`] — raw coefficient
//!   rows evaluated by one fused dot product, no allocation;
//! * the `y → i = y·T⁻¹` back-substitution and every access's flat
//!   offset are updated **incrementally**: advancing transformed level
//!   `ℓ` by `δ` adds `δ·T⁻¹[ℓ]` to the original index vector and a
//!   precomputed `δ·(coeff·T⁻¹[ℓ])` to each flat offset — strength
//!   reduction of every address computation in the nest;
//! * Theorem-2 partition residues are computed once per level *entry*
//!   (they depend only on outer lattice coordinates), and the lattice
//!   coordinate `q_k` advances by 1 per step instead of being re-derived;
//! * the walk itself is an iterative state machine over pre-allocated
//!   level arrays — no recursion, no per-group allocation.
//!
//! Scheduling: [`CompiledPlan::run_parallel`] splits the group *index
//! space* (doall-prefix values × partition offsets) into contiguous
//! ranges with steal-aware sizing
//! ([`crate::schedule::plan_range_tasks`] — finer chunks when per-group
//! cost is skewed), one work-stealing rayon task per range; each task
//! arrives with a pre-positioned streaming
//! [`crate::schedule::GroupCursor`] and walks forward reusing one
//! [`crate::program::Scratch`] — the group list is never materialized.

use crate::memory::Memory;
use crate::program::{Program, Scratch};
use crate::schedule::{self, PrefixBounds, Schedule};
use crate::{Result, RuntimeError};
use pdm_core::partition::Partitioning;
use pdm_core::plan::ParallelPlan;
use pdm_loopir::nest::LoopNest;
use pdm_matrix::num::{ceil_div, floor_div};
use pdm_matrix::MatrixError;
use pdm_poly::bounds::{BoundExpr, LoopBounds};
use rayon::prelude::*;

fn overflow() -> RuntimeError {
    RuntimeError::Matrix(MatrixError::Overflow)
}

/// One side of a compiled bound: `num(x) / den` with `den > 0`.
#[derive(Debug, Clone)]
struct CBound {
    coeffs: Vec<i64>,
    constant: i64,
    den: i64,
}

impl CBound {
    fn lower(b: &BoundExpr) -> CBound {
        CBound {
            coeffs: b.num.coeffs.0.clone(),
            constant: b.num.constant,
            den: b.den,
        }
    }

    #[inline]
    fn num(&self, x: &[i64]) -> Result<i64> {
        let mut acc = self.constant as i128;
        for (c, v) in self.coeffs.iter().zip(x) {
            acc += *c as i128 * *v as i128;
        }
        i64::try_from(acc).map_err(|_| overflow())
    }
}

/// Per-level bounds compiled to coefficient rows (no allocation to
/// evaluate; inner coefficients are structurally zero, so evaluation may
/// pass the full current point).
///
/// Upstream bound generation prunes redundant constraints exactly
/// (`pdm_poly::bounds`), so the rows lowered here are irredundant — every
/// `max`/`min` candidate evaluated per level entry is necessary. The
/// [`CompiledBounds::rows`] count is therefore also the per-level
/// dot-product work, the quantity the `bench_fm` gate tracks.
#[derive(Debug, Clone)]
pub struct CompiledBounds {
    levels: Vec<(Vec<CBound>, Vec<CBound>)>,
}

impl CompiledBounds {
    /// Lower every level of `bounds`.
    pub fn compile(bounds: &LoopBounds) -> CompiledBounds {
        let levels = (0..bounds.dim())
            .map(|k| {
                let lb = bounds.level(k);
                (
                    lb.lowers.iter().map(CBound::lower).collect(),
                    lb.uppers.iter().map(CBound::lower).collect(),
                )
            })
            .collect();
        CompiledBounds { levels }
    }

    /// Total bound rows across all levels (lowers + uppers).
    pub fn rows(&self) -> usize {
        self.levels.iter().map(|(l, u)| l.len() + u.len()).sum()
    }

    /// Number of compiled levels.
    pub fn dim(&self) -> usize {
        self.levels.len()
    }

    /// Does level `k`'s range read any outer loop variable? (Inner
    /// coefficients are structurally zero, so any nonzero coefficient
    /// means prefix dependence.)
    pub fn prefix_dependent(&self, k: usize) -> bool {
        let (lowers, uppers) = &self.levels[k];
        lowers
            .iter()
            .chain(uppers)
            .any(|b| b.coeffs.iter().any(|&c| c != 0))
    }

    /// Does level `k`'s range read any of the first `z` variables
    /// specifically? Drives cost-skew detection
    /// ([`crate::schedule::cost_skewed`]): only trailing levels reading
    /// a *doall prefix* variable make per-group cost uneven.
    pub fn reads_prefix(&self, k: usize, z: usize) -> bool {
        let (lowers, uppers) = &self.levels[k];
        lowers
            .iter()
            .chain(uppers)
            .any(|b| b.coeffs.iter().take(z).any(|&c| c != 0))
    }

    /// Effective `(lo, hi)` of level `k` at the current point `x` (only
    /// `x[..k]` is read through nonzero coefficients).
    #[inline]
    pub fn range(&self, k: usize, x: &[i64]) -> Result<(i64, i64)> {
        let (lowers, uppers) = &self.levels[k];
        let mut lo: Option<i64> = None;
        for b in lowers {
            let v = ceil_div(b.num(x)?, b.den)?;
            lo = Some(lo.map_or(v, |c| c.max(v)));
        }
        let mut hi: Option<i64> = None;
        for b in uppers {
            let v = floor_div(b.num(x)?, b.den)?;
            hi = Some(hi.map_or(v, |c| c.min(v)));
        }
        match (lo, hi) {
            (Some(l), Some(h)) => Ok((l, h)),
            _ => Err(RuntimeError::Matrix(MatrixError::Unbounded)),
        }
    }
}

impl PrefixBounds for CompiledBounds {
    fn dim(&self) -> usize {
        CompiledBounds::dim(self)
    }

    fn level_range(&self, level: usize, x: &[i64]) -> Result<(i64, i64)> {
        self.range(level, x)
    }

    fn prefix_dependent(&self, level: usize) -> bool {
        CompiledBounds::prefix_dependent(self, level)
    }

    fn reads_prefix(&self, level: usize, z: usize) -> bool {
        CompiledBounds::reads_prefix(self, level, z)
    }
}

/// Reusable walk state: transformed point, lattice coordinates, level
/// uppers, and the program's [`Scratch`].
#[derive(Debug, Clone)]
pub struct PlanScratch {
    y: Vec<i64>,
    q: Vec<i64>,
    hi: Vec<i64>,
    inner: Scratch,
}

/// The shared compiled engine: walks a (possibly transformed) iteration
/// space executing the bytecode body with strength-reduced addressing.
#[derive(Debug, Clone)]
struct Engine {
    program: Program,
    /// Walk-space dimension (== nest depth).
    n: usize,
    /// Leading walk levels fixed per group (doall prefix; 0 when the
    /// engine drives the original nest).
    z: usize,
    bounds: CompiledBounds,
    /// `dorig[ℓ][i]`: change of original index `i` per unit step of walk
    /// level `ℓ` (a row of `T⁻¹`; identity for the original nest).
    dorig: Vec<Vec<i64>>,
    /// `dflat[ℓ][a]`: change of access `a`'s flat offset per unit step of
    /// walk level `ℓ` (composition of the access strides with `dorig`).
    dflat: Vec<Vec<i64>>,
    /// Per trailing level `kk = ℓ − z`: the lattice step `H[kk][kk]`
    /// (all 1 when unpartitioned).
    steps: Vec<i64>,
    /// Per trailing level: above-diagonal column `H[0..kk][kk]` used by
    /// the once-per-entry residue computation.
    hcols: Vec<Vec<i64>>,
    partitioned: bool,
}

impl Engine {
    fn new_scratch(&self) -> PlanScratch {
        let mut inner = self.program.new_scratch();
        self.program.reset_flats(&mut inner); // idx = 0 → flats = base
        PlanScratch {
            y: vec![0; self.n],
            q: vec![0; self.n - self.z],
            hi: vec![0; self.n],
            inner,
        }
    }

    /// Advance walk level `ℓ` by `delta`, updating the transformed point,
    /// the original indices, and every flat offset incrementally.
    #[inline]
    fn shift(&self, s: &mut PlanScratch, level: usize, delta: i64) {
        if delta == 0 {
            return;
        }
        s.y[level] += delta;
        for (o, d) in s.inner.idx.iter_mut().zip(&self.dorig[level]) {
            *o = o.wrapping_add(delta.wrapping_mul(*d));
        }
        for (f, d) in s.inner.flats.iter_mut().zip(&self.dflat[level]) {
            *f = f.wrapping_add(delta.wrapping_mul(*d));
        }
    }

    /// Position the walk at `prefix` (levels `< z`) and zero elsewhere.
    fn seek_group_start(&self, s: &mut PlanScratch, prefix: &[i64]) {
        debug_assert_eq!(prefix.len(), self.z);
        for k in 0..self.n {
            let target = if k < self.z { prefix[k] } else { 0 };
            self.shift(s, k, target - s.y[k]);
        }
    }

    /// Residue of trailing level `kk` given the offset vector and the
    /// outer lattice coordinates — evaluated once per level entry.
    #[inline]
    fn residue(&self, offset: &[i64], q: &[i64], kk: usize) -> Result<i64> {
        let mut r = offset[kk] as i128;
        for (qp, h) in q[..kk].iter().zip(&self.hcols[kk]) {
            r += *qp as i128 * *h as i128;
        }
        i64::try_from(r).map_err(|_| overflow())
    }

    /// Walk every iteration of one group (fixed prefix + offset),
    /// executing the body. Returns the iteration count.
    fn run_group(
        &self,
        mem: &Memory,
        offset: &[i64],
        prefix: &[i64],
        s: &mut PlanScratch,
    ) -> Result<u64> {
        // A scratch from a different engine would silently corrupt the
        // strength-reduced offsets; reject it before touching memory.
        if s.y.len() != self.n || s.inner.flats.len() != self.program.accesses().len() {
            return Err(RuntimeError::Core(
                "scratch was allocated for a different compiled program".into(),
            ));
        }
        self.seek_group_start(s, prefix);
        let (n, z) = (self.n, self.z);
        let mut count = 0u64;
        if z == n {
            // Fully parallel: the group is a single iteration.
            self.program.exec(mem, &mut s.inner)?;
            return Ok(1);
        }
        let mut level = z;
        let mut entering = true;
        loop {
            if entering {
                let (lo, hi) = self.bounds.range(level, &s.y)?;
                let kk = level - z;
                let step = self.steps[kk];
                let start = if self.partitioned {
                    let r = self.residue(offset, &s.q, kk)?;
                    let v = Partitioning::first_at_least(lo, r, step)?;
                    s.q[kk] = (v - r) / step;
                    v
                } else {
                    lo
                };
                if start <= hi {
                    s.hi[level] = hi;
                    self.shift(s, level, start - s.y[level]);
                    if level + 1 < n {
                        level += 1;
                        continue;
                    }
                    // Innermost: run the whole row.
                    loop {
                        self.program.exec(mem, &mut s.inner)?;
                        count += 1;
                        if (s.y[level] as i128 + step as i128) > hi as i128 {
                            break;
                        }
                        self.shift(s, level, step);
                        s.q[kk] += 1;
                    }
                }
                entering = false;
            } else {
                // Level exhausted: pop, try to bump an outer level.
                if level == z {
                    return Ok(count);
                }
                level -= 1;
                let kk = level - z;
                let step = self.steps[kk];
                if (s.y[level] as i128 + step as i128) <= s.hi[level] as i128 {
                    self.shift(s, level, step);
                    s.q[kk] += 1;
                    level += 1;
                    entering = true;
                }
            }
        }
    }
}

fn engine_for_plan(nest: &LoopNest, plan: &ParallelPlan, mem: &Memory) -> Result<Engine> {
    let n = plan.depth();
    let z = plan.doall_count();
    let program = Program::compile(nest, mem)?;
    let bounds = CompiledBounds::compile(plan.bounds());
    let tinv = plan.inverse().mat();
    let dorig: Vec<Vec<i64>> = (0..n)
        .map(|l| (0..n).map(|i| tinv.get(l, i)).collect())
        .collect();
    let dflat = compose_deltas(&program, &dorig);
    let (steps, hcols, partitioned) = match plan.partition() {
        Some(p) => {
            let rho = n - z;
            debug_assert_eq!(p.dim(), rho);
            let hcols = (0..rho)
                .map(|kk| (0..kk).map(|pp| p.basis().get(pp, kk)).collect())
                .collect();
            (p.steps().to_vec(), hcols, true)
        }
        None => (vec![1; n - z], vec![Vec::new(); n - z], false),
    };
    Ok(Engine {
        program,
        n,
        z,
        bounds,
        dorig,
        dflat,
        steps,
        hcols,
        partitioned,
    })
}

/// `dflat[ℓ][a] = Σ_i coeff_a[i] · dorig[ℓ][i]` — each access's flat
/// stride along each walk level.
fn compose_deltas(program: &Program, dorig: &[Vec<i64>]) -> Vec<Vec<i64>> {
    dorig
        .iter()
        .map(|row| {
            program
                .accesses()
                .iter()
                .map(|acc| {
                    let mut d = 0i64;
                    for (c, t) in acc.coeff.iter().zip(row) {
                        d = d.wrapping_add(c.wrapping_mul(*t));
                    }
                    d
                })
                .collect()
        })
        .collect()
}

/// A nest compiled for **original-order sequential** execution: the same
/// engine as [`CompiledPlan`] with the identity transform and no groups.
#[derive(Debug, Clone)]
pub struct CompiledNest {
    eng: Engine,
}

impl CompiledNest {
    /// Lower the nest against `mem`'s array geometry.
    pub fn compile(nest: &LoopNest, mem: &Memory) -> Result<CompiledNest> {
        let n = nest.depth();
        let sys = nest.iteration_system()?;
        let bounds = LoopBounds::from_system(&sys)?;
        let program = Program::compile(nest, mem)?;
        let dorig: Vec<Vec<i64>> = (0..n)
            .map(|l| (0..n).map(|i| i64::from(l == i)).collect())
            .collect();
        let dflat = compose_deltas(&program, &dorig);
        Ok(CompiledNest {
            eng: Engine {
                program,
                n,
                z: 0,
                bounds: CompiledBounds::compile(&bounds),
                dorig,
                dflat,
                steps: vec![1; n],
                hcols: vec![Vec::new(); n],
                partitioned: false,
            },
        })
    }

    /// Allocate reusable walk state.
    pub fn new_scratch(&self) -> PlanScratch {
        self.eng.new_scratch()
    }

    /// Bound rows the compiled walker evaluates across all levels.
    pub fn bound_rows(&self) -> usize {
        self.eng.bounds.rows()
    }

    /// Execute the nest in original lexicographic order. Returns the
    /// iteration count.
    pub fn run(&self, mem: &Memory) -> Result<u64> {
        let mut s = self.eng.new_scratch();
        self.run_with_scratch(mem, &mut s)
    }

    /// [`CompiledNest::run`] reusing caller-provided state.
    pub fn run_with_scratch(&self, mem: &Memory, s: &mut PlanScratch) -> Result<u64> {
        self.eng.run_group(mem, &[], &[], s)
    }
}

/// One independent compiled group: a doall-prefix value combination plus
/// the index of a partition offset in the plan's offset table.
///
/// Construction is instrumented (see [`crate::schedule::live_groups`]).
/// The streaming executor never builds these — it feeds the engine
/// walker straight from a cursor — so they appear only when callers
/// materialize via [`CompiledPlan::groups`] or drive
/// [`CompiledPlan::run_group`] directly. `#[non_exhaustive]` forces
/// downstream construction through [`CompiledGroup::new`] so literal
/// construction cannot bypass the gauge.
#[derive(Debug, PartialEq, Eq)]
#[non_exhaustive]
pub struct CompiledGroup {
    /// Values of the leading doall coordinates.
    pub prefix: Vec<i64>,
    /// Index into [`CompiledPlan::offsets`].
    pub offset: u32,
}

impl CompiledGroup {
    /// Build a compiled group (instrumented constructor — all
    /// construction must pass through here so the live-group gauge stays
    /// exact).
    pub fn new(prefix: Vec<i64>, offset: u32) -> CompiledGroup {
        schedule::group_created();
        CompiledGroup { prefix, offset }
    }
}

impl Clone for CompiledGroup {
    fn clone(&self) -> Self {
        CompiledGroup::new(self.prefix.clone(), self.offset)
    }
}

impl Drop for CompiledGroup {
    fn drop(&mut self) {
        schedule::group_dropped();
    }
}

/// A `(LoopNest, ParallelPlan)` pair lowered to the compiled engine,
/// ready for chunked parallel execution.
#[derive(Debug, Clone)]
pub struct CompiledPlan {
    eng: Engine,
    offsets: Vec<Vec<i64>>,
}

impl CompiledPlan {
    /// Lower the pair against `mem`'s array geometry. The plan must have
    /// been derived from the same nest.
    pub fn compile(nest: &LoopNest, plan: &ParallelPlan, mem: &Memory) -> Result<CompiledPlan> {
        let eng = engine_for_plan(nest, plan, mem)?;
        let offsets = match plan.partition() {
            Some(p) => p.offsets().into_iter().map(|o| o.0).collect(),
            None => vec![Vec::new()],
        };
        Ok(CompiledPlan { eng, offsets })
    }

    /// The Theorem-2 offset table (a single empty offset when the plan is
    /// unpartitioned).
    pub fn offsets(&self) -> &[Vec<i64>] {
        &self.offsets
    }

    /// Bound rows the compiled walker evaluates across all levels.
    pub fn bound_rows(&self) -> usize {
        self.eng.bounds.rows()
    }

    /// Exact number of independent groups (prefix values × offsets),
    /// computed without materializing them ([`crate::schedule::group_count`]).
    pub fn group_count(&self) -> Result<u64> {
        schedule::group_count(&self.eng.bounds, self.eng.z, self.offsets.len())
    }

    /// Enumerate the independent groups **materialized as a `Vec`**.
    ///
    /// Compatibility shim for tests, debugging, and group-table
    /// inspection only — it recreates the `O(#groups)` allocation spike
    /// the streaming scheduler avoids. Production paths use
    /// [`CompiledPlan::run_parallel`] (range-scheduled cursors) or
    /// [`CompiledPlan::group_count`]; see [`crate::schedule`] for when
    /// materializing is still the right tool.
    pub fn groups(&self) -> Result<Vec<CompiledGroup>> {
        let mut out = Vec::new();
        schedule::for_each_group_in_range(
            &self.eng.bounds,
            self.eng.z,
            self.offsets.len(),
            0,
            u64::MAX,
            |_, prefix, o| {
                out.push(CompiledGroup::new(prefix.to_vec(), o as u32));
                Ok(())
            },
        )?;
        Ok(out)
    }

    /// Allocate reusable walk state.
    pub fn new_scratch(&self) -> PlanScratch {
        self.eng.new_scratch()
    }

    /// Execute one group, reusing `s`. Returns its iteration count.
    pub fn run_group(&self, g: &CompiledGroup, mem: &Memory, s: &mut PlanScratch) -> Result<u64> {
        self.eng
            .run_group(mem, &self.offsets[g.offset as usize], &g.prefix, s)
    }

    /// Walk the contiguous group range `start..end` with one streaming
    /// cursor, reusing `s` across every group — no group structs are
    /// constructed. Both the parallel tasks and the single-thread
    /// fallback route through here (and, `pub(crate)`, the staged
    /// multi-kernel executor), so the cursor code has one driver.
    pub(crate) fn run_range(
        &self,
        mem: &Memory,
        start: u64,
        end: u64,
        s: &mut PlanScratch,
    ) -> Result<u64> {
        let mut total = 0u64;
        schedule::for_each_group_in_range(
            &self.eng.bounds,
            self.eng.z,
            self.offsets.len(),
            start,
            end,
            |_, prefix, o| {
                total += self.eng.run_group(mem, &self.offsets[o], prefix, s)?;
                Ok(())
            },
        )?;
        Ok(total)
    }

    /// The compiled bounds (staged executors size their steal-aware
    /// per-kernel schedules through these).
    pub(crate) fn bounds(&self) -> &CompiledBounds {
        &self.eng.bounds
    }

    /// Number of leading doall levels.
    pub(crate) fn doall(&self) -> usize {
        self.eng.z
    }

    /// Execute one pre-planned range task (its cursor is already
    /// positioned at the range start), reusing `s` across every group.
    pub(crate) fn run_task(
        &self,
        mem: &Memory,
        task: &schedule::RangeTask<'_, CompiledBounds>,
        s: &mut PlanScratch,
    ) -> Result<u64> {
        let mut total = 0u64;
        task.for_each(|_, prefix, o| {
            total += self.eng.run_group(mem, &self.offsets[o], prefix, s)?;
            Ok(())
        })?;
        Ok(total)
    }

    /// Execute all groups **in parallel** with streaming range
    /// scheduling and the environment-configured [`Schedule`]
    /// (`PDM_CHUNKS_PER_THREAD` / `PDM_STEAL_CHUNKS_PER_THREAD`): the
    /// group index space is split into contiguous ranges — finer when
    /// per-group cost is skewed ([`crate::schedule::cost_skewed`]), so
    /// the work-stealing executor always finds chunks to steal — with a
    /// pre-positioned cursor per range
    /// ([`crate::schedule::plan_range_tasks`]) and one reused scratch
    /// per task; zero up-front group materialization. Returns the total
    /// iteration count.
    pub fn run_parallel(&self, mem: &Memory) -> Result<u64> {
        self.run_parallel_scheduled(mem, crate::config::RuntimeConfig::global().schedule())
    }

    /// [`CompiledPlan::run_parallel`] with an explicit [`Schedule`].
    pub fn run_parallel_scheduled(&self, mem: &Memory, sched: Schedule) -> Result<u64> {
        let tasks = schedule::plan_range_tasks(
            &self.eng.bounds,
            self.eng.z,
            self.offsets.len(),
            &sched,
            rayon::current_num_threads(),
        )?;
        if tasks.is_empty() {
            return Ok(0);
        }
        let counts: std::result::Result<Vec<u64>, RuntimeError> = tasks
            .par_iter()
            .map(|task| {
                let mut s = self.eng.new_scratch();
                self.run_task(mem, task, &mut s)
            })
            .collect();
        Ok(counts?.into_iter().sum())
    }

    /// [`CompiledPlan::run_parallel`] on a dedicated pool with `threads`
    /// workers (thread-scaling measurements).
    pub fn run_parallel_with_threads(&self, mem: &Memory, threads: usize) -> Result<u64> {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .map_err(|e| RuntimeError::Core(format!("rayon pool: {e}")))?;
        pool.install(|| self.run_parallel(mem))
    }

    /// Execute the transformed schedule sequentially, group after group
    /// (determinism baseline) — streamed through the same range runner as
    /// the parallel path, walking to exhaustion in one pass (counting
    /// first would enumerate a prefix-dependent space twice).
    pub fn run_transformed_sequential(&self, mem: &Memory) -> Result<u64> {
        let mut s = self.eng.new_scratch();
        self.run_range(mem, 0, u64::MAX, &mut s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run_parallel, run_sequential};
    use pdm_core::parallelize;
    use pdm_loopir::parse::{parse_loop, parse_loop_with};

    fn three_way(src: &str, seed: u64) {
        let nest = parse_loop(src).unwrap();
        let plan = parallelize(&nest).unwrap();
        let mut m_seq = Memory::for_nest(&nest).unwrap();
        let mut m_cseq = Memory::for_nest(&nest).unwrap();
        let mut m_cpar = Memory::for_nest(&nest).unwrap();
        m_seq.init_deterministic(seed);
        m_cseq.init_deterministic(seed);
        m_cpar.init_deterministic(seed);
        let c1 = run_sequential(&nest, &m_seq).unwrap();
        let cn = CompiledNest::compile(&nest, &m_cseq).unwrap();
        let c2 = cn.run(&m_cseq).unwrap();
        let cp = CompiledPlan::compile(&nest, &plan, &m_cpar).unwrap();
        let c3 = cp.run_parallel(&m_cpar).unwrap();
        assert_eq!(c1, c2, "compiled sequential iteration count");
        assert_eq!(c1, c3, "compiled parallel iteration count");
        assert_eq!(
            m_seq.snapshot(),
            m_cseq.snapshot(),
            "compiled sequential memory"
        );
        assert_eq!(
            m_seq.snapshot(),
            m_cpar.snapshot(),
            "compiled parallel memory"
        );
    }

    #[test]
    fn paper_41_three_way() {
        three_way(
            "for i1 = 0..=9 { for i2 = 0..=9 {
               A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
             } }",
            7,
        );
    }

    #[test]
    fn paper_42_three_way() {
        three_way(
            "for i1 = 0..=9 { for i2 = 0..=9 {
               A[i1, 3*i2 + 2] = B[i1, i2] + 1;
               B[3*i1 + 2, i1 + i2 + 1] = A[i1, i2] + 2;
             } }",
            3,
        );
    }

    #[test]
    fn workload_suite_three_way() {
        for src in [
            "for i = 1..=40 { A[i] = A[i - 1] + 1; }",
            "for i = 0..=40 { A[i] = i * 3; }",
            "for i = 0..=40 { A[2*i] = A[i] + 1; }",
            "for i = 1..=12 { for j = 1..=12 { A[i, j] = A[i - 1, j] + A[i, j - 1]; } }",
            "for i = 1..=12 { for j = 0..=12 { A[i, j] = A[i - 1, j] + 1; } }",
            "for i = 2..=30 { A[i] = A[i - 2] + 1; }",
            "for i = 0..=12 { for j = 0..=i { A[i, j] = A[i, j] + j; } }",
            "for i = 1..=5 { for j = 0..=5 { for k = 0..=5 {
               A[i, j, k] = A[i - 1, j, k] + 1;
             } } }",
        ] {
            three_way(src, 11);
        }
    }

    #[test]
    fn compiled_groups_match_interpreter_groups() {
        let nest = parse_loop(
            "for i1 = 0..=9 { for i2 = 0..=9 {
               A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
             } }",
        )
        .unwrap();
        let plan = parallelize(&nest).unwrap();
        let mem = Memory::for_nest(&nest).unwrap();
        let cp = CompiledPlan::compile(&nest, &plan, &mem).unwrap();
        assert_eq!(
            cp.groups().unwrap().len(),
            crate::exec::groups(&plan).unwrap().len()
        );
    }

    #[test]
    fn group_walks_visit_identical_point_sets() {
        let nest = parse_loop(
            "for i1 = 0..=9 { for i2 = 0..=9 {
               A[i1, 3*i2 + 2] = B[i1, i2] + 1;
               B[3*i1 + 2, i1 + i2 + 1] = A[i1, i2] + 2;
             } }",
        )
        .unwrap();
        let plan = parallelize(&nest).unwrap();
        let mem = Memory::for_nest(&nest).unwrap();
        let cp = CompiledPlan::compile(&nest, &plan, &mem).unwrap();
        // Walk all compiled groups recording original points via scratch.
        let mut seen = std::collections::HashSet::new();
        let mut total = 0u64;
        let mut s = cp.new_scratch();
        for g in cp.groups().unwrap() {
            total += cp.run_group(&g, &mem, &mut s).unwrap();
        }
        // Re-walk with the interpreter for the ground-truth set.
        for g in crate::exec::groups(&plan).unwrap() {
            crate::exec::walk_group(&nest, &plan, &g, |idx| {
                seen.insert(idx.to_vec());
                Ok(())
            })
            .unwrap();
        }
        assert_eq!(total as usize, seen.len());
        assert_eq!(total as usize, nest.iterations().unwrap().len());
    }

    #[test]
    fn foreign_scratch_rejected() {
        let nest_a = parse_loop("for i = 0..=9 { A[i] = A[i] + 1; }").unwrap();
        let nest_b = parse_loop("for i = 0..=9 { A[i] = A[i] + B[i] + 1; }").unwrap();
        let mem_a = Memory::for_nest(&nest_a).unwrap();
        let mem_b = Memory::for_nest(&nest_b).unwrap();
        let plan_a = parallelize(&nest_a).unwrap();
        let cp_a = CompiledPlan::compile(&nest_a, &plan_a, &mem_a).unwrap();
        let cn_b = CompiledNest::compile(&nest_b, &mem_b).unwrap();
        let mut foreign = cn_b.new_scratch();
        let g = &cp_a.groups().unwrap()[0];
        assert!(matches!(
            cp_a.run_group(g, &mem_a, &mut foreign),
            Err(RuntimeError::Core(_))
        ));
    }

    #[test]
    fn thread_override_respected() {
        let nest = parse_loop_with(
            "for i1 = 0..N { for i2 = 0..N {
               A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
             } }",
            &[("N", 24)],
        )
        .unwrap();
        let plan = parallelize(&nest).unwrap();
        let mut m1 = Memory::for_nest(&nest).unwrap();
        let mut m2 = Memory::for_nest(&nest).unwrap();
        m1.init_deterministic(1);
        m2.init_deterministic(1);
        run_sequential(&nest, &m1).unwrap();
        let cp = CompiledPlan::compile(&nest, &plan, &m2).unwrap();
        cp.run_parallel_with_threads(&m2, 2).unwrap();
        assert_eq!(m1.snapshot(), m2.snapshot());
    }

    #[test]
    fn transformed_sequential_compiled_matches() {
        let nest = parse_loop(
            "for i1 = 0..=9 { for i2 = 0..=9 {
               A[i1, 3*i2 + 2] = B[i1, i2] + 1;
               B[3*i1 + 2, i1 + i2 + 1] = A[i1, i2] + 2;
             } }",
        )
        .unwrap();
        let plan = parallelize(&nest).unwrap();
        let mut m1 = Memory::for_nest(&nest).unwrap();
        let mut m2 = Memory::for_nest(&nest).unwrap();
        m1.init_deterministic(5);
        m2.init_deterministic(5);
        run_parallel(&nest, &plan, &m1).unwrap();
        let cp = CompiledPlan::compile(&nest, &plan, &m2).unwrap();
        cp.run_transformed_sequential(&m2).unwrap();
        assert_eq!(m1.snapshot(), m2.snapshot());
    }
}
