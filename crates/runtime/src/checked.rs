//! Group-conflict race checking (failure injection harness).
//!
//! The parallel executor's soundness rests on the analysis' claim that
//! distinct groups never touch conflicting cells. This module *verifies*
//! the claim at runtime: every access of every group is logged (array,
//! flat cell, kind), then cross-group conflicts with at least one write
//! are reported. Running a deliberately wrong plan through this checker
//! must — and does, see the tests — detect the race.

use crate::exec::{offset_table, walk_group, GroupSpec};
use crate::memory::Memory;
use crate::schedule;
use crate::{Result, RuntimeError};
use pdm_core::plan::ParallelPlan;
use pdm_loopir::nest::LoopNest;
use pdm_loopir::stmt::AccessKind;
use pdm_matrix::vec::IVec;
use rayon::prelude::*;
use std::collections::HashMap;

/// One logged access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoggedAccess {
    /// Array index.
    pub array: usize,
    /// Flattened cell index.
    pub cell: usize,
    /// Was it a write?
    pub write: bool,
}

/// Execute and log one group (identified by its doall `prefix` and
/// offset index `o`): every access of every iteration is recorded, then
/// the group's iteration count and log are returned. The single
/// per-group body behind both the range- and task-based loggers.
fn log_one_group(
    nest: &LoopNest,
    plan: &ParallelPlan,
    offsets: &[IVec],
    mem: &Memory,
    prefix: &[i64],
    o: usize,
) -> Result<(u64, Vec<LoggedAccess>)> {
    let g = GroupSpec::new(prefix.to_vec(), offsets[o].clone());
    let mut log = Vec::new();
    let mut count = 0u64;
    walk_group(nest, plan, &g, |idx| {
        for stmt in nest.body() {
            if !stmt.guards_hold(idx) {
                continue;
            }
            for (kind, r) in stmt.accesses() {
                let sub = r.access.eval(&IVec(idx.to_vec()))?;
                let cell = mem
                    .flat(r.array, &sub)
                    .ok_or_else(|| RuntimeError::OutOfBounds {
                        array: format!("arr{}", r.array.0),
                        subscript: sub.0.clone(),
                    })?;
                log.push(LoggedAccess {
                    array: r.array.0,
                    cell,
                    write: kind == AccessKind::Write,
                });
            }
            let v = crate::exec::eval_expr(&stmt.rhs, mem, idx)?;
            let sub = r_eval(&stmt.lhs.access, idx);
            mem.write(stmt.lhs.array, &sub, v)?;
        }
        count += 1;
        Ok(())
    })?;
    Ok((count, log))
}

/// Log every access of the groups in the contiguous range `start..end`,
/// streaming one [`GroupSpec`] at a time. Each entry carries the group's
/// global linear index so conflict detection survives range splitting.
fn log_group_range(
    nest: &LoopNest,
    plan: &ParallelPlan,
    offsets: &[IVec],
    mem: &Memory,
    start: u64,
    end: u64,
) -> Result<Vec<(u64, u64, Vec<LoggedAccess>)>> {
    let mut out = Vec::new();
    schedule::for_each_group_in_range(
        plan.bounds(),
        plan.doall_count(),
        offsets.len(),
        start,
        end,
        |gid, prefix, o| {
            let (count, log) = log_one_group(nest, plan, offsets, mem, prefix, o)?;
            out.push((gid, count, log));
            Ok(())
        },
    )?;
    Ok(out)
}

/// Execute the plan in parallel while logging accesses per group; after
/// the run, detect cross-group conflicts. Groups are streamed in
/// contiguous, steal-aware index ranges
/// ([`crate::schedule::plan_range_tasks`]) on the work-stealing pool —
/// the group list is never materialized, only the access logs are.
///
/// Returns the number of iterations executed, or
/// [`RuntimeError::RaceDetected`].
pub fn run_parallel_checked(nest: &LoopNest, plan: &ParallelPlan, mem: &Memory) -> Result<u64> {
    let offsets = offset_table(plan);
    let tasks = schedule::plan_range_tasks(
        plan.bounds(),
        plan.doall_count(),
        offsets.len(),
        &crate::config::RuntimeConfig::global().schedule(),
        rayon::current_num_threads(),
    )?;
    if tasks.is_empty() {
        return Ok(0);
    }
    let logs: std::result::Result<Vec<Vec<(u64, u64, Vec<LoggedAccess>)>>, RuntimeError> = tasks
        .par_iter()
        .map(|task| {
            let mut out = Vec::new();
            task.for_each(|gid, prefix, o| {
                let (count, log) = log_one_group(nest, plan, &offsets, mem, prefix, o)?;
                out.push((gid, count, log));
                Ok(())
            })?;
            Ok(out)
        })
        .collect();
    let logs: Vec<(u64, u64, Vec<LoggedAccess>)> = logs?.into_iter().flatten().collect();

    // Cross-group conflict detection (keyed by global group index).
    let (conflicts, sample) = detect_conflicts(
        logs.iter().map(|(gid, _, log)| (*gid, log.as_slice())),
        |g0, g1, a| {
            format!(
                "array {} cell {} touched by groups {} and {}",
                a.array, a.cell, g0, g1
            )
        },
    );
    if conflicts > 0 {
        return Err(RuntimeError::RaceDetected { conflicts, sample });
    }
    Ok(logs.iter().map(|(_, c, _)| c).sum())
}

/// First-toucher conflict scan over the access logs of one concurrency
/// domain: two distinct `unit`s touching a common `(array, cell)` with
/// at least one write conflict. The single implementation behind both
/// checkers — [`run_parallel_checked`] keys units by global group id,
/// [`run_program_parallel_checked`] by `(kernel, group)` — so the
/// subtle first-owner/wrote-flag merge rule lives in exactly one place.
/// It is also the **certifier** of the speculative inspector
/// ([`crate::inspector::audit`]), which feeds it synthesized per-group
/// logs instead of execution traces. Returns the conflict count and a
/// sample description (empty when clean).
pub(crate) fn detect_conflicts<'a, K: Copy + PartialEq>(
    logs: impl IntoIterator<Item = (K, &'a [LoggedAccess])>,
    describe: impl Fn(K, K, &LoggedAccess) -> String,
) -> (usize, String) {
    let mut owner: HashMap<(usize, usize), (K, bool)> = HashMap::new();
    let mut conflicts = 0usize;
    let mut sample = String::new();
    for (unit, log) in logs {
        for a in log {
            match owner.get_mut(&(a.array, a.cell)) {
                None => {
                    owner.insert((a.array, a.cell), (unit, a.write));
                }
                Some((u0, wrote)) => {
                    if *u0 != unit && (a.write || *wrote) {
                        conflicts += 1;
                        if sample.is_empty() {
                            sample = describe(*u0, unit, a);
                        }
                    } else {
                        *wrote |= a.write;
                    }
                }
            }
        }
    }
    (conflicts, sample)
}

/// Execute a multi-kernel [`pdm_core::program::ProgramPlan`] stage by
/// stage while logging
/// every access per **(kernel, group)** unit, then detect conflicts
/// *within* each stage — two distinct units of the same stage touching
/// one cell with at least one write is a race (units of one stage run
/// concurrently; cross-stage conflicts are exactly what the DAG barriers
/// order, so they are legal).
///
/// Race reports name the kernel index **alongside** the global group id
/// (`kernel 1 group 3 and kernel 2 group 0 in stage 1`): with
/// multi-kernel plans a bare group id is ambiguous — every kernel has a
/// group 0.
///
/// Returns the summed kernel iteration count, or
/// [`RuntimeError::RaceDetected`].
pub fn run_program_parallel_checked(
    pp: &pdm_core::program::ProgramPlan,
    mem: &Memory,
) -> Result<u64> {
    let mut total = 0u64;
    for (si, stage) in pp.stages().iter().enumerate() {
        // Log every (kernel, group) unit of this stage, then scan for
        // cross-unit conflicts with the shared detector.
        let mut stage_logs: Vec<((usize, u64), Vec<LoggedAccess>)> = Vec::new();
        for &k in stage {
            let kp = &pp.kernels()[k];
            let offsets = offset_table(&kp.plan);
            for (gid, count, log) in
                log_group_range(kp.nest(), &kp.plan, &offsets, mem, 0, u64::MAX)?
            {
                total += count;
                stage_logs.push(((k, gid), log));
            }
        }
        let (conflicts, sample) = detect_conflicts(
            stage_logs.iter().map(|(unit, log)| (*unit, log.as_slice())),
            |(k0, g0), (k1, g1), a| {
                format!(
                    "array {} cell {} touched by kernel {k0} group {g0} \
                     and kernel {k1} group {g1} in stage {si}",
                    a.array, a.cell
                )
            },
        );
        if conflicts > 0 {
            return Err(RuntimeError::RaceDetected { conflicts, sample });
        }
    }
    Ok(total)
}

fn r_eval(access: &pdm_loopir::access::AffineAccess, idx: &[i64]) -> Vec<i64> {
    let m = access.dims();
    let n = access.depth();
    let mut out = Vec::with_capacity(m);
    for d in 0..m {
        let mut acc = access.offset[d];
        for k in 0..n {
            acc = acc.wrapping_add(access.matrix.get(k, d).wrapping_mul(idx[k]));
        }
        out.push(acc);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_core::parallelize;
    use pdm_loopir::parse::parse_loop;

    #[test]
    fn correct_plans_pass_the_checker() {
        for src in [
            "for i1 = 0..=9 { for i2 = 0..=9 {
               A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
             } }",
            "for i1 = 0..=9 { for i2 = 0..=9 {
               A[i1, 3*i2 + 2] = B[i1, i2] + 1;
               B[3*i1 + 2, i1 + i2 + 1] = A[i1, i2] + 2;
             } }",
            "for i = 0..=50 { A[i] = i; }",
            "for i1 = 1..=9 { for i2 = 0..=9 { A[i1, i2] = A[i1 - 1, i2] + 1; } }",
        ] {
            let nest = parse_loop(src).unwrap();
            let plan = parallelize(&nest).unwrap();
            let mem = Memory::for_nest(&nest).unwrap();
            run_parallel_checked(&nest, &plan, &mem).unwrap_or_else(|e| panic!("{src}: {e}"));
        }
    }

    #[test]
    fn injected_wrong_plan_is_caught() {
        // The dependent nest; the plan of a dependence-free twin claims
        // full parallelism -> the checker must see cross-group conflicts.
        let dependent = parse_loop("for i = 1..=20 { A[i] = A[i - 1] + 1; }").unwrap();
        let independent = parse_loop("for i = 1..=20 { A[i] = i; }").unwrap();
        let wrong = parallelize(&independent).unwrap();
        let mem = Memory::for_nest(&dependent).unwrap();
        let err = run_parallel_checked(&dependent, &wrong, &mem);
        assert!(
            matches!(err, Err(RuntimeError::RaceDetected { .. })),
            "expected race, got {err:?}"
        );
    }

    #[test]
    fn program_checker_passes_correct_plans_and_names_kernels() {
        let imp = pdm_loopir::parse::parse_imperfect(
            "for i = 0..=6 {
               B[i, 0] = i;
               for j = 1..=6 { A[i, j] = A[i, j - 1] + B[i, 0]; }
             }",
        )
        .unwrap();
        let pp = pdm_core::program::parallelize_program(&imp).unwrap();
        let mem = Memory::for_imperfect(&imp).unwrap();
        let n = run_program_parallel_checked(&pp, &mem).unwrap();
        assert!(n > 0);
        // The checked run's memory matches the reference.
        let m_ref = Memory::for_imperfect(&imp).unwrap();
        crate::staged::run_imperfect_sequential(&imp, &m_ref).unwrap();
        assert_eq!(mem.snapshot(), m_ref.snapshot());
    }

    #[test]
    fn program_checker_reports_kernel_index_on_injected_race() {
        // Two kernels with a real flow dependence (pre writes B[i, 0],
        // body reads it). Deleting the DAG edge collapses them into one
        // stage — the checker must see the cross-kernel conflict and
        // name both kernel indices in the sample.
        let imp = pdm_loopir::parse::parse_imperfect(
            "for i = 0..=6 {
               B[i, 0] = i;
               for j = 1..=6 { A[i, j] = B[i, 0] + j; }
             }",
        )
        .unwrap();
        let mut normalized = pdm_loopir::normalize::to_perfect_kernels(&imp).unwrap();
        assert_eq!(normalized.edges, vec![(0, 1)], "test needs a real edge");
        normalized.edges.clear(); // inject the wrong (barrier-free) DAG
        let wrong = pdm_core::program::plan_program(normalized).unwrap();
        assert_eq!(wrong.stages().len(), 1);
        let mem = Memory::for_imperfect(&imp).unwrap();
        match run_program_parallel_checked(&wrong, &mem) {
            Err(RuntimeError::RaceDetected { sample, .. }) => {
                assert!(
                    sample.contains("kernel 0") && sample.contains("kernel 1"),
                    "sample must name both kernels: {sample}"
                );
                assert!(sample.contains("stage 0"), "{sample}");
            }
            other => panic!("expected race, got {other:?}"),
        }
    }

    #[test]
    fn wrong_partitioning_also_caught() {
        // 2-D: dependence along i1 only; a "plan" from a different loop
        // that parallelizes i1 must conflict.
        let dependent =
            parse_loop("for i1 = 1..=6 { for i2 = 0..=6 { A[i1, i2] = A[i1 - 1, i2] + 1; } }")
                .unwrap();
        let other =
            parse_loop("for i1 = 1..=6 { for i2 = 0..=6 { A[i1, i2] = A[i1, i2] + 1; } }").unwrap();
        let wrong = parallelize(&other).unwrap();
        assert!(wrong.is_fully_parallel());
        let mem = Memory::for_nest(&dependent).unwrap();
        assert!(matches!(
            run_parallel_checked(&dependent, &wrong, &mem),
            Err(RuntimeError::RaceDetected { .. })
        ));
    }
}
