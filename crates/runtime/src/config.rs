//! Process-wide runtime configuration: every `PDM_*` environment knob,
//! read **once** and cached.
//!
//! Before this module, each executor entry point called
//! [`Schedule::from_env`] per run — thousands of `std::env::var` calls
//! per second under serving load, and no single place documenting what
//! the process was actually configured with. [`RuntimeConfig`]
//! consolidates the knobs:
//!
//! | variable | field | default | consumer |
//! |----------|-------|---------|----------|
//! | `PDM_CHUNKS_PER_THREAD` | [`chunks_per_thread`](RuntimeConfig::chunks_per_thread) | 4 | range splitter (balanced group spaces) |
//! | `PDM_STEAL_CHUNKS_PER_THREAD` | [`steal_chunks_per_thread`](RuntimeConfig::steal_chunks_per_thread) | 16 | range splitter (cost-skewed spaces) |
//! | `PDM_PROPTEST_SEED` | [`proptest_seed`](RuntimeConfig::proptest_seed) | unset | vendored proptest seed mixing (tests only) |
//! | `PDM_MAX_CONNECTIONS` | [`max_connections`](RuntimeConfig::max_connections) | 64 | `pdm-service` load-shedding gate (connections above the cap get an in-band `overloaded` response) |
//! | `PDM_CLIENT_READ_TIMEOUT_MS` | [`client_read_timeout_ms`](RuntimeConfig::client_read_timeout_ms) | 10000 | `pdm-service` `ServiceClient` default read deadline (builder-overridable) |
//! | `PDM_FAULTS` | [`faults`](RuntimeConfig::faults) | unset | `pdm-service` fault-injection probe spec (`probe:prob[:limit],...`) |
//! | `PDM_VERDICT_CAPACITY` | [`verdict_capacity`](RuntimeConfig::verdict_capacity) | 256 | per-shard point-entry bound of the inspector's `VerdictCache` (LRU beyond it) |
//!
//! [`RuntimeConfig::global`] is the cached process-wide instance: the
//! environment is read on first use and never again, so per-request
//! paths pay an atomic load instead of three env lookups. Executors and
//! services should take their [`Schedule`] from
//! [`RuntimeConfig::global().schedule()`](RuntimeConfig::schedule) (or
//! accept an explicit `Schedule`/`RuntimeConfig` at construction for
//! per-instance overrides, as `pdm-service`'s session builder does).
//!
//! `PDM_PROPTEST_SEED` is *consumed* by the vendored proptest stand-in
//! (which cannot depend on this crate); the field here mirrors its
//! parsing rule — integer value, or an FNV-1a hash of the raw string —
//! so diagnostics can report the effective seed perturbation.

use crate::schedule::Schedule;
use std::sync::OnceLock;

/// Every runtime environment knob, parsed once.
///
/// Construct with [`RuntimeConfig::from_env`] (or
/// [`RuntimeConfig::from_env_values`] with injected raw strings in
/// tests), or read the process-wide cached instance via
/// [`RuntimeConfig::global`]. Invalid or non-positive values fall back
/// to the documented defaults, matching [`Schedule::from_env_value`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Contiguous group ranges per worker on balanced group spaces
    /// (`PDM_CHUNKS_PER_THREAD`, default
    /// [`crate::schedule::DEFAULT_CHUNKS_PER_THREAD`]).
    pub chunks_per_thread: usize,
    /// Finer split applied on cost-skewed group spaces so idle workers
    /// always find chunks to steal (`PDM_STEAL_CHUNKS_PER_THREAD`,
    /// default [`crate::schedule::DEFAULT_STEAL_CHUNKS_PER_THREAD`]).
    pub steal_chunks_per_thread: usize,
    /// Effective proptest seed perturbation (`PDM_PROPTEST_SEED`):
    /// `None` when unset, otherwise the integer value or the FNV-1a
    /// hash of the raw string — the same rule the vendored proptest
    /// applies when mixing test-name-derived seeds.
    pub proptest_seed: Option<u64>,
    /// Concurrent-connection cap for `pdm-service`'s `PlanServer`
    /// (`PDM_MAX_CONNECTIONS`, default
    /// [`DEFAULT_MAX_CONNECTIONS`]). Connections accepted above the cap
    /// are shed with an in-band `{"ok":false,"kind":"overloaded"}`
    /// response instead of queuing unboundedly.
    pub max_connections: usize,
    /// Default read deadline for `pdm-service`'s `ServiceClient`, in
    /// milliseconds (`PDM_CLIENT_READ_TIMEOUT_MS`, default
    /// [`DEFAULT_CLIENT_READ_TIMEOUT_MS`]) — a stalled server turns
    /// into a typed timeout error instead of a forever-blocked read.
    /// Builder-overridable per client.
    pub client_read_timeout_ms: u64,
    /// Raw fault-injection spec (`PDM_FAULTS`), consumed by
    /// `pdm-service::faults`: comma-separated `probe:probability` (or
    /// `probe:probability:limit`) entries arming named probe points —
    /// e.g. `server.handler:0.02,plan.leader:1.0:1`. `None` (the
    /// default) disables every probe; the probes' RNG streams are
    /// seeded from [`proptest_seed`](RuntimeConfig::proptest_seed) so a
    /// probabilistic CI leg replays exactly.
    pub faults: Option<String>,
    /// Per-shard point-entry capacity of
    /// [`crate::sharded::VerdictCache`] (`PDM_VERDICT_CAPACITY`,
    /// default [`crate::sharded::DEFAULT_VERDICT_CAPACITY`]). Least
    /// recently used `(shape, valuation)` verdicts are evicted beyond
    /// this bound; certified intervals are capped separately.
    pub verdict_capacity: usize,
}

/// Default [`RuntimeConfig::max_connections`].
pub const DEFAULT_MAX_CONNECTIONS: usize = 64;
/// Default [`RuntimeConfig::client_read_timeout_ms`].
pub const DEFAULT_CLIENT_READ_TIMEOUT_MS: u64 = 10_000;

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            chunks_per_thread: crate::schedule::DEFAULT_CHUNKS_PER_THREAD,
            steal_chunks_per_thread: crate::schedule::DEFAULT_STEAL_CHUNKS_PER_THREAD,
            proptest_seed: None,
            max_connections: DEFAULT_MAX_CONNECTIONS,
            client_read_timeout_ms: DEFAULT_CLIENT_READ_TIMEOUT_MS,
            faults: None,
            verdict_capacity: crate::sharded::DEFAULT_VERDICT_CAPACITY,
        }
    }
}

impl RuntimeConfig {
    /// Parse every knob from the process environment.
    pub fn from_env() -> RuntimeConfig {
        Self::from_env_values(
            std::env::var("PDM_CHUNKS_PER_THREAD").ok().as_deref(),
            std::env::var("PDM_STEAL_CHUNKS_PER_THREAD").ok().as_deref(),
            std::env::var("PDM_PROPTEST_SEED").ok().as_deref(),
            std::env::var("PDM_MAX_CONNECTIONS").ok().as_deref(),
            std::env::var("PDM_CLIENT_READ_TIMEOUT_MS").ok().as_deref(),
            std::env::var("PDM_FAULTS").ok().as_deref(),
            std::env::var("PDM_VERDICT_CAPACITY").ok().as_deref(),
        )
    }

    /// [`RuntimeConfig::from_env`] with the raw variable values
    /// injected — deterministic regardless of the ambient environment.
    pub fn from_env_values(
        raw_chunks: Option<&str>,
        raw_steal: Option<&str>,
        raw_seed: Option<&str>,
        raw_max_conns: Option<&str>,
        raw_client_timeout: Option<&str>,
        raw_faults: Option<&str>,
        raw_verdict_capacity: Option<&str>,
    ) -> RuntimeConfig {
        let sched = Schedule::from_env_value(raw_chunks, raw_steal);
        RuntimeConfig {
            chunks_per_thread: sched.chunks_per_thread,
            steal_chunks_per_thread: sched.steal_chunks_per_thread,
            proptest_seed: raw_seed
                .map(|v| v.trim().parse::<u64>().unwrap_or_else(|_| fnv1a(v.trim()))),
            max_connections: raw_max_conns
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or(DEFAULT_MAX_CONNECTIONS),
            client_read_timeout_ms: raw_client_timeout
                .and_then(|v| v.trim().parse::<u64>().ok())
                .filter(|&n| n > 0)
                .unwrap_or(DEFAULT_CLIENT_READ_TIMEOUT_MS),
            faults: raw_faults
                .map(|v| v.trim().to_string())
                .filter(|v| !v.is_empty()),
            verdict_capacity: raw_verdict_capacity
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or(crate::sharded::DEFAULT_VERDICT_CAPACITY),
        }
    }

    /// The process-wide configuration, read from the environment on
    /// first call and cached for the lifetime of the process.
    pub fn global() -> &'static RuntimeConfig {
        static GLOBAL: OnceLock<RuntimeConfig> = OnceLock::new();
        GLOBAL.get_or_init(RuntimeConfig::from_env)
    }

    /// The range-splitting [`Schedule`] this configuration describes.
    pub fn schedule(&self) -> Schedule {
        Schedule {
            chunks_per_thread: self.chunks_per_thread,
            steal_chunks_per_thread: self.steal_chunks_per_thread,
        }
    }
}

/// FNV-1a, matching both `LoopNest::structural_hash`'s constants and the
/// vendored proptest's string-seed fallback.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{DEFAULT_CHUNKS_PER_THREAD, DEFAULT_STEAL_CHUNKS_PER_THREAD};

    #[test]
    fn defaults_match_schedule_defaults() {
        let c = RuntimeConfig::from_env_values(None, None, None, None, None, None, None);
        assert_eq!(c, RuntimeConfig::default());
        assert_eq!(c.chunks_per_thread, DEFAULT_CHUNKS_PER_THREAD);
        assert_eq!(c.steal_chunks_per_thread, DEFAULT_STEAL_CHUNKS_PER_THREAD);
        assert_eq!(c.proptest_seed, None);
        assert_eq!(c.max_connections, DEFAULT_MAX_CONNECTIONS);
        assert_eq!(c.client_read_timeout_ms, DEFAULT_CLIENT_READ_TIMEOUT_MS);
        assert_eq!(c.faults, None);
        assert_eq!(c.schedule(), Schedule::from_env_value(None, None));
    }

    #[test]
    fn parses_and_falls_back_like_schedule() {
        let c = RuntimeConfig::from_env_values(
            Some(" 2 "),
            Some("32"),
            Some("7"),
            Some("128"),
            Some("2500"),
            Some("server.handler:0.5"),
            Some("8"),
        );
        assert_eq!(c.chunks_per_thread, 2);
        assert_eq!(c.steal_chunks_per_thread, 32);
        assert_eq!(c.proptest_seed, Some(7));
        assert_eq!(c.max_connections, 128);
        assert_eq!(c.client_read_timeout_ms, 2500);
        assert_eq!(c.faults.as_deref(), Some("server.handler:0.5"));
        assert_eq!(c.verdict_capacity, 8);

        let c = RuntimeConfig::from_env_values(
            Some("0"),
            Some("nope"),
            None,
            Some("0"),
            Some("-3"),
            Some("   "),
            Some("0"),
        );
        assert_eq!(c.chunks_per_thread, DEFAULT_CHUNKS_PER_THREAD);
        assert_eq!(c.steal_chunks_per_thread, DEFAULT_STEAL_CHUNKS_PER_THREAD);
        assert_eq!(c.max_connections, DEFAULT_MAX_CONNECTIONS);
        assert_eq!(c.client_read_timeout_ms, DEFAULT_CLIENT_READ_TIMEOUT_MS);
        assert_eq!(c.faults, None, "a blank spec disarms every probe");
        assert_eq!(
            c.verdict_capacity,
            crate::sharded::DEFAULT_VERDICT_CAPACITY,
            "a zero capacity falls back instead of disabling the cache"
        );
    }

    #[test]
    fn seed_strings_hash_like_proptest() {
        // Mirrors vendor/proptest's rule: non-integer seeds hash FNV-1a.
        let c = RuntimeConfig::from_env_values(None, None, Some("tuesday"), None, None, None, None);
        assert_eq!(c.proptest_seed, Some(fnv1a("tuesday")));
        let c = RuntimeConfig::from_env_values(None, None, Some(" 42 "), None, None, None, None);
        assert_eq!(c.proptest_seed, Some(42));
    }

    #[test]
    fn global_is_stable_across_calls() {
        let a = RuntimeConfig::global();
        let b = RuntimeConfig::global();
        assert!(std::ptr::eq(a, b));
        assert_eq!(a.schedule().chunks_per_thread, a.chunks_per_thread);
    }
}
