//! Process-wide runtime configuration: every `PDM_*` environment knob,
//! read **once** and cached.
//!
//! Before this module, each executor entry point called
//! [`Schedule::from_env`] per run — thousands of `std::env::var` calls
//! per second under serving load, and no single place documenting what
//! the process was actually configured with. [`RuntimeConfig`]
//! consolidates the knobs:
//!
//! | variable | field | default | consumer |
//! |----------|-------|---------|----------|
//! | `PDM_CHUNKS_PER_THREAD` | [`chunks_per_thread`](RuntimeConfig::chunks_per_thread) | 4 | range splitter (balanced group spaces) |
//! | `PDM_STEAL_CHUNKS_PER_THREAD` | [`steal_chunks_per_thread`](RuntimeConfig::steal_chunks_per_thread) | 16 | range splitter (cost-skewed spaces) |
//! | `PDM_PROPTEST_SEED` | [`proptest_seed`](RuntimeConfig::proptest_seed) | unset | vendored proptest seed mixing (tests only) |
//!
//! [`RuntimeConfig::global`] is the cached process-wide instance: the
//! environment is read on first use and never again, so per-request
//! paths pay an atomic load instead of three env lookups. Executors and
//! services should take their [`Schedule`] from
//! [`RuntimeConfig::global().schedule()`](RuntimeConfig::schedule) (or
//! accept an explicit `Schedule`/`RuntimeConfig` at construction for
//! per-instance overrides, as `pdm-service`'s session builder does).
//!
//! `PDM_PROPTEST_SEED` is *consumed* by the vendored proptest stand-in
//! (which cannot depend on this crate); the field here mirrors its
//! parsing rule — integer value, or an FNV-1a hash of the raw string —
//! so diagnostics can report the effective seed perturbation.

use crate::schedule::Schedule;
use std::sync::OnceLock;

/// Every runtime environment knob, parsed once.
///
/// Construct with [`RuntimeConfig::from_env`] (or
/// [`RuntimeConfig::from_env_values`] with injected raw strings in
/// tests), or read the process-wide cached instance via
/// [`RuntimeConfig::global`]. Invalid or non-positive values fall back
/// to the documented defaults, matching [`Schedule::from_env_value`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuntimeConfig {
    /// Contiguous group ranges per worker on balanced group spaces
    /// (`PDM_CHUNKS_PER_THREAD`, default
    /// [`crate::schedule::DEFAULT_CHUNKS_PER_THREAD`]).
    pub chunks_per_thread: usize,
    /// Finer split applied on cost-skewed group spaces so idle workers
    /// always find chunks to steal (`PDM_STEAL_CHUNKS_PER_THREAD`,
    /// default [`crate::schedule::DEFAULT_STEAL_CHUNKS_PER_THREAD`]).
    pub steal_chunks_per_thread: usize,
    /// Effective proptest seed perturbation (`PDM_PROPTEST_SEED`):
    /// `None` when unset, otherwise the integer value or the FNV-1a
    /// hash of the raw string — the same rule the vendored proptest
    /// applies when mixing test-name-derived seeds.
    pub proptest_seed: Option<u64>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            chunks_per_thread: crate::schedule::DEFAULT_CHUNKS_PER_THREAD,
            steal_chunks_per_thread: crate::schedule::DEFAULT_STEAL_CHUNKS_PER_THREAD,
            proptest_seed: None,
        }
    }
}

impl RuntimeConfig {
    /// Parse every knob from the process environment.
    pub fn from_env() -> RuntimeConfig {
        Self::from_env_values(
            std::env::var("PDM_CHUNKS_PER_THREAD").ok().as_deref(),
            std::env::var("PDM_STEAL_CHUNKS_PER_THREAD").ok().as_deref(),
            std::env::var("PDM_PROPTEST_SEED").ok().as_deref(),
        )
    }

    /// [`RuntimeConfig::from_env`] with the raw variable values
    /// injected — deterministic regardless of the ambient environment.
    pub fn from_env_values(
        raw_chunks: Option<&str>,
        raw_steal: Option<&str>,
        raw_seed: Option<&str>,
    ) -> RuntimeConfig {
        let sched = Schedule::from_env_value(raw_chunks, raw_steal);
        RuntimeConfig {
            chunks_per_thread: sched.chunks_per_thread,
            steal_chunks_per_thread: sched.steal_chunks_per_thread,
            proptest_seed: raw_seed
                .map(|v| v.trim().parse::<u64>().unwrap_or_else(|_| fnv1a(v.trim()))),
        }
    }

    /// The process-wide configuration, read from the environment on
    /// first call and cached for the lifetime of the process.
    pub fn global() -> &'static RuntimeConfig {
        static GLOBAL: OnceLock<RuntimeConfig> = OnceLock::new();
        GLOBAL.get_or_init(RuntimeConfig::from_env)
    }

    /// The range-splitting [`Schedule`] this configuration describes.
    pub fn schedule(&self) -> Schedule {
        Schedule {
            chunks_per_thread: self.chunks_per_thread,
            steal_chunks_per_thread: self.steal_chunks_per_thread,
        }
    }
}

/// FNV-1a, matching both `LoopNest::structural_hash`'s constants and the
/// vendored proptest's string-seed fallback.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{DEFAULT_CHUNKS_PER_THREAD, DEFAULT_STEAL_CHUNKS_PER_THREAD};

    #[test]
    fn defaults_match_schedule_defaults() {
        let c = RuntimeConfig::from_env_values(None, None, None);
        assert_eq!(c, RuntimeConfig::default());
        assert_eq!(c.chunks_per_thread, DEFAULT_CHUNKS_PER_THREAD);
        assert_eq!(c.steal_chunks_per_thread, DEFAULT_STEAL_CHUNKS_PER_THREAD);
        assert_eq!(c.proptest_seed, None);
        assert_eq!(c.schedule(), Schedule::from_env_value(None, None));
    }

    #[test]
    fn parses_and_falls_back_like_schedule() {
        let c = RuntimeConfig::from_env_values(Some(" 2 "), Some("32"), Some("7"));
        assert_eq!(c.chunks_per_thread, 2);
        assert_eq!(c.steal_chunks_per_thread, 32);
        assert_eq!(c.proptest_seed, Some(7));

        let c = RuntimeConfig::from_env_values(Some("0"), Some("nope"), None);
        assert_eq!(c.chunks_per_thread, DEFAULT_CHUNKS_PER_THREAD);
        assert_eq!(c.steal_chunks_per_thread, DEFAULT_STEAL_CHUNKS_PER_THREAD);
    }

    #[test]
    fn seed_strings_hash_like_proptest() {
        // Mirrors vendor/proptest's rule: non-integer seeds hash FNV-1a.
        let c = RuntimeConfig::from_env_values(None, None, Some("tuesday"));
        assert_eq!(c.proptest_seed, Some(fnv1a("tuesday")));
        let c = RuntimeConfig::from_env_values(None, None, Some(" 42 "));
        assert_eq!(c.proptest_seed, Some(42));
    }

    #[test]
    fn global_is_stable_across_calls() {
        let a = RuntimeConfig::global();
        let b = RuntimeConfig::global();
        assert!(std::ptr::eq(a, b));
        assert_eq!(a.schedule().chunks_per_thread, a.chunks_per_thread);
    }
}
