//! Staged execution of multi-kernel [`ProgramPlan`]s — imperfect nests,
//! end to end.
//!
//! A normalized imperfect nest is a sequence of perfect kernels with a
//! dependence DAG (`pdm-core`'s [`ProgramPlan`]). This module supplies
//! every executor tier for that shape:
//!
//! * [`run_imperfect_sequential`] — the **reference semantics**: walk
//!   the imperfect nest itself, recursively, executing `pre` / inner
//!   loop / `post` in exact source order. Slow and obvious on purpose
//!   (the imperfect analogue of [`crate::exec::run_sequential`]).
//! * [`run_program_sequential`] — the fissioned baseline: kernels in
//!   source order, each interpreted in original lexicographic order.
//! * [`run_program_parallel`] — interpreted parallel: kernels grouped by
//!   DAG **stage**; within a stage, every kernel's streaming group
//!   ranges (steal-aware [`crate::schedule::Schedule::ranges_for`] — skewed kernels split
//!   finer so idle workers can steal) are flattened into one task list
//!   and run in a single work-stealing rayon region, so independent
//!   kernels' groups interleave freely across workers. A barrier exists
//!   **only between stages** — i.e. only where a DAG edge forces one.
//! * [`CompiledProgram`] — the same staging driven by per-kernel
//!   compiled engines ([`CompiledPlan`]), reusing the strength-reduced
//!   walkers and one scratch per task.
//!
//! All kernels share one [`Memory`] sized by [`Memory::for_imperfect`]
//! (array ids are stable across kernels by construction). The
//! correctness claim — staged parallel execution is bit-identical to the
//! imperfect reference — is pinned by [`crate::equivalence`]'s program
//! harness and validated at runtime by
//! [`crate::checked::run_program_parallel_checked`].

use crate::compile::CompiledPlan;
use crate::exec;
use crate::memory::Memory;
use crate::schedule;
use crate::{Result, RuntimeError};
use pdm_core::program::ProgramPlan;
use pdm_loopir::imperfect::ImperfectNest;
use rayon::prelude::*;

/// Execute the imperfect nest in its original, fully interleaved source
/// order: at every iteration of level `k`, run `pre[k]`, then the inner
/// loop, then `post[k]`. Returns the number of **statement executions**
/// (pre/post statements run once per *outer* iteration, so innermost
/// iteration counts would undercount the work).
pub fn run_imperfect_sequential(imp: &ImperfectNest, mem: &Memory) -> Result<u64> {
    let n = imp.depth();
    let mut idx = vec![0i64; n];
    let mut count = 0u64;
    walk_imperfect(imp, mem, &mut idx, 0, &mut count)?;
    Ok(count)
}

fn walk_imperfect(
    imp: &ImperfectNest,
    mem: &Memory,
    idx: &mut Vec<i64>,
    level: usize,
    count: &mut u64,
) -> Result<()> {
    let n = imp.depth();
    // Bounds of level `k` read indices `< k` only; deeper slots may hold
    // stale values from a previous subtree, which is fine for the same
    // reason.
    let lo = imp.lower(level).eval(idx)?;
    let hi = imp.upper(level).eval(idx)?;
    for v in lo..=hi {
        idx[level] = v;
        if level + 1 == n {
            for stmt in imp.body() {
                exec::exec_stmt(stmt, mem, idx)?;
                *count += 1;
            }
        } else {
            for stmt in imp.pre(level) {
                exec::exec_stmt(stmt, mem, idx)?;
                *count += 1;
            }
            walk_imperfect(imp, mem, idx, level + 1, count)?;
            for stmt in imp.post(level) {
                exec::exec_stmt(stmt, mem, idx)?;
                *count += 1;
            }
        }
    }
    Ok(())
}

/// Execute a program plan **sequentially**: kernels in source order,
/// each interpreted in original lexicographic order (the
/// fissioned-sequential baseline of the differential tests). Returns
/// the summed kernel iteration count.
pub fn run_program_sequential(pp: &ProgramPlan, mem: &Memory) -> Result<u64> {
    let mut total = 0u64;
    for kp in pp.kernels() {
        total += exec::run_sequential(kp.nest(), mem)?;
    }
    Ok(total)
}

/// The flattened task list of one stage: `(kernel, start, end)` group
/// ranges of every kernel in the stage, with each kernel's steal-aware
/// range split supplied by the caller (the interpreted and compiled
/// executors size ranges through different bound representations — both
/// via [`crate::schedule::Schedule::ranges_for`] — but must split identically).
fn stage_tasks(
    stage: &[usize],
    mut ranges_of: impl FnMut(usize) -> Result<Vec<(u64, u64)>>,
) -> Result<Vec<(usize, u64, u64)>> {
    let mut tasks = Vec::new();
    for &k in stage {
        for (start, end) in ranges_of(k)? {
            tasks.push((k, start, end));
        }
    }
    Ok(tasks)
}

/// Execute a program plan **in parallel, interpreted**: stage by stage,
/// with every kernel of a stage contributing its streaming group ranges
/// to one shared rayon region — no barrier between independent kernels,
/// one barrier per DAG stage boundary. Returns the summed kernel
/// iteration count.
pub fn run_program_parallel(pp: &ProgramPlan, mem: &Memory) -> Result<u64> {
    let sched = crate::config::RuntimeConfig::global().schedule();
    let threads = rayon::current_num_threads();
    // One offset table per kernel, shared by reference across its tasks.
    let offsets: Vec<_> = pp
        .kernels()
        .iter()
        .map(|kp| exec::offset_table(&kp.plan))
        .collect();
    let mut total = 0u64;
    for stage in pp.stages() {
        let tasks = stage_tasks(stage, |k| {
            let kp = &pp.kernels()[k];
            let z = kp.plan.doall_count();
            let total = schedule::group_count(kp.plan.bounds(), z, offsets[k].len())?;
            Ok(sched.ranges_for(kp.plan.bounds(), z, total, threads))
        })?;
        let counts: std::result::Result<Vec<u64>, RuntimeError> = tasks
            .par_iter()
            .map(|&(k, start, end)| {
                let kp = &pp.kernels()[k];
                exec::run_group_range(kp.nest(), &kp.plan, &offsets[k], mem, start, end)
            })
            .collect();
        total += counts?.into_iter().sum::<u64>();
    }
    Ok(total)
}

/// A program plan lowered to per-kernel compiled engines, ready for
/// staged parallel execution.
pub struct CompiledProgram {
    kernels: Vec<CompiledPlan>,
    stages: Vec<Vec<usize>>,
}

impl CompiledProgram {
    /// Lower every kernel of the plan against the **shared** program
    /// memory (allocate it with [`Memory::for_imperfect`] — per-kernel
    /// memories would disagree on array geometry).
    pub fn compile(pp: &ProgramPlan, mem: &Memory) -> Result<CompiledProgram> {
        let kernels = pp
            .kernels()
            .iter()
            .map(|kp| CompiledPlan::compile(kp.nest(), &kp.plan, mem))
            .collect::<Result<Vec<_>>>()?;
        Ok(CompiledProgram {
            kernels,
            stages: pp.stages().to_vec(),
        })
    }

    /// Kernel count.
    pub fn kernel_count(&self) -> usize {
        self.kernels.len()
    }

    /// Execute the whole program with staged compiled parallelism:
    /// within a stage, every kernel's group ranges share one rayon
    /// region (one compiled scratch per task); barriers exist only at
    /// stage boundaries. Returns the summed kernel iteration count.
    pub fn run_parallel(&self, mem: &Memory) -> Result<u64> {
        let sched = crate::config::RuntimeConfig::global().schedule();
        let threads = rayon::current_num_threads();
        let mut total = 0u64;
        for stage in &self.stages {
            let tasks = stage_tasks(stage, |k| {
                let kp = &self.kernels[k];
                let total = kp.group_count()?;
                Ok(sched.ranges_for(kp.bounds(), kp.doall(), total, threads))
            })?;
            let counts: std::result::Result<Vec<u64>, RuntimeError> = tasks
                .par_iter()
                .map(|&(k, start, end)| {
                    let mut scratch = self.kernels[k].new_scratch();
                    self.kernels[k].run_range(mem, start, end, &mut scratch)
                })
                .collect();
            total += counts?.into_iter().sum::<u64>();
        }
        Ok(total)
    }

    /// Execute kernels one after the other through their transformed
    /// (grouped) schedules — the compiled determinism baseline.
    pub fn run_transformed_sequential(&self, mem: &Memory) -> Result<u64> {
        let mut total = 0u64;
        for k in &self.kernels {
            total += k.run_transformed_sequential(mem)?;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_core::program::parallelize_program;
    use pdm_loopir::parse::parse_imperfect;

    fn four_way(src: &str, seed: u64) {
        let imp = parse_imperfect(src).unwrap();
        let pp = parallelize_program(&imp).unwrap();
        let mut m_ref = Memory::for_imperfect(&imp).unwrap();
        let mut m_seq = Memory::for_imperfect(&imp).unwrap();
        let mut m_par = Memory::for_imperfect(&imp).unwrap();
        let mut m_comp = Memory::for_imperfect(&imp).unwrap();
        m_ref.init_deterministic(seed);
        m_seq.init_deterministic(seed);
        m_par.init_deterministic(seed);
        m_comp.init_deterministic(seed);
        run_imperfect_sequential(&imp, &m_ref).unwrap();
        let c_seq = run_program_sequential(&pp, &m_seq).unwrap();
        let c_par = run_program_parallel(&pp, &m_par).unwrap();
        let compiled = CompiledProgram::compile(&pp, &m_comp).unwrap();
        let c_comp = compiled.run_parallel(&m_comp).unwrap();
        assert_eq!(c_seq, c_par, "kernel iteration counts diverged");
        assert_eq!(c_seq, c_comp, "compiled iteration count diverged");
        assert_eq!(m_ref.snapshot(), m_seq.snapshot(), "fissioned-sequential");
        assert_eq!(m_ref.snapshot(), m_par.snapshot(), "interpreted-parallel");
        assert_eq!(m_ref.snapshot(), m_comp.snapshot(), "compiled-parallel");
    }

    #[test]
    fn initialization_prologue_program() {
        four_way(
            "for i = 0..=8 {
               B[i, 0] = i;
               for j = 1..=8 { A[i, j] = A[i, j - 1] + B[i, 0]; }
             }",
            7,
        );
    }

    #[test]
    fn sunk_cycle_program() {
        four_way(
            "for i = 1..=6 {
               A[i, 0] = A[i - 1, 6] + 1;
               for j = 1..=6 { A[i, j] = A[i, j - 1] + 1; }
             }",
            3,
        );
    }

    #[test]
    fn epilogue_and_triangular_program() {
        four_way(
            "for i = 0..=6 {
               B[i, 0] = i;
               for j = 0..=i { A[i, j] = A[i, j] + B[i, 0]; }
               C[0, i] = i + 1;
             }",
            11,
        );
    }

    #[test]
    fn depth3_imperfect_program() {
        four_way(
            "for i = 0..=4 {
               B[i, 0, 0] = i;
               for j = 0..=4 {
                 C[i, j, 0] = B[i, 0, 0] + j;
                 for k = 0..=4 { A[i, j, k] = A[i, j, k] + C[i, j, 0]; }
               }
             }",
            5,
        );
    }
}
