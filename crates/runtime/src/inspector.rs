//! Inspector/executor speculation for **size-dependent dependences**.
//!
//! A nest whose array subscripts read symbolic parameters (e.g.
//! `A[i + K] = A[i] + 1`) has dependence distances that change with the
//! parameter valuation — exactly the case the paper's static framework
//! cannot decide once and for all. The planner therefore plans
//! **speculatively** on the parameter-free *hull* of the accesses (the
//! `i·A + b` part, ignoring `q·P`), and this module supplies the
//! runtime half of the classic inspector/executor bargain: once per
//! concrete valuation, *inspect* the real access pattern and decide
//! whether the speculative parallel plan is safe to run.
//!
//! [`audit`] walks the concrete access lattice of the substituted nest
//! under the planned partitioning — every group, every iteration, every
//! access, **without executing the body** — and returns a [`Verdict`]:
//!
//! * [`Verdict::Certified`] — no two groups touch a common cell with a
//!   write, and within every group the touch order of every written
//!   cell is consistent with original program order. The parallel
//!   executors run unchanged.
//! * [`Verdict::Refined`] — groups conflict, but every conflict is
//!   *directed*: for each shared cell one group's touches all precede
//!   the other's in original order. The conflict graph is a DAG and
//!   its longest-path layering yields **stages**;
//!   [`run_refined_compiled`] runs stages sequentially with the
//!   groups of one stage in parallel as compiled range tasks
//!   ([`run_refined`] is the interpreted fallback). Both reach groups
//!   through seeked range cursors — no group table materialization.
//! * [`Verdict::Rejected`] — intra-group touch order disagrees with
//!   program order, conflicting touch ranges overlap, or the direction
//!   graph has a cycle. The caller falls back to
//!   [`crate::exec::run_sequential`].
//!
//! The cross-group certifier is [`crate::checked`]'s conflict detector
//! (`detect_conflicts`), fed synthesized per-group access summaries —
//! the same first-owner/wrote-flag merge rule the race checker trusts.
//!
//! Soundness: cross-group conflict freedom alone is **not** enough. The
//! hull plan also fixes a *within-group* walk order (transformed lex
//! order), and a parametric offset can redirect a dependence between
//! two iterations of one group. [`audit`] therefore checks, per
//! `(cell, group)`, that every write is walked after every earlier
//! touch of that cell in original-lex terms and every read is walked
//! after every original-lex-earlier write — the exact pairwise
//! condition for the group walk to reproduce sequential semantics on
//! that cell.
//!
//! Verdicts are cached per `(structural_hash, valuation)` in
//! [`crate::sharded::VerdictCache`], so a service audits each valuation
//! once and every later request dispatches straight to the certified
//! executor. When the planner's template can additionally certify a
//! whole valuation *interval* (`PlanTemplate::stability_box` in
//! `pdm-core`), the cache stores the interval ahead of point entries
//! and every in-interval valuation skips the audit entirely.

use crate::checked::{detect_conflicts, LoggedAccess};
use crate::compile::CompiledPlan;
use crate::exec::{exec_body, offset_table, walk_group, GroupSpec};
use crate::memory::Memory;
use crate::schedule::{self, Schedule};
use crate::{Result, RuntimeError};
use pdm_core::plan::ParallelPlan;
use pdm_loopir::nest::LoopNest;
use pdm_loopir::stmt::AccessKind;
use pdm_matrix::vec::IVec;
use pdm_poly::bounds::LoopBounds;
use rayon::prelude::*;
use std::collections::{BTreeMap, HashMap};

/// The inspector's decision for one `(shape, valuation)` pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The speculative plan is safe as-is: run the parallel executors.
    Certified,
    /// The plan's groups conflict, but acyclically: run `stages`
    /// sequentially (each inner `Vec` holds global group indices that
    /// may run concurrently) via [`run_refined`].
    Refined {
        /// Longest-path layers of the group-dependence DAG, in
        /// execution order. Every group index appears exactly once.
        stages: Vec<Vec<u64>>,
    },
    /// Speculation failed; the caller must run sequentially.
    Rejected {
        /// Human-readable cause (first violation found).
        reason: String,
    },
}

impl Verdict {
    /// Stable lowercase tag (`certified` / `refined` / `rejected`) —
    /// the wire-protocol and metrics label.
    pub fn kind(&self) -> &'static str {
        match self {
            Verdict::Certified => "certified",
            Verdict::Refined { .. } => "refined",
            Verdict::Rejected { .. } => "rejected",
        }
    }
}

/// Per-`(cell, group)` touch summary, updated in walk order.
struct Touches {
    wrote: bool,
    /// Original-lex minimum over all touches.
    min: Vec<i64>,
    /// Original-lex maximum over all touches (doubles as the running
    /// "latest touch so far" during the walk — its final value is the
    /// same either way).
    max: Vec<i64>,
    /// Original-lex maximum over writes walked so far.
    max_write: Option<Vec<i64>>,
}

/// One range task's worth of audit state, merged at the barrier.
/// Cell ids are task-local (first-touch order within the range);
/// `keys[local_id]` is the `(array, subscripts)` key, so the merge can
/// remap local ids onto a global intern table deterministically.
struct AuditLocal {
    keys: Vec<(usize, Vec<i64>)>,
    touches: HashMap<(usize, u64), Touches>,
    groups: Vec<u64>,
    disorder: Option<String>,
}

/// Walk one contiguous group range and summarize its touches. The
/// intra-group order check is complete here: a group lies wholly within
/// one range, so `touches` entries never need cross-task merging.
fn audit_range(
    nest: &LoopNest,
    plan: &ParallelPlan,
    offsets: &[IVec],
    task: &schedule::RangeTask<'_, LoopBounds>,
) -> Result<AuditLocal> {
    let mut intern: HashMap<(usize, Vec<i64>), usize> = HashMap::new();
    let mut local = AuditLocal {
        keys: Vec::new(),
        touches: HashMap::new(),
        groups: Vec::new(),
        disorder: None,
    };
    task.for_each(|gid, prefix, o| {
        local.groups.push(gid);
        let g = GroupSpec::new(prefix.to_vec(), offsets[o].clone());
        walk_group(nest, plan, &g, |idx| {
            for stmt in nest.body() {
                if !stmt.guards_hold(idx) {
                    continue;
                }
                for (kind, r) in stmt.accesses() {
                    let sub = r.access.eval(&IVec(idx.to_vec()))?;
                    let next = local.keys.len();
                    let cell = match intern.entry((r.array.0, sub.0)) {
                        std::collections::hash_map::Entry::Occupied(e) => *e.get(),
                        std::collections::hash_map::Entry::Vacant(e) => {
                            local.keys.push(e.key().clone());
                            *e.insert(next)
                        }
                    };
                    let write = kind == AccessKind::Write;
                    match local.touches.get_mut(&(cell, gid)) {
                        None => {
                            local.touches.insert(
                                (cell, gid),
                                Touches {
                                    wrote: write,
                                    min: idx.to_vec(),
                                    max: idx.to_vec(),
                                    max_write: write.then(|| idx.to_vec()),
                                },
                            );
                        }
                        Some(t) => {
                            // Pairwise order check against everything
                            // already walked in this group: a write
                            // must be lex-after every prior touch, a
                            // read lex-after every prior write.
                            let bad = if write {
                                idx < t.max.as_slice()
                            } else {
                                t.max_write.as_deref().is_some_and(|w| idx < w)
                            };
                            if bad && local.disorder.is_none() {
                                local.disorder = Some(format!(
                                    "group {gid} walks cell {cell} (array {}) against \
                                     program order at iteration {idx:?}",
                                    r.array.0
                                ));
                            }
                            t.wrote |= write;
                            if idx < t.min.as_slice() {
                                t.min = idx.to_vec();
                            }
                            if idx > t.max.as_slice() {
                                t.max = idx.to_vec();
                            }
                            if write && t.max_write.as_deref().is_none_or(|w| idx > w) {
                                t.max_write = Some(idx.to_vec());
                            }
                        }
                    }
                }
            }
            Ok(())
        })
    })?;
    Ok(local)
}

/// Audit the concrete nest (parameters already substituted) against the
/// speculative `plan`: walk every group's iterations in plan order,
/// log every access (guards respected, body **not** executed), and
/// classify the result. See the [module docs](self) for the decision
/// rules. Cost is one extra pass over the iteration space — compare
/// `replan_ms` vs `audit_ms` in `BENCH_inspector.json` for why this
/// beats re-planning per valuation — and the walk fans out over the
/// same steal-aware group ranges the executors use, so first-contact
/// audits scale with cores.
///
/// Determinism: tasks cover disjoint ascending ranges and are merged
/// in task order, so the global intern table, the group order, and the
/// verdict are identical to a sequential walk regardless of thread
/// schedule.
pub fn audit(nest: &LoopNest, plan: &ParallelPlan) -> Result<Verdict> {
    let offsets = offset_table(plan);
    let sched = crate::config::RuntimeConfig::global().schedule();
    let tasks = schedule::plan_range_tasks(
        plan.bounds(),
        plan.doall_count(),
        offsets.len(),
        &sched,
        rayon::current_num_threads().max(1),
    )?;
    let locals: std::result::Result<Vec<AuditLocal>, RuntimeError> = tasks
        .par_iter()
        .map(|task| audit_range(nest, plan, &offsets, task))
        .collect();

    // Merge in task order: walking each task's keys in first-touch
    // order reproduces the sequential intern numbering exactly.
    let mut intern: HashMap<(usize, Vec<i64>), usize> = HashMap::new();
    let mut touches: HashMap<(usize, u64), Touches> = HashMap::new();
    let mut all_groups: Vec<u64> = Vec::new();
    let mut disorder: Option<String> = None;
    for local in locals? {
        let remap: Vec<usize> = local
            .keys
            .into_iter()
            .map(|key| {
                let next = intern.len();
                *intern.entry(key).or_insert(next)
            })
            .collect();
        // Plain inserts: a group lives in exactly one range task, so
        // (cell, gid) keys are disjoint across tasks.
        for ((cell, gid), t) in local.touches {
            touches.insert((remap[cell], gid), t);
        }
        all_groups.extend(local.groups);
        if disorder.is_none() {
            disorder = local.disorder;
        }
    }
    if let Some(reason) = disorder {
        // Intra-group misordering cannot be repaired by staging whole
        // groups — only sequential execution preserves semantics.
        return Ok(Verdict::Rejected { reason });
    }

    // Certify cross-group independence with the race checker's scan,
    // over synthesized one-entry-per-(cell, group) logs.
    let mut per_group: BTreeMap<u64, Vec<LoggedAccess>> = BTreeMap::new();
    for ((cell, gid), t) in &touches {
        per_group.entry(*gid).or_default().push(LoggedAccess {
            array: 0,
            cell: *cell,
            write: t.wrote,
        });
    }
    let (conflicts, _) = detect_conflicts(
        per_group.iter().map(|(gid, log)| (*gid, log.as_slice())),
        |g0, g1, a| format!("cell {} touched by groups {g0} and {g1}", a.cell),
    );
    if conflicts == 0 {
        return Ok(Verdict::Certified);
    }

    // Refinement: direct each conflict, reject overlaps, layer the DAG.
    let mut by_cell: HashMap<usize, Vec<(u64, &Touches)>> = HashMap::new();
    for ((cell, gid), t) in &touches {
        by_cell.entry(*cell).or_default().push((*gid, t));
    }
    let mut edges: std::collections::HashSet<(u64, u64)> = std::collections::HashSet::new();
    for (cell, list) in &by_cell {
        for (i, (ga, ta)) in list.iter().enumerate() {
            for (gb, tb) in &list[i + 1..] {
                if !ta.wrote && !tb.wrote {
                    continue;
                }
                if ta.max < tb.min {
                    edges.insert((*ga, *gb));
                } else if tb.max < ta.min {
                    edges.insert((*gb, *ga));
                } else {
                    return Ok(Verdict::Rejected {
                        reason: format!(
                            "groups {ga} and {gb} interleave conflicting touches of cell {cell}"
                        ),
                    });
                }
            }
        }
    }

    // Kahn longest-path layering over all groups (isolated groups land
    // in stage 0). A cycle means contradictory directions → reject.
    let mut indeg: HashMap<u64, usize> = all_groups.iter().map(|&g| (g, 0)).collect();
    let mut succ: HashMap<u64, Vec<u64>> = HashMap::new();
    for &(a, b) in &edges {
        *indeg.get_mut(&b).expect("edge endpoint is a group") += 1;
        succ.entry(a).or_default().push(b);
    }
    let mut layer: HashMap<u64, usize> = HashMap::new();
    let mut queue: Vec<u64> = all_groups
        .iter()
        .copied()
        .filter(|g| indeg[g] == 0)
        .collect();
    for &g in &queue {
        layer.insert(g, 0);
    }
    let mut done = 0usize;
    while let Some(g) = queue.pop() {
        done += 1;
        let lg = layer[&g];
        for &s in succ.get(&g).map(Vec::as_slice).unwrap_or(&[]) {
            let e = layer.entry(s).or_insert(0);
            *e = (*e).max(lg + 1);
            let d = indeg.get_mut(&s).expect("edge endpoint is a group");
            *d -= 1;
            if *d == 0 {
                queue.push(s);
            }
        }
    }
    if done != all_groups.len() {
        return Ok(Verdict::Rejected {
            reason: "group-dependence graph has a cycle".into(),
        });
    }
    let depth = layer.values().copied().max().unwrap_or(0) + 1;
    let mut stages: Vec<Vec<u64>> = vec![Vec::new(); depth];
    for &g in &all_groups {
        stages[layer[&g]].push(g);
    }
    for s in &mut stages {
        s.sort_unstable();
    }
    Ok(Verdict::Refined { stages })
}

/// Coalesce one stage's group ids into contiguous `[start, end)` runs
/// and split fat runs so the stage yields roughly `target` similarly
/// sized chunks — the unit of parallelism for the refined executors.
/// Chunks are cursor ranges, so no group table is ever materialized.
fn stage_chunks(stage: &[u64], target: usize) -> Vec<(u64, u64)> {
    let mut gids = stage.to_vec();
    gids.sort_unstable();
    let mut runs: Vec<(u64, u64)> = Vec::new();
    for g in gids {
        match runs.last_mut() {
            Some(r) if r.1 == g => r.1 = g + 1,
            _ => runs.push((g, g + 1)),
        }
    }
    let per = (stage.len() as u64 / target.max(1) as u64).max(1);
    let mut chunks = Vec::new();
    for (mut s, e) in runs {
        while e - s > per {
            chunks.push((s, s + per));
            s += per;
        }
        if s < e {
            chunks.push((s, e));
        }
    }
    chunks
}

/// Target chunk count per stage for the current pool and schedule.
fn stage_chunk_target(sched: &Schedule) -> usize {
    rayon::current_num_threads().max(1) * sched.chunks_per_thread.max(1)
}

/// Execute a [`Verdict::Refined`] staging through the interpreter:
/// stages run one after the other, the groups of one stage
/// concurrently on the rayon pool. Groups are reached with seeked
/// range cursors — no group table is materialized, so peak live
/// groups stays bounded by threads × chunks. Returns the number of
/// iterations executed.
///
/// Prefer [`run_refined_compiled`] when a [`CompiledPlan`] for the
/// nest exists; this interpreted walker is the fallback for bodies
/// the compiler cannot stage.
pub fn run_refined(
    nest: &LoopNest,
    plan: &ParallelPlan,
    mem: &Memory,
    stages: &[Vec<u64>],
) -> Result<u64> {
    let offsets = offset_table(plan);
    let z = plan.doall_count();
    let target = stage_chunk_target(&crate::config::RuntimeConfig::global().schedule());
    let mut total = 0u64;
    for stage in stages {
        let counts: std::result::Result<Vec<u64>, RuntimeError> = stage_chunks(stage, target)
            .par_iter()
            .map(|&(start, end)| {
                let mut count = 0u64;
                schedule::for_each_group_in_range(
                    plan.bounds(),
                    z,
                    offsets.len(),
                    start,
                    end,
                    |_gid, prefix, o| {
                        let g = GroupSpec::new(prefix.to_vec(), offsets[o].clone());
                        walk_group(nest, plan, &g, |idx| {
                            exec_body(nest, mem, idx)?;
                            count += 1;
                            Ok(())
                        })
                    },
                )?;
                Ok(count)
            })
            .collect();
        total += counts?.into_iter().sum::<u64>();
    }
    Ok(total)
}

/// Execute a [`Verdict::Refined`] staging through a [`CompiledPlan`]:
/// each stage's contiguous group runs become compiled range tasks
/// (one scratch per chunk, the streaming `run_range` driver — the
/// same machinery `run_parallel_scheduled` uses), with a barrier
/// between stages. Returns the iterations executed.
pub fn run_refined_compiled(
    plan: &CompiledPlan,
    mem: &Memory,
    stages: &[Vec<u64>],
    sched: Schedule,
) -> Result<u64> {
    let target = stage_chunk_target(&sched);
    let mut total = 0u64;
    for stage in stages {
        let counts: std::result::Result<Vec<u64>, RuntimeError> = stage_chunks(stage, target)
            .par_iter()
            .map(|&(start, end)| {
                let mut scratch = plan.new_scratch();
                plan.run_range(mem, start, end, &mut scratch)
            })
            .collect();
        total += counts?.into_iter().sum::<u64>();
    }
    Ok(total)
}

/// Dispatch execution on a verdict: certified → the parallel
/// interpreter, refined → the compiled staged executor (falling back
/// to interpreted [`run_refined`] if the body defeats the compiler),
/// rejected → the sequential reference order. Returns the iterations
/// executed.
pub fn run_with_verdict(
    nest: &LoopNest,
    plan: &ParallelPlan,
    mem: &Memory,
    verdict: &Verdict,
) -> Result<u64> {
    match verdict {
        Verdict::Certified => crate::exec::run_parallel(nest, plan, mem),
        Verdict::Refined { stages } => match CompiledPlan::compile(nest, plan, mem) {
            Ok(cp) => run_refined_compiled(
                &cp,
                mem,
                stages,
                crate::config::RuntimeConfig::global().schedule(),
            ),
            Err(_) => run_refined(nest, plan, mem, stages),
        },
        Verdict::Rejected { .. } => crate::exec::run_sequential(nest, mem),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_core::template::plan_template;
    use pdm_loopir::parse::{parse_loop_symbolic, parse_loop_with};

    /// Plan the hull of `src`, substitute at `vals`, audit.
    fn audit_at(
        src: &str,
        params: &[&str],
        vals: &[(&str, i64)],
    ) -> (LoopNest, ParallelPlan, Verdict) {
        let shape = parse_loop_symbolic(src, params).unwrap();
        assert!(shape.has_parametric_accesses());
        let t = plan_template(&shape).unwrap();
        assert!(t.requires_inspection());
        let plan = t.instantiate(vals).unwrap();
        let nest = t.instantiate_nest(vals).unwrap();
        let v = audit(&nest, &plan).unwrap();
        (nest, plan, v)
    }

    const SHIFTED_CHAIN: &str = "for i = 0..=19 { A[i + K] = A[i] + 1; }";

    #[test]
    fn zero_offset_chain_certifies_nothing_but_k0_is_race_free() {
        // Hull of A[i + K] = A[i] + 1 is A[i] = A[i] + 1: fully
        // parallel. K = 0 really is race-free → certified.
        let (nest, plan, v) = audit_at(SHIFTED_CHAIN, &["K"], &[("K", 0)]);
        assert_eq!(v, Verdict::Certified);
        let mem = Memory::for_nest(&nest).unwrap();
        let n = run_with_verdict(&nest, &plan, &mem, &v).unwrap();
        assert_eq!(n, 20);
    }

    #[test]
    fn nonzero_offset_chain_is_not_certified() {
        // K = 1 turns the nest into a true sequential chain; the
        // speculative fully-parallel plan must not be certified.
        let (nest, plan, v) = audit_at(SHIFTED_CHAIN, &["K"], &[("K", 1)]);
        assert_ne!(v, Verdict::Certified, "{v:?}");
        // Execution through the verdict still matches the reference.
        let mem = Memory::for_nest(&nest).unwrap();
        let m_ref = Memory::for_nest(&nest).unwrap();
        run_with_verdict(&nest, &plan, &mem, &v).unwrap();
        crate::exec::run_sequential(&nest, &m_ref).unwrap();
        assert_eq!(mem.snapshot(), m_ref.snapshot());
    }

    #[test]
    fn directed_conflicts_refine_into_stages() {
        // Hull A[i1, i2] = A[i1, i2] + 1 is fully parallel (every
        // iteration its own group); K = 1 shifts the write one row
        // down, so cell (i1 + 1, i2) is written by group (i1, i2) and
        // read by group (i1 + 1, i2) — conflicts directed along i1.
        // The layering must recover row-by-row stages with the four
        // groups of one row still concurrent.
        let src = "for i1 = 0..=3 { for i2 = 0..=3 { A[i1 + K, i2] = A[i1, i2] + 1; } }";
        let (nest, plan, v) = audit_at(src, &["K"], &[("K", 1)]);
        match &v {
            Verdict::Refined { stages } => {
                let total: usize = stages.iter().map(Vec::len).sum();
                assert_eq!(total as u64, crate::exec::group_count(&plan).unwrap());
                assert_eq!(stages.len(), 4, "one stage per i1 row: {stages:?}");
                assert!(stages.iter().all(|s| s.len() == 4), "{stages:?}");
            }
            other => panic!("expected refinement, got {other:?}"),
        }
        let mem = Memory::for_nest(&nest).unwrap();
        let m_ref = Memory::for_nest(&nest).unwrap();
        let n = run_with_verdict(&nest, &plan, &mem, &v).unwrap();
        crate::exec::run_sequential(&nest, &m_ref).unwrap();
        assert_eq!(n, 16);
        assert_eq!(mem.snapshot(), m_ref.snapshot());
    }

    #[test]
    fn interleaved_conflicts_reject() {
        // Hull A[i] = A[i - 2] + 1 partitions into even/odd chains;
        // K = 1 shifts only the write, so each chain writes the cells
        // the other reads, interleaved across the whole range — no
        // stage order exists and speculation must fail closed.
        let src = "for i = 2..=21 { A[i + K] = A[i - 2] + 1; }";
        let (nest, plan, v) = audit_at(src, &["K"], &[("K", 1)]);
        assert!(matches!(v, Verdict::Rejected { .. }), "{v:?}");
        // The rejected path still executes correctly (sequentially).
        let mem = Memory::for_nest(&nest).unwrap();
        let m_ref = Memory::for_nest(&nest).unwrap();
        let n = run_with_verdict(&nest, &plan, &mem, &v).unwrap();
        crate::exec::run_sequential(&nest, &m_ref).unwrap();
        assert_eq!(n, 20);
        assert_eq!(mem.snapshot(), m_ref.snapshot());
    }

    #[test]
    fn audit_respects_guards() {
        // The guarded statement touches row 0 only at i2 == 0; with a
        // parametric column shift on a separate array the hull stays
        // parallel and K = 0 certifies.
        let src = "for i1 = 0..=3 { for i2 = 0..=3 {
            A[i1, i2 + K] = A[i1, i2] + 1;
            B[i1, 0] = A[i1, 0] when i2 == 0;
        } }";
        let (_, _, v) = audit_at(src, &["K"], &[("K", 0)]);
        assert_eq!(v, Verdict::Certified);
    }

    #[test]
    fn refined_compiled_matches_interpreted_and_sequential() {
        // Row-shift refinement: both refined executors must agree with
        // each other and with the sequential reference, bit for bit.
        let src = "for i1 = 0..=7 { for i2 = 0..=7 { A[i1 + K, i2] = A[i1, i2] + 1; } }";
        let (nest, plan, v) = audit_at(src, &["K"], &[("K", 1)]);
        let stages = match &v {
            Verdict::Refined { stages } => stages.clone(),
            other => panic!("expected refinement, got {other:?}"),
        };
        let m_ref = Memory::for_nest(&nest).unwrap();
        crate::exec::run_sequential(&nest, &m_ref).unwrap();

        let m_interp = Memory::for_nest(&nest).unwrap();
        let n_interp = run_refined(&nest, &plan, &m_interp, &stages).unwrap();
        assert_eq!(n_interp, 64);
        assert_eq!(m_interp.snapshot(), m_ref.snapshot());

        let cp = CompiledPlan::compile(&nest, &plan, &m_ref).unwrap();
        let m_comp = Memory::for_nest(&nest).unwrap();
        let sched = crate::config::RuntimeConfig::global().schedule();
        let n_comp = run_refined_compiled(&cp, &m_comp, &stages, sched).unwrap();
        assert_eq!(n_comp, 64);
        assert_eq!(m_comp.snapshot(), m_ref.snapshot());
    }

    #[test]
    fn stage_chunks_cover_each_stage_exactly() {
        // Contiguous and gapped stages, various targets: the chunks
        // must partition exactly the stage's gids, in order.
        let cases: [&[u64]; 4] = [&[0, 1, 2, 3, 4, 5, 6, 7], &[3], &[2, 3, 7, 8, 9, 20], &[]];
        for stage in cases {
            for target in [1usize, 3, 16] {
                let chunks = stage_chunks(stage, target);
                let mut covered: Vec<u64> = Vec::new();
                for &(s, e) in &chunks {
                    assert!(s < e, "empty chunk in {chunks:?}");
                    covered.extend(s..e);
                }
                assert_eq!(covered, stage, "target {target}");
            }
        }
    }

    #[test]
    fn audit_verdict_is_identical_across_pool_sizes() {
        // The parallel walk's task-order merge must reproduce the
        // single-threaded audit exactly — intern ids and stages
        // included.
        let src = "for i1 = 0..=5 { for i2 = 0..=5 { A[i1 + K, i2] = A[i1, i2] + 1; } }";
        let shape = parse_loop_symbolic(src, &["K"]).unwrap();
        let t = plan_template(&shape).unwrap();
        let plan = t.instantiate(&[("K", 1)]).unwrap();
        let nest = t.instantiate_nest(&[("K", 1)]).unwrap();
        let one = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let four = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let v1 = one.install(|| audit(&nest, &plan)).unwrap();
        let v4 = four.install(|| audit(&nest, &plan)).unwrap();
        assert_eq!(v1, v4);
        assert!(matches!(v1, Verdict::Refined { .. }), "{v1:?}");
    }

    #[test]
    fn substituted_nest_matches_direct_parse() {
        // The audited nest is exactly what parsing with the valuation
        // inlined would give.
        let shape = parse_loop_symbolic(SHIFTED_CHAIN, &["K"]).unwrap();
        let sub = shape.substitute(&[("K", 3)]).unwrap();
        let direct = parse_loop_with(SHIFTED_CHAIN, &[("K", 3)]).unwrap();
        assert_eq!(sub, direct);
    }
}
