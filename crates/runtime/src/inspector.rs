//! Inspector/executor speculation for **size-dependent dependences**.
//!
//! A nest whose array subscripts read symbolic parameters (e.g.
//! `A[i + K] = A[i] + 1`) has dependence distances that change with the
//! parameter valuation — exactly the case the paper's static framework
//! cannot decide once and for all. The planner therefore plans
//! **speculatively** on the parameter-free *hull* of the accesses (the
//! `i·A + b` part, ignoring `q·P`), and this module supplies the
//! runtime half of the classic inspector/executor bargain: once per
//! concrete valuation, *inspect* the real access pattern and decide
//! whether the speculative parallel plan is safe to run.
//!
//! [`audit`] walks the concrete access lattice of the substituted nest
//! under the planned partitioning — every group, every iteration, every
//! access, **without executing the body** — and returns a [`Verdict`]:
//!
//! * [`Verdict::Certified`] — no two groups touch a common cell with a
//!   write, and within every group the touch order of every written
//!   cell is consistent with original program order. The parallel
//!   executors run unchanged.
//! * [`Verdict::Refined`] — groups conflict, but every conflict is
//!   *directed*: for each shared cell one group's touches all precede
//!   the other's in original order. The conflict graph is a DAG and
//!   its longest-path layering yields **stages**; [`run_refined`] runs
//!   stages sequentially with the groups of one stage in parallel.
//! * [`Verdict::Rejected`] — intra-group touch order disagrees with
//!   program order, conflicting touch ranges overlap, or the direction
//!   graph has a cycle. The caller falls back to
//!   [`crate::exec::run_sequential`].
//!
//! The cross-group certifier is [`crate::checked`]'s conflict detector
//! (`detect_conflicts`), fed synthesized per-group access summaries —
//! the same first-owner/wrote-flag merge rule the race checker trusts.
//!
//! Soundness: cross-group conflict freedom alone is **not** enough. The
//! hull plan also fixes a *within-group* walk order (transformed lex
//! order), and a parametric offset can redirect a dependence between
//! two iterations of one group. [`audit`] therefore checks, per
//! `(cell, group)`, that every write is walked after every earlier
//! touch of that cell in original-lex terms and every read is walked
//! after every original-lex-earlier write — the exact pairwise
//! condition for the group walk to reproduce sequential semantics on
//! that cell.
//!
//! Verdicts are cached per `(structural_hash, valuation)` in
//! [`crate::sharded::VerdictCache`], so a service audits each valuation
//! once and every later request dispatches straight to the certified
//! executor.

use crate::checked::{detect_conflicts, LoggedAccess};
use crate::exec::{exec_body, groups, offset_table, walk_group, GroupSpec};
use crate::memory::Memory;
use crate::schedule;
use crate::{Result, RuntimeError};
use pdm_core::plan::ParallelPlan;
use pdm_loopir::nest::LoopNest;
use pdm_loopir::stmt::AccessKind;
use pdm_matrix::vec::IVec;
use rayon::prelude::*;
use std::collections::{BTreeMap, HashMap};

/// The inspector's decision for one `(shape, valuation)` pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// The speculative plan is safe as-is: run the parallel executors.
    Certified,
    /// The plan's groups conflict, but acyclically: run `stages`
    /// sequentially (each inner `Vec` holds global group indices that
    /// may run concurrently) via [`run_refined`].
    Refined {
        /// Longest-path layers of the group-dependence DAG, in
        /// execution order. Every group index appears exactly once.
        stages: Vec<Vec<u64>>,
    },
    /// Speculation failed; the caller must run sequentially.
    Rejected {
        /// Human-readable cause (first violation found).
        reason: String,
    },
}

impl Verdict {
    /// Stable lowercase tag (`certified` / `refined` / `rejected`) —
    /// the wire-protocol and metrics label.
    pub fn kind(&self) -> &'static str {
        match self {
            Verdict::Certified => "certified",
            Verdict::Refined { .. } => "refined",
            Verdict::Rejected { .. } => "rejected",
        }
    }
}

/// Per-`(cell, group)` touch summary, updated in walk order.
struct Touches {
    wrote: bool,
    /// Original-lex minimum over all touches.
    min: Vec<i64>,
    /// Original-lex maximum over all touches (doubles as the running
    /// "latest touch so far" during the walk — its final value is the
    /// same either way).
    max: Vec<i64>,
    /// Original-lex maximum over writes walked so far.
    max_write: Option<Vec<i64>>,
}

/// Audit the concrete nest (parameters already substituted) against the
/// speculative `plan`: walk every group's iterations in plan order,
/// log every access (guards respected, body **not** executed), and
/// classify the result. See the [module docs](self) for the decision
/// rules. Cost is one extra pass over the iteration space — compare
/// `replan_ms` vs `audit_ms` in `BENCH_inspector.json` for why this
/// beats re-planning per valuation.
pub fn audit(nest: &LoopNest, plan: &ParallelPlan) -> Result<Verdict> {
    let offsets = offset_table(plan);
    // Cells interned as (array, subscripts) → dense id, so the audit
    // needs no Memory and never faults on out-of-range subscripts.
    let mut intern: HashMap<(usize, Vec<i64>), usize> = HashMap::new();
    let mut touches: HashMap<(usize, u64), Touches> = HashMap::new();
    let mut all_groups: Vec<u64> = Vec::new();
    let mut disorder: Option<String> = None;
    schedule::for_each_group_in_range(
        plan.bounds(),
        plan.doall_count(),
        offsets.len(),
        0,
        u64::MAX,
        |gid, prefix, o| {
            all_groups.push(gid);
            let g = GroupSpec::new(prefix.to_vec(), offsets[o].clone());
            walk_group(nest, plan, &g, |idx| {
                for stmt in nest.body() {
                    if !stmt.guards_hold(idx) {
                        continue;
                    }
                    for (kind, r) in stmt.accesses() {
                        let sub = r.access.eval(&IVec(idx.to_vec()))?;
                        let next = intern.len();
                        let cell = *intern.entry((r.array.0, sub.0)).or_insert(next);
                        let write = kind == AccessKind::Write;
                        match touches.get_mut(&(cell, gid)) {
                            None => {
                                touches.insert(
                                    (cell, gid),
                                    Touches {
                                        wrote: write,
                                        min: idx.to_vec(),
                                        max: idx.to_vec(),
                                        max_write: write.then(|| idx.to_vec()),
                                    },
                                );
                            }
                            Some(t) => {
                                // Pairwise order check against everything
                                // already walked in this group: a write
                                // must be lex-after every prior touch, a
                                // read lex-after every prior write.
                                let bad = if write {
                                    idx < t.max.as_slice()
                                } else {
                                    t.max_write.as_deref().is_some_and(|w| idx < w)
                                };
                                if bad && disorder.is_none() {
                                    disorder = Some(format!(
                                        "group {gid} walks cell {cell} (array {}) against \
                                         program order at iteration {idx:?}",
                                        r.array.0
                                    ));
                                }
                                t.wrote |= write;
                                if idx < t.min.as_slice() {
                                    t.min = idx.to_vec();
                                }
                                if idx > t.max.as_slice() {
                                    t.max = idx.to_vec();
                                }
                                if write && t.max_write.as_deref().is_none_or(|w| idx > w) {
                                    t.max_write = Some(idx.to_vec());
                                }
                            }
                        }
                    }
                }
                Ok(())
            })
        },
    )?;
    if let Some(reason) = disorder {
        // Intra-group misordering cannot be repaired by staging whole
        // groups — only sequential execution preserves semantics.
        return Ok(Verdict::Rejected { reason });
    }

    // Certify cross-group independence with the race checker's scan,
    // over synthesized one-entry-per-(cell, group) logs.
    let mut per_group: BTreeMap<u64, Vec<LoggedAccess>> = BTreeMap::new();
    for ((cell, gid), t) in &touches {
        per_group.entry(*gid).or_default().push(LoggedAccess {
            array: 0,
            cell: *cell,
            write: t.wrote,
        });
    }
    let (conflicts, _) = detect_conflicts(
        per_group.iter().map(|(gid, log)| (*gid, log.as_slice())),
        |g0, g1, a| format!("cell {} touched by groups {g0} and {g1}", a.cell),
    );
    if conflicts == 0 {
        return Ok(Verdict::Certified);
    }

    // Refinement: direct each conflict, reject overlaps, layer the DAG.
    let mut by_cell: HashMap<usize, Vec<(u64, &Touches)>> = HashMap::new();
    for ((cell, gid), t) in &touches {
        by_cell.entry(*cell).or_default().push((*gid, t));
    }
    let mut edges: std::collections::HashSet<(u64, u64)> = std::collections::HashSet::new();
    for (cell, list) in &by_cell {
        for (i, (ga, ta)) in list.iter().enumerate() {
            for (gb, tb) in &list[i + 1..] {
                if !ta.wrote && !tb.wrote {
                    continue;
                }
                if ta.max < tb.min {
                    edges.insert((*ga, *gb));
                } else if tb.max < ta.min {
                    edges.insert((*gb, *ga));
                } else {
                    return Ok(Verdict::Rejected {
                        reason: format!(
                            "groups {ga} and {gb} interleave conflicting touches of cell {cell}"
                        ),
                    });
                }
            }
        }
    }

    // Kahn longest-path layering over all groups (isolated groups land
    // in stage 0). A cycle means contradictory directions → reject.
    let mut indeg: HashMap<u64, usize> = all_groups.iter().map(|&g| (g, 0)).collect();
    let mut succ: HashMap<u64, Vec<u64>> = HashMap::new();
    for &(a, b) in &edges {
        *indeg.get_mut(&b).expect("edge endpoint is a group") += 1;
        succ.entry(a).or_default().push(b);
    }
    let mut layer: HashMap<u64, usize> = HashMap::new();
    let mut queue: Vec<u64> = all_groups
        .iter()
        .copied()
        .filter(|g| indeg[g] == 0)
        .collect();
    for &g in &queue {
        layer.insert(g, 0);
    }
    let mut done = 0usize;
    while let Some(g) = queue.pop() {
        done += 1;
        let lg = layer[&g];
        for &s in succ.get(&g).map(Vec::as_slice).unwrap_or(&[]) {
            let e = layer.entry(s).or_insert(0);
            *e = (*e).max(lg + 1);
            let d = indeg.get_mut(&s).expect("edge endpoint is a group");
            *d -= 1;
            if *d == 0 {
                queue.push(s);
            }
        }
    }
    if done != all_groups.len() {
        return Ok(Verdict::Rejected {
            reason: "group-dependence graph has a cycle".into(),
        });
    }
    let depth = layer.values().copied().max().unwrap_or(0) + 1;
    let mut stages: Vec<Vec<u64>> = vec![Vec::new(); depth];
    for &g in &all_groups {
        stages[layer[&g]].push(g);
    }
    for s in &mut stages {
        s.sort_unstable();
    }
    Ok(Verdict::Refined { stages })
}

/// Execute a [`Verdict::Refined`] staging: stages run one after the
/// other, the groups of one stage concurrently on the rayon pool.
/// Returns the number of iterations executed.
pub fn run_refined(
    nest: &LoopNest,
    plan: &ParallelPlan,
    mem: &Memory,
    stages: &[Vec<u64>],
) -> Result<u64> {
    let group_table = groups(plan)?;
    let mut total = 0u64;
    for stage in stages {
        let counts: std::result::Result<Vec<u64>, RuntimeError> = stage
            .par_iter()
            .map(|&gid| {
                let g = group_table.get(gid as usize).ok_or_else(|| {
                    RuntimeError::Core(format!("refined stage names group {gid}"))
                })?;
                let mut count = 0u64;
                walk_group(nest, plan, g, |idx| {
                    exec_body(nest, mem, idx)?;
                    count += 1;
                    Ok(())
                })?;
                Ok(count)
            })
            .collect();
        total += counts?.into_iter().sum::<u64>();
    }
    Ok(total)
}

/// Dispatch execution on a verdict: certified → the parallel
/// interpreter, refined → [`run_refined`], rejected → the sequential
/// reference order. Returns the iterations executed.
pub fn run_with_verdict(
    nest: &LoopNest,
    plan: &ParallelPlan,
    mem: &Memory,
    verdict: &Verdict,
) -> Result<u64> {
    match verdict {
        Verdict::Certified => crate::exec::run_parallel(nest, plan, mem),
        Verdict::Refined { stages } => run_refined(nest, plan, mem, stages),
        Verdict::Rejected { .. } => crate::exec::run_sequential(nest, mem),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_core::template::plan_template;
    use pdm_loopir::parse::{parse_loop_symbolic, parse_loop_with};

    /// Plan the hull of `src`, substitute at `vals`, audit.
    fn audit_at(
        src: &str,
        params: &[&str],
        vals: &[(&str, i64)],
    ) -> (LoopNest, ParallelPlan, Verdict) {
        let shape = parse_loop_symbolic(src, params).unwrap();
        assert!(shape.has_parametric_accesses());
        let t = plan_template(&shape).unwrap();
        assert!(t.requires_inspection());
        let plan = t.instantiate(vals).unwrap();
        let nest = t.instantiate_nest(vals).unwrap();
        let v = audit(&nest, &plan).unwrap();
        (nest, plan, v)
    }

    const SHIFTED_CHAIN: &str = "for i = 0..=19 { A[i + K] = A[i] + 1; }";

    #[test]
    fn zero_offset_chain_certifies_nothing_but_k0_is_race_free() {
        // Hull of A[i + K] = A[i] + 1 is A[i] = A[i] + 1: fully
        // parallel. K = 0 really is race-free → certified.
        let (nest, plan, v) = audit_at(SHIFTED_CHAIN, &["K"], &[("K", 0)]);
        assert_eq!(v, Verdict::Certified);
        let mem = Memory::for_nest(&nest).unwrap();
        let n = run_with_verdict(&nest, &plan, &mem, &v).unwrap();
        assert_eq!(n, 20);
    }

    #[test]
    fn nonzero_offset_chain_is_not_certified() {
        // K = 1 turns the nest into a true sequential chain; the
        // speculative fully-parallel plan must not be certified.
        let (nest, plan, v) = audit_at(SHIFTED_CHAIN, &["K"], &[("K", 1)]);
        assert_ne!(v, Verdict::Certified, "{v:?}");
        // Execution through the verdict still matches the reference.
        let mem = Memory::for_nest(&nest).unwrap();
        let m_ref = Memory::for_nest(&nest).unwrap();
        run_with_verdict(&nest, &plan, &mem, &v).unwrap();
        crate::exec::run_sequential(&nest, &m_ref).unwrap();
        assert_eq!(mem.snapshot(), m_ref.snapshot());
    }

    #[test]
    fn directed_conflicts_refine_into_stages() {
        // Hull A[i1, i2] = A[i1, i2] + 1 is fully parallel (every
        // iteration its own group); K = 1 shifts the write one row
        // down, so cell (i1 + 1, i2) is written by group (i1, i2) and
        // read by group (i1 + 1, i2) — conflicts directed along i1.
        // The layering must recover row-by-row stages with the four
        // groups of one row still concurrent.
        let src = "for i1 = 0..=3 { for i2 = 0..=3 { A[i1 + K, i2] = A[i1, i2] + 1; } }";
        let (nest, plan, v) = audit_at(src, &["K"], &[("K", 1)]);
        match &v {
            Verdict::Refined { stages } => {
                let total: usize = stages.iter().map(Vec::len).sum();
                assert_eq!(total as u64, crate::exec::group_count(&plan).unwrap());
                assert_eq!(stages.len(), 4, "one stage per i1 row: {stages:?}");
                assert!(stages.iter().all(|s| s.len() == 4), "{stages:?}");
            }
            other => panic!("expected refinement, got {other:?}"),
        }
        let mem = Memory::for_nest(&nest).unwrap();
        let m_ref = Memory::for_nest(&nest).unwrap();
        let n = run_with_verdict(&nest, &plan, &mem, &v).unwrap();
        crate::exec::run_sequential(&nest, &m_ref).unwrap();
        assert_eq!(n, 16);
        assert_eq!(mem.snapshot(), m_ref.snapshot());
    }

    #[test]
    fn interleaved_conflicts_reject() {
        // Hull A[i] = A[i - 2] + 1 partitions into even/odd chains;
        // K = 1 shifts only the write, so each chain writes the cells
        // the other reads, interleaved across the whole range — no
        // stage order exists and speculation must fail closed.
        let src = "for i = 2..=21 { A[i + K] = A[i - 2] + 1; }";
        let (nest, plan, v) = audit_at(src, &["K"], &[("K", 1)]);
        assert!(matches!(v, Verdict::Rejected { .. }), "{v:?}");
        // The rejected path still executes correctly (sequentially).
        let mem = Memory::for_nest(&nest).unwrap();
        let m_ref = Memory::for_nest(&nest).unwrap();
        let n = run_with_verdict(&nest, &plan, &mem, &v).unwrap();
        crate::exec::run_sequential(&nest, &m_ref).unwrap();
        assert_eq!(n, 20);
        assert_eq!(mem.snapshot(), m_ref.snapshot());
    }

    #[test]
    fn audit_respects_guards() {
        // The guarded statement touches row 0 only at i2 == 0; with a
        // parametric column shift on a separate array the hull stays
        // parallel and K = 0 certifies.
        let src = "for i1 = 0..=3 { for i2 = 0..=3 {
            A[i1, i2 + K] = A[i1, i2] + 1;
            B[i1, 0] = A[i1, 0] when i2 == 0;
        } }";
        let (_, _, v) = audit_at(src, &["K"], &[("K", 0)]);
        assert_eq!(v, Verdict::Certified);
    }

    #[test]
    fn substituted_nest_matches_direct_parse() {
        // The audited nest is exactly what parsing with the valuation
        // inlined would give.
        let shape = parse_loop_symbolic(SHIFTED_CHAIN, &["K"]).unwrap();
        let sub = shape.substitute(&[("K", 3)]).unwrap();
        let direct = parse_loop_with(SHIFTED_CHAIN, &[("K", 3)]).unwrap();
        assert_eq!(sub, direct);
    }
}
