//! Differential harness for the speculative inspector: on randomly
//! generated parametric-subscript nests, the [`audit`] verdict is
//! checked against a brute-force cross-group conflict oracle, and the
//! verdict-picked executor is checked bit-for-bit against the
//! sequential reference semantics.
//!
//! The generator is deterministic; set `PDM_PROPTEST_SEED` to pin the
//! base seed (CI pins `1`). Every assertion names the failing seed so a
//! red run reproduces with
//! `PDM_PROPTEST_SEED=<seed> cargo test -p pdm-runtime --test
//! inspector_differential`.

use pdm_core::plan::ParallelPlan;
use pdm_core::template::plan_template;
use pdm_loopir::generator::{random_inspector_nest, GenConfig};
use pdm_loopir::nest::LoopNest;
use pdm_loopir::stmt::AccessKind;
use pdm_matrix::vec::IVec;
use pdm_runtime::exec::{groups, walk_group};
use pdm_runtime::inspector::{audit, run_with_verdict};
use pdm_runtime::{Memory, Verdict};
use std::collections::HashMap;

fn base_seed() -> u64 {
    std::env::var("PDM_PROPTEST_SEED")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .unwrap_or(0x00C0_FFEE)
}

/// Brute-force oracle, order-insensitive: some cell is touched by two
/// distinct groups and written at least once. (If ≥ 2 groups touch a
/// cell and any of them writes it, the writer conflicts with every
/// other toucher — the exact condition the certifier decides.)
fn oracle_has_cross_group_conflict(nest: &LoopNest, plan: &ParallelPlan) -> bool {
    // cell -> (first touching group, seen a second group, seen a write)
    let mut seen: HashMap<(usize, Vec<i64>), (usize, bool, bool)> = HashMap::new();
    for (gid, g) in groups(plan).unwrap().iter().enumerate() {
        walk_group(nest, plan, g, |idx| {
            for stmt in nest.body() {
                if !stmt.guards_hold(idx) {
                    continue;
                }
                for (kind, r) in stmt.accesses() {
                    let sub = r.access.eval(&IVec(idx.to_vec()))?;
                    let e = seen
                        .entry((r.array.0, sub.0))
                        .or_insert((gid, false, false));
                    e.1 |= e.0 != gid;
                    e.2 |= kind == AccessKind::Write;
                }
            }
            Ok(())
        })
        .unwrap();
    }
    seen.values().any(|&(_, multi, wrote)| multi && wrote)
}

fn seeded(nest: &LoopNest, seed: u64) -> Memory {
    let mut mem = Memory::for_nest(nest).expect("extent computation");
    mem.init_deterministic(seed);
    mem
}

#[test]
fn verdicts_agree_with_the_brute_force_oracle() {
    let base = base_seed();
    let cfgs = [
        GenConfig {
            depth: 1,
            extent: 7,
            coeff: 1,
            offset: 2,
            stmts: 1,
            arrays: 1,
        },
        GenConfig {
            depth: 2,
            extent: 4,
            coeff: 2,
            offset: 3,
            stmts: 2,
            arrays: 2,
        },
    ];
    let mut audited = 0usize;
    let mut noncertified = 0usize;
    for case in 0..40u64 {
        let cfg = &cfgs[(case % cfgs.len() as u64) as usize];
        let seed = base.wrapping_add(case);
        let shape = match random_inspector_nest(seed, cfg, &["K"]) {
            Ok(s) => s,
            Err(_) => continue, // degenerate draw (e.g. empty space)
        };
        assert!(shape.has_parametric_accesses(), "seed {seed}");
        // Some draws defeat the static planner (singular access hulls
        // and the like) — those shapes never reach the inspector in
        // production either, so skip them here.
        let template = match plan_template(&shape) {
            Ok(t) => t,
            Err(_) => continue,
        };
        assert!(template.requires_inspection(), "seed {seed}");
        for k in [0i64, 1, 3] {
            let vals = [("K", k)];
            let plan = match template.instantiate(&vals) {
                Ok(p) => p,
                Err(_) => continue,
            };
            let nest = template.instantiate_nest(&vals).unwrap();
            let verdict = audit(&nest, &plan).unwrap();
            audited += 1;

            // Verdict vs. oracle. Certification must imply cross-group
            // conflict freedom; a conflict must demote the verdict.
            // (The converse is deliberately not asserted: a
            // conflict-free plan can still be rejected for intra-group
            // misordering, which the cross-group oracle cannot see.)
            let conflict = oracle_has_cross_group_conflict(&nest, &plan);
            if verdict == Verdict::Certified {
                assert!(
                    !conflict,
                    "seed {seed} K={k}: certified, but the oracle found a cross-group conflict"
                );
            } else {
                noncertified += 1;
            }
            if conflict {
                assert_ne!(
                    verdict,
                    Verdict::Certified,
                    "seed {seed} K={k}: oracle found a conflict"
                );
            }

            // Execution equivalence: whatever executor the verdict
            // picks must reproduce the sequential reference exactly.
            let seq = seeded(&nest, seed);
            let n_seq = pdm_runtime::run_sequential(&nest, &seq).unwrap();
            let spec = seeded(&nest, seed);
            let n_spec = run_with_verdict(&nest, &plan, &spec, &verdict).unwrap();
            assert_eq!(n_seq, n_spec, "seed {seed} K={k} verdict {verdict:?}");
            assert_eq!(
                seq.snapshot(),
                spec.snapshot(),
                "seed {seed} K={k} verdict {verdict:?}: output diverged from sequential"
            );
        }
    }
    // The harness must not go vacuous if the generator or planner
    // drifts: enough cases must survive to exercise both the certified
    // and the demoted paths.
    assert!(audited >= 20, "only {audited} cases audited");
    assert!(
        noncertified >= 1,
        "all {audited} audits certified — the demoted executors went untested"
    );
}

/// The facts the audit verdict is compared on across an interval:
/// the kind, plus the exact staging for refinements. (Rejection
/// *reasons* are intentionally excluded — they name the first
/// violation found, which depends on hash-map iteration order.)
fn verdict_shape(v: &Verdict) -> (String, Option<Vec<Vec<u64>>>) {
    match v {
        Verdict::Refined { stages } => (v.kind().into(), Some(stages.clone())),
        other => (other.kind().into(), None),
    }
}

/// Interval certification vs. the per-point oracle: every valuation
/// inside a certified stability box must audit to the same verdict the
/// box was derived at — kind and (for refinements) the exact stages.
#[test]
fn certified_intervals_match_the_per_point_audit() {
    let base = base_seed();
    let cfgs = [
        GenConfig {
            depth: 1,
            extent: 7,
            coeff: 1,
            offset: 2,
            stmts: 1,
            arrays: 1,
        },
        GenConfig {
            depth: 2,
            extent: 4,
            coeff: 2,
            offset: 3,
            stmts: 2,
            arrays: 2,
        },
    ];
    let mut boxes_checked = 0usize;
    let mut points_checked = 0usize;
    for case in 0..40u64 {
        let cfg = &cfgs[(case % cfgs.len() as u64) as usize];
        let seed = base.wrapping_add(1_000).wrapping_add(case);
        let shape = match random_inspector_nest(seed, cfg, &["K"]) {
            Ok(s) => s,
            Err(_) => continue,
        };
        let template = match plan_template(&shape) {
            Ok(t) => t,
            Err(_) => continue,
        };
        for k0 in [0i64, 3, 25, -25] {
            let vals = [("K", k0)];
            let Ok(plan) = template.instantiate(&vals) else {
                continue;
            };
            let nest = template.instantiate_nest(&vals).unwrap();
            let expected = verdict_shape(&audit(&nest, &plan).unwrap());
            let bx = match template.stability_box(&vals) {
                Ok(Some(b)) => b,
                _ => continue, // point-only valuation: nothing to check
            };
            boxes_checked += 1;
            let (lo, hi) = bx[0];
            assert!(
                lo <= k0 && k0 <= hi,
                "seed {seed}: box {bx:?} must contain its own valuation K={k0}"
            );
            // Probe the box: its finite edges, and a spread around the
            // audited point, all clamped inside.
            let mut probes = vec![k0 + 1, k0 - 1, k0 + 5, k0 - 5, k0 + 97, k0 - 97];
            if lo > i64::MIN {
                probes.extend([lo, lo + 1]);
            }
            if hi < i64::MAX {
                probes.extend([hi, hi - 1]);
            }
            probes.retain(|&k| lo <= k && k <= hi && k != k0);
            probes.sort_unstable();
            probes.dedup();
            for k in probes {
                let vals_k = [("K", k)];
                let plan_k = template.instantiate(&vals_k).unwrap();
                let nest_k = template.instantiate_nest(&vals_k).unwrap();
                let got = verdict_shape(&audit(&nest_k, &plan_k).unwrap());
                assert_eq!(
                    got, expected,
                    "seed {seed}: K={k} inside box {bx:?} (derived at K={k0}) \
                     audits differently"
                );
                points_checked += 1;
            }
        }
    }
    // Vacuity guards: the generator must keep producing certifiable
    // boxes with probe-able interiors.
    assert!(boxes_checked >= 5, "only {boxes_checked} boxes certified");
    assert!(points_checked >= 10, "only {points_checked} in-box audits");
}
