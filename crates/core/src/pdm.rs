//! The pseudo distance matrix of a whole loop (eq. 2.18–2.21).
//!
//! Each dependence pair contributes its distance-lattice generators; the
//! union of all generators, reduced to Hermite normal form, is the **PDM**
//! `H` of the loop: every dependence distance (of any pair, direct or
//! transitive) is an integer combination of the rows of `H`. The PDM drives
//! everything downstream:
//!
//! * zero columns ⇒ those loops carry no dependence and are parallel
//!   (Lemma 1),
//! * non-full rank ⇒ Algorithm 1 can expose `n − rank` parallel loops,
//! * full rank ⇒ Theorem 2 partitioning extracts `det(H)` parallelism.

use crate::depeq::dependence_equation;
use crate::pairlat::{pair_distance_lattice, PairLattice};
use crate::Result;
use pdm_loopir::access::ArrayId;
use pdm_loopir::nest::LoopNest;
use pdm_loopir::stmt::AccessKind;
use pdm_matrix::hnf::hermite_normal_form;
use pdm_matrix::lattice::Lattice;
use pdm_matrix::mat::IMat;

/// Analysis record for one reference pair.
#[derive(Debug, Clone)]
pub struct PairReport {
    /// Statement index of the first reference.
    pub stmt_a: usize,
    /// Statement index of the second reference.
    pub stmt_b: usize,
    /// Kind of the first reference.
    pub kind_a: AccessKind,
    /// Kind of the second reference.
    pub kind_b: AccessKind,
    /// The shared array.
    pub array: ArrayId,
    /// The distance-lattice summary.
    pub lattice: PairLattice,
}

/// The full PDM analysis of a loop nest.
#[derive(Debug, Clone)]
pub struct PdmAnalysis {
    depth: usize,
    pdm: IMat,
    pairs: Vec<PairReport>,
}

/// Analyze a nest: solve every pair's dependence equations and reduce the
/// merged distance generators to the pseudo distance matrix.
pub fn analyze(nest: &LoopNest) -> Result<PdmAnalysis> {
    let n = nest.depth();
    let mut pairs = Vec::new();
    let mut all_gens = IMat::zeros(0, n);
    for p in nest.dependence_pairs() {
        let eq = dependence_equation(p.ref_a, p.ref_b)?;
        let pl = pair_distance_lattice(&eq)?;
        if pl.solvable {
            all_gens = all_gens.vstack(&pl.generators)?;
        }
        pairs.push(PairReport {
            stmt_a: p.stmt_a,
            stmt_b: p.stmt_b,
            kind_a: p.kind_a,
            kind_b: p.kind_b,
            array: p.ref_a.array,
            lattice: pl,
        });
    }
    let pdm = hermite_normal_form(&all_gens)?.hnf;
    Ok(PdmAnalysis {
        depth: n,
        pdm,
        pairs,
    })
}

impl PdmAnalysis {
    /// Loop depth `n`.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The pseudo distance matrix (HNF, `rank × n`).
    pub fn pdm(&self) -> &IMat {
        &self.pdm
    }

    /// Rank of the PDM.
    pub fn rank(&self) -> usize {
        self.pdm.rows()
    }

    /// Is the PDM full rank (rank = depth)?
    pub fn is_full_rank(&self) -> bool {
        self.rank() == self.depth
    }

    /// Does the loop carry any dependence at all?
    pub fn has_dependences(&self) -> bool {
        self.rank() > 0
            || self.pairs.iter().any(|p| {
                p.lattice.solvable && p.lattice.particular.as_ref().is_some_and(|d| !d.is_zero())
            })
    }

    /// Zero columns of the PDM — by Lemma 1, those loops can run in
    /// parallel without any transformation.
    pub fn zero_cols(&self) -> Vec<usize> {
        if self.pdm.rows() == 0 {
            (0..self.depth).collect()
        } else {
            self.pdm.zero_cols()
        }
    }

    /// The distance lattice `L(H)`.
    pub fn lattice(&self) -> Result<Lattice> {
        if self.pdm.rows() == 0 {
            return Ok(Lattice::zero(self.depth));
        }
        Ok(Lattice::from_generators(&self.pdm)?)
    }

    /// Per-pair reports.
    pub fn pairs(&self) -> &[PairReport] {
        &self.pairs
    }

    /// Are all realized distances constant (uniform)? True when every
    /// solvable pair has homogeneous rank zero (Corollary 5's situation).
    pub fn is_uniform(&self) -> bool {
        self.pairs
            .iter()
            .filter(|p| p.lattice.solvable)
            .all(|p| p.lattice.hom_rank == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_loopir::parse::parse_loop;
    use pdm_matrix::vec::IVec;

    /// Reconstructed §4.1 (see DESIGN.md): PDM must be [[2, 2]].
    #[test]
    fn paper_41_pdm() {
        let nest = parse_loop(
            "for i1 = 0..=9 { for i2 = 0..=9 {
               A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
             } }",
        )
        .unwrap();
        let a = analyze(&nest).unwrap();
        assert_eq!(a.pdm(), &IMat::from_rows(&[vec![2, 2]]).unwrap());
        assert_eq!(a.rank(), 1);
        assert!(!a.is_full_rank());
        assert!(a.zero_cols().is_empty());
        assert!(!a.is_uniform());
    }

    /// Reconstructed §4.2 (see DESIGN.md): PDM must be [[2,1],[0,2]],
    /// det 4 -> four partitions.
    #[test]
    fn paper_42_pdm() {
        let nest = parse_loop(
            "for i1 = 0..=9 { for i2 = 0..=9 {
               A[i1, 3*i2 + 2] = B[i1, i2] + 1;
               B[3*i1 + 2, i1 + i2 + 1] = A[i1, i2] + 2;
             } }",
        )
        .unwrap();
        let a = analyze(&nest).unwrap();
        assert_eq!(
            a.pdm(),
            &IMat::from_rows(&[vec![2, 1], vec![0, 2]]).unwrap()
        );
        assert!(a.is_full_rank());
        assert_eq!(a.lattice().unwrap().index(), Some(4));
    }

    #[test]
    fn independent_loop_has_empty_pdm() {
        let nest = parse_loop("for i = 0..=9 { A[i] = i + 1; }").unwrap();
        let a = analyze(&nest).unwrap();
        assert_eq!(a.rank(), 0);
        assert_eq!(a.zero_cols(), vec![0]);
        assert!(!a.has_dependences());
    }

    #[test]
    fn zero_column_detected_for_inner_parallel_loop() {
        // Dependence only along i1: A[i1][i2] depends on A[i1-1][i2].
        let nest = parse_loop(
            "for i1 = 1..=9 { for i2 = 0..=9 {
               A[i1, i2] = A[i1 - 1, i2] + 1;
             } }",
        )
        .unwrap();
        let a = analyze(&nest).unwrap();
        assert_eq!(a.pdm(), &IMat::from_rows(&[vec![1, 0]]).unwrap());
        assert_eq!(a.zero_cols(), vec![1]); // i2 is parallel (Lemma 1)
        assert!(a.is_uniform());
    }

    #[test]
    fn uniform_skewed_stencil() {
        // Classic 2-D recurrence: distances (1,0) and (0,1).
        let nest = parse_loop(
            "for i = 1..=9 { for j = 1..=9 {
               A[i, j] = A[i - 1, j] + A[i, j - 1];
             } }",
        )
        .unwrap();
        let a = analyze(&nest).unwrap();
        assert_eq!(
            a.pdm(),
            &IMat::from_rows(&[vec![1, 0], vec![0, 1]]).unwrap()
        );
        assert!(a.is_uniform());
        assert!(a.is_full_rank());
        // Full Z^2 lattice: index 1 -> no partition parallelism either.
        assert_eq!(a.lattice().unwrap().index(), Some(1));
    }

    #[test]
    fn pdm_covers_all_bruteforce_distances() {
        // Ground-truth validation on the reconstructed §4.2 loop: every
        // realized dependence distance must lie in L(PDM).
        let nest = parse_loop(
            "for i1 = 0..=7 { for i2 = 0..=7 {
               A[i1, 3*i2 + 2] = B[i1, i2] + 1;
               B[3*i1 + 2, i1 + i2 + 1] = A[i1, i2] + 2;
             } }",
        )
        .unwrap();
        let a = analyze(&nest).unwrap();
        let lat = a.lattice().unwrap();
        let its = nest.iterations().unwrap();
        let accs = nest.accesses();
        let mut checked = 0;
        for (sa, ka, ra) in &accs {
            for (sb, kb, rb) in &accs {
                if ra.array != rb.array {
                    continue;
                }
                if *ka == AccessKind::Read && *kb == AccessKind::Read {
                    continue;
                }
                let _ = (sa, sb);
                for i in &its {
                    for j in &its {
                        if ra.access.eval(i).unwrap() == rb.access.eval(j).unwrap() {
                            let d: IVec = j.sub(i).unwrap();
                            assert!(lat.contains(&d).unwrap(), "distance {d} not covered by PDM");
                            checked += 1;
                        }
                    }
                }
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn multi_pair_union() {
        // Two pairs contributing (2,0) and (0,3): PDM = [[2,0],[0,3]].
        let nest = parse_loop(
            "for i = 2..=9 { for j = 3..=9 {
               A[i, j] = A[i - 2, j] + 1;
               B[i, j] = B[i, j - 3] + 1;
             } }",
        )
        .unwrap();
        let a = analyze(&nest).unwrap();
        assert_eq!(
            a.pdm(),
            &IMat::from_rows(&[vec![2, 0], vec![0, 3]]).unwrap()
        );
        assert_eq!(a.lattice().unwrap().index(), Some(6));
    }
}
