//! The end-to-end parallelization plan.
//!
//! [`parallelize`] chains the whole paper: PDM analysis → Algorithm 1
//! (legal unimodular transformation exposing `n − rank` outer `doall`
//! loops) → Theorem 2 partitioning of the remaining full-rank block
//! (`det` further independent groups) → Fourier–Motzkin bounds for the
//! transformed space. The resulting [`ParallelPlan`] is a complete,
//! executable schedule description consumed by `pdm-runtime` and printed
//! by [`crate::codegen`].
//!
//! The transformed-space bound rows are **irredundant**: the substituted
//! iteration polyhedron is exactly pruned before bound extraction and
//! `LoopBounds::from_system` prunes every intermediate FM system, so the
//! `max`/`min` candidate lists the runtime evaluates per level carry no
//! implied rows (see `pdm_poly::bounds` for the exactness argument).

use crate::algorithm1::algorithm1;
use crate::partition::Partitioning;
use crate::pdm::{analyze, PdmAnalysis};
use crate::{CoreError, Result};
use pdm_loopir::nest::LoopNest;
use pdm_matrix::mat::IMat;
use pdm_matrix::unimodular::Unimodular;
use pdm_matrix::vec::IVec;
use pdm_poly::bounds::LoopBounds;
use pdm_poly::expr::AffineExpr;

/// A complete parallel schedule for a loop nest.
#[derive(Debug, Clone)]
pub struct ParallelPlan {
    analysis: PdmAnalysis,
    transform: Unimodular,
    inverse: Unimodular,
    transformed_pdm: IMat,
    doall_prefix: usize,
    partition: Option<Partitioning>,
    bounds: LoopBounds,
    depth: usize,
}

/// The bounds-independent half of a plan: everything the paper derives
/// from the PDM alone — the legal transformation, its inverse, the
/// transformed PDM, the doall prefix, and the Theorem-2 partitioning.
/// Computed once per nest *shape* by [`crate::template::plan_template`]
/// and per nest by [`parallelize`]; both attach bounds afterwards.
pub(crate) struct PlanStructure {
    pub(crate) transform: Unimodular,
    pub(crate) inverse: Unimodular,
    pub(crate) transformed_pdm: IMat,
    pub(crate) doall_prefix: usize,
    pub(crate) partition: Option<Partitioning>,
}

/// Derive the [`PlanStructure`] from an analysis (Algorithm 1 + the
/// Theorem-2 partitioning of the trailing full-rank block when it buys
/// parallelism).
pub(crate) fn derive_structure(depth: usize, analysis: &PdmAnalysis) -> Result<PlanStructure> {
    let zeroed = algorithm1(analysis.pdm())?;
    let rho = analysis.rank();

    // Partition the trailing full-rank block when it buys parallelism.
    let partition = if rho > 0 {
        let sub = zeroed
            .transformed
            .submatrix(0, rho, zeroed.zero_cols, depth);
        let p = Partitioning::new(sub)?;
        if p.count() > 1 {
            Some(p)
        } else {
            None
        }
    } else {
        None
    };
    let inverse = zeroed.t.inverse().map_err(CoreError::Matrix)?;
    Ok(PlanStructure {
        transform: zeroed.t,
        inverse,
        transformed_pdm: zeroed.transformed,
        doall_prefix: zeroed.zero_cols,
        partition,
    })
}

/// Analyze and transform a nest into a parallel plan.
pub fn parallelize(nest: &LoopNest) -> Result<ParallelPlan> {
    let analysis = analyze(nest)?;
    plan_from_analysis(nest, analysis)
}

/// Build the plan from an existing analysis (lets callers inspect or
/// modify the PDM first — e.g. the ablation benches).
pub fn plan_from_analysis(nest: &LoopNest, analysis: PdmAnalysis) -> Result<ParallelPlan> {
    let n = nest.depth();
    let structure = derive_structure(n, &analysis)?;

    // Transformed-space bounds: y = i·T, i = y·T⁻¹; substitute into the
    // original iteration polyhedron and re-derive per-level bounds by FM.
    // Substitution often manufactures implied rows (several original
    // constraints can map to parallel or dominated images);
    // `from_system` prunes every level exactly before reading its rows
    // off, so codegen and the runtime see irredundant per-level bounds.
    let tsys = transformed_system(nest, &structure.inverse)?;
    let bounds = LoopBounds::from_system(&tsys).map_err(CoreError::Matrix)?;

    Ok(ParallelPlan::from_parts(analysis, structure, bounds, n))
}

/// The iteration polyhedron rewritten into transformed coordinates:
/// with `y = i·T` and `i = y·T⁻¹`, substitute each original index by the
/// matching column of `T⁻¹`. Shared by [`plan_from_analysis`] and the
/// `bench_fm` harness so both always measure the planner's real input.
pub fn transformed_system(
    nest: &LoopNest,
    inverse: &Unimodular,
) -> Result<pdm_poly::system::System> {
    let n = nest.depth();
    let sys = nest.iteration_system()?;
    let exprs: Vec<AffineExpr> = (0..n)
        .map(|i| AffineExpr::new(inverse.mat().col_vec(i), 0))
        .collect();
    sys.change_of_variables(&exprs, n)
        .map_err(CoreError::Matrix)
}

impl ParallelPlan {
    /// Assemble a plan from its bounds-independent structure and a set
    /// of (already concrete) transformed-space bounds — the shared final
    /// step of [`plan_from_analysis`] and of template instantiation
    /// ([`crate::template::PlanTemplate::instantiate`]), which is what
    /// makes instantiated plans *the same type* as freshly planned ones.
    pub(crate) fn from_parts(
        analysis: PdmAnalysis,
        structure: PlanStructure,
        bounds: LoopBounds,
        depth: usize,
    ) -> ParallelPlan {
        ParallelPlan {
            analysis,
            transform: structure.transform,
            inverse: structure.inverse,
            transformed_pdm: structure.transformed_pdm,
            doall_prefix: structure.doall_prefix,
            partition: structure.partition,
            bounds,
            depth,
        }
    }

    /// The underlying PDM analysis.
    pub fn analysis(&self) -> &PdmAnalysis {
        &self.analysis
    }

    /// The legal unimodular transformation `T` (`y = i·T`).
    pub fn transform(&self) -> &Unimodular {
        &self.transform
    }

    /// `T⁻¹` (`i = y·T⁻¹`).
    pub fn inverse(&self) -> &Unimodular {
        &self.inverse
    }

    /// The transformed PDM `H·T`.
    pub fn transformed_pdm(&self) -> &IMat {
        &self.transformed_pdm
    }

    /// Number of leading fully-parallel (`doall`) transformed loops.
    pub fn doall_count(&self) -> usize {
        self.doall_prefix
    }

    /// The Theorem-2 partitioning of the trailing block, if profitable.
    pub fn partition(&self) -> Option<&Partitioning> {
        self.partition.as_ref()
    }

    /// Independent partitions of the sequential block (1 when none).
    pub fn partition_count(&self) -> i64 {
        self.partition.as_ref().map_or(1, |p| p.count())
    }

    /// Per-level bounds of the transformed iteration space (irredundant
    /// rows — see the module docs).
    pub fn bounds(&self) -> &LoopBounds {
        &self.bounds
    }

    /// Total bound rows across all levels — the planning-quality metric
    /// tracked by `bench_fm` (smaller is better at equal semantics).
    pub fn bound_rows(&self) -> usize {
        self.bounds.total_rows()
    }

    /// Loop depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Map a transformed index back to the original iteration vector.
    pub fn original_index(&self, y: &IVec) -> Result<IVec> {
        self.inverse.apply(y).map_err(CoreError::Matrix)
    }

    /// Map an original iteration vector into the transformed space.
    pub fn transformed_index(&self, i: &IVec) -> Result<IVec> {
        self.transform.apply(i).map_err(CoreError::Matrix)
    }

    /// Is every loop parallel (no dependences at all)?
    pub fn is_fully_parallel(&self) -> bool {
        self.doall_prefix == self.depth
    }

    /// The parallel **group id** of an original iteration: the tuple of
    /// its doall-prefix coordinates and its partition offset. Two
    /// iterations may be dependent only if they share a group id — the
    /// property the runtime's race checker and the ISDG oracle verify.
    pub fn group_of(&self, i: &IVec) -> Result<(IVec, IVec)> {
        let y = self.transformed_index(i)?;
        let prefix = IVec::from_slice(&y.as_slice()[..self.doall_prefix]);
        let offset = match &self.partition {
            Some(p) => {
                let tail = IVec::from_slice(&y.as_slice()[self.doall_prefix..]);
                p.offset_of(&tail)?
            }
            None => IVec::zeros(0),
        };
        Ok((prefix, offset))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_loopir::parse::parse_loop;
    use pdm_matrix::lex::lex_cmp;

    fn paper41() -> LoopNest {
        parse_loop(
            "for i1 = 0..=9 { for i2 = 0..=9 {
               A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
             } }",
        )
        .unwrap()
    }

    fn paper42() -> LoopNest {
        parse_loop(
            "for i1 = 0..=9 { for i2 = 0..=9 {
               A[i1, 3*i2 + 2] = B[i1, i2] + 1;
               B[3*i1 + 2, i1 + i2 + 1] = A[i1, i2] + 2;
             } }",
        )
        .unwrap()
    }

    #[test]
    fn plan_paper_41_one_doall_two_partitions() {
        let plan = parallelize(&paper41()).unwrap();
        assert_eq!(plan.doall_count(), 1);
        assert_eq!(plan.partition_count(), 2);
        assert_eq!(
            plan.transformed_pdm(),
            &IMat::from_rows(&[vec![0, 2]]).unwrap()
        );
    }

    #[test]
    fn plan_paper_42_four_partitions() {
        let plan = parallelize(&paper42()).unwrap();
        assert_eq!(plan.doall_count(), 0);
        assert_eq!(plan.partition_count(), 4);
    }

    #[test]
    fn independent_loop_fully_parallel() {
        let nest = parse_loop("for i = 0..=9 { A[i] = i; }").unwrap();
        let plan = parallelize(&nest).unwrap();
        assert!(plan.is_fully_parallel());
        assert_eq!(plan.doall_count(), 1);
        assert_eq!(plan.partition_count(), 1);
    }

    #[test]
    fn transformed_space_is_bijective() {
        let plan = parallelize(&paper41()).unwrap();
        let nest = paper41();
        let its = nest.iterations().unwrap();
        let transformed = plan.bounds().enumerate().unwrap();
        assert_eq!(its.len(), transformed.len(), "bijection cardinality");
        // Round-trip each original iteration.
        let set: std::collections::HashSet<Vec<i64>> = transformed.into_iter().collect();
        for i in &its {
            let y = plan.transformed_index(i).unwrap();
            assert!(set.contains(&y.0), "missing image {y}");
            assert_eq!(plan.original_index(&y).unwrap(), *i);
        }
    }

    #[test]
    fn dependent_iterations_share_group_and_keep_order() {
        // The schedule-soundness core check, on ground-truth dependences.
        let nest = paper41();
        let plan = parallelize(&nest).unwrap();
        let its = nest.iterations().unwrap();
        let accs = nest.accesses();
        let mut deps = 0;
        for (_, ka, ra) in &accs {
            for (_, kb, rb) in &accs {
                use pdm_loopir::stmt::AccessKind;
                if ra.array != rb.array || (*ka == AccessKind::Read && *kb == AccessKind::Read) {
                    continue;
                }
                for i in &its {
                    for j in &its {
                        if i == j || ra.access.eval(i).unwrap() != rb.access.eval(j).unwrap() {
                            continue;
                        }
                        deps += 1;
                        // Same parallel group.
                        assert_eq!(
                            plan.group_of(i).unwrap(),
                            plan.group_of(j).unwrap(),
                            "dependent {i} {j} split across groups"
                        );
                        // Lexicographic order preserved in y-space.
                        let yi = plan.transformed_index(i).unwrap();
                        let yj = plan.transformed_index(j).unwrap();
                        assert_eq!(lex_cmp(i, j), lex_cmp(&yi, &yj));
                    }
                }
            }
        }
        assert!(deps > 0, "test loop must carry dependences");
    }

    #[test]
    fn group_count_matches_plan() {
        let nest = paper42();
        let plan = parallelize(&nest).unwrap();
        let its = nest.iterations().unwrap();
        let groups: std::collections::HashSet<_> =
            its.iter().map(|i| plan.group_of(i).unwrap()).collect();
        // No doall prefix; exactly det(H) = 4 partitions.
        assert_eq!(groups.len() as i64, plan.partition_count());
    }
}
