//! Algorithm 1 — transforming a non-full-rank PDM (§3.2).
//!
//! Given the PDM `H` (HNF, `ρ × n`, `ρ ≤ n`), find a **legal** unimodular
//! `T` such that `H·T` has its first `n − ρ` columns zero: by Lemma 1 the
//! corresponding (outermost) transformed loops carry no dependence and run
//! as `doall`s.
//!
//! The construction uses only the legal elementary column operations of
//! §3.1 and maintains, after every step, the Theorem-1 invariant that the
//! working matrix stays *echelon with lexicographically positive rows*:
//!
//! * scanning columns left to right, a column is **independent** iff it is
//!   a pivot (level) column of the echelon matrix — it stays;
//! * a dependent column `c` is annihilated row-by-row (bottom-most
//!   relevant row first) by a Euclidean cascade of **right skewings**
//!   `col_c −= k·col_p` (always legal, Corollary 2) interleaved with
//!   pivot/column **interchanges** that keep the smaller positive entry in
//!   the pivot column (legal here by Corollary 4: the column being swapped
//!   in is, at that point, linearly dependent on its left neighbours and
//!   the leading entries keep their sign and level);
//! * finally the zero columns are **shifted** to the front (Corollary 3).
//!
//! Cost: each Euclidean cascade on a row shrinks the pivot like the GCD
//! iteration, giving the paper's `O(n² · ln M)` column-operation bound for
//! maximum entry `M` (measured in the `analysis_scaling` bench).

use crate::{CoreError, Result};
use pdm_matrix::lex::is_lex_positive_echelon;
use pdm_matrix::mat::IMat;
use pdm_matrix::num::floor_div;
use pdm_matrix::unimodular::Unimodular;

/// Outcome of Algorithm 1.
#[derive(Debug, Clone)]
pub struct ZeroedPdm {
    /// The legal unimodular transformation `T`.
    pub t: Unimodular,
    /// `H·T` — first `zero_cols` columns zero, trailing block upper
    /// triangular with positive diagonal.
    pub transformed: IMat,
    /// Number of leading zero columns (= `n − rank H`).
    pub zero_cols: usize,
}

/// Run Algorithm 1 on an HNF pseudo distance matrix.
pub fn algorithm1(pdm: &IMat) -> Result<ZeroedPdm> {
    let n = pdm.cols();
    let rho = pdm.rows();
    if !is_lex_positive_echelon(pdm) || pdm.rows_iter().any(|r| r.iter().all(|&x| x == 0)) {
        return Err(CoreError::Invariant(
            "algorithm1 requires a full-row-rank lex-positive echelon PDM",
        ));
    }

    let mut w = pdm.clone();
    let mut t = IMat::identity(n);

    for c in 0..n {
        let levels: Vec<usize> = (0..rho)
            .map(|r| w.row_vec(r).level().expect("rows stay nonzero"))
            .collect();
        if levels.contains(&c) {
            continue; // pivot column: independent of its left neighbours
        }
        // Zero the column bottom-up. The working set must be re-scanned
        // after each row: a column swap while clearing row j also swaps
        // the entries of the rows *above* j, which can turn a zero entry
        // in column c nonzero again. Rows strictly below the one being
        // processed are never touched (their entries in both involved
        // columns are structurally zero), so taking the bottom-most dirty
        // row each time terminates.
        while let Some(j) = (0..rho)
            .filter(|&r| w.row_vec(r).level().expect("rows stay nonzero") < c && w.get(r, c) != 0)
            .max()
        {
            loop {
                let p = w.row_vec(j).level().expect("row stays nonzero");
                debug_assert!(p < c, "pivot must sit left of the target column");
                let v = w.get(j, p);
                debug_assert!(v > 0, "pivot positive by invariant");
                let e = w.get(j, c);
                if e == 0 {
                    break;
                }
                // Right skewing: col_c -= floor(e/v) * col_p (Corollary 2).
                let k = floor_div(e, v)?;
                if k != 0 {
                    w.add_scaled_col(c, -k, p)?;
                    t.add_scaled_col(c, -k, p)?;
                }
                let e2 = w.get(j, c);
                debug_assert!((0..v).contains(&e2), "remainder out of range");
                if e2 == 0 {
                    break;
                }
                // Interchange p <-> c brings the smaller positive entry
                // into the pivot position (Corollary 4 situation).
                w.swap_cols(p, c);
                t.swap_cols(p, c);
            }
            debug_assert!(
                is_lex_positive_echelon(&w),
                "invariant lost while zeroing column {c}:\n{w}"
            );
        }
    }

    // Shift zero columns to the front (stable), Corollary 3.
    let zero: Vec<usize> = w.zero_cols();
    let nonzero: Vec<usize> = (0..n).filter(|c| !zero.contains(c)).collect();
    let mut perm = IMat::zeros(n, n);
    for (newpos, &old) in zero.iter().chain(nonzero.iter()).enumerate() {
        perm.set(old, newpos, 1);
    }
    w = w.mul(&perm)?;
    t = t.mul(&perm)?;

    // Hard verification — never emit an unproven schedule.
    let t = Unimodular::new(t).map_err(CoreError::Matrix)?;
    if pdm.mul(t.mat())? != w {
        return Err(CoreError::Invariant("algorithm1: H·T mismatch"));
    }
    if !is_lex_positive_echelon(&w) {
        return Err(CoreError::Invariant(
            "algorithm1: result not lex-positive echelon (illegal transform)",
        ));
    }
    if zero.len() != n - rho {
        return Err(CoreError::Invariant(
            "algorithm1: wrong number of zero columns",
        ));
    }
    for c in 0..zero.len() {
        if (0..rho).any(|r| w.get(r, c) != 0) {
            return Err(CoreError::Invariant("algorithm1: zero block not leading"));
        }
    }
    Ok(ZeroedPdm {
        t,
        transformed: w,
        zero_cols: zero.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::legal::is_legal;
    use pdm_matrix::hnf::hermite_normal_form;

    fn m(rows: &[Vec<i64>]) -> IMat {
        IMat::from_rows(rows).unwrap()
    }

    fn check(pdm: &IMat) -> ZeroedPdm {
        let z = algorithm1(pdm).unwrap();
        let n = pdm.cols();
        let rho = pdm.rows();
        assert_eq!(z.zero_cols, n - rho, "zero column count");
        assert_eq!(pdm.mul(z.t.mat()).unwrap(), z.transformed);
        assert!(is_legal(pdm, &z.t).unwrap(), "Theorem 1 violated");
        // Leading zero block.
        for c in 0..z.zero_cols {
            for r in 0..rho {
                assert_eq!(z.transformed.get(r, c), 0);
            }
        }
        // Trailing block upper triangular with positive diagonal.
        for r in 0..rho {
            assert!(z.transformed.get(r, z.zero_cols + r) > 0);
            for cc in 0..r {
                assert_eq!(z.transformed.get(r, z.zero_cols + cc), 0);
            }
        }
        z
    }

    #[test]
    fn paper_41_single_row() {
        // PDM [[2,2]]: one skew + shift. T = [[-1,1],[1,0]] (up to sign
        // conventions), H·T = [[0,2]].
        let z = check(&m(&[vec![2, 2]]));
        assert_eq!(z.transformed, m(&[vec![0, 2]]));
        assert_eq!(z.zero_cols, 1);
    }

    #[test]
    fn full_rank_is_noop_rotation() {
        // Full-rank PDM: no zero columns possible; T must keep all columns
        // nonzero (identity permutation of pivots).
        let z = check(&m(&[vec![2, 1], vec![0, 2]]));
        assert_eq!(z.zero_cols, 0);
        assert_eq!(z.transformed, m(&[vec![2, 1], vec![0, 2]]));
        assert_eq!(z.t.mat(), &IMat::identity(2));
    }

    #[test]
    fn rational_dependence_needs_euclid() {
        // Column 1 = (1/2)·column 0: requires the interchange cascade.
        let z = check(&m(&[vec![2, 1]]));
        assert_eq!(z.transformed, m(&[vec![0, 1]]));
    }

    #[test]
    fn already_zero_columns_pass_through() {
        let z = check(&m(&[vec![0, 3, 1]]));
        assert_eq!(z.zero_cols, 2);
        assert!(z.transformed.get(0, 2) > 0);
    }

    #[test]
    fn deeper_nests() {
        check(&m(&[vec![1, 2, 3]]));
        check(&m(&[vec![2, 0, 1], vec![0, 3, 5]]));
        check(&m(&[vec![1, 0, 7], vec![0, 1, 4]]));
        check(&m(&[vec![3, 1, 4, 1], vec![0, 5, 9, 2]]));
        check(&m(&[vec![2, 7, 1, 8], vec![0, 2, 8, 1], vec![0, 0, 3, 6]]));
    }

    #[test]
    fn random_hnf_inputs() {
        let mut state = 0x7F4A7C159E3779B9u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 9) as i64 - 4
        };
        let mut nontrivial = 0;
        for _ in 0..300 {
            let n = 2 + (next().unsigned_abs() as usize % 3);
            let rows = 1 + (next().unsigned_abs() as usize % n);
            let data: Vec<i64> = (0..rows * n).map(|_| next()).collect();
            let g = IMat::from_flat(rows, n, &data).unwrap();
            let h = hermite_normal_form(&g).unwrap().hnf;
            if h.rows() == 0 {
                continue;
            }
            let z = check(&h);
            if z.zero_cols > 0 && h.rows() < n {
                nontrivial += 1;
            }
        }
        assert!(nontrivial > 20, "need non-trivial cases, got {nontrivial}");
    }

    #[test]
    fn rejects_non_hnf_input() {
        assert!(algorithm1(&m(&[vec![0, 0], vec![1, 0]])).is_err());
        assert!(algorithm1(&m(&[vec![-1, 0]])).is_err());
    }

    #[test]
    fn empty_pdm_all_columns_zero() {
        let z = algorithm1(&IMat::zeros(0, 3)).unwrap();
        assert_eq!(z.zero_cols, 3);
        assert_eq!(z.t.mat(), &IMat::identity(3));
    }
}
