//! Iteration-space partitioning for a full-rank PDM (§3.3, Theorem 2).
//!
//! With a full-rank upper-triangular lattice basis `H` (`ρ × ρ`, positive
//! diagonal), every dependence distance lies in the lattice `L(H)`, so two
//! dependent iterations always fall in the **same coset** of `L(H)` in
//! `Zᵨ`. The `det(H) = ∏ H[k][k]` cosets are therefore mutually
//! independent: the paper's Loop (3.2) runs them as a `doall` over offset
//! vectors `o` (`o_k ∈ [0, H[k][k])`) and walks each coset sequentially in
//! lexicographic order — a subset of the original order, hence legal.
//!
//! The coset of a point is computed by forward substitution on the
//! triangular basis (eq. 3.4): `q_k = (x_k − r_k) / H[k][k]` with the
//! running residue `r_k = o_k + Σ_{p<k} q_p·H[p][k]`.

use crate::{CoreError, Result};
use pdm_matrix::mat::IMat;
use pdm_matrix::num::emod;
use pdm_matrix::vec::IVec;

/// A Theorem-2 partitioning induced by a triangular lattice basis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning {
    h: IMat,
    steps: Vec<i64>,
}

impl Partitioning {
    /// Validate and wrap a full-rank upper-triangular basis with positive
    /// diagonal.
    pub fn new(h: IMat) -> Result<Self> {
        if !h.is_square() {
            return Err(CoreError::Invariant("partition basis must be square"));
        }
        let n = h.rows();
        let mut steps = Vec::with_capacity(n);
        for r in 0..n {
            for c in 0..r {
                if h.get(r, c) != 0 {
                    return Err(CoreError::Invariant(
                        "partition basis must be upper triangular",
                    ));
                }
            }
            let d = h.get(r, r);
            if d <= 0 {
                return Err(CoreError::Invariant(
                    "partition basis needs a positive diagonal",
                ));
            }
            steps.push(d);
        }
        Ok(Partitioning { h, steps })
    }

    /// The basis matrix.
    pub fn basis(&self) -> &IMat {
        &self.h
    }

    /// Dimension `ρ` of the partitioned block.
    pub fn dim(&self) -> usize {
        self.steps.len()
    }

    /// Per-level strides (the diagonal of `H`).
    pub fn steps(&self) -> &[i64] {
        &self.steps
    }

    /// Number of independent partitions, `det(H)`.
    pub fn count(&self) -> i64 {
        self.steps.iter().product()
    }

    /// Enumerate all offset vectors `o` with `o_k ∈ [0, steps[k])`.
    pub fn offsets(&self) -> Vec<IVec> {
        let mut out = vec![IVec::zeros(self.dim())];
        for (k, &s) in self.steps.iter().enumerate() {
            let mut next = Vec::with_capacity(out.len() * s as usize);
            for base in &out {
                for v in 0..s {
                    let mut o = base.clone();
                    o[k] = v;
                    next.push(o);
                }
            }
            out = next;
        }
        out
    }

    /// Running residue for level `k` inside a partition: the congruence
    /// class `x_k ≡ r_k (mod steps[k])` given the offset `o` and the `q`
    /// coordinates already fixed for levels `< k`.
    pub fn residue(&self, o: &IVec, q: &[i64], k: usize) -> Result<i64> {
        debug_assert!(q.len() >= k);
        let mut r = o[k] as i128;
        for p in 0..k {
            r += q[p] as i128 * self.h.get(p, k) as i128;
        }
        i64::try_from(r).map_err(|_| CoreError::Matrix(pdm_matrix::MatrixError::Overflow))
    }

    /// The lattice coordinate at level `k`: `q_k = (x_k − r_k) / s_k`
    /// (always exact for points of the partition).
    pub fn q_of(&self, x_k: i64, r_k: i64, k: usize) -> Result<i64> {
        let s = self.steps[k];
        let diff = x_k
            .checked_sub(r_k)
            .ok_or(CoreError::Matrix(pdm_matrix::MatrixError::Overflow))?;
        if diff % s != 0 {
            return Err(CoreError::Invariant(
                "point does not belong to the claimed partition",
            ));
        }
        Ok(diff / s)
    }

    /// Smallest `x ≥ lb` with `x ≡ r (mod s)` — the start expression of
    /// the paper's transformed Loop (3.2).
    pub fn first_at_least(lb: i64, r: i64, s: i64) -> Result<i64> {
        let m = emod(r - lb, s).map_err(CoreError::Matrix)?;
        lb.checked_add(m)
            .ok_or(CoreError::Matrix(pdm_matrix::MatrixError::Overflow))
    }

    /// The offset (partition id) containing point `x`, via forward
    /// substitution (eq. 3.4).
    pub fn offset_of(&self, x: &IVec) -> Result<IVec> {
        if x.dim() != self.dim() {
            return Err(CoreError::Matrix(pdm_matrix::MatrixError::DimMismatch {
                op: "offset_of",
                lhs: (1, self.dim()),
                rhs: (1, x.dim()),
            }));
        }
        let mut o = IVec::zeros(self.dim());
        let mut q = Vec::with_capacity(self.dim());
        for k in 0..self.dim() {
            // residue from already-fixed q's with o_k unknown: r_k = o_k + acc.
            let mut acc: i128 = 0;
            for p in 0..k {
                acc += q[p] as i128 * self.h.get(p, k) as i128;
            }
            let acc = i64::try_from(acc)
                .map_err(|_| CoreError::Matrix(pdm_matrix::MatrixError::Overflow))?;
            let ok = emod(x[k] - acc, self.steps[k]).map_err(CoreError::Matrix)?;
            o[k] = ok;
            let r_k = acc + ok;
            q.push(self.q_of(x[k], r_k, k)?);
        }
        Ok(o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_matrix::lattice::Lattice;
    use pdm_matrix::lex::small_vectors;

    fn m(rows: &[Vec<i64>]) -> IMat {
        IMat::from_rows(rows).unwrap()
    }

    #[test]
    fn paper_42_partitioning() {
        // H = [[2,1],[0,2]]: det 4, offsets {0,1}x{0,1} (Figure 5).
        let p = Partitioning::new(m(&[vec![2, 1], vec![0, 2]])).unwrap();
        assert_eq!(p.count(), 4);
        assert_eq!(p.steps(), &[2, 2]);
        let offs = p.offsets();
        assert_eq!(offs.len(), 4);
    }

    #[test]
    fn validation() {
        assert!(Partitioning::new(m(&[vec![2, 1], vec![1, 2]])).is_err()); // not triangular
        assert!(Partitioning::new(m(&[vec![0, 1], vec![0, 2]])).is_err()); // zero diagonal
        assert!(Partitioning::new(IMat::zeros(1, 2)).is_err()); // not square
        assert!(Partitioning::new(m(&[vec![-2]])).is_err()); // negative diag
    }

    #[test]
    fn lattice_translates_stay_in_one_partition() {
        // Theorem 2 core property: x and x + (lattice member) share offset.
        let h = m(&[vec![2, 1], vec![0, 2]]);
        let p = Partitioning::new(h.clone()).unwrap();
        let lat = Lattice::from_generators(&h).unwrap();
        for x in small_vectors(2, 5) {
            let xo = p.offset_of(&IVec::from_slice(&x)).unwrap();
            for g in small_vectors(2, 2) {
                let shift = lat.basis().vec_mul(&IVec::from_slice(&g)).unwrap();
                let y = IVec::from_slice(&x).add(&shift).unwrap();
                assert_eq!(
                    p.offset_of(&y).unwrap(),
                    xo,
                    "x={x:?} shifted by {shift} changed partition"
                );
            }
        }
    }

    #[test]
    fn different_cosets_different_offsets() {
        let h = m(&[vec![2, 1], vec![0, 2]]);
        let p = Partitioning::new(h.clone()).unwrap();
        let lat = Lattice::from_generators(&h).unwrap();
        for x in small_vectors(2, 3) {
            for y in small_vectors(2, 3) {
                let xv = IVec::from_slice(&x);
                let yv = IVec::from_slice(&y);
                let same_coset = lat.contains(&yv.sub(&xv).unwrap()).unwrap();
                let same_offset = p.offset_of(&xv).unwrap() == p.offset_of(&yv).unwrap();
                assert_eq!(same_coset, same_offset, "x={x:?} y={y:?}");
            }
        }
    }

    #[test]
    fn offset_count_matches_det() {
        for h in [
            m(&[vec![2, 1], vec![0, 2]]),
            m(&[vec![3, 2], vec![0, 1]]),
            m(&[vec![1, 0], vec![0, 5]]),
            m(&[vec![2, 1, 1], vec![0, 3, 2], vec![0, 0, 2]]),
        ] {
            let p = Partitioning::new(h).unwrap();
            let mut seen = std::collections::HashSet::new();
            for x in small_vectors(p.dim(), 6) {
                seen.insert(p.offset_of(&IVec::from_slice(&x)).unwrap());
            }
            assert_eq!(seen.len() as i64, p.count());
        }
    }

    #[test]
    fn first_at_least_congruence() {
        for lb in -7..=7 {
            for r in -7..=7 {
                for s in 1..=5 {
                    let x = Partitioning::first_at_least(lb, r, s).unwrap();
                    assert!(x >= lb && x < lb + s);
                    assert_eq!((x - r).rem_euclid(s), 0);
                }
            }
        }
    }

    #[test]
    fn residue_and_q_roundtrip() {
        let p = Partitioning::new(m(&[vec![2, 1], vec![0, 2]])).unwrap();
        // Walk partition o = (1, 0) explicitly.
        let o = IVec::from_slice(&[1, 0]);
        for x1 in -6..=6i64 {
            if (x1 - 1).rem_euclid(2) != 0 {
                continue;
            }
            let q1 = p.q_of(x1, 1, 0).unwrap();
            let r2 = p.residue(&o, &[q1], 1).unwrap();
            for x2 in -6..=6i64 {
                if (x2 - r2).rem_euclid(2) != 0 {
                    continue;
                }
                // (x1, x2) must be in partition o.
                assert_eq!(
                    p.offset_of(&IVec::from_slice(&[x1, x2])).unwrap(),
                    o,
                    "({x1},{x2})"
                );
            }
        }
    }
}
