//! Multi-kernel **program plans**: the imperfect-nest counterpart of
//! [`crate::plan::ParallelPlan`].
//!
//! An imperfect nest normalizes into an ordered sequence of perfect
//! kernels ([`pdm_loopir::normalize::to_perfect_kernels`]); this module
//! runs the paper's whole pipeline — analysis, Algorithm 1, Theorem-2
//! partitioning, Fourier–Motzkin bounds — **per kernel** and sequences
//! the kernels by their dependence DAG:
//!
//! * kernels are grouped into **stages** (longest-path levels of the
//!   DAG): two kernels in the same stage have no dependence path between
//!   them and may run concurrently;
//! * an executor needs a barrier **only between stages** — i.e. only
//!   where a DAG edge forces one — never between independent kernels.
//!
//! Identical kernels (same [`structural hash`], verified by equality)
//! are planned once and share the plan — the `PlanCache` idea applied
//! within one program, which pays off when fission emits several
//! same-shaped statement kernels.
//!
//! [`structural hash`]: LoopNest::structural_hash

use crate::plan::{parallelize, ParallelPlan};
use crate::{CoreError, Result};
use pdm_loopir::imperfect::ImperfectNest;
use pdm_loopir::nest::LoopNest;
use pdm_loopir::normalize::{to_perfect_kernels, NormalizedProgram, PerfectKernel};

/// One kernel of a program plan: the perfect nest plus its own complete
/// parallel schedule.
#[derive(Debug, Clone)]
pub struct KernelPlan {
    /// The kernel (nest + origin position in the imperfect source).
    pub kernel: PerfectKernel,
    /// The kernel's parallel plan, exactly as [`parallelize`] builds it.
    pub plan: ParallelPlan,
}

impl KernelPlan {
    /// The kernel's nest.
    pub fn nest(&self) -> &LoopNest {
        &self.kernel.nest
    }
}

/// A complete schedule for a normalized imperfect nest: per-kernel plans
/// plus the inter-kernel dependence DAG and its barrier stages.
#[derive(Debug, Clone)]
pub struct ProgramPlan {
    kernels: Vec<KernelPlan>,
    edges: Vec<(usize, usize)>,
    stages: Vec<Vec<usize>>,
}

/// Normalize an imperfect nest and plan every kernel: the one-call
/// imperfect analogue of [`parallelize`].
pub fn parallelize_program(imp: &ImperfectNest) -> Result<ProgramPlan> {
    let normalized = to_perfect_kernels(imp).map_err(CoreError::Ir)?;
    plan_program(normalized)
}

/// Plan an already-normalized program. Kernels with identical structure
/// are planned once (hash-keyed, equality-verified — the in-program
/// `PlanCache`).
pub fn plan_program(normalized: NormalizedProgram) -> Result<ProgramPlan> {
    let NormalizedProgram { kernels, edges } = normalized;
    let mut planned: Vec<(u64, LoopNest, ParallelPlan)> = Vec::new();
    let mut out = Vec::with_capacity(kernels.len());
    for kernel in kernels {
        let h = kernel.nest.structural_hash();
        let plan = match planned
            .iter()
            .find(|(ph, pn, _)| *ph == h && *pn == kernel.nest)
        {
            Some((_, _, p)) => p.clone(),
            None => {
                let p = parallelize(&kernel.nest)?;
                planned.push((h, kernel.nest.clone(), p.clone()));
                p
            }
        };
        out.push(KernelPlan { kernel, plan });
    }
    let stages = compute_stages(out.len(), &edges)?;
    Ok(ProgramPlan {
        kernels: out,
        edges,
        stages,
    })
}

/// Longest-path levels of the (forward-edged) kernel DAG. Every edge
/// `(f, t)` has `f < t`, so one ascending pass suffices; an edge
/// violating that order is an invariant error, not a panic.
fn compute_stages(n: usize, edges: &[(usize, usize)]) -> Result<Vec<Vec<usize>>> {
    let mut level = vec![0usize; n];
    for &(f, t) in edges {
        if f >= t || t >= n {
            return Err(CoreError::Invariant("kernel DAG edge is not forward"));
        }
        level[t] = level[t].max(level[f] + 1);
    }
    let max_level = level.iter().copied().max().unwrap_or(0);
    let mut stages = vec![Vec::new(); max_level + 1];
    for (k, &l) in level.iter().enumerate() {
        stages[l].push(k);
    }
    Ok(stages)
}

impl ProgramPlan {
    /// The kernels in sequential (source) order.
    pub fn kernels(&self) -> &[KernelPlan] {
        &self.kernels
    }

    /// Inter-kernel dependence edges `(from, to)`, all forward.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// Barrier stages: kernels of one stage have no dependence path
    /// between them; stage `s + 1` must wait for stage `s`.
    pub fn stages(&self) -> &[Vec<usize>] {
        &self.stages
    }

    /// Number of kernels.
    pub fn kernel_count(&self) -> usize {
        self.kernels.len()
    }

    /// Number of barriers an executor needs: one fewer than the stage
    /// count (barriers exist only at DAG edges).
    pub fn barrier_count(&self) -> usize {
        self.stages.len().saturating_sub(1)
    }

    /// Is the kernel DAG acyclic and consistent with the stage order?
    /// (Always true by construction; exposed for the oracle tests.)
    pub fn validate_dag(&self) -> bool {
        let mut stage_of = vec![0usize; self.kernels.len()];
        for (s, ks) in self.stages.iter().enumerate() {
            for &k in ks {
                stage_of[k] = s;
            }
        }
        self.edges
            .iter()
            .all(|&(f, t)| f < t && stage_of[f] < stage_of[t])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_loopir::parse::parse_imperfect;

    #[test]
    fn independent_kernels_share_a_stage() {
        // Pre writes B, post writes C, body writes A: three kernels, no
        // edges, one stage, zero barriers.
        let imp = parse_imperfect(
            "for i = 0..=5 {
               B[i, 0] = i;
               for j = 0..=5 { A[i, j] = A[i, j] + 1; }
               C[0, i] = i;
             }",
        )
        .unwrap();
        let pp = parallelize_program(&imp).unwrap();
        assert_eq!(pp.kernel_count(), 3);
        assert!(pp.edges().is_empty());
        assert_eq!(pp.stages().len(), 1);
        assert_eq!(pp.barrier_count(), 0);
        assert!(pp.validate_dag());
    }

    #[test]
    fn dependent_kernels_get_barriers() {
        // Pre initializes A's column 0; body reads it: edge 0 -> 1.
        let imp = parse_imperfect(
            "for i = 0..=5 { A[i, 0] = i; for j = 1..=5 { A[i, j] = A[i, 0] + j; } }",
        )
        .unwrap();
        let pp = parallelize_program(&imp).unwrap();
        assert_eq!(pp.kernel_count(), 2);
        assert_eq!(pp.edges(), &[(0, 1)]);
        assert_eq!(pp.stages().len(), 2);
        assert_eq!(pp.barrier_count(), 1);
        assert!(pp.validate_dag());
    }

    #[test]
    fn identical_kernels_plan_once() {
        // Pre and post write disjoint *rows* of B with the same shape:
        // both fission into structurally identical depth-1 kernels
        // differing only in offsets — not identical, so both plan; but
        // two *identical* statements do share.
        let imp = parse_imperfect(
            "for i = 0..=5 {
               B[i, 0] = B[i, 0] + 1;
               for j = 0..=5 { A[i, j] = A[i, j] + 1; }
             }",
        )
        .unwrap();
        let pp = parallelize_program(&imp).unwrap();
        assert_eq!(pp.kernel_count(), 2);
        // Each kernel's plan drives its own nest — depth must match.
        for kp in pp.kernels() {
            assert_eq!(kp.plan.depth(), kp.nest().depth());
        }
    }

    #[test]
    fn stage_computation_rejects_backward_edges() {
        assert!(compute_stages(2, &[(1, 0)]).is_err());
        assert_eq!(
            compute_stages(3, &[(0, 2), (1, 2)]).unwrap(),
            vec![vec![0, 1], vec![2]]
        );
    }
}
