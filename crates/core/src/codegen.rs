//! Rendering a [`crate::plan::ParallelPlan`] as paper-style pseudo-code.
//!
//! The output mirrors the transformed loops of the paper's §4: outer
//! `doall` loops for the zero PDM columns, a `doall` over partition
//! offsets, inner sequential loops with `max(⌈…⌉)/min(⌊…⌋)` bounds and
//! stride `H[k][k]`, and the back-substitution `i = y·T⁻¹` feeding the
//! original body.

use crate::plan::ParallelPlan;
use crate::Result;
use pdm_loopir::nest::LoopNest;
use pdm_loopir::pretty::render_ref;
use std::fmt::Write as _;

/// Render the complete transformed program.
pub fn render_plan(nest: &LoopNest, plan: &ParallelPlan) -> Result<String> {
    let n = plan.depth();
    let mut out = String::new();
    let ynames: Vec<String> = (1..=n).map(|k| format!("y{k}")).collect();

    let _ = writeln!(out, "// pseudo distance matrix (PDM):");
    for line in format!("{}", plan.analysis().pdm()).lines() {
        let _ = writeln!(out, "//   {line}");
    }
    let _ = writeln!(out, "// transformation T (y = i * T):");
    for line in format!("{}", plan.transform()).lines() {
        let _ = writeln!(out, "//   {line}");
    }
    let _ = writeln!(
        out,
        "// doall loops: {}   partitions: {}",
        plan.doall_count(),
        plan.partition_count()
    );
    let _ = writeln!(
        out,
        "// bound rows per level (irredundant): {:?}",
        plan.bounds().rows_per_level()
    );

    let mut indent = 0usize;
    let pad = |d: usize| "  ".repeat(d);

    // Doall prefix loops.
    for k in 0..plan.doall_count() {
        let lb = bound_text(plan, k, &ynames, true);
        let ub = bound_text(plan, k, &ynames, false);
        let _ = writeln!(
            out,
            "{}doall {} = {}..={} {{",
            pad(indent),
            ynames[k],
            lb,
            ub
        );
        indent += 1;
    }

    // Partition offset doalls.
    if let Some(p) = plan.partition() {
        for (k, s) in p.steps().iter().enumerate() {
            let _ = writeln!(
                out,
                "{}doall o{} = 0..{s} {{   // partition offsets, det = {}",
                pad(indent),
                plan.doall_count() + k + 1,
                p.count()
            );
            indent += 1;
        }
    }

    // Sequential (possibly strided) loops.
    for k in plan.doall_count()..n {
        let lb = bound_text(plan, k, &ynames, true);
        let ub = bound_text(plan, k, &ynames, false);
        match plan.partition() {
            Some(p) => {
                let kk = k - plan.doall_count();
                let s = p.steps()[kk];
                let _ = writeln!(
                    out,
                    "{}for {} = first_ge({lb}, r{}) ..= {ub} step {s} {{",
                    pad(indent),
                    ynames[k],
                    k + 1,
                );
            }
            None => {
                let _ = writeln!(out, "{}for {} = {lb}..={ub} {{", pad(indent), ynames[k]);
            }
        }
        indent += 1;
    }

    // Back-substitution and body.
    let inames = nest.index_names();
    let tinv = plan.inverse().mat();
    let mut subs: Vec<String> = Vec::new();
    for i in 0..n {
        let col = tinv.col_vec(i);
        let expr = pdm_poly::expr::AffineExpr::new(col, 0);
        subs.push(format!("{} = {}", inames[i], expr.display_with(&ynames)));
    }
    let _ = writeln!(out, "{}// {}", pad(indent), subs.join(", "));
    for stmt in nest.body() {
        // Sunk statements carry first/last-iteration guards; render them
        // as the `when` clauses the DSL parses back.
        let line = format!(
            "{} = {}{}",
            render_ref(nest, &stmt.lhs),
            render_rhs(nest, &stmt.rhs),
            pdm_loopir::pretty::render_guards(inames, &stmt.guards)
        );
        let _ = writeln!(out, "{}{line};", pad(indent));
    }
    while indent > 0 {
        indent -= 1;
        let _ = writeln!(out, "{}}}", pad(indent));
    }
    Ok(out)
}

/// Render a multi-kernel [`crate::program::ProgramPlan`]: each barrier
/// stage lists its
/// kernels (concurrent within the stage), each kernel rendered with
/// [`render_plan`] plus a header naming its origin in the imperfect
/// source and its DAG predecessors.
pub fn render_program_plan(pp: &crate::program::ProgramPlan) -> Result<String> {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "// program plan: {} kernel(s), {} dependence edge(s), {} barrier(s)",
        pp.kernel_count(),
        pp.edges().len(),
        pp.barrier_count()
    );
    for (s, stage) in pp.stages().iter().enumerate() {
        if s > 0 {
            let _ = writeln!(out, "// ======== barrier (DAG edge) ========");
        }
        let _ = writeln!(
            out,
            "// stage {s}: kernels {stage:?} (no dependence path between them)"
        );
        for &k in stage {
            let kp = &pp.kernels()[k];
            let deps = pp
                .edges()
                .iter()
                .filter(|(_, t)| *t == k)
                .map(|(f, _)| f.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            let _ = writeln!(
                out,
                "// kernel {k} ({:?}, depth {}){}",
                kp.kernel.origin,
                kp.nest().depth(),
                if deps.is_empty() {
                    String::new()
                } else {
                    format!(", after kernel(s) {deps}")
                }
            );
            out.push_str(&render_plan(kp.nest(), &kp.plan)?);
        }
    }
    Ok(out)
}

fn bound_text(plan: &ParallelPlan, k: usize, ynames: &[String], lower: bool) -> String {
    let lv = plan.bounds().level(k);
    let exprs = if lower { &lv.lowers } else { &lv.uppers };
    if exprs.is_empty() {
        return "?".into();
    }
    let parts: Vec<String> = exprs
        .iter()
        .map(|b| b.display_with(ynames, lower))
        .collect();
    if parts.len() == 1 {
        parts.into_iter().next().unwrap()
    } else if lower {
        format!("max({})", parts.join(", "))
    } else {
        format!("min({})", parts.join(", "))
    }
}

fn render_rhs(nest: &LoopNest, e: &pdm_loopir::expr::Expr) -> String {
    use pdm_loopir::expr::Expr;
    match e {
        Expr::Const(c) => c.to_string(),
        Expr::Index(k) => nest.index_names()[*k].clone(),
        Expr::Read(r) => render_ref(nest, r),
        Expr::Add(a, b) => format!("({} + {})", render_rhs(nest, a), render_rhs(nest, b)),
        Expr::Sub(a, b) => format!("({} - {})", render_rhs(nest, a), render_rhs(nest, b)),
        Expr::Mul(a, b) => format!("({} * {})", render_rhs(nest, a), render_rhs(nest, b)),
        Expr::Neg(a) => format!("(-{})", render_rhs(nest, a)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::parallelize;
    use pdm_loopir::parse::parse_loop;

    #[test]
    fn renders_paper_41_shape() {
        let nest = parse_loop(
            "for i1 = 0..=9 { for i2 = 0..=9 {
               A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
             } }",
        )
        .unwrap();
        let plan = parallelize(&nest).unwrap();
        let text = render_plan(&nest, &plan).unwrap();
        assert!(text.contains("doall y1"), "{text}");
        assert!(text.contains("bound rows per level"), "{text}");
        assert!(text.contains("step 2"), "{text}");
        assert!(text.contains("partition offsets, det = 2"), "{text}");
        assert!(text.contains("A["), "{text}");
    }

    #[test]
    fn renders_fully_parallel_loop() {
        let nest = parse_loop("for i = 0..=9 { A[i] = i; }").unwrap();
        let plan = parallelize(&nest).unwrap();
        let text = render_plan(&nest, &plan).unwrap();
        assert!(text.contains("doall y1 = 0..=9"), "{text}");
        assert!(!text.contains("step"), "{text}");
    }

    #[test]
    fn renders_program_plan_with_stages() {
        let imp = pdm_loopir::parse::parse_imperfect(
            "for i = 0..=5 { A[i, 0] = i; for j = 1..=5 { A[i, j] = A[i, 0] + j; } }",
        )
        .unwrap();
        let pp = crate::program::parallelize_program(&imp).unwrap();
        let text = render_program_plan(&pp).unwrap();
        assert!(text.contains("program plan: 2 kernel(s)"), "{text}");
        assert!(text.contains("barrier (DAG edge)"), "{text}");
        assert!(text.contains("after kernel(s) 0"), "{text}");
    }

    #[test]
    fn renders_guarded_statements_with_when() {
        let nest = parse_loop(
            "for i = 1..=5 { for j = 1..=5 { A[i, j] = A[i, j - 1] + 1 when j == 1; } }",
        )
        .unwrap();
        let plan = parallelize(&nest).unwrap();
        let text = render_plan(&nest, &plan).unwrap();
        assert!(text.contains("when j == 1"), "{text}");
    }

    #[test]
    fn renders_sequential_stencil() {
        let nest =
            parse_loop("for i = 1..=9 { for j = 1..=9 { A[i, j] = A[i - 1, j] + A[i, j - 1]; } }")
                .unwrap();
        let plan = parallelize(&nest).unwrap();
        let text = render_plan(&nest, &plan).unwrap();
        // Full Z^2 lattice: no doall, no partitions.
        assert!(text.contains("doall loops: 0   partitions: 1"), "{text}");
        assert!(text.contains("for y1"), "{text}");
    }
}
