//! Convenience façade: one-call analysis and parallelization.

pub use crate::pdm::analyze;
pub use crate::plan::parallelize;

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_resolve() {
        let nest = pdm_loopir::parse::parse_loop("for i = 0..=3 { A[i] = i; }").unwrap();
        assert_eq!(super::analyze(&nest).unwrap().rank(), 0);
        assert!(super::parallelize(&nest).unwrap().is_fully_parallel());
    }
}
