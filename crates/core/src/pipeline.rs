//! Convenience façade: one-call analysis and parallelization.

pub use crate::pdm::analyze;
pub use crate::plan::parallelize;
pub use crate::program::parallelize_program;

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_resolve() {
        let nest = pdm_loopir::parse::parse_loop("for i = 0..=3 { A[i] = i; }").unwrap();
        assert_eq!(super::analyze(&nest).unwrap().rank(), 0);
        assert!(super::parallelize(&nest).unwrap().is_fully_parallel());
        let imp = pdm_loopir::parse::parse_imperfect(
            "for i = 0..=3 { B[i, 0] = i; for j = 0..=3 { A[i, j] = i + j; } }",
        )
        .unwrap();
        assert_eq!(super::parallelize_program(&imp).unwrap().kernel_count(), 2);
    }
}
