//! Classic dependence tests as pre-filters: GCD and Banerjee bounds.
//!
//! The paper positions its exact echelon solve against the approximate
//! tests of the literature (Banerjee–Wolfe, GCD — see Psarris \[11\]).
//! These are implemented here both as cheap filters a production compiler
//! would run first and as a measurable precision comparison:
//!
//! * **GCD test** — per subscript dimension, the single diophantine
//!   equation is solvable only when the gcd of its coefficients divides
//!   the constant. Ignores bounds *and* cross-dimension coupling.
//! * **Banerjee test** — per dimension, interval-evaluate the subscript
//!   difference over the loop bounds; no dependence when the constant
//!   falls outside. Uses bounds, still ignores coupling.
//! * **Exact test** — the paper's echelon solve ([`crate::pairlat`]):
//!   decides solvability of the full coupled system (still ignoring
//!   bounds, which only the ISDG oracle applies).

use crate::depeq::DepEquation;
use crate::Result;
use pdm_loopir::nest::LoopNest;
use pdm_matrix::gcd::{divides, gcd_slice};

/// Outcome of an approximate dependence test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestResult {
    /// The test *proves* independence.
    Independent,
    /// The test cannot rule a dependence out.
    MaybeDependent,
}

/// GCD test over every subscript dimension.
pub fn gcd_test(eq: &DepEquation) -> TestResult {
    for d in 0..eq.m.cols() {
        let col = eq.m.col_vec(d);
        let g = gcd_slice(col.as_slice());
        if !divides(g, eq.c[d]) {
            return TestResult::Independent;
        }
    }
    TestResult::MaybeDependent
}

/// Banerjee bounds test: interval evaluation of `x·M_col − c_d` over the
/// concatenated iteration ranges (`ranges` are the per-variable global
/// bounds of the nest, applied to both `i` and `j` halves of `x`).
pub fn banerjee_test(eq: &DepEquation, ranges: &[(i64, i64)]) -> Result<TestResult> {
    let n = eq.depth;
    debug_assert_eq!(ranges.len(), n);
    for d in 0..eq.m.cols() {
        let mut lo: i128 = 0;
        let mut hi: i128 = 0;
        for x in 0..2 * n {
            let coef = eq.m.get(x, d) as i128;
            let (rl, rh) = ranges[x % n];
            let a = coef * rl as i128;
            let b = coef * rh as i128;
            lo += a.min(b);
            hi += a.max(b);
        }
        let c = eq.c[d] as i128;
        if c < lo || c > hi {
            return Ok(TestResult::Independent);
        }
    }
    Ok(TestResult::MaybeDependent)
}

/// Exact (unbounded) test: the paper's echelon solve.
pub fn exact_test(eq: &DepEquation) -> Result<TestResult> {
    Ok(match crate::pairlat::pair_distance_lattice(eq)? {
        l if l.solvable => TestResult::MaybeDependent,
        _ => TestResult::Independent,
    })
}

/// Precision comparison of the three tests over every dependence pair of
/// a nest.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PrecisionReport {
    /// Total reference pairs examined.
    pub pairs: usize,
    /// Pairs disproved by the GCD test.
    pub gcd_independent: usize,
    /// Pairs disproved by the Banerjee test.
    pub banerjee_independent: usize,
    /// Pairs disproved by the exact echelon solve.
    pub exact_independent: usize,
}

/// Run all three tests over the nest's pairs.
pub fn compare_tests(nest: &LoopNest) -> Result<PrecisionReport> {
    let ranges = nest.index_ranges()?;
    let mut rep = PrecisionReport::default();
    for p in nest.dependence_pairs() {
        let eq = crate::depeq::dependence_equation(p.ref_a, p.ref_b)?;
        rep.pairs += 1;
        if gcd_test(&eq) == TestResult::Independent {
            rep.gcd_independent += 1;
        }
        if banerjee_test(&eq, &ranges)? == TestResult::Independent {
            rep.banerjee_independent += 1;
        }
        if exact_test(&eq)? == TestResult::Independent {
            rep.exact_independent += 1;
        }
    }
    Ok(rep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::depeq::dependence_equation;
    use pdm_loopir::parse::parse_loop;

    fn eq_of(src: &str) -> (DepEquation, Vec<(i64, i64)>) {
        let nest = parse_loop(src).unwrap();
        let pairs = nest.dependence_pairs();
        let wr = pairs
            .iter()
            .find(|p| p.ref_a != p.ref_b)
            .expect("flow pair");
        (
            dependence_equation(wr.ref_a, wr.ref_b).unwrap(),
            nest.index_ranges().unwrap(),
        )
    }

    #[test]
    fn gcd_disproves_parity_conflicts() {
        let (eq, _) = eq_of("for i = 0..=20 { A[2*i] = A[2*i + 1] + 1; }");
        assert_eq!(gcd_test(&eq), TestResult::Independent);
        assert_eq!(exact_test(&eq).unwrap(), TestResult::Independent);
    }

    #[test]
    fn gcd_blind_to_bounds_banerjee_is_not() {
        // Distance 100 in a loop of extent 10: gcd says maybe, Banerjee
        // proves independence.
        let (eq, ranges) = eq_of("for i = 0..=10 { A[i] = A[i + 100] + 1; }");
        assert_eq!(gcd_test(&eq), TestResult::MaybeDependent);
        assert_eq!(
            banerjee_test(&eq, &ranges).unwrap(),
            TestResult::Independent
        );
        // The unbounded exact test also says maybe (correctly: with wider
        // bounds there WOULD be a dependence).
        assert_eq!(exact_test(&eq).unwrap(), TestResult::MaybeDependent);
    }

    #[test]
    fn exact_sees_coupling_the_others_miss() {
        // A[i, i] vs A[j, j+1]: each dimension alone is satisfiable
        // (gcd 1; ranges overlap), but the coupled system i = j and
        // i = j + 1 is contradictory.
        let (eq, ranges) = eq_of("for i = 0..=10 { A[i, i] = A[i, i + 1] + 1; }");
        assert_eq!(gcd_test(&eq), TestResult::MaybeDependent);
        assert_eq!(
            banerjee_test(&eq, &ranges).unwrap(),
            TestResult::MaybeDependent
        );
        assert_eq!(exact_test(&eq).unwrap(), TestResult::Independent);
    }

    #[test]
    fn dependent_pairs_never_disproved() {
        // Soundness: a loop with a real dependence must pass all tests.
        for src in [
            "for i = 1..=10 { A[i] = A[i - 1] + 1; }",
            "for i = 0..=10 { A[2*i] = A[i] + 1; }",
            "for i1 = 0..=9 { for i2 = 0..=9 {
               A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
             } }",
        ] {
            let (eq, ranges) = eq_of(src);
            assert_eq!(gcd_test(&eq), TestResult::MaybeDependent, "{src}");
            assert_eq!(
                banerjee_test(&eq, &ranges).unwrap(),
                TestResult::MaybeDependent,
                "{src}"
            );
            assert_eq!(
                exact_test(&eq).unwrap(),
                TestResult::MaybeDependent,
                "{src}"
            );
        }
    }

    #[test]
    fn precision_report_orders_tests() {
        // A nest mixing disprovable and real dependences.
        let nest = parse_loop(
            "for i = 0..=10 {
               A[2*i] = A[2*i + 1] + 1;
               B[i] = B[i + 100] + 1;
               C[i, i] = C[i, i + 1] + 1;
               D[i] = D[i - 1] + 1;
             }",
        )
        .unwrap();
        let rep = compare_tests(&nest).unwrap();
        assert!(rep.pairs >= 4);
        assert!(rep.gcd_independent >= 1);
        assert!(rep.banerjee_independent >= 1);
        // The exact test catches the coupled case the others can't;
        // Banerjee catches the bounded case the exact (unbounded) can't.
        assert!(rep.exact_independent >= 2);
    }

    #[test]
    fn soundness_against_ground_truth() {
        // Any pair disproved by any test must have zero ISDG edges.
        for src in [
            "for i = 0..=12 { A[2*i] = A[2*i + 1] + 1; }",
            "for i = 0..=12 { A[i] = A[i + 100] + 1; }",
            "for i = 0..=12 { A[i, i] = A[i, i + 1] + 1; }",
        ] {
            let nest = parse_loop(src).unwrap();
            let rep = compare_tests(&nest).unwrap();
            let any_disproved =
                rep.gcd_independent + rep.banerjee_independent + rep.exact_independent > 0;
            assert!(any_disproved, "{src}");
            // Ground truth: no dependent iterations at all.
            let its = nest.iterations().unwrap();
            let w = &nest.body()[0].lhs;
            let mut reads = Vec::new();
            nest.body()[0].rhs.reads(&mut reads);
            for i in &its {
                for j in &its {
                    assert_ne!(
                        w.access.eval(i).unwrap(),
                        reads[0].access.eval(j).unwrap(),
                        "{src}: real conflict found despite disproof"
                    );
                }
            }
        }
    }
}
