//! Corollary 5: when is a dependence distance constant?
//!
//! The paper closes the loop with its predecessors by characterising the
//! uniform-distance case: the distance between dependent iterations
//! `d = j − i` is a **constant** vector iff the subscript matrices
//! `A₁, A₂` are square and nonsingular and `(b₁ − b₂)·A₂⁻¹`-style offset
//! image is integral — in which case the classic frameworks
//! (Banerjee \[1\], D'Hollander \[6\]) apply directly and the PDM degenerates
//! to their distance matrix.
//!
//! This module implements the predicate exactly and cross-validates it
//! against the general lattice machinery (a pair is uniform iff its
//! homogeneous generator set is empty).

use crate::depeq::DepEquation;
use crate::Result;
use pdm_loopir::stmt::ArrayRef;
use pdm_matrix::det::det;
use pdm_matrix::vec::IVec;

/// The constant distance of a reference pair, when one exists.
///
/// Returns:
/// * `Ok(Some(d))` — every dependence between the two references has the
///   one distance `d` (which may be zero for loop-independent overlap);
/// * `Ok(None)` — either the distances vary with the iteration, or no
///   dependence exists at all.
pub fn constant_distance(a: &ArrayRef, b: &ArrayRef) -> Result<Option<IVec>> {
    let a1 = &a.access.matrix;
    let a2 = &b.access.matrix;
    // Corollary 5 condition: both subscript matrices square and
    // nonsingular. (Rectangular or singular matrices leave free
    // directions -> variable distances or higher-dimensional solutions.)
    if !a1.is_square() || !a2.is_square() {
        return Ok(None);
    }
    if det(a1)? == 0 || det(a2)? == 0 {
        return Ok(None);
    }
    // With both nonsingular the dependence equation i·A1 + b1 = j·A2 + b2
    // has at most a one-parameter family tied rigidly: homogeneous
    // solutions satisfy i·A1 = j·A2 with unique j per i, but a *constant*
    // d additionally needs A1 == A2 (else d depends on i). Check via the
    // general solver for exactness.
    let eq = crate::depeq::dependence_equation(a, b)?;
    let pl = crate::pairlat::pair_distance_lattice(&eq)?;
    if !pl.solvable {
        return Ok(None);
    }
    if pl.hom_rank != 0 {
        return Ok(None); // variable distances
    }
    Ok(pl.particular)
}

/// Is the whole equation system of a pair "uniform" in Corollary 5's
/// sense (no free distance directions)?
pub fn is_uniform_pair(eq: &DepEquation) -> Result<bool> {
    let pl = crate::pairlat::pair_distance_lattice(eq)?;
    Ok(!pl.solvable || pl.hom_rank == 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdm_loopir::parse::parse_loop;

    fn flow_refs(src: &str) -> (pdm_loopir::stmt::ArrayRef, pdm_loopir::stmt::ArrayRef) {
        let nest = parse_loop(src).unwrap();
        let pairs = nest.dependence_pairs();
        let p = pairs.iter().find(|p| p.ref_a != p.ref_b).expect("pair");
        (p.ref_a.clone(), p.ref_b.clone())
    }

    #[test]
    fn uniform_shift_detected() {
        let (w, r) = flow_refs("for i = 1..=9 { A[i] = A[i - 1] + 1; }");
        let d = constant_distance(&w, &r).unwrap().unwrap();
        assert_eq!(d.as_slice(), &[1]);
    }

    #[test]
    fn two_dim_uniform() {
        let (w, r) =
            flow_refs("for i = 2..=9 { for j = 3..=9 { A[i, j] = A[i - 2, j - 3] + 1; } }");
        let d = constant_distance(&w, &r).unwrap().unwrap();
        assert_eq!(d.as_slice(), &[2, 3]);
    }

    #[test]
    fn variable_distance_rejected() {
        // A[2i] = A[i]: write matrix [2] nonsingular, read [1]
        // nonsingular, but distances vary (d = i).
        let (w, r) = flow_refs("for i = 0..=9 { A[2*i] = A[i] + 1; }");
        assert_eq!(constant_distance(&w, &r).unwrap(), None);
    }

    #[test]
    fn rank_deficient_access_rejected() {
        // Both subscripts i1 + i2: singular 2x2 matrices.
        let (w, r) = flow_refs(
            "for i1 = 0..=5 { for i2 = 0..=5 {
               A[i1 + i2, i1 + i2] = A[i1 + i2 + 1, i1 + i2 + 1] + 1;
             } }",
        );
        assert_eq!(constant_distance(&w, &r).unwrap(), None);
    }

    #[test]
    fn no_dependence_gives_none() {
        let (w, r) = flow_refs("for i = 0..=9 { A[2*i] = A[2*i + 1] + 1; }");
        assert_eq!(constant_distance(&w, &r).unwrap(), None);
    }

    #[test]
    fn agrees_with_analysis_uniformity_flag() {
        for (src, expect_uniform) in [
            ("for i = 1..=9 { A[i] = A[i - 1] + 1; }", true),
            ("for i = 0..=9 { A[2*i] = A[i] + 1; }", false),
            (
                "for i1 = 0..=9 { for i2 = 0..=9 {
                   A[5*i1 + i2, 7*i1 + 2*i2] = A[i1 + i2 + 4, i1 + 2*i2 + 6] + 1;
                 } }",
                false,
            ),
        ] {
            let nest = parse_loop(src).unwrap();
            let analysis = crate::pdm::analyze(&nest).unwrap();
            let (w, r) = flow_refs(src);
            let c5 = constant_distance(&w, &r).unwrap().is_some();
            assert_eq!(c5, expect_uniform, "{src}");
            assert_eq!(analysis.is_uniform(), expect_uniform, "{src}");
        }
    }
}
